// A concurrent bank: random transfers between accounts under per-account
// locks. This is the fault-tolerant-replication use case from the paper's
// introduction: because RFDet is deterministic, two independent "replicas"
// fed the same input sequence end in exactly the same state — so state-
// machine replication works without shipping thread interleavings.
#include <cstdio>
#include <vector>

#include "rfdet/backends/backends.h"
#include "rfdet/common/rng.h"

namespace {

constexpr size_t kAccounts = 32;
constexpr size_t kThreads = 4;
constexpr size_t kTransfers = 2000;

// Runs one "replica" with the given input seed; returns a digest of the
// final account balances.
uint64_t RunReplica(uint64_t seed) {
  dmt::BackendConfig config;
  config.kind = dmt::BackendKind::kRfdetCi;
  auto env = dmt::CreateEnv(config);

  auto balances = dmt::MakeStaticArray<int64_t>(*env, kAccounts);
  std::vector<size_t> locks(kAccounts);
  for (auto& l : locks) l = env->CreateMutex();
  for (size_t i = 0; i < kAccounts; ++i) balances.Put(*env, i, 1000);

  std::vector<size_t> tids;
  for (size_t t = 0; t < kThreads; ++t) {
    tids.push_back(env->Spawn([&, t] {
      rfdet::Xoshiro256 rng(seed * 131 + t);
      for (size_t i = 0; i < kTransfers; ++i) {
        const size_t from = rng.Below(kAccounts);
        size_t to = rng.Below(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        const int64_t amount = static_cast<int64_t>(rng.Below(50)) + 1;
        // Lock ordering by account index prevents deadlock.
        env->Lock(locks[std::min(from, to)]);
        env->Lock(locks[std::max(from, to)]);
        const int64_t src = balances.Get(*env, from);
        if (src >= amount) {
          balances.Put(*env, from, src - amount);
          balances.Put(*env, to, balances.Get(*env, to) + amount);
        }
        env->Unlock(locks[std::max(from, to)]);
        env->Unlock(locks[std::min(from, to)]);
      }
    }));
  }
  for (const size_t tid : tids) env->Join(tid);

  uint64_t digest = 1469598103934665603ull;
  int64_t total = 0;
  for (size_t i = 0; i < kAccounts; ++i) {
    const int64_t b = balances.Get(*env, i);
    total += b;
    digest = (digest ^ static_cast<uint64_t>(b)) * 1099511628211ull;
  }
  std::printf("  replica(seed=%llu): total=%lld digest=%016llx\n",
              static_cast<unsigned long long>(seed),
              static_cast<long long>(total),
              static_cast<unsigned long long>(digest));
  return digest;
}

}  // namespace

int main() {
  std::printf("two replicas, same input:\n");
  const uint64_t a = RunReplica(7);
  const uint64_t b = RunReplica(7);
  std::printf("two replicas, different input:\n");
  const uint64_t c = RunReplica(8);
  std::printf("\nsame-input replicas agree:       %s\n",
              a == b ? "yes ✓" : "NO — replication would diverge");
  std::printf("different-input replicas differ: %s\n",
              a != c ? "yes (inputs matter, as they should)" : "no");
  return a == b ? 0 : 1;
}
