// Profiling a workload: runs any registered kernel on any backend and
// prints the runtime's Table-1-style statistics.
//
// Usage: profile_workload [--app=radix] [--backend=rfdet-ci]
//                         [--threads=4] [--scale=1]
#include <cstdio>

#include "rfdet/harness/harness.h"

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const std::string app = flags.Str("app", "radix");
  const std::string backend = flags.Str("backend", "rfdet-ci");

  const apps::Workload* workload = apps::FindWorkload(app);
  if (workload == nullptr) {
    std::printf("unknown app '%s'; available:\n", app.c_str());
    for (const apps::Workload* w : apps::AllWorkloads()) {
      std::printf("  %-20s (%s)\n", w->Name().c_str(), w->Suite().c_str());
    }
    return 1;
  }
  const auto kind = dmt::ParseBackend(backend);
  if (!kind) {
    std::printf("unknown backend '%s' (pthreads, kendo, rfdet-ci, rfdet-pf, "
                "dthreads, coredet)\n", backend.c_str());
    return 1;
  }

  dmt::BackendConfig config;
  config.kind = *kind;
  apps::Params params;
  params.threads = static_cast<size_t>(flags.Int("threads", 4));
  params.scale = static_cast<int>(flags.Int("scale", 1));
  const harness::RunOutcome out =
      harness::Measure(*workload, params, config);

  const rfdet::StatsSnapshot& s = out.stats;
  std::printf("%s on %s (%zu threads, scale %d)\n", app.c_str(),
              backend.c_str(), params.threads, params.scale);
  std::printf("  time                 %.3f s\n", out.seconds);
  std::printf("  signature            %016llx\n",
              static_cast<unsigned long long>(out.signature));
  std::printf("  lock/unlock          %llu/%llu\n",
              static_cast<unsigned long long>(s.locks),
              static_cast<unsigned long long>(s.unlocks));
  std::printf("  wait/signal          %llu/%llu\n",
              static_cast<unsigned long long>(s.cond_waits),
              static_cast<unsigned long long>(s.cond_signals));
  std::printf("  fork/join            %llu/%llu\n",
              static_cast<unsigned long long>(s.forks),
              static_cast<unsigned long long>(s.joins));
  std::printf("  loads/stores (words) %llu/%llu\n",
              static_cast<unsigned long long>(s.loads),
              static_cast<unsigned long long>(s.stores));
  std::printf("  stores w/ page copy  %llu\n",
              static_cast<unsigned long long>(s.stores_with_copy));
  std::printf("  slices created       %llu (merged acquires: %llu)\n",
              static_cast<unsigned long long>(s.slices_created),
              static_cast<unsigned long long>(s.slices_merged));
  std::printf("  slices propagated    %llu (%llu bytes)\n",
              static_cast<unsigned long long>(s.slices_propagated),
              static_cast<unsigned long long>(s.bytes_propagated));
  std::printf("  prelock share        %llu bytes\n",
              static_cast<unsigned long long>(s.prelock_bytes));
  std::printf("  page faults          %llu, mprotect calls %llu\n",
              static_cast<unsigned long long>(s.page_faults),
              static_cast<unsigned long long>(s.mprotect_calls));
  std::printf("  GC count             %llu (pruned %llu slices)\n",
              static_cast<unsigned long long>(s.gc_count),
              static_cast<unsigned long long>(s.slices_pruned));
  std::printf("  footprint            %.1f MB\n",
              static_cast<double>(out.footprint_bytes) / (1024.0 * 1024.0));
  return 0;
}
