// Online race detection: a racy bank vs. the same bank with locks.
//
// RFDet already materializes everything a happens-before race detector
// needs — every slice carries its byte-exact write set and a vector clock —
// so turning detection on (RacePolicy::kReport) costs no extra
// instrumentation. And because the execution is deterministic, the
// detector is too: the racy bank produces the *same* race report every
// run, so a race seen once in production can be re-triggered and debugged
// at will — no "it only crashes on Tuesdays".
#include <cstdio>
#include <string>
#include <vector>

#include "rfdet/backends/backends.h"

namespace {

constexpr size_t kAccounts = 16;
constexpr size_t kThreads = 4;
constexpr size_t kDeposits = 200;

// Runs the bank; when `locked` is false the deposits race on the shared
// balances. Returns the run's deterministic race report ("" = race-free).
std::string RunBank(bool locked) {
  dmt::BackendConfig config;
  config.kind = dmt::BackendKind::kRfdetCi;
  config.race_policy = rfdet::RacePolicy::kReport;
  auto env = dmt::CreateEnv(config);

  auto balances = dmt::MakeStaticArray<int64_t>(*env, kAccounts);
  for (size_t i = 0; i < kAccounts; ++i) balances.Put(*env, i, 0);
  std::vector<size_t> locks(kAccounts);
  for (auto& l : locks) l = env->CreateMutex();

  std::vector<size_t> tids;
  for (size_t t = 0; t < kThreads; ++t) {
    tids.push_back(env->Spawn([&, t] {
      for (size_t i = 0; i < kDeposits; ++i) {
        const size_t account = (t + i) % kAccounts;  // threads collide
        if (locked) env->Lock(locks[account]);
        balances.Put(*env, account, balances.Get(*env, account) + 1);
        if (locked) env->Unlock(locks[account]);
      }
    }));
  }
  for (const size_t tid : tids) env->Join(tid);

  int64_t total = 0;
  for (size_t i = 0; i < kAccounts; ++i) total += balances.Get(*env, i);
  std::printf("  %s bank: total=%lld (expected %zu)\n",
              locked ? "locked" : "racy ", static_cast<long long>(total),
              kThreads * kDeposits);
  return env->RaceReportText();
}

}  // namespace

int main() {
  std::printf("racy bank (no locks — lost updates AND a race report):\n");
  const std::string racy1 = RunBank(/*locked=*/false);
  const std::string racy2 = RunBank(/*locked=*/false);
  std::printf("\nfirst racy run reported:\n%s\n", racy1.c_str());

  std::printf("locked bank (per-account locks — clean):\n");
  const std::string clean = RunBank(/*locked=*/true);

  std::printf("\nracy bank reported races:        %s\n",
              !racy1.empty() ? "yes ✓" : "NO — detector missed them");
  std::printf("report identical across runs:    %s\n",
              racy1 == racy2 ? "yes ✓ (deterministic detection)"
                             : "NO — reports diverged");
  std::printf("locked bank is race-free:        %s\n",
              clean.empty() ? "yes ✓" : "NO — false positive");
  return (!racy1.empty() && racy1 == racy2 && clean.empty()) ? 0 : 1;
}
