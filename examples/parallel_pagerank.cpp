// Parallel pagerank on the deterministic executor (exec/executor.h).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/parallel_pagerank
//
// The walkthrough:
//   1. Build a small directed graph host-side and publish it as CSR
//      (offsets + edges) into the shared region.
//   2. Rank with integer fixed-point arithmetic so every operation is
//      exact: det_parallel_for pushes each vertex's contribution into a
//      per-worker accumulator stripe, then det_reduce folds the stripes
//      and the damping term with a combining tree whose order is a fixed
//      function of the chunk index — never of timing.
//   3. Run the identical computation under two deliberately different
//      runtime configurations (turn_wait=park vs spin + scalar kernels)
//      and show the ranks are bit-identical: the executor's schedule is a
//      pure function of (range, grain, threads), so none of the
//      mechanism-level knobs can leak into the result.
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "rfdet/backends/backends.h"
#include "rfdet/exec/executor.h"

namespace {

constexpr size_t kVertices = 64;
constexpr size_t kThreads = 4;
constexpr int64_t kOne = 1 << 20;  // fixed-point 1.0
constexpr int kIters = 20;

// Deterministic toy web graph: each vertex links to (v+1), (3v+1) and
// (7v+3) mod n — strongly connected enough to be interesting.
void BuildGraph(std::vector<uint64_t>* offsets, std::vector<uint32_t>* edges) {
  offsets->assign(kVertices + 1, 0);
  for (size_t v = 0; v < kVertices; ++v) {
    for (const size_t dst :
         {(v + 1) % kVertices, (3 * v + 1) % kVertices,
          (7 * v + 3) % kVertices}) {
      if (dst != v) edges->push_back(static_cast<uint32_t>(dst));
    }
    (*offsets)[v + 1] = edges->size();
  }
}

uint64_t RankOnce(const dmt::BackendConfig& config, int64_t top[3]) {
  auto env = dmt::CreateEnv(config);
  dmt::exec::Executor ex(*env, {.threads = kThreads});
  const size_t nw = ex.threads();

  // Publish the CSR graph and the rank vectors into shared memory.
  std::vector<uint64_t> off_host;
  std::vector<uint32_t> edges_host;
  BuildGraph(&off_host, &edges_host);
  auto offsets = dmt::MakeStaticArray<uint64_t>(*env, kVertices + 1);
  auto edges = dmt::MakeStaticArray<uint32_t>(*env, edges_host.size());
  offsets.Write(*env, 0, off_host.data(), off_host.size());
  edges.Write(*env, 0, edges_host.data(), edges_host.size());
  auto ranks = dmt::MakeStaticArray<int64_t>(*env, kVertices);
  // One accumulator stripe per pool worker: the push phase does
  // read-modify-write only on its own stripe, so it is race-free by
  // construction (and provably so under --race detection).
  auto acc = dmt::MakeStaticArray<int64_t>(*env, nw * kVertices);

  for (size_t v = 0; v < kVertices; ++v) ranks.Put(*env, v, kOne);

  for (int iter = 0; iter < kIters; ++iter) {
    const std::vector<int64_t> zeros(nw * kVertices, 0);
    acc.Write(*env, 0, zeros.data(), zeros.size());

    // Push phase: chunk c of the vertex range runs on worker c % nw.
    dmt::exec::det_parallel_for(
        ex, 0, kVertices, 16, [&](size_t lo, size_t hi, size_t worker) {
          for (size_t v = lo; v < hi; ++v) {
            const uint64_t b = offsets.Get(*env, v);
            const uint64_t e = offsets.Get(*env, v + 1);
            if (b == e) continue;
            const int64_t contrib =
                ranks.Get(*env, v) * 85 / (100 * static_cast<int64_t>(e - b));
            for (uint64_t i = b; i < e; ++i) {
              const size_t slot =
                  worker * kVertices + edges.Get(*env, i);
              acc.Put(*env, slot, acc.Get(*env, slot) + contrib);
            }
          }
        });

    // Fold phase: per-chunk residuals combined by the fixed pairwise
    // tree (associative +, so the grain doesn't matter either).
    dmt::exec::det_reduce(
        ex, 0, kVertices, 16,
        [&](size_t lo, size_t hi) {
          uint64_t residual = 0;
          for (size_t v = lo; v < hi; ++v) {
            int64_t sum = 0;
            for (size_t w = 0; w < nw; ++w) {
              sum += acc.Get(*env, w * kVertices + v);
            }
            const int64_t next = 15 * kOne / 100 + sum;
            const int64_t old = ranks.Get(*env, v);
            residual += static_cast<uint64_t>(next > old ? next - old
                                                         : old - next);
            ranks.Put(*env, v, next);
          }
          return residual;
        },
        [](uint64_t a, uint64_t b) { return a + b; }, 0);
  }

  uint64_t checksum = 0;
  for (size_t v = 0; v < kVertices; ++v) {
    const int64_t r = ranks.Get(*env, v);
    checksum = checksum * 1099511628211ull + static_cast<uint64_t>(r);
    if (v < 3) top[v] = r;
  }
  return checksum;
}

}  // namespace

int main() {
  dmt::BackendConfig a;
  a.kind = dmt::BackendKind::kRfdetCi;
  a.turn_wait = "park";
  a.off_turn_close = true;

  dmt::BackendConfig b = a;
  b.turn_wait = "spin";
  b.kernels = "scalar";
  b.off_turn_close = false;

  int64_t top_a[3] = {0, 0, 0}, top_b[3] = {0, 0, 0};
  const uint64_t run_a = RankOnce(a, top_a);
  const uint64_t run_b = RankOnce(b, top_b);

  std::printf("ranks[0..2] (fixed-point, 1.0 = %d):\n", 1 << 20);
  for (int v = 0; v < 3; ++v) {
    std::printf("  v%d: %" PRId64 " (park) vs %" PRId64 " (spin/scalar)\n", v,
                top_a[v], top_b[v]);
  }
  std::printf("checksum park+close:  %016" PRIx64 "\n", run_a);
  std::printf("checksum spin+scalar: %016" PRIx64 "\n", run_b);
  std::printf(run_a == run_b ? "deterministic ✓\n"
                             : "NONDETERMINISTIC!\n");
  return run_a == run_b ? 0 : 1;
}
