// The pthreads-compatibility surface: a producer/consumer program written
// against det_pthread_* — the same calling conventions as POSIX threads,
// made deterministic (the paper ships RFDet as exactly this kind of
// drop-in pthreads replacement, §4.1).
#include <cstdio>

#include "rfdet/compat/det_pthread.h"

namespace {

constexpr int kItems = 64;
constexpr int kQueueCap = 8;

struct Shared {
  det_pthread_mutex_t mutex;
  det_pthread_cond_t not_empty;
  det_pthread_cond_t not_full;
  uint64_t ring;   // GAddr of kQueueCap items
  uint64_t state;  // GAddr of {head, tail, count, checksum}
};

uint64_t GetU64(uint64_t addr) {
  uint64_t v = 0;
  det_load(addr, &v, sizeof v);
  return v;
}
void PutU64(uint64_t addr, uint64_t v) { det_store(addr, &v, sizeof v); }

void* Producer(void* raw) {
  auto* s = static_cast<Shared*>(raw);
  for (int i = 1; i <= kItems; ++i) {
    det_pthread_mutex_lock(&s->mutex);
    while (GetU64(s->state + 16) == kQueueCap) {
      det_pthread_cond_wait(&s->not_full, &s->mutex);
    }
    const uint64_t tail = GetU64(s->state + 8);
    PutU64(s->ring + (tail % kQueueCap) * 8, static_cast<uint64_t>(i * i));
    PutU64(s->state + 8, tail + 1);
    PutU64(s->state + 16, GetU64(s->state + 16) + 1);
    det_pthread_cond_signal(&s->not_empty);
    det_pthread_mutex_unlock(&s->mutex);
  }
  return nullptr;
}

void* Consumer(void* raw) {
  auto* s = static_cast<Shared*>(raw);
  for (int i = 0; i < kItems / 2; ++i) {
    det_pthread_mutex_lock(&s->mutex);
    while (GetU64(s->state + 16) == 0) {
      det_pthread_cond_wait(&s->not_empty, &s->mutex);
    }
    const uint64_t head = GetU64(s->state);
    const uint64_t item = GetU64(s->ring + (head % kQueueCap) * 8);
    PutU64(s->state, head + 1);
    PutU64(s->state + 16, GetU64(s->state + 16) - 1);
    PutU64(s->state + 24, GetU64(s->state + 24) * 31 + item);
    det_pthread_cond_signal(&s->not_full);
    det_pthread_mutex_unlock(&s->mutex);
  }
  return nullptr;
}

uint64_t RunOnce() {
  rfdet::compat::DetProcess process;
  Shared s{};
  det_pthread_mutex_init(&s.mutex, nullptr);
  det_pthread_cond_init(&s.not_empty, nullptr);
  det_pthread_cond_init(&s.not_full, nullptr);
  s.ring = det_malloc(kQueueCap * 8);
  s.state = det_malloc(4 * 8);

  det_pthread_t producer;
  det_pthread_t consumers[2];
  det_pthread_create(&producer, nullptr, Producer, &s);
  det_pthread_create(&consumers[0], nullptr, Consumer, &s);
  det_pthread_create(&consumers[1], nullptr, Consumer, &s);
  det_pthread_join(producer, nullptr);
  det_pthread_join(consumers[0], nullptr);
  det_pthread_join(consumers[1], nullptr);
  const uint64_t checksum = GetU64(s.state + 24);
  det_free(s.ring);
  det_free(s.state);
  return checksum;
}

}  // namespace

int main() {
  const uint64_t a = RunOnce();
  const uint64_t b = RunOnce();
  std::printf("producer/consumer checksum, run 1: %016llx\n",
              static_cast<unsigned long long>(a));
  std::printf("producer/consumer checksum, run 2: %016llx\n",
              static_cast<unsigned long long>(b));
  std::printf(a == b ? "deterministic ✓\n" : "NONDETERMINISTIC!\n");
  return a == b ? 0 : 1;
}
