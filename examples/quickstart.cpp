// Quickstart: a shared counter incremented by four deterministic threads.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The program runs the same multithreaded computation twice on the RFDet
// runtime and shows that the result — and every intermediate observable —
// is identical. Swap kRfdetCi for kPthreads to see the conventional,
// nondeterministic behaviour.
#include <cstdio>

#include "rfdet/backends/backends.h"

namespace {

uint64_t RunOnce() {
  dmt::BackendConfig config;
  config.kind = dmt::BackendKind::kRfdetCi;  // the paper's system
  auto env = dmt::CreateEnv(config);

  // Shared state lives in the runtime's shared region, addressed by
  // offsets. AllocStatic is the setup-time allocator for globals.
  const dmt::GAddr counter = env->AllocStatic(sizeof(uint64_t));
  const size_t mutex = env->CreateMutex();

  std::vector<size_t> tids;
  for (int t = 0; t < 4; ++t) {
    tids.push_back(env->Spawn([&env, counter, mutex, t] {
      for (int i = 0; i < 1000; ++i) {
        env->Lock(mutex);
        env->Put<uint64_t>(counter, env->Get<uint64_t>(counter) + t + 1);
        env->Unlock(mutex);
      }
    }));
  }
  for (const size_t tid : tids) env->Join(tid);
  return env->Get<uint64_t>(counter);
}

}  // namespace

int main() {
  const uint64_t first = RunOnce();
  const uint64_t second = RunOnce();
  std::printf("first run:  %llu\n", static_cast<unsigned long long>(first));
  std::printf("second run: %llu\n", static_cast<unsigned long long>(second));
  std::printf(first == second ? "deterministic ✓\n" : "NONDETERMINISTIC!\n");
  return first == second ? 0 : 1;
}
