// Replay debugging: the paper's motivating use case (§1).
//
// A buggy program with a data race is run several times under the
// conventional runtime and under RFDet. Under pthreads the race resolves
// differently across runs — the bug "moves" and may vanish under a
// debugger. Under RFDet every execution takes the same schedule and
// resolves the race the same way, so the failing run can be reproduced
// at will by re-running with the same input.
#include <cstdio>
#include <set>

#include "rfdet/backends/backends.h"

namespace {

// The "bug": two threads racing on an unprotected counter plus a flag
// protocol with a missing lock. The final value depends on interleaving.
uint64_t RunBuggyProgram(dmt::BackendKind kind) {
  dmt::BackendConfig config;
  config.kind = kind;
  auto env = dmt::CreateEnv(config);
  const dmt::GAddr value = env->AllocStatic(sizeof(uint64_t));

  const size_t t1 = env->Spawn([&] {
    for (int i = 0; i < 5000; ++i) {
      // Unsynchronized read-modify-write: a data race with t2.
      env->Put<uint64_t>(value, env->Get<uint64_t>(value) + 1);
    }
  });
  const size_t t2 = env->Spawn([&] {
    for (int i = 0; i < 5000; ++i) {
      env->Put<uint64_t>(value, env->Get<uint64_t>(value) * 3 + 1);
    }
  });
  env->Join(t1);
  env->Join(t2);
  return env->Get<uint64_t>(value);
}

size_t DistinctOutputs(dmt::BackendKind kind, int runs) {
  std::set<uint64_t> outputs;
  for (int i = 0; i < runs; ++i) outputs.insert(RunBuggyProgram(kind));
  return outputs.size();
}

}  // namespace

int main() {
  constexpr int kRuns = 10;
  const size_t pthreads = DistinctOutputs(dmt::BackendKind::kPthreads, kRuns);
  const size_t rfdet = DistinctOutputs(dmt::BackendKind::kRfdetCi, kRuns);
  std::printf("%d runs of a racy program:\n", kRuns);
  std::printf("  pthreads: %zu distinct outcome(s)%s\n", pthreads,
              pthreads > 1 ? "  <- the bug is a moving target" : "");
  std::printf("  rfdet:    %zu distinct outcome(s)%s\n", rfdet,
              rfdet == 1 ? "  <- reproducible every time" : "");
  return rfdet == 1 ? 0 : 1;
}
