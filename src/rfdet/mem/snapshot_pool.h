// Per-thread pool of page snapshots.
//
// The first store to a page within a slice copies the page (paper Fig. 4);
// at slice close the snapshots are diffed against the live pages and then
// "released immediately" (paper §5.4). Snapshots therefore have strict
// slice lifetime, which this pool exploits: bump allocation out of
// mmap-backed chunks, wholesale Reset() at slice close.
//
// The pool is also used from the RFDet-pf SIGSEGV handler, so AllocPage()
// is async-signal-safe on its hot path (no malloc): chunk memory comes
// from mmap and the chunk directory is pre-reserved.
#pragma once

#include <cstddef>
#include <vector>

#include "rfdet/common/fault_injection.h"
#include "rfdet/mem/addr.h"

namespace rfdet {

class SnapshotPool {
 public:
  SnapshotPool();
  ~SnapshotPool();

  SnapshotPool(const SnapshotPool&) = delete;
  SnapshotPool& operator=(const SnapshotPool&) = delete;

  // Returns a kPageSize buffer valid until Reset(), or nullptr when the
  // pool cannot grow (chunk directory full, mmap failure, or an injected
  // kSnapshotAcquire fault) — the caller owns the failure policy.
  // Async-signal-safe: no malloc, chunk directory pre-reserved.
  std::byte* AllocPage() noexcept;

  // Optional deterministic fault injection at the allocation site.
  void SetFaultInjector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }

  // Releases every snapshot (chunks are retained for reuse).
  void Reset() noexcept { next_ = 0; }

  [[nodiscard]] size_t BytesInUse() const noexcept { return next_; }
  [[nodiscard]] size_t BytesReserved() const noexcept {
    return chunks_.size() * kChunkBytes;
  }

 private:
  static constexpr size_t kPagesPerChunk = 1024;  // 4 MiB chunks
  static constexpr size_t kChunkBytes = kPagesPerChunk * kPageSize;
  static constexpr size_t kMaxChunks = 256;

  std::byte* Grow() noexcept;

  std::vector<std::byte*> chunks_;
  size_t next_ = 0;  // bump offset across the logical concatenation
  FaultInjector* injector_ = nullptr;
};

}  // namespace rfdet
