// Page-partitioned apply plans — the propagation fast path's run index.
//
// A slice's ModList is immutable once published, but every receiver of the
// slice must apply it page by page: pending-list handling, page protection
// and ci page materialization are all per-page concerns, so the legacy
// apply loop re-split every run at page boundaries *per receiver*. An
// ApplyPlan performs that partitioning exactly once: it clips each run
// into single-page segments and groups them by page (pages ascending,
// segments in original run order within a page). N receivers then share
// one plan — and because the plan's page list is sorted, a page-fault-mode
// receiver can open/close contiguous page ranges with single mprotect
// calls instead of two syscalls per fragment (see
// ThreadView::ApplyRemote(const ModList&, const ApplyPlan&, bool)).
//
// Grouping by page cannot change results: segments on different pages
// address disjoint bytes, and within one page the original order is kept,
// so the §4.6 later-run-wins overlap policy is preserved bit for bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rfdet/mem/addr.h"
#include "rfdet/mem/mod_list.h"

namespace rfdet {

// One run fragment clipped to a single page. `data_offset` indexes the
// payload of the ModList the plan was built from.
struct PlanSegment {
  GAddr addr;
  uint32_t len;
  uint32_t data_offset;
};

// All segments landing on one page, contiguous in the segment array.
struct PlanPage {
  PageId pid;
  uint32_t first;  // index of the page's first segment
  uint32_t count;
  uint32_t bytes;  // total payload bytes targeting this page
};

class ApplyPlan {
 public:
  ApplyPlan() = default;

  // Partitions `mods` into a plan. O(F log P) for F page-clipped fragments
  // over P distinct pages — paid once per slice instead of per receiver.
  [[nodiscard]] static ApplyPlan Build(const ModList& mods);

  [[nodiscard]] bool Empty() const noexcept { return pages_.empty(); }
  [[nodiscard]] size_t PageCount() const noexcept { return pages_.size(); }
  [[nodiscard]] size_t SegmentCount() const noexcept {
    return segments_.size();
  }

  // Pages in ascending PageId order.
  [[nodiscard]] std::span<const PlanPage> Pages() const noexcept {
    return pages_;
  }
  [[nodiscard]] std::span<const PlanSegment> Segments(
      const PlanPage& page) const noexcept {
    return {segments_.data() + page.first, page.count};
  }

  // Retained memory, for metadata-space accounting (plans live logically
  // in the metadata space alongside the slice that caches them).
  [[nodiscard]] size_t MemoryBytes() const noexcept {
    return pages_.capacity() * sizeof(PlanPage) +
           segments_.capacity() * sizeof(PlanSegment);
  }

 private:
  std::vector<PlanPage> pages_;        // sorted by pid
  std::vector<PlanSegment> segments_;  // grouped by page, run order within
};

}  // namespace rfdet
