#include "rfdet/mem/snapshot_pool.h"

#include <sys/mman.h>

#include "rfdet/common/check.h"

namespace rfdet {

SnapshotPool::SnapshotPool() { chunks_.reserve(kMaxChunks); }

SnapshotPool::~SnapshotPool() {
  for (std::byte* chunk : chunks_) {
    ::munmap(chunk, kChunkBytes);
  }
}

std::byte* SnapshotPool::AllocPage() noexcept {
  if (injector_ != nullptr &&
      injector_->ShouldFail(FaultSite::kSnapshotAcquire)) {
    return nullptr;  // simulated chunk-reservation failure
  }
  const size_t chunk_idx = next_ / kChunkBytes;
  const size_t chunk_off = next_ % kChunkBytes;
  if (chunk_idx == chunks_.size()) {
    if (Grow() == nullptr) return nullptr;
  }
  next_ += kPageSize;
  return chunks_[chunk_idx] + chunk_off;
}

std::byte* SnapshotPool::Grow() noexcept {
  // Exhaustion is reported to the caller (nullptr), not aborted here: the
  // ThreadView turns it into a structured panic with the snapshot context,
  // and fault-injection tests exercise that path without 1 GiB of mmaps.
  // push_back below never reallocates (capacity pre-reserved), keeping this
  // safe to run from the page-fault handler.
  if (chunks_.size() >= kMaxChunks) return nullptr;
  void* mem = ::mmap(nullptr, kChunkBytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) return nullptr;
  chunks_.push_back(static_cast<std::byte*>(mem));
  return chunks_.back();
}

}  // namespace rfdet
