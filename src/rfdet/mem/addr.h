// Global-address naming for the shared memory space.
//
// The paper's RFDet gives every thread a private copy of the application's
// shared memory at identical virtual addresses (clone() without CLONE_VM).
// This library names shared locations by 64-bit *offsets* into a
// SharedRegion instead; each thread's private ThreadView materializes pages
// of that offset space on demand. DLRC needs only a common naming scheme
// plus per-thread isolation, both of which this provides portably.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rfdet {

// Offset into the shared region. GAddr 0 is valid; kNullGAddr marks "no
// address" (the region's first 16 bytes are reserved so allocators never
// hand out 0 anyway).
using GAddr = uint64_t;
inline constexpr GAddr kNullGAddr = ~GAddr{0};

inline constexpr size_t kPageShift = 12;
inline constexpr size_t kPageSize = size_t{1} << kPageShift;  // 4 KiB
inline constexpr size_t kPageMask = kPageSize - 1;

using PageId = uint64_t;

constexpr PageId PageOf(GAddr a) noexcept { return a >> kPageShift; }
constexpr size_t PageOffset(GAddr a) noexcept { return a & kPageMask; }
constexpr GAddr PageBase(PageId p) noexcept { return GAddr{p} << kPageShift; }

}  // namespace rfdet
