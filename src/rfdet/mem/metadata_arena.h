// Accounting for the shared *metadata space* (paper Fig. 3, §5.4).
//
// In RFDet the metadata space is a shared mapping holding internal
// synchronization variables, slices and snapshots; its usage crossing a
// threshold (90% of 256 MB in the paper's experiments) triggers slice
// garbage collection. Here the host address space is already shared, so
// the arena is an *accounting* object: subsystems charge and release bytes
// and the runtime polls NeedsGc() — reproducing the paper's GC-count
// behaviour (Table 1, last column) with the same capacity/threshold knobs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace rfdet {

class MetadataArena {
 public:
  static constexpr size_t kDefaultCapacity = 256ull << 20;  // 256 MB
  static constexpr double kDefaultGcThreshold = 0.90;

  explicit MetadataArena(size_t capacity = kDefaultCapacity,
                         double gc_threshold = kDefaultGcThreshold) noexcept
      : capacity_(capacity),
        gc_trip_bytes_(static_cast<size_t>(
            static_cast<double>(capacity) * gc_threshold)) {}

  void Charge(size_t bytes) noexcept {
    const size_t now =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Track the high-water mark (best effort under concurrency).
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }

  void Release(size_t bytes) noexcept {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] size_t Used() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] size_t Peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] size_t Capacity() const noexcept { return capacity_; }

  [[nodiscard]] bool NeedsGc() const noexcept {
    return Used() >= gc_trip_bytes_;
  }

  // True iff charging `bytes` would stay within the configured capacity.
  // The arena is an accounting object, so exceeding capacity is *survivable*
  // here (host memory still backs the data) — callers use HasRoom to drive
  // the GC-then-retry path and to report overflow rather than to gate the
  // charge itself.
  [[nodiscard]] bool HasRoom(size_t bytes) const noexcept {
    return Used() + bytes <= capacity_;
  }

  void RecordGc() noexcept {
    gc_count_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t GcCount() const noexcept {
    return gc_count_.load(std::memory_order_relaxed);
  }

 private:
  size_t capacity_;
  size_t gc_trip_bytes_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<uint64_t> gc_count_{0};
};

}  // namespace rfdet
