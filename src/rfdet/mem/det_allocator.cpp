#include "rfdet/mem/det_allocator.h"

#include <algorithm>
#include <bit>

#include "rfdet/common/check.h"
#include "rfdet/common/wire.h"

namespace rfdet {

namespace {
constexpr GAddr AlignUp(GAddr a, size_t align) noexcept {
  return (a + align - 1) & ~static_cast<GAddr>(align - 1);
}
}  // namespace

DetAllocator::DetAllocator(const Config& config)
    : static_bump_(config.static_base),
      static_end_(config.static_base + config.static_size),
      heap_base_(AlignUp(config.static_base + config.static_size, kPageSize)),
      heap_size_(config.heap_size) {
  RFDET_CHECK(config.max_threads > 0);
  const size_t per_thread =
      (heap_size_ / config.max_threads) & ~(kPageSize - 1);
  RFDET_CHECK_MSG(per_thread >= kPageSize, "heap too small for max_threads");
  subheaps_.resize(config.max_threads);
  for (size_t t = 0; t < config.max_threads; ++t) {
    subheaps_[t].base = heap_base_ + t * per_thread;
    subheaps_[t].bump = subheaps_[t].base;
    subheaps_[t].end = subheaps_[t].base + per_thread;
  }
}

size_t DetAllocator::BlockSizeFor(size_t size) noexcept {
  if (size < kMinAlign) size = kMinAlign;
  if (size <= kPageSize) return std::bit_ceil(size);
  return AlignUp(size, kPageSize);
}

int DetAllocator::ClassFor(size_t block_size) noexcept {
  // block_size is a power of two in [16, 4096].
  const int cls = std::countr_zero(block_size) - 4;
  return cls;
}

GAddr DetAllocator::TryAllocStatic(size_t size, size_t align) noexcept {
  if (align < kMinAlign) align = kMinAlign;
  const GAddr aligned = AlignUp(static_bump_, align);
  if (aligned + size > static_end_) return kNullGAddr;
  static_bump_ = aligned + size;
  return aligned;
}

GAddr DetAllocator::AllocStatic(size_t size, size_t align) {
  const GAddr addr = TryAllocStatic(size, align);
  RFDET_CHECK_MSG(addr != kNullGAddr, "static segment exhausted");
  return addr;
}

GAddr DetAllocator::TryAlloc(size_t tid, size_t size) {
  RFDET_CHECK(tid < subheaps_.size());
  const size_t block = BlockSizeFor(size);
  SubHeap& heap = subheaps_[tid];

  GAddr addr = kNullGAddr;
  if (block <= kPageSize) {
    auto& list = heap.free_lists[ClassFor(block)];
    if (!list.empty()) {
      addr = list.back();
      list.pop_back();
    }
  } else {
    auto it = heap.large_free.find(block);
    if (it != heap.large_free.end() && !it->second.empty()) {
      addr = it->second.back();
      it->second.pop_back();
    }
  }
  if (addr == kNullGAddr) {
    const GAddr bumped = AlignUp(heap.bump, block <= kPageSize ? block
                                                               : kPageSize);
    if (bumped + block > heap.end) return kNullGAddr;
    addr = bumped;
    heap.bump = bumped + block;
  }

  {
    std::scoped_lock lock(size_map_mu_);
    size_map_.emplace(addr, block);
    ++allocs_;
    live_bytes_ += block;
    peak_bytes_ = std::max(peak_bytes_, live_bytes_);
  }
  return addr;
}

GAddr DetAllocator::Alloc(size_t tid, size_t size) {
  const GAddr addr = TryAlloc(tid, size);
  RFDET_CHECK_MSG(addr != kNullGAddr, "subheap exhausted");
  return addr;
}

void DetAllocator::Free(size_t tid, GAddr addr) {
  RFDET_CHECK(tid < subheaps_.size());
  size_t block;
  {
    std::scoped_lock lock(size_map_mu_);
    auto it = size_map_.find(addr);
    RFDET_CHECK_MSG(it != size_map_.end(), "free of unallocated address");
    block = it->second;
    size_map_.erase(it);
    ++frees_;
    live_bytes_ -= block;
  }
  SubHeap& heap = subheaps_[tid];
  if (block <= kPageSize) {
    heap.free_lists[ClassFor(block)].push_back(addr);
  } else {
    heap.large_free[block].push_back(addr);
  }
}

void DetAllocator::SerializeState(std::string& out) {
  std::scoped_lock lock(size_map_mu_);
  wire::PutU64(out, static_bump_);
  wire::PutU64(out, heap_base_);
  wire::PutU64(out, heap_size_);
  wire::PutU64(out, subheaps_.size());
  for (const SubHeap& heap : subheaps_) {
    wire::PutU64(out, heap.bump);
    for (const auto& list : heap.free_lists) {
      wire::PutU64(out, list.size());
      for (GAddr a : list) wire::PutU64(out, a);
    }
    // Hash-map iteration order is not stable; sort so the image is a
    // pure function of the allocator state.
    std::vector<size_t> sizes;
    sizes.reserve(heap.large_free.size());
    for (const auto& [size, list] : heap.large_free) {
      if (!list.empty()) sizes.push_back(size);
    }
    std::sort(sizes.begin(), sizes.end());
    wire::PutU64(out, sizes.size());
    for (size_t size : sizes) {
      const auto& list = heap.large_free.at(size);
      wire::PutU64(out, size);
      wire::PutU64(out, list.size());
      for (GAddr a : list) wire::PutU64(out, a);
    }
  }
  std::vector<GAddr> live;
  live.reserve(size_map_.size());
  for (const auto& [addr, size] : size_map_) live.push_back(addr);
  std::sort(live.begin(), live.end());
  wire::PutU64(out, live.size());
  for (GAddr a : live) {
    wire::PutU64(out, a);
    wire::PutU64(out, size_map_.at(a));
  }
  wire::PutU64(out, allocs_);
  wire::PutU64(out, frees_);
  wire::PutU64(out, live_bytes_);
  wire::PutU64(out, peak_bytes_);
}

bool DetAllocator::RestoreState(const std::string& in, size_t* pos) {
  std::scoped_lock lock(size_map_mu_);
  uint64_t v = 0;
  if (!wire::GetU64(in, pos, &v)) return false;
  const GAddr static_bump = v;
  if (static_bump > static_end_) return false;
  if (!wire::GetU64(in, pos, &v) || v != heap_base_) return false;
  if (!wire::GetU64(in, pos, &v) || v != heap_size_) return false;
  if (!wire::GetU64(in, pos, &v) || v != subheaps_.size()) return false;
  std::vector<SubHeap> heaps(subheaps_.size());
  for (size_t t = 0; t < heaps.size(); ++t) {
    SubHeap& heap = heaps[t];
    heap.base = subheaps_[t].base;
    heap.end = subheaps_[t].end;
    if (!wire::GetU64(in, pos, &heap.bump) || heap.bump < heap.base ||
        heap.bump > heap.end) {
      return false;
    }
    for (auto& list : heap.free_lists) {
      uint64_t n = 0;
      if (!wire::GetU64(in, pos, &n) || n > in.size() / 8) return false;
      list.resize(n);
      for (auto& a : list) {
        if (!wire::GetU64(in, pos, &a)) return false;
      }
    }
    uint64_t nsizes = 0;
    if (!wire::GetU64(in, pos, &nsizes) || nsizes > in.size() / 8) {
      return false;
    }
    for (uint64_t i = 0; i < nsizes; ++i) {
      uint64_t size = 0, n = 0;
      if (!wire::GetU64(in, pos, &size) || !wire::GetU64(in, pos, &n) ||
          n > in.size() / 8) {
        return false;
      }
      auto& list = heap.large_free[size];
      list.resize(n);
      for (auto& a : list) {
        if (!wire::GetU64(in, pos, &a)) return false;
      }
    }
  }
  uint64_t nlive = 0;
  if (!wire::GetU64(in, pos, &nlive) || nlive > in.size() / 16) return false;
  std::unordered_map<GAddr, size_t> size_map;
  size_map.reserve(nlive);
  for (uint64_t i = 0; i < nlive; ++i) {
    uint64_t addr = 0, size = 0;
    if (!wire::GetU64(in, pos, &addr) || !wire::GetU64(in, pos, &size)) {
      return false;
    }
    size_map.emplace(addr, size);
  }
  uint64_t allocs = 0, frees = 0, live_bytes = 0, peak_bytes = 0;
  if (!wire::GetU64(in, pos, &allocs) || !wire::GetU64(in, pos, &frees) ||
      !wire::GetU64(in, pos, &live_bytes) ||
      !wire::GetU64(in, pos, &peak_bytes)) {
    return false;
  }
  static_bump_ = static_bump;
  subheaps_ = std::move(heaps);
  size_map_ = std::move(size_map);
  allocs_ = allocs;
  frees_ = frees;
  live_bytes_ = live_bytes;
  peak_bytes_ = peak_bytes;
  return true;
}

}  // namespace rfdet
