#include "rfdet/mem/det_allocator.h"

#include <algorithm>
#include <bit>

#include "rfdet/common/check.h"

namespace rfdet {

namespace {
constexpr GAddr AlignUp(GAddr a, size_t align) noexcept {
  return (a + align - 1) & ~static_cast<GAddr>(align - 1);
}
}  // namespace

DetAllocator::DetAllocator(const Config& config)
    : static_bump_(config.static_base),
      static_end_(config.static_base + config.static_size),
      heap_base_(AlignUp(config.static_base + config.static_size, kPageSize)),
      heap_size_(config.heap_size) {
  RFDET_CHECK(config.max_threads > 0);
  const size_t per_thread =
      (heap_size_ / config.max_threads) & ~(kPageSize - 1);
  RFDET_CHECK_MSG(per_thread >= kPageSize, "heap too small for max_threads");
  subheaps_.resize(config.max_threads);
  for (size_t t = 0; t < config.max_threads; ++t) {
    subheaps_[t].base = heap_base_ + t * per_thread;
    subheaps_[t].bump = subheaps_[t].base;
    subheaps_[t].end = subheaps_[t].base + per_thread;
  }
}

size_t DetAllocator::BlockSizeFor(size_t size) noexcept {
  if (size < kMinAlign) size = kMinAlign;
  if (size <= kPageSize) return std::bit_ceil(size);
  return AlignUp(size, kPageSize);
}

int DetAllocator::ClassFor(size_t block_size) noexcept {
  // block_size is a power of two in [16, 4096].
  const int cls = std::countr_zero(block_size) - 4;
  return cls;
}

GAddr DetAllocator::TryAllocStatic(size_t size, size_t align) noexcept {
  if (align < kMinAlign) align = kMinAlign;
  const GAddr aligned = AlignUp(static_bump_, align);
  if (aligned + size > static_end_) return kNullGAddr;
  static_bump_ = aligned + size;
  return aligned;
}

GAddr DetAllocator::AllocStatic(size_t size, size_t align) {
  const GAddr addr = TryAllocStatic(size, align);
  RFDET_CHECK_MSG(addr != kNullGAddr, "static segment exhausted");
  return addr;
}

GAddr DetAllocator::TryAlloc(size_t tid, size_t size) {
  RFDET_CHECK(tid < subheaps_.size());
  const size_t block = BlockSizeFor(size);
  SubHeap& heap = subheaps_[tid];

  GAddr addr = kNullGAddr;
  if (block <= kPageSize) {
    auto& list = heap.free_lists[ClassFor(block)];
    if (!list.empty()) {
      addr = list.back();
      list.pop_back();
    }
  } else {
    auto it = heap.large_free.find(block);
    if (it != heap.large_free.end() && !it->second.empty()) {
      addr = it->second.back();
      it->second.pop_back();
    }
  }
  if (addr == kNullGAddr) {
    const GAddr bumped = AlignUp(heap.bump, block <= kPageSize ? block
                                                               : kPageSize);
    if (bumped + block > heap.end) return kNullGAddr;
    addr = bumped;
    heap.bump = bumped + block;
  }

  {
    std::scoped_lock lock(size_map_mu_);
    size_map_.emplace(addr, block);
    ++allocs_;
    live_bytes_ += block;
    peak_bytes_ = std::max(peak_bytes_, live_bytes_);
  }
  return addr;
}

GAddr DetAllocator::Alloc(size_t tid, size_t size) {
  const GAddr addr = TryAlloc(tid, size);
  RFDET_CHECK_MSG(addr != kNullGAddr, "subheap exhausted");
  return addr;
}

void DetAllocator::Free(size_t tid, GAddr addr) {
  RFDET_CHECK(tid < subheaps_.size());
  size_t block;
  {
    std::scoped_lock lock(size_map_mu_);
    auto it = size_map_.find(addr);
    RFDET_CHECK_MSG(it != size_map_.end(), "free of unallocated address");
    block = it->second;
    size_map_.erase(it);
    ++frees_;
    live_bytes_ -= block;
  }
  SubHeap& heap = subheaps_[tid];
  if (block <= kPageSize) {
    heap.free_lists[ClassFor(block)].push_back(addr);
  } else {
    heap.large_free[block].push_back(addr);
  }
}

}  // namespace rfdet
