// Deterministic shared-memory allocator (the paper's Hoard adaptation, §4.4).
//
// Threads live in separate memory spaces, so a conventional allocator
// would hand two threads the same address for different objects. RFDet
// solves this by making allocation metadata shared and allocation results
// deterministic. This allocator provides the same two guarantees over the
// GAddr space:
//
//  * no cross-thread conflicts — the heap is partitioned into per-thread
//    subheaps, so concurrent allocations never overlap;
//  * determinism — each thread's allocation addresses are a pure function
//    of its own (deterministic) allocation history: per-thread bump
//    pointers plus per-thread size-class free lists. A block freed by
//    thread F becomes reusable by F, regardless of which thread allocated
//    it — deterministic because F's frees are deterministic.
//
// Like the paper, a `static` segment below the heap serves allocations
// made before the first thread is created (application globals).
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "rfdet/mem/addr.h"

namespace rfdet {

class DetAllocator {
 public:
  struct Config {
    GAddr static_base = 16;         // 0..16 reserved so no object is at 0
    size_t static_size = 4u << 20;  // 4 MiB of pre-thread globals
    size_t heap_size = 56u << 20;
    size_t max_threads = 64;
  };

  explicit DetAllocator(const Config& config);

  DetAllocator(const DetAllocator&) = delete;
  DetAllocator& operator=(const DetAllocator&) = delete;

  // Bump allocation in the static segment (application setup, before any
  // worker thread runs). AllocStatic panics on exhaustion; TryAllocStatic
  // returns kNullGAddr instead (the recoverable path).
  GAddr AllocStatic(size_t size, size_t align = kMinAlign);
  GAddr TryAllocStatic(size_t size, size_t align = kMinAlign) noexcept;

  // malloc/free replacements; tid identifies the *calling* thread. Alloc
  // panics when the subheap is exhausted; TryAlloc returns kNullGAddr.
  GAddr Alloc(size_t tid, size_t size);
  GAddr TryAlloc(size_t tid, size_t size);
  void Free(size_t tid, GAddr addr);

  [[nodiscard]] GAddr HeapBase() const noexcept { return heap_base_; }
  [[nodiscard]] GAddr RegionEnd() const noexcept {
    return heap_base_ + heap_size_;
  }
  [[nodiscard]] uint64_t AllocCount() const noexcept { return allocs_; }
  [[nodiscard]] uint64_t FreeCount() const noexcept { return frees_; }
  [[nodiscard]] size_t LiveBytes() const noexcept { return live_bytes_; }
  [[nodiscard]] size_t PeakBytes() const noexcept { return peak_bytes_; }
  [[nodiscard]] size_t StaticBytes() const noexcept {
    return static_bump_ - 16;
  }

  // Exposed for tests: the rounded block size a request maps to.
  static size_t BlockSizeFor(size_t size) noexcept;

  // Checkpoint support. SerializeState appends the complete allocator
  // state (bump cursors, free lists, live-block map, counters) to `out`
  // in a stable order; RestoreState rebuilds it from `in` at `*pos`,
  // returning false on a truncated or geometry-mismatched image. The
  // target allocator must have been built with the same Config. Both are
  // quiescent-only (checkpoints happen at a quiescent turn boundary).
  void SerializeState(std::string& out);
  [[nodiscard]] bool RestoreState(const std::string& in, size_t* pos);

 private:
  static constexpr size_t kMinAlign = 16;
  static constexpr size_t kNumClasses = 9;  // 16..4096, ×2 each

  static int ClassFor(size_t block_size) noexcept;

  struct SubHeap {
    GAddr base = 0;
    GAddr bump = 0;
    GAddr end = 0;
    std::vector<GAddr> free_lists[kNumClasses];
    // Large blocks (> 4096) keyed by exact rounded size.
    std::unordered_map<size_t, std::vector<GAddr>> large_free;
  };

  GAddr static_bump_;
  GAddr static_end_;
  GAddr heap_base_;
  size_t heap_size_;
  std::vector<SubHeap> subheaps_;

  // addr → rounded block size, shared bookkeeping for unsized free.
  // Contents are a deterministic function of the allocation history; the
  // mutex only orders physically concurrent map operations.
  std::mutex size_map_mu_;
  std::unordered_map<GAddr, size_t> size_map_;

  uint64_t allocs_ = 0;  // updated under size_map_mu_
  uint64_t frees_ = 0;
  size_t live_bytes_ = 0;
  size_t peak_bytes_ = 0;
};

}  // namespace rfdet
