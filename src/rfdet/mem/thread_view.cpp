#include "rfdet/mem/thread_view.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>

#include "rfdet/common/check.h"
#include "rfdet/common/fault_injection.h"
#include "rfdet/simd/kernels.h"

namespace rfdet {

namespace {

// All-zero page backing reads of never-written ci pages.
alignas(kPageSize) const std::byte kZeroPage[kPageSize] = {};

// Plan segments are usually tens of bytes, where the libc call (plus the
// dispatch-table indirection) costs more than the copy itself: inline a
// word loop below the kernel cutoff, dispatch above it. Hundreds of
// segments per apply make this the planned path's inner loop.
inline void CopySegment(std::byte* dst, const std::byte* src, size_t n,
                        const simd::KernelOps& ops) {
  if (n >= simd::kDispatchMinBytes) {
    ops.copy_bytes(dst, src, n);
    return;
  }
  for (; n >= 8; dst += 8, src += 8, n -= 8) {
    uint64_t w;
    std::memcpy(&w, src, 8);
    std::memcpy(dst, &w, 8);
  }
  for (; n > 0; ++dst, ++src, --n) *dst = *src;
}

// The view whose pages are currently fault-monitored on this thread.
thread_local ThreadView* g_active_view = nullptr;

std::atomic<bool> g_handler_installed{false};
struct sigaction g_prev_sigsegv;
struct sigaction g_prev_sigbus;

bool FaultIsWrite(void* ucontext) noexcept {
#if defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(ucontext);
  return (uc->uc_mcontext.gregs[REG_ERR] & 0x2) != 0;
#elif defined(__aarch64__) && defined(__linux__)
  // Linux exposes the fault's ESR_EL1 as an esr_context record in the
  // mcontext's __reserved area. For data aborts (EC 0x24/0x25) bit 6 (WnR)
  // distinguishes writes from reads; decoding it avoids the spurious
  // page snapshot a treat-as-write fallback pays on every read fault.
  constexpr uint32_t kEsrMagic = 0x45535201;  // ESR_MAGIC
  constexpr uint32_t kEcDataAbortLower = 0x24;
  constexpr uint32_t kEcDataAbortSame = 0x25;
  const auto* uc = static_cast<const ucontext_t*>(ucontext);
  const auto* p =
      reinterpret_cast<const uint8_t*>(uc->uc_mcontext.__reserved);
  const uint8_t* const end = p + sizeof(uc->uc_mcontext.__reserved);
  while (p + 8 <= end) {
    uint32_t magic;
    uint32_t size;
    std::memcpy(&magic, p, sizeof magic);
    std::memcpy(&size, p + 4, sizeof size);
    if (magic == 0 || size < 8 || p + size > end) break;
    if (magic == kEsrMagic) {
      if (size < 16) break;
      uint64_t esr;
      std::memcpy(&esr, p + 8, sizeof esr);
      const uint32_t ec = static_cast<uint32_t>(esr >> 26) & 0x3f;
      if (ec == kEcDataAbortLower || ec == kEcDataAbortSame) {
        return (esr & (uint64_t{1} << 6)) != 0;  // WnR
      }
      break;  // not a data abort: fall back to the conservative answer
    }
    p += size;
  }
  return true;  // no ESR record found: conservative treat-as-write
#else
  (void)ucontext;
  return true;  // conservative: treat as write (costs a spurious snapshot)
#endif
}

void SegvHandler(int sig, siginfo_t* info, void* ucontext) {
  ThreadView* view = g_active_view;
  if (view != nullptr &&
      view->HandleFault(info->si_addr, FaultIsWrite(ucontext))) {
    return;
  }
  // Not ours: fall back to the previous disposition so genuine crashes
  // still produce a core / default report.
  if (g_prev_sigsegv.sa_flags & SA_SIGINFO) {
    if (g_prev_sigsegv.sa_sigaction != nullptr) {
      g_prev_sigsegv.sa_sigaction(sig, info, ucontext);
      return;
    }
  } else if (g_prev_sigsegv.sa_handler != SIG_DFL &&
             g_prev_sigsegv.sa_handler != SIG_IGN &&
             g_prev_sigsegv.sa_handler != nullptr) {
    g_prev_sigsegv.sa_handler(sig);
    return;
  }
  ::signal(SIGSEGV, SIG_DFL);
  ::raise(SIGSEGV);
}

// SIGBUS inside an active view means the memfd pages backing the mapping
// are gone — the file was truncated or tmpfs ran out of pages *after* the
// mapping was established, so the region contents are unrecoverable
// in-process. Continuing would silently corrupt deterministic state;
// instead take the fail-safe exit with a recognizable code so a
// supervising parent restarts from the last checkpoint. Everything here
// must be async-signal-safe: pointer compares, write(2), _exit(2).
void BusHandler(int sig, siginfo_t* info, void* ucontext) {
  ThreadView* view = g_active_view;
  if (view != nullptr && view->OwnsAddress(info->si_addr)) {
    static const char msg[] =
        "rfdet: region backing lost (SIGBUS in view); exiting for "
        "supervised restart\n";
    (void)!::write(2, msg, sizeof msg - 1);
    ::_exit(kRegionBackingLostExit);
  }
  if (g_prev_sigbus.sa_flags & SA_SIGINFO) {
    if (g_prev_sigbus.sa_sigaction != nullptr) {
      g_prev_sigbus.sa_sigaction(sig, info, ucontext);
      return;
    }
  } else if (g_prev_sigbus.sa_handler != SIG_DFL &&
             g_prev_sigbus.sa_handler != SIG_IGN &&
             g_prev_sigbus.sa_handler != nullptr) {
    g_prev_sigbus.sa_handler(sig);
    return;
  }
  ::signal(SIGBUS, SIG_DFL);
  ::raise(SIGBUS);
}

}  // namespace

ThreadView::ThreadView(
    size_t capacity_bytes, MonitorMode mode, MetadataArena* arena,
    FaultInjector* injector, bool track_reads,
    std::function<void(RfdetErrc, const std::string&)> on_error)
    : mode_(mode),
      capacity_(capacity_bytes),
      arena_(arena),
      injector_(injector),
      on_error_(std::move(on_error)),
      track_reads_(track_reads) {
  snapshots_.SetFaultInjector(injector);
  RFDET_CHECK_MSG(capacity_ % kPageSize == 0,
                  "region capacity must be page aligned");
  num_pages_ = capacity_ / kPageSize;
  modified_.reserve(num_pages_);
  pending_pages_.reserve(256);
  pending_free_.reserve(256);
  if (track_reads_) {
    read_marked_.assign(num_pages_, 0);
    // MarkRead runs inside the pf fault handler, where allocating is not
    // async-signal-safe. read_marked_ dedups per slice, so num_pages_
    // bounds the list; reserving it keeps push_back allocation-free.
    read_pages_.reserve(num_pages_);
  }
  if (mode_ == MonitorMode::kInstrumented) {
    table_.resize(num_pages_);
  } else {
    // With read tracking, pages start (and return between slices to)
    // PROT_NONE so the first read of a page faults and is recorded.
    // Back the region with a memfd and map it twice: the monitored
    // mapping (whose per-page protections drive write detection) plus an
    // always-RW alias for remote propagation, which then needs no
    // mprotect at all. Fall back to a plain anonymous mapping — and the
    // mprotect-batched apply — where memfd is unavailable.
    const int prot0 = track_reads_ ? PROT_NONE : PROT_READ;
    void* mem = MAP_FAILED;
#if defined(__linux__)
    // The memfd reservation can fail for real (tmpfs quota, ENOSPC) or by
    // injection (FaultSite::kRegionBacking); both degrade to the anonymous
    // mapping below — byte-identical behavior, just without the alias fast
    // path — and surface as a recoverable kNoMemory report, never a crash.
    const bool backing_fault =
        injector_ != nullptr &&
        injector_->ShouldFail(FaultSite::kRegionBacking);
    memfd_ = ::memfd_create("rfdet-view", MFD_CLOEXEC);
    if (memfd_ >= 0 && !backing_fault &&
        ::ftruncate(memfd_, static_cast<off_t>(capacity_)) == 0) {
      mem = ::mmap(nullptr, capacity_, prot0, MAP_SHARED | MAP_NORESERVE,
                   memfd_, 0);
      if (mem != MAP_FAILED) {
        void* rw = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_NORESERVE, memfd_, 0);
        if (rw != MAP_FAILED) {
          alias_ = static_cast<std::byte*>(rw);
        } else {
          ::munmap(mem, capacity_);
          mem = MAP_FAILED;
        }
      }
    }
    if (mem == MAP_FAILED && memfd_ >= 0) {
      ::close(memfd_);
      memfd_ = -1;
    }
    if (mem == MAP_FAILED) {
      ++stats_.backing_fallbacks;
      if (on_error_) {
        on_error_(RfdetErrc::kNoMemory,
                  "view memfd backing unavailable; falling back to an "
                  "anonymous mapping");
      }
    }
#endif
    if (mem == MAP_FAILED) {
      mem = ::mmap(nullptr, capacity_, prot0,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    }
    RFDET_CHECK_MSG(mem != MAP_FAILED, "view mmap failed");
    flat_ = static_cast<std::byte*>(mem);
    prot_.assign(num_pages_, track_reads_ ? kProtNone : kProtRO);
    touched_.assign(num_pages_, 0);
    pf_snap_.assign(num_pages_, nullptr);
    pf_pending_.assign(num_pages_, kNoPending);
    InstallFaultHandler();
  }
}

ThreadView::~ThreadView() {
  if (flat_ != nullptr) ::munmap(flat_, capacity_);
  if (alias_ != nullptr) ::munmap(alias_, capacity_);
  if (memfd_ >= 0) ::close(memfd_);
}

void ThreadView::ZeroResetPf() {
#if defined(__linux__)
  if (memfd_ >= 0) {
    const bool backing_fault =
        injector_ != nullptr &&
        injector_->ShouldFail(FaultSite::kRegionBacking);
    if (!backing_fault &&
        ::fallocate(memfd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE, 0,
                    static_cast<off_t>(capacity_)) == 0) {
      return;
    }
    // Hole punch refused (exotic filesystem, tmpfs pressure, injected
    // fault): zero the pages through the always-RW alias instead — the
    // same bytes, just without releasing the backing store.
    ++stats_.backing_fallbacks;
    if (on_error_) {
      on_error_(RfdetErrc::kNoMemory,
                "view memfd hole punch failed; zeroing through the alias");
    }
    std::memset(alias_, 0, capacity_);
    return;
  }
#endif
  ::madvise(flat_, capacity_, MADV_DONTNEED);
}

// ---------------------------------------------------------------------------
// pf-mode plumbing
// ---------------------------------------------------------------------------

void ThreadView::InstallFaultHandler() {
  bool expected = false;
  if (!g_handler_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa = {};
  sa.sa_sigaction = SegvHandler;
  sa.sa_flags = SA_SIGINFO | SA_NODEFER;
  sigemptyset(&sa.sa_mask);
  RFDET_CHECK(::sigaction(SIGSEGV, &sa, &g_prev_sigsegv) == 0);
  struct sigaction sb = {};
  sb.sa_sigaction = BusHandler;
  sb.sa_flags = SA_SIGINFO | SA_NODEFER;
  sigemptyset(&sb.sa_mask);
  RFDET_CHECK(::sigaction(SIGBUS, &sb, &g_prev_sigbus) == 0);
}

void ThreadView::ActivateOnThisThread() noexcept { g_active_view = this; }

void ThreadView::DeactivateOnThisThread() noexcept { g_active_view = nullptr; }

namespace {
constexpr int kNativeProt[] = {PROT_READ, PROT_READ | PROT_WRITE, PROT_NONE};
}  // namespace

void ThreadView::SetProt(PageId pid, Prot p) noexcept {
  if (prot_[pid] == p) return;
  ::mprotect(flat_ + PageBase(pid), kPageSize, kNativeProt[p]);
  ++stats_.mprotect_calls;
  prot_[pid] = static_cast<uint8_t>(p);
}

void ThreadView::ProtectSorted(std::span<const PageId> pids,
                               Prot to) noexcept {
  size_t i = 0;
  while (i < pids.size()) {
    // Skip pages already at the target protection.
    while (i < pids.size() && prot_[pids[i]] == to) ++i;
    if (i == pids.size()) break;
    // Extend over pages that are address-contiguous and need the change —
    // mixed source protections (RO and NONE) merge into one call.
    size_t j = i;
    while (j + 1 < pids.size() && pids[j + 1] == pids[j] + 1 &&
           prot_[pids[j + 1]] != to) {
      ++j;
    }
    ::mprotect(flat_ + PageBase(pids[i]),
               (pids[j] - pids[i] + 1) * kPageSize, kNativeProt[to]);
    ++stats_.mprotect_calls;
    for (size_t k = i; k <= j; ++k) {
      prot_[pids[k]] = static_cast<uint8_t>(to);
    }
    i = j + 1;
  }
}

void ThreadView::SnapshotPf(PageId pid) noexcept {
  // Idempotent within a slice: a page can fault again after read-tracking
  // re-armed it below RW mid-window (off-turn prepare keeps the window
  // live); the diff base must stay the slice-start image.
  if (pf_snap_[pid] != nullptr) return;
  std::byte* snap = snapshots_.AllocPage();
  // Structured failure instead of a wild memcpy: the pool cannot grow
  // (genuine exhaustion or an injected kSnapshotAcquire fault).
  RFDET_CHECK_MSG(snap != nullptr, "snapshot pool exhausted");
  std::memcpy(snap, flat_ + PageBase(pid), kPageSize);
  pf_snap_[pid] = snap;
  modified_.push_back(pid);
  touched_[pid] = 1;
  ++stats_.stores_with_copy;
  if (arena_ != nullptr) arena_->Charge(kPageSize);
}

bool ThreadView::HandleFault(void* addr, bool is_write) noexcept {
  if (mode_ != MonitorMode::kPageFault) return false;
  const auto off = static_cast<size_t>(static_cast<std::byte*>(addr) - flat_);
  if (flat_ == nullptr || off >= capacity_) return false;
  const PageId pid = PageOf(off);
  ++stats_.page_faults;
  switch (prot_[pid]) {
    case kProtNone:
      ApplyPendingToPage(pid);  // leaves the page RO if it had pending runs
      // Read tracking arms pages NONE even without pending runs, so the
      // drain above may not have changed the protection; open to RO
      // explicitly or the access would fault forever.
      if (prot_[pid] == kProtNone) SetProt(pid, kProtRO);
      if (is_write) {
        SnapshotPf(pid);
        SetProt(pid, kProtRW);
      } else if (track_reads_) {
        MarkRead(pid);  // stays RO: one read fault per page per slice
      }
      return true;
    case kProtRO:
      if (!is_write) return false;  // RO pages are readable: not our fault
      SnapshotPf(pid);
      SetProt(pid, kProtRW);
      return true;
    case kProtRW:
    default:
      return false;  // an RW page cannot fault: genuine error
  }
}

// ---------------------------------------------------------------------------
// Slice lifecycle
// ---------------------------------------------------------------------------

void ThreadView::CollectModifications(ModList& out) {
  PreviewModifications(out);
  ResetSliceWindow();
}

void ThreadView::PreviewModifications(ModList& out) {
  // Diffing wants ascending page order anyway (runs come out address-
  // sorted per page), and sorted pages let the pf re-protection in
  // ResetSliceWindow collapse into one mprotect per contiguous range.
  std::sort(modified_.begin(), modified_.end());
  for (const PageId pid : modified_) {
    const std::byte* snap;
    const std::byte* cur;
    if (mode_ == MonitorMode::kInstrumented) {
      snap = table_[pid].snapshot;
      cur = table_[pid].page->bytes;
    } else {
      snap = pf_snap_[pid];
      cur = flat_ + PageBase(pid);
    }
    out.AppendPageDiff(PageBase(pid), snap, cur);
    ++stats_.pages_diffed;
  }
}

void ThreadView::ResetSliceWindow() {
  std::sort(modified_.begin(), modified_.end());
  if (mode_ == MonitorMode::kPageFault) {
    for (const PageId pid : modified_) pf_snap_[pid] = nullptr;
    // Read tracking re-arms dirty pages all the way to NONE so the next
    // slice's first read of them is seen, not just the first write.
    ProtectSorted(modified_, track_reads_ ? kProtNone : kProtRO);
  }
  modified_.clear();
  if (arena_ != nullptr) arena_->Release(snapshots_.BytesInUse());
  snapshots_.Reset();
  ++slice_seq_;  // invalidates every ci snapshot_seq at once
}

// ---------------------------------------------------------------------------
// ci-mode page management
// ---------------------------------------------------------------------------

void ThreadView::MaterializeCi(PageId pid) {
  table_[pid].page = std::make_shared<Page>();
  std::memset(table_[pid].page->bytes, 0, kPageSize);
  ++resident_;
}

void ThreadView::UnshareCi(PageId pid) {
  PageEntry& e = table_[pid];
  auto copy = std::make_shared<Page>();
  std::memcpy(copy->bytes, e.page->bytes, kPageSize);
  e.page = std::move(copy);
}

void ThreadView::SnapshotCi(PageId pid) {
  PageEntry& e = table_[pid];
  std::byte* snap = snapshots_.AllocPage();
  RFDET_CHECK_MSG(snap != nullptr, "snapshot pool exhausted");
  std::memcpy(snap, e.page->bytes, kPageSize);
  e.snapshot = snap;
  e.snapshot_seq = slice_seq_;
  modified_.push_back(pid);
  ++stats_.stores_with_copy;
  if (arena_ != nullptr) arena_->Charge(kPageSize);
}

std::byte* ThreadView::EnsureWritableCi(PageId pid) {
  PageEntry& e = table_[pid];
  if (e.pending != kNoPending) ApplyPendingToPage(pid);
  if (!e.page) {
    MaterializeCi(pid);
  } else if (e.page.use_count() > 1) {
    UnshareCi(pid);
  }
  if (e.snapshot_seq != slice_seq_) SnapshotCi(pid);
  return e.page->bytes;
}

const std::byte* ThreadView::ReadablePageCi(PageId pid) {
  PageEntry& e = table_[pid];
  if (e.pending != kNoPending) ApplyPendingToPage(pid);
  return e.page ? e.page->bytes : kZeroPage;
}

// ---------------------------------------------------------------------------
// Instrumented access
// ---------------------------------------------------------------------------

void ThreadView::Store(GAddr addr, const void* src, size_t len) {
  RFDET_DCHECK(addr + len <= capacity_);
  const auto* s = static_cast<const std::byte*>(src);
  if (mode_ == MonitorMode::kPageFault) {
    // Raw write: the fault handler performs the Figure-4 bookkeeping.
    std::memcpy(flat_ + addr, s, len);
    return;
  }
  while (len > 0) {
    const PageId pid = PageOf(addr);
    const size_t off = PageOffset(addr);
    const size_t n = std::min(len, kPageSize - off);
    std::memcpy(EnsureWritableCi(pid) + off, s, n);
    addr += n;
    s += n;
    len -= n;
  }
}

void ThreadView::Load(GAddr addr, void* dst, size_t len) {
  RFDET_DCHECK(addr + len <= capacity_);
  auto* d = static_cast<std::byte*>(dst);
  if (mode_ == MonitorMode::kPageFault) {
    std::memcpy(d, flat_ + addr, len);
    return;
  }
  while (len > 0) {
    const PageId pid = PageOf(addr);
    const size_t off = PageOffset(addr);
    const size_t n = std::min(len, kPageSize - off);
    std::memcpy(d, ReadablePageCi(pid) + off, n);
    if (track_reads_) MarkRead(pid);
    addr += n;
    d += n;
    len -= n;
  }
}

// ---------------------------------------------------------------------------
// Pending (lazy-write) machinery
// ---------------------------------------------------------------------------

uint32_t& ThreadView::PendingIndexOf(PageId pid) noexcept {
  return (mode_ == MonitorMode::kInstrumented) ? table_[pid].pending
                                               : pf_pending_[pid];
}

uint32_t ThreadView::EnsurePendingSlot(PageId pid) {
  uint32_t& idx = PendingIndexOf(pid);
  if (idx == kNoPending) {
    if (!pending_free_.empty()) {
      idx = pending_free_.back();
      pending_free_.pop_back();
    } else {
      idx = static_cast<uint32_t>(pending_pool_.size());
      pending_pool_.emplace_back();
    }
    pending_pool_[idx].dir_pos =
        static_cast<uint32_t>(pending_pages_.size());
    pending_pages_.push_back(pid);
  }
  return idx;
}

void ThreadView::ParkPending(PageId pid, GAddr addr,
                             std::span<const std::byte> bytes) {
  const bool fresh = PendingIndexOf(pid) == kNoPending;
  const uint32_t idx = EnsurePendingSlot(pid);
  if (fresh && mode_ == MonitorMode::kPageFault) SetProt(pid, kProtNone);
  if (pending_pool_[idx].mods.AppendCoalescing(addr, bytes)) {
    ++stats_.lazy_runs_coalesced;
  }
  ++stats_.lazy_runs_parked;
}

void ThreadView::DrainPendingWritable(PageId pid) {
  uint32_t& idx = PendingIndexOf(pid);
  if (idx == kNoPending) return;
  const uint32_t taken = idx;
  idx = kNoPending;  // clear first: RawWrite below re-enters page helpers
  ModList& mods = pending_pool_[taken].mods;
  for (const ModRun& run : mods.Runs()) {
    RawWrite(run.addr, mods.RunData(run));
  }
  stats_.lazy_runs_applied += mods.RunCount();
  ++stats_.lazy_pages_applied;
  mods.Clear();
  // O(1) swap-remove from the pending-page directory via the stored
  // position (the removed page tells the moved page its new slot).
  const uint32_t pos = pending_pool_[taken].dir_pos;
  RFDET_DCHECK(pos < pending_pages_.size() && pending_pages_[pos] == pid);
  const PageId moved = pending_pages_.back();
  pending_pages_[pos] = moved;
  pending_pages_.pop_back();
  if (pos < pending_pages_.size()) {
    pending_pool_[PendingIndexOf(moved)].dir_pos = pos;
  }
  pending_free_.push_back(taken);
}

void ThreadView::ApplyPendingToPage(PageId pid) {
  if (PendingIndexOf(pid) == kNoPending) return;
  // pf: open the page while applying, and leave it clean (RO) afterwards —
  // it must never remain PROT_NONE once its pending list is gone, or later
  // cross-thread reads (barrier view copies) would fault unhandled.
  if (mode_ == MonitorMode::kPageFault) SetProt(pid, kProtRW);
  DrainPendingWritable(pid);
  if (mode_ == MonitorMode::kPageFault) SetProt(pid, kProtRO);
}

void ThreadView::RawWrite(GAddr addr, std::span<const std::byte> bytes) {
  // Writes that must NOT appear in the local slice's diff: remote
  // modifications being applied. They land before any snapshot of the
  // receiving slice exists for the page, or after ensuring the snapshot
  // already contains them (pending applied pre-snapshot), so diffs never
  // re-attribute them.
  size_t i = 0;
  while (i < bytes.size()) {
    const GAddr a = addr + i;
    const PageId pid = PageOf(a);
    const size_t off = PageOffset(a);
    const size_t n = std::min(bytes.size() - i, kPageSize - off);
    if (mode_ == MonitorMode::kInstrumented) {
      PageEntry& e = table_[pid];
      RFDET_DCHECK(e.pending == kNoPending);
      if (!e.page) {
        MaterializeCi(pid);
      } else if (e.page.use_count() > 1) {
        UnshareCi(pid);
      }
      std::memcpy(e.page->bytes + off, bytes.data() + i, n);
    } else {
      const auto prev = static_cast<Prot>(prot_[pid]);
      // A page being raw-written inside the fault handler is already RW;
      // from propagation it is RO. Never kProtNone (pending cleared first).
      if (prev != kProtRW) SetProt(pid, kProtRW);
      std::memcpy(flat_ + a, bytes.data() + i, n);
      touched_[pid] = 1;
      if (prev != kProtRW) SetProt(pid, prev);
    }
    i += n;
  }
}

std::byte* ThreadView::RawWritablePageCi(PageId pid) {
  PageEntry& e = table_[pid];
  RFDET_DCHECK(e.pending == kNoPending);
  if (!e.page) {
    MaterializeCi(pid);
  } else if (e.page.use_count() > 1) {
    UnshareCi(pid);
  }
  return e.page->bytes;
}

void ThreadView::ApplyRemote(const ModList& mods, const ApplyPlan& plan,
                             bool lazy) {
  if (plan.Empty()) return;
  ++stats_.planned_applies;
  if (lazy) {
    if (mode_ == MonitorMode::kPageFault) {
      // Batch the PROT_NONE flips for pages not yet pending. Plan pages
      // are sorted, so fresh pages group into contiguous mprotect ranges.
      scratch_pages_.clear();
      for (const PlanPage& page : plan.Pages()) {
        if (pf_pending_[page.pid] == kNoPending) {
          scratch_pages_.push_back(page.pid);
        }
      }
      for (const PageId pid : scratch_pages_) EnsurePendingSlot(pid);
      ProtectSorted(scratch_pages_, kProtNone);
    }
    for (const PlanPage& page : plan.Pages()) {
      const uint32_t idx = EnsurePendingSlot(page.pid);
      ModList& parked = pending_pool_[idx].mods;
      for (const PlanSegment& seg : plan.Segments(page)) {
        if (parked.AppendCoalescing(seg.addr,
                                    {mods.DataAt(seg.data_offset),
                                     seg.len})) {
          ++stats_.lazy_runs_coalesced;
        }
        ++stats_.lazy_runs_parked;
      }
    }
    return;
  }
  if (mode_ == MonitorMode::kPageFault) {
    if (alias_ != nullptr && !track_reads_) {
      // Zero-mprotect apply: segments land through the always-RW alias,
      // so the monitored mapping's protections stay exactly as they are
      // (RO pages stay RO and keep faulting on local writes; pages the
      // local thread already opened stay RW, matching the open-page
      // path's merge behavior). Read tracking still takes the mprotect
      // path below — it must re-arm remotely-written pages to PROT_NONE
      // so the next local read is observed.
      const simd::KernelOps& ops = simd::Kernels();
      for (const PlanPage& page : plan.Pages()) {
        // Older parked runs must land before this slice's segments
        // (no-op unless a lazy configuration parked some earlier).
        ApplyPendingToPage(page.pid);
        for (const PlanSegment& seg : plan.Segments(page)) {
          CopySegment(alias_ + seg.addr, mods.DataAt(seg.data_offset),
                      seg.len, ops);
        }
        touched_[page.pid] = 1;
      }
      return;
    }
    // Open every target page that is not already writable with ranged
    // mprotect calls, drain pending lists and write segments with the
    // pages open, then re-protect the same ranges. Pages found RW (a
    // fault-handler re-entry) are left RW, matching the per-run path.
    scratch_pages_.clear();
    for (const PlanPage& page : plan.Pages()) {
      if (prot_[page.pid] != kProtRW) scratch_pages_.push_back(page.pid);
    }
    ProtectSorted(scratch_pages_, kProtRW);
    const simd::KernelOps& ops = simd::Kernels();
    for (const PlanPage& page : plan.Pages()) {
      // Older parked runs must land before this slice's segments.
      DrainPendingWritable(page.pid);
      for (const PlanSegment& seg : plan.Segments(page)) {
        CopySegment(flat_ + seg.addr, mods.DataAt(seg.data_offset), seg.len,
                    ops);
      }
      touched_[page.pid] = 1;
    }
    // Under read tracking the remotely-written pages re-arm to NONE so
    // the next local read of them is still observed. The extra fault is
    // deterministic (the access stream is).
    ProtectSorted(scratch_pages_, track_reads_ ? kProtNone : kProtRO);
  } else {
    const simd::KernelOps& ops = simd::Kernels();
    for (const PlanPage& page : plan.Pages()) {
      if (table_[page.pid].pending != kNoPending) {
        ApplyPendingToPage(page.pid);
      }
      std::byte* dst = RawWritablePageCi(page.pid);
      for (const PlanSegment& seg : plan.Segments(page)) {
        CopySegment(dst + PageOffset(seg.addr), mods.DataAt(seg.data_offset),
                    seg.len, ops);
      }
    }
  }
}

void ThreadView::ApplyRemote(const ModList& mods, bool lazy) {
  for (const ModRun& run : mods.Runs()) {
    const auto bytes = mods.RunData(run);
    if (!lazy) {
      // Preserve ordering: older parked runs must land before this one.
      size_t i = 0;
      while (i < bytes.size()) {
        const GAddr a = run.addr + i;
        const PageId pid = PageOf(a);
        const size_t n =
            std::min(bytes.size() - i, kPageSize - PageOffset(a));
        ApplyPendingToPage(pid);
        RawWrite(a, bytes.subspan(i, n));
        i += n;
      }
    } else {
      size_t i = 0;
      while (i < bytes.size()) {
        const GAddr a = run.addr + i;
        const PageId pid = PageOf(a);
        const size_t n =
            std::min(bytes.size() - i, kPageSize - PageOffset(a));
        ParkPending(pid, a, bytes.subspan(i, n));
        i += n;
      }
    }
  }
}

void ThreadView::FlushPending() {
  if (pending_pages_.empty()) return;
  if (mode_ == MonitorMode::kPageFault) {
    // Open all pending pages in ranged mprotect batches, drain, re-protect
    // — the same syscall batching the planned ApplyRemote uses.
    scratch_pages_ = pending_pages_;
    std::sort(scratch_pages_.begin(), scratch_pages_.end());
    ProtectSorted(scratch_pages_, kProtRW);
    for (const PageId pid : scratch_pages_) DrainPendingWritable(pid);
    ProtectSorted(scratch_pages_, track_reads_ ? kProtNone : kProtRO);
  } else {
    while (!pending_pages_.empty()) {
      ApplyPendingToPage(pending_pages_.back());
    }
  }
}

// ---------------------------------------------------------------------------
// Read tracking (race detection)
// ---------------------------------------------------------------------------

void ThreadView::HarvestReadPages(std::vector<PageId>& out) {
  out.clear();
  if (!track_reads_ || read_pages_.empty()) return;
  std::sort(read_pages_.begin(), read_pages_.end());
  // Re-arm the pages this slice read (pages it also wrote were already
  // re-armed by CollectModifications and are skipped by ProtectSorted).
  if (mode_ == MonitorMode::kPageFault) {
    ProtectSorted(read_pages_, kProtNone);
  }
  for (const PageId pid : read_pages_) read_marked_[pid] = 0;
  out.swap(read_pages_);
  // The swap gave our full-capacity buffer away; restore it here (outside
  // the fault handler) so MarkRead never allocates.
  read_pages_.reserve(num_pages_);
}

void ThreadView::DisarmReadTracking() noexcept {
  if (!track_reads_ || mode_ != MonitorMode::kPageFault) return;
  ::mprotect(flat_, capacity_, PROT_READ);
  ++stats_.mprotect_calls;
  std::fill(prot_.begin(), prot_.end(), kProtRO);
}

void ThreadView::RearmReadTracking() noexcept {
  if (!track_reads_) return;
  for (const PageId pid : read_pages_) read_marked_[pid] = 0;
  read_pages_.clear();
  if (mode_ != MonitorMode::kPageFault) return;
  ::mprotect(flat_, capacity_, PROT_NONE);
  ++stats_.mprotect_calls;
  std::fill(prot_.begin(), prot_.end(), kProtNone);
}

// ---------------------------------------------------------------------------
// Checkpoint support
// ---------------------------------------------------------------------------

void ThreadView::ForEachResidentPage(
    const std::function<void(PageId, const std::byte*)>& fn) {
  RFDET_CHECK_MSG(!SliceDirty() && !HasPendingWrites(),
                  "checkpoint page scan requires an idle slice");
  if (mode_ == MonitorMode::kInstrumented) {
    for (PageId pid = 0; pid < num_pages_; ++pid) {
      const PageEntry& e = table_[pid];
      if (e.page) fn(pid, e.page->bytes);
    }
    return;
  }
  // pf: untouched pages are all-zero; touched pages may be armed
  // PROT_NONE under read tracking — read through the always-RW alias
  // when one exists, else open the page RO for the copy and re-arm it
  // (an mprotect pair, never a fault, so no read mark is recorded).
  for (PageId pid = 0; pid < num_pages_; ++pid) {
    if (!touched_[pid]) continue;
    if (alias_ != nullptr) {
      fn(pid, alias_ + PageBase(pid));
      continue;
    }
    const auto prev = static_cast<Prot>(prot_[pid]);
    if (prev == kProtNone) SetProt(pid, kProtRO);
    fn(pid, flat_ + PageBase(pid));
    if (prev == kProtNone) SetProt(pid, prev);
  }
}

// ---------------------------------------------------------------------------
// View duplication
// ---------------------------------------------------------------------------

void ThreadView::CopyFrom(ThreadView& other) {
  RFDET_CHECK(capacity_ == other.capacity_);
  RFDET_CHECK_MSG(modified_.empty() && other.modified_.empty(),
                  "CopyFrom requires both views to be between slices");
  other.FlushPending();
  FlushPending();
  // The copy below reads other.flat_ directly, but the fault handler only
  // covers the view active on *this* thread — drop the source's armed
  // PROT_NONE pages to readable for the duration.
  other.DisarmReadTracking();
  if (mode_ != other.mode_) {
    // Cross-mode copy (e.g. a pf thread view refreshing from a lockstep
    // runtime's ci global image): enumerate the source's materialized
    // pages and write them through this view's raw path.
    if (mode_ == MonitorMode::kInstrumented) {
      for (PageId pid = 0; pid < num_pages_; ++pid) table_[pid] = {};
      resident_ = 0;
    } else {
      ::mprotect(flat_, capacity_, PROT_READ | PROT_WRITE);
      ZeroResetPf();
      stats_.mprotect_calls += 2;
      std::fill(touched_.begin(), touched_.end(), 0);
      resident_ = 0;
    }
    for (PageId pid = 0; pid < num_pages_; ++pid) {
      const std::byte* src = nullptr;
      if (other.mode_ == MonitorMode::kInstrumented) {
        if (other.table_[pid].page) src = other.table_[pid].page->bytes;
      } else if (other.touched_[pid]) {
        src = other.flat_ + PageBase(pid);
      }
      if (src == nullptr) continue;
      if (mode_ == MonitorMode::kInstrumented) {
        MaterializeCi(pid);
        std::memcpy(table_[pid].page->bytes, src, kPageSize);
      } else {
        std::memcpy(flat_ + PageBase(pid), src, kPageSize);
        touched_[pid] = 1;
        ++resident_;
      }
    }
    if (mode_ == MonitorMode::kPageFault) {
      ::mprotect(flat_, capacity_, PROT_READ);
      ++stats_.mprotect_calls;
      std::fill(prot_.begin(), prot_.end(), kProtRO);
    }
    RearmReadTracking();
    other.RearmReadTracking();
    return;
  }
  if (mode_ == MonitorMode::kInstrumented) {
    table_ = other.table_;  // COW: pages shared until next store
    // Snapshot/pending fields copied from `other` are stale here; reset.
    for (PageEntry& e : table_) {
      e.snapshot = nullptr;
      e.snapshot_seq = 0;
      e.pending = kNoPending;
    }
    resident_ = other.resident_;
  } else {
    // Reset to zero cheaply, then copy the source's touched pages.
    ::mprotect(flat_, capacity_, PROT_READ | PROT_WRITE);
    ZeroResetPf();
    stats_.mprotect_calls += 2;
    resident_ = 0;
    for (PageId pid = 0; pid < num_pages_; ++pid) {
      if (other.touched_[pid]) {
        std::memcpy(flat_ + PageBase(pid), other.flat_ + PageBase(pid),
                    kPageSize);
        touched_[pid] = 1;
      } else {
        touched_[pid] = 0;
      }
      if (touched_[pid]) ++resident_;
    }
    ::mprotect(flat_, capacity_, PROT_READ);
    std::fill(prot_.begin(), prot_.end(), kProtRO);
  }
  RearmReadTracking();
  other.RearmReadTracking();
}

}  // namespace rfdet
