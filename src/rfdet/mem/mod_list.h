// Byte-granularity modification lists and page diffing.
//
// A slice's `modifications` (paper §4.2) is an ordered list of byte writes.
// The paper stores <addr, data> pairs with one-byte data; this
// implementation run-length-encodes maximal runs of *consecutive modified
// bytes* — semantically identical (runs never cover an unmodified byte, so
// applying a list writes exactly the bytes the slice changed, preserving
// the §4.6 redundant-write / conflict-merge policy bit for bit).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rfdet/mem/addr.h"

namespace rfdet {

// One maximal run of modified bytes: region bytes [addr, addr+len) with the
// payload stored at [data_offset, data_offset+len) in the owning list.
struct ModRun {
  GAddr addr;
  uint32_t len;
  uint32_t data_offset;
};

class ModList {
 public:
  ModList() = default;

  [[nodiscard]] bool Empty() const noexcept { return runs_.empty(); }
  [[nodiscard]] size_t RunCount() const noexcept { return runs_.size(); }
  [[nodiscard]] size_t ByteCount() const noexcept { return data_.size(); }

  [[nodiscard]] std::span<const ModRun> Runs() const noexcept {
    return runs_;
  }
  [[nodiscard]] std::span<const std::byte> RunData(
      const ModRun& run) const noexcept {
    return {data_.data() + run.data_offset, run.len};
  }
  // Raw payload access for apply-plan segments, which carry their own
  // (offset, length) pairs clipped from this list's runs.
  [[nodiscard]] const std::byte* DataAt(uint32_t offset) const noexcept {
    return data_.data() + offset;
  }

  // Appends a run covering [addr, addr+bytes.size()).
  void Append(GAddr addr, std::span<const std::byte> bytes);

  // Like Append, but if an existing run covers exactly the same byte
  // range, overwrites its payload in place instead of growing the list.
  // This is the paper's lazy-writes coalescing (§4.5): when a location
  // receives one update per critical section, only the most recent value
  // is kept, so a later flush performs one write instead of many.
  // Returns true if an existing run was replaced.
  bool AppendCoalescing(GAddr addr, std::span<const std::byte> bytes);

  // Appends every byte of [page_base, page_base+kPageSize) where `current`
  // differs from `snapshot`, as maximal runs. This is the page-diffing
  // step run at slice close (paper §4.2). Identical stretches are skipped
  // 64 bytes at a time (eight uint64_t compares the compiler can
  // vectorize), then word- and byte-refined at the block that differs.
  void AppendPageDiff(GAddr page_base, const std::byte* snapshot,
                      const std::byte* current);

  // Deterministic last-writer-wins merge (paper §4.6 applied across
  // slices): replays every run of `other`, in `other`'s order, over this
  // list, so a byte written by both keeps `other`'s value — exactly what a
  // sequential per-slice apply would leave in the region. Requires *this*
  // to be merge-normalized: empty, or built exclusively by MergeFrom (runs
  // sorted by address and pairwise disjoint). Sources need no such
  // invariant; a raw append-built list's internal overlaps resolve
  // later-wins run by run, as replay would.
  void MergeFrom(const ModList& other);

  // Payload bytes no surviving run references (overwritten or trimmed by
  // MergeFrom). ByteCount() includes them until Compact() drops them.
  [[nodiscard]] size_t DeadBytes() const noexcept { return dead_bytes_; }

  // Rewrites the payload to exactly the surviving runs' bytes in run
  // order. After Compact, ByteCount() == the sum of run lengths again.
  void Compact();

  // True when runs are sorted by address and pairwise disjoint — the
  // MergeFrom destination invariant. Raw append-built lists may violate
  // it; merged lists never do.
  [[nodiscard]] bool MergeNormalized() const noexcept;

  // Retained memory, for metadata-space accounting.
  [[nodiscard]] size_t MemoryBytes() const noexcept {
    return runs_.capacity() * sizeof(ModRun) + data_.capacity();
  }

  void Clear() noexcept {
    runs_.clear();
    data_.clear();
    dead_bytes_ = 0;
  }

 private:
  // Writes [addr, addr+len) into a merge-normalized list: trims or splits
  // overlapped neighbors, erases covered runs, inserts the new run.
  void OverwriteRun(GAddr addr, uint32_t len, const std::byte* bytes);

  std::vector<ModRun> runs_;
  std::vector<std::byte> data_;
  size_t dead_bytes_ = 0;
};

}  // namespace rfdet
