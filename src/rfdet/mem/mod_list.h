// Byte-granularity modification lists and page diffing.
//
// A slice's `modifications` (paper §4.2) is an ordered list of byte writes.
// The paper stores <addr, data> pairs with one-byte data; this
// implementation run-length-encodes maximal runs of *consecutive modified
// bytes* — semantically identical (runs never cover an unmodified byte, so
// applying a list writes exactly the bytes the slice changed, preserving
// the §4.6 redundant-write / conflict-merge policy bit for bit).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rfdet/mem/addr.h"

namespace rfdet {

// One maximal run of modified bytes: region bytes [addr, addr+len) with the
// payload stored at [data_offset, data_offset+len) in the owning list.
struct ModRun {
  GAddr addr;
  uint32_t len;
  uint32_t data_offset;
};

class ModList {
 public:
  ModList() = default;

  [[nodiscard]] bool Empty() const noexcept { return runs_.empty(); }
  [[nodiscard]] size_t RunCount() const noexcept { return runs_.size(); }
  [[nodiscard]] size_t ByteCount() const noexcept { return data_.size(); }

  [[nodiscard]] std::span<const ModRun> Runs() const noexcept {
    return runs_;
  }
  [[nodiscard]] std::span<const std::byte> RunData(
      const ModRun& run) const noexcept {
    return {data_.data() + run.data_offset, run.len};
  }
  // Raw payload access for apply-plan segments, which carry their own
  // (offset, length) pairs clipped from this list's runs.
  [[nodiscard]] const std::byte* DataAt(uint32_t offset) const noexcept {
    return data_.data() + offset;
  }

  // Appends a run covering [addr, addr+bytes.size()).
  void Append(GAddr addr, std::span<const std::byte> bytes);

  // Like Append, but if an existing run covers exactly the same byte
  // range, overwrites its payload in place instead of growing the list.
  // This is the paper's lazy-writes coalescing (§4.5): when a location
  // receives one update per critical section, only the most recent value
  // is kept, so a later flush performs one write instead of many.
  // Returns true if an existing run was replaced.
  bool AppendCoalescing(GAddr addr, std::span<const std::byte> bytes);

  // Appends every byte of [page_base, page_base+kPageSize) where `current`
  // differs from `snapshot`, as maximal runs. This is the page-diffing
  // step run at slice close (paper §4.2). Identical stretches are skipped
  // 64 bytes at a time (eight uint64_t compares the compiler can
  // vectorize), then word- and byte-refined at the block that differs.
  void AppendPageDiff(GAddr page_base, const std::byte* snapshot,
                      const std::byte* current);

  // Retained memory, for metadata-space accounting.
  [[nodiscard]] size_t MemoryBytes() const noexcept {
    return runs_.capacity() * sizeof(ModRun) + data_.capacity();
  }

  void Clear() noexcept {
    runs_.clear();
    data_.clear();
  }

 private:
  std::vector<ModRun> runs_;
  std::vector<std::byte> data_;
};

}  // namespace rfdet
