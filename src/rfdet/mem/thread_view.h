// ThreadView — a thread's private memory space over the shared region.
//
// DLRC requires that ordinary stores are invisible to other threads until
// propagated (paper §3). Each runtime thread owns a ThreadView: a private
// materialization of the global-address space. Two monitor backends exist,
// mirroring the paper's two RFDet variants (§4.2, Figure 7):
//
//  * kInstrumented ("RFDet-ci"): a copy-on-write page table. Every store
//    runs the Figure-4 algorithm — on the first store to a shared page
//    within a slice, snapshot the page and put it on the modified-pages
//    list. Loads/stores are explicit calls (the library-level analogue of
//    compile-time store instrumentation).
//
//  * kPageFault ("RFDet-pf"): a flat mmap'd image protected read-only at
//    slice start; the first store to a page raises SIGSEGV, and the fault
//    handler snapshots the page and opens it for writing — the
//    DThreads-style mprotect approach the paper measures against.
//
// At slice close, CollectModifications() diffs every snapshotted page
// byte-by-byte against its snapshot and emits the slice's byte-granularity
// modification list; snapshots are released immediately (paper §5.4).
//
// Remote modifications arriving via propagation are applied with
// ApplyRemote(): either eagerly (raw writes that bypass snapshotting, so
// they are never re-attributed to the local slice) or lazily (parked in
// per-page pending lists and applied on first local touch — the paper's
// *lazy writes* optimization, §4.5, implemented in pf mode with PROT_NONE
// exactly as described).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "rfdet/common/error.h"
#include "rfdet/mem/addr.h"
#include "rfdet/mem/apply_plan.h"
#include "rfdet/mem/metadata_arena.h"
#include "rfdet/mem/mod_list.h"
#include "rfdet/mem/snapshot_pool.h"

namespace rfdet {

enum class MonitorMode : uint8_t {
  kInstrumented,  // RFDet-ci
  kPageFault,     // RFDet-pf
};

// Exit code taken when the memfd pages backing a view vanish under an
// established mapping (SIGBUS: truncation or tmpfs exhaustion). The region
// contents are unrecoverable in-process, so the fault handler turns the
// would-be raw crash into a clean, recognizable exit a supervisor restarts
// from the last checkpoint.
inline constexpr int kRegionBackingLostExit = 104;

struct ViewStats {
  uint64_t backing_fallbacks = 0;  // memfd backing refused → degraded path
  uint64_t stores_with_copy = 0;   // page snapshots taken (Table 1 col. 9)
  uint64_t page_faults = 0;        // pf mode: SIGSEGV taken
  uint64_t mprotect_calls = 0;     // pf mode
  uint64_t pages_diffed = 0;       // pages compared at slice close
  uint64_t lazy_runs_parked = 0;   // lazy writes: runs deferred
  uint64_t lazy_runs_coalesced = 0;  // superseded before ever being written
  uint64_t lazy_pages_applied = 0;   // lazy writes: pages flushed on touch
  uint64_t lazy_runs_applied = 0;
  uint64_t planned_applies = 0;    // ApplyRemote calls that used an ApplyPlan
};

class ThreadView {
 public:
  // `track_reads` opts into page-granularity read-set tracking for the
  // race detector: pf mode keeps pages PROT_NONE between slices and
  // records a page on its first read fault (the page then drops to RO,
  // so one fault per page per slice); ci mode records in Load. Best
  // effort by design — a page whose first access is a write goes
  // straight to RW and its later reads are not seen — but the missed
  // set is a pure function of the deterministic access sequence, so
  // reports stay byte-identical across runs.
  // `on_error` receives recoverable backing degradations (memfd
  // reservation or hole-punch refused — RfdetErrc::kNoMemory; the view
  // falls back to an anonymous mapping / alias zeroing and stays
  // byte-identical). Defaults to silent fallback.
  ThreadView(size_t capacity_bytes, MonitorMode mode, MetadataArena* arena,
             FaultInjector* injector = nullptr, bool track_reads = false,
             std::function<void(RfdetErrc, const std::string&)> on_error = {});
  ~ThreadView();

  ThreadView(const ThreadView&) = delete;
  ThreadView& operator=(const ThreadView&) = delete;

  [[nodiscard]] MonitorMode mode() const noexcept { return mode_; }
  [[nodiscard]] size_t CapacityBytes() const noexcept { return capacity_; }

  // ---- Slice lifecycle -------------------------------------------------

  // Ends the current slice: diffs every snapshotted page against its
  // snapshot, appends the runs to `out`, releases the snapshots, and
  // re-arms monitoring for the next slice.
  void CollectModifications(ModList& out);

  // The two halves of CollectModifications, for the off-turn close path.
  // PreviewModifications appends the diff WITHOUT ending the slice:
  // snapshots, the modified-page list and (pf) protections stay live, so
  // a later preview — or the final CollectModifications — diffs the whole
  // window from slice start again. That keeps a prepared slice carried
  // across a merged sync op byte- and structure-identical to the single
  // diff a turn-serial close takes (an incremental append can split runs
  // or retain writes a later window reverted, and the fingerprint digests
  // run structure). ResetSliceWindow is the destructive tail: call it
  // when a prepared diff is adopted in place of CollectModifications.
  void PreviewModifications(ModList& out);
  void ResetSliceWindow();

  // ---- Instrumented access (all sizes and page-spanning allowed) --------

  void Store(GAddr addr, const void* src, size_t len);
  void Load(GAddr addr, void* dst, size_t len);

  // ---- Propagation -------------------------------------------------------

  // Applies a remote slice's modifications to this view. Eager mode writes
  // immediately; lazy mode parks runs per page until first local touch.
  // Must be called between slices in this view's owning thread's context
  // (i.e. no snapshots outstanding is NOT required — remote runs bypass
  // snapshot bookkeeping entirely and so never pollute local diffs).
  //
  // This overload re-partitions `mods` at page boundaries on every call
  // and, in pf mode, pays two mprotect calls per page fragment. It remains
  // the fallback for ad hoc ModLists applied once (lockstep backend,
  // tests); slice propagation uses the plan overload below.
  void ApplyRemote(const ModList& mods, bool lazy);

  // Fast path: applies `mods` through its pre-built page-partitioned plan
  // (Slice::Plan()). Byte-identical results to the overload above — the
  // plan only reorders work across pages, which address disjoint bytes.
  // In pf mode, the sorted page list lets protection changes happen in
  // contiguous batches: one mprotect per page range to open, one to
  // re-protect, instead of an RW/RO toggle pair per run fragment.
  void ApplyRemote(const ModList& mods, const ApplyPlan& plan, bool lazy);

  // Applies every parked pending run now (needed before view duplication).
  void FlushPending();

  // Replaces this view's contents with `other`'s (thread create inherits
  // the parent's memory; barriers hand every thread a copy of the merge
  // thread's memory — paper §4.1). COW page sharing in ci mode.
  void CopyFrom(ThreadView& other);

  // ---- Introspection -----------------------------------------------------

  [[nodiscard]] size_t ResidentPages() const noexcept { return resident_; }
  [[nodiscard]] size_t ResidentBytes() const noexcept {
    return resident_ * kPageSize;
  }
  [[nodiscard]] const ViewStats& Stats() const noexcept { return stats_; }
  [[nodiscard]] bool HasPendingWrites() const noexcept {
    return !pending_pages_.empty();
  }
  [[nodiscard]] bool TrackingReads() const noexcept { return track_reads_; }

  // Moves the slice's page-granularity read set into `out` (sorted,
  // deduplicated), clears the marks, and (pf) re-arms the harvested
  // pages to PROT_NONE for the next slice. Call after
  // CollectModifications, between slices. No-op when tracking is off.
  void HarvestReadPages(std::vector<PageId>& out);

  // ---- Checkpoint support ------------------------------------------------

  // True while the current slice holds monitoring state a checkpoint
  // could not capture: snapshotted (possibly dirty) pages, read marks, or
  // parked lazy writes. Auto-checkpoints only fire when clean — the
  // zero-perturbation rule that keeps checkpointing runs fingerprint-
  // identical to non-checkpointing ones.
  [[nodiscard]] bool SliceDirty() const noexcept {
    return !modified_.empty() || !read_pages_.empty() ||
           !pending_pages_.empty();
  }

  // Invokes `fn(pid, bytes)` for every resident (possibly non-zero) page
  // without perturbing monitoring state: no snapshots, no read marks, no
  // unhandled faults (armed pf pages are briefly opened RO and re-armed).
  // Quiescent-only: requires an idle slice (SliceDirty() false).
  void ForEachResidentPage(
      const std::function<void(PageId, const std::byte*)>& fn);

  // Backing memfd of the pf flat image (-1 in ci mode or on the
  // anonymous-mapping fallback). Page contents live at offset
  // PageBase(pid) — the checkpoint writer's copy_file_range source.
  [[nodiscard]] int MemfdFd() const noexcept { return memfd_; }

  // Restores one page's contents from a checkpoint image. Bypasses slice
  // attribution (the write never appears in a local diff). Quiescent-only.
  void RestorePage(PageId pid, const std::byte* bytes) {
    RawWrite(PageBase(pid), std::span<const std::byte>(bytes, kPageSize));
  }

  // ---- pf-mode machinery -------------------------------------------------

  // Installs the process-wide SIGSEGV handler (idempotent).
  static void InstallFaultHandler();
  // Declares this view the fault target for the calling thread.
  void ActivateOnThisThread() noexcept;
  static void DeactivateOnThisThread() noexcept;
  // Returns true iff `addr` belongs to this view and the fault was absorbed.
  bool HandleFault(void* addr, bool is_write) noexcept;
  // True iff `addr` falls inside this view's monitored or alias mapping —
  // the SIGBUS handler's "is this our backing that just vanished?" test.
  // Async-signal-safe (pointer compares only).
  [[nodiscard]] bool OwnsAddress(const void* addr) const noexcept {
    const std::byte* p = static_cast<const std::byte*>(addr);
    return (flat_ != nullptr && p >= flat_ && p < flat_ + capacity_) ||
           (alias_ != nullptr && p >= alias_ && p < alias_ + capacity_);
  }

 private:
  struct Page {
    std::byte bytes[kPageSize];
  };

  static constexpr uint32_t kNoPending = UINT32_MAX;

  struct PageEntry {
    std::shared_ptr<Page> page;       // null == logically all-zero
    std::byte* snapshot = nullptr;    // valid iff snapshot_seq == slice_seq_
    uint64_t snapshot_seq = 0;
    uint32_t pending = kNoPending;    // index into pending_pool_
  };

  struct PendingPage {
    ModList mods;
    // This page's position in pending_pages_, kept current so removal is
    // O(1) instead of a std::find scan of the directory.
    uint32_t dir_pos = 0;
  };

  // pf page protection states.
  enum Prot : uint8_t { kProtRO = 0, kProtRW = 1, kProtNone = 2 };

  // -- ci helpers --
  std::byte* EnsureWritableCi(PageId pid);
  void MaterializeCi(PageId pid);
  void UnshareCi(PageId pid);
  void SnapshotCi(PageId pid);
  const std::byte* ReadablePageCi(PageId pid);

  // -- pf helpers --
  void SetProt(PageId pid, Prot p) noexcept;
  void SnapshotPf(PageId pid) noexcept;
  // Batched protection change: applies `to` to every page of `pids`
  // (sorted ascending) whose protection differs, one mprotect per
  // contiguous stretch. The propagation fast path's syscall saver.
  void ProtectSorted(std::span<const PageId> pids, Prot to) noexcept;

  // -- pending (both modes) --
  // The per-page pending-list slot (table_[pid].pending in ci,
  // pf_pending_[pid] in pf).
  [[nodiscard]] uint32_t& PendingIndexOf(PageId pid) noexcept;
  // Allocates a pending slot and directory entry for pid (no protection
  // change — callers batch or apply it themselves). Returns the slot.
  uint32_t EnsurePendingSlot(PageId pid);
  void ParkPending(PageId pid, GAddr addr, std::span<const std::byte> bytes);
  // Drains pid's pending list assuming the page is already writable;
  // updates stats, frees the slot, O(1)-removes the directory entry.
  void DrainPendingWritable(PageId pid);
  void ApplyPendingToPage(PageId pid);
  void RawWrite(GAddr addr, std::span<const std::byte> bytes);
  // ci: page writable for a *remote* (non-slice-attributed) write —
  // materialize/unshare without snapshotting.
  std::byte* RawWritablePageCi(PageId pid);

  // -- read tracking --
  void MarkRead(PageId pid) {
    if (read_marked_[pid] == 0) {
      read_marked_[pid] = 1;
      read_pages_.push_back(pid);
    }
  }
  // pf: returns the whole region to zeros. Punches a hole in the backing
  // memfd when one exists (MADV_DONTNEED would re-expose the old file
  // contents on a shared mapping), else MADV_DONTNEED on the anonymous
  // mapping.
  void ZeroResetPf();
  // pf: drops the whole region to PROT_READ so another thread can memcpy
  // from flat_ without faulting (the handler only covers the view active
  // on the *calling* thread). Re-arm with RearmReadTracking.
  void DisarmReadTracking() noexcept;
  // pf: PROT_NONE over the whole region and clears the read marks.
  void RearmReadTracking() noexcept;

  MonitorMode mode_;
  size_t capacity_;
  size_t num_pages_;
  MetadataArena* arena_;
  FaultInjector* injector_ = nullptr;  // kRegionBacking site
  std::function<void(RfdetErrc, const std::string&)> on_error_;

  // ci state.
  std::vector<PageEntry> table_;

  // pf state.
  std::byte* flat_ = nullptr;
  // Always-writable alias of the same memfd-backed pages (nullptr when
  // the region fell back to a plain anonymous mapping). Remote
  // propagation writes land through the alias, so the planned apply
  // needs no mprotect at all and the monitored mapping's per-page
  // protections — which drive local write detection — stay untouched.
  std::byte* alias_ = nullptr;
  int memfd_ = -1;
  std::vector<uint8_t> prot_;
  std::vector<uint8_t> touched_;
  std::vector<std::byte*> pf_snap_;  // per-page snapshot, valid while on modified_

  // Shared per-slice state.
  std::vector<PageId> modified_;  // pages snapshotted this slice
  SnapshotPool snapshots_;
  uint64_t slice_seq_ = 1;

  // Lazy-write pending state.
  std::vector<PendingPage> pending_pool_;
  std::vector<uint32_t> pending_free_;
  std::vector<PageId> pending_pages_;
  std::vector<uint32_t> pf_pending_;  // pf: per-page pending index

  // Scratch page list reused by the batched-mprotect apply path.
  std::vector<PageId> scratch_pages_;

  // Read-tracking state (race detection).
  bool track_reads_ = false;
  std::vector<uint8_t> read_marked_;  // per-page "read this slice" bit
  std::vector<PageId> read_pages_;    // insertion-ordered marked pages

  size_t resident_ = 0;
  ViewStats stats_;
};

}  // namespace rfdet
