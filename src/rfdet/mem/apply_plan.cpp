#include "rfdet/mem/apply_plan.h"

#include <algorithm>

namespace rfdet {

ApplyPlan ApplyPlan::Build(const ModList& mods) {
  ApplyPlan plan;
  if (mods.Empty()) return plan;

  // Clip every run at page boundaries. Most runs are intra-page, so the
  // fragment count is close to the run count.
  plan.segments_.reserve(mods.RunCount());
  for (const ModRun& run : mods.Runs()) {
    GAddr addr = run.addr;
    uint32_t remaining = run.len;
    uint32_t data_offset = run.data_offset;
    while (remaining > 0) {
      const auto n = static_cast<uint32_t>(
          std::min<size_t>(remaining, kPageSize - PageOffset(addr)));
      plan.segments_.push_back(PlanSegment{addr, n, data_offset});
      addr += n;
      data_offset += n;
      remaining -= n;
    }
  }

  // Group by page. stable_sort keeps the original run order within each
  // page, which the later-run-wins overlap policy depends on.
  std::stable_sort(plan.segments_.begin(), plan.segments_.end(),
                   [](const PlanSegment& a, const PlanSegment& b) {
                     return PageOf(a.addr) < PageOf(b.addr);
                   });

  for (size_t i = 0; i < plan.segments_.size();) {
    const PageId pid = PageOf(plan.segments_[i].addr);
    PlanPage page{pid, static_cast<uint32_t>(i), 0, 0};
    while (i < plan.segments_.size() &&
           PageOf(plan.segments_[i].addr) == pid) {
      ++page.count;
      page.bytes += plan.segments_[i].len;
      ++i;
    }
    plan.pages_.push_back(page);
  }
  plan.pages_.shrink_to_fit();
  plan.segments_.shrink_to_fit();
  return plan;
}

}  // namespace rfdet
