#include "rfdet/mem/mod_list.h"

#include <array>
#include <cstring>

#include "rfdet/simd/kernels.h"

namespace rfdet {

void ModList::Append(GAddr addr, std::span<const std::byte> bytes) {
  if (bytes.empty()) return;
  runs_.push_back(ModRun{addr, static_cast<uint32_t>(bytes.size()),
                         static_cast<uint32_t>(data_.size())});
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

bool ModList::AppendCoalescing(GAddr addr, std::span<const std::byte> bytes) {
  if (bytes.empty()) return false;
  // Scan backwards for a run covering exactly this range. In-place
  // replacement is only sound while no later run overlaps the range (a
  // later overlapping run must keep winning on the overlap), so the scan
  // stops at the first intersection. The scan depth is capped: falling
  // back to Append is always sound, and the cap keeps dense pending lists
  // from turning each park into a full-list walk.
  constexpr size_t kMaxScan = 16;
  size_t scanned = 0;
  const GAddr end = addr + bytes.size();
  for (auto it = runs_.rbegin(); it != runs_.rend() && scanned++ < kMaxScan;
       ++it) {
    if (it->addr == addr && it->len == bytes.size()) {
      std::memcpy(data_.data() + it->data_offset, bytes.data(),
                  bytes.size());
      return true;
    }
    if (it->addr < end && addr < it->addr + it->len) break;  // overlap
  }
  Append(addr, bytes);
  return false;
}

void ModList::AppendPageDiff(GAddr page_base, const std::byte* snapshot,
                             const std::byte* current) {
  // Run extraction goes through the dispatched kernel (AVX2/SSE2/NEON or
  // scalar). Every tier emits the same maximal differing-byte runs, so the
  // ModList — and every digest folded over it — is tier-independent.
  static thread_local std::array<simd::DiffRun, simd::kMaxDiffRuns> scratch;
  const simd::KernelOps& ops = simd::Kernels();
  const size_t count = ops.page_diff_runs(snapshot, current, scratch.data());
  for (size_t r = 0; r < count; ++r) {
    const simd::DiffRun& run = scratch[r];
    Append(page_base + run.start, {current + run.start, run.len});
  }
}

}  // namespace rfdet
