#include "rfdet/mem/mod_list.h"

#include <cstring>

namespace rfdet {

void ModList::Append(GAddr addr, std::span<const std::byte> bytes) {
  if (bytes.empty()) return;
  runs_.push_back(ModRun{addr, static_cast<uint32_t>(bytes.size()),
                         static_cast<uint32_t>(data_.size())});
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

bool ModList::AppendCoalescing(GAddr addr, std::span<const std::byte> bytes) {
  if (bytes.empty()) return false;
  // Scan backwards for a run covering exactly this range. In-place
  // replacement is only sound while no later run overlaps the range (a
  // later overlapping run must keep winning on the overlap), so the scan
  // stops at the first intersection. The scan depth is capped: falling
  // back to Append is always sound, and the cap keeps dense pending lists
  // from turning each park into a full-list walk.
  constexpr size_t kMaxScan = 16;
  size_t scanned = 0;
  const GAddr end = addr + bytes.size();
  for (auto it = runs_.rbegin(); it != runs_.rend() && scanned++ < kMaxScan;
       ++it) {
    if (it->addr == addr && it->len == bytes.size()) {
      std::memcpy(data_.data() + it->data_offset, bytes.data(),
                  bytes.size());
      return true;
    }
    if (it->addr < end && addr < it->addr + it->len) break;  // overlap
  }
  Append(addr, bytes);
  return false;
}

namespace {

// 64-byte block equality: eight unrolled uint64_t XORs folded into one
// accumulator — branch-free inside the block, so the compiler can keep it
// in vector registers. memcpy tolerates the unaligned positions a run tail
// leaves behind.
inline bool Block64Equal(const std::byte* a, const std::byte* b) noexcept {
  uint64_t x[8];
  uint64_t y[8];
  std::memcpy(x, a, sizeof x);
  std::memcpy(y, b, sizeof y);
  uint64_t acc = 0;
  for (int k = 0; k < 8; ++k) acc |= x[k] ^ y[k];
  return acc == 0;
}

constexpr size_t kDiffBlock = 64;

}  // namespace

void ModList::AppendPageDiff(GAddr page_base, const std::byte* snapshot,
                             const std::byte* current) {
  size_t i = 0;
  while (i < kPageSize) {
    // Fast-skip identical stretches a 64-byte block at a time, then refine
    // to the first differing byte word- and byte-wise.
    while (i + kDiffBlock <= kPageSize &&
           Block64Equal(snapshot + i, current + i)) {
      i += kDiffBlock;
    }
    while (i + sizeof(uint64_t) <= kPageSize) {
      uint64_t a;
      uint64_t b;
      std::memcpy(&a, snapshot + i, sizeof a);
      std::memcpy(&b, current + i, sizeof b);
      if (a != b) break;
      i += sizeof(uint64_t);
    }
    while (i < kPageSize && snapshot[i] == current[i]) ++i;
    if (i >= kPageSize) break;
    // Found a differing byte; extend to the maximal modified run.
    const size_t start = i;
    while (i < kPageSize && snapshot[i] != current[i]) ++i;
    Append(page_base + start, {current + start, i - start});
  }
}

}  // namespace rfdet
