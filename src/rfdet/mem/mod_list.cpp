#include "rfdet/mem/mod_list.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "rfdet/simd/kernels.h"

namespace rfdet {

void ModList::Append(GAddr addr, std::span<const std::byte> bytes) {
  if (bytes.empty()) return;
  runs_.push_back(ModRun{addr, static_cast<uint32_t>(bytes.size()),
                         static_cast<uint32_t>(data_.size())});
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

bool ModList::AppendCoalescing(GAddr addr, std::span<const std::byte> bytes) {
  if (bytes.empty()) return false;
  // Scan backwards for a run covering exactly this range. In-place
  // replacement is only sound while no later run overlaps the range (a
  // later overlapping run must keep winning on the overlap), so the scan
  // stops at the first intersection. The scan depth is capped: falling
  // back to Append is always sound, and the cap keeps dense pending lists
  // from turning each park into a full-list walk.
  constexpr size_t kMaxScan = 16;
  size_t scanned = 0;
  const GAddr end = addr + bytes.size();
  for (auto it = runs_.rbegin(); it != runs_.rend() && scanned++ < kMaxScan;
       ++it) {
    if (it->addr == addr && it->len == bytes.size()) {
      std::memcpy(data_.data() + it->data_offset, bytes.data(),
                  bytes.size());
      return true;
    }
    if (it->addr < end && addr < it->addr + it->len) break;  // overlap
  }
  Append(addr, bytes);
  return false;
}

void ModList::OverwriteRun(GAddr addr, uint32_t len, const std::byte* bytes) {
  if (len == 0) return;
  const GAddr end = addr + len;
  // First run whose end extends past addr. Runs left of it cannot overlap
  // [addr, end); the merge-normalized invariant (sorted, disjoint) makes
  // this binary search exact.
  auto it = std::lower_bound(
      runs_.begin(), runs_.end(), addr,
      [](const ModRun& r, GAddr a) { return r.addr + r.len <= a; });
  if (it != runs_.end() && it->addr < addr && it->addr + it->len > end) {
    // One run strictly contains the new range: split it into a prefix
    // keeping [it->addr, addr) and a suffix keeping [end, old_end); the
    // suffix aliases the original payload at the shifted offset.
    const ModRun suffix{
        end, static_cast<uint32_t>(it->addr + it->len - end),
        static_cast<uint32_t>(it->data_offset + (end - it->addr))};
    it->len = static_cast<uint32_t>(addr - it->addr);
    dead_bytes_ += len;
    it = runs_.insert(it + 1, suffix);
  } else {
    if (it != runs_.end() && it->addr < addr) {
      // Trim the tail of the left-overlapping neighbor.
      const uint32_t cut = static_cast<uint32_t>(it->addr + it->len - addr);
      it->len -= cut;
      dead_bytes_ += cut;
      ++it;
    }
    auto first_covered = it;
    while (it != runs_.end() && it->addr + it->len <= end) {
      dead_bytes_ += it->len;
      ++it;
    }
    it = runs_.erase(first_covered, it);
    if (it != runs_.end() && it->addr < end) {
      // Trim the head of the right-overlapping neighbor.
      const uint32_t cut = static_cast<uint32_t>(end - it->addr);
      it->addr += cut;
      it->data_offset += cut;
      it->len -= cut;
      dead_bytes_ += cut;
    }
  }
  runs_.insert(it, ModRun{addr, len, static_cast<uint32_t>(data_.size())});
  data_.insert(data_.end(), bytes, bytes + len);
}

void ModList::MergeFrom(const ModList& other) {
  runs_.reserve(runs_.size() + other.RunCount());
  data_.reserve(data_.size() + other.ByteCount());
  for (const ModRun& run : other.Runs()) {
    OverwriteRun(run.addr, run.len, other.DataAt(run.data_offset));
  }
}

void ModList::Compact() {
  if (dead_bytes_ == 0) return;
  std::vector<std::byte> live;
  live.reserve(data_.size() - dead_bytes_);
  for (ModRun& run : runs_) {
    const auto off = static_cast<uint32_t>(live.size());
    live.insert(live.end(), data_.begin() + run.data_offset,
                data_.begin() + run.data_offset + run.len);
    run.data_offset = off;
  }
  data_ = std::move(live);
  dead_bytes_ = 0;
}

bool ModList::MergeNormalized() const noexcept {
  for (size_t i = 1; i < runs_.size(); ++i) {
    if (runs_[i].addr < runs_[i - 1].addr + runs_[i - 1].len) return false;
  }
  return true;
}

void ModList::AppendPageDiff(GAddr page_base, const std::byte* snapshot,
                             const std::byte* current) {
  // Run extraction goes through the dispatched kernel (AVX2/SSE2/NEON or
  // scalar). Every tier emits the same maximal differing-byte runs, so the
  // ModList — and every digest folded over it — is tier-independent.
  static thread_local std::array<simd::DiffRun, simd::kMaxDiffRuns> scratch;
  const simd::KernelOps& ops = simd::Kernels();
  const size_t count = ops.page_diff_runs(snapshot, current, scratch.data());
  for (size_t r = 0; r < count; ++r) {
    const simd::DiffRun& run = scratch[r];
    Append(page_base + run.start, {current + run.start, run.len});
  }
}

}  // namespace rfdet
