#include "rfdet/time/vector_clock.h"

#include <algorithm>
#include <ostream>

namespace rfdet {

void VectorClock::Join(const VectorClock& other) {
  EnsureSize(other.c_.size());
  for (size_t i = 0; i < other.c_.size(); ++i) {
    c_[i] = std::max(c_[i], other.c_[i]);
  }
}

void VectorClock::Meet(const VectorClock& other) {
  // Missing components are zero on either side, so the result never has
  // more (nonzero) dimensions than the smaller operand.
  EnsureSize(other.c_.size());
  for (size_t i = 0; i < c_.size(); ++i) {
    c_[i] = std::min(c_[i], other.Get(i));
  }
}

bool VectorClock::LessEq(const VectorClock& other) const noexcept {
  for (size_t i = 0; i < c_.size(); ++i) {
    if (c_[i] > other.Get(i)) return false;
  }
  return true;
}

bool VectorClock::Equals(const VectorClock& other) const noexcept {
  const size_t n = std::max(c_.size(), other.c_.size());
  for (size_t i = 0; i < n; ++i) {
    if (Get(i) != other.Get(i)) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const VectorClock& vc) {
  os << '[';
  for (size_t i = 0; i < vc.Dims(); ++i) {
    if (i) os << ',';
    os << vc.Get(i);
  }
  return os << ']';
}

}  // namespace rfdet
