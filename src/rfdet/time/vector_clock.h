// Vector clocks (Fidge/Mattern) — the happens-before substrate for DLRC.
//
// Every slice carries a vector-clock timestamp; DLRC's visibility rule
// ("a write is visible iff it happens-before the current instruction") is
// decided entirely by comparing these timestamps (paper §4.2: A → B iff
// Time(A) < Time(B)).
//
// Clock protocol used by the runtime (equivalent to the paper's, with the
// increment placed so every slice gets a time distinct from its
// predecessor):
//   * at each synchronization operation, thread t first ticks its own
//     component, then closes the current slice with the resulting clock;
//   * a release on object m publishes m.lastTime = Ct;
//   * an acquire joins Ct with the observed release time.
// Under this protocol the propagation filters of the paper's Figure 5
// become exact set tests:
//   propagate slice s  iff  s.time ≤ lastTime  (happens-before the release)
//                      and !(s.time ≤ Ct)      (not already seen locally),
// and the runtime maintains the invariant that s is in thread t's
// slice-pointer list iff s.time ≤ Ct.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace rfdet {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(size_t dims) : c_(dims, 0) {}

  // Component access; reads beyond the stored size are implicitly zero,
  // so clocks created before later threads existed compare correctly.
  [[nodiscard]] uint64_t Get(size_t tid) const noexcept {
    return tid < c_.size() ? c_[tid] : 0;
  }
  void Set(size_t tid, uint64_t value) {
    EnsureSize(tid + 1);
    c_[tid] = value;
  }
  void Tick(size_t tid) {
    EnsureSize(tid + 1);
    ++c_[tid];
  }

  [[nodiscard]] size_t Dims() const noexcept { return c_.size(); }

  // Componentwise least-upper-bound (the ⊔ of paper §4.2).
  void Join(const VectorClock& other);

  // Componentwise greatest-lower-bound; missing components count as zero.
  // Used to compute the GC bound (min over all live threads' clocks).
  void Meet(const VectorClock& other);

  // Partial order. LessEq is componentwise ≤ (missing components are 0);
  // Less additionally requires inequality; HappensBefore is an alias for
  // Less matching the paper's A → B ⇔ Time(A) < Time(B).
  [[nodiscard]] bool LessEq(const VectorClock& other) const noexcept;
  [[nodiscard]] bool Less(const VectorClock& other) const noexcept {
    return LessEq(other) && !Equals(other);
  }
  [[nodiscard]] bool Equals(const VectorClock& other) const noexcept;
  [[nodiscard]] bool HappensBefore(const VectorClock& other) const noexcept {
    return Less(other);
  }
  [[nodiscard]] bool ConcurrentWith(const VectorClock& other) const noexcept {
    return !LessEq(other) && !other.LessEq(*this);
  }

  bool operator==(const VectorClock& other) const noexcept {
    return Equals(other);
  }

  // Total memory retained by this clock (for metadata accounting).
  [[nodiscard]] size_t MemoryBytes() const noexcept {
    return c_.capacity() * sizeof(uint64_t);
  }

 private:
  void EnsureSize(size_t dims) {
    if (c_.size() < dims) c_.resize(dims, 0);
  }
  std::vector<uint64_t> c_;
};

std::ostream& operator<<(std::ostream& os, const VectorClock& vc);

}  // namespace rfdet
