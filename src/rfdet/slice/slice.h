// Slices — the unit of memory-modification propagation (paper §4.2).
//
// A slice is a period of single-threaded, synchronization-free execution.
// Slices have the *atomic property*: every access inside a slice has the
// same happens-before relation to any instruction outside it, so DLRC can
// propagate whole slices instead of individual writes. Each slice is the
// triple <tid, modifications, timestamp> exactly as in the paper.
//
// Slices live logically in the metadata space: construction charges the
// MetadataArena and destruction releases it, so arena usage tracks live
// slice bytes and drives GC (paper §4.5 "Garbage Collection").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "rfdet/mem/apply_plan.h"
#include "rfdet/mem/metadata_arena.h"
#include "rfdet/mem/mod_list.h"
#include "rfdet/time/vector_clock.h"

namespace rfdet {

class Slice {
 public:
  // The bytes a slice built from (mods, time) will charge to the arena —
  // exposed so the runtime can reserve (GC-then-retry) before construction.
  [[nodiscard]] static size_t BytesFor(const ModList& mods,
                                       const VectorClock& time) noexcept {
    return sizeof(Slice) + mods.MemoryBytes() + time.MemoryBytes();
  }

  Slice(size_t tid, uint64_t seq, VectorClock time, ModList mods,
        MetadataArena* arena)
      : tid_(tid),
        seq_(seq),
        time_(std::move(time)),
        mods_(std::move(mods)),
        arena_(arena),
        charged_bytes_(sizeof(Slice) + mods_.MemoryBytes() +
                       time_.MemoryBytes()) {
    if (arena_ != nullptr) arena_->Charge(charged_bytes_);
  }

  ~Slice() {
    if (arena_ != nullptr) arena_->Release(charged_bytes_ + plan_bytes_);
  }

  Slice(const Slice&) = delete;
  Slice& operator=(const Slice&) = delete;

  [[nodiscard]] size_t tid() const noexcept { return tid_; }
  [[nodiscard]] uint64_t seq() const noexcept { return seq_; }
  [[nodiscard]] const VectorClock& time() const noexcept { return time_; }
  [[nodiscard]] const ModList& mods() const noexcept { return mods_; }
  [[nodiscard]] size_t MemoryBytes() const noexcept {
    return charged_bytes_ + plan_bytes_;
  }

  // The slice's page-partitioned apply plan, built lazily on the first
  // acquire that propagates this slice and shared by every later receiver
  // (the ModList is frozen, so the plan never changes). Thread-safe:
  // concurrent receivers race to the same call_once. The plan's memory is
  // arena-charged like the rest of the slice and released on destruction.
  // `built_counter`, when non-null, is incremented iff this call performed
  // the build (runtime stats: plans built vs. slices propagated).
  [[nodiscard]] const ApplyPlan& Plan(
      std::atomic<uint64_t>* built_counter = nullptr) const {
    std::call_once(plan_once_, [this, built_counter] {
      plan_ = ApplyPlan::Build(mods_);
      plan_bytes_ = plan_.MemoryBytes();
      if (arena_ != nullptr) arena_->Charge(plan_bytes_);
      if (built_counter != nullptr) {
        built_counter->fetch_add(1, std::memory_order_relaxed);
      }
    });
    return plan_;
  }

  // Installs a plan the off-turn prepare phase already built from the same
  // ModList, so the first receiver finds it ready instead of building it
  // under propagation. Same call_once as Plan(): whichever runs first wins,
  // and a primed plan does not count as "built" in the stats (nothing was
  // constructed on the propagation path).
  void PrimePlan(ApplyPlan&& plan) const {
    std::call_once(plan_once_, [this, &plan] {
      plan_ = std::move(plan);
      plan_bytes_ = plan_.MemoryBytes();
      if (arena_ != nullptr) arena_->Charge(plan_bytes_);
    });
  }

  // True iff Plan() has been called (test/introspection hook).
  [[nodiscard]] bool PlanBuilt() const noexcept { return plan_bytes_ != 0; }

 private:
  size_t tid_;
  uint64_t seq_;
  VectorClock time_;
  ModList mods_;
  MetadataArena* arena_;
  size_t charged_bytes_;
  mutable std::once_flag plan_once_;
  mutable ApplyPlan plan_;
  mutable size_t plan_bytes_ = 0;
};

using SliceRef = std::shared_ptr<const Slice>;

// A thread's *slice pointers* list (paper §4.3): every slice — its own and
// propagated ones — that happens-before the thread's current instruction,
// in deterministic propagation order. Appended by the owner; read by other
// threads during propagation; pruned by GC.
class SliceLog {
 public:
  void Append(SliceRef slice) {
    std::scoped_lock lock(mu_);
    slices_.push_back(std::move(slice));
  }

  // Invokes fn(slice) on the current contents, in order, under the lock.
  // fn must be cheap or the owner's appends stall (acceptable: propagation
  // sources are briefly blocked in the paper's design too).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    std::scoped_lock lock(mu_);
    for (const SliceRef& s : slices_) fn(s);
  }

  // The propagation filter (paper §4.4) as a copy-then-filter: copies the
  // SliceRefs under the lock, then selects `time ≤ upper ∧ ¬(time ≤ lower)`
  // *outside* it, so a propagation source stalls for O(copy) instead of
  // O(vector-clock filter). Returns the pending slices in log order.
  [[nodiscard]] std::vector<SliceRef> Snapshot(const VectorClock& lower,
                                               const VectorClock& upper) const {
    std::vector<SliceRef> copy;
    {
      std::scoped_lock lock(mu_);
      copy = slices_;
    }
    std::erase_if(copy, [&](const SliceRef& s) {
      return !s->time().LessEq(upper) || s->time().LessEq(lower);
    });
    return copy;
  }

  // Replaces contents wholesale (barrier: every thread adopts the merge
  // thread's list).
  void AssignFrom(const SliceLog& other) {
    std::vector<SliceRef> copy;
    {
      std::scoped_lock lock(other.mu_);
      copy = other.slices_;
    }
    std::scoped_lock lock(mu_);
    slices_ = std::move(copy);
  }

  // Drops every slice with time ≤ bound (already merged into every live
  // thread's memory — paper §4.5). Returns the number removed.
  size_t Prune(const VectorClock& bound) {
    std::scoped_lock lock(mu_);
    const size_t before = slices_.size();
    std::erase_if(slices_, [&bound](const SliceRef& s) {
      return s->time().LessEq(bound);
    });
    return before - slices_.size();
  }

  [[nodiscard]] size_t Size() const {
    std::scoped_lock lock(mu_);
    return slices_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<SliceRef> slices_;
};

}  // namespace rfdet
