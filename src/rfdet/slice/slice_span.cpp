#include "rfdet/slice/slice_span.h"

#include "rfdet/common/check.h"

namespace rfdet {

SliceSpan::SliceSpan(std::vector<SliceRef> slices, MetadataArena* arena,
                     FaultInjector* injector)
    : slices_(std::move(slices)), arena_(arena), injector_(injector) {
  RFDET_CHECK_MSG(!slices_.empty(), "SliceSpan needs at least one slice");
  for (size_t i = 0; i < slices_.size(); ++i) {
    RFDET_CHECK_MSG(slices_[i]->tid() == slices_.front()->tid(),
                    "SliceSpan members must share one origin");
    RFDET_CHECK_MSG(slices_[i]->seq() == slices_.front()->seq() + i,
                    "SliceSpan members must have consecutive seqs");
    logical_bytes_ += slices_[i]->mods().ByteCount();
  }
}

SliceSpan::~SliceSpan() {
  if (arena_ != nullptr && charged_ != 0) arena_->Release(charged_);
}

void SliceSpan::Build(std::atomic<uint64_t>* built_counter) const {
  // Decline the build — and leave the span permanently in per-slice
  // fallback mode — under arena pressure. The upper bound below charges
  // nothing yet; it only asks whether the merged copy could fit. A
  // declined build is not an error: per-slice apply needs no new memory.
  size_t estimate = 0;
  for (const SliceRef& s : slices_) estimate += s->mods().MemoryBytes();
  const bool injected =
      injector_ != nullptr && injector_->ShouldFail(FaultSite::kSpanCoalesce);
  if (injected || (arena_ != nullptr && !arena_->HasRoom(estimate))) {
    failed_ = true;
    return;
  }
  // Deterministic merge: member order is the origin's seq order, which is
  // every receiver's propagation order for a batch-adjacent stretch, so
  // last-writer-wins here leaves exactly the bytes sequential per-slice
  // apply would (DESIGN.md §18).
  for (const SliceRef& s : slices_) merged_.MergeFrom(s->mods());
  merged_.Compact();
  plan_ = ApplyPlan::Build(merged_);
  charged_ = merged_.MemoryBytes() + plan_.MemoryBytes();
  if (arena_ != nullptr) arena_->Charge(charged_);
  if (built_counter != nullptr) {
    built_counter->fetch_add(1, std::memory_order_relaxed);
  }
}

const ModList* SliceSpan::Merged(
    std::atomic<uint64_t>* built_counter) const {
  std::call_once(once_, [this, built_counter] { Build(built_counter); });
  return failed_ ? nullptr : &merged_;
}

SliceSpanRef SpanCache::GetOrCreate(std::span<const SliceRef> stretch,
                                    MetadataArena* arena,
                                    FaultInjector* injector) {
  const size_t origin = stretch.front()->tid();
  const uint64_t a = stretch.front()->seq();
  const uint64_t b = stretch.back()->seq();
  std::scoped_lock lock(mu_);
  for (const SliceSpanRef& s : ring_) {
    if (s->origin() == origin && s->seq_a() == a && s->seq_b() == b) return s;
  }
  auto span = std::make_shared<const SliceSpan>(
      std::vector<SliceRef>(stretch.begin(), stretch.end()), arena, injector);
  if (ring_.size() < kCapacity) {
    ring_.push_back(span);
  } else {
    ring_[next_] = span;
    next_ = (next_ + 1) % kCapacity;
  }
  return span;
}

}  // namespace rfdet
