// Cross-slice propagation coalescing (DESIGN.md §18).
//
// A SliceSpan covers a contiguous [seq_a, seq_b] range of ONE origin's
// slices and lazily compacts their ModLists into a single last-writer-wins
// delta plus a union ApplyPlan. Slices are immutable once closed (paper
// §4.3), so the merge is a pure function of the member slices and can be
// built once and shared by every receiver — the same call_once idiom
// Slice::Plan uses. Receivers that would have applied K overlapping
// ModLists apply one compacted list instead; the *logical* per-slice
// stream (fingerprints, race detection, replay, slice-pointer logs) is
// untouched, because coalescing only changes the physical copy.
//
// Correctness precondition (enforced by the caller): the member slices
// must be batch-adjacent in the receiver's propagation order — no
// causally-ordered slice from another origin may sit between them — or
// the merged last-writer could differ from sequential apply.
//
// The build is recoverable: on arena pressure (or an injected
// FaultSite::kSpanCoalesce fault) Merged() returns nullptr and the caller
// falls back to per-slice apply, which needs no new memory.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "rfdet/common/fault_injection.h"
#include "rfdet/mem/apply_plan.h"
#include "rfdet/mem/metadata_arena.h"
#include "rfdet/mem/mod_list.h"
#include "rfdet/slice/slice.h"

namespace rfdet {

class SliceSpan {
 public:
  // `slices` must be non-empty, all from one origin, with consecutive
  // seqs. Arena/injector may be null (tests).
  SliceSpan(std::vector<SliceRef> slices, MetadataArena* arena,
            FaultInjector* injector);
  ~SliceSpan();

  SliceSpan(const SliceSpan&) = delete;
  SliceSpan& operator=(const SliceSpan&) = delete;

  [[nodiscard]] size_t origin() const noexcept {
    return slices_.front()->tid();
  }
  [[nodiscard]] uint64_t seq_a() const noexcept {
    return slices_.front()->seq();
  }
  [[nodiscard]] uint64_t seq_b() const noexcept {
    return slices_.back()->seq();
  }
  [[nodiscard]] size_t Count() const noexcept { return slices_.size(); }
  [[nodiscard]] std::span<const SliceRef> Slices() const noexcept {
    return slices_;
  }
  // Sum of the member slices' payload bytes — what per-slice apply copies.
  [[nodiscard]] uint64_t LogicalBytes() const noexcept {
    return logical_bytes_;
  }

  // The coalesced delta, built on the first call and shared by every
  // later receiver (call_once). Returns nullptr when the build was
  // declined — injected kSpanCoalesce fault or no arena headroom — in
  // which case the caller applies the member slices individually.
  // `built_counter`, when non-null, is incremented iff this call built.
  [[nodiscard]] const ModList* Merged(
      std::atomic<uint64_t>* built_counter = nullptr) const;

  // The union apply plan over Merged(). Valid iff Merged() != nullptr.
  [[nodiscard]] const ApplyPlan& Plan() const noexcept { return plan_; }

 private:
  void Build(std::atomic<uint64_t>* built_counter) const;

  const std::vector<SliceRef> slices_;
  MetadataArena* const arena_;
  FaultInjector* const injector_;
  uint64_t logical_bytes_ = 0;
  mutable std::once_flag once_;
  mutable ModList merged_;
  mutable ApplyPlan plan_;
  mutable size_t charged_ = 0;
  mutable bool failed_ = false;
};

using SliceSpanRef = std::shared_ptr<const SliceSpan>;

// A small ring of recently-built spans, owned by the propagation SOURCE's
// thread context so all N receivers of the same [seq_a, seq_b] batch find
// the same span (and through call_once, the same single compaction).
// Thread-safe: receivers propagate concurrently during the prelock drain.
class SpanCache {
 public:
  static constexpr size_t kCapacity = 8;

  // Returns the cached span covering exactly `stretch`'s
  // (origin, seq_a, seq_b), creating and inserting it on a miss
  // (round-robin eviction). Creation is cheap — the merge itself is
  // deferred to the first Merged() call, outside this cache's lock.
  [[nodiscard]] SliceSpanRef GetOrCreate(std::span<const SliceRef> stretch,
                                         MetadataArena* arena,
                                         FaultInjector* injector);

  [[nodiscard]] size_t Size() const {
    std::scoped_lock lock(mu_);
    return ring_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<SliceSpanRef> ring_;
  size_t next_ = 0;
};

}  // namespace rfdet
