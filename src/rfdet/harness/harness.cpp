#include "rfdet/harness/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "rfdet/common/panic.h"

namespace harness {

namespace {

// What Measure is currently running, for the panic handler: a CI log line
// "rfdet: fatal: …" is much more useful when it names the workload and
// backend that tripped the invariant. The handler returns, so the default
// print-and-abort disposition is unchanged.
std::mutex g_run_context_mu;
std::string g_run_context;

void PrintRunContext(const rfdet::PanicInfo&) {
  std::scoped_lock lock(g_run_context_mu);
  if (!g_run_context.empty()) {
    std::fprintf(stderr, "harness: panic while running %s\n",
                 g_run_context.c_str());
    std::fflush(stderr);
  }
}

void NoteRunContext(const apps::Workload& workload,
                    const dmt::BackendConfig& config) {
  static const bool installed = [] {
    rfdet::SetPanicHandler(&PrintRunContext);
    return true;
  }();
  (void)installed;
  std::scoped_lock lock(g_run_context_mu);
  g_run_context =
      workload.Name() + " on " + std::string(dmt::ToString(config.kind));
}

}  // namespace

RunOutcome Measure(const apps::Workload& workload, const apps::Params& params,
                   const dmt::BackendConfig& config) {
  NoteRunContext(workload, config);
  auto env = dmt::CreateEnv(config);
  const auto start = std::chrono::steady_clock::now();
  const apps::Result result = workload.Run(*env, params);
  const auto stop = std::chrono::steady_clock::now();
  RunOutcome out;
  out.signature = result.signature;
  out.seconds = std::chrono::duration<double>(stop - start).count();
  out.stats = env->Stats();
  out.footprint_bytes = env->FootprintBytes();
  return out;
}

RunOutcome MeasureBest(const apps::Workload& workload,
                       const apps::Params& params,
                       const dmt::BackendConfig& config, int repeat) {
  RunOutcome best;
  for (int i = 0; i < std::max(repeat, 1); ++i) {
    RunOutcome out = Measure(workload, params, config);
    if (i == 0 || out.seconds < best.seconds) best = out;
  }
  return best;
}

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

int64_t Flags::Int(std::string_view key, int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

std::string Flags::Str(std::string_view key, std::string_view fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::string(fallback) : it->second;
}

bool Flags::Bool(std::string_view key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false";
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void Table::Print() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%c %-*s", c == 0 ? '|' : '|',
                  static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("|\n");
  };
  print_row(header_);
  std::printf("|");
  for (size_t c = 0; c < header_.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", s);
  return buf;
}

std::string FormatRatio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", r);
  return buf;
}

std::string FormatBytesMb(size_t b) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f",
                static_cast<double>(b) / (1024.0 * 1024.0));
  return buf;
}

std::string FormatCount(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
  return buf;
}

double GeoMean(const std::vector<double>& xs) {
  double log_sum = 0.0;
  size_t n = 0;
  for (const double x : xs) {
    if (x > 0) {
      log_sum += std::log(x);
      ++n;
    }
  }
  return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

}  // namespace harness
