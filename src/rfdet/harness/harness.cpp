#include "rfdet/harness/harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <system_error>

#include <unistd.h>

#include "rfdet/common/panic.h"

namespace harness {

namespace {

// What Measure is currently running, for the panic handler: a CI log line
// "rfdet: fatal: …" is much more useful when it names the workload and
// backend that tripped the invariant. The handler returns, so the default
// print-and-abort disposition is unchanged.
std::mutex g_run_context_mu;
std::string g_run_context;

void PrintRunContext(const rfdet::PanicInfo&) {
  std::scoped_lock lock(g_run_context_mu);
  if (!g_run_context.empty()) {
    std::fprintf(stderr, "harness: panic while running %s\n",
                 g_run_context.c_str());
    std::fflush(stderr);
  }
}

void NoteRunContext(const apps::Workload& workload,
                    const dmt::BackendConfig& config) {
  static const bool installed = [] {
    rfdet::SetPanicHandler(&PrintRunContext);
    return true;
  }();
  (void)installed;
  std::scoped_lock lock(g_run_context_mu);
  g_run_context =
      workload.Name() + " on " + std::string(dmt::ToString(config.kind));
}

}  // namespace

RunOutcome Measure(const apps::Workload& workload, const apps::Params& params,
                   const dmt::BackendConfig& config) {
  NoteRunContext(workload, config);
  auto env = dmt::CreateEnv(config);
  const auto start = std::chrono::steady_clock::now();
  const apps::Result result = workload.Run(*env, params);
  const auto stop = std::chrono::steady_clock::now();
  RunOutcome out;
  out.signature = result.signature;
  out.seconds = std::chrono::duration<double>(stop - start).count();
  // Finalize fingerprinting while the Env is still alive (main thread
  // attached, workers joined by the workload) so the rollup and any
  // divergence report are part of the outcome.
  out.fingerprint_rollup = env->FinalizeFingerprint();
  out.divergence_report = env->LastDivergenceReport();
  out.race_report = env->RaceReportText();
  out.stats = env->Stats();
  out.footprint_bytes = env->FootprintBytes();
  return out;
}

RunOutcome MeasureBest(const apps::Workload& workload,
                       const apps::Params& params,
                       const dmt::BackendConfig& config, int repeat) {
  RunOutcome best;
  for (int i = 0; i < std::max(repeat, 1); ++i) {
    RunOutcome out = Measure(workload, params, config);
    if (i == 0 || out.seconds < best.seconds) best = out;
  }
  return best;
}

DetCheckOutcome DetCheck(const apps::Workload& workload,
                         const apps::Params& params,
                         dmt::BackendConfig config, int runs) {
  namespace fs = std::filesystem;
  DetCheckOutcome out;
  out.runs = std::max(runs, 2);

  // Fingerprint files are run artifacts, not repo contents: they go to the
  // system temp directory (bench/artifacts as the fallback) and are
  // removed below.
  std::error_code ec;
  fs::path dir = fs::temp_directory_path(ec);
  if (ec || dir.empty()) dir = "bench/artifacts";
  static std::atomic<uint64_t> g_counter{0};
  const fs::path file =
      dir / ("rfdet_detcheck_" +
             std::to_string(static_cast<unsigned long>(::getpid())) + "_" +
             std::to_string(g_counter.fetch_add(1)) + ".fp");
  config.fingerprint_path = file.string();
  // Divergences must come back as data, not a panic: the caller decides.
  config.fingerprint_panic = false;

  config.fingerprint = rfdet::FingerprintMode::kRecord;
  const RunOutcome rec = Measure(workload, params, config);
  out.signature = rec.signature;
  out.rollup = rec.fingerprint_rollup;
  out.record_seconds = rec.seconds;
  if (!rec.divergence_report.empty()) {
    // Only paranoia can fire during a record run.
    out.failure = rec.divergence_report;
  }

  config.fingerprint = rfdet::FingerprintMode::kVerify;
  for (int i = 2; i <= out.runs && out.failure.empty(); ++i) {
    const RunOutcome ver = Measure(workload, params, config);
    out.verify_seconds += ver.seconds;
    if (!ver.divergence_report.empty()) {
      out.failure = ver.divergence_report;
    } else if (ver.signature != rec.signature) {
      out.failure = "run " + std::to_string(i) + " workload signature " +
                    std::to_string(ver.signature) +
                    " != " + std::to_string(rec.signature) +
                    " (fingerprint clean — digest coverage gap?)";
    } else if (ver.fingerprint_rollup != rec.fingerprint_rollup &&
               ver.fingerprint_rollup != 0) {
      out.failure = "run " + std::to_string(i) + " fingerprint rollup " +
                    std::to_string(ver.fingerprint_rollup) +
                    " != " + std::to_string(rec.fingerprint_rollup);
    }
  }
  fs::remove(file, ec);
  out.ok = out.failure.empty();
  return out;
}

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

int64_t Flags::Int(std::string_view key, int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

std::string Flags::Str(std::string_view key, std::string_view fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::string(fallback) : it->second;
}

bool Flags::Bool(std::string_view key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false";
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void Table::Print() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%c %-*s", c == 0 ? '|' : '|',
                  static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("|\n");
  };
  print_row(header_);
  std::printf("|");
  for (size_t c = 0; c < header_.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", s);
  return buf;
}

std::string FormatRatio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", r);
  return buf;
}

std::string FormatBytesMb(size_t b) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f",
                static_cast<double>(b) / (1024.0 * 1024.0));
  return buf;
}

std::string FormatCount(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
  return buf;
}

double GeoMean(const std::vector<double>& xs) {
  double log_sum = 0.0;
  size_t n = 0;
  for (const double x : xs) {
    if (x > 0) {
      log_sum += std::log(x);
      ++n;
    }
  }
  return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

}  // namespace harness
