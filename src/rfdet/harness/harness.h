// Experiment harness: timed workload runs, flag parsing, table printing.
// Each bench/ binary reproduces one table or figure of the paper using
// these pieces.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "rfdet/apps/workload.h"
#include "rfdet/backends/backends.h"

namespace harness {

struct RunOutcome {
  uint64_t signature = 0;
  double seconds = 0.0;
  rfdet::StatsSnapshot stats;
  size_t footprint_bytes = 0;
  // Determinism self-verification (0 / "" when fingerprinting is off).
  uint64_t fingerprint_rollup = 0;
  std::string divergence_report;
  // Deterministic race report ("" when race detection is off / no races).
  std::string race_report;
};

// Runs `workload` once on a fresh Env built from `config`; wall-clock time
// covers the whole run (setup + compute + teardown of worker threads), as
// in the paper's end-to-end measurements.
RunOutcome Measure(const apps::Workload& workload, const apps::Params& params,
                   const dmt::BackendConfig& config);

// Repeats `Measure` and keeps the best (minimum) time — the conventional
// way to suppress scheduler noise on shared machines.
RunOutcome MeasureBest(const apps::Workload& workload,
                       const apps::Params& params,
                       const dmt::BackendConfig& config, int repeat);

// ---- determinism self-check (--det-check=N) --------------------------------

struct DetCheckOutcome {
  bool ok = false;
  int runs = 0;               // total runs performed (1 record + verifies)
  std::string failure;        // first divergence/mismatch report ("" if ok)
  uint64_t signature = 0;     // workload signature of the record run
  uint64_t rollup = 0;        // fingerprint rollup of the record run
  double record_seconds = 0.0;
  double verify_seconds = 0.0;  // summed over the verify runs
};

// Runs the workload `runs` times in-process on fresh Envs: run 1 records an
// execution fingerprint to a temp file, runs 2..N verify against it
// (divergences are reported, not panicked, so the outcome is returned).
// Signatures and rollups are cross-checked too. The fingerprint file lives
// under the system temp directory and is removed before returning.
DetCheckOutcome DetCheck(const apps::Workload& workload,
                         const apps::Params& params,
                         dmt::BackendConfig config, int runs);

// ---- command-line flags ----------------------------------------------------

// Parses --key=value / --flag arguments. Unknown positional arguments are
// collected for the binary to interpret.
class Flags {
 public:
  Flags(int argc, char** argv);

  [[nodiscard]] int64_t Int(std::string_view key, int64_t fallback) const;
  [[nodiscard]] std::string Str(std::string_view key,
                                std::string_view fallback) const;
  [[nodiscard]] bool Bool(std::string_view key, bool fallback) const;
  [[nodiscard]] const std::vector<std::string>& Positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

// ---- table printing ---------------------------------------------------------

class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers.
[[nodiscard]] std::string FormatSeconds(double s);
[[nodiscard]] std::string FormatRatio(double r);   // e.g. "1.35x"
[[nodiscard]] std::string FormatBytesMb(size_t b); // e.g. "27.4"
[[nodiscard]] std::string FormatCount(uint64_t n);

// Geometric mean of ratios (ignores non-positive entries).
[[nodiscard]] double GeoMean(const std::vector<double>& xs);

}  // namespace harness
