// Workload framework: the 17 evaluation programs (racey + SPLASH-2 +
// Phoenix + PARSEC kernels, paper §5.1) re-implemented against dmt::Env.
//
// Each kernel reduces its output to a 64-bit signature so determinism
// experiments compare runs with one integer. Problem sizes are scaled for
// laptop/CI machines by the `scale` parameter (the paper's absolute sizes
// are irrelevant to its claims, which are about relative overheads; each
// kernel preserves its *synchronization and sharing profile* — the Table 1
// columns — which is what exercises the runtimes).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rfdet/api/env.h"

namespace apps {

struct Params {
  size_t threads = 4;
  uint64_t seed = 42;
  // Problem-size multiplier: 1 = test-sized, 4-16 = bench-sized.
  int scale = 1;
};

struct Result {
  uint64_t signature = 0;
};

class Workload {
 public:
  virtual ~Workload() = default;
  [[nodiscard]] virtual std::string Name() const = 0;
  [[nodiscard]] virtual std::string Suite() const = 0;
  // Runs the kernel on env. Must be callable repeatedly on fresh Envs and
  // produce a signature that is a pure function of (params, sync order).
  virtual Result Run(dmt::Env& env, const Params& params) const = 0;
  // Kernels that contain intentional data races (racey) are excluded from
  // cross-backend signature-equality tests.
  [[nodiscard]] virtual bool RaceFree() const { return true; }
};

// Registry of every workload, in the paper's Table 1 order (racey last).
[[nodiscard]] const std::vector<const Workload*>& AllWorkloads();
[[nodiscard]] const Workload* FindWorkload(std::string_view name);

}  // namespace apps
