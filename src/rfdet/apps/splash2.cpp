// SPLASH-2 kernels (paper Table 1): ocean, water-ns, water-sp, fft, radix,
// lu-con, lu-non.
//
// Configured like the paper's c.m4.null.POSIX build: barriers are
// implemented *in application code* from lock/unlock + condition waits
// (AppBarrier), so these kernels execute many synchronization operations —
// the paper uses exactly this configuration to stress DMT performance
// (§5.1). lu-con and lu-non share one implementation parameterized by the
// block layout (contiguous block-major vs row-major), reproducing their
// different page-sharing profiles.
#include <bit>
#include <cmath>

#include "rfdet/apps/app_util.h"
#include "rfdet/apps/workload.h"

namespace apps {
namespace {

// ---------------------------------------------------------------------------
// ocean — iterative stencil relaxation with per-iteration barriers and a
// lock-protected global residual.
// ---------------------------------------------------------------------------
class Ocean final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "ocean"; }
  [[nodiscard]] std::string Suite() const override { return "splash2"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    const size_t g = 18 * static_cast<size_t>(p.scale) + 2;  // incl. halo
    constexpr size_t kIters = 10;
    auto grid_a = dmt::MakeStaticArray<double>(env, g * g);
    auto grid_b = dmt::MakeStaticArray<double>(env, g * g);
    // Residual accumulates cross-thread under a lock; use fixed-point so
    // the sum is independent of accumulation order (integer addition is
    // associative, IEEE addition is not).
    auto residual = dmt::MakeStaticArray<int64_t>(env, 1);
    const size_t res_mtx = env.CreateMutex();
    AppBarrier barrier(env, p.threads);

    rfdet::Xoshiro256 rng(p.seed);
    std::vector<double> init(g * g);
    for (auto& v : init) v = rng.NextDouble();
    grid_a.Write(env, 0, init.data(), g * g);
    grid_b.Write(env, 0, init.data(), g * g);

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        const Range rows = ChunkOf(g - 2, p.threads, t);
        std::vector<double> up(g);
        std::vector<double> mid(g);
        std::vector<double> down(g);
        std::vector<double> out(g);
        for (size_t iter = 0; iter < kIters; ++iter) {
          const auto& src = (iter % 2 == 0) ? grid_a : grid_b;
          const auto& dst = (iter % 2 == 0) ? grid_b : grid_a;
          double local_res = 0.0;
          for (size_t r = rows.begin + 1; r <= rows.end; ++r) {
            src.Read(env, (r - 1) * g, up.data(), g);
            src.Read(env, r * g, mid.data(), g);
            src.Read(env, (r + 1) * g, down.data(), g);
            out[0] = mid[0];
            out[g - 1] = mid[g - 1];
            for (size_t c = 1; c + 1 < g; ++c) {
              out[c] =
                  0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
              local_res += std::abs(out[c] - mid[c]);
            }
            env.Tick(g / 2);
            dst.Write(env, r * g, out.data(), g);
          }
          env.Lock(res_mtx);
          env.Put<int64_t>(residual.addr(0),
                           env.Get<int64_t>(residual.addr(0)) +
                               std::llround(local_res * 1048576.0));
          env.Unlock(res_mtx);
          barrier.Wait(env);
        }
      }));
    }
    for (const size_t tid : tids) env.Join(tid);

    rfdet::Signature sig;
    sig.Mix(static_cast<uint64_t>(env.Get<int64_t>(residual.addr(0))));
    const auto& fin = (kIters % 2 == 0) ? grid_a : grid_b;
    std::vector<double> row(g);
    for (size_t r = 0; r < g; r += 3) {
      fin.Read(env, r * g, row.data(), g);
      for (size_t c = 0; c < g; c += 3) sig.MixDouble(row[c]);
    }
    return Result{sig.Value()};
  }
};

// ---------------------------------------------------------------------------
// water — N-body force accumulation. Two variants sharing one core:
//   water-ns (n-squared): per-pair accumulation under striped molecule
//     locks — very lock-heavy, like the paper's water-ns.
//   water-sp (spatial):   thread-local accumulation flushed once per phase
//     under a few stripe locks — the paper's lower-sync variant.
// ---------------------------------------------------------------------------
class Water final : public Workload {
 public:
  explicit Water(bool spatial) : spatial_(spatial) {}

  [[nodiscard]] std::string Name() const override {
    return spatial_ ? "water-sp" : "water-ns";
  }
  [[nodiscard]] std::string Suite() const override { return "splash2"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    const size_t n = 32 * static_cast<size_t>(p.scale);
    constexpr size_t kIters = 4;
    constexpr double kCutoff2 = 0.09;
    const size_t stripes = spatial_ ? 4 : 32;

    auto pos = dmt::MakeStaticArray<double>(env, n * 2);
    auto vel = dmt::MakeStaticArray<double>(env, n * 2);
    // Force accumulators are cross-thread and lock-ordered, so they use
    // 32.32 fixed point: the total is then independent of the order in
    // which threads win the locks.
    auto acc = dmt::MakeStaticArray<int64_t>(env, n * 2);
    constexpr double kFix = 4294967296.0;  // 2^32
    std::vector<size_t> locks(stripes);
    for (auto& l : locks) l = env.CreateMutex();
    AppBarrier barrier(env, p.threads);

    rfdet::Xoshiro256 rng(p.seed);
    std::vector<double> init(n * 2);
    for (auto& v : init) v = rng.NextDouble();
    pos.Write(env, 0, init.data(), n * 2);
    for (auto& v : init) v = (rng.NextDouble() - 0.5) * 0.01;
    vel.Write(env, 0, init.data(), n * 2);

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        const Range mine = ChunkOf(n, p.threads, t);
        std::vector<double> xs(n * 2);
        for (size_t iter = 0; iter < kIters; ++iter) {
          pos.Read(env, 0, xs.data(), n * 2);
          std::vector<double> local(n * 2, 0.0);
          for (size_t i = mine.begin; i < mine.end; ++i) {
            for (size_t j = i + 1; j < n; ++j) {
              const double dx = xs[2 * i] - xs[2 * j];
              const double dy = xs[2 * i + 1] - xs[2 * j + 1];
              const double d2 = dx * dx + dy * dy + 1e-6;
              if (d2 >= kCutoff2) continue;
              const double f = 1e-4 / d2;
              if (spatial_) {
                // Accumulate locally; flush under stripe locks below.
                local[2 * i] += f * dx;
                local[2 * i + 1] += f * dy;
                local[2 * j] -= f * dx;
                local[2 * j + 1] -= f * dy;
              } else {
                // n-squared variant: lock both molecules' stripes per pair
                // (ordered by stripe index to avoid deadlock).
                const size_t lo = std::min(i % stripes, j % stripes);
                const size_t hi = std::max(i % stripes, j % stripes);
                env.Lock(locks[lo]);
                if (hi != lo) env.Lock(locks[hi]);
                int64_t v[2];
                acc.Read(env, 2 * i, v, 2);
                v[0] += std::llround(f * dx * kFix);
                v[1] += std::llround(f * dy * kFix);
                acc.Write(env, 2 * i, v, 2);
                acc.Read(env, 2 * j, v, 2);
                v[0] -= std::llround(f * dx * kFix);
                v[1] -= std::llround(f * dy * kFix);
                acc.Write(env, 2 * j, v, 2);
                if (hi != lo) env.Unlock(locks[hi]);
                env.Unlock(locks[lo]);
              }
            }
            env.Tick((n - i) / 4 + 1);
          }
          if (spatial_) {
            for (size_t s = 0; s < stripes; ++s) {
              env.Lock(locks[s]);
              for (size_t i = s; i < n; i += stripes) {
                int64_t v[2];
                acc.Read(env, 2 * i, v, 2);
                v[0] += std::llround(local[2 * i] * kFix);
                v[1] += std::llround(local[2 * i + 1] * kFix);
                acc.Write(env, 2 * i, v, 2);
              }
              env.Unlock(locks[s]);
            }
          }
          barrier.Wait(env);
          // Integrate own chunk; clear accelerations.
          for (size_t i = mine.begin; i < mine.end; ++i) {
            int64_t a2[2];
            double v2[2];
            double x2[2];
            acc.Read(env, 2 * i, a2, 2);
            vel.Read(env, 2 * i, v2, 2);
            pos.Read(env, 2 * i, x2, 2);
            for (int d = 0; d < 2; ++d) {
              v2[d] += static_cast<double>(a2[d]) / kFix;
              x2[d] += v2[d];
              if (x2[d] < 0) x2[d] += 1.0;
              if (x2[d] >= 1.0) x2[d] -= 1.0;
              a2[d] = 0;
            }
            vel.Write(env, 2 * i, v2, 2);
            pos.Write(env, 2 * i, x2, 2);
            acc.Write(env, 2 * i, a2, 2);
          }
          barrier.Wait(env);
        }
      }));
    }
    for (const size_t tid : tids) env.Join(tid);

    rfdet::Signature sig;
    std::vector<double> fin(n * 2);
    pos.Read(env, 0, fin.data(), n * 2);
    for (const double v : fin) sig.MixDouble(v);
    return Result{sig.Value()};
  }

 private:
  bool spatial_;
};

// ---------------------------------------------------------------------------
// fft — radix-2 complex FFT with a barrier per butterfly stage.
// ---------------------------------------------------------------------------
class Fft final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "fft"; }
  [[nodiscard]] std::string Suite() const override { return "splash2"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    size_t n = 1024;
    int scale = p.scale;
    while (scale > 1) {
      n *= 2;
      scale /= 2;
    }
    auto re = dmt::MakeStaticArray<double>(env, n);
    auto im = dmt::MakeStaticArray<double>(env, n);
    AppBarrier barrier(env, p.threads);

    rfdet::Xoshiro256 rng(p.seed);
    std::vector<double> init_re(n);
    std::vector<double> init_im(n, 0.0);
    for (auto& v : init_re) v = rng.NextDouble() - 0.5;
    // Bit-reversed initial order so the in-place FFT proceeds naturally.
    const int log_n = static_cast<int>(std::countr_zero(n));
    std::vector<double> perm_re(n);
    std::vector<double> perm_im(n);
    for (size_t i = 0; i < n; ++i) {
      size_t r = 0;
      for (int b = 0; b < log_n; ++b) r |= ((i >> b) & 1) << (log_n - 1 - b);
      perm_re[r] = init_re[i];
      perm_im[r] = init_im[i];
    }
    re.Write(env, 0, perm_re.data(), n);
    im.Write(env, 0, perm_im.data(), n);

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        for (size_t len = 2; len <= n; len *= 2) {
          // Partition the n/len butterfly groups across threads.
          const size_t groups = n / len;
          const Range mine = ChunkOf(groups, p.threads, t);
          const double ang = -2.0 * M_PI / static_cast<double>(len);
          std::vector<double> gre(len);
          std::vector<double> gim(len);
          for (size_t gidx = mine.begin; gidx < mine.end; ++gidx) {
            const size_t base = gidx * len;
            re.Read(env, base, gre.data(), len);
            im.Read(env, base, gim.data(), len);
            for (size_t k = 0; k < len / 2; ++k) {
              const double wr = std::cos(ang * static_cast<double>(k));
              const double wi = std::sin(ang * static_cast<double>(k));
              const double xr = gre[k + len / 2] * wr - gim[k + len / 2] * wi;
              const double xi = gre[k + len / 2] * wi + gim[k + len / 2] * wr;
              gre[k + len / 2] = gre[k] - xr;
              gim[k + len / 2] = gim[k] - xi;
              gre[k] += xr;
              gim[k] += xi;
            }
            env.Tick(len);
            re.Write(env, base, gre.data(), len);
            im.Write(env, base, gim.data(), len);
          }
          barrier.Wait(env);
        }
      }));
    }
    for (const size_t tid : tids) env.Join(tid);

    rfdet::Signature sig;
    std::vector<double> out(n);
    re.Read(env, 0, out.data(), n);
    for (size_t i = 0; i < n; i += 7) sig.MixDouble(out[i]);
    im.Read(env, 0, out.data(), n);
    for (size_t i = 0; i < n; i += 7) sig.MixDouble(out[i]);
    return Result{sig.Value()};
  }
};

// ---------------------------------------------------------------------------
// radix — parallel radix sort: per-pass local histograms, shared histogram
// matrix, prefix offsets, scatter; barriers between phases.
// ---------------------------------------------------------------------------
class Radix final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "radix"; }
  [[nodiscard]] std::string Suite() const override { return "splash2"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    const size_t n = 16384 * static_cast<size_t>(p.scale);
    constexpr size_t kBuckets = 256;
    auto src = dmt::MakeStaticArray<uint32_t>(env, n);
    auto dst = dmt::MakeStaticArray<uint32_t>(env, n);
    auto hist = dmt::MakeStaticArray<uint32_t>(env, p.threads * kBuckets);
    AppBarrier barrier(env, p.threads);

    rfdet::Xoshiro256 rng(p.seed);
    std::vector<uint32_t> init(n);
    for (auto& v : init) v = static_cast<uint32_t>(rng.Next());
    src.Write(env, 0, init.data(), n);

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        const Range mine = ChunkOf(n, p.threads, t);
        const size_t count = mine.end - mine.begin;
        std::vector<uint32_t> chunk(count);
        std::vector<uint32_t> local(kBuckets);
        std::vector<uint32_t> offsets(kBuckets);
        std::vector<uint32_t> all(p.threads * kBuckets);
        for (int pass = 0; pass < 4; ++pass) {
          const auto& from = (pass % 2 == 0) ? src : dst;
          const auto& to = (pass % 2 == 0) ? dst : src;
          const int shift = pass * 8;
          from.Read(env, mine.begin, chunk.data(), count);
          std::fill(local.begin(), local.end(), 0);
          for (const uint32_t v : chunk) ++local[(v >> shift) & 0xff];
          env.Tick(count / 8);
          hist.Write(env, t * kBuckets, local.data(), kBuckets);
          barrier.Wait(env);
          // Every thread derives its scatter offsets from the shared
          // histogram matrix: global prefix + lower-ranked threads' counts.
          hist.Read(env, 0, all.data(), p.threads * kBuckets);
          uint32_t running = 0;
          for (size_t b = 0; b < kBuckets; ++b) {
            offsets[b] = running;
            for (size_t u = 0; u < p.threads; ++u) {
              if (u < t) offsets[b] += all[u * kBuckets + b];
              running += all[u * kBuckets + b];
            }
          }
          env.Tick(kBuckets * p.threads / 8);
          for (const uint32_t v : chunk) {
            const size_t b = (v >> shift) & 0xff;
            to.Put(env, offsets[b]++, v);
          }
          barrier.Wait(env);
        }
      }));
    }
    for (const size_t tid : tids) env.Join(tid);

    rfdet::Signature sig;
    std::vector<uint32_t> out(n);
    src.Read(env, 0, out.data(), n);  // 4 passes → result back in src
    uint32_t prev = 0;
    bool sorted = true;
    for (const uint32_t v : out) {
      if (v < prev) sorted = false;
      prev = v;
      sig.Mix(v);
    }
    sig.Mix(sorted ? 1 : 0);
    return Result{sig.Value()};
  }
};

// ---------------------------------------------------------------------------
// lu — blocked LU factorization without pivoting. The two paper variants
// differ only in block placement:
//   lu-con: blocks are contiguous in memory (block-major)
//   lu-non: the matrix is row-major, so a block spans many pages
// ---------------------------------------------------------------------------
class Lu final : public Workload {
 public:
  explicit Lu(bool contiguous) : contiguous_(contiguous) {}

  [[nodiscard]] std::string Name() const override {
    return contiguous_ ? "lu-con" : "lu-non";
  }
  [[nodiscard]] std::string Suite() const override { return "splash2"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    constexpr size_t kB = 8;  // block edge
    const size_t nb = 4 * static_cast<size_t>(p.scale);
    const size_t n = nb * kB;
    auto mat = dmt::MakeStaticArray<double>(env, n * n);
    AppBarrier barrier(env, p.threads);

    rfdet::Xoshiro256 rng(p.seed);
    std::vector<double> init(n * n);
    for (size_t i = 0; i < n * n; ++i) init[i] = rng.NextDouble();
    for (size_t i = 0; i < n; ++i) init[i * n + i] += n;  // diag dominance
    // Lay the matrix out according to the variant.
    std::vector<double> laid(n * n);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) {
        laid[ElemIndex(r, c, n, nb)] = init[r * n + c];
      }
    }
    mat.Write(env, 0, laid.data(), n * n);

    const auto owner = [&](size_t bi, size_t bj) {
      return (bi + bj * nb) % p.threads;
    };

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        std::vector<double> diag(kB * kB);
        std::vector<double> blk(kB * kB);
        std::vector<double> left(kB * kB);
        std::vector<double> up(kB * kB);
        for (size_t k = 0; k < nb; ++k) {
          if (owner(k, k) == t) {
            ReadBlock(env, mat, k, k, n, nb, diag.data());
            FactorDiag(diag.data());
            env.Tick(kB * kB);
            WriteBlock(env, mat, k, k, n, nb, diag.data());
          }
          barrier.Wait(env);
          ReadBlock(env, mat, k, k, n, nb, diag.data());
          for (size_t j = k + 1; j < nb; ++j) {
            if (owner(k, j) == t) {  // row blocks: solve L(k,k) X = A(k,j)
              ReadBlock(env, mat, k, j, n, nb, blk.data());
              SolveLower(diag.data(), blk.data());
              env.Tick(kB * kB);
              WriteBlock(env, mat, k, j, n, nb, blk.data());
            }
            if (owner(j, k) == t) {  // col blocks: solve X U(k,k) = A(j,k)
              ReadBlock(env, mat, j, k, n, nb, blk.data());
              SolveUpper(diag.data(), blk.data());
              env.Tick(kB * kB);
              WriteBlock(env, mat, j, k, n, nb, blk.data());
            }
          }
          barrier.Wait(env);
          for (size_t i = k + 1; i < nb; ++i) {
            for (size_t j = k + 1; j < nb; ++j) {
              if (owner(i, j) != t) continue;
              ReadBlock(env, mat, i, k, n, nb, left.data());
              ReadBlock(env, mat, k, j, n, nb, up.data());
              ReadBlock(env, mat, i, j, n, nb, blk.data());
              for (size_t r = 0; r < kB; ++r) {
                for (size_t c = 0; c < kB; ++c) {
                  double acc = blk[r * kB + c];
                  for (size_t x = 0; x < kB; ++x) {
                    acc -= left[r * kB + x] * up[x * kB + c];
                  }
                  blk[r * kB + c] = acc;
                }
              }
              env.Tick(kB * kB * kB / 8);
              WriteBlock(env, mat, i, j, n, nb, blk.data());
            }
          }
          barrier.Wait(env);
        }
      }));
    }
    for (const size_t tid : tids) env.Join(tid);

    rfdet::Signature sig;
    // Digest the diagonal blocks (the factorization's pivotal values).
    std::vector<double> blk(kB * kB);
    for (size_t k = 0; k < nb; ++k) {
      ReadBlock(env, mat, k, k, n, nb, blk.data());
      for (const double v : blk) sig.MixDouble(v);
    }
    return Result{sig.Value()};
  }

 private:
  static constexpr size_t kB = 8;

  // Element (r, c) of the n×n matrix, for the active layout.
  [[nodiscard]] size_t ElemIndex(size_t r, size_t c, size_t n,
                                 size_t nb) const {
    if (!contiguous_) return r * n + c;
    const size_t bi = r / kB;
    const size_t bj = c / kB;
    return ((bi * nb + bj) * kB + (r % kB)) * kB + (c % kB);
  }

  void ReadBlock(dmt::Env& env, const dmt::ArrayRef<double>& mat, size_t bi,
                 size_t bj, size_t n, size_t nb, double* out) const {
    for (size_t r = 0; r < kB; ++r) {
      // One contiguous row of the block in either layout.
      const size_t idx = ElemIndex(bi * kB + r, bj * kB, n, nb);
      mat.Read(env, idx, out + r * kB, kB);
    }
  }
  void WriteBlock(dmt::Env& env, const dmt::ArrayRef<double>& mat, size_t bi,
                  size_t bj, size_t n, size_t nb, const double* in) const {
    for (size_t r = 0; r < kB; ++r) {
      const size_t idx = ElemIndex(bi * kB + r, bj * kB, n, nb);
      mat.Write(env, idx, in + r * kB, kB);
    }
  }

  // In-place LU of a kB×kB block (unit lower, no pivoting).
  static void FactorDiag(double* a) {
    for (size_t k = 0; k < kB; ++k) {
      for (size_t i = k + 1; i < kB; ++i) {
        a[i * kB + k] /= a[k * kB + k];
        for (size_t j = k + 1; j < kB; ++j) {
          a[i * kB + j] -= a[i * kB + k] * a[k * kB + j];
        }
      }
    }
  }
  // X := L^{-1} X with L the unit-lower part of lu.
  static void SolveLower(const double* lu, double* x) {
    for (size_t i = 1; i < kB; ++i) {
      for (size_t k = 0; k < i; ++k) {
        for (size_t j = 0; j < kB; ++j) {
          x[i * kB + j] -= lu[i * kB + k] * x[k * kB + j];
        }
      }
    }
  }
  // X := X U^{-1} with U the upper part of lu.
  static void SolveUpper(const double* lu, double* x) {
    for (size_t j = 0; j < kB; ++j) {
      for (size_t i = 0; i < kB; ++i) {
        double acc = x[i * kB + j];
        for (size_t k = 0; k < j; ++k) {
          acc -= x[i * kB + k] * lu[k * kB + j];
        }
        x[i * kB + j] = acc / lu[j * kB + j];
      }
    }
  }

  bool contiguous_;
};

}  // namespace

const Workload* OceanWorkload() {
  static const Ocean w;
  return &w;
}
const Workload* WaterNsWorkload() {
  static const Water w(false);
  return &w;
}
const Workload* WaterSpWorkload() {
  static const Water w(true);
  return &w;
}
const Workload* FftWorkload() {
  static const Fft w;
  return &w;
}
const Workload* RadixWorkload() {
  static const Radix w;
  return &w;
}
const Workload* LuConWorkload() {
  static const Lu w(true);
  return &w;
}
const Workload* LuNonWorkload() {
  static const Lu w(false);
  return &w;
}

}  // namespace apps
