#include "rfdet/apps/workload.h"

namespace apps {

// Defined in the per-suite translation units.
const Workload* OceanWorkload();
const Workload* WaterNsWorkload();
const Workload* WaterSpWorkload();
const Workload* FftWorkload();
const Workload* RadixWorkload();
const Workload* LuConWorkload();
const Workload* LuNonWorkload();
const Workload* LinearRegressionWorkload();
const Workload* MatrixMultiplyWorkload();
const Workload* PcaWorkload();
const Workload* WordCountWorkload();
const Workload* StringMatchWorkload();
const Workload* BlackScholesWorkload();
const Workload* SwaptionsWorkload();
const Workload* DedupWorkload();
const Workload* FerretWorkload();
const Workload* RaceyWorkload();
const Workload* CannealWorkload();
const Workload* PagerankWorkload();
const Workload* BfsWorkload();
const Workload* ConnectedComponentsWorkload();

const std::vector<const Workload*>& AllWorkloads() {
  static const std::vector<const Workload*> kAll = {
      // Table 1 order.
      OceanWorkload(),
      WaterNsWorkload(),
      WaterSpWorkload(),
      FftWorkload(),
      RadixWorkload(),
      LuConWorkload(),
      LuNonWorkload(),
      LinearRegressionWorkload(),
      MatrixMultiplyWorkload(),
      PcaWorkload(),
      WordCountWorkload(),
      StringMatchWorkload(),
      BlackScholesWorkload(),
      SwaptionsWorkload(),
      DedupWorkload(),
      FerretWorkload(),
      RaceyWorkload(),
      // Extension (§4.6 atomics): the kernel the paper had to omit.
      CannealWorkload(),
      // Executor-layer graph family (exec/executor.h; not in Table 1).
      PagerankWorkload(),
      BfsWorkload(),
      ConnectedComponentsWorkload(),
  };
  return kAll;
}

const Workload* FindWorkload(std::string_view name) {
  for (const Workload* w : AllWorkloads()) {
    if (w->Name() == name) return w;
  }
  return nullptr;
}

}  // namespace apps
