// Graph-analytics workload family: pagerank, BFS, connected components.
//
// These are the executor-layer kernels (exec/executor.h): irregular
// sharing over CSR adjacency stresses slice merging and propagation in
// ways the dense SPLASH/Phoenix set never does. All three are confluent
// — integer fixed-point arithmetic (associative, commutative), CAS-min
// fixed points, and Jacobi-style synchronous iterations — so their
// signatures are pure functions of (params), identical across backends,
// thread counts, and grain choices.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "rfdet/apps/app_util.h"
#include "rfdet/apps/workload.h"
#include "rfdet/exec/executor.h"

namespace apps {
namespace {

using dmt::exec::det_for_each;
using dmt::exec::det_parallel_for;
using dmt::exec::det_reduce;
using dmt::exec::Executor;
using dmt::exec::ExecOptions;
using dmt::exec::WorkContext;

// Host-side CSR built deterministically from the seed, then published to
// shared memory (read-only during the parallel phases).
struct HostGraph {
  size_t n = 0;
  std::vector<uint64_t> offsets;  // n + 1
  std::vector<uint32_t> edges;
};

HostGraph GenGraph(size_t n, size_t avg_deg, uint64_t seed,
                   bool undirected) {
  rfdet::Xoshiro256 rng(seed);
  std::vector<std::pair<uint32_t, uint32_t>> list;
  list.reserve(n * avg_deg * (undirected ? 2 : 1));
  for (size_t u = 0; u < n; ++u) {
    // 1 + Below(2*avg-1) keeps every vertex connected and the mean ~avg.
    const size_t deg = 1 + rng.Below(2 * avg_deg - 1);
    for (size_t k = 0; k < deg; ++k) {
      const uint32_t v = static_cast<uint32_t>(rng.Below(n));
      if (v == u) continue;  // no self-loops
      list.emplace_back(static_cast<uint32_t>(u), v);
      if (undirected) list.emplace_back(v, static_cast<uint32_t>(u));
    }
  }
  HostGraph g;
  g.n = n;
  g.offsets.assign(n + 1, 0);
  for (const auto& [u, v] : list) g.offsets[u + 1]++;
  for (size_t u = 0; u < n; ++u) g.offsets[u + 1] += g.offsets[u];
  g.edges.resize(list.size());
  std::vector<uint64_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (const auto& [u, v] : list) g.edges[cursor[u]++] = v;
  return g;
}

// Shared-memory CSR image.
struct SharedGraph {
  size_t n = 0;
  size_t m = 0;
  dmt::ArrayRef<uint64_t> offsets;
  dmt::ArrayRef<uint32_t> edges;
};

SharedGraph PublishGraph(dmt::Env& env, const HostGraph& g) {
  SharedGraph sg;
  sg.n = g.n;
  sg.m = g.edges.size();
  sg.offsets = dmt::MakeStaticArray<uint64_t>(env, g.n + 1);
  sg.edges = dmt::MakeStaticArray<uint32_t>(env, std::max<size_t>(sg.m, 1));
  sg.offsets.Write(env, 0, g.offsets.data(), g.n + 1);
  if (sg.m > 0) sg.edges.Write(env, 0, g.edges.data(), sg.m);
  return sg;
}

// Bulk-reads the adjacency of the vertex chunk [lo, hi): per-vertex
// offsets into `offs` (hi - lo + 1 entries) and their edges into `nbrs`.
void ReadChunkAdjacency(dmt::Env& env, const SharedGraph& g, size_t lo,
                        size_t hi, std::vector<uint64_t>* offs,
                        std::vector<uint32_t>* nbrs) {
  offs->resize(hi - lo + 1);
  g.offsets.Read(env, lo, offs->data(), hi - lo + 1);
  const size_t first = (*offs)[0];
  const size_t count = (*offs)[hi - lo] - first;
  nbrs->resize(count);
  if (count > 0) g.edges.Read(env, first, nbrs->data(), count);
}

// ---- pagerank --------------------------------------------------------------
//
// Push-based, integer fixed-point (kOne == 1.0): each vertex pushes
// (85% * rank / deg) to its out-neighbors, accumulated into a per-worker
// stripe of shared partials; a det_reduce pass folds the stripes into the
// new ranks and returns the residual sum |Δrank|. Integer addition is
// associative and commutative, so ranks and residual are independent of
// thread count and grain.
class Pagerank final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "pagerank"; }
  [[nodiscard]] std::string Suite() const override { return "graph"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    constexpr int64_t kOne = 1 << 20;
    constexpr int kMaxIters = 12;
    const size_t n = 160 * static_cast<size_t>(p.scale);
    const HostGraph host = GenGraph(n, /*avg_deg=*/6, p.seed, false);
    const SharedGraph g = PublishGraph(env, host);
    auto ranks = dmt::MakeStaticArray<int64_t>(env, n);
    Executor ex(env, ExecOptions{.threads = p.threads});
    const size_t nw = ex.threads();
    auto partials = dmt::MakeStaticArray<int64_t>(env, nw * n);
    {
      const std::vector<int64_t> init(n, kOne);
      ranks.Write(env, 0, init.data(), n);
    }
    const std::vector<int64_t> zeros(nw * n, 0);
    rfdet::Signature sig;
    int iters = 0;
    uint64_t residual = 0;
    for (; iters < kMaxIters; ++iters) {
      partials.Write(env, 0, zeros.data(), nw * n);
      // Push phase: chunk-local accumulation, then one read-modify-write
      // of this worker's stripe (only worker w touches stripe w).
      det_parallel_for(ex, 0, n, 0, [&](size_t lo, size_t hi, size_t w) {
        std::vector<uint64_t> offs;
        std::vector<uint32_t> nbrs;
        ReadChunkAdjacency(env, g, lo, hi, &offs, &nbrs);
        std::vector<int64_t> rank_chunk(hi - lo);
        ranks.Read(env, lo, rank_chunk.data(), hi - lo);
        std::vector<int64_t> acc(n, 0);
        for (size_t u = lo; u < hi; ++u) {
          const size_t deg = offs[u - lo + 1] - offs[u - lo];
          if (deg == 0) continue;
          const int64_t contrib =
              rank_chunk[u - lo] * 85 / (100 * static_cast<int64_t>(deg));
          for (size_t e = offs[u - lo]; e < offs[u - lo + 1]; ++e) {
            acc[nbrs[e - offs[0]]] += contrib;
          }
        }
        std::vector<int64_t> stripe(n);
        partials.Read(env, w * n, stripe.data(), n);
        for (size_t v = 0; v < n; ++v) stripe[v] += acc[v];
        partials.Write(env, w * n, stripe.data(), n);
      });
      // Fold phase: new rank per vertex plus the residual reduce.
      residual = det_reduce(
          ex, 0, n, 0,
          [&](size_t lo, size_t hi) -> uint64_t {
            const size_t len = hi - lo;
            std::vector<int64_t> sum(len, 0);
            std::vector<int64_t> stripe(len);
            for (size_t w = 0; w < nw; ++w) {
              partials.Read(env, w * n + lo, stripe.data(), len);
              for (size_t v = 0; v < len; ++v) sum[v] += stripe[v];
            }
            std::vector<int64_t> old(len);
            ranks.Read(env, lo, old.data(), len);
            uint64_t res = 0;
            for (size_t v = 0; v < len; ++v) {
              const int64_t next = 15 * kOne / 100 + sum[v];
              res += static_cast<uint64_t>(std::abs(next - old[v]));
              sum[v] = next;
            }
            ranks.Write(env, lo, sum.data(), len);
            return res;
          },
          [](uint64_t a, uint64_t b) { return a + b; }, 0);
      sig.Mix(residual);
      if (residual < static_cast<uint64_t>(n)) break;
    }
    std::vector<int64_t> final_ranks(n);
    ranks.Read(env, 0, final_ranks.data(), n);
    for (const int64_t r : final_ranks) {
      sig.Mix(static_cast<uint64_t>(r));
    }
    sig.Mix(static_cast<uint64_t>(iters));
    return Result{sig.Value()};
  }
};

// ---- BFS -------------------------------------------------------------------
//
// Frontier worklist over det_for_each: items pack (dist << 32 | vertex);
// relaxation is an Env CAS-min, and only a strict improvement pushes the
// neighbor. The dist array is a min fixed point, so the result is the
// true BFS level regardless of drain order (confluence).
class Bfs final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "bfs"; }
  [[nodiscard]] std::string Suite() const override { return "graph"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    constexpr uint64_t kInf = ~uint64_t{0};
    const size_t n = 224 * static_cast<size_t>(p.scale);
    const HostGraph host = GenGraph(n, /*avg_deg=*/4, p.seed + 1, true);
    const SharedGraph g = PublishGraph(env, host);
    auto dist = dmt::MakeStaticArray<uint64_t>(env, n);
    {
      std::vector<uint64_t> init(n, kInf);
      init[0] = 0;
      dist.Write(env, 0, init.data(), n);
    }
    Executor ex(env, ExecOptions{.threads = p.threads});
    const uint64_t seed_item = 0;  // dist 0, vertex 0
    det_for_each(ex, &seed_item, 1, [&](uint64_t item, WorkContext& ctx) {
      const uint64_t d = item >> 32;
      const size_t u = static_cast<size_t>(item & 0xffffffffu);
      if (env.AtomicLoad(dist.addr(u)) < d) return;  // stale item
      const uint64_t nd = d + 1;
      std::vector<uint64_t> offs;
      std::vector<uint32_t> nbrs;
      ReadChunkAdjacency(env, g, u, u + 1, &offs, &nbrs);
      for (const uint32_t v : nbrs) {
        uint64_t cur = env.AtomicLoad(dist.addr(v));
        while (nd < cur) {
          if (env.AtomicCas(dist.addr(v), cur, nd)) {
            ctx.Push(nd << 32 | v);
            break;
          }
        }
      }
    });
    std::vector<uint64_t> final_dist(n);
    dist.Read(env, 0, final_dist.data(), n);
    rfdet::Signature sig;
    uint64_t reached = 0;
    for (const uint64_t d : final_dist) {
      sig.Mix(d);
      if (d != kInf) ++reached;
    }
    sig.Mix(reached);
    return Result{sig.Value()};
  }
};

// ---- connected components --------------------------------------------------
//
// Label propagation, Jacobi-style: each round reads labels from one
// buffer and writes min(own, neighbors) to the other, with the changed
// count coming back through det_reduce; rounds are therefore pure
// functions of the previous buffer, independent of schedule.
class ConnectedComponents final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "cc"; }
  [[nodiscard]] std::string Suite() const override { return "graph"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    constexpr int kMaxIters = 48;
    const size_t n = 192 * static_cast<size_t>(p.scale);
    const HostGraph host = GenGraph(n, /*avg_deg=*/3, p.seed + 2, true);
    const SharedGraph g = PublishGraph(env, host);
    dmt::ArrayRef<uint64_t> labels[2] = {
        dmt::MakeStaticArray<uint64_t>(env, n),
        dmt::MakeStaticArray<uint64_t>(env, n),
    };
    {
      std::vector<uint64_t> init(n);
      for (size_t v = 0; v < n; ++v) init[v] = v;
      labels[0].Write(env, 0, init.data(), n);
    }
    Executor ex(env, ExecOptions{.threads = p.threads});
    int cur = 0;
    int iters = 0;
    for (; iters < kMaxIters; ++iters) {
      const auto& src = labels[cur];
      const auto& dst = labels[1 - cur];
      const uint64_t changed = det_reduce(
          ex, 0, n, 0,
          [&](size_t lo, size_t hi) -> uint64_t {
            const size_t len = hi - lo;
            std::vector<uint64_t> offs;
            std::vector<uint32_t> nbrs;
            ReadChunkAdjacency(env, g, lo, hi, &offs, &nbrs);
            std::vector<uint64_t> mine(len);
            src.Read(env, lo, mine.data(), len);
            uint64_t count = 0;
            std::vector<uint64_t> next(len);
            for (size_t v = lo; v < hi; ++v) {
              uint64_t m = mine[v - lo];
              for (size_t e = offs[v - lo]; e < offs[v - lo + 1]; ++e) {
                m = std::min(m, src.Get(env, nbrs[e - offs[0]]));
              }
              next[v - lo] = m;
              if (m != mine[v - lo]) ++count;
            }
            dst.Write(env, lo, next.data(), len);
            return count;
          },
          [](uint64_t a, uint64_t b) { return a + b; }, 0);
      cur = 1 - cur;
      if (changed == 0) break;
    }
    std::vector<uint64_t> final_labels(n);
    labels[cur].Read(env, 0, final_labels.data(), n);
    rfdet::Signature sig;
    uint64_t components = 0;
    for (size_t v = 0; v < n; ++v) {
      sig.Mix(final_labels[v]);
      if (final_labels[v] == v) ++components;
    }
    sig.Mix(components);
    sig.Mix(static_cast<uint64_t>(iters));
    return Result{sig.Value()};
  }
};

}  // namespace

const Workload* PagerankWorkload() {
  static const Pagerank w;
  return &w;
}
const Workload* BfsWorkload() {
  static const Bfs w;
  return &w;
}
const Workload* ConnectedComponentsWorkload() {
  static const ConnectedComponents w;
  return &w;
}

}  // namespace apps
