// canneal — the PARSEC kernel the paper had to OMIT (§5.1) because its ad
// hoc, lock-free synchronization "violates atomicity" without runtime
// support. With the §4.6 low-level-atomics extension implemented, this
// repository can run it: a simulated-annealing placement optimizer whose
// threads swap netlist elements with racy atomic exchanges, exactly in
// canneal's spirit. The kernel is intentionally racy (RaceFree() = false):
// it is deterministic per strong-DMT configuration but not across
// backends.
#include "rfdet/apps/app_util.h"
#include "rfdet/apps/workload.h"

namespace apps {
namespace {

class Canneal final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "canneal"; }
  [[nodiscard]] std::string Suite() const override { return "extension"; }
  [[nodiscard]] bool RaceFree() const override { return false; }

  Result Run(dmt::Env& env, const Params& p) const override {
    const size_t n = 256 * static_cast<size_t>(p.scale);  // elements
    const size_t swaps = 400 * static_cast<size_t>(p.scale);
    // placement[loc] = element id (atomic slots, 8-byte aligned).
    auto placement = dmt::MakeStaticArray<uint64_t>(env, n);
    // Each element connects to 4 pseudo-random peers (read-only netlist).
    auto nets = dmt::MakeStaticArray<uint32_t>(env, n * 4);
    auto accepted = dmt::MakeStaticArray<uint64_t>(env, 1);

    rfdet::Xoshiro256 rng(p.seed);
    for (size_t i = 0; i < n; ++i) {
      placement.Put(env, i, static_cast<uint64_t>(i));
    }
    std::vector<uint32_t> topology(n * 4);
    for (auto& t : topology) t = static_cast<uint32_t>(rng.Below(n));
    nets.Write(env, 0, topology.data(), topology.size());

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        std::vector<uint32_t> local_nets(n * 4);
        nets.Read(env, 0, local_nets.data(), local_nets.size());
        rfdet::Xoshiro256 trng(p.seed * 31 + t);
        // Wire-length cost of placing element e at location loc: distance
        // to its connected peers' home locations.
        auto cost = [&](uint64_t element, size_t loc) {
          int64_t c = 0;
          for (int k = 0; k < 4; ++k) {
            const uint32_t peer = local_nets[element * 4 + k];
            const int64_t d = static_cast<int64_t>(loc) -
                              static_cast<int64_t>(peer);
            c += d < 0 ? -d : d;
          }
          return c;
        };
        for (size_t s = 0; s < swaps / p.threads; ++s) {
          const size_t la = trng.Below(n);
          size_t lb = trng.Below(n);
          if (lb == la) lb = (lb + 1) % n;
          // Ad hoc synchronization: racy atomic reads of two slots,
          // followed by unsynchronized atomic stores — canneal's pattern.
          const uint64_t ea = env.AtomicLoad(placement.addr(la));
          const uint64_t eb = env.AtomicLoad(placement.addr(lb));
          const int64_t before = cost(ea, la) + cost(eb, lb);
          const int64_t after = cost(ea, lb) + cost(eb, la);
          env.Tick(16);
          if (after < before) {
            env.AtomicStore(placement.addr(la), eb);
            env.AtomicStore(placement.addr(lb), ea);
            env.AtomicFetchAdd(accepted.addr(0), 1);
          }
        }
      }));
    }
    for (const size_t tid : tids) env.Join(tid);

    rfdet::Signature sig;
    for (size_t i = 0; i < n; ++i) {
      sig.Mix(env.AtomicLoad(placement.addr(i)));
    }
    sig.Mix(env.AtomicLoad(accepted.addr(0)));
    return Result{sig.Value()};
  }
};

}  // namespace

const Workload* CannealWorkload() {
  static const Canneal w;
  return &w;
}

}  // namespace apps
