// PARSEC kernels (paper Table 1): blackscholes, swaptions, dedup, ferret.
//
// blackscholes and swaptions are compute-dominated with a handful of
// synchronizations; dedup and ferret are queue-driven pipelines whose
// tens of thousands of lock operations make them the paper's most
// synchronization-intensive programs.
#include <algorithm>
#include <cmath>

#include "rfdet/apps/app_util.h"
#include "rfdet/apps/workload.h"

namespace apps {
namespace {

// PARSEC-style cumulative normal distribution (polynomial approximation —
// deterministic across libm implementations).
double Cndf(double x) {
  const bool neg = x < 0.0;
  if (neg) x = -x;
  const double k = 1.0 / (1.0 + 0.2316419 * x);
  const double poly =
      k * (0.319381530 +
           k * (-0.356563782 +
                k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
  const double cnd = 1.0 - 0.39894228040143267794 * std::exp(-0.5 * x * x) *
                               poly;
  return neg ? 1.0 - cnd : cnd;
}

// ---------------------------------------------------------------------------
// blackscholes — embarrassingly parallel option pricing with a broadcast
// start gate and a locked completion counter.
// ---------------------------------------------------------------------------
class BlackScholes final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "blackscholes"; }
  [[nodiscard]] std::string Suite() const override { return "parsec"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    const size_t n = 2048 * static_cast<size_t>(p.scale);
    auto opts = dmt::MakeStaticArray<double>(env, n * 5);
    auto prices = dmt::MakeStaticArray<double>(env, n);
    auto go = dmt::MakeStaticArray<uint64_t>(env, 1);
    const size_t gate_mtx = env.CreateMutex();
    const size_t gate_cv = env.CreateCond();

    rfdet::Xoshiro256 rng(p.seed);
    std::vector<double> init(n * 5);
    for (size_t i = 0; i < n; ++i) {
      init[i * 5 + 0] = 50.0 + rng.NextDouble() * 100.0;  // spot
      init[i * 5 + 1] = 50.0 + rng.NextDouble() * 100.0;  // strike
      init[i * 5 + 2] = 0.01 + rng.NextDouble() * 0.05;   // rate
      init[i * 5 + 3] = 0.10 + rng.NextDouble() * 0.40;   // vol
      init[i * 5 + 4] = 0.25 + rng.NextDouble() * 2.00;   // expiry
    }
    opts.Write(env, 0, init.data(), n * 5);

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        env.Lock(gate_mtx);
        while (env.Get<uint64_t>(go.addr(0)) == 0) {
          env.Wait(gate_cv, gate_mtx);
        }
        env.Unlock(gate_mtx);
        const Range mine = ChunkOf(n, p.threads, t);
        std::vector<double> in((mine.end - mine.begin) * 5);
        opts.Read(env, mine.begin * 5, in.data(), in.size());
        std::vector<double> out(mine.end - mine.begin);
        for (size_t i = 0; i < out.size(); ++i) {
          const double s = in[i * 5 + 0];
          const double k = in[i * 5 + 1];
          const double r = in[i * 5 + 2];
          const double v = in[i * 5 + 3];
          const double ttm = in[i * 5 + 4];
          const double d1 = (std::log(s / k) + (r + 0.5 * v * v) * ttm) /
                            (v * std::sqrt(ttm));
          const double d2 = d1 - v * std::sqrt(ttm);
          out[i] = s * Cndf(d1) - k * std::exp(-r * ttm) * Cndf(d2);
          env.Tick(8);
        }
        prices.Write(env, mine.begin, out.data(), out.size());
      }));
    }
    // Release the gate (the paper's 1 broadcast / few locks profile).
    env.Lock(gate_mtx);
    env.Put<uint64_t>(go.addr(0), 1);
    env.Broadcast(gate_cv);
    env.Unlock(gate_mtx);
    for (const size_t tid : tids) env.Join(tid);

    rfdet::Signature sig;
    std::vector<double> out(n);
    prices.Read(env, 0, out.data(), n);
    for (size_t i = 0; i < n; i += 5) sig.MixDouble(out[i]);
    return Result{sig.Value()};
  }
};

// ---------------------------------------------------------------------------
// swaptions — Monte-Carlo pricing with a lock-protected dynamic work queue
// (the per-swaption result is independent of which thread computes it, so
// the signature is backend-portable even though assignment is dynamic).
// ---------------------------------------------------------------------------
class Swaptions final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "swaptions"; }
  [[nodiscard]] std::string Suite() const override { return "parsec"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    const size_t n = 16 * static_cast<size_t>(p.scale);
    const size_t trials = 64 * static_cast<size_t>(p.scale);
    auto results = dmt::MakeStaticArray<double>(env, n);
    auto next = dmt::MakeStaticArray<uint64_t>(env, 1);
    const size_t queue_mtx = env.CreateMutex();

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&] {
        for (;;) {
          env.Lock(queue_mtx);
          const uint64_t i = env.Get<uint64_t>(next.addr(0));
          if (i < n) env.Put<uint64_t>(next.addr(0), i + 1);
          env.Unlock(queue_mtx);
          if (i >= n) break;
          // Simplified HJM path simulation, deterministic per swaption.
          rfdet::Xoshiro256 rng(p.seed * 7919 + i);
          const double strike = 0.02 + 0.02 * rng.NextDouble();
          double sum = 0.0;
          for (size_t trial = 0; trial < trials; ++trial) {
            double rate = 0.03;
            for (int step = 0; step < 16; ++step) {
              rate += 0.002 * (rng.NextDouble() - 0.5) + 1e-4;
            }
            sum += std::max(0.0, rate - strike);
            env.Tick(4);
          }
          results.Put(env, i, sum / static_cast<double>(trials));
        }
      }));
    }
    for (const size_t tid : tids) env.Join(tid);

    rfdet::Signature sig;
    std::vector<double> out(n);
    results.Read(env, 0, out.data(), n);
    for (const double v : out) sig.MixDouble(v);
    return Result{sig.Value()};
  }
};

// ---------------------------------------------------------------------------
// dedup — content-defined chunking pipeline: the main thread chunks the
// input with a rolling hash and feeds worker threads through a bounded
// queue; workers fingerprint chunks and deduplicate them against a shared
// open-addressed table under a lock.
// ---------------------------------------------------------------------------
class Dedup final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "dedup"; }
  [[nodiscard]] std::string Suite() const override { return "parsec"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    const size_t n = 65536 * static_cast<size_t>(p.scale);
    const size_t table_slots = 4096 * static_cast<size_t>(p.scale);
    auto data = dmt::MakeStaticArray<uint8_t>(env, n);
    auto table = dmt::MakeStaticArray<uint64_t>(env, table_slots);
    auto unique_bytes = dmt::MakeStaticArray<uint64_t>(env, 1);
    // Per-thread (xor, sum) of unique fingerprints: chunk→thread assignment
    // is dynamic, so the digest must depend only on the fingerprint SET.
    auto partial_sigs = dmt::MakeStaticArray<uint64_t>(env, p.threads * 2);
    const size_t table_mtx = env.CreateMutex();
    AppQueue queue(env, 64);

    // Deterministic input with repeated regions so deduplication finds
    // actual duplicates.
    rfdet::Xoshiro256 rng(p.seed);
    std::vector<uint8_t> init(n);
    for (size_t i = 0; i < n; ++i) {
      init[i] = (i / 4096) % 3 == 2
                    ? init[i % 4096]  // every third 4K region repeats
                    : static_cast<uint8_t>(rng.Next());
    }
    data.Write(env, 0, init.data(), n);

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        uint64_t local_xor = 0;
        uint64_t local_sum = 0;
        for (;;) {
          const uint64_t item = queue.Pop(env);
          if (item == AppQueue::kDone) break;
          const size_t off = item >> 20;
          const size_t len = item & 0xfffff;
          std::vector<uint8_t> chunk(len);
          data.Read(env, off, chunk.data(), len);
          const uint64_t fp = rfdet::Fnv1a(chunk.data(), len);
          env.Tick(len / 8);
          // Probe/insert in the shared fingerprint table.
          env.Lock(table_mtx);
          size_t slot = fp % table_slots;
          bool duplicate = false;
          for (;;) {
            const uint64_t cur = table.Get(env, slot);
            if (cur == fp) {
              duplicate = true;
              break;
            }
            if (cur == 0) {
              table.Put(env, slot, fp);
              break;
            }
            slot = (slot + 1) % table_slots;
          }
          if (!duplicate) {
            env.Put<uint64_t>(
                unique_bytes.addr(0),
                env.Get<uint64_t>(unique_bytes.addr(0)) + len);
          }
          env.Unlock(table_mtx);
          if (!duplicate) {
            local_xor ^= fp;
            local_sum += fp * rfdet::kFnvPrime;
          }
        }
        partial_sigs.Put(env, t * 2, local_xor);
        partial_sigs.Put(env, t * 2 + 1, local_sum);
      }));
    }

    // Producer: content-defined chunk boundaries via a rolling hash.
    uint64_t roll = 0;
    size_t start = 0;
    size_t chunks = 0;
    constexpr size_t kBuf = 4096;
    std::vector<uint8_t> buf(kBuf);
    for (size_t i = 0; i < n; ++i) {
      if (i % kBuf == 0) {
        data.Read(env, i, buf.data(), std::min(kBuf, n - i));
      }
      roll = roll * 31 + buf[i % kBuf];
      const bool boundary = (roll & 0x3f) == 0 || i - start >= 1024;
      if (boundary || i + 1 == n) {
        const size_t len = i + 1 - start;
        queue.Push(env, (uint64_t{start} << 20) | len);
        start = i + 1;
        ++chunks;
      }
    }
    for (size_t t = 0; t < p.threads; ++t) queue.Push(env, AppQueue::kDone);
    for (const size_t tid : tids) env.Join(tid);

    // Per-chunk assignment is dynamic: fold the (xor, sum) pairs, which
    // depend only on the set of unique fingerprints.
    uint64_t all_xor = 0;
    uint64_t all_sum = 0;
    for (size_t t = 0; t < p.threads; ++t) {
      all_xor ^= partial_sigs.Get(env, t * 2);
      all_sum += partial_sigs.Get(env, t * 2 + 1);
    }
    rfdet::Signature sig;
    sig.Mix(all_xor);
    sig.Mix(all_sum);
    sig.Mix(env.Get<uint64_t>(unique_bytes.addr(0)));
    sig.Mix(chunks);
    return Result{sig.Value()};
  }
};

// ---------------------------------------------------------------------------
// ferret — similarity-search pipeline: queries flow through a bounded
// queue to extract/probe workers that scan a shared read-only index and
// push candidates to a ranking thread maintaining a global top-K under a
// lock. The heaviest lock traffic of the suite, as in the paper.
// ---------------------------------------------------------------------------
class Ferret final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "ferret"; }
  [[nodiscard]] std::string Suite() const override { return "parsec"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    constexpr size_t kClusters = 64;
    constexpr size_t kMembers = 16;
    constexpr size_t kDim = 8;
    constexpr size_t kTopK = 16;
    const size_t queries = 256 * static_cast<size_t>(p.scale);

    auto centroids = dmt::MakeStaticArray<double>(env, kClusters * kDim);
    auto members =
        dmt::MakeStaticArray<double>(env, kClusters * kMembers * kDim);
    auto top_dist = dmt::MakeStaticArray<double>(env, kTopK);
    auto top_id = dmt::MakeStaticArray<uint64_t>(env, kTopK);
    const size_t rank_mtx = env.CreateMutex();
    AppQueue in_queue(env, 32);

    rfdet::Xoshiro256 rng(p.seed);
    {
      std::vector<double> init(kClusters * kDim);
      for (auto& v : init) v = rng.NextDouble();
      centroids.Write(env, 0, init.data(), init.size());
      std::vector<double> minit(kClusters * kMembers * kDim);
      for (auto& v : minit) v = rng.NextDouble();
      members.Write(env, 0, minit.data(), minit.size());
      std::vector<double> far(kTopK, 1e18);
      top_dist.Write(env, 0, far.data(), kTopK);
    }

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&] {
        std::vector<double> cents(kClusters * kDim);
        centroids.Read(env, 0, cents.data(), cents.size());
        std::vector<double> memb(kMembers * kDim);
        for (;;) {
          const uint64_t q = in_queue.Pop(env);
          if (q == AppQueue::kDone) break;
          // Extract: deterministic query vector from the query id.
          rfdet::Xoshiro256 qrng(q * 0x9e3779b97f4a7c15ULL + 1);
          double vec[kDim];
          for (auto& v : vec) v = qrng.NextDouble();
          // Probe: nearest centroid.
          size_t best_c = 0;
          double best_d = 1e18;
          for (size_t c = 0; c < kClusters; ++c) {
            double d = 0;
            for (size_t k = 0; k < kDim; ++k) {
              const double diff = cents[c * kDim + k] - vec[k];
              d += diff * diff;
            }
            if (d < best_d) {
              best_d = d;
              best_c = c;
            }
          }
          env.Tick(kClusters * kDim / 8);
          // Rank within the cluster.
          members.Read(env, best_c * kMembers * kDim, memb.data(),
                       memb.size());
          size_t best_m = 0;
          double best_md = 1e18;
          for (size_t m = 0; m < kMembers; ++m) {
            double d = 0;
            for (size_t k = 0; k < kDim; ++k) {
              const double diff = memb[m * kDim + k] - vec[k];
              d += diff * diff;
            }
            if (d < best_md) {
              best_md = d;
              best_m = m;
            }
          }
          env.Tick(kMembers * kDim / 8);
          // Output: merge into the global top-K (replace current maximum
          // if we beat it) under the ranking lock.
          env.Lock(rank_mtx);
          size_t worst = 0;
          double worst_d = -1.0;
          for (size_t k = 0; k < kTopK; ++k) {
            const double d = top_dist.Get(env, k);
            if (d > worst_d) {
              worst_d = d;
              worst = k;
            }
          }
          if (best_md < worst_d) {
            top_dist.Put(env, worst, best_md);
            top_id.Put(env, worst, best_c * kMembers + best_m);
          }
          env.Unlock(rank_mtx);
        }
      }));
    }

    for (uint64_t q = 0; q < queries; ++q) in_queue.Push(env, q);
    for (size_t t = 0; t < p.threads; ++t) {
      in_queue.Push(env, AppQueue::kDone);
    }
    for (const size_t tid : tids) env.Join(tid);

    // The global top-K is a set (order in the array is scheduling-
    // dependent); digest it order-insensitively.
    std::vector<uint64_t> parts(kTopK);
    for (size_t k = 0; k < kTopK; ++k) {
      rfdet::Signature one;
      one.MixDouble(top_dist.Get(env, k));
      one.Mix(top_id.Get(env, k));
      parts[k] = one.Value();
    }
    return Result{CombineUnordered(parts)};
  }
};

}  // namespace

const Workload* BlackScholesWorkload() {
  static const BlackScholes w;
  return &w;
}
const Workload* SwaptionsWorkload() {
  static const Swaptions w;
  return &w;
}
const Workload* DedupWorkload() {
  static const Dedup w;
  return &w;
}
const Workload* FerretWorkload() {
  static const Ferret w;
  return &w;
}

}  // namespace apps
