// Shared helpers for the workload kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "rfdet/api/env.h"
#include "rfdet/common/hash.h"
#include "rfdet/common/rng.h"

namespace apps {

// A lock+condvar barrier built from the application-level API, mirroring
// the paper's SPLASH-2 configuration (c.m4.null.POSIX), where barriers are
// implemented with lock/unlock + condition waits. Using it instead of the
// runtime's native barrier makes the SPLASH-2 kernels execute many more
// lock/unlock/wait/signal operations — exactly how the paper stressed
// synchronization performance (§5.1).
class AppBarrier {
 public:
  AppBarrier(dmt::Env& env, size_t parties)
      : parties_(parties),
        mutex_(env.CreateMutex()),
        cond_(env.CreateCond()),
        count_(env.AllocStatic(sizeof(uint64_t))),
        generation_(env.AllocStatic(sizeof(uint64_t))) {}

  void Wait(dmt::Env& env) const {
    env.Lock(mutex_);
    const uint64_t gen = env.Get<uint64_t>(generation_);
    const uint64_t count = env.Get<uint64_t>(count_) + 1;
    if (count == parties_) {
      env.Put<uint64_t>(count_, 0);
      env.Put<uint64_t>(generation_, gen + 1);
      env.Broadcast(cond_);
    } else {
      env.Put<uint64_t>(count_, count);
      while (env.Get<uint64_t>(generation_) == gen) {
        env.Wait(cond_, mutex_);
      }
    }
    env.Unlock(mutex_);
  }

 private:
  size_t parties_;
  size_t mutex_;
  size_t cond_;
  dmt::GAddr count_;
  dmt::GAddr generation_;
};

// A bounded MPMC queue of uint64 items living in shared memory, built from
// the application-level mutex/cond API. Drives the PARSEC pipeline kernels
// (dedup, ferret), whose very high lock counts in the paper's Table 1 come
// from exactly this kind of per-item queue traffic.
class AppQueue {
 public:
  static constexpr uint64_t kDone = ~uint64_t{0};

  AppQueue(dmt::Env& env, size_t capacity)
      : capacity_(capacity),
        buf_(dmt::MakeStaticArray<uint64_t>(env, capacity)),
        state_(dmt::MakeStaticArray<uint64_t>(env, 3)),  // head, tail, count
        mutex_(env.CreateMutex()),
        not_empty_(env.CreateCond()),
        not_full_(env.CreateCond()) {}

  void Push(dmt::Env& env, uint64_t item) const {
    env.Lock(mutex_);
    while (env.Get<uint64_t>(state_.addr(2)) == capacity_) {
      env.Wait(not_full_, mutex_);
    }
    const uint64_t tail = env.Get<uint64_t>(state_.addr(1));
    buf_.Put(env, tail % capacity_, item);
    env.Put<uint64_t>(state_.addr(1), tail + 1);
    env.Put<uint64_t>(state_.addr(2),
                      env.Get<uint64_t>(state_.addr(2)) + 1);
    env.Signal(not_empty_);
    env.Unlock(mutex_);
  }

  [[nodiscard]] uint64_t Pop(dmt::Env& env) const {
    env.Lock(mutex_);
    while (env.Get<uint64_t>(state_.addr(2)) == 0) {
      env.Wait(not_empty_, mutex_);
    }
    const uint64_t head = env.Get<uint64_t>(state_.addr(0));
    const uint64_t item = buf_.Get(env, head % capacity_);
    env.Put<uint64_t>(state_.addr(0), head + 1);
    env.Put<uint64_t>(state_.addr(2),
                      env.Get<uint64_t>(state_.addr(2)) - 1);
    env.Signal(not_full_);
    env.Unlock(mutex_);
    return item;
  }

 private:
  size_t capacity_;
  dmt::ArrayRef<uint64_t> buf_;
  dmt::ArrayRef<uint64_t> state_;
  size_t mutex_;
  size_t not_empty_;
  size_t not_full_;
};

// [begin, end) of item `t` when n items are split across p workers.
struct Range {
  size_t begin;
  size_t end;
};
inline Range ChunkOf(size_t n, size_t parts, size_t t) {
  const size_t base = n / parts;
  const size_t extra = n % parts;
  const size_t begin = t * base + (t < extra ? t : extra);
  return {begin, begin + base + (t < extra ? 1 : 0)};
}

// Order-insensitive combination for per-thread partial signatures.
inline uint64_t CombineUnordered(const std::vector<uint64_t>& parts) {
  uint64_t x = 0;
  uint64_t s = rfdet::kFnvOffset;
  for (const uint64_t p : parts) {
    x ^= p;
    s += p * rfdet::kFnvPrime;
  }
  rfdet::Signature sig;
  sig.Mix(x);
  sig.Mix(s);
  return sig.Value();
}

}  // namespace apps
