// Phoenix map-reduce kernels (paper Table 1): linear_regression,
// matrix_multiply, pca, wordcount, string_match.
//
// These are the paper's low-synchronization workloads — mostly pure
// fork/join with at most a modest number of accumulation locks — where
// DMT overhead should be smallest (paper §5.3).
#include <array>
#include <cmath>
#include <map>

#include "rfdet/apps/app_util.h"
#include "rfdet/apps/workload.h"

namespace apps {
namespace {

// ---------------------------------------------------------------------------
// linear_regression — pure fork/join partial-sum reduction.
// ---------------------------------------------------------------------------
class LinearRegression final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override {
    return "linear_regression";
  }
  [[nodiscard]] std::string Suite() const override { return "phoenix"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    const size_t n = 65536 * static_cast<size_t>(p.scale);
    auto xs = dmt::MakeStaticArray<int32_t>(env, n);
    auto ys = dmt::MakeStaticArray<int32_t>(env, n);
    // 5 partial sums per thread: sx, sy, sxx, syy, sxy.
    auto partials = dmt::MakeStaticArray<int64_t>(env, p.threads * 5);

    rfdet::Xoshiro256 rng(p.seed);
    std::vector<int32_t> gen_x(n);
    std::vector<int32_t> gen_y(n);
    for (size_t i = 0; i < n; ++i) {
      gen_x[i] = static_cast<int32_t>(rng.Below(1000));
      gen_y[i] = 3 * gen_x[i] + static_cast<int32_t>(rng.Below(50)) - 25;
    }
    xs.Write(env, 0, gen_x.data(), n);
    ys.Write(env, 0, gen_y.data(), n);

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        const Range r = ChunkOf(n, p.threads, t);
        int64_t sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
        constexpr size_t kBuf = 1024;
        std::array<int32_t, kBuf> bx;
        std::array<int32_t, kBuf> by;
        for (size_t i = r.begin; i < r.end; i += kBuf) {
          const size_t m = std::min(kBuf, r.end - i);
          xs.Read(env, i, bx.data(), m);
          ys.Read(env, i, by.data(), m);
          for (size_t j = 0; j < m; ++j) {
            sx += bx[j];
            sy += by[j];
            sxx += int64_t{bx[j]} * bx[j];
            syy += int64_t{by[j]} * by[j];
            sxy += int64_t{bx[j]} * by[j];
          }
          env.Tick(m);
        }
        const int64_t out[5] = {sx, sy, sxx, syy, sxy};
        partials.Write(env, t * 5, out, 5);
      }));
    }
    for (const size_t tid : tids) env.Join(tid);

    int64_t tot[5] = {0, 0, 0, 0, 0};
    for (size_t t = 0; t < p.threads; ++t) {
      int64_t part[5];
      partials.Read(env, t * 5, part, 5);
      for (int k = 0; k < 5; ++k) tot[k] += part[k];
    }
    rfdet::Signature sig;
    for (const int64_t v : tot) sig.Mix(static_cast<uint64_t>(v));
    return Result{sig.Value()};
  }
};

// ---------------------------------------------------------------------------
// matrix_multiply — fork/join row-strip matmul.
// ---------------------------------------------------------------------------
class MatrixMultiply final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override {
    return "matrix_multiply";
  }
  [[nodiscard]] std::string Suite() const override { return "phoenix"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    const size_t n = 48 * static_cast<size_t>(p.scale);
    auto a = dmt::MakeStaticArray<int32_t>(env, n * n);
    auto b = dmt::MakeStaticArray<int32_t>(env, n * n);
    auto c = dmt::MakeStaticArray<int64_t>(env, n * n);

    rfdet::Xoshiro256 rng(p.seed);
    std::vector<int32_t> init(n * n);
    for (auto& v : init) v = static_cast<int32_t>(rng.Below(100));
    a.Write(env, 0, init.data(), n * n);
    for (auto& v : init) v = static_cast<int32_t>(rng.Below(100));
    b.Write(env, 0, init.data(), n * n);

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        const Range r = ChunkOf(n, p.threads, t);
        std::vector<int32_t> row(n);
        std::vector<int32_t> bcol(n * n);
        b.Read(env, 0, bcol.data(), n * n);  // B is read-only: one bulk read
        std::vector<int64_t> crow(n);
        for (size_t i = r.begin; i < r.end; ++i) {
          a.Read(env, i * n, row.data(), n);
          for (size_t j = 0; j < n; ++j) {
            int64_t acc = 0;
            for (size_t k = 0; k < n; ++k) {
              acc += int64_t{row[k]} * bcol[k * n + j];
            }
            crow[j] = acc;
          }
          env.Tick(n * n / 8);
          c.Write(env, i * n, crow.data(), n);
        }
      }));
    }
    for (const size_t tid : tids) env.Join(tid);

    rfdet::Signature sig;
    std::vector<int64_t> crow(n);
    for (size_t i = 0; i < n; ++i) {
      c.Read(env, i * n, crow.data(), n);
      for (const int64_t v : crow) sig.Mix(static_cast<uint64_t>(v));
    }
    return Result{sig.Value()};
  }
};

// ---------------------------------------------------------------------------
// pca — two fork/join phases (means, covariance) with accumulation locks.
// ---------------------------------------------------------------------------
class Pca final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "pca"; }
  [[nodiscard]] std::string Suite() const override { return "phoenix"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    const size_t rows = 64 * static_cast<size_t>(p.scale);
    constexpr size_t kCols = 16;
    auto data = dmt::MakeStaticArray<int32_t>(env, rows * kCols);
    auto mean = dmt::MakeStaticArray<int64_t>(env, kCols);
    auto cov = dmt::MakeStaticArray<int64_t>(env, kCols * kCols);
    const size_t mean_mtx = env.CreateMutex();
    const size_t cov_mtx = env.CreateMutex();

    rfdet::Xoshiro256 rng(p.seed);
    std::vector<int32_t> init(rows * kCols);
    for (auto& v : init) v = static_cast<int32_t>(rng.Below(256));
    data.Write(env, 0, init.data(), rows * kCols);

    // Phase 1: column means (each thread accumulates its row chunk into the
    // shared mean vector under a lock, once per row — the Phoenix pca's
    // lock-heavy accumulation pattern).
    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        const Range r = ChunkOf(rows, p.threads, t);
        std::vector<int32_t> row(kCols);
        for (size_t i = r.begin; i < r.end; ++i) {
          data.Read(env, i * kCols, row.data(), kCols);
          env.Lock(mean_mtx);
          std::vector<int64_t> m(kCols);
          mean.Read(env, 0, m.data(), kCols);
          for (size_t j = 0; j < kCols; ++j) m[j] += row[j];
          mean.Write(env, 0, m.data(), kCols);
          env.Unlock(mean_mtx);
        }
      }));
    }
    for (const size_t tid : tids) env.Join(tid);
    tids.clear();

    // Phase 2: covariance accumulation (one locked update per row).
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        std::vector<int64_t> m(kCols);
        mean.Read(env, 0, m.data(), kCols);
        for (auto& v : m) v /= static_cast<int64_t>(rows);
        const Range r = ChunkOf(rows, p.threads, t);
        std::vector<int32_t> row(kCols);
        std::vector<int64_t> local(kCols * kCols, 0);
        for (size_t i = r.begin; i < r.end; ++i) {
          data.Read(env, i * kCols, row.data(), kCols);
          for (size_t x = 0; x < kCols; ++x) {
            for (size_t y = 0; y < kCols; ++y) {
              local[x * kCols + y] += (row[x] - m[x]) * (row[y] - m[y]);
            }
          }
          env.Tick(kCols * kCols / 8);
        }
        env.Lock(cov_mtx);
        std::vector<int64_t> g(kCols * kCols);
        cov.Read(env, 0, g.data(), kCols * kCols);
        for (size_t j = 0; j < kCols * kCols; ++j) g[j] += local[j];
        cov.Write(env, 0, g.data(), kCols * kCols);
        env.Unlock(cov_mtx);
      }));
    }
    for (const size_t tid : tids) env.Join(tid);

    rfdet::Signature sig;
    std::vector<int64_t> g(kCols * kCols);
    cov.Read(env, 0, g.data(), kCols * kCols);
    for (const int64_t v : g) sig.Mix(static_cast<uint64_t>(v));
    return Result{sig.Value()};
  }
};

// ---------------------------------------------------------------------------
// wordcount — fork/join token counting, merged by the main thread.
// ---------------------------------------------------------------------------
class WordCount final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "wordcount"; }
  [[nodiscard]] std::string Suite() const override { return "phoenix"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    constexpr size_t kVocab = 256;
    const size_t tokens = 32768 * static_cast<size_t>(p.scale);
    auto text = dmt::MakeStaticArray<uint16_t>(env, tokens);  // token ids
    auto counts = dmt::MakeStaticArray<uint32_t>(env, p.threads * kVocab);

    rfdet::Xoshiro256 rng(p.seed);
    std::vector<uint16_t> init(tokens);
    for (auto& v : init) {
      // Zipf-ish skew so counts are non-uniform.
      const uint64_t r = rng.Below(kVocab * kVocab);
      v = static_cast<uint16_t>(r % kVocab <= r / kVocab ? r % kVocab
                                                         : r / kVocab);
    }
    text.Write(env, 0, init.data(), tokens);

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        const Range r = ChunkOf(tokens, p.threads, t);
        std::vector<uint32_t> local(kVocab, 0);
        constexpr size_t kBuf = 2048;
        std::vector<uint16_t> buf(kBuf);
        for (size_t i = r.begin; i < r.end; i += kBuf) {
          const size_t m = std::min(kBuf, r.end - i);
          text.Read(env, i, buf.data(), m);
          for (size_t j = 0; j < m; ++j) ++local[buf[j]];
          env.Tick(m / 8);
        }
        counts.Write(env, t * kVocab, local.data(), kVocab);
      }));
    }
    for (const size_t tid : tids) env.Join(tid);

    std::vector<uint64_t> total(kVocab, 0);
    std::vector<uint32_t> part(kVocab);
    for (size_t t = 0; t < p.threads; ++t) {
      counts.Read(env, t * kVocab, part.data(), kVocab);
      for (size_t w = 0; w < kVocab; ++w) total[w] += part[w];
    }
    rfdet::Signature sig;
    for (const uint64_t v : total) sig.Mix(v);
    return Result{sig.Value()};
  }
};

// ---------------------------------------------------------------------------
// string_match — fork/join substring counting.
// ---------------------------------------------------------------------------
class StringMatch final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "string_match"; }
  [[nodiscard]] std::string Suite() const override { return "phoenix"; }

  Result Run(dmt::Env& env, const Params& p) const override {
    const size_t n = 131072 * static_cast<size_t>(p.scale);
    constexpr std::string_view kKeys[] = {"abca", "bcab", "cabc", "aaaa"};
    auto text = dmt::MakeStaticArray<char>(env, n);
    auto hits = dmt::MakeStaticArray<uint64_t>(env, p.threads * 4);

    rfdet::Xoshiro256 rng(p.seed);
    std::vector<char> init(n);
    for (auto& c : init) c = static_cast<char>('a' + rng.Below(3));
    text.Write(env, 0, init.data(), n);

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&, t] {
        const Range r = ChunkOf(n, p.threads, t);
        // Overlap by key length - 1 so boundary matches are attributed to
        // exactly one chunk (the one containing the match start).
        const size_t end = std::min(n, r.end + 3);
        std::vector<char> buf(end - r.begin);
        text.Read(env, r.begin, buf.data(), buf.size());
        uint64_t local[4] = {0, 0, 0, 0};
        for (size_t i = 0; i + 4 <= buf.size() && r.begin + i < r.end; ++i) {
          for (int k = 0; k < 4; ++k) {
            if (std::string_view(&buf[i], 4) == kKeys[k]) ++local[k];
          }
        }
        env.Tick(buf.size() / 8);
        hits.Write(env, t * 4, local, 4);
      }));
    }
    for (const size_t tid : tids) env.Join(tid);

    uint64_t total[4] = {0, 0, 0, 0};
    for (size_t t = 0; t < p.threads; ++t) {
      uint64_t part[4];
      hits.Read(env, t * 4, part, 4);
      for (int k = 0; k < 4; ++k) total[k] += part[k];
    }
    rfdet::Signature sig;
    for (const uint64_t v : total) sig.Mix(v);
    return Result{sig.Value()};
  }
};

}  // namespace

const Workload* LinearRegressionWorkload() {
  static const LinearRegression w;
  return &w;
}
const Workload* MatrixMultiplyWorkload() {
  static const MatrixMultiply w;
  return &w;
}
const Workload* PcaWorkload() {
  static const Pca w;
  return &w;
}
const Workload* WordCountWorkload() {
  static const WordCount w;
  return &w;
}
const Workload* StringMatchWorkload() {
  static const StringMatch w;
  return &w;
}

}  // namespace apps
