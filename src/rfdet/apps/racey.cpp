// racey — the determinism stress test (Hill & Xu; paper §5.1).
//
// Threads hammer a small shared signature array with unsynchronized
// read-modify-write mixes: every iteration is a data race. On a
// conventional runtime the final signature differs run to run; under a
// strong-DMT runtime it must be bit-identical on every execution.
#include "rfdet/apps/app_util.h"
#include "rfdet/apps/workload.h"

namespace apps {
namespace {

class Racey final : public Workload {
 public:
  [[nodiscard]] std::string Name() const override { return "racey"; }
  [[nodiscard]] std::string Suite() const override { return "stress"; }
  [[nodiscard]] bool RaceFree() const override { return false; }

  Result Run(dmt::Env& env, const Params& p) const override {
    constexpr size_t kSlots = 64;
    const size_t iters = 2000 * static_cast<size_t>(p.scale);
    auto sig = dmt::MakeStaticArray<uint32_t>(env, kSlots);

    rfdet::Xoshiro256 seeder(p.seed);
    for (size_t i = 0; i < kSlots; ++i) {
      sig.Put(env, i, static_cast<uint32_t>(seeder.Next()));
    }

    std::vector<size_t> tids;
    for (size_t t = 0; t < p.threads; ++t) {
      tids.push_back(env.Spawn([&env, &sig, iters, t, seed = p.seed] {
        rfdet::Xoshiro256 rng(seed ^ (0x9e37 + t));
        for (size_t i = 0; i < iters; ++i) {
          const size_t a = rng.Below(kSlots);
          const size_t b = rng.Below(kSlots);
          // Racy read-mix-write, as in the original racey kernel.
          const uint32_t va = sig.Get(env, a);
          const uint32_t vb = sig.Get(env, b);
          const uint32_t mixed = va + vb * 0x9e3779b1u + 0x85ebca6bu;
          sig.Put(env, b, mixed);
        }
      }));
    }
    for (const size_t tid : tids) env.Join(tid);

    rfdet::Signature out;
    for (size_t i = 0; i < kSlots; ++i) out.Mix(sig.Get(env, i));
    return Result{out.Value()};
  }
};

}  // namespace

const Workload* RaceyWorkload() {
  static const Racey w;
  return &w;
}

}  // namespace apps
