#include "rfdet/common/panic.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace rfdet {

namespace {
std::atomic<PanicHandler> g_panic_handler{nullptr};
}  // namespace

PanicHandler SetPanicHandler(PanicHandler handler) noexcept {
  return g_panic_handler.exchange(handler, std::memory_order_acq_rel);
}

void PanicImpl(const char* file, int line, const char* cond,
               const char* msg) {
  const PanicInfo info{file, line, cond, msg};
  if (PanicHandler handler =
          g_panic_handler.load(std::memory_order_acquire)) {
    handler(info);  // may throw / not return
  }
  std::fprintf(stderr, "rfdet: fatal: %s:%d: check failed: %s%s%s\n", file,
               line, cond, msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace rfdet
