// Spin-wait backoff helper.
//
// Kendo-style arbitration and the DThreads fence both poll shared state.
// On machines with fewer cores than threads (including single-core CI
// boxes) a raw spin deadlocks the scheduler's fairness budget, so waiters
// must escalate: pause → yield → capped-exponential sleep (1µs doubling
// to 64µs). The exponential ramp keeps the first sleeps short — a waiter
// that is next in the turn order typically needs only a few microseconds —
// while the cap bounds the worst-case grant latency a sleeping loser adds.
// The same escalation serves as the pre-park spin budget of the adaptive
// turn-wait mode (kendo/kendo.cpp): parking starts where spinning stops
// paying.
#pragma once

#include <chrono>
#include <thread>

namespace rfdet {

class Backoff {
 public:
  void Pause() noexcept {
    if (spins_ < kSpinLimit) {
      ++spins_;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    } else if (spins_ < kSpinLimit + kYieldLimit) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
      if (sleep_us_ < kMaxSleepUs) sleep_us_ *= 2;
    }
  }

  void Reset() noexcept {
    spins_ = 0;
    sleep_us_ = kMinSleepUs;
  }

 private:
  static constexpr int kSpinLimit = 64;
  static constexpr int kYieldLimit = 256;
  static constexpr int kMinSleepUs = 1;
  static constexpr int kMaxSleepUs = 64;
  int spins_ = 0;
  int sleep_us_ = kMinSleepUs;
};

// Capped-exponential delay series at millisecond scale — the restart
// pacing of the process supervisor (supervise/supervisor.h). Same shape as
// Backoff's sleep tier, but the caller owns the sleep: NextMs() hands out
// the current delay and doubles it up to the cap, so a crash-looping child
// is retried quickly at first and then at a bounded steady rate.
class RestartBackoff {
 public:
  RestartBackoff(uint32_t min_ms, uint32_t max_ms) noexcept
      : min_ms_(min_ms == 0 ? 1 : min_ms),
        max_ms_(max_ms < min_ms_ ? min_ms_ : max_ms),
        next_ms_(min_ms_) {}

  [[nodiscard]] uint32_t NextMs() noexcept {
    const uint32_t cur = next_ms_;
    next_ms_ = next_ms_ >= max_ms_ / 2 ? max_ms_ : next_ms_ * 2;
    return cur;
  }

  void Reset() noexcept { next_ms_ = min_ms_; }

 private:
  uint32_t min_ms_;
  uint32_t max_ms_;
  uint32_t next_ms_;
};

}  // namespace rfdet
