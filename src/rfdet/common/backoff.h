// Spin-wait backoff helper.
//
// Kendo-style arbitration and the DThreads fence both poll shared state.
// On machines with fewer cores than threads (including single-core CI
// boxes) a raw spin deadlocks the scheduler's fairness budget, so waiters
// must escalate: pause → yield → short sleep.
#pragma once

#include <chrono>
#include <thread>

namespace rfdet {

class Backoff {
 public:
  void Pause() noexcept {
    if (spins_ < kSpinLimit) {
      ++spins_;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    } else if (spins_ < kSpinLimit + kYieldLimit) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  void Reset() noexcept { spins_ = 0; }

 private:
  static constexpr int kSpinLimit = 64;
  static constexpr int kYieldLimit = 256;
  int spins_ = 0;
};

}  // namespace rfdet
