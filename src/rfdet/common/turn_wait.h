// How a thread waits for its deterministic turn (and for a replayed
// grant): the *wait mechanism* knob of the turn-arbitration pipeline.
//
// The arbitration function itself — the (clock, tid) lexicographic
// minimum — is identical across all modes; only the way losers wait for
// it changes. That separation is a determinism contract: a kRecord run
// under one mode must verify (§11) and replay (§14) byte-identically
// under any other.
#pragma once

#include <cstdint>
#include <string>

namespace rfdet {

enum class TurnWaitMode : uint8_t {
  // Spin (pause → yield → capped-exponential sleep) until the turn
  // arrives. Lowest grant latency on idle cores, but burns a hardware
  // thread per waiter — on hosts with fewer cores than threads the
  // waiters' spinning *competes with the turn-holder* for cycles.
  kSpin,
  // Spin a bounded budget (turn_spin_budget iterations), then park on the
  // per-thread futex word until the successor handoff (or a liveness
  // timeout) wakes us. The default: near-spin latency when the turn is
  // about to arrive, near-zero CPU when it is not.
  kAdaptive,
  // Park almost immediately (a cache-warmth-sized spin only). Lowest CPU;
  // pays one wake latency per grant. The right mode for oversubscribed
  // hosts and for measuring the handoff path itself.
  kPark,
};

[[nodiscard]] constexpr const char* TurnWaitModeName(
    TurnWaitMode mode) noexcept {
  switch (mode) {
    case TurnWaitMode::kSpin: return "spin";
    case TurnWaitMode::kAdaptive: return "adaptive";
    case TurnWaitMode::kPark: return "park";
  }
  return "?";
}

// Parses "spin" / "adaptive" / "park". Returns false (and leaves *out
// untouched) on anything else.
[[nodiscard]] inline bool ParseTurnWaitMode(const std::string& name,
                                            TurnWaitMode* out) noexcept {
  if (name == "spin") {
    *out = TurnWaitMode::kSpin;
  } else if (name == "adaptive") {
    *out = TurnWaitMode::kAdaptive;
  } else if (name == "park") {
    *out = TurnWaitMode::kPark;
  } else {
    return false;
  }
  return true;
}

}  // namespace rfdet
