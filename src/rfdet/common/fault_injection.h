// Deterministic fault injection for the runtime's resource-failure paths.
//
// Every recoverable error the runtime can produce (arena exhaustion, spawn
// failure, allocator exhaustion, snapshot-pool exhaustion) is rare in
// practice, which makes the error paths the least-tested code in the
// system. A FaultInjector armed at one of the FaultSite hooks forces those
// paths on demand — and does so *deterministically*: a site is triggered
// by its hit index (every call to ShouldFail counts one hit), so as long
// as the site's hits are themselves deterministic (turn-ordered runtime
// operations, or a single-threaded test) the injected failures land on the
// identical operations in every run.
//
// Two arming modes:
//   * windowed  — fail hits [skip, skip+count): "fail the 3rd spawn".
//   * seeded    — within the window, fail each hit with probability `rate`
//     decided by a SplitMix64 stream keyed on (seed, hit index): a pure
//     function of the plan and the hit number, so concurrent sites still
//     make per-hit-deterministic decisions.
//
// Thread-safety: ShouldFail is lock-free and safe from any thread
// (including the pf-mode fault handler); Arm/Disarm must not race with
// ShouldFail — reconfigure only while the runtime is quiescent.
#pragma once

#include <atomic>
#include <cstdint>

namespace rfdet {

enum class FaultSite : uint8_t {
  kArenaCharge = 0,   // metadata-arena reservation (slice publication)
  kSnapshotAcquire,   // page-snapshot allocation in the snapshot pool
  kSpawn,             // deterministic thread creation
  kHeapAlloc,         // DetAllocator subheap allocation
  kStaticAlloc,       // static-segment bump allocation
  kFingerprintIo,     // fingerprint-file read (verify) / write (record)
  kRaceWindow,        // race-detector window-entry arena charge
  kReplayIo,          // replay-log read (replay) / write (record)
  kCheckpointIo,      // checkpoint-file write / restore read
  kRegionBacking,     // view memfd ftruncate / hole-punch (tmpfs exhaustion)
  kSupervisorIpc,     // supervisor pipe messages (heartbeat/ready/done)
  kSpanCoalesce,      // slice-span coalesced-delta build (arena pressure)
};
inline constexpr size_t kNumFaultSites = 12;

[[nodiscard]] constexpr const char* FaultSiteName(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::kArenaCharge:
      return "arena-charge";
    case FaultSite::kSnapshotAcquire:
      return "snapshot-acquire";
    case FaultSite::kSpawn:
      return "spawn";
    case FaultSite::kHeapAlloc:
      return "heap-alloc";
    case FaultSite::kStaticAlloc:
      return "static-alloc";
    case FaultSite::kFingerprintIo:
      return "fingerprint-io";
    case FaultSite::kRaceWindow:
      return "race-window";
    case FaultSite::kReplayIo:
      return "replay-io";
    case FaultSite::kCheckpointIo:
      return "checkpoint-io";
    case FaultSite::kRegionBacking:
      return "region-backing";
    case FaultSite::kSupervisorIpc:
      return "supervisor-ipc";
    case FaultSite::kSpanCoalesce:
      return "span-coalesce";
  }
  return "?";
}

class FaultInjector {
 public:
  struct Plan {
    uint64_t skip = 0;               // let this many hits pass first
    uint64_t count = UINT64_MAX;     // size of the failure window
    double rate = 1.0;               // P(fail) per hit inside the window
    uint64_t seed = 0;               // stream key for rate < 1.0
  };

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void Arm(FaultSite site, const Plan& plan) noexcept;
  void Disarm(FaultSite site) noexcept;
  void DisarmAll() noexcept;

  // Counts one hit at `site`; returns true iff the hit should fail.
  [[nodiscard]] bool ShouldFail(FaultSite site) noexcept;

  // Introspection for tests.
  [[nodiscard]] uint64_t Hits(FaultSite site) const noexcept;
  [[nodiscard]] uint64_t Injected(FaultSite site) const noexcept;
  void ResetCounters() noexcept;

 private:
  struct SiteState {
    std::atomic<bool> armed{false};
    Plan plan;  // written only while disarmed (see header comment)
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> injected{0};
  };

  SiteState sites_[kNumFaultSites];
};

}  // namespace rfdet
