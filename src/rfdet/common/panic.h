// Pluggable panic sink behind the RFDET_CHECK macros.
//
// The default disposition of a failed invariant is print-and-abort, which
// is right for production but opaque for a harness: a test that wants to
// assert *which* invariant fired, or a driver that wants to attach a state
// dump to the crash report, needs a hook that runs before the process
// dies. SetPanicHandler installs one. The handler may:
//
//   * return — PanicImpl then prints the standard message and aborts
//     (use this to emit extra diagnostics, e.g. the harness prints the
//     active workload/backend so a CI log ties the abort to a run);
//   * not return (throw, longjmp, _exit) — e.g. a test handler throws to
//     convert the panic into a catchable exception.
//
// The handler is a plain function pointer held in an atomic so installing
// and firing are race-free; handlers must therefore be stateless (tests
// use file-scope captures).
#pragma once

namespace rfdet {

struct PanicInfo {
  const char* file;
  int line;
  const char* condition;  // stringified failing expression
  const char* message;    // optional human message ("" if none)
};

using PanicHandler = void (*)(const PanicInfo&);

// Installs `handler` (nullptr restores the default); returns the previous
// handler so scopes can nest.
PanicHandler SetPanicHandler(PanicHandler handler) noexcept;

// The sink behind RFDET_CHECK / RFDET_PANIC. Runs the installed handler
// (if any), then prints the standard one-line report and aborts. Declared
// [[noreturn]]: it never returns normally, though a handler may exit via
// exception.
[[noreturn]] void PanicImpl(const char* file, int line, const char* cond,
                            const char* msg);

}  // namespace rfdet
