#include "rfdet/common/fault_injection.h"

#include "rfdet/common/rng.h"

namespace rfdet {

void FaultInjector::Arm(FaultSite site, const Plan& plan) noexcept {
  SiteState& s = sites_[static_cast<size_t>(site)];
  s.armed.store(false, std::memory_order_release);
  s.plan = plan;
  s.armed.store(true, std::memory_order_release);
}

void FaultInjector::Disarm(FaultSite site) noexcept {
  sites_[static_cast<size_t>(site)].armed.store(false,
                                                std::memory_order_release);
}

void FaultInjector::DisarmAll() noexcept {
  for (SiteState& s : sites_) s.armed.store(false, std::memory_order_release);
}

bool FaultInjector::ShouldFail(FaultSite site) noexcept {
  SiteState& s = sites_[static_cast<size_t>(site)];
  const uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed);
  if (!s.armed.load(std::memory_order_acquire)) return false;
  const Plan& plan = s.plan;
  if (hit < plan.skip || hit - plan.skip >= plan.count) return false;
  if (plan.rate < 1.0) {
    // Keyed on (seed, hit): a pure per-hit function, so the decision for
    // hit n is identical no matter which thread performs it.
    SplitMix64 stream(plan.seed ^ (hit * 0x9e3779b97f4a7c15ULL));
    const double draw =
        static_cast<double>(stream.Next() >> 11) * 0x1.0p-53;
    if (draw >= plan.rate) return false;
  }
  s.injected.fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint64_t FaultInjector::Hits(FaultSite site) const noexcept {
  return sites_[static_cast<size_t>(site)].hits.load(
      std::memory_order_relaxed);
}

uint64_t FaultInjector::Injected(FaultSite site) const noexcept {
  return sites_[static_cast<size_t>(site)].injected.load(
      std::memory_order_relaxed);
}

void FaultInjector::ResetCounters() noexcept {
  for (SiteState& s : sites_) {
    s.hits.store(0, std::memory_order_relaxed);
    s.injected.store(0, std::memory_order_relaxed);
  }
}

}  // namespace rfdet
