// Deterministic hashing for output signatures and hash-table workloads.
//
// Workloads reduce their results to a 64-bit signature so determinism tests
// can compare runs with a single integer equality. FNV-1a is sufficient and
// trivially portable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rfdet {

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr uint64_t Fnv1a(const void* data, size_t len,
                         uint64_t seed = kFnvOffset) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

constexpr uint64_t Fnv1a(std::string_view s,
                         uint64_t seed = kFnvOffset) noexcept {
  uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

// Incrementally-updatable signature accumulator. Order-sensitive.
class Signature {
 public:
  constexpr void Mix(uint64_t v) noexcept {
    h_ ^= v + 0x9e3779b97f4a7c15ULL + (h_ << 6) + (h_ >> 2);
  }
  void MixBytes(const void* data, size_t len) noexcept {
    Mix(Fnv1a(data, len));
  }
  constexpr void MixDouble(double d) noexcept {
    // Bit-pattern mix: doubles produced by the kernels are deterministic,
    // so their representations are too.
    uint64_t bits = __builtin_bit_cast(uint64_t, d);
    Mix(bits);
  }
  [[nodiscard]] constexpr uint64_t Value() const noexcept { return h_; }

 private:
  uint64_t h_ = kFnvOffset;
};

}  // namespace rfdet
