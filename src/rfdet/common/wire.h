// Little-endian wire helpers shared by the binary file formats (the
// fingerprint recording, the replay log, the checkpoint image). Encoding
// is explicitly byte-ordered so recordings are portable across hosts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace rfdet::wire {

inline void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

[[nodiscard]] inline bool GetU64(const std::string& in, size_t* pos,
                                 uint64_t* out) {
  if (*pos + 8 > in.size()) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[*pos + i]))
         << (8 * i);
  }
  *pos += 8;
  *out = v;
  return true;
}

inline void PutBytes(std::string& out, const void* data, size_t len) {
  out.append(static_cast<const char*>(data), len);
}

[[nodiscard]] inline bool GetBytes(const std::string& in, size_t* pos,
                                   void* out, size_t len) {
  if (*pos + len > in.size()) return false;
  std::memcpy(out, in.data() + *pos, len);
  *pos += len;
  return true;
}

// Length-prefixed string.
inline void PutString(std::string& out, const std::string& s) {
  PutU64(out, s.size());
  out.append(s);
}

[[nodiscard]] inline bool GetString(const std::string& in, size_t* pos,
                                    std::string* out) {
  uint64_t len = 0;
  if (!GetU64(in, pos, &len)) return false;
  if (len > in.size() - *pos) return false;
  out->assign(in, *pos, static_cast<size_t>(len));
  *pos += static_cast<size_t>(len);
  return true;
}

}  // namespace rfdet::wire
