// Structured, recoverable error codes for the rfdet runtime.
//
// Historically every failure path in the runtime ended in RFDET_CHECK →
// abort(). For a deterministic runtime that is doubly harsh: resource
// exhaustion (thread slots, subheaps, the metadata arena) and application
// deadlock are *reproducible* conditions, so they are exactly the failures
// a caller could handle — retry with fewer threads, free memory, back out
// of a lock cycle. RfdetErrc is the status channel for those paths; the
// values map onto the errno codes a real pthreads implementation would
// return (EAGAIN from pthread_create, EDEADLK from an error-checking
// mutex, ENOMEM from malloc), which det_pthread surfaces verbatim.
#pragma once

#include <cerrno>

namespace rfdet {

enum class RfdetErrc {
  kOk = 0,
  kAgain,     // resource temporarily exhausted (thread slots) — EAGAIN
  kNoMemory,  // allocator / arena exhaustion — ENOMEM
  kDeadlock,  // deterministic deadlock detected — EDEADLK
  kInvalid,   // malformed request / configuration — EINVAL
  kIo,        // fingerprint-file read/write failure — EIO
};

[[nodiscard]] constexpr const char* ErrcName(RfdetErrc e) noexcept {
  switch (e) {
    case RfdetErrc::kOk:
      return "ok";
    case RfdetErrc::kAgain:
      return "again";
    case RfdetErrc::kNoMemory:
      return "no-memory";
    case RfdetErrc::kDeadlock:
      return "deadlock";
    case RfdetErrc::kInvalid:
      return "invalid";
    case RfdetErrc::kIo:
      return "io";
  }
  return "?";
}

// The errno value a pthreads-shaped API returns for this condition.
[[nodiscard]] constexpr int ErrcToErrno(RfdetErrc e) noexcept {
  switch (e) {
    case RfdetErrc::kOk:
      return 0;
    case RfdetErrc::kAgain:
      return EAGAIN;
    case RfdetErrc::kNoMemory:
      return ENOMEM;
    case RfdetErrc::kDeadlock:
      return EDEADLK;
    case RfdetErrc::kInvalid:
      return EINVAL;
    case RfdetErrc::kIo:
      return EIO;
  }
  return EINVAL;
}

}  // namespace rfdet
