// Deterministic pseudo-random number generation.
//
// Every source of "randomness" in the workloads and tests must be a pure
// function of its seed: determinism experiments rerun workloads and require
// bit-identical input streams. SplitMix64 is used for seeding and
// xoshiro256** for bulk generation; both are tiny, fast, and reproducible
// across platforms (no libc rand, no std::random_device).
#pragma once

#include <cstdint>

namespace rfdet {

// SplitMix64: good avalanche, used to expand a single seed into streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) noexcept : state_(seed) {}

  constexpr uint64_t Next() noexcept {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256**: the workload generator's workhorse.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.Next();
  }

  constexpr uint64_t Next() noexcept {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Uses the widening-multiply trick; bias is
  // negligible for the bounds used here and, crucially, deterministic.
  constexpr uint64_t Below(uint64_t bound) noexcept {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  constexpr double NextDouble() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace rfdet
