// Lightweight invariant-checking macros used across the runtime.
//
// RFDET_CHECK is always on (the runtime's correctness depends on these
// invariants even in release builds); RFDET_DCHECK compiles out in NDEBUG
// builds and is used on hot paths. The sink behind both is the pluggable
// panic handler in common/panic.h, so a harness can capture diagnostics
// (or a test can convert the abort into an exception) before the process
// dies.
#pragma once

#include "rfdet/common/panic.h"

#define RFDET_CHECK(cond)                                    \
  do {                                                       \
    if (!(cond)) [[unlikely]]                                \
      ::rfdet::PanicImpl(__FILE__, __LINE__, #cond, "");     \
  } while (0)

#define RFDET_CHECK_MSG(cond, msg)                           \
  do {                                                       \
    if (!(cond)) [[unlikely]]                                \
      ::rfdet::PanicImpl(__FILE__, __LINE__, #cond, (msg));  \
  } while (0)

#ifdef NDEBUG
#define RFDET_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define RFDET_DCHECK(cond) RFDET_CHECK(cond)
#endif

#define RFDET_PANIC(msg) ::rfdet::PanicImpl(__FILE__, __LINE__, "panic", (msg))
