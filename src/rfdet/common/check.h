// Lightweight invariant-checking macros used across the runtime.
//
// RFDET_CHECK is always on (the runtime's correctness depends on these
// invariants even in release builds); RFDET_DCHECK compiles out in NDEBUG
// builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rfdet {

[[noreturn]] inline void PanicImpl(const char* file, int line,
                                   const char* cond, const char* msg) {
  std::fprintf(stderr, "rfdet: fatal: %s:%d: check failed: %s%s%s\n", file,
               line, cond, msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace rfdet

#define RFDET_CHECK(cond)                                    \
  do {                                                       \
    if (!(cond)) [[unlikely]]                                \
      ::rfdet::PanicImpl(__FILE__, __LINE__, #cond, "");     \
  } while (0)

#define RFDET_CHECK_MSG(cond, msg)                           \
  do {                                                       \
    if (!(cond)) [[unlikely]]                                \
      ::rfdet::PanicImpl(__FILE__, __LINE__, #cond, (msg));  \
  } while (0)

#ifdef NDEBUG
#define RFDET_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define RFDET_DCHECK(cond) RFDET_CHECK(cond)
#endif

#define RFDET_PANIC(msg) ::rfdet::PanicImpl(__FILE__, __LINE__, "panic", (msg))
