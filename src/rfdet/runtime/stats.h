// Runtime profiling counters — the raw material for the paper's Table 1.
#pragma once

#include <atomic>
#include <cstdint>

#include "rfdet/mem/thread_view.h"

namespace rfdet {

// Events emitted by the deterministic executor layer (exec/executor.h)
// through Env::NoteExec. Runtimes that keep executor statistics map these
// onto the exec_* counters below; others ignore them.
enum class ExecEvent : uint8_t {
  kRegion,        // one parallel region (parallel_for / for_each / reduce)
  kChunk,         // one static range chunk executed
  kItem,          // one worklist item processed
  kDonation,      // one deterministic work-donation transfer
  kDonatedItems,  // items moved by a donation (arg = count)
  kReduceDepth,   // combining-tree depth of a reduce (arg = depth; max kept)
};

struct RuntimeStats {
  std::atomic<uint64_t> locks{0};
  std::atomic<uint64_t> unlocks{0};
  std::atomic<uint64_t> cond_waits{0};
  std::atomic<uint64_t> cond_signals{0};  // signal + broadcast
  std::atomic<uint64_t> barriers{0};
  std::atomic<uint64_t> forks{0};
  std::atomic<uint64_t> joins{0};

  std::atomic<uint64_t> loads{0};   // instrumented load ops (word-counted)
  std::atomic<uint64_t> stores{0};  // instrumented store ops (word-counted)

  std::atomic<uint64_t> slices_created{0};
  std::atomic<uint64_t> slices_merged{0};  // acquires continuing a slice
  std::atomic<uint64_t> slices_propagated{0};
  // Apply plans built (≤ slices_propagated: receivers after the first
  // reuse the slice's cached plan).
  std::atomic<uint64_t> apply_plans_built{0};
  std::atomic<uint64_t> bytes_propagated{0};
  std::atomic<uint64_t> prelock_slices{0};  // propagated during reservation
  std::atomic<uint64_t> prelock_bytes{0};
  std::atomic<uint64_t> slices_pruned{0};
  // Cross-slice propagation coalescing (DESIGN.md §18): spans consumed on
  // the acquire path, slices they covered, and logical-minus-merged bytes
  // the compaction avoided copying.
  std::atomic<uint64_t> coalesced_spans{0};
  std::atomic<uint64_t> coalesced_slices{0};
  std::atomic<uint64_t> coalesce_bytes_saved{0};
  // Off-turn close: slices whose diff/plan/pre-hash ran before the turn.
  std::atomic<uint64_t> offturn_prepared_slices{0};
  std::atomic<uint64_t> offturn_prepared_bytes{0};
  // Wall time spent inside CloseSlice, i.e. under the caller's Kendo turn.
  // Closes serialize on the turn, so aggregate close throughput is capped
  // at slices_created / this — the quantity off-turn close improves.
  std::atomic<uint64_t> close_turn_ns{0};

  // Failure containment & diagnosis.
  std::atomic<uint64_t> deadlocks_detected{0};
  std::atomic<uint64_t> watchdog_stalls{0};
  std::atomic<uint64_t> arena_gc_retries{0};    // reserve failed → forced GC
  std::atomic<uint64_t> metadata_overflows{0};  // still over after retry
  std::atomic<uint64_t> alloc_failures{0};      // TryMalloc/TryAllocStatic
  std::atomic<uint64_t> spawn_failures{0};      // TrySpawn

  // Determinism self-verification.
  std::atomic<uint64_t> trace_dropped{0};       // ring-evicted trace events
  std::atomic<uint64_t> paranoia_failures{0};   // dlrc_paranoia violations

  // Record/replay + checkpoint/restore (see replay/).
  std::atomic<uint64_t> checkpoints_written{0};
  std::atomic<uint64_t> checkpoint_skips{0};   // gate not met (kAgain)
  std::atomic<uint64_t> checkpoint_bytes{0};   // Σ committed image sizes
  std::atomic<uint64_t> checkpoint_ns{0};      // wall time building+writing
  std::atomic<uint64_t> checkpoint_io_errors{0};
  std::atomic<uint64_t> restores{0};           // successful constructor restores

  // Deterministic executor layer (exec/executor.h; fed via Env::NoteExec).
  std::atomic<uint64_t> exec_regions{0};
  std::atomic<uint64_t> exec_chunks{0};
  std::atomic<uint64_t> exec_items{0};
  std::atomic<uint64_t> exec_donations{0};
  std::atomic<uint64_t> exec_donated_items{0};
  std::atomic<uint64_t> exec_reduce_depth{0};  // max combining-tree depth
};

// Plain-value snapshot (also folds in per-view monitor stats).
struct StatsSnapshot {
  uint64_t locks = 0, unlocks = 0, cond_waits = 0, cond_signals = 0;
  uint64_t barriers = 0, forks = 0, joins = 0;
  uint64_t loads = 0, stores = 0;
  uint64_t slices_created = 0, slices_merged = 0;
  uint64_t slices_propagated = 0, apply_plans_built = 0;
  uint64_t bytes_propagated = 0;
  uint64_t prelock_slices = 0, prelock_bytes = 0, slices_pruned = 0;
  uint64_t coalesced_spans = 0, coalesced_slices = 0;
  uint64_t coalesce_bytes_saved = 0;
  uint64_t offturn_prepared_slices = 0, offturn_prepared_bytes = 0;
  uint64_t close_turn_ns = 0;
  uint64_t gc_count = 0;
  // Failure containment & diagnosis.
  uint64_t deadlocks_detected = 0, watchdog_stalls = 0;
  uint64_t arena_gc_retries = 0, metadata_overflows = 0;
  uint64_t alloc_failures = 0, spawn_failures = 0;
  // Determinism self-verification.
  uint64_t trace_dropped = 0, paranoia_failures = 0;
  uint64_t fingerprint_events = 0, fingerprint_epochs = 0;
  uint64_t fingerprint_divergences = 0, fingerprint_io_errors = 0;
  // Data-race detection (race/race_detector.h; pulled from the detector).
  uint64_t races_ww = 0, races_rw_pages = 0;
  uint64_t race_checks = 0, race_prefilter_hits = 0;
  uint64_t race_window_evictions = 0;
  // Turn-arbitration waiting (pulled from the KendoEngine; DESIGN.md §15).
  uint64_t turn_spins = 0, turn_parks = 0, turn_wakeups = 0;
  uint64_t turn_handoffs = 0, park_ns = 0;
  // Record/replay (pulled from the ReplayLog) + checkpoint/restore.
  uint64_t replay_grants = 0, replay_divergences = 0, replay_io_errors = 0;
  uint64_t checkpoints_written = 0, checkpoint_skips = 0;
  uint64_t checkpoint_bytes = 0, checkpoint_ns = 0;
  uint64_t checkpoint_io_errors = 0, restores = 0;
  // Deterministic executor layer (exec/executor.h).
  uint64_t exec_regions = 0, exec_chunks = 0, exec_items = 0;
  uint64_t exec_donations = 0, exec_donated_items = 0;
  uint64_t exec_reduce_depth = 0;  // max combining-tree depth observed
  // Process-level supervision (filled by supervise::Supervisor::Run — the
  // supervisor lives outside the runtime, in the parent process, so these
  // stay zero in a runtime's own Snapshot()).
  uint64_t sup_restarts = 0, sup_crashes = 0, sup_quarantines = 0;
  uint64_t sup_resume_ns = 0;  // Σ fork→ready recovery wall time
  // Aggregated ViewStats.
  uint64_t stores_with_copy = 0, page_faults = 0, mprotect_calls = 0;
  uint64_t pages_diffed = 0;
  uint64_t lazy_runs_parked = 0, lazy_runs_coalesced = 0;
  uint64_t lazy_pages_applied = 0, planned_applies = 0;
  // Memory accounting.
  size_t resident_bytes = 0;       // Σ per-thread view resident pages
  size_t metadata_peak_bytes = 0;  // arena high-water mark

  [[nodiscard]] uint64_t MemOps() const noexcept { return loads + stores; }
  [[nodiscard]] uint64_t SyncOps() const noexcept {
    return locks + unlocks + cond_waits + cond_signals + barriers + forks +
           joins;
  }
};

}  // namespace rfdet
