#include "rfdet/runtime/watchdog.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "rfdet/common/check.h"

namespace rfdet {

Watchdog::Watchdog(const Config& config,
                   std::function<uint64_t()> fingerprint,
                   std::function<std::string()> dump,
                   std::function<void(const std::string&)> on_stall)
    : config_(config),
      fingerprint_(std::move(fingerprint)),
      dump_(std::move(dump)),
      on_stall_(std::move(on_stall)) {
  if (config_.stall_ms > 0) {
    monitor_ = std::thread([this] { Loop(); });
  }
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Stop() {
  {
    std::scoped_lock lock(mu_);
    if (stopping_) {
      // Already stopped (or stopping); just make sure the join happened.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

void Watchdog::Loop() {
  using Clock = std::chrono::steady_clock;
  const auto window = std::chrono::milliseconds(config_.stall_ms);
  // Poll a few times per window so detection latency stays ≈ one window.
  const auto poll =
      std::chrono::milliseconds(std::max<uint32_t>(config_.stall_ms / 4, 1));

  uint64_t last_fp = fingerprint_();
  auto last_change = Clock::now();
  bool fired_this_episode = false;

  std::unique_lock lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, poll, [this] { return stopping_; });
    if (stopping_) break;

    const uint64_t fp = fingerprint_();
    if (fp != last_fp) {
      last_fp = fp;
      last_change = Clock::now();
      fired_this_episode = false;  // progress resumed: re-arm
      continue;
    }
    if (fired_this_episode || Clock::now() - last_change < window) continue;

    // Stall: no turn transition for a full window. Dump and (optionally)
    // die. The dump runs without mu_ so a slow formatter cannot delay a
    // concurrent Stop() forever.
    fired_this_episode = true;
    stalls_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    const std::string report = dump_();
    std::fprintf(stderr,
                 "rfdet: WATCHDOG: no turn transition for %u ms — "
                 "dumping state\n%s",
                 config_.stall_ms, report.c_str());
    std::fflush(stderr);
    if (on_stall_) on_stall_(report);
    if (config_.fatal) {
      RFDET_PANIC("turn-stall watchdog fired (watchdog_fatal)");
    }
    lock.lock();
  }
}

}  // namespace rfdet
