#include "rfdet/runtime/options.h"

#include <string>

#include "rfdet/mem/addr.h"

namespace rfdet {

std::string ValidateOptions(const RfdetOptions& options) {
  const auto mb = [](size_t bytes) {
    return std::to_string(bytes >> 20) + " MiB";
  };
  if (options.max_threads == 0) {
    return "max_threads must be > 0";
  }
  if (options.region_bytes == 0 || options.region_bytes % kPageSize != 0) {
    return "region_bytes must be a non-zero multiple of the page size (" +
           std::to_string(kPageSize) + ")";
  }
  // The allocator carves region_bytes into the static segment, two pages
  // of alignment slack, and max_threads equal subheaps of ≥ one page each.
  const size_t overhead = options.static_bytes + 2 * kPageSize;
  if (options.region_bytes < overhead ||
      options.region_bytes - overhead < options.max_threads * kPageSize) {
    return "region_bytes (" + mb(options.region_bytes) +
           ") too small: need static_bytes (" + mb(options.static_bytes) +
           ") + 2 alignment pages + one page per thread (max_threads=" +
           std::to_string(options.max_threads) + ")";
  }
  if (options.metadata_bytes == 0) {
    return "metadata_bytes must be > 0";
  }
  if (!(options.gc_threshold > 0.0) || options.gc_threshold > 1.0) {
    return "gc_threshold must be in (0, 1]";
  }
  if (options.ticks_per_word == 0) {
    return "ticks_per_word must be > 0 (a zero-cost access stream would "
           "starve the Kendo turn)";
  }
  if (options.record_trace && options.trace_limit == 0) {
    return "trace_limit must be > 0 when record_trace is set";
  }
  if (options.fingerprint == FingerprintMode::kVerify &&
      options.fingerprint_path.empty()) {
    return "fingerprint kVerify needs a fingerprint_path to compare against";
  }
  if (options.fingerprint != FingerprintMode::kOff &&
      options.fingerprint_epoch_ops == 0) {
    return "fingerprint_epoch_ops must be > 0";
  }
  if (options.race_policy != RacePolicy::kOff) {
    if (!options.isolation) {
      return "race detection needs isolation (slices are the detection "
             "substrate; the kendo backend has none)";
    }
    if (options.race_window_bytes == 0) {
      return "race_window_bytes must be > 0 when race detection is on";
    }
    if (options.race_max_reports == 0) {
      return "race_max_reports must be > 0 when race detection is on";
    }
  }
  if (options.race_track_reads && options.race_policy == RacePolicy::kOff) {
    return "race_track_reads without a race policy tracks reads nobody "
           "consumes; set race_policy or clear race_track_reads";
  }
  if (options.off_turn_close && !options.isolation) {
    return "off_turn_close needs isolation (there is no slice close to "
           "move off the turn under the kendo backend)";
  }
  if (options.replay_mode != ReplayMode::kOff &&
      options.replay_log_path.empty()) {
    return "replay_mode needs a replay_log_path (kRecord writes it, "
           "kReplay reads it)";
  }
  if (options.replay_mode == ReplayMode::kOff &&
      !options.replay_log_path.empty()) {
    return "replay_log_path without replay_mode names a log nobody writes "
           "or reads; set replay_mode or clear replay_log_path";
  }
  if (options.checkpoint_interval_turns > 0 &&
      options.checkpoint_path.empty()) {
    return "checkpoint_interval_turns needs a checkpoint_path to write to";
  }
  if ((!options.checkpoint_path.empty() ||
       !options.restore_checkpoint_path.empty()) &&
      !options.isolation) {
    return "checkpoint/restore needs isolation (the image is the main "
           "view's region; the kendo backend has no view to capture)";
  }
  if (options.checkpoint_retain == 0) {
    return "checkpoint_retain must be >= 1 (the ring needs at least one "
           "image slot)";
  }
  if (options.checkpoint_retain > 1024) {
    return "checkpoint_retain must be <= 1024 (restore scans every slot)";
  }
  if (options.kernels != "auto" && options.kernels != "scalar" &&
      options.kernels != "sse2" && options.kernels != "avx2" &&
      options.kernels != "neon") {
    return "kernels must be one of auto, scalar, sse2, avx2, neon (got \"" +
           options.kernels + "\")";
  }
  if (options.turn_wait != "spin" && options.turn_wait != "adaptive" &&
      options.turn_wait != "park") {
    return "turn_wait must be one of spin, adaptive, park (got \"" +
           options.turn_wait + "\")";
  }
  if (options.exec_grain > (1ull << 31)) {
    return "exec_grain must be <= 2^31 (chunk indices are dense; a larger "
           "grain is certainly a units mistake)";
  }
  if (options.exec_pool_threads > options.max_threads) {
    return "exec_pool_threads (" + std::to_string(options.exec_pool_threads) +
           ") must be <= max_threads (" +
           std::to_string(options.max_threads) +
           "): pool workers are spawned threads and thread ids are never "
           "reused";
  }
  if (options.propagate_coalesce && options.propagate_coalesce_min < 2) {
    return "propagate_coalesce_min must be >= 2 when propagate_coalesce is "
           "set (a span of one slice coalesces nothing)";
  }
  if (options.propagate_coalesce &&
      options.propagate_coalesce_min > (1u << 16)) {
    return "propagate_coalesce_min must be <= 65536 (a larger batch floor "
           "can never be reached; certainly a units mistake)";
  }
  if (options.turn_spin_budget == 0) {
    return "turn_spin_budget must be > 0 (a zero budget would park before "
           "ever polling the turn)";
  }
  return "";
}

}  // namespace rfdet
