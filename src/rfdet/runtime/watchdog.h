// Turn-stall watchdog — the diagnosis path for hangs the deterministic
// deadlock detector cannot prove.
//
// A Kendo-style runtime has a uniquely nasty failure mode: if any thread's
// clock stops advancing (application deadlock through ad hoc sync, a lost
// wakeup, a runtime bug), the turn stops migrating and *every* thread
// spins in WaitForTurn — the process hangs silently at 100% CPU. The
// wait-for-graph detector catches provable cycles; everything else (a
// thread stuck in host code, a barrier short one party, a bug) needs a
// wall-clock observer.
//
// The watchdog is that observer. It runs on its own host thread entirely
// OUTSIDE the deterministic schedule: it only *reads* a progress
// fingerprint (a pure function of the Kendo clocks), so it can never
// perturb determinism. When the fingerprint stops changing for the
// configured window it emits a state report (supplied by the runtime) to
// stderr and optionally panics. One report per stall episode: the
// watchdog re-arms only after progress resumes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace rfdet {

class Watchdog {
 public:
  struct Config {
    uint32_t stall_ms = 0;  // wall-clock window; 0 = never start
    bool fatal = false;     // panic after the dump
  };

  // `fingerprint` must be callable from the watchdog thread at any time
  // and change whenever the runtime makes progress. `dump` builds the
  // state report (diagnostics-grade: racy reads tolerated). `on_stall`
  // (optional) observes the report, e.g. a test hook or log shipper.
  Watchdog(const Config& config, std::function<uint64_t()> fingerprint,
           std::function<std::string()> dump,
           std::function<void(const std::string&)> on_stall);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Signals the monitor thread and joins it. Idempotent; called by the
  // destructor, and by the runtime before it begins teardown (teardown
  // legitimately stops the clocks).
  void Stop();

  [[nodiscard]] uint64_t StallsObserved() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  Config config_;
  std::function<uint64_t()> fingerprint_;
  std::function<std::string()> dump_;
  std::function<void(const std::string&)> on_stall_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<uint64_t> stalls_{0};
  std::thread monitor_;  // last: starts after every member is ready
};

}  // namespace rfdet
