// Configuration for the RFDet runtime.
#pragma once

#include <cstddef>
#include <cstdint>

#include "rfdet/mem/metadata_arena.h"
#include "rfdet/mem/thread_view.h"

namespace rfdet {

struct RfdetOptions {
  // Monitor backend: RFDet-ci (compile-time-instrumentation analogue) or
  // RFDet-pf (mprotect/page-fault), paper §4.2.
  MonitorMode monitor = MonitorMode::kInstrumented;

  // Strong-determinism machinery. With isolation disabled the runtime
  // degrades to *weak* determinism (the Kendo backend): deterministic
  // synchronization over one shared image, no slices, no propagation.
  bool isolation = true;

  // §4.5 optimizations, individually toggleable (Figure 9 benches these).
  bool slice_merging = true;
  bool prelock = true;
  bool lazy_writes = true;

  // Shared-region geometry.
  size_t region_bytes = 64u << 20;
  size_t static_bytes = 4u << 20;
  size_t max_threads = 64;

  // Metadata space (paper §5.4: 256 MB, GC at 90 % usage).
  size_t metadata_bytes = MetadataArena::kDefaultCapacity;
  double gc_threshold = MetadataArena::kDefaultGcThreshold;

  // Kendo clock ticks charged per 8 bytes of instrumented access (the
  // analogue of the paper's per-basic-block instrTick(k)).
  uint64_t ticks_per_word = 1;

  // Record the deterministic synchronization schedule (every turn-ordered
  // transition) for debugging/inspection. Because DMT needs only the
  // input to reproduce an execution, the trace is purely diagnostic —
  // unlike record&replay systems, it never needs to be replayed (§2).
  bool record_trace = false;
};

}  // namespace rfdet
