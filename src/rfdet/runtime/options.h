// Configuration for the RFDet runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "rfdet/common/error.h"
#include "rfdet/mem/metadata_arena.h"
#include "rfdet/mem/thread_view.h"
#include "rfdet/race/race_detector.h"
#include "rfdet/replay/replay_log.h"
#include "rfdet/verify/fingerprint.h"

namespace rfdet {

class FaultInjector;

// Test-only determinism mutation: injects exactly one perturbation into
// the execution so the fingerprint verifier can be shown to pinpoint it
// (see tests/test_fingerprint.cpp). Never enable outside tests.
struct DetMutation {
  enum class Kind : uint8_t {
    kNone = 0,
    // XOR the first payload byte of the index-th slice applied to `tid`'s
    // view (a silently corrupted propagation).
    kCorruptPropagatedByte,
    // Drop the index-th slice apply on `tid` entirely (lost propagation;
    // the vector-clock join still happens, as a real bug would).
    kSkipSliceApply,
    // Add one extra Kendo tick at `tid`'s index-th turn-ordered sync op
    // (schedule skew).
    kSkewKendoTick,
  };
  Kind kind = Kind::kNone;
  size_t tid = 0;      // thread whose event stream is perturbed
  uint64_t index = 0;  // which matching event (0-based) on that thread
};

// What the runtime does when it proves the application deadlocked.
enum class DeadlockPolicy : uint8_t {
  // Print the deterministic deadlock report to stderr and panic — a
  // reproducible crash with an explanation beats a silent hang.
  kPanic,
  // The blocking operation backs out and returns RfdetErrc::kDeadlock
  // (det_pthread surfaces EDEADLK, like a POSIX error-checking mutex).
  // The report is retained and readable via LastDeadlockReport().
  kReturnError,
};

struct RfdetOptions {
  // Monitor backend: RFDet-ci (compile-time-instrumentation analogue) or
  // RFDet-pf (mprotect/page-fault), paper §4.2.
  MonitorMode monitor = MonitorMode::kInstrumented;

  // Strong-determinism machinery. With isolation disabled the runtime
  // degrades to *weak* determinism (the Kendo backend): deterministic
  // synchronization over one shared image, no slices, no propagation.
  bool isolation = true;

  // §4.5 optimizations, individually toggleable (Figure 9 benches these).
  bool slice_merging = true;
  bool prelock = true;
  bool lazy_writes = true;

  // Cross-slice propagation coalescing (DESIGN.md §18): when an acquire
  // finds a batch-adjacent stretch of at least propagate_coalesce_min
  // consecutive slices from one origin, it applies one shared compacted
  // delta (SliceSpan) instead of the per-slice ApplyPlans. Physical-copy
  // optimization only: fingerprints, race detection, and replay always
  // consume the logical per-slice stream, so runs with coalescing on and
  // off are bit-identical. The RFDET_COALESCE environment variable, when
  // set, wins over both options ("0"/"off", "1"/"on", or an integer ≥ 2
  // to enable with that batch floor).
  bool propagate_coalesce = true;
  size_t propagate_coalesce_min = 4;

  // Off-turn slice close: run the thread-private half of CloseSlice —
  // snapshot diffing into a ModList, ApplyPlan construction, pre-hashing
  // the mod bytes for the fingerprint — *before* taking the Kendo turn, so
  // N threads closing write-heavy slices diff in parallel instead of
  // serializing. Only the order-sensitive publish (vclock stamp, slice
  // insert, fingerprint fold, race scan) stays under the turn. Requires
  // isolation. Default off: identical behavior to the turn-serial close.
  bool off_turn_close = false;

  // Byte-kernel tier for diffing/hashing/apply copies: "auto" (best the
  // CPU supports), or force "scalar", "sse2", "avx2", "neon". All tiers
  // are byte-identical (same ModLists, same fingerprints), so this is a
  // perf/debug knob, not a semantic one. The RFDET_KERNELS environment
  // variable, when set, wins over this option.
  std::string kernels = "auto";

  // How losing threads wait for their Kendo turn (common/turn_wait.h):
  // "spin" burns a core per waiter, "park" sleeps on a per-thread futex
  // until the successor handoff wakes it, "adaptive" (default) spins
  // turn_spin_budget wait-loop iterations before parking. The wait
  // mechanism never feeds the arbitration function, so fingerprints and
  // replay logs are byte-identical across modes. The RFDET_TURN_WAIT
  // environment variable, when set, wins over this option.
  std::string turn_wait = "adaptive";
  // Pre-park spin budget of the adaptive mode, in wait-loop iterations.
  size_t turn_spin_budget = 512;

  // Shared-region geometry.
  size_t region_bytes = 64u << 20;
  size_t static_bytes = 4u << 20;
  size_t max_threads = 64;

  // ---- deterministic executor defaults (see exec/executor.h) -------------
  // Surfaced to the executor through Env::ExecDefaults(); explicit
  // ExecOptions at the executor call site win over these.

  // Default range-chunk grain. 0 = auto (range / (8 * pool threads)). The
  // RFDET_EXEC_GRAIN environment variable, when set, wins over this option
  // (same precedence as RFDET_KERNELS / RFDET_TURN_WAIT).
  size_t exec_grain = 0;
  // Deterministic work-donation between per-thread worklists. Off, every
  // worklist item drains on the worker its seed (or its pusher) mapped to.
  bool exec_donation = true;
  // Default executor pool size when the call site leaves threads unset.
  // 0 = executor default (1 worker). Pool workers are spawned threads, so
  // this must fit under max_threads alongside the application's own.
  size_t exec_pool_threads = 0;

  // Metadata space (paper §5.4: 256 MB, GC at 90 % usage).
  size_t metadata_bytes = MetadataArena::kDefaultCapacity;
  double gc_threshold = MetadataArena::kDefaultGcThreshold;

  // Kendo clock ticks charged per 8 bytes of instrumented access (the
  // analogue of the paper's per-basic-block instrTick(k)).
  uint64_t ticks_per_word = 1;

  // Record the deterministic synchronization schedule (every turn-ordered
  // transition) for debugging/inspection. Because DMT needs only the
  // input to reproduce an execution, the trace is purely diagnostic —
  // unlike record&replay systems, it never needs to be replayed (§2).
  bool record_trace = false;
  // Trace storage is a fixed ring of this many events, charged to the
  // metadata arena; older events are dropped (stats.trace_dropped) so a
  // long-running traced workload cannot grow without bound.
  size_t trace_limit = 64u << 10;

  // ---- determinism self-verification (see verify/fingerprint.h) ----------

  // kRecord digests the execution and serializes the epoch chain to
  // fingerprint_path at teardown; kVerify stream-compares against that
  // file and applies divergence_policy at the first diverging epoch.
  FingerprintMode fingerprint = FingerprintMode::kOff;
  std::string fingerprint_path;
  DivergencePolicy divergence_policy = DivergencePolicy::kPanic;
  // Events per fingerprint epoch: 1 pinpoints the exact event (and makes
  // the first divergent stream deterministic); larger values amortize
  // epoch bookkeeping at within-epoch granularity.
  size_t fingerprint_epoch_ops = 64;
  // Diagnostic tap: called once with the first divergence report before
  // the policy is applied.
  std::function<void(const std::string&)> on_divergence;

  // Cheap online DLRC invariant checks (propagation-filter recheck,
  // vector-clock monotonicity across acquire, ModList shape consistency
  // at slice close). Failures route through the divergence sink.
  bool dlrc_paranoia = false;

  // Test-only single-event perturbation (see DetMutation above).
  DetMutation test_mutation;

  // ---- data-race detection (see race/race_detector.h) --------------------

  // Online happens-before race detection over closed slices. kReport
  // retains deterministic byte-identical reports (surfaced in
  // DumpStateReport and at runtime teardown); kPanic crashes on the
  // first race. Requires isolation (slices are the detection substrate).
  RacePolicy race_policy = RacePolicy::kOff;
  // Budget for the detector's live-slice window. Retaining a slice in
  // the window keeps it (and its arena charge) alive past GC, so this
  // bounds the detector's extra footprint; oldest entries are evicted
  // deterministically when the budget is exceeded.
  size_t race_window_bytes = 8u << 20;
  // Deduplicated race reports retained (further races are still counted,
  // digested, and deduplicated — just not stored).
  size_t race_max_reports = 64;
  // Opt-in page-granularity read-set tracking for write-read detection:
  // pf mode keeps pages PROT_NONE between slices and records the page on
  // the first read fault; ci mode records in the instrumented Load path.
  // Write-read reports are page-granular and may be false positives.
  bool race_track_reads = false;
  // Diagnostic tap: called (under the detecting thread's turn) with each
  // new deduplicated race before the policy is applied.
  std::function<void(const RaceReport&)> on_race;

  // ---- record / replay / checkpoint (see replay/replay_log.h) ------------

  // kRecord appends every turn grant, race report, and nondeterministic
  // Try* outcome to replay_log_path; kReplay parses that file and drives
  // turn arbitration from it, falling back to live Kendo arbitration on
  // the first divergence. Requires replay_log_path.
  ReplayMode replay_mode = ReplayMode::kOff;
  std::string replay_log_path;

  // Checkpoint/restore (requires isolation — the image is the main view's
  // region plus deterministic runtime state). checkpoint_path is where
  // CheckpointNow() (and the automatic interval below) writes the image;
  // the write is tmp+rename, so the path always names the latest complete
  // checkpoint. checkpoint_interval_turns > 0 additionally attempts a
  // zero-perturbation checkpoint every that-many turn ends (skipped — and
  // retried at the next turn — unless the runtime is quiescent: all
  // spawned threads joined, main's slice clean).
  std::string checkpoint_path;
  uint64_t checkpoint_interval_turns = 0;  // 0 = explicit CheckpointNow only
  // Image ring depth: keep the last `checkpoint_retain` committed images
  // instead of one. retain == 1 writes checkpoint_path itself; retain > 1
  // rotates over checkpoint_path.0 … checkpoint_path.(K-1), and restore
  // scans the ring for the newest image that passes validation — so a
  // crash that lands mid-rename (or corrupts the newest image) falls back
  // to the previous one instead of losing all progress.
  size_t checkpoint_retain = 1;
  // When set, the constructor restores the runtime from this checkpoint
  // image (and, combined with replay_mode, resumes the log mid-stream:
  // kRecord truncates the log to the checkpointed offset and appends,
  // kReplay seeks its cursors past the consumed prefix). A failed restore
  // is recoverable: reported through on_error (RfdetErrc::kIo), and the
  // runtime starts fresh.
  std::string restore_checkpoint_path;

  // ---- failure containment & diagnosis -----------------------------------

  // Deterministic deadlock detection: whenever a thread is about to block
  // (under its turn), the runtime walks the wait-for graph (mutex owners,
  // join targets) and checks for a global stall (every other live thread
  // already blocked). Detection, the victim, and the report are all pure
  // functions of the deterministic schedule.
  bool deadlock_detection = true;
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kPanic;
  // Diagnostic tap: called (under the victim's turn) with the report
  // before the policy is applied.
  std::function<void(const std::string&)> on_deadlock;

  // Turn-stall watchdog: a monitor thread *outside* the deterministic
  // schedule that fires when no Kendo clock changes for this many
  // milliseconds of wall-clock time, dumping a full state report to
  // stderr. 0 disables. Diagnostics only — it never perturbs the
  // schedule. With watchdog_fatal the dump is followed by a panic
  // (turning a silent hang into an explained crash, e.g. in CI).
  uint32_t watchdog_stall_ms = 0;
  bool watchdog_fatal = false;
  std::function<void(const std::string&)> on_stall;

  // Sink for recoverable resource errors (arena overflow after GC retry,
  // spawn/allocator exhaustion). Called before the error is returned;
  // defaults to a rate-limited stderr note.
  std::function<void(RfdetErrc, const std::string&)> on_error;

  // Deterministic fault injection (tests): when set, the runtime threads
  // this injector through the arena-reserve, snapshot-pool, spawn, and
  // allocator sites. Not owned; must outlive the runtime.
  FaultInjector* fault_injector = nullptr;
};

// Validates option invariants the subsystems would otherwise trip over
// later (or worse, not trip over). Returns "" when valid, else a
// human-readable description of the first violation.
[[nodiscard]] std::string ValidateOptions(const RfdetOptions& options);

}  // namespace rfdet
