// Configuration for the RFDet runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "rfdet/common/error.h"
#include "rfdet/mem/metadata_arena.h"
#include "rfdet/mem/thread_view.h"

namespace rfdet {

class FaultInjector;

// What the runtime does when it proves the application deadlocked.
enum class DeadlockPolicy : uint8_t {
  // Print the deterministic deadlock report to stderr and panic — a
  // reproducible crash with an explanation beats a silent hang.
  kPanic,
  // The blocking operation backs out and returns RfdetErrc::kDeadlock
  // (det_pthread surfaces EDEADLK, like a POSIX error-checking mutex).
  // The report is retained and readable via LastDeadlockReport().
  kReturnError,
};

struct RfdetOptions {
  // Monitor backend: RFDet-ci (compile-time-instrumentation analogue) or
  // RFDet-pf (mprotect/page-fault), paper §4.2.
  MonitorMode monitor = MonitorMode::kInstrumented;

  // Strong-determinism machinery. With isolation disabled the runtime
  // degrades to *weak* determinism (the Kendo backend): deterministic
  // synchronization over one shared image, no slices, no propagation.
  bool isolation = true;

  // §4.5 optimizations, individually toggleable (Figure 9 benches these).
  bool slice_merging = true;
  bool prelock = true;
  bool lazy_writes = true;

  // Shared-region geometry.
  size_t region_bytes = 64u << 20;
  size_t static_bytes = 4u << 20;
  size_t max_threads = 64;

  // Metadata space (paper §5.4: 256 MB, GC at 90 % usage).
  size_t metadata_bytes = MetadataArena::kDefaultCapacity;
  double gc_threshold = MetadataArena::kDefaultGcThreshold;

  // Kendo clock ticks charged per 8 bytes of instrumented access (the
  // analogue of the paper's per-basic-block instrTick(k)).
  uint64_t ticks_per_word = 1;

  // Record the deterministic synchronization schedule (every turn-ordered
  // transition) for debugging/inspection. Because DMT needs only the
  // input to reproduce an execution, the trace is purely diagnostic —
  // unlike record&replay systems, it never needs to be replayed (§2).
  bool record_trace = false;

  // ---- failure containment & diagnosis -----------------------------------

  // Deterministic deadlock detection: whenever a thread is about to block
  // (under its turn), the runtime walks the wait-for graph (mutex owners,
  // join targets) and checks for a global stall (every other live thread
  // already blocked). Detection, the victim, and the report are all pure
  // functions of the deterministic schedule.
  bool deadlock_detection = true;
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kPanic;
  // Diagnostic tap: called (under the victim's turn) with the report
  // before the policy is applied.
  std::function<void(const std::string&)> on_deadlock;

  // Turn-stall watchdog: a monitor thread *outside* the deterministic
  // schedule that fires when no Kendo clock changes for this many
  // milliseconds of wall-clock time, dumping a full state report to
  // stderr. 0 disables. Diagnostics only — it never perturbs the
  // schedule. With watchdog_fatal the dump is followed by a panic
  // (turning a silent hang into an explained crash, e.g. in CI).
  uint32_t watchdog_stall_ms = 0;
  bool watchdog_fatal = false;
  std::function<void(const std::string&)> on_stall;

  // Sink for recoverable resource errors (arena overflow after GC retry,
  // spawn/allocator exhaustion). Called before the error is returned;
  // defaults to a rate-limited stderr note.
  std::function<void(RfdetErrc, const std::string&)> on_error;

  // Deterministic fault injection (tests): when set, the runtime threads
  // this injector through the arena-reserve, snapshot-pool, spawn, and
  // allocator sites. Not owned; must outlive the runtime.
  FaultInjector* fault_injector = nullptr;
};

// Validates option invariants the subsystems would otherwise trip over
// later (or worse, not trip over). Returns "" when valid, else a
// human-readable description of the first violation.
[[nodiscard]] std::string ValidateOptions(const RfdetOptions& options);

}  // namespace rfdet
