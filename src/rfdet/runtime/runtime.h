// RfdetRuntime — the paper's RFDet system (§4).
//
// The runtime replaces the pthreads API with deterministic equivalents:
//
//  * Synchronization is ordered deterministically by the Kendo engine:
//    every synchronization operation runs under the *turn* (the unique
//    global minimum of (deterministic logical clock, tid)), so the total
//    order of synchronization — and therefore the happens-before relation —
//    is a pure function of the program's deterministic execution.
//
//  * Memory follows DLRC (§3): each thread executes in a private
//    ThreadView; execution between synchronization operations forms
//    *slices* whose modifications are captured by page snapshot + diff and
//    published in the thread's SliceLog; each acquire operation propagates
//    exactly the slices that happen-before the paired release
//    (filter: s.time ≤ lastTime ∧ ¬(s.time ≤ Ct), the exact-set form of
//    the paper's Figure 5 upper/lower limits).
//
//  * Contended locks use deterministic FIFO hand-off: a waiter enqueues
//    under its turn, pauses its Kendo clock, and is resumed by the
//    releasing thread with a deterministically chosen clock — this
//    reservation queue is also the *prelock* order (§4.5), letting waiters
//    pre-propagate happens-before slices while they wait.
//
// With `options.isolation = false` the same runtime degrades to the weak-
// determinism Kendo system (deterministic synchronization over one shared
// image, no propagation) used as a comparison backend.
//
// Failure containment (see DESIGN.md §"Failure model & diagnostics"):
// a deterministic runtime turns latent races into reproducible hangs, so
// the runtime must be able to *explain* a hang. Blocking operations run a
// wait-for-graph check under the turn and either panic with a
// deterministic deadlock report or (DeadlockPolicy::kReturnError) back out
// with RfdetErrc::kDeadlock; a wall-clock watchdog outside the schedule
// dumps full state on turn stalls; and resource exhaustion is recoverable
// through the Try* entry points instead of aborting.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rfdet/common/error.h"
#include "rfdet/common/fault_injection.h"
#include "rfdet/kendo/kendo.h"
#include "rfdet/mem/det_allocator.h"
#include "rfdet/mem/metadata_arena.h"
#include "rfdet/mem/thread_view.h"
#include "rfdet/race/race_detector.h"
#include "rfdet/replay/checkpoint.h"
#include "rfdet/replay/replay_log.h"
#include "rfdet/runtime/options.h"
#include "rfdet/runtime/stats.h"
#include "rfdet/runtime/watchdog.h"
#include "rfdet/slice/slice.h"
#include "rfdet/slice/slice_span.h"
#include "rfdet/time/vector_clock.h"
#include "rfdet/verify/fingerprint.h"

namespace rfdet {

class RfdetRuntime {
 public:
  static constexpr size_t kNone = SIZE_MAX;

  explicit RfdetRuntime(const RfdetOptions& options = {});
  ~RfdetRuntime();

  RfdetRuntime(const RfdetRuntime&) = delete;
  RfdetRuntime& operator=(const RfdetRuntime&) = delete;

  // ---- memory ------------------------------------------------------------

  // Pre-thread bump allocation for application globals. AllocStatic panics
  // on exhaustion; TryAllocStatic returns kNullGAddr (and reports through
  // options.on_error) instead.
  GAddr AllocStatic(size_t size, size_t align = 16);
  GAddr TryAllocStatic(size_t size, size_t align = 16);
  // Deterministic malloc/free replacements (per-thread subheaps, §4.4).
  // Malloc panics when the caller's subheap is exhausted; TryMalloc
  // returns kNullGAddr — the recoverable path (det_malloc maps it to 0,
  // i.e. malloc's NULL).
  GAddr Malloc(size_t size);
  GAddr TryMalloc(size_t size);
  void Free(GAddr addr);

  // Instrumented accesses: advance the caller's deterministic clock and
  // read/write its private view (or the shared image when !isolation).
  void Store(GAddr addr, const void* src, size_t len);
  void Load(GAddr addr, void* dst, size_t len);
  // Pure deterministic-clock advancement (compute-only code regions).
  void Tick(uint64_t words);

  // ---- threads -----------------------------------------------------------

  // Spawns a deterministic thread running fn; returns its deterministic
  // thread id (the value the paper's pthread_self returns). Spawn panics
  // when thread slots are exhausted; TrySpawn returns kAgain (EAGAIN, like
  // pthread_create) and leaves the runtime fully usable.
  size_t Spawn(std::function<void()> fn);
  RfdetErrc TrySpawn(std::function<void()> fn, size_t* out_tid);
  // Join returns kDeadlock (policy kReturnError) if blocking would
  // provably deadlock — e.g. a join cycle; otherwise kOk.
  RfdetErrc Join(size_t tid);
  [[nodiscard]] size_t CurrentTid() const;

  // ---- synchronization ---------------------------------------------------
  //
  // Blocking operations return RfdetErrc::kOk normally. Under
  // DeadlockPolicy::kReturnError a provable deadlock makes the operation
  // fail with kDeadlock *before* any state change: a failed MutexLock has
  // not enqueued, a failed CondWait still holds the mutex, a failed
  // BarrierWait has not arrived. (The CondWait re-acquire after a wakeup
  // cannot back out and always panics on deadlock.)

  size_t CreateMutex();
  size_t CreateCond();
  size_t CreateBarrier(size_t parties);

  RfdetErrc MutexLock(size_t id);
  void MutexUnlock(size_t id);
  RfdetErrc CondWait(size_t cond_id, size_t mutex_id);
  void CondSignal(size_t cond_id);
  void CondBroadcast(size_t cond_id);
  RfdetErrc BarrierWait(size_t id);

  // ---- low-level atomics (§4.6's sketched extension) -----------------------
  //
  // 64-bit atomic operations on shared locations, for ad hoc and lock-free
  // synchronization. Exactly as the paper proposes: each operation is
  // ordered by Kendo, and propagates memory modifications according to its
  // acquire/release role — loads acquire, stores release, RMW does both.
  // Each atomic location is backed by an implicit internal synchronization
  // variable in the metadata space.
  uint64_t AtomicLoad(GAddr addr);
  void AtomicStore(GAddr addr, uint64_t value);
  uint64_t AtomicFetchAdd(GAddr addr, uint64_t delta);  // returns old value
  // Strong CAS; updates `expected` on failure, like std::atomic.
  bool AtomicCas(GAddr addr, uint64_t& expected, uint64_t desired);

  // ---- schedule tracing ----------------------------------------------------

  enum class TraceOp : uint8_t {
    kLockAcquired,
    kUnlock,
    kCondEnterWait,
    kSignal,
    kBroadcast,
    kBarrierArrive,
    kBarrierRelease,
    kFork,
    kJoin,
    kExit,
    kAtomic,
  };
  struct TraceEvent {
    size_t tid;           // acting (or granted) thread
    TraceOp op;
    size_t object;        // sync var id / peer tid / atomic address
    uint64_t kendo_clock; // deterministic clock of the acting thread
    bool operator==(const TraceEvent&) const = default;
  };
  // Snapshot of the schedule recorded so far (requires record_trace).
  // Storage is a ring of options.trace_limit events: the returned vector
  // holds the most recent events in schedule order (older ones counted in
  // stats.trace_dropped).
  [[nodiscard]] std::vector<TraceEvent> Trace() const;

  // ---- determinism self-verification --------------------------------------

  // Closes all partial fingerprint epochs, folds in the static-region
  // digest and writes (kRecord) / final-checks (kVerify) the fingerprint
  // file; returns the rollup digest. Idempotent; called automatically at
  // destruction, or earlier by the harness (main thread, workers joined)
  // so the result is readable before teardown. 0 when fingerprinting is
  // off.
  uint64_t FinalizeFingerprint();
  // First divergence report of a kVerify/paranoia run ("" if none). Under
  // DivergencePolicy::kReport this is the deterministic failure artifact.
  [[nodiscard]] std::string LastDivergenceReport() const;

  // ---- data-race detection -------------------------------------------------

  // The online race detector (null when race_policy is kOff). Reports,
  // counters and the detection-order digest are all deterministic; see
  // race/race_detector.h.
  [[nodiscard]] const RaceDetector* race_detector() const noexcept {
    return race_detector_.get();
  }
  // Full deterministic race report text ("" when off / no races).
  [[nodiscard]] std::string RaceReportText() const {
    return race_detector_ != nullptr ? race_detector_->ReportText()
                                     : std::string();
  }

  // ---- record / replay / checkpoint ----------------------------------------

  // Writes a checkpoint image to options.checkpoint_path at a deterministic
  // turn boundary: takes the turn as a kCheckpoint grant, closes the
  // caller's slice, force-GCs the slice logs, and captures the region plus
  // all deterministic runtime state. Main thread only, and only while
  // quiescent (every spawned thread joined) — otherwise kAgain, with the
  // runtime unperturbed beyond the turn transition itself. kIo on a write
  // failure (the previous checkpoint file is left intact), kInvalid when
  // checkpointing is unconfigured.
  RfdetErrc CheckpointNow();
  // True when this runtime was restored from options.restore_checkpoint_path.
  [[nodiscard]] bool Restored() const noexcept { return restored_; }
  // The restored image's sequence number / resume kendo clock (0 unless
  // Restored()). The supervisor cross-checks these against the image it
  // picked the resume point from.
  [[nodiscard]] uint64_t RestoredCheckpointSeq() const noexcept {
    return restored_seq_;
  }
  [[nodiscard]] uint64_t RestoredClock() const noexcept {
    return restored_clock_;
  }
  // The record/replay log (null when replay_mode is kOff).
  [[nodiscard]] const ReplayLog* replay_log() const noexcept {
    return replay_.get();
  }
  // First replay divergence report ("" if none / replay off).
  [[nodiscard]] std::string LastReplayDivergence() const {
    return replay_ != nullptr ? replay_->LastDivergenceReport()
                              : std::string();
  }

  // ---- introspection -----------------------------------------------------

  [[nodiscard]] const RfdetOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] StatsSnapshot Snapshot() const;
  // Executor-layer statistics event (exec/executor.h feeds these through
  // Env::NoteExec). Plain atomic counters — callable from any thread, no
  // turn required, never feeds the deterministic schedule.
  void NoteExec(ExecEvent event, uint64_t n) noexcept;
  [[nodiscard]] const MetadataArena& arena() const noexcept { return arena_; }
  [[nodiscard]] size_t LiveSliceCount() const;

  // The most recent deterministic deadlock report ("" if none). The report
  // is a pure function of the deterministic schedule: byte-identical
  // across runs of the same program.
  [[nodiscard]] std::string LastDeadlockReport() const;

  // Full diagnostic state dump: per-thread Kendo/vector clocks, block
  // states and held-lock sets, sync-var states, arena usage, and the tail
  // of the schedule trace. Safe to call from any thread at any time (the
  // watchdog calls it from outside the schedule); values read from
  // still-running threads are best-effort.
  [[nodiscard]] std::string DumpStateReport() const;

  // Exposed for tests: force a GC cycle regardless of the threshold.
  size_t ForceGc();

  // GC-fold introspection (DESIGN.md §18): copies origin `tid`'s
  // cumulative retired-prefix delta — the compacted last-writer-wins
  // merge of its GC-retired slices [*first_seq, *last_seq] — into the out
  // params. Applying the delta to a fresh view reproduces exactly the
  // bytes replaying that retired chain would. False when nothing has been
  // folded for `tid` (nothing retired yet, unknown tid, coalescing off,
  // or the fold was reset under arena pressure).
  [[nodiscard]] bool RetiredDelta(size_t tid, ModList* delta,
                                  uint64_t* first_seq,
                                  uint64_t* last_seq) const;

 private:
  // Why a thread is blocked (written under the holder's turn, guarded by
  // ThreadCtx::clock_mu for the benefit of diagnostic readers).
  enum class BlockKind : uint8_t { kNone, kMutex, kCond, kBarrier, kJoin };

  struct ThreadCtx {
    size_t tid = 0;
    std::unique_ptr<ThreadView> view;  // null when !isolation
    SliceLog log;
    mutable std::mutex clock_mu;
    VectorClock vclock;
    // vclock as of this thread's last *turn-ordered* operation. Unlike
    // vclock (which also advances during out-of-turn wake propagation),
    // turn_time changes only under the turn, so other turn-holders can
    // read it and obtain a deterministic value — the prelock optimization
    // snapshots predecessors' turn_time as its propagation bound.
    VectorClock turn_time;
    uint64_t slice_seq = 0;
    std::atomic<uint64_t> loads{0};   // word-counted, owner-written
    std::atomic<uint64_t> stores{0};

    // Off-turn close (options.off_turn_close): the thread-private half of
    // CloseSlice, produced by PrepareSlice *before* taking the turn and
    // consumed by the turn-ordered publish inside CloseSlice. Owner-only.
    struct PreparedSlice {
      bool valid = false;
      ModList mods;
      std::vector<PageId> read_pages;
      uint64_t mods_digest = 0;  // HashMods(mods, kFnvOffset)
      ApplyPlan plan;
    };
    PreparedSlice prepared;

    std::thread worker;  // empty for the main thread
    std::atomic<bool> finished{false};
    VectorClock final_clock;
    size_t joiner = kNone;  // tid parked in Join() on this thread
    bool joined = false;

    // Wait-for bookkeeping (guarded by clock_mu; all transitions happen
    // under a turn, so turn-holders read deterministic values).
    BlockKind block_kind = BlockKind::kNone;
    size_t block_object = kNone;        // sync id, or join-target tid
    std::vector<size_t> held_mutexes;   // acquisition order

    // Block/wake machinery: waiters sleep on wake_seq; the waker bumps it
    // after filling the mailbox under its turn.
    std::atomic<uint32_t> wake_seq{0};
    size_t mail_src = kNone;     // releasing thread (propagation source)
    VectorClock mail_time;       // the release's vector time

    // Recently-built coalesced spans over THIS thread's pending batches,
    // shared by every receiver propagating from this thread (the source
    // owns the cache so all receivers of the same [seq_a, seq_b] stretch
    // find the same span). Internally locked.
    SpanCache span_cache;

    // Cumulative GC-fold of this thread's fully-retired slice prefix
    // (DESIGN.md §18): delta is merge-normalized last-writer-wins over
    // slices [first_seq, last_seq], time their join. Guarded by gc_mu_
    // (folded during RunGc, read by RetiredDelta). A checkpoint
    // supersedes the fold — the image carries the full region — so
    // restore starts it fresh; a seq gap after restore resets it.
    struct RetiredFold {
      uint64_t first_seq = 0;
      uint64_t last_seq = 0;
      uint64_t slices = 0;  // 0 = empty fold
      ModList delta;
      VectorClock time;
      size_t charged = 0;  // arena bytes charged for delta
    };
    RetiredFold fold;

    // Deterministic event counters for DetMutation targeting (owner- or
    // merge-exclusive, like the memory fingerprint stream itself).
    uint64_t fp_applies = 0;   // slices applied to this thread's view
    uint64_t fp_sync_ops = 0;  // non-paused turn-ordered sync ops
    // Fingerprint progress as of this thread's last turn-ordered slice
    // close (guarded by clock_mu, the turn_time pattern): deterministic
    // for the deadlock report, unlike the live stream counters.
    uint64_t turn_fp_events = 0;
    uint64_t turn_fp_epochs = 0;
  };

  struct SyncVar {
    enum class Kind : uint8_t { kMutex, kCond, kBarrier };
    explicit SyncVar(Kind k) : kind(k) {}
    Kind kind;
    // Mutex state (mutated under the turn only).
    bool locked = false;
    size_t owner = kNone;
    std::vector<size_t> waiters;  // FIFO — also the prelock reservation order
    // Condition state.
    std::vector<size_t> cond_waiters;  // FIFO
    // Barrier state.
    size_t parties = 0;
    std::vector<size_t> arrived;
    // DLRC release metadata (paper §4.1 internal synchronization variable).
    size_t last_tid = kNone;
    VectorClock last_time;
  };

  ThreadCtx& Ctx() const;
  ThreadCtx& CtxOf(size_t tid) const { return *threads_[tid]; }
  SyncVar& Var(size_t id, SyncVar::Kind kind);
  // The implicit sync var backing an atomic location (created on first
  // touch, under the caller's turn, so ids are deterministic).
  SyncVar& AtomicVar(GAddr addr);
  // Reads/writes the 8 bytes at addr in the caller's memory space.
  uint64_t RawLoad64(ThreadCtx& me, GAddr addr);
  void RawStore64(ThreadCtx& me, GAddr addr, uint64_t value);

  // Off-turn half of CloseSlice: collects modifications, harvests read
  // pages, builds the apply plan and pre-hashes the mod bytes — all
  // thread-private work on the thread's own view and snapshots, run
  // before WaitForTurn so concurrent closers diff in parallel. No-op
  // unless options.off_turn_close (and isolation). A prepared slice left
  // behind by an error back-out (kDeadlock) is merged into, never
  // dropped: the runs append and the digest/plan are recomputed.
  void PrepareSlice(ThreadCtx& me);

  // Ends the current slice: collects modifications (or adopts the
  // prepared ones), ticks the vector clock, publishes the slice, and
  // triggers GC if the arena is full.
  void CloseSlice(ThreadCtx& t);

  // Metadata reservation for a slice about to be published: on shortfall
  // (or injected kArenaCharge fault) runs a forced GC and retries; a
  // second shortfall is reported through on_error and *survived* — the
  // arena here is an accounting object, so execution continues with the
  // overflow counted (stats.metadata_overflows).
  void ReserveSliceMetadata(size_t bytes);

  // Propagates from src's log every slice with time ≤ upper not already
  // seen by `me`, applying modifications to me's view and appending to
  // me's log; then joins me's vector clock with upper.
  void PropagateFrom(ThreadCtx& me, size_t src_tid, const VectorClock& upper,
                     bool prelock_phase);

  // DLRC acquire step for sync var sv (uses sv.last_tid / sv.last_time).
  void AcquireFrom(ThreadCtx& me, const SyncVar& sv);
  // DLRC release step: publish (me.tid, me.vclock) into sv.
  void ReleasePublish(ThreadCtx& me, SyncVar& sv);

  // Core of MutexLock. `fresh` is true for a direct lock call (the slice
  // must be closed here, and slice-merging may apply); false for the
  // re-acquire inside CondWait, whose slice was already closed at entry
  // (that path cannot back out of a deadlock and panics instead).
  RfdetErrc LockCore(ThreadCtx& me, size_t id, SyncVar& m, bool fresh);

  // Park the calling thread until the next wake; returns after the waker
  // has filled the mailbox. Must be called with the turn held; pauses the
  // Kendo clock before blocking.
  void Block(ThreadCtx& me, uint32_t baseline);
  // Wake `target` (the caller holds the turn), resuming its Kendo clock
  // at the caller's clock + delta.
  void Wake(ThreadCtx& me, ThreadCtx& target, uint64_t delta,
            size_t mail_src, const VectorClock& mail_time);

  // Prelock (§4.5): called by a waiter after enqueuing, before blocking —
  // propagates slices that must happen-before its eventual acquire.
  void PrelockPropagate(ThreadCtx& me, const SyncVar& m);

  // ---- deadlock detection (under the caller's turn) ----------------------

  // Called before `me` blocks on (kind, object). Walks the definite
  // wait-for edges (mutex → owner, join → target) looking for a cycle,
  // then checks for a global stall (every other live thread blocked;
  // threads waiting on `releasing_mutex` count as runnable because the
  // caller is about to hand that mutex over). On detection: builds the
  // deterministic report, and either panics (policy kPanic, or
  // !can_back_out) or returns kDeadlock. Returns kOk when blocking is
  // safe — or at least not provably fatal.
  RfdetErrc CheckBlockPermitted(ThreadCtx& me, BlockKind kind, size_t object,
                                size_t releasing_mutex, bool can_back_out);
  [[noreturn]] void PanicDeadlock(const std::string& report);
  RfdetErrc HandleDeadlock(const std::string& report, bool can_back_out);

  // Marks/clears the wait-for record around an actual block.
  void SetBlocked(ThreadCtx& t, BlockKind kind, size_t object);
  // "mutex 3", "join of thread 2", … for reports.
  static std::string BlockDesc(BlockKind kind, size_t object);

  // Recoverable-error sink: forwards to options.on_error, else a
  // once-per-code stderr note.
  void ReportError(RfdetErrc errc, const std::string& what);

  // ---- determinism self-verification --------------------------------------

  // Digest of the static segment (where workloads put their output) via
  // the main thread's view — the rollup's level-3 component. Must run on
  // an attached thread (the main thread at finalize time).
  [[nodiscard]] uint64_t RegionDigest();
  // dlrc_paranoia: ModList shape invariants at slice close (runs non-empty,
  // payload offsets in bounds, Σ run lengths == ByteCount, region bounds).
  void ParanoiaCheckMods(const ThreadCtx& t, const ModList& mods);
  // dlrc_paranoia failure → stats + the fingerprint divergence sink.
  void ParanoiaFailure(const std::string& what);
  // Refreshes t.turn_fp_* from the live stream counters (call under t's
  // turn, after turn-ordered fingerprint absorbs).
  void UpdateTurnFingerprint(ThreadCtx& t);

  // Progress fingerprint for the watchdog: a hash of every Kendo clock.
  [[nodiscard]] uint64_t ProgressFingerprint() const noexcept;

  // Whether views should track page-granularity read sets for the race
  // detector (validated: implies race_policy != kOff and isolation).
  [[nodiscard]] bool TrackReads() const noexcept {
    return options_.race_track_reads &&
           options_.race_policy != RacePolicy::kOff;
  }

  void MaybeRunGc();
  size_t RunGc();
  // Folds `t`'s own slices that this GC retires (time ≤ bound) into
  // t.fold, in seq order. Caller holds gc_mu_ and threads_mu_. Recoverable
  // under arena pressure: the fold resets and restarts at a later GC.
  void FoldRetired(ThreadCtx& t, const VectorClock& bound);
  // Releases the fold's arena charge and empties it (gc_mu_ held).
  void ResetFold(ThreadCtx::RetiredFold& fold);

  void WorkerMain(ThreadCtx& ctx, std::function<void()> fn);
  void ThreadExit(ThreadCtx& me);

  // ---- record / replay / checkpoint ----------------------------------------
  //
  // Every synchronization site brackets its turn with these wrappers
  // instead of calling the Kendo engine directly. TurnBegin waits for the
  // turn — in kReplay by blocking on the log's next grant for this thread
  // first (the recorded order), then in Kendo (which agrees unless the
  // execution diverged); in kRecord it appends the grant under the turn.
  // The TurnEnd* variants release the replayed grant cursor around the
  // matching Kendo transition; TurnEndTick additionally drives the
  // automatic checkpoint interval.
  void TurnBegin(ThreadCtx& me, ReplayOp op, uint64_t object);
  void TurnEndTick(ThreadCtx& me);
  void TurnEndPause(ThreadCtx& me);
  void TurnEndExit(ThreadCtx& me);
  // Advances the replay grant cursor (no-op unless actively replaying).
  void ReplayTurnDone();
  // The injected-fault decision for a Try* site: consults the replay log
  // in kReplay (the recorded outcome wins over the live injector), records
  // the live outcome in kRecord.
  [[nodiscard]] bool NondetFail(NondetSite site, size_t tid,
                                FaultSite fault_site);

  // True when a checkpoint can capture complete state: every spawned
  // thread has been joined (their slices are merged into main's view).
  [[nodiscard]] bool CheckpointQuiescent() const;
  // Zero-perturbation interval checkpoint, called under main's turn from
  // TurnEndTick; skips (stats.checkpoint_skips) unless quiescent and
  // main's view has no un-closed writes.
  void MaybeAutoCheckpoint(ThreadCtx& me);
  // Serializes the deterministic runtime state (everything but region
  // pages) into `out`. Caller holds the turn, runtime quiescent, slice
  // logs empty (post ForceGc).
  void SerializeCheckpoint(ThreadCtx& me, std::string& out);
  // Builds and commits the image (meta blob + non-zero region pages).
  // False on I/O failure; the previous checkpoint file stays intact.
  bool WriteCheckpoint(ThreadCtx& me);
  // Constructor-time restore: ranks every ring slot under
  // options.restore_checkpoint_path by header sequence number and
  // restores from the newest image that passes validation. False (after
  // reporting RfdetErrc::kIo) when no slot does.
  bool RestoreLatestValid();
  // One restore attempt. On any failure (missing/truncated/mismatched
  // image) reports RfdetErrc::kIo and returns false with the
  // fresh-constructed state untouched; `last_candidate` only picks the
  // report's "starting fresh" vs "trying older image" suffix.
  bool RestoreFromCheckpoint(const std::string& path, bool last_candidate);

  RfdetOptions options_;
  MetadataArena arena_;
  KendoEngine kendo_;
  DetAllocator allocator_;
  RuntimeStats stats_;

  std::vector<std::unique_ptr<ThreadCtx>> threads_;  // index = tid
  mutable std::mutex threads_mu_;                    // guards growth only

  std::deque<SyncVar> sync_vars_;  // stable references; growth under turn
  mutable std::mutex sync_vars_mu_;
  std::unordered_map<GAddr, size_t> atomic_vars_;  // addr → sync var id

  // Shared image for !isolation mode.
  std::unique_ptr<std::byte[]> shared_image_;

  mutable std::mutex gc_mu_;  // mutable: RetiredDelta reads folds under it
  std::atomic<size_t> gc_cooldown_{0};

  // Schedule trace: appended only under the turn (so the order is the
  // deterministic synchronization order); the mutex covers the physical
  // race with Trace() readers. Storage is a bounded ring over trace_
  // (trace_next_ = next overwrite position once full), arena-charged.
  void Record(TraceOp op, size_t acting_tid, size_t object);
  // Waker-side recording of an event on a granted waiter's behalf (lock
  // hand-off, join grant). Must be called BEFORE the Wake that publishes
  // the grant, with the deterministic clock the wake will install: once
  // woken, the waiter races ahead and Record's read of its live clock
  // cell would be nondeterministic.
  void RecordGrant(TraceOp op, size_t granted_tid, size_t object,
                   uint64_t granted_clock);
  void AppendTrace(const TraceEvent& event);
  mutable std::mutex trace_mu_;
  std::vector<TraceEvent> trace_;
  size_t trace_next_ = 0;
  size_t trace_charged_ = 0;

  // Failure containment & diagnosis.
  mutable std::mutex deadlock_mu_;
  std::string last_deadlock_report_;
  std::atomic<uint32_t> error_note_mask_{0};  // rate-limit stderr notes
  std::unique_ptr<ExecutionFingerprint> fingerprint_;  // null when off
  std::unique_ptr<RaceDetector> race_detector_;        // null when off

  // Record/replay + checkpoint/restore. replay_ is constructed *after* a
  // checkpoint restore (kRecord must reopen the existing log, not
  // truncate it). checkpoint_seq_ / turns_since_checkpoint_ are mutated
  // only under a turn (turn-holding is mutually exclusive and Kendo's
  // seq_cst clock stores order the accesses).
  std::unique_ptr<ReplayLog> replay_;  // null when replay_mode is kOff
  uint64_t checkpoint_seq_ = 0;
  uint64_t turns_since_checkpoint_ = 0;
  bool restored_ = false;
  uint64_t restored_seq_ = 0;    // image seq the runtime restored from
  uint64_t restored_clock_ = 0;  // kendo clock execution resumed at
  // Log cursors staged by RestoreFromCheckpoint for replay_'s Config.
  ReplayResume restored_resume_;

  std::unique_ptr<Watchdog> watchdog_;        // last member: stops first
};

}  // namespace rfdet
