#include "rfdet/runtime/runtime.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <system_error>

#include "rfdet/simd/kernels.h"

namespace rfdet {

namespace {

struct TlsBinding {
  RfdetRuntime* runtime = nullptr;
  void* ctx = nullptr;
};
thread_local TlsBinding g_tls;

// Runs option validation before any other member (arena, Kendo, allocator)
// is constructed from the values — the allocator in particular would
// otherwise fail deep inside segment carving with a much worse message.
const RfdetOptions& Validated(const RfdetOptions& options) {
  const std::string err = ValidateOptions(options);
  if (!err.empty()) {
    const std::string full = "invalid RfdetOptions: " + err;
    RFDET_CHECK_MSG(false, full.c_str());
  }
  return options;
}

std::string JoinTids(const std::vector<size_t>& tids) {
  std::string out;
  for (size_t i = 0; i < tids.size(); ++i) {
    if (i) out += ' ';
    out += std::to_string(tids[i]);
  }
  return out;
}

const char* TraceOpName(RfdetRuntime::TraceOp op) {
  switch (op) {
    case RfdetRuntime::TraceOp::kLockAcquired: return "lock";
    case RfdetRuntime::TraceOp::kUnlock: return "unlock";
    case RfdetRuntime::TraceOp::kCondEnterWait: return "cond-wait";
    case RfdetRuntime::TraceOp::kSignal: return "signal";
    case RfdetRuntime::TraceOp::kBroadcast: return "broadcast";
    case RfdetRuntime::TraceOp::kBarrierArrive: return "barrier-arrive";
    case RfdetRuntime::TraceOp::kBarrierRelease: return "barrier-release";
    case RfdetRuntime::TraceOp::kFork: return "fork";
    case RfdetRuntime::TraceOp::kJoin: return "join";
    case RfdetRuntime::TraceOp::kExit: return "exit";
    case RfdetRuntime::TraceOp::kAtomic: return "atomic";
  }
  return "?";
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

RfdetRuntime::RfdetRuntime(const RfdetOptions& options)
    : options_(Validated(options)),
      arena_(options_.metadata_bytes, options_.gc_threshold),
      kendo_(options_.max_threads),
      allocator_(DetAllocator::Config{
          .static_base = 16,
          .static_size = options_.static_bytes,
          // Leave page-alignment slack between the segments.
          .heap_size = options_.region_bytes - options_.static_bytes -
                       2 * kPageSize,
          .max_threads = options_.max_threads,
      }) {
  RFDET_CHECK_MSG(g_tls.runtime == nullptr,
                  "a runtime is already attached to this thread");
  // Kernel tier: the RFDET_KERNELS environment variable (debug knob) wins
  // over the option. A validated-but-unsupported option name (e.g. "avx2"
  // on a CPU without it) warns and keeps the current selection — all tiers
  // are byte-identical, so this is never a correctness decision.
  if (const char* env = std::getenv("RFDET_KERNELS");
      env != nullptr && *env != '\0') {
    if (!simd::SelectKernels(env).empty()) {
      std::fprintf(stderr,
                   "rfdet: ignoring RFDET_KERNELS=%s (unknown or "
                   "unsupported); using options.kernels\n",
                   env);
      (void)simd::SelectKernels(options_.kernels);
    }
  } else if (const std::string err = simd::SelectKernels(options_.kernels);
             !err.empty()) {
    std::fprintf(stderr, "rfdet: options.kernels: %s\n", err.c_str());
  }
  threads_.reserve(options_.max_threads);
  if (!options_.isolation) {
    shared_image_ = std::make_unique<std::byte[]>(options_.region_bytes);
    std::memset(shared_image_.get(), 0, options_.region_bytes);
  }

  auto main_ctx = std::make_unique<ThreadCtx>();
  main_ctx->tid = 0;
  if (options_.isolation) {
    main_ctx->view = std::make_unique<ThreadView>(
        options_.region_bytes, options_.monitor, &arena_,
        options_.fault_injector, TrackReads());
    main_ctx->view->ActivateOnThisThread();
  }
  threads_.push_back(std::move(main_ctx));
  const size_t tid = kendo_.RegisterThread(1);
  RFDET_CHECK(tid == 0);
  g_tls = {this, threads_[0].get()};

  if (options_.fingerprint != FingerprintMode::kOff ||
      options_.dlrc_paranoia) {
    ExecutionFingerprint::Config fc;
    fc.mode = options_.fingerprint;
    fc.path = options_.fingerprint_path;
    fc.policy = options_.divergence_policy;
    fc.epoch_ops = options_.fingerprint_epoch_ops;
    fc.max_threads = options_.max_threads;
    fc.arena = &arena_;
    fc.injector = options_.fault_injector;
    fc.on_divergence = options_.on_divergence;
    fc.on_error = [this](RfdetErrc errc, const std::string& what) {
      ReportError(errc, what);
    };
    fingerprint_ = std::make_unique<ExecutionFingerprint>(fc);
  }

  if (options_.race_policy != RacePolicy::kOff) {
    RaceDetector::Config rc;
    rc.policy = options_.race_policy;
    rc.window_bytes = options_.race_window_bytes;
    rc.max_reports = options_.race_max_reports;
    rc.page_count = options_.region_bytes / kPageSize;
    rc.arena = &arena_;
    rc.injector = options_.fault_injector;
    rc.on_race = options_.on_race;
    rc.on_error = [this](RfdetErrc errc, const std::string& what) {
      ReportError(errc, what);
    };
    race_detector_ = std::make_unique<RaceDetector>(rc);
  }

  if (options_.watchdog_stall_ms > 0) {
    watchdog_ = std::make_unique<Watchdog>(
        Watchdog::Config{options_.watchdog_stall_ms, options_.watchdog_fatal},
        [this] { return ProgressFingerprint(); },
        [this] { return DumpStateReport(); },
        [this](const std::string& report) {
          stats_.watchdog_stalls.fetch_add(1, std::memory_order_relaxed);
          if (options_.on_stall) options_.on_stall(report);
        });
  }
}

RfdetRuntime::~RfdetRuntime() {
  // Teardown legitimately stops the clocks: silence the watchdog first.
  if (watchdog_) watchdog_->Stop();
  // Reclaim any spawned thread the application forgot to Join. Their
  // deterministic work is already done (or will finish nondeterministically
  // during teardown — a program bug, like exiting with threads running).
  for (auto& ctx : threads_) {
    if (ctx->worker.joinable()) ctx->worker.join();
  }
  // All workers are quiescent and the main thread is still attached: the
  // last chance to fold the region into the rollup and write/verify the
  // fingerprint file (idempotent if the harness already finalized).
  FinalizeFingerprint();
  // Surface the run's deterministic race set at exit (kPanic already
  // crashed at the first race; kReport collects them until here).
  if (race_detector_ != nullptr &&
      race_detector_->policy() == RacePolicy::kReport) {
    const std::string races = race_detector_->ReportText();
    if (!races.empty()) {
      std::fprintf(stderr,
                   "rfdet: %llu write-write and %llu write-read race(s) "
                   "detected:\n%s",
                   static_cast<unsigned long long>(race_detector_->RacesWW()),
                   static_cast<unsigned long long>(
                       race_detector_->RacesRWPages()),
                   races.c_str());
    }
  }
  if (options_.isolation) ThreadView::DeactivateOnThisThread();
  g_tls = {nullptr, nullptr};
  if (trace_charged_ > 0) arena_.Release(trace_charged_);
}

RfdetRuntime::ThreadCtx& RfdetRuntime::Ctx() const {
  RFDET_CHECK_MSG(g_tls.runtime == this,
                  "calling thread is not attached to this runtime");
  return *static_cast<ThreadCtx*>(g_tls.ctx);
}

RfdetRuntime::SyncVar& RfdetRuntime::Var(size_t id, SyncVar::Kind kind) {
  SyncVar* var;
  {
    std::scoped_lock lock(sync_vars_mu_);
    RFDET_CHECK_MSG(id < sync_vars_.size(), "unknown sync object id");
    var = &sync_vars_[id];
  }
  RFDET_CHECK_MSG(var->kind == kind, "sync object used as wrong kind");
  return *var;
}

// ---------------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------------

GAddr RfdetRuntime::AllocStatic(size_t size, size_t align) {
  RFDET_CHECK_MSG(Ctx().tid == 0,
                  "static allocation is a main-thread setup operation");
  return allocator_.AllocStatic(size, align);
}

GAddr RfdetRuntime::TryAllocStatic(size_t size, size_t align) {
  RFDET_CHECK_MSG(Ctx().tid == 0,
                  "static allocation is a main-thread setup operation");
  FaultInjector* fi = options_.fault_injector;
  if (fi != nullptr && fi->ShouldFail(FaultSite::kStaticAlloc)) {
    stats_.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    ReportError(RfdetErrc::kNoMemory,
                "static allocation failed (injected fault)");
    return kNullGAddr;
  }
  const GAddr addr = allocator_.TryAllocStatic(size, align);
  if (addr == kNullGAddr) {
    stats_.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    ReportError(RfdetErrc::kNoMemory, "static segment exhausted");
  }
  return addr;
}

GAddr RfdetRuntime::Malloc(size_t size) {
  return allocator_.Alloc(Ctx().tid, size);
}

GAddr RfdetRuntime::TryMalloc(size_t size) {
  ThreadCtx& me = Ctx();
  FaultInjector* fi = options_.fault_injector;
  if (fi != nullptr && fi->ShouldFail(FaultSite::kHeapAlloc)) {
    stats_.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    ReportError(RfdetErrc::kNoMemory, "allocation failed (injected fault)");
    return kNullGAddr;
  }
  const GAddr addr = allocator_.TryAlloc(me.tid, size);
  if (addr == kNullGAddr) {
    stats_.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    ReportError(RfdetErrc::kNoMemory,
                "subheap exhausted (thread " + std::to_string(me.tid) +
                    ", request " + std::to_string(size) + " bytes)");
  }
  return addr;
}

void RfdetRuntime::Free(GAddr addr) { allocator_.Free(Ctx().tid, addr); }

void RfdetRuntime::Store(GAddr addr, const void* src, size_t len) {
  ThreadCtx& me = Ctx();
  const uint64_t words = (len + 7) / 8;
  kendo_.Tick(me.tid, words * options_.ticks_per_word);
  me.stores.fetch_add(words, std::memory_order_relaxed);
  if (options_.isolation) {
    me.view->Store(addr, src, len);
  } else {
    RFDET_DCHECK(addr + len <= options_.region_bytes);
    std::memcpy(shared_image_.get() + addr, src, len);
  }
}

void RfdetRuntime::Load(GAddr addr, void* dst, size_t len) {
  ThreadCtx& me = Ctx();
  const uint64_t words = (len + 7) / 8;
  kendo_.Tick(me.tid, words * options_.ticks_per_word);
  me.loads.fetch_add(words, std::memory_order_relaxed);
  if (options_.isolation) {
    me.view->Load(addr, dst, len);
  } else {
    RFDET_DCHECK(addr + len <= options_.region_bytes);
    std::memcpy(dst, shared_image_.get() + addr, len);
  }
}

void RfdetRuntime::Tick(uint64_t words) {
  kendo_.Tick(Ctx().tid, words * options_.ticks_per_word);
}

// ---------------------------------------------------------------------------
// Slices and propagation
// ---------------------------------------------------------------------------

void RfdetRuntime::PrepareSlice(ThreadCtx& me) {
  if (!options_.isolation || !options_.off_turn_close) return;
  ThreadCtx::PreparedSlice& p = me.prepared;
  // A prepared slice can survive a sync op that never published it (slice
  // merging, an error back-out): CollectModifications appends, so the new
  // window's diff merges into the carried one. Later runs win on overlap —
  // both the legacy apply loop and ApplyPlan (stable_sort) preserve run
  // order within a page, matching what one combined diff would apply.
  const bool had = p.valid;
  const bool had_mods = had && !p.mods.Empty();
  const size_t bytes_before = p.mods.ByteCount();
  me.view->CollectModifications(p.mods);
  if (race_detector_ != nullptr) {
    if (!had) {
      me.view->HarvestReadPages(p.read_pages);
    } else {
      std::vector<PageId> fresh;
      me.view->HarvestReadPages(fresh);
      p.read_pages.insert(p.read_pages.end(), fresh.begin(), fresh.end());
      std::sort(p.read_pages.begin(), p.read_pages.end());
      p.read_pages.erase(std::unique(p.read_pages.begin(), p.read_pages.end()),
                         p.read_pages.end());
    }
  }
  p.valid = true;
  if (p.mods.Empty()) {
    p.mods_digest = 0;
    return;
  }
  // The expensive, order-insensitive half of a close: pre-hash the mod
  // bytes for the fingerprint and build the apply plan receivers will use.
  // Everything here reads only this thread's private view output.
  p.mods_digest = fingerprint_ != nullptr
                      ? ExecutionFingerprint::HashMods(p.mods, kFnvOffset)
                      : 0;
  p.plan = ApplyPlan::Build(p.mods);
  if (!had_mods) {
    stats_.offturn_prepared_slices.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.offturn_prepared_bytes.fetch_add(p.mods.ByteCount() - bytes_before,
                                          std::memory_order_relaxed);
}

void RfdetRuntime::CloseSlice(ThreadCtx& t) {
  if (!options_.isolation) return;
  const auto close_t0 = std::chrono::steady_clock::now();
  ModList mods;
  std::vector<PageId> read_pages;
  uint64_t mods_digest = 0;
  ApplyPlan plan;
  bool prepared = false;
  if (t.prepared.valid) {
    // Off-turn close: adopt the diff/plan/pre-hash done before this thread
    // took its turn. No instrumented write can land between PrepareSlice
    // and here — every sync op prepares immediately before requesting the
    // turn and runs no application code in between.
    prepared = true;
    mods = std::move(t.prepared.mods);
    read_pages = std::move(t.prepared.read_pages);
    mods_digest = t.prepared.mods_digest;
    plan = std::move(t.prepared.plan);
    t.prepared.valid = false;
    t.prepared.mods.Clear();
    t.prepared.read_pages.clear();
    t.prepared.mods_digest = 0;
    t.prepared.plan = ApplyPlan();
  } else {
    t.view->CollectModifications(mods);
    if (race_detector_ != nullptr) t.view->HarvestReadPages(read_pages);
  }
  VectorClock time;
  {
    std::scoped_lock lock(t.clock_mu);
    t.vclock.Tick(t.tid);
    t.turn_time = t.vclock;
    time = t.vclock;
  }
  SliceRef slice;
  if (!mods.Empty()) {
    if (options_.dlrc_paranoia) ParanoiaCheckMods(t, mods);
    if (fingerprint_ && fingerprint_->Absorbing()) {
      if (prepared) {
        fingerprint_->OnSliceClose(t.tid, t.slice_seq + 1, time, mods,
                                   mods_digest);
      } else {
        fingerprint_->OnSliceClose(t.tid, t.slice_seq + 1, time, mods);
      }
    }
    ReserveSliceMetadata(Slice::BytesFor(mods, time));
    slice = std::make_shared<Slice>(t.tid, ++t.slice_seq, time,
                                    std::move(mods), &arena_);
    if (prepared) slice->PrimePlan(std::move(plan));
    t.log.Append(slice);
    stats_.slices_created.fetch_add(1, std::memory_order_relaxed);
  }
  if (race_detector_ != nullptr &&
      (slice != nullptr || !read_pages.empty())) {
    // Every CloseSlice call site runs under the caller's Kendo turn, so
    // detection (and therefore the report set) follows the deterministic
    // global synchronization order.
    race_detector_->OnSliceClose(t.tid, t.slice_seq, kendo_.Clock(t.tid),
                                 time, std::move(slice),
                                 std::move(read_pages));
  }
  if (fingerprint_) UpdateTurnFingerprint(t);
  MaybeRunGc();
  stats_.close_turn_ns.fetch_add(
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - close_t0)
                                .count()),
      std::memory_order_relaxed);
}

void RfdetRuntime::ReserveSliceMetadata(size_t bytes) {
  FaultInjector* fi = options_.fault_injector;
  const auto fits = [&] {
    const bool injected =
        fi != nullptr && fi->ShouldFail(FaultSite::kArenaCharge);
    return !injected && arena_.HasRoom(bytes);
  };
  if (fits()) return;
  // Shortfall: force a GC and retry once (paper §5.4 — slices can outgrow
  // the metadata space when threads rarely synchronize, and the routine
  // threshold GC may not have caught up).
  stats_.arena_gc_retries.fetch_add(1, std::memory_order_relaxed);
  {
    std::scoped_lock lock(gc_mu_);
    RunGc();
  }
  if (fits()) return;
  // Still short. The arena is an accounting object (slice payloads live in
  // ordinary host memory), so exceeding the budget is survivable: count
  // the overflow and tell the application instead of aborting.
  stats_.metadata_overflows.fetch_add(1, std::memory_order_relaxed);
  ReportError(RfdetErrc::kNoMemory,
              "metadata arena exhausted after GC retry (" +
                  std::to_string(arena_.Used()) + " of " +
                  std::to_string(arena_.Capacity()) +
                  " bytes used); continuing over budget");
}

void RfdetRuntime::PropagateFrom(ThreadCtx& me, size_t src_tid,
                                 const VectorClock& upper,
                                 bool prelock_phase) {
  if (!options_.isolation || src_tid == kNone) return;
  if (src_tid == me.tid) {
    // Re-acquiring one's own release: nothing new can be learned.
    std::scoped_lock lock(me.clock_mu);
    me.vclock.Join(upper);
    return;
  }
  VectorClock lower;
  {
    std::scoped_lock lock(me.clock_mu);
    lower = me.vclock;
  }
  // Gather first (holding the source log lock only briefly), then apply.
  // Filter (exact, see vector_clock.h): happens-before the release and not
  // already seen locally.
  std::vector<SliceRef> batch;
  CtxOf(src_tid).log.ForEach([&](const SliceRef& s) {
    if (s->time().LessEq(upper) && !s->time().LessEq(lower)) {
      batch.push_back(s);
    }
  });
  const bool fp = fingerprint_ != nullptr && fingerprint_->Absorbing();
  const DetMutation& mut = options_.test_mutation;
  uint64_t bytes = 0;
  for (const SliceRef& s : batch) {
    if (options_.dlrc_paranoia && !s->time().LessEq(upper)) {
      ParanoiaFailure("received slice (tid " + std::to_string(s->tid()) +
                      ", seq " + std::to_string(s->seq()) +
                      ") does not happen-before the release it arrived on");
    }
    // Test-only perturbations, targeted by the receiver's deterministic
    // apply counter (see DetMutation).
    bool skip = false;
    bool corrupt = false;
    if ((mut.kind == DetMutation::Kind::kSkipSliceApply ||
         mut.kind == DetMutation::Kind::kCorruptPropagatedByte) &&
        me.tid == mut.tid && me.fp_applies++ == mut.index) {
      skip = mut.kind == DetMutation::Kind::kSkipSliceApply;
      corrupt = !skip;
    }
    if (skip) {
      me.log.Append(s);  // lost propagation: the bytes never arrive
      continue;
    }
    if (corrupt && !s->mods().Empty()) {
      // Flip one bit of the first payload byte — a silent wire corruption.
      ModList mangled;
      bool flipped = false;
      for (const ModRun& run : s->mods().Runs()) {
        const auto payload = s->mods().RunData(run);
        if (!flipped) {
          std::vector<std::byte> copy(payload.begin(), payload.end());
          copy.front() ^= std::byte{0x01};
          mangled.Append(run.addr, copy);
          flipped = true;
        } else {
          mangled.Append(run.addr, payload);
        }
      }
      me.view->ApplyRemote(mangled, options_.lazy_writes);
      if (fp) {
        fingerprint_->OnApply(me.tid, s->tid(), s->seq(), s->time(),
                              mangled);
      }
    } else {
      // Fast path: the slice's cached page-partitioned plan — built by the
      // first receiver, shared by all later ones (see DESIGN.md §10).
      me.view->ApplyRemote(s->mods(), s->Plan(&stats_.apply_plans_built),
                           options_.lazy_writes);
      if (fp) {
        fingerprint_->OnApply(me.tid, s->tid(), s->seq(), s->time(),
                              s->mods());
      }
    }
    bytes += s->mods().ByteCount();
    me.log.Append(s);
  }
  {
    std::scoped_lock lock(me.clock_mu);
    me.vclock.Join(upper);
    if (options_.dlrc_paranoia && !lower.LessEq(me.vclock)) {
      ParanoiaFailure(
          "vector clock of thread " + std::to_string(me.tid) +
          " regressed across an acquire (join is not monotonic)");
    }
  }
  stats_.slices_propagated.fetch_add(batch.size(),
                                     std::memory_order_relaxed);
  stats_.bytes_propagated.fetch_add(bytes, std::memory_order_relaxed);
  if (prelock_phase) {
    stats_.prelock_slices.fetch_add(batch.size(),
                                    std::memory_order_relaxed);
    stats_.prelock_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
}

void RfdetRuntime::AcquireFrom(ThreadCtx& me, const SyncVar& sv) {
  if (!options_.isolation || sv.last_tid == kNone) return;
  PropagateFrom(me, sv.last_tid, sv.last_time, /*prelock_phase=*/false);
  // The join above ran under the turn: refresh the deterministic snapshot.
  {
    std::scoped_lock lock(me.clock_mu);
    me.turn_time = me.vclock;
  }
  if (fingerprint_) UpdateTurnFingerprint(me);
}

void RfdetRuntime::ReleasePublish(ThreadCtx& me, SyncVar& sv) {
  if (!options_.isolation) return;
  std::scoped_lock lock(me.clock_mu);
  sv.last_time = me.vclock;
  sv.last_tid = me.tid;
}

// ---------------------------------------------------------------------------
// Block / wake plumbing
// ---------------------------------------------------------------------------

void RfdetRuntime::Block(ThreadCtx& me, uint32_t baseline) {
  uint32_t cur;
  while ((cur = me.wake_seq.load(std::memory_order_acquire)) == baseline) {
    me.wake_seq.wait(baseline, std::memory_order_acquire);
  }
}

void RfdetRuntime::Wake(ThreadCtx& me, ThreadCtx& target, uint64_t delta,
                        size_t mail_src, const VectorClock& mail_time) {
  SetBlocked(target, BlockKind::kNone, kNone);
  target.mail_src = mail_src;
  target.mail_time = mail_time;
  kendo_.Resume(target.tid, kendo_.Clock(me.tid) + delta);
  target.wake_seq.fetch_add(1, std::memory_order_release);
  target.wake_seq.notify_one();
}

void RfdetRuntime::SetBlocked(ThreadCtx& t, BlockKind kind, size_t object) {
  std::scoped_lock lock(t.clock_mu);
  t.block_kind = kind;
  t.block_object = object;
}

// ---------------------------------------------------------------------------
// Deadlock detection
// ---------------------------------------------------------------------------

std::string RfdetRuntime::BlockDesc(BlockKind kind, size_t object) {
  switch (kind) {
    case BlockKind::kNone: return "nothing (runnable)";
    case BlockKind::kMutex: return "mutex " + std::to_string(object);
    case BlockKind::kCond: return "cond " + std::to_string(object);
    case BlockKind::kBarrier: return "barrier " + std::to_string(object);
    case BlockKind::kJoin: return "join of thread " + std::to_string(object);
  }
  return "?";
}

RfdetErrc RfdetRuntime::CheckBlockPermitted(ThreadCtx& me, BlockKind kind,
                                            size_t object,
                                            size_t releasing_mutex,
                                            bool can_back_out) {
  if (!options_.deadlock_detection) return RfdetErrc::kOk;

  // Everything below runs under the caller's turn: block states, queue
  // contents and mutex owners are only ever mutated under a turn, so this
  // reads a deterministic snapshot of the wait-for graph — detection, the
  // victim (the thread whose blocking attempt trips the check) and the
  // report text are pure functions of the deterministic schedule.
  struct Node {
    size_t tid;
    BlockKind kind;
    size_t obj;
  };

  // One "thread A … waits for X" report line. Blocked threads are paused,
  // so their deterministic clock lives in the Kendo saved slot.
  const auto line = [&](const Node& n) {
    const uint64_t clock = kendo_.IsPaused(n.tid) ? kendo_.SavedClock(n.tid)
                                                  : kendo_.Clock(n.tid);
    std::string held;
    std::string fp_note;
    {
      ThreadCtx& t = CtxOf(n.tid);
      std::scoped_lock lock(t.clock_mu);
      held = JoinTids(t.held_mutexes);
      if (fingerprint_ != nullptr) {
        // turn_fp_* only changes under the thread's turn (all of which
        // were turn-ordered before this detection), so the values — and
        // the report — stay deterministic.
        fp_note = ", fp epoch " + std::to_string(t.turn_fp_epochs) +
                  " (" + std::to_string(t.turn_fp_events) + " events)";
      }
    }
    return "  thread " + std::to_string(n.tid) + " (kendo clock " +
           std::to_string(clock) + ", holds mutexes [" + held + "]" +
           fp_note + ") waits for " + BlockDesc(n.kind, n.obj);
  };

  // ---- pass 1: definite-edge cycle walk ---------------------------------
  // A mutex waiter definitely waits for the owner; a joiner definitely
  // waits for the target. Cond and barrier waits have no single definite
  // peer, so the walk stops there (pass 2 handles those).
  std::vector<Node> path;
  path.push_back({me.tid, kind, object});
  size_t cycle_start = kNone;
  while (cycle_start == kNone && path.size() <= threads_.size()) {
    const Node cur = path.back();
    size_t next = kNone;
    if (cur.kind == BlockKind::kMutex) {
      next = Var(cur.obj, SyncVar::Kind::kMutex).owner;
    } else if (cur.kind == BlockKind::kJoin) {
      next = cur.obj;
    }
    if (next == kNone) break;
    for (size_t i = 0; i < path.size(); ++i) {
      if (path[i].tid == next) {
        cycle_start = i;
        break;
      }
    }
    if (cycle_start != kNone) break;
    ThreadCtx& nctx = CtxOf(next);
    if (nctx.finished.load(std::memory_order_acquire)) break;
    Node n{next, BlockKind::kNone, kNone};
    {
      std::scoped_lock lock(nctx.clock_mu);
      n.kind = nctx.block_kind;
      n.obj = nctx.block_object;
    }
    if (n.kind == BlockKind::kNone) break;  // reached a runnable thread
    path.push_back(n);
  }
  if (cycle_start != kNone) {
    std::string report =
        "rfdet: DEADLOCK: wait-for cycle of " +
        std::to_string(path.size() - cycle_start) +
        " thread(s), detected by thread " + std::to_string(me.tid) +
        " blocking on " + BlockDesc(kind, object) + "\n";
    for (size_t i = cycle_start; i < path.size(); ++i) {
      const size_t next_tid = i + 1 < path.size() ? path[i + 1].tid
                                                  : path[cycle_start].tid;
      report += line(path[i]);
      if (path[i].kind == BlockKind::kMutex ||
          path[i].kind == BlockKind::kJoin) {
        report += " (thread " + std::to_string(next_tid) + ")";
      }
      report += "\n";
    }
    return HandleDeadlock(report, can_back_out);
  }

  // ---- pass 2: global stall ----------------------------------------------
  // If every other live thread is already blocked, blocking `me` too would
  // stall the whole schedule — no thread could ever wake another. Threads
  // waiting on `releasing_mutex` count as runnable: the caller (CondWait)
  // is about to hand that mutex over as part of blocking.
  std::vector<Node> all;
  bool someone_runnable = false;
  {
    std::scoped_lock lock(threads_mu_);
    for (const auto& ctx : threads_) {
      if (ctx->finished.load(std::memory_order_acquire)) continue;
      if (ctx->tid == me.tid) {
        all.push_back({me.tid, kind, object});
        continue;
      }
      Node n{ctx->tid, BlockKind::kNone, kNone};
      {
        std::scoped_lock cl(ctx->clock_mu);
        n.kind = ctx->block_kind;
        n.obj = ctx->block_object;
      }
      if (n.kind == BlockKind::kNone ||
          (releasing_mutex != kNone && n.kind == BlockKind::kMutex &&
           n.obj == releasing_mutex)) {
        someone_runnable = true;
        break;
      }
      all.push_back(n);
    }
  }
  if (someone_runnable) return RfdetErrc::kOk;
  std::string report =
      "rfdet: DEADLOCK: global stall — thread " + std::to_string(me.tid) +
      " blocking on " + BlockDesc(kind, object) +
      " would leave no runnable thread\n";
  for (const Node& n : all) report += line(n) + "\n";
  return HandleDeadlock(report, can_back_out);
}

RfdetErrc RfdetRuntime::HandleDeadlock(const std::string& report,
                                       bool can_back_out) {
  stats_.deadlocks_detected.fetch_add(1, std::memory_order_relaxed);
  {
    std::scoped_lock lock(deadlock_mu_);
    last_deadlock_report_ = report;
  }
  if (options_.on_deadlock) options_.on_deadlock(report);
  if (!can_back_out ||
      options_.deadlock_policy == DeadlockPolicy::kPanic) {
    PanicDeadlock(report);
  }
  return RfdetErrc::kDeadlock;
}

void RfdetRuntime::PanicDeadlock(const std::string& report) {
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  RFDET_PANIC("deadlock detected");
}

std::string RfdetRuntime::LastDeadlockReport() const {
  std::scoped_lock lock(deadlock_mu_);
  return last_deadlock_report_;
}

// ---------------------------------------------------------------------------
// Mutexes
// ---------------------------------------------------------------------------

void RfdetRuntime::PrelockPropagate(ThreadCtx& me, const SyncVar& m) {
  // Snapshot, under the turn, the deterministic times of the holder and of
  // every waiter ahead of us in the reservation order: slices up to those
  // times must happen-before our eventual acquire, so they can be merged
  // now, off the lock's critical path (paper §4.5 "Prelock").
  struct Source {
    size_t tid;
    VectorClock upper;
  };
  std::vector<Source> sources;
  // The lock's most recent release: its slices are guaranteed present in
  // the releaser's log (the release was turn-ordered before now), and in
  // the steady hand-off regime this is the bulk of what the eventual
  // acquire will need.
  if (m.last_tid != kNone && m.last_tid != me.tid) {
    sources.push_back({m.last_tid, m.last_time});
  }
  auto add = [&](size_t tid) {
    if (tid == kNone || tid == me.tid) return;
    ThreadCtx& ctx = CtxOf(tid);
    std::scoped_lock lock(ctx.clock_mu);
    sources.push_back({tid, ctx.turn_time});
  };
  add(m.owner);
  for (const size_t w : m.waiters) {
    if (w == me.tid) break;
    add(w);
  }
  // The snapshots above were taken under the turn; the propagation itself
  // runs after we pause — concurrently with the lock holder.
  kendo_.Pause(me.tid);
  for (const Source& src : sources) {
    PropagateFrom(me, src.tid, src.upper, /*prelock_phase=*/true);
  }
}

RfdetErrc RfdetRuntime::LockCore(ThreadCtx& me, size_t id, SyncVar& m,
                                 bool fresh) {
  kendo_.WaitForTurn(me.tid);
  if (!m.locked) {
    const bool merge = fresh && options_.slice_merging &&
                       options_.isolation && m.last_tid == me.tid;
    if (merge) {
      // Slice merging (§4.5): we were the last releaser, so no propagation
      // is needed and the current slice may continue across the acquire.
      stats_.slices_merged.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (fresh) CloseSlice(me);
      AcquireFrom(me, m);
    }
    m.locked = true;
    m.owner = me.tid;
    {
      std::scoped_lock lock(me.clock_mu);
      me.held_mutexes.push_back(id);
    }
    Record(TraceOp::kLockAcquired, me.tid, id);
    kendo_.Tick(me.tid);
    return RfdetErrc::kOk;
  }
  // About to block: prove it safe first. Detects both relock of an owned
  // mutex (a cycle of one — POSIX error-checking-mutex semantics) and
  // longer ownership cycles. Only a fresh lock call can back out; the
  // re-acquire inside CondWait has already given up its queue position
  // and panics on detection regardless of policy.
  if (const RfdetErrc err =
          CheckBlockPermitted(me, BlockKind::kMutex, id, kNone,
                              /*can_back_out=*/fresh);
      err != RfdetErrc::kOk) {
    kendo_.Tick(me.tid);
    return err;
  }
  // Contended: enter the deterministic reservation order and sleep; the
  // releaser hands the lock over FIFO.
  if (fresh) CloseSlice(me);
  m.waiters.push_back(me.tid);
  SetBlocked(me, BlockKind::kMutex, id);
  const uint32_t baseline = me.wake_seq.load(std::memory_order_acquire);
  if (options_.prelock && options_.isolation) {
    PrelockPropagate(me, m);  // pauses the Kendo clock internally
  } else {
    kendo_.Pause(me.tid);
  }
  Block(me, baseline);
  // We own the lock now (hand-off). Finish the residual propagation from
  // the actual release.
  PropagateFrom(me, me.mail_src, me.mail_time, /*prelock_phase=*/false);
  {
    std::scoped_lock lock(me.clock_mu);
    me.held_mutexes.push_back(id);
  }
  return RfdetErrc::kOk;
}

RfdetErrc RfdetRuntime::MutexLock(size_t id) {
  ThreadCtx& me = Ctx();
  stats_.locks.fetch_add(1, std::memory_order_relaxed);
  PrepareSlice(me);
  return LockCore(me, id, Var(id, SyncVar::Kind::kMutex), /*fresh=*/true);
}

void RfdetRuntime::MutexUnlock(size_t id) {
  ThreadCtx& me = Ctx();
  stats_.unlocks.fetch_add(1, std::memory_order_relaxed);
  SyncVar& m = Var(id, SyncVar::Kind::kMutex);
  PrepareSlice(me);
  kendo_.WaitForTurn(me.tid);
  RFDET_CHECK_MSG(m.locked && m.owner == me.tid, "unlock of unowned mutex");
  CloseSlice(me);
  ReleasePublish(me, m);
  Record(TraceOp::kUnlock, me.tid, id);
  {
    std::scoped_lock lock(me.clock_mu);
    me.held_mutexes.erase(std::find(me.held_mutexes.begin(),
                                    me.held_mutexes.end(), id));
  }
  if (!m.waiters.empty()) {
    const size_t next = m.waiters.front();
    m.waiters.erase(m.waiters.begin());
    m.owner = next;  // hand-off: stays locked
    Wake(me, CtxOf(next), /*delta=*/1, me.tid, m.last_time);
    Record(TraceOp::kLockAcquired, next, id);
  } else {
    m.locked = false;
    m.owner = kNone;
  }
  kendo_.Tick(me.tid);
}

// ---------------------------------------------------------------------------
// Condition variables
// ---------------------------------------------------------------------------

RfdetErrc RfdetRuntime::CondWait(size_t cond_id, size_t mutex_id) {
  ThreadCtx& me = Ctx();
  stats_.cond_waits.fetch_add(1, std::memory_order_relaxed);
  SyncVar& c = Var(cond_id, SyncVar::Kind::kCond);
  SyncVar& m = Var(mutex_id, SyncVar::Kind::kMutex);
  PrepareSlice(me);
  kendo_.WaitForTurn(me.tid);
  RFDET_CHECK_MSG(m.locked && m.owner == me.tid,
                  "cond wait without holding the mutex");
  // Waiting with nobody left to signal is a provable stall. Checked before
  // any state changes: on kDeadlock the caller still holds the mutex and
  // is not enqueued — a clean no-op failure, like pthread EDEADLK.
  if (const RfdetErrc err =
          CheckBlockPermitted(me, BlockKind::kCond, cond_id, mutex_id,
                              /*can_back_out=*/true);
      err != RfdetErrc::kOk) {
    kendo_.Tick(me.tid);
    return err;
  }
  CloseSlice(me);
  ReleasePublish(me, m);  // the embedded unlock is a release
  Record(TraceOp::kCondEnterWait, me.tid, cond_id);
  const uint32_t baseline = me.wake_seq.load(std::memory_order_acquire);
  c.cond_waiters.push_back(me.tid);
  {
    std::scoped_lock lock(me.clock_mu);
    me.held_mutexes.erase(std::find(me.held_mutexes.begin(),
                                    me.held_mutexes.end(), mutex_id));
  }
  // Release the mutex (with deterministic hand-off), atomically with the
  // enqueue — we hold the turn, so no wakeup can be lost.
  if (!m.waiters.empty()) {
    const size_t next = m.waiters.front();
    m.waiters.erase(m.waiters.begin());
    m.owner = next;
    Wake(me, CtxOf(next), /*delta=*/1, me.tid, m.last_time);
    Record(TraceOp::kLockAcquired, next, mutex_id);
  } else {
    m.locked = false;
    m.owner = kNone;
  }
  SetBlocked(me, BlockKind::kCond, cond_id);
  kendo_.Pause(me.tid);
  Block(me, baseline);
  // Signalled: the signal is the paired release (paper §4.1).
  PropagateFrom(me, me.mail_src, me.mail_time, /*prelock_phase=*/false);
  // Re-acquire the mutex; our slice is already closed.
  return LockCore(me, mutex_id, m, /*fresh=*/false);
}

void RfdetRuntime::CondSignal(size_t cond_id) {
  ThreadCtx& me = Ctx();
  stats_.cond_signals.fetch_add(1, std::memory_order_relaxed);
  SyncVar& c = Var(cond_id, SyncVar::Kind::kCond);
  PrepareSlice(me);
  kendo_.WaitForTurn(me.tid);
  CloseSlice(me);
  ReleasePublish(me, c);
  Record(TraceOp::kSignal, me.tid, cond_id);
  if (!c.cond_waiters.empty()) {
    const size_t w = c.cond_waiters.front();
    c.cond_waiters.erase(c.cond_waiters.begin());
    Wake(me, CtxOf(w), /*delta=*/1, me.tid, c.last_time);
  }
  kendo_.Tick(me.tid);
}

void RfdetRuntime::CondBroadcast(size_t cond_id) {
  ThreadCtx& me = Ctx();
  stats_.cond_signals.fetch_add(1, std::memory_order_relaxed);
  SyncVar& c = Var(cond_id, SyncVar::Kind::kCond);
  PrepareSlice(me);
  kendo_.WaitForTurn(me.tid);
  CloseSlice(me);
  ReleasePublish(me, c);
  Record(TraceOp::kBroadcast, me.tid, cond_id);
  // FIFO wakeup; ascending clock deltas keep the wait-queue order as the
  // deterministic re-acquisition order.
  uint64_t delta = 1;
  for (const size_t w : c.cond_waiters) {
    Wake(me, CtxOf(w), delta++, me.tid, c.last_time);
  }
  c.cond_waiters.clear();
  kendo_.Tick(me.tid);
}

// ---------------------------------------------------------------------------
// Low-level atomics (§4.6)
// ---------------------------------------------------------------------------

RfdetRuntime::SyncVar& RfdetRuntime::AtomicVar(GAddr addr) {
  // Called with the turn held: first-touch creation order is deterministic.
  std::scoped_lock lock(sync_vars_mu_);
  const auto it = atomic_vars_.find(addr);
  if (it != atomic_vars_.end()) return sync_vars_[it->second];
  const size_t id = sync_vars_.size();
  sync_vars_.emplace_back(SyncVar::Kind::kMutex);  // storage only
  atomic_vars_.emplace(addr, id);
  return sync_vars_[id];
}

uint64_t RfdetRuntime::RawLoad64(ThreadCtx& me, GAddr addr) {
  uint64_t v = 0;
  if (options_.isolation) {
    me.view->Load(addr, &v, sizeof v);
  } else {
    std::memcpy(&v, shared_image_.get() + addr, sizeof v);
  }
  return v;
}

void RfdetRuntime::RawStore64(ThreadCtx& me, GAddr addr, uint64_t value) {
  if (options_.isolation) {
    me.view->Store(addr, &value, sizeof value);
  } else {
    std::memcpy(shared_image_.get() + addr, &value, sizeof value);
  }
}

uint64_t RfdetRuntime::AtomicLoad(GAddr addr) {
  ThreadCtx& me = Ctx();
  PrepareSlice(me);
  kendo_.WaitForTurn(me.tid);
  SyncVar& sv = AtomicVar(addr);
  Record(TraceOp::kAtomic, me.tid, addr);
  CloseSlice(me);
  AcquireFrom(me, sv);  // an atomic load is an acquire
  const uint64_t v = RawLoad64(me, addr);
  kendo_.Tick(me.tid);
  return v;
}

void RfdetRuntime::AtomicStore(GAddr addr, uint64_t value) {
  ThreadCtx& me = Ctx();
  PrepareSlice(me);
  kendo_.WaitForTurn(me.tid);
  SyncVar& sv = AtomicVar(addr);
  Record(TraceOp::kAtomic, me.tid, addr);
  CloseSlice(me);
  RawStore64(me, addr, value);
  CloseSlice(me);  // the store must be inside the released slice
  ReleasePublish(me, sv);
  kendo_.Tick(me.tid);
}

uint64_t RfdetRuntime::AtomicFetchAdd(GAddr addr, uint64_t delta) {
  ThreadCtx& me = Ctx();
  PrepareSlice(me);
  kendo_.WaitForTurn(me.tid);
  SyncVar& sv = AtomicVar(addr);
  Record(TraceOp::kAtomic, me.tid, addr);
  CloseSlice(me);
  AcquireFrom(me, sv);  // read-modify-write: acquire …
  const uint64_t old = RawLoad64(me, addr);
  RawStore64(me, addr, old + delta);
  CloseSlice(me);
  ReleasePublish(me, sv);  // … and release
  kendo_.Tick(me.tid);
  return old;
}

bool RfdetRuntime::AtomicCas(GAddr addr, uint64_t& expected,
                             uint64_t desired) {
  ThreadCtx& me = Ctx();
  PrepareSlice(me);
  kendo_.WaitForTurn(me.tid);
  SyncVar& sv = AtomicVar(addr);
  Record(TraceOp::kAtomic, me.tid, addr);
  CloseSlice(me);
  AcquireFrom(me, sv);
  const uint64_t old = RawLoad64(me, addr);
  const bool success = old == expected;
  if (success) {
    RawStore64(me, addr, desired);
    CloseSlice(me);
    ReleasePublish(me, sv);  // only a successful CAS releases
  } else {
    expected = old;
  }
  kendo_.Tick(me.tid);
  return success;
}

// ---------------------------------------------------------------------------
// Barriers
// ---------------------------------------------------------------------------

RfdetErrc RfdetRuntime::BarrierWait(size_t id) {
  ThreadCtx& me = Ctx();
  stats_.barriers.fetch_add(1, std::memory_order_relaxed);
  SyncVar& b = Var(id, SyncVar::Kind::kBarrier);
  PrepareSlice(me);
  kendo_.WaitForTurn(me.tid);
  // Unreachable through the public API in a correct runtime (an arrived
  // thread is paused until the cycle completes), but cheap to rule out.
  RFDET_CHECK_MSG(std::find(b.arrived.begin(), b.arrived.end(), me.tid) ==
                      b.arrived.end(),
                  "barrier re-entered before the cycle completed");
  if (b.arrived.size() + 1 < b.parties) {
    // We would block. A provable stall here means the barrier can never
    // fill — e.g. a party already blocked on a mutex we hold.
    if (const RfdetErrc err =
            CheckBlockPermitted(me, BlockKind::kBarrier, id, kNone,
                                /*can_back_out=*/true);
        err != RfdetErrc::kOk) {
      kendo_.Tick(me.tid);
      return err;
    }
  }
  CloseSlice(me);
  Record(TraceOp::kBarrierArrive, me.tid, id);
  b.arrived.push_back(me.tid);
  if (b.arrived.size() < b.parties) {
    SetBlocked(me, BlockKind::kBarrier, id);
    const uint32_t baseline = me.wake_seq.load(std::memory_order_acquire);
    kendo_.Pause(me.tid);
    Block(me, baseline);
    // The last arriver performed the merge and updated our view, log and
    // vector clock while we were blocked; nothing left to do.
    return RfdetErrc::kOk;
  }
  // Last arriver: perform the deterministic merge (paper §4.1 "Barriers").
  std::vector<size_t> group = std::move(b.arrived);
  b.arrived.clear();
  std::sort(group.begin(), group.end());
  ThreadCtx& root = CtxOf(group.front());
  if (options_.isolation) {
    // Merge every arriving thread's happens-before-barrier slices into the
    // smallest-tid thread, in tid order.
    for (const size_t u : group) {
      if (u == root.tid) continue;
      VectorClock upper;
      {
        std::scoped_lock lock(CtxOf(u).clock_mu);
        upper = CtxOf(u).vclock;
      }
      PropagateFrom(root, u, upper, /*prelock_phase=*/false);
    }
    root.view->FlushPending();
    // Everyone leaves with a (COW) copy of the merge thread's memory,
    // slice list and vector clock.
    for (const size_t u : group) {
      if (u == root.tid) continue;
      ThreadCtx& ctx = CtxOf(u);
      ctx.view->CopyFrom(*root.view);
      ctx.log.AssignFrom(root.log);
      std::scoped_lock lock(ctx.clock_mu, root.clock_mu);
      ctx.vclock = root.vclock;
      ctx.turn_time = root.vclock;
    }
    {
      std::scoped_lock lock(root.clock_mu);
      root.turn_time = root.vclock;
    }
  }
  Record(TraceOp::kBarrierRelease, me.tid, id);
  // Resume the blocked arrivers with deterministic clocks, tid order.
  uint64_t delta = 1;
  for (const size_t u : group) {
    if (u == me.tid) continue;
    Wake(me, CtxOf(u), delta++, kNone, VectorClock{});
  }
  kendo_.Tick(me.tid);
  return RfdetErrc::kOk;
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

void RfdetRuntime::WorkerMain(ThreadCtx& ctx, std::function<void()> fn) {
  g_tls = {this, &ctx};
  if (options_.isolation) ctx.view->ActivateOnThisThread();
  fn();
  ThreadExit(ctx);
  if (options_.isolation) ThreadView::DeactivateOnThisThread();
  g_tls = {nullptr, nullptr};
}

RfdetErrc RfdetRuntime::TrySpawn(std::function<void()> fn, size_t* out_tid) {
  ThreadCtx& me = Ctx();
  stats_.forks.fetch_add(1, std::memory_order_relaxed);
  PrepareSlice(me);
  kendo_.WaitForTurn(me.tid);
  // Thread creation is a release whose paired acquire is the child's entry
  // point; the child inherits the parent's memory, so no propagation is
  // needed (paper §4.1 "Thread Create and Join").
  CloseSlice(me);

  FaultInjector* fi = options_.fault_injector;
  const bool injected = fi != nullptr && fi->ShouldFail(FaultSite::kSpawn);
  size_t tid;
  ThreadCtx* child = nullptr;
  {
    std::scoped_lock lock(threads_mu_);
    tid = threads_.size();
    if (!injected && tid < options_.max_threads) {
      threads_.push_back(std::make_unique<ThreadCtx>());
      child = threads_.back().get();
    }
  }
  if (child == nullptr) {
    stats_.spawn_failures.fetch_add(1, std::memory_order_relaxed);
    ReportError(RfdetErrc::kAgain,
                injected ? "spawn failed (injected fault)"
                         : "spawn failed: max_threads (" +
                               std::to_string(options_.max_threads) +
                               ") reached");
    kendo_.Tick(me.tid);
    return RfdetErrc::kAgain;
  }
  child->tid = tid;
  {
    std::scoped_lock lock(me.clock_mu);
    child->vclock = me.vclock;
    child->turn_time = me.vclock;
  }
  if (options_.isolation) {
    child->view = std::make_unique<ThreadView>(
        options_.region_bytes, options_.monitor, &arena_,
        options_.fault_injector, TrackReads());
    child->view->CopyFrom(*me.view);
    child->log.AssignFrom(me.log);
  }
  const size_t ktid = kendo_.RegisterThread(kendo_.Clock(me.tid) + 1);
  RFDET_CHECK(ktid == tid);
  try {
    child->worker = std::thread([this, child, fn = std::move(fn)]() mutable {
      WorkerMain(*child, std::move(fn));
    });
  } catch (const std::system_error&) {
    // The OS refused the host thread. Roll back under the turn: no other
    // thread can have observed the registration between claim and here.
    kendo_.UnregisterLast(tid);
    {
      std::scoped_lock lock(threads_mu_);
      threads_.pop_back();
    }
    stats_.spawn_failures.fetch_add(1, std::memory_order_relaxed);
    ReportError(RfdetErrc::kAgain,
                "spawn failed: host thread creation refused");
    kendo_.Tick(me.tid);
    return RfdetErrc::kAgain;
  }
  Record(TraceOp::kFork, me.tid, tid);
  kendo_.Tick(me.tid);
  *out_tid = tid;
  return RfdetErrc::kOk;
}

size_t RfdetRuntime::Spawn(std::function<void()> fn) {
  size_t tid = kNone;
  const RfdetErrc err = TrySpawn(std::move(fn), &tid);
  RFDET_CHECK_MSG(err == RfdetErrc::kOk, "max_threads exceeded");
  return tid;
}

void RfdetRuntime::ThreadExit(ThreadCtx& me) {
  PrepareSlice(me);
  kendo_.WaitForTurn(me.tid);
  CloseSlice(me);
  {
    std::scoped_lock lock(me.clock_mu);
    me.final_clock = me.vclock;
  }
  Record(TraceOp::kExit, me.tid, kNone);
  const size_t joiner = me.joiner;
  me.finished.store(true, std::memory_order_release);
  if (joiner != kNone) {
    Wake(me, CtxOf(joiner), /*delta=*/1, me.tid, me.final_clock);
    Record(TraceOp::kJoin, joiner, me.tid);
  }
  kendo_.Exit(me.tid);
}

RfdetErrc RfdetRuntime::Join(size_t tid) {
  ThreadCtx& me = Ctx();
  stats_.joins.fetch_add(1, std::memory_order_relaxed);
  RFDET_CHECK_MSG(tid < threads_.size() && tid != me.tid, "bad join target");
  ThreadCtx& target = CtxOf(tid);
  RFDET_CHECK_MSG(!target.joined, "double join");
  PrepareSlice(me);
  kendo_.WaitForTurn(me.tid);
  if (!target.finished.load(std::memory_order_acquire)) {
    // We would block on the target: a join cycle (or joining while every
    // other thread is blocked) is a provable deadlock.
    if (const RfdetErrc err =
            CheckBlockPermitted(me, BlockKind::kJoin, tid, kNone,
                                /*can_back_out=*/true);
        err != RfdetErrc::kOk) {
      kendo_.Tick(me.tid);
      return err;
    }
  }
  CloseSlice(me);
  if (target.finished.load(std::memory_order_acquire)) {
    VectorClock upper;
    {
      std::scoped_lock lock(target.clock_mu);
      upper = target.final_clock;
    }
    PropagateFrom(me, tid, upper, /*prelock_phase=*/false);
    {
      std::scoped_lock lock(me.clock_mu);
      me.turn_time = me.vclock;
    }
    Record(TraceOp::kJoin, me.tid, tid);
    kendo_.Tick(me.tid);
  } else {
    RFDET_CHECK_MSG(target.joiner == kNone, "concurrent join");
    target.joiner = me.tid;
    SetBlocked(me, BlockKind::kJoin, tid);
    const uint32_t baseline = me.wake_seq.load(std::memory_order_acquire);
    kendo_.Pause(me.tid);
    Block(me, baseline);
    PropagateFrom(me, me.mail_src, me.mail_time, /*prelock_phase=*/false);
  }
  target.joined = true;
  if (target.worker.joinable()) target.worker.join();
  return RfdetErrc::kOk;
}

size_t RfdetRuntime::CurrentTid() const { return Ctx().tid; }

// ---------------------------------------------------------------------------
// Sync object creation
// ---------------------------------------------------------------------------

size_t RfdetRuntime::CreateMutex() {
  ThreadCtx& me = Ctx();
  kendo_.WaitForTurn(me.tid);
  size_t id;
  {
    std::scoped_lock lock(sync_vars_mu_);
    id = sync_vars_.size();
    sync_vars_.emplace_back(SyncVar::Kind::kMutex);
  }
  kendo_.Tick(me.tid);
  return id;
}

size_t RfdetRuntime::CreateCond() {
  ThreadCtx& me = Ctx();
  kendo_.WaitForTurn(me.tid);
  size_t id;
  {
    std::scoped_lock lock(sync_vars_mu_);
    id = sync_vars_.size();
    sync_vars_.emplace_back(SyncVar::Kind::kCond);
  }
  kendo_.Tick(me.tid);
  return id;
}

size_t RfdetRuntime::CreateBarrier(size_t parties) {
  RFDET_CHECK(parties > 0);
  ThreadCtx& me = Ctx();
  kendo_.WaitForTurn(me.tid);
  size_t id;
  {
    std::scoped_lock lock(sync_vars_mu_);
    id = sync_vars_.size();
    sync_vars_.emplace_back(SyncVar::Kind::kBarrier);
    sync_vars_.back().parties = parties;
  }
  kendo_.Tick(me.tid);
  return id;
}

// ---------------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------------

void RfdetRuntime::MaybeRunGc() {
  if (!options_.isolation) return;
  size_t cooldown = gc_cooldown_.load(std::memory_order_relaxed);
  if (cooldown > 0) {
    gc_cooldown_.store(cooldown - 1, std::memory_order_relaxed);
    return;
  }
  if (!arena_.NeedsGc()) return;
  std::unique_lock lock(gc_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // another thread is already collecting
  if (!arena_.NeedsGc()) return;
  const size_t pruned = RunGc();
  if (arena_.NeedsGc() && pruned == 0) {
    // Nothing collectable (paper §5.4: slices can outgrow the metadata
    // space when threads rarely synchronize); back off to avoid a storm.
    gc_cooldown_.store(4096, std::memory_order_relaxed);
  }
}

size_t RfdetRuntime::RunGc() {
  // A slice is garbage once its time is ≤ every live thread's clock: it
  // has then been merged into every private memory (paper §4.5).
  VectorClock bound;
  bool first = true;
  {
    std::scoped_lock lock(threads_mu_);
    for (const auto& ctx : threads_) {
      if (ctx->finished.load(std::memory_order_acquire)) continue;
      std::scoped_lock clock_lock(ctx->clock_mu);
      if (first) {
        bound = ctx->vclock;
        first = false;
      } else {
        bound.Meet(ctx->vclock);
      }
    }
  }
  if (first) return 0;  // no live threads (teardown)
  size_t pruned = 0;
  {
    std::scoped_lock lock(threads_mu_);
    for (const auto& ctx : threads_) {
      pruned += ctx->log.Prune(bound);
    }
  }
  // Race-window entries with time ≤ bound can never be concurrent with a
  // future slice: retiring them here cannot change the race set, so GC
  // timing stays irrelevant to the deterministic reports.
  if (race_detector_ != nullptr) race_detector_->Retire(bound);
  arena_.RecordGc();
  stats_.slices_pruned.fetch_add(pruned, std::memory_order_relaxed);
  return pruned;
}

size_t RfdetRuntime::ForceGc() {
  std::scoped_lock lock(gc_mu_);
  return RunGc();
}

// ---------------------------------------------------------------------------
// Failure reporting / diagnostics
// ---------------------------------------------------------------------------

void RfdetRuntime::ReportError(RfdetErrc errc, const std::string& what) {
  if (options_.on_error) {
    options_.on_error(errc, what);
    return;
  }
  // No sink installed: note each error code once on stderr (the caller
  // still gets the structured status; this is just so a silently ignored
  // status leaves a trace).
  const uint32_t bit = 1u << static_cast<uint32_t>(errc);
  if (error_note_mask_.fetch_or(bit, std::memory_order_relaxed) & bit) return;
  std::fprintf(stderr, "rfdet: error (%s): %s\n", ErrcName(errc),
               what.c_str());
}

// ---------------------------------------------------------------------------
// Determinism self-verification
// ---------------------------------------------------------------------------

uint64_t RfdetRuntime::RegionDigest() {
  // Level 3 of the fingerprint hierarchy: the static segment, where
  // workloads place their shared output. Reads go through the main view
  // (plain loads — no ticks, no schedule perturbation), so lazily parked
  // runs are resolved the same way the workload's own reads would.
  const size_t n = options_.static_bytes;
  if (!options_.isolation) {
    return ExecutionFingerprint::HashBytes(shared_image_.get(), n);
  }
  ThreadView& view = *threads_[0]->view;
  std::vector<std::byte> buf(kPageSize);
  uint64_t h = kFnvOffset;
  for (size_t off = 0; off < n; off += kPageSize) {
    const size_t chunk = std::min(kPageSize, n - off);
    view.Load(off, buf.data(), chunk);
    h = ExecutionFingerprint::HashBytes(buf.data(), chunk, h);
  }
  return h;
}

uint64_t RfdetRuntime::FinalizeFingerprint() {
  if (fingerprint_ == nullptr ||
      options_.fingerprint == FingerprintMode::kOff) {
    return 0;
  }
  uint64_t region = RegionDigest();
  if (race_detector_ != nullptr) {
    // Fold the detection-order race digest into the rollup: a kVerify
    // run whose race set diverges from the recording fails verification
    // even if the region contents happen to agree.
    const uint64_t races = race_detector_->Digest();
    region = ExecutionFingerprint::HashBytes(&races, sizeof races, region);
  }
  return fingerprint_->Finalize(region);
}

std::string RfdetRuntime::LastDivergenceReport() const {
  return fingerprint_ != nullptr ? fingerprint_->LastDivergenceReport() : "";
}

void RfdetRuntime::UpdateTurnFingerprint(ThreadCtx& t) {
  uint64_t events;
  uint64_t epochs;
  uint64_t chain;
  fingerprint_->ThreadProgress(t.tid, &events, &epochs, &chain);
  std::scoped_lock lock(t.clock_mu);
  t.turn_fp_events = events;
  t.turn_fp_epochs = epochs;
}

void RfdetRuntime::ParanoiaFailure(const std::string& what) {
  stats_.paranoia_failures.fetch_add(1, std::memory_order_relaxed);
  // fingerprint_ exists whenever dlrc_paranoia is set (see constructor);
  // the divergence sink provides report retention, the tap, and policy.
  fingerprint_->RaiseDivergence("rfdet: DIVERGENCE: dlrc_paranoia: " + what +
                                "\n");
}

void RfdetRuntime::ParanoiaCheckMods(const ThreadCtx& t,
                                     const ModList& mods) {
  const std::string who = "slice of thread " + std::to_string(t.tid);
  size_t total = 0;
  for (const ModRun& run : mods.Runs()) {
    if (run.len == 0) {
      ParanoiaFailure(who + " has an empty modification run");
      return;
    }
    if (static_cast<size_t>(run.data_offset) + run.len > mods.ByteCount()) {
      ParanoiaFailure(who + " has a run whose payload [" +
                      std::to_string(run.data_offset) + ", +" +
                      std::to_string(run.len) +
                      ") lies outside the diff data");
      return;
    }
    if (run.addr + run.len > options_.region_bytes) {
      ParanoiaFailure(who + " modifies bytes beyond the shared region (addr " +
                      std::to_string(run.addr) + ", len " +
                      std::to_string(run.len) + ")");
      return;
    }
    total += run.len;
  }
  if (total != mods.ByteCount()) {
    ParanoiaFailure(who + " run lengths sum to " + std::to_string(total) +
                    " but the diff payload is " +
                    std::to_string(mods.ByteCount()) + " bytes");
  }
}

uint64_t RfdetRuntime::ProgressFingerprint() const noexcept {
  // Fold every Kendo clock slot (FNV-style). Any turn transition — tick,
  // pause, resume, register — changes some slot, so a constant fingerprint
  // over a window means the schedule is stalled. Reads are racy on
  // purpose: the watchdog must never synchronize with the schedule.
  const size_t n = kendo_.ThreadCount();
  uint64_t h = 0xcbf29ce484222325ULL ^ n;
  for (size_t t = 0; t < n; ++t) {
    h = (h ^ kendo_.Clock(t)) * 0x100000001b3ULL;
  }
  return h;
}

std::string RfdetRuntime::DumpStateReport() const {
  std::ostringstream os;
  os << "=== rfdet state report ===\n";
  {
    std::scoped_lock lock(threads_mu_);
    for (const auto& ctx : threads_) {
      const ThreadCtx& t = *ctx;
      os << "thread " << t.tid << ": ";
      if (t.finished.load(std::memory_order_acquire)) {
        os << "finished";
      } else if (kendo_.IsPaused(t.tid)) {
        os << "paused (saved kendo clock " << kendo_.SavedClock(t.tid)
           << ")";
      } else {
        os << "kendo clock " << kendo_.Clock(t.tid);
      }
      BlockKind kind;
      size_t object;
      std::string held;
      VectorClock vclock;
      {
        std::scoped_lock cl(t.clock_mu);
        kind = t.block_kind;
        object = t.block_object;
        held = JoinTids(t.held_mutexes);
        vclock = t.vclock;
      }
      if (kind != BlockKind::kNone) {
        os << ", blocked on " << BlockDesc(kind, object);
      }
      os << ", holds mutexes [" << held << "], vclock " << vclock << "\n";
    }
  }
  {
    // Queue contents are mutated under turns without sync_vars_mu_; these
    // reads are diagnostics-grade (the interesting case — a stalled
    // schedule — has no concurrent mutator anyway).
    std::scoped_lock lock(sync_vars_mu_);
    for (size_t id = 0; id < sync_vars_.size(); ++id) {
      const SyncVar& v = sync_vars_[id];
      os << "sync " << id << ": ";
      switch (v.kind) {
        case SyncVar::Kind::kMutex:
          os << "mutex " << (v.locked ? "locked" : "unlocked");
          if (v.owner != kNone) os << " owner=" << v.owner;
          os << " waiters=[" << JoinTids(v.waiters) << "]";
          break;
        case SyncVar::Kind::kCond:
          os << "cond waiters=[" << JoinTids(v.cond_waiters) << "]";
          break;
        case SyncVar::Kind::kBarrier:
          os << "barrier parties=" << v.parties << " arrived=["
             << JoinTids(v.arrived) << "]";
          break;
      }
      os << "\n";
    }
  }
  os << "arena: used " << arena_.Used() << " / " << arena_.Capacity()
     << " bytes, peak " << arena_.Peak() << ", gc count "
     << arena_.GcCount() << "\n";
  os << "kernels: " << simd::KernelTierName(simd::Kernels().tier)
     << ", off-turn close "
     << (options_.off_turn_close ? "enabled" : "disabled") << " ("
     << stats_.offturn_prepared_slices.load(std::memory_order_relaxed)
     << " slices, "
     << stats_.offturn_prepared_bytes.load(std::memory_order_relaxed)
     << " bytes prepared off turn, "
     << stats_.close_turn_ns.load(std::memory_order_relaxed)
     << " ns closing under the turn)\n";
  if (fingerprint_ != nullptr) os << fingerprint_->ProgressSummary();
  if (race_detector_ != nullptr) os << race_detector_->Summary();
  if (options_.record_trace) {
    const std::vector<TraceEvent> events = Trace();
    const uint64_t dropped =
        stats_.trace_dropped.load(std::memory_order_relaxed);
    const size_t n = events.size();
    const size_t start = n > 16 ? n - 16 : 0;
    os << "trace tail (" << (n - start) << " of " << n << " buffered, "
       << dropped << " dropped):\n";
    for (size_t i = start; i < n; ++i) {
      const TraceEvent& e = events[i];
      // Index in the full schedule, counting ring-evicted events.
      os << "  [" << (dropped + i) << "] tid " << e.tid << " "
         << TraceOpName(e.op);
      if (e.object != kNone) os << " obj " << e.object;
      os << " clock " << e.kendo_clock << "\n";
    }
  }
  os << "=== end state report ===\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

void RfdetRuntime::Record(TraceOp op, size_t acting_tid, size_t object) {
  const bool fp = fingerprint_ != nullptr && fingerprint_->Absorbing();
  const bool skew =
      options_.test_mutation.kind == DetMutation::Kind::kSkewKendoTick;
  if (!options_.record_trace && !fp && !skew) return;
  const uint64_t raw = kendo_.Clock(acting_tid);
  const bool paused = raw == KendoEngine::kPaused;
  const uint64_t clock = paused ? kendo_.SavedClock(acting_tid) : raw;
  if (fp) {
    fingerprint_->OnSyncOp(acting_tid, static_cast<uint8_t>(op),
                           TraceOpName(op), object, clock);
  }
  // Test-only schedule skew: one extra tick at the target's index-th
  // self-recorded, non-paused op. Self-recorded only (not events a waker
  // records on a granted waiter's behalf — the waiter may already be
  // running, so ticking it here would race), and non-paused only (ticking
  // a paused slot would corrupt the kPaused sentinel). Both conditions are
  // themselves deterministic, so the counter is too.
  if (skew && !paused && acting_tid == options_.test_mutation.tid &&
      g_tls.ctx == &CtxOf(acting_tid) &&
      CtxOf(acting_tid).fp_sync_ops++ == options_.test_mutation.index) {
    kendo_.Tick(acting_tid, 1);
  }
  if (!options_.record_trace) return;
  const TraceEvent event{acting_tid, op, object, clock};
  std::scoped_lock lock(trace_mu_);
  if (trace_.size() < options_.trace_limit) {
    const size_t before = trace_.capacity();
    trace_.push_back(event);
    if (trace_.capacity() != before) {
      const size_t delta =
          (trace_.capacity() - before) * sizeof(TraceEvent);
      arena_.Charge(delta);
      trace_charged_ += delta;
    }
    return;
  }
  // Ring full: overwrite the oldest event.
  trace_[trace_next_] = event;
  trace_next_ = (trace_next_ + 1) % trace_.size();
  stats_.trace_dropped.fetch_add(1, std::memory_order_relaxed);
}

std::vector<RfdetRuntime::TraceEvent> RfdetRuntime::Trace() const {
  std::scoped_lock lock(trace_mu_);
  // Reassemble schedule order: the ring's oldest event is at trace_next_
  // once the buffer has wrapped.
  std::vector<TraceEvent> out;
  out.reserve(trace_.size());
  for (size_t i = 0; i < trace_.size(); ++i) {
    out.push_back(trace_[(trace_next_ + i) % trace_.size()]);
  }
  return out;
}

size_t RfdetRuntime::LiveSliceCount() const {
  size_t n = 0;
  std::scoped_lock lock(threads_mu_);
  for (const auto& ctx : threads_) n += ctx->log.Size();
  return n;
}

StatsSnapshot RfdetRuntime::Snapshot() const {
  StatsSnapshot s;
  s.locks = stats_.locks.load();
  s.unlocks = stats_.unlocks.load();
  s.cond_waits = stats_.cond_waits.load();
  s.cond_signals = stats_.cond_signals.load();
  s.barriers = stats_.barriers.load();
  s.forks = stats_.forks.load();
  s.joins = stats_.joins.load();
  s.slices_created = stats_.slices_created.load();
  s.slices_merged = stats_.slices_merged.load();
  s.slices_propagated = stats_.slices_propagated.load();
  s.apply_plans_built = stats_.apply_plans_built.load();
  s.bytes_propagated = stats_.bytes_propagated.load();
  s.prelock_slices = stats_.prelock_slices.load();
  s.prelock_bytes = stats_.prelock_bytes.load();
  s.slices_pruned = stats_.slices_pruned.load();
  s.offturn_prepared_slices = stats_.offturn_prepared_slices.load();
  s.offturn_prepared_bytes = stats_.offturn_prepared_bytes.load();
  s.close_turn_ns = stats_.close_turn_ns.load();
  s.gc_count = arena_.GcCount();
  s.metadata_peak_bytes = arena_.Peak();
  s.deadlocks_detected = stats_.deadlocks_detected.load();
  s.watchdog_stalls = stats_.watchdog_stalls.load();
  s.arena_gc_retries = stats_.arena_gc_retries.load();
  s.metadata_overflows = stats_.metadata_overflows.load();
  s.alloc_failures = stats_.alloc_failures.load();
  s.spawn_failures = stats_.spawn_failures.load();
  s.trace_dropped = stats_.trace_dropped.load();
  s.paranoia_failures = stats_.paranoia_failures.load();
  if (fingerprint_ != nullptr) {
    s.fingerprint_events = fingerprint_->Events();
    s.fingerprint_epochs = fingerprint_->Epochs();
    s.fingerprint_divergences = fingerprint_->Divergences();
    s.fingerprint_io_errors = fingerprint_->IoErrors();
  }
  if (race_detector_ != nullptr) {
    s.races_ww = race_detector_->RacesWW();
    s.races_rw_pages = race_detector_->RacesRWPages();
    s.race_checks = race_detector_->Checks();
    s.race_prefilter_hits = race_detector_->PrefilterHits();
    s.race_window_evictions = race_detector_->WindowEvictions();
  }
  std::scoped_lock lock(threads_mu_);
  for (const auto& ctx : threads_) {
    s.loads += ctx->loads.load(std::memory_order_relaxed);
    s.stores += ctx->stores.load(std::memory_order_relaxed);
    if (ctx->view) {
      const ViewStats& v = ctx->view->Stats();
      s.stores_with_copy += v.stores_with_copy;
      s.page_faults += v.page_faults;
      s.mprotect_calls += v.mprotect_calls;
      s.pages_diffed += v.pages_diffed;
      s.lazy_runs_parked += v.lazy_runs_parked;
      s.lazy_runs_coalesced += v.lazy_runs_coalesced;
      s.lazy_pages_applied += v.lazy_pages_applied;
      s.planned_applies += v.planned_applies;
      s.resident_bytes += ctx->view->ResidentBytes();
    }
  }
  if (!options_.isolation) s.resident_bytes = options_.region_bytes;
  return s;
}

}  // namespace rfdet
