#include "rfdet/runtime/runtime.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <system_error>

#include "rfdet/common/wire.h"
#include "rfdet/simd/kernels.h"

namespace rfdet {

namespace {

// Checkpoint-image helpers: vector clocks as dims + components.
void PutClock(std::string& out, const VectorClock& vc) {
  wire::PutU64(out, vc.Dims());
  for (size_t i = 0; i < vc.Dims(); ++i) wire::PutU64(out, vc.Get(i));
}

[[nodiscard]] bool GetClock(const std::string& in, size_t* pos,
                            VectorClock* out) {
  uint64_t dims;
  if (!wire::GetU64(in, pos, &dims) || dims > in.size() / 8) return false;
  VectorClock vc;
  for (uint64_t i = 0; i < dims; ++i) {
    uint64_t v;
    if (!wire::GetU64(in, pos, &v)) return false;
    if (v != 0) vc.Set(i, v);
  }
  *out = std::move(vc);
  return true;
}

[[nodiscard]] bool PageIsZero(const std::byte* p) {
  static constexpr std::byte kZeros[64] = {};
  for (size_t off = 0; off < kPageSize; off += sizeof kZeros) {
    if (std::memcmp(p + off, kZeros, sizeof kZeros) != 0) return false;
  }
  return true;
}

// Page-section terminator (no page id can be SIZE_MAX).
constexpr uint64_t kPageSentinel = ~0ull;

struct TlsBinding {
  RfdetRuntime* runtime = nullptr;
  void* ctx = nullptr;
};
thread_local TlsBinding g_tls;

// Runs option validation before any other member (arena, Kendo, allocator)
// is constructed from the values — the allocator in particular would
// otherwise fail deep inside segment carving with a much worse message.
const RfdetOptions& Validated(const RfdetOptions& options) {
  const std::string err = ValidateOptions(options);
  if (!err.empty()) {
    const std::string full = "invalid RfdetOptions: " + err;
    RFDET_CHECK_MSG(false, full.c_str());
  }
  return options;
}

std::string JoinTids(const std::vector<size_t>& tids) {
  std::string out;
  for (size_t i = 0; i < tids.size(); ++i) {
    if (i) out += ' ';
    out += std::to_string(tids[i]);
  }
  return out;
}

const char* TraceOpName(RfdetRuntime::TraceOp op) {
  switch (op) {
    case RfdetRuntime::TraceOp::kLockAcquired: return "lock";
    case RfdetRuntime::TraceOp::kUnlock: return "unlock";
    case RfdetRuntime::TraceOp::kCondEnterWait: return "cond-wait";
    case RfdetRuntime::TraceOp::kSignal: return "signal";
    case RfdetRuntime::TraceOp::kBroadcast: return "broadcast";
    case RfdetRuntime::TraceOp::kBarrierArrive: return "barrier-arrive";
    case RfdetRuntime::TraceOp::kBarrierRelease: return "barrier-release";
    case RfdetRuntime::TraceOp::kFork: return "fork";
    case RfdetRuntime::TraceOp::kJoin: return "join";
    case RfdetRuntime::TraceOp::kExit: return "exit";
    case RfdetRuntime::TraceOp::kAtomic: return "atomic";
  }
  return "?";
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

RfdetRuntime::RfdetRuntime(const RfdetOptions& options)
    : options_(Validated(options)),
      arena_(options_.metadata_bytes, options_.gc_threshold),
      kendo_(options_.max_threads),
      allocator_(DetAllocator::Config{
          .static_base = 16,
          .static_size = options_.static_bytes,
          // Leave page-alignment slack between the segments.
          .heap_size = options_.region_bytes - options_.static_bytes -
                       2 * kPageSize,
          .max_threads = options_.max_threads,
      }) {
  RFDET_CHECK_MSG(g_tls.runtime == nullptr,
                  "a runtime is already attached to this thread");
  // Kernel tier: the RFDET_KERNELS environment variable (debug knob) wins
  // over the option. A validated-but-unsupported option name (e.g. "avx2"
  // on a CPU without it) warns and keeps the current selection — all tiers
  // are byte-identical, so this is never a correctness decision.
  if (const char* env = std::getenv("RFDET_KERNELS");
      env != nullptr && *env != '\0') {
    if (!simd::SelectKernels(env).empty()) {
      std::fprintf(stderr,
                   "rfdet: ignoring RFDET_KERNELS=%s (unknown or "
                   "unsupported); using options.kernels\n",
                   env);
      (void)simd::SelectKernels(options_.kernels);
    }
  } else if (const std::string err = simd::SelectKernels(options_.kernels);
             !err.empty()) {
    std::fprintf(stderr, "rfdet: options.kernels: %s\n", err.c_str());
  }
  // Turn-wait mechanism: RFDET_TURN_WAIT (debug knob) wins over the
  // option, same contract as RFDET_KERNELS — every mode computes the
  // identical arbitration order, so this is never a correctness decision.
  // The pre-park hook drains the waiting thread's parked lazy-write runs
  // (thread-private deferred state) into the otherwise-idle gap before it
  // blocks, overlapping §4.5 propagation work with the wait.
  TurnWaitMode turn_wait = TurnWaitMode::kAdaptive;
  (void)ParseTurnWaitMode(options_.turn_wait, &turn_wait);  // validated
  if (const char* env = std::getenv("RFDET_TURN_WAIT");
      env != nullptr && *env != '\0') {
    if (!ParseTurnWaitMode(env, &turn_wait)) {
      std::fprintf(stderr,
                   "rfdet: ignoring RFDET_TURN_WAIT=%s (unknown); using "
                   "options.turn_wait\n",
                   env);
    }
  }
  // Executor grain: RFDET_EXEC_GRAIN (debug knob) wins over the option,
  // same contract as RFDET_KERNELS / RFDET_TURN_WAIT — chunking changes
  // which slices exist but not deterministic results for associative
  // reductions, so this is a tuning knob surfaced via ExecDefaults().
  if (const char* env = std::getenv("RFDET_EXEC_GRAIN");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0' && v <= (1ull << 31)) {
      options_.exec_grain = static_cast<size_t>(v);
    } else {
      std::fprintf(stderr,
                   "rfdet: ignoring RFDET_EXEC_GRAIN=%s (not a grain <= "
                   "2^31); using options.exec_grain\n",
                   env);
    }
  }
  // Propagation coalescing: RFDET_COALESCE (debug knob) wins over the
  // options, same contract as the overrides above — coalescing changes
  // only the physical copy on the acquire path, never the logical slice
  // stream, so this is a perf knob, not a semantic one. "0"/"off" and
  // "1"/"on" toggle propagate_coalesce; an integer in [2, 65536] enables
  // it with that batch floor.
  if (const char* env = std::getenv("RFDET_COALESCE");
      env != nullptr && *env != '\0') {
    const std::string v = env;
    if (v == "0" || v == "off") {
      options_.propagate_coalesce = false;
    } else if (v == "1" || v == "on") {
      options_.propagate_coalesce = true;
    } else {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(env, &end, 10);
      if (end != nullptr && *end == '\0' && n >= 2 && n <= (1ull << 16)) {
        options_.propagate_coalesce = true;
        options_.propagate_coalesce_min = static_cast<size_t>(n);
      } else {
        std::fprintf(stderr,
                     "rfdet: ignoring RFDET_COALESCE=%s (want 0/off, 1/on, "
                     "or a batch floor in [2, 65536]); using options\n",
                     env);
      }
    }
  }
  kendo_.ConfigureWait(turn_wait,
                       static_cast<uint32_t>(options_.turn_spin_budget),
                       [this](size_t tid) {
                         ThreadCtx& ctx = *threads_[tid];
                         if (ctx.view != nullptr) ctx.view->FlushPending();
                       });
  threads_.reserve(options_.max_threads);
  if (!options_.isolation) {
    shared_image_ = std::make_unique<std::byte[]>(options_.region_bytes);
    std::memset(shared_image_.get(), 0, options_.region_bytes);
  }

  auto main_ctx = std::make_unique<ThreadCtx>();
  main_ctx->tid = 0;
  if (options_.isolation) {
    main_ctx->view = std::make_unique<ThreadView>(
        options_.region_bytes, options_.monitor, &arena_,
        options_.fault_injector, TrackReads(),
        [this](RfdetErrc errc, const std::string& what) {
          ReportError(errc, what);
        });
    main_ctx->view->ActivateOnThisThread();
  }
  threads_.push_back(std::move(main_ctx));
  const size_t tid = kendo_.RegisterThread(1);
  RFDET_CHECK(tid == 0);
  g_tls = {this, threads_[0].get()};

  if (options_.fingerprint != FingerprintMode::kOff ||
      options_.dlrc_paranoia) {
    ExecutionFingerprint::Config fc;
    fc.mode = options_.fingerprint;
    fc.path = options_.fingerprint_path;
    fc.policy = options_.divergence_policy;
    fc.epoch_ops = options_.fingerprint_epoch_ops;
    fc.max_threads = options_.max_threads;
    fc.arena = &arena_;
    fc.injector = options_.fault_injector;
    fc.on_divergence = options_.on_divergence;
    fc.on_error = [this](RfdetErrc errc, const std::string& what) {
      ReportError(errc, what);
    };
    fingerprint_ = std::make_unique<ExecutionFingerprint>(fc);
  }

  if (options_.race_policy != RacePolicy::kOff) {
    RaceDetector::Config rc;
    rc.policy = options_.race_policy;
    rc.window_bytes = options_.race_window_bytes;
    rc.max_reports = options_.race_max_reports;
    rc.page_count = options_.region_bytes / kPageSize;
    rc.arena = &arena_;
    rc.injector = options_.fault_injector;
    // Race reports surface under the detecting thread's turn, so their
    // order is deterministic — exactly what the replay log records
    // (kRecord) and cross-checks (kReplay) before the user tap runs.
    rc.on_race = [this](const RaceReport& r) {
      if (replay_ != nullptr && replay_->Active()) {
        if (replay_->mode() == ReplayMode::kRecord) {
          replay_->RecordRace(r.kind, r.first_tid, r.second_tid, r.page);
        } else if (replay_->mode() == ReplayMode::kReplay) {
          replay_->VerifyRace(r.kind, r.first_tid, r.second_tid, r.page);
        }
      }
      if (options_.on_race) options_.on_race(r);
    };
    rc.on_error = [this](RfdetErrc errc, const std::string& what) {
      ReportError(errc, what);
    };
    race_detector_ = std::make_unique<RaceDetector>(rc);
  }

  // Restore precedes replay-log construction: a kRecord ReplayLog opened
  // fresh would truncate the very log whose checkpointed offset the
  // restore is about to resume from.
  if (!options_.restore_checkpoint_path.empty()) {
    if (RestoreLatestValid()) {
      restored_ = true;
      stats_.restores.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (options_.replay_mode != ReplayMode::kOff) {
    ReplayLog::Config lc;
    lc.mode = options_.replay_mode;
    lc.path = options_.replay_log_path;
    lc.max_threads = options_.max_threads;
    lc.injector = options_.fault_injector;
    lc.turn_wait = kendo_.wait_mode();
    lc.turn_spin_budget = static_cast<uint32_t>(options_.turn_spin_budget);
    lc.on_divergence = options_.on_divergence;
    lc.on_error = [this](RfdetErrc errc, const std::string& what) {
      ReportError(errc, what);
    };
    if (restored_) lc.resume = restored_resume_;
    replay_ = std::make_unique<ReplayLog>(lc);
  }

  if (options_.watchdog_stall_ms > 0) {
    watchdog_ = std::make_unique<Watchdog>(
        Watchdog::Config{options_.watchdog_stall_ms, options_.watchdog_fatal},
        [this] { return ProgressFingerprint(); },
        [this] { return DumpStateReport(); },
        [this](const std::string& report) {
          stats_.watchdog_stalls.fetch_add(1, std::memory_order_relaxed);
          if (options_.on_stall) options_.on_stall(report);
        });
  }
}

RfdetRuntime::~RfdetRuntime() {
  // Teardown legitimately stops the clocks: silence the watchdog first.
  if (watchdog_) watchdog_->Stop();
  // Reclaim any spawned thread the application forgot to Join. Their
  // deterministic work is already done (or will finish nondeterministically
  // during teardown — a program bug, like exiting with threads running).
  for (auto& ctx : threads_) {
    if (ctx->worker.joinable()) ctx->worker.join();
  }
  // All workers are quiescent and the main thread is still attached: the
  // last chance to fold the region into the rollup and write/verify the
  // fingerprint file (idempotent if the harness already finalized).
  FinalizeFingerprint();
  // Surface the run's deterministic race set at exit (kPanic already
  // crashed at the first race; kReport collects them until here).
  if (race_detector_ != nullptr &&
      race_detector_->policy() == RacePolicy::kReport) {
    const std::string races = race_detector_->ReportText();
    if (!races.empty()) {
      std::fprintf(stderr,
                   "rfdet: %llu write-write and %llu write-read race(s) "
                   "detected:\n%s",
                   static_cast<unsigned long long>(race_detector_->RacesWW()),
                   static_cast<unsigned long long>(
                       race_detector_->RacesRWPages()),
                   races.c_str());
    }
  }
  // Exit summary for record/replay and checkpointing: flush the log and
  // surface the run's replay disposition (divergence report first — it is
  // the deterministic failure artifact).
  if (replay_ != nullptr) {
    replay_->Finalize();
    const std::string divergence = replay_->LastDivergenceReport();
    if (!divergence.empty()) std::fputs(divergence.c_str(), stderr);
    std::fprintf(stderr, "rfdet: %s\n", replay_->ProgressSummary().c_str());
  }
  if (const uint64_t written =
          stats_.checkpoints_written.load(std::memory_order_relaxed);
      written > 0 || restored_) {
    std::string restored_note;
    if (restored_) {
      restored_note = ", restored from checkpoint seq " +
                      std::to_string(restored_seq_) + " (clock " +
                      std::to_string(restored_clock_) + ")";
    }
    std::fprintf(
        stderr,
        "rfdet: checkpoint: %llu written (%llu bytes, %llu skipped)%s\n",
        static_cast<unsigned long long>(written),
        static_cast<unsigned long long>(
            stats_.checkpoint_bytes.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            stats_.checkpoint_skips.load(std::memory_order_relaxed)),
        restored_note.c_str());
  }
  // Propagation-coalescing exit summary: only interesting when spans were
  // actually consumed (small batches never reach the coalesce floor).
  if (const uint64_t spans =
          stats_.coalesced_spans.load(std::memory_order_relaxed);
      spans > 0) {
    std::fprintf(
        stderr,
        "rfdet: coalesce: %llu spans covering %llu slices, %llu bytes of "
        "redundant copy avoided\n",
        static_cast<unsigned long long>(spans),
        static_cast<unsigned long long>(
            stats_.coalesced_slices.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            stats_.coalesce_bytes_saved.load(std::memory_order_relaxed)));
  }
  // Turn-wait exit summary: only interesting when contention actually
  // parked someone (a spin-only run prints nothing new here).
  if (const TurnWaitCounters tw = kendo_.WaitCounters(); tw.parks > 0) {
    std::fprintf(
        stderr,
        "rfdet: turn-wait(%s): %llu spins, %llu parks (%llu ms parked), "
        "%llu wakeups, %llu handoffs\n",
        TurnWaitModeName(kendo_.wait_mode()),
        static_cast<unsigned long long>(tw.spins),
        static_cast<unsigned long long>(tw.parks),
        static_cast<unsigned long long>(tw.park_ns / 1'000'000),
        static_cast<unsigned long long>(tw.wakeups),
        static_cast<unsigned long long>(tw.handoffs));
  }
  if (options_.isolation) ThreadView::DeactivateOnThisThread();
  g_tls = {nullptr, nullptr};
  if (trace_charged_ > 0) arena_.Release(trace_charged_);
}

RfdetRuntime::ThreadCtx& RfdetRuntime::Ctx() const {
  RFDET_CHECK_MSG(g_tls.runtime == this,
                  "calling thread is not attached to this runtime");
  return *static_cast<ThreadCtx*>(g_tls.ctx);
}

RfdetRuntime::SyncVar& RfdetRuntime::Var(size_t id, SyncVar::Kind kind) {
  SyncVar* var;
  {
    std::scoped_lock lock(sync_vars_mu_);
    RFDET_CHECK_MSG(id < sync_vars_.size(), "unknown sync object id");
    var = &sync_vars_[id];
  }
  RFDET_CHECK_MSG(var->kind == kind, "sync object used as wrong kind");
  return *var;
}

// ---------------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------------

GAddr RfdetRuntime::AllocStatic(size_t size, size_t align) {
  RFDET_CHECK_MSG(Ctx().tid == 0,
                  "static allocation is a main-thread setup operation");
  return allocator_.AllocStatic(size, align);
}

GAddr RfdetRuntime::TryAllocStatic(size_t size, size_t align) {
  RFDET_CHECK_MSG(Ctx().tid == 0,
                  "static allocation is a main-thread setup operation");
  if (NondetFail(NondetSite::kStaticAlloc, 0, FaultSite::kStaticAlloc)) {
    stats_.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    ReportError(RfdetErrc::kNoMemory,
                "static allocation failed (injected fault)");
    return kNullGAddr;
  }
  const GAddr addr = allocator_.TryAllocStatic(size, align);
  if (addr == kNullGAddr) {
    stats_.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    ReportError(RfdetErrc::kNoMemory, "static segment exhausted");
  }
  return addr;
}

GAddr RfdetRuntime::Malloc(size_t size) {
  return allocator_.Alloc(Ctx().tid, size);
}

GAddr RfdetRuntime::TryMalloc(size_t size) {
  ThreadCtx& me = Ctx();
  if (NondetFail(NondetSite::kHeapAlloc, me.tid, FaultSite::kHeapAlloc)) {
    stats_.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    ReportError(RfdetErrc::kNoMemory, "allocation failed (injected fault)");
    return kNullGAddr;
  }
  const GAddr addr = allocator_.TryAlloc(me.tid, size);
  if (addr == kNullGAddr) {
    stats_.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    ReportError(RfdetErrc::kNoMemory,
                "subheap exhausted (thread " + std::to_string(me.tid) +
                    ", request " + std::to_string(size) + " bytes)");
  }
  return addr;
}

void RfdetRuntime::Free(GAddr addr) { allocator_.Free(Ctx().tid, addr); }

void RfdetRuntime::Store(GAddr addr, const void* src, size_t len) {
  ThreadCtx& me = Ctx();
  const uint64_t words = (len + 7) / 8;
  kendo_.Tick(me.tid, words * options_.ticks_per_word);
  me.stores.fetch_add(words, std::memory_order_relaxed);
  if (options_.isolation) {
    me.view->Store(addr, src, len);
  } else {
    RFDET_DCHECK(addr + len <= options_.region_bytes);
    std::memcpy(shared_image_.get() + addr, src, len);
  }
}

void RfdetRuntime::Load(GAddr addr, void* dst, size_t len) {
  ThreadCtx& me = Ctx();
  const uint64_t words = (len + 7) / 8;
  kendo_.Tick(me.tid, words * options_.ticks_per_word);
  me.loads.fetch_add(words, std::memory_order_relaxed);
  if (options_.isolation) {
    me.view->Load(addr, dst, len);
  } else {
    RFDET_DCHECK(addr + len <= options_.region_bytes);
    std::memcpy(dst, shared_image_.get() + addr, len);
  }
}

void RfdetRuntime::Tick(uint64_t words) {
  kendo_.Tick(Ctx().tid, words * options_.ticks_per_word);
}

// ---------------------------------------------------------------------------
// Slices and propagation
// ---------------------------------------------------------------------------

void RfdetRuntime::PrepareSlice(ThreadCtx& me) {
  if (!options_.isolation || !options_.off_turn_close) return;
  ThreadCtx::PreparedSlice& p = me.prepared;
  // A prepared slice can survive a sync op that never published it (slice
  // merging, an error back-out), so each prepare re-diffs the WHOLE window
  // from slice start, non-destructively: the view keeps its snapshots and
  // monitoring state until CloseSlice adopts the diff and resets it. An
  // incremental append would be cheaper but diverges from the single diff
  // a turn-serial close takes — it can split runs, or retain a write that
  // a later window reverted — and the fingerprint digests run structure,
  // so off-turn and turn-serial closes must produce identical ModLists.
  const bool had = p.valid;
  const bool had_mods = had && !p.mods.Empty();
  const size_t bytes_before = p.mods.ByteCount();
  p.mods.Clear();
  me.view->PreviewModifications(p.mods);
  if (race_detector_ != nullptr) {
    if (!had) {
      me.view->HarvestReadPages(p.read_pages);
    } else {
      std::vector<PageId> fresh;
      me.view->HarvestReadPages(fresh);
      p.read_pages.insert(p.read_pages.end(), fresh.begin(), fresh.end());
      std::sort(p.read_pages.begin(), p.read_pages.end());
      p.read_pages.erase(std::unique(p.read_pages.begin(), p.read_pages.end()),
                         p.read_pages.end());
    }
  }
  p.valid = true;
  if (p.mods.Empty()) {
    p.mods_digest = 0;
    return;
  }
  // The expensive, order-insensitive half of a close: pre-hash the mod
  // bytes for the fingerprint and build the apply plan receivers will use.
  // Everything here reads only this thread's private view output.
  p.mods_digest = fingerprint_ != nullptr
                      ? ExecutionFingerprint::HashMods(p.mods, kFnvOffset)
                      : 0;
  p.plan = ApplyPlan::Build(p.mods);
  if (!had_mods) {
    stats_.offturn_prepared_slices.fetch_add(1, std::memory_order_relaxed);
  }
  // Re-diffing can shrink the carried total (a later window reverted
  // bytes an earlier one wrote), so only count growth.
  const size_t bytes_after = p.mods.ByteCount();
  if (bytes_after > bytes_before) {
    stats_.offturn_prepared_bytes.fetch_add(bytes_after - bytes_before,
                                            std::memory_order_relaxed);
  }
}

void RfdetRuntime::CloseSlice(ThreadCtx& t) {
  if (!options_.isolation) return;
  const auto close_t0 = std::chrono::steady_clock::now();
  ModList mods;
  std::vector<PageId> read_pages;
  uint64_t mods_digest = 0;
  ApplyPlan plan;
  bool prepared = false;
  if (t.prepared.valid) {
    // Off-turn close: adopt the diff/plan/pre-hash done before this thread
    // took its turn. No instrumented write can land between PrepareSlice
    // and here — every sync op prepares immediately before requesting the
    // turn and runs no application code in between.
    prepared = true;
    mods = std::move(t.prepared.mods);
    read_pages = std::move(t.prepared.read_pages);
    mods_digest = t.prepared.mods_digest;
    plan = std::move(t.prepared.plan);
    t.prepared.valid = false;
    t.prepared.mods.Clear();
    t.prepared.read_pages.clear();
    t.prepared.mods_digest = 0;
    t.prepared.plan = ApplyPlan();
    // PrepareSlice diffs non-destructively so merged windows re-diff from
    // slice start; the adopted close owns ending the slice window.
    t.view->ResetSliceWindow();
  } else {
    t.view->CollectModifications(mods);
    if (race_detector_ != nullptr) t.view->HarvestReadPages(read_pages);
  }
  VectorClock time;
  {
    std::scoped_lock lock(t.clock_mu);
    t.vclock.Tick(t.tid);
    t.turn_time = t.vclock;
    time = t.vclock;
  }
  SliceRef slice;
  if (!mods.Empty()) {
    if (options_.dlrc_paranoia) ParanoiaCheckMods(t, mods);
    if (fingerprint_ && fingerprint_->Absorbing()) {
      if (prepared) {
        fingerprint_->OnSliceClose(t.tid, t.slice_seq + 1, time, mods,
                                   mods_digest);
      } else {
        fingerprint_->OnSliceClose(t.tid, t.slice_seq + 1, time, mods);
      }
    }
    ReserveSliceMetadata(Slice::BytesFor(mods, time));
    slice = std::make_shared<Slice>(t.tid, ++t.slice_seq, time,
                                    std::move(mods), &arena_);
    if (prepared) slice->PrimePlan(std::move(plan));
    t.log.Append(slice);
    stats_.slices_created.fetch_add(1, std::memory_order_relaxed);
  }
  if (race_detector_ != nullptr &&
      (slice != nullptr || !read_pages.empty())) {
    // Every CloseSlice call site runs under the caller's Kendo turn, so
    // detection (and therefore the report set) follows the deterministic
    // global synchronization order.
    race_detector_->OnSliceClose(t.tid, t.slice_seq, kendo_.Clock(t.tid),
                                 time, std::move(slice),
                                 std::move(read_pages));
  }
  if (fingerprint_) UpdateTurnFingerprint(t);
  MaybeRunGc();
  stats_.close_turn_ns.fetch_add(
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - close_t0)
                                .count()),
      std::memory_order_relaxed);
}

void RfdetRuntime::ReserveSliceMetadata(size_t bytes) {
  FaultInjector* fi = options_.fault_injector;
  const auto fits = [&] {
    const bool injected =
        fi != nullptr && fi->ShouldFail(FaultSite::kArenaCharge);
    return !injected && arena_.HasRoom(bytes);
  };
  if (fits()) return;
  // Shortfall: force a GC and retry once (paper §5.4 — slices can outgrow
  // the metadata space when threads rarely synchronize, and the routine
  // threshold GC may not have caught up).
  stats_.arena_gc_retries.fetch_add(1, std::memory_order_relaxed);
  {
    std::scoped_lock lock(gc_mu_);
    RunGc();
  }
  if (fits()) return;
  // Still short. The arena is an accounting object (slice payloads live in
  // ordinary host memory), so exceeding the budget is survivable: count
  // the overflow and tell the application instead of aborting.
  stats_.metadata_overflows.fetch_add(1, std::memory_order_relaxed);
  ReportError(RfdetErrc::kNoMemory,
              "metadata arena exhausted after GC retry (" +
                  std::to_string(arena_.Used()) + " of " +
                  std::to_string(arena_.Capacity()) +
                  " bytes used); continuing over budget");
}

void RfdetRuntime::PropagateFrom(ThreadCtx& me, size_t src_tid,
                                 const VectorClock& upper,
                                 bool prelock_phase) {
  if (!options_.isolation || src_tid == kNone) return;
  if (src_tid == me.tid) {
    // Re-acquiring one's own release: nothing new can be learned.
    std::scoped_lock lock(me.clock_mu);
    me.vclock.Join(upper);
    return;
  }
  VectorClock lower;
  {
    std::scoped_lock lock(me.clock_mu);
    lower = me.vclock;
  }
  // Gather first (copy under the source log lock, filter outside it —
  // SliceLog::Snapshot), then apply. Filter (exact, see vector_clock.h):
  // happens-before the release and not already seen locally.
  ThreadCtx& src = CtxOf(src_tid);
  const std::vector<SliceRef> batch = src.log.Snapshot(lower, upper);
  const bool fp = fingerprint_ != nullptr && fingerprint_->Absorbing();
  const DetMutation& mut = options_.test_mutation;
  // Test mutations perturb one of the receiver's physical applies;
  // coalescing must not change which apply the mutation lands on, so a
  // targeted receiver takes the per-slice path for the whole run.
  const bool mutated_receiver =
      (mut.kind == DetMutation::Kind::kSkipSliceApply ||
       mut.kind == DetMutation::Kind::kCorruptPropagatedByte) &&
      me.tid == mut.tid;
  const bool coalesce = options_.propagate_coalesce && !mutated_receiver;
  uint64_t bytes = 0;

  const auto paranoia_recheck = [&](const SliceRef& s) {
    if (options_.dlrc_paranoia && !s->time().LessEq(upper)) {
      ParanoiaFailure("received slice (tid " + std::to_string(s->tid()) +
                      ", seq " + std::to_string(s->seq()) +
                      ") does not happen-before the release it arrived on");
    }
  };
  const auto apply_one = [&](const SliceRef& s) {
    paranoia_recheck(s);
    // Test-only perturbations, targeted by the receiver's deterministic
    // apply counter (see DetMutation).
    bool skip = false;
    bool corrupt = false;
    if ((mut.kind == DetMutation::Kind::kSkipSliceApply ||
         mut.kind == DetMutation::Kind::kCorruptPropagatedByte) &&
        me.tid == mut.tid && me.fp_applies++ == mut.index) {
      skip = mut.kind == DetMutation::Kind::kSkipSliceApply;
      corrupt = !skip;
    }
    if (skip) {
      me.log.Append(s);  // lost propagation: the bytes never arrive
      return;
    }
    if (corrupt && !s->mods().Empty()) {
      // Flip one bit of the first payload byte — a silent wire corruption.
      ModList mangled;
      bool flipped = false;
      for (const ModRun& run : s->mods().Runs()) {
        const auto payload = s->mods().RunData(run);
        if (!flipped) {
          std::vector<std::byte> copy(payload.begin(), payload.end());
          copy.front() ^= std::byte{0x01};
          mangled.Append(run.addr, copy);
          flipped = true;
        } else {
          mangled.Append(run.addr, payload);
        }
      }
      me.view->ApplyRemote(mangled, options_.lazy_writes);
      if (fp) {
        fingerprint_->OnApply(me.tid, s->tid(), s->seq(), s->time(),
                              mangled);
      }
    } else {
      // Fast path: the slice's cached page-partitioned plan — built by the
      // first receiver, shared by all later ones (see DESIGN.md §10).
      me.view->ApplyRemote(s->mods(), s->Plan(&stats_.apply_plans_built),
                           options_.lazy_writes);
      if (fp) {
        fingerprint_->OnApply(me.tid, s->tid(), s->seq(), s->time(),
                              s->mods());
      }
    }
    bytes += s->mods().ByteCount();
    me.log.Append(s);
  };

  size_t i = 0;
  while (i < batch.size()) {
    // Maximal batch-adjacent stretch of one origin's consecutive slices —
    // the only shape a span may coalesce: a causally-ordered slice from
    // another origin between two of A's slices could change last-writer
    // winners, and a seq gap means an unseen intervening slice.
    size_t j = i + 1;
    while (j < batch.size() && batch[j]->tid() == batch[i]->tid() &&
           batch[j]->seq() == batch[j - 1]->seq() + 1) {
      ++j;
    }
    bool spanned = false;
    if (coalesce && j - i >= options_.propagate_coalesce_min) {
      const SliceSpanRef span = src.span_cache.GetOrCreate(
          std::span<const SliceRef>(batch.data() + i, j - i), &arena_,
          options_.fault_injector);
      if (const ModList* merged = span->Merged(&stats_.apply_plans_built);
          merged != nullptr) {
        // One physical apply for the whole stretch. The *logical* stream
        // below — paranoia recheck, fingerprint absorb, slice-pointer log,
        // byte counters — is identical to the per-slice path, so
        // fingerprints, race reports and replay logs cannot observe the
        // coalescing (DESIGN.md §18).
        me.view->ApplyRemote(*merged, span->Plan(), options_.lazy_writes);
        for (size_t k = i; k < j; ++k) {
          const SliceRef& s = batch[k];
          paranoia_recheck(s);
          if (fp) {
            fingerprint_->OnApply(me.tid, s->tid(), s->seq(), s->time(),
                                  s->mods());
          }
          bytes += s->mods().ByteCount();
          me.log.Append(s);
        }
        stats_.coalesced_spans.fetch_add(1, std::memory_order_relaxed);
        stats_.coalesced_slices.fetch_add(j - i, std::memory_order_relaxed);
        stats_.coalesce_bytes_saved.fetch_add(
            span->LogicalBytes() - merged->ByteCount(),
            std::memory_order_relaxed);
        spanned = true;
      }
      // A declined build (arena pressure or an injected kSpanCoalesce
      // fault) falls through to the per-slice applies — recoverable by
      // design; per-slice apply needs no new memory.
    }
    if (!spanned) {
      for (size_t k = i; k < j; ++k) apply_one(batch[k]);
    }
    i = j;
  }
  {
    std::scoped_lock lock(me.clock_mu);
    me.vclock.Join(upper);
    if (options_.dlrc_paranoia && !lower.LessEq(me.vclock)) {
      ParanoiaFailure(
          "vector clock of thread " + std::to_string(me.tid) +
          " regressed across an acquire (join is not monotonic)");
    }
  }
  stats_.slices_propagated.fetch_add(batch.size(),
                                     std::memory_order_relaxed);
  stats_.bytes_propagated.fetch_add(bytes, std::memory_order_relaxed);
  if (prelock_phase) {
    stats_.prelock_slices.fetch_add(batch.size(),
                                    std::memory_order_relaxed);
    stats_.prelock_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
}

void RfdetRuntime::AcquireFrom(ThreadCtx& me, const SyncVar& sv) {
  if (!options_.isolation || sv.last_tid == kNone) return;
  PropagateFrom(me, sv.last_tid, sv.last_time, /*prelock_phase=*/false);
  // The join above ran under the turn: refresh the deterministic snapshot.
  {
    std::scoped_lock lock(me.clock_mu);
    me.turn_time = me.vclock;
  }
  if (fingerprint_) UpdateTurnFingerprint(me);
}

void RfdetRuntime::ReleasePublish(ThreadCtx& me, SyncVar& sv) {
  if (!options_.isolation) return;
  std::scoped_lock lock(me.clock_mu);
  sv.last_time = me.vclock;
  sv.last_tid = me.tid;
}

// ---------------------------------------------------------------------------
// Block / wake plumbing
// ---------------------------------------------------------------------------

void RfdetRuntime::Block(ThreadCtx& me, uint32_t baseline) {
  uint32_t cur;
  while ((cur = me.wake_seq.load(std::memory_order_acquire)) == baseline) {
    me.wake_seq.wait(baseline, std::memory_order_acquire);
  }
}

void RfdetRuntime::Wake(ThreadCtx& me, ThreadCtx& target, uint64_t delta,
                        size_t mail_src, const VectorClock& mail_time) {
  SetBlocked(target, BlockKind::kNone, kNone);
  target.mail_src = mail_src;
  target.mail_time = mail_time;
  kendo_.Resume(target.tid, kendo_.Clock(me.tid) + delta);
  target.wake_seq.fetch_add(1, std::memory_order_release);
  target.wake_seq.notify_one();
}

void RfdetRuntime::SetBlocked(ThreadCtx& t, BlockKind kind, size_t object) {
  std::scoped_lock lock(t.clock_mu);
  t.block_kind = kind;
  t.block_object = object;
}

// ---------------------------------------------------------------------------
// Deadlock detection
// ---------------------------------------------------------------------------

std::string RfdetRuntime::BlockDesc(BlockKind kind, size_t object) {
  switch (kind) {
    case BlockKind::kNone: return "nothing (runnable)";
    case BlockKind::kMutex: return "mutex " + std::to_string(object);
    case BlockKind::kCond: return "cond " + std::to_string(object);
    case BlockKind::kBarrier: return "barrier " + std::to_string(object);
    case BlockKind::kJoin: return "join of thread " + std::to_string(object);
  }
  return "?";
}

RfdetErrc RfdetRuntime::CheckBlockPermitted(ThreadCtx& me, BlockKind kind,
                                            size_t object,
                                            size_t releasing_mutex,
                                            bool can_back_out) {
  if (!options_.deadlock_detection) return RfdetErrc::kOk;

  // Everything below runs under the caller's turn: block states, queue
  // contents and mutex owners are only ever mutated under a turn, so this
  // reads a deterministic snapshot of the wait-for graph — detection, the
  // victim (the thread whose blocking attempt trips the check) and the
  // report text are pure functions of the deterministic schedule.
  struct Node {
    size_t tid;
    BlockKind kind;
    size_t obj;
  };

  // One "thread A … waits for X" report line. Blocked threads are paused,
  // so their deterministic clock lives in the Kendo saved slot.
  const auto line = [&](const Node& n) {
    const uint64_t clock = kendo_.IsPaused(n.tid) ? kendo_.SavedClock(n.tid)
                                                  : kendo_.Clock(n.tid);
    std::string held;
    std::string fp_note;
    {
      ThreadCtx& t = CtxOf(n.tid);
      std::scoped_lock lock(t.clock_mu);
      held = JoinTids(t.held_mutexes);
      if (fingerprint_ != nullptr) {
        // turn_fp_* only changes under the thread's turn (all of which
        // were turn-ordered before this detection), so the values — and
        // the report — stay deterministic.
        fp_note = ", fp epoch " + std::to_string(t.turn_fp_epochs) +
                  " (" + std::to_string(t.turn_fp_events) + " events)";
      }
    }
    return "  thread " + std::to_string(n.tid) + " (kendo clock " +
           std::to_string(clock) + ", holds mutexes [" + held + "]" +
           fp_note + ") waits for " + BlockDesc(n.kind, n.obj);
  };

  // ---- pass 1: definite-edge cycle walk ---------------------------------
  // A mutex waiter definitely waits for the owner; a joiner definitely
  // waits for the target. Cond and barrier waits have no single definite
  // peer, so the walk stops there (pass 2 handles those).
  std::vector<Node> path;
  path.push_back({me.tid, kind, object});
  size_t cycle_start = kNone;
  while (cycle_start == kNone && path.size() <= threads_.size()) {
    const Node cur = path.back();
    size_t next = kNone;
    if (cur.kind == BlockKind::kMutex) {
      next = Var(cur.obj, SyncVar::Kind::kMutex).owner;
    } else if (cur.kind == BlockKind::kJoin) {
      next = cur.obj;
    }
    if (next == kNone) break;
    for (size_t i = 0; i < path.size(); ++i) {
      if (path[i].tid == next) {
        cycle_start = i;
        break;
      }
    }
    if (cycle_start != kNone) break;
    ThreadCtx& nctx = CtxOf(next);
    if (nctx.finished.load(std::memory_order_acquire)) break;
    Node n{next, BlockKind::kNone, kNone};
    {
      std::scoped_lock lock(nctx.clock_mu);
      n.kind = nctx.block_kind;
      n.obj = nctx.block_object;
    }
    if (n.kind == BlockKind::kNone) break;  // reached a runnable thread
    path.push_back(n);
  }
  if (cycle_start != kNone) {
    std::string report =
        "rfdet: DEADLOCK: wait-for cycle of " +
        std::to_string(path.size() - cycle_start) +
        " thread(s), detected by thread " + std::to_string(me.tid) +
        " blocking on " + BlockDesc(kind, object) + "\n";
    for (size_t i = cycle_start; i < path.size(); ++i) {
      const size_t next_tid = i + 1 < path.size() ? path[i + 1].tid
                                                  : path[cycle_start].tid;
      report += line(path[i]);
      if (path[i].kind == BlockKind::kMutex ||
          path[i].kind == BlockKind::kJoin) {
        report += " (thread " + std::to_string(next_tid) + ")";
      }
      report += "\n";
    }
    return HandleDeadlock(report, can_back_out);
  }

  // ---- pass 2: global stall ----------------------------------------------
  // If every other live thread is already blocked, blocking `me` too would
  // stall the whole schedule — no thread could ever wake another. Threads
  // waiting on `releasing_mutex` count as runnable: the caller (CondWait)
  // is about to hand that mutex over as part of blocking.
  std::vector<Node> all;
  bool someone_runnable = false;
  {
    std::scoped_lock lock(threads_mu_);
    for (const auto& ctx : threads_) {
      if (ctx->finished.load(std::memory_order_acquire)) continue;
      if (ctx->tid == me.tid) {
        all.push_back({me.tid, kind, object});
        continue;
      }
      Node n{ctx->tid, BlockKind::kNone, kNone};
      {
        std::scoped_lock cl(ctx->clock_mu);
        n.kind = ctx->block_kind;
        n.obj = ctx->block_object;
      }
      if (n.kind == BlockKind::kNone ||
          (releasing_mutex != kNone && n.kind == BlockKind::kMutex &&
           n.obj == releasing_mutex)) {
        someone_runnable = true;
        break;
      }
      all.push_back(n);
    }
  }
  if (someone_runnable) return RfdetErrc::kOk;
  std::string report =
      "rfdet: DEADLOCK: global stall — thread " + std::to_string(me.tid) +
      " blocking on " + BlockDesc(kind, object) +
      " would leave no runnable thread\n";
  for (const Node& n : all) report += line(n) + "\n";
  return HandleDeadlock(report, can_back_out);
}

RfdetErrc RfdetRuntime::HandleDeadlock(const std::string& report,
                                       bool can_back_out) {
  stats_.deadlocks_detected.fetch_add(1, std::memory_order_relaxed);
  {
    std::scoped_lock lock(deadlock_mu_);
    last_deadlock_report_ = report;
  }
  if (options_.on_deadlock) options_.on_deadlock(report);
  if (!can_back_out ||
      options_.deadlock_policy == DeadlockPolicy::kPanic) {
    PanicDeadlock(report);
  }
  return RfdetErrc::kDeadlock;
}

void RfdetRuntime::PanicDeadlock(const std::string& report) {
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  RFDET_PANIC("deadlock detected");
}

std::string RfdetRuntime::LastDeadlockReport() const {
  std::scoped_lock lock(deadlock_mu_);
  return last_deadlock_report_;
}

// ---------------------------------------------------------------------------
// Mutexes
// ---------------------------------------------------------------------------

void RfdetRuntime::PrelockPropagate(ThreadCtx& me, const SyncVar& m) {
  // Snapshot, under the turn, the deterministic times of the holder and of
  // every waiter ahead of us in the reservation order: slices up to those
  // times must happen-before our eventual acquire, so they can be merged
  // now, off the lock's critical path (paper §4.5 "Prelock").
  struct Source {
    size_t tid;
    VectorClock upper;
  };
  std::vector<Source> sources;
  // The lock's most recent release: its slices are guaranteed present in
  // the releaser's log (the release was turn-ordered before now), and in
  // the steady hand-off regime this is the bulk of what the eventual
  // acquire will need.
  if (m.last_tid != kNone && m.last_tid != me.tid) {
    sources.push_back({m.last_tid, m.last_time});
  }
  auto add = [&](size_t tid) {
    if (tid == kNone || tid == me.tid) return;
    ThreadCtx& ctx = CtxOf(tid);
    std::scoped_lock lock(ctx.clock_mu);
    sources.push_back({tid, ctx.turn_time});
  };
  add(m.owner);
  for (const size_t w : m.waiters) {
    if (w == me.tid) break;
    add(w);
  }
  // The snapshots above were taken under the turn; the propagation itself
  // runs after we pause — concurrently with the lock holder.
  kendo_.Pause(me.tid);
  ReplayTurnDone();
  for (const Source& src : sources) {
    PropagateFrom(me, src.tid, src.upper, /*prelock_phase=*/true);
  }
}

RfdetErrc RfdetRuntime::LockCore(ThreadCtx& me, size_t id, SyncVar& m,
                                 bool fresh) {
  TurnBegin(me, ReplayOp::kLock, id);
  if (!m.locked) {
    const bool merge = fresh && options_.slice_merging &&
                       options_.isolation && m.last_tid == me.tid;
    if (merge) {
      // Slice merging (§4.5): we were the last releaser, so no propagation
      // is needed and the current slice may continue across the acquire.
      stats_.slices_merged.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (fresh) CloseSlice(me);
      AcquireFrom(me, m);
    }
    m.locked = true;
    m.owner = me.tid;
    {
      std::scoped_lock lock(me.clock_mu);
      me.held_mutexes.push_back(id);
    }
    Record(TraceOp::kLockAcquired, me.tid, id);
    TurnEndTick(me);
    return RfdetErrc::kOk;
  }
  // About to block: prove it safe first. Detects both relock of an owned
  // mutex (a cycle of one — POSIX error-checking-mutex semantics) and
  // longer ownership cycles. Only a fresh lock call can back out; the
  // re-acquire inside CondWait has already given up its queue position
  // and panics on detection regardless of policy.
  if (const RfdetErrc err =
          CheckBlockPermitted(me, BlockKind::kMutex, id, kNone,
                              /*can_back_out=*/fresh);
      err != RfdetErrc::kOk) {
    TurnEndTick(me);
    return err;
  }
  // Contended: enter the deterministic reservation order and sleep; the
  // releaser hands the lock over FIFO.
  if (fresh) CloseSlice(me);
  m.waiters.push_back(me.tid);
  SetBlocked(me, BlockKind::kMutex, id);
  const uint32_t baseline = me.wake_seq.load(std::memory_order_acquire);
  if (options_.prelock && options_.isolation) {
    PrelockPropagate(me, m);  // pauses the Kendo clock internally
  } else {
    TurnEndPause(me);
  }
  Block(me, baseline);
  // We own the lock now (hand-off). Finish the residual propagation from
  // the actual release.
  PropagateFrom(me, me.mail_src, me.mail_time, /*prelock_phase=*/false);
  {
    std::scoped_lock lock(me.clock_mu);
    me.held_mutexes.push_back(id);
  }
  return RfdetErrc::kOk;
}

RfdetErrc RfdetRuntime::MutexLock(size_t id) {
  ThreadCtx& me = Ctx();
  stats_.locks.fetch_add(1, std::memory_order_relaxed);
  PrepareSlice(me);
  return LockCore(me, id, Var(id, SyncVar::Kind::kMutex), /*fresh=*/true);
}

void RfdetRuntime::MutexUnlock(size_t id) {
  ThreadCtx& me = Ctx();
  stats_.unlocks.fetch_add(1, std::memory_order_relaxed);
  SyncVar& m = Var(id, SyncVar::Kind::kMutex);
  PrepareSlice(me);
  TurnBegin(me, ReplayOp::kUnlock, id);
  RFDET_CHECK_MSG(m.locked && m.owner == me.tid, "unlock of unowned mutex");
  CloseSlice(me);
  ReleasePublish(me, m);
  Record(TraceOp::kUnlock, me.tid, id);
  {
    std::scoped_lock lock(me.clock_mu);
    me.held_mutexes.erase(std::find(me.held_mutexes.begin(),
                                    me.held_mutexes.end(), id));
  }
  if (!m.waiters.empty()) {
    const size_t next = m.waiters.front();
    m.waiters.erase(m.waiters.begin());
    m.owner = next;  // hand-off: stays locked
    RecordGrant(TraceOp::kLockAcquired, next, id, kendo_.Clock(me.tid) + 1);
    Wake(me, CtxOf(next), /*delta=*/1, me.tid, m.last_time);
  } else {
    m.locked = false;
    m.owner = kNone;
  }
  TurnEndTick(me);
}

// ---------------------------------------------------------------------------
// Condition variables
// ---------------------------------------------------------------------------

RfdetErrc RfdetRuntime::CondWait(size_t cond_id, size_t mutex_id) {
  ThreadCtx& me = Ctx();
  stats_.cond_waits.fetch_add(1, std::memory_order_relaxed);
  SyncVar& c = Var(cond_id, SyncVar::Kind::kCond);
  SyncVar& m = Var(mutex_id, SyncVar::Kind::kMutex);
  PrepareSlice(me);
  TurnBegin(me, ReplayOp::kCondWait, cond_id);
  RFDET_CHECK_MSG(m.locked && m.owner == me.tid,
                  "cond wait without holding the mutex");
  // Waiting with nobody left to signal is a provable stall. Checked before
  // any state changes: on kDeadlock the caller still holds the mutex and
  // is not enqueued — a clean no-op failure, like pthread EDEADLK.
  if (const RfdetErrc err =
          CheckBlockPermitted(me, BlockKind::kCond, cond_id, mutex_id,
                              /*can_back_out=*/true);
      err != RfdetErrc::kOk) {
    TurnEndTick(me);
    return err;
  }
  CloseSlice(me);
  ReleasePublish(me, m);  // the embedded unlock is a release
  Record(TraceOp::kCondEnterWait, me.tid, cond_id);
  const uint32_t baseline = me.wake_seq.load(std::memory_order_acquire);
  c.cond_waiters.push_back(me.tid);
  {
    std::scoped_lock lock(me.clock_mu);
    me.held_mutexes.erase(std::find(me.held_mutexes.begin(),
                                    me.held_mutexes.end(), mutex_id));
  }
  // Release the mutex (with deterministic hand-off), atomically with the
  // enqueue — we hold the turn, so no wakeup can be lost.
  if (!m.waiters.empty()) {
    const size_t next = m.waiters.front();
    m.waiters.erase(m.waiters.begin());
    m.owner = next;
    RecordGrant(TraceOp::kLockAcquired, next, mutex_id,
                kendo_.Clock(me.tid) + 1);
    Wake(me, CtxOf(next), /*delta=*/1, me.tid, m.last_time);
  } else {
    m.locked = false;
    m.owner = kNone;
  }
  SetBlocked(me, BlockKind::kCond, cond_id);
  TurnEndPause(me);
  Block(me, baseline);
  // Signalled: the signal is the paired release (paper §4.1).
  PropagateFrom(me, me.mail_src, me.mail_time, /*prelock_phase=*/false);
  // Re-acquire the mutex; our slice is already closed.
  return LockCore(me, mutex_id, m, /*fresh=*/false);
}

void RfdetRuntime::CondSignal(size_t cond_id) {
  ThreadCtx& me = Ctx();
  stats_.cond_signals.fetch_add(1, std::memory_order_relaxed);
  SyncVar& c = Var(cond_id, SyncVar::Kind::kCond);
  PrepareSlice(me);
  TurnBegin(me, ReplayOp::kCondSignal, cond_id);
  CloseSlice(me);
  ReleasePublish(me, c);
  Record(TraceOp::kSignal, me.tid, cond_id);
  if (!c.cond_waiters.empty()) {
    const size_t w = c.cond_waiters.front();
    c.cond_waiters.erase(c.cond_waiters.begin());
    Wake(me, CtxOf(w), /*delta=*/1, me.tid, c.last_time);
  }
  TurnEndTick(me);
}

void RfdetRuntime::CondBroadcast(size_t cond_id) {
  ThreadCtx& me = Ctx();
  stats_.cond_signals.fetch_add(1, std::memory_order_relaxed);
  SyncVar& c = Var(cond_id, SyncVar::Kind::kCond);
  PrepareSlice(me);
  TurnBegin(me, ReplayOp::kCondBroadcast, cond_id);
  CloseSlice(me);
  ReleasePublish(me, c);
  Record(TraceOp::kBroadcast, me.tid, cond_id);
  // FIFO wakeup; ascending clock deltas keep the wait-queue order as the
  // deterministic re-acquisition order.
  uint64_t delta = 1;
  for (const size_t w : c.cond_waiters) {
    Wake(me, CtxOf(w), delta++, me.tid, c.last_time);
  }
  c.cond_waiters.clear();
  TurnEndTick(me);
}

// ---------------------------------------------------------------------------
// Low-level atomics (§4.6)
// ---------------------------------------------------------------------------

RfdetRuntime::SyncVar& RfdetRuntime::AtomicVar(GAddr addr) {
  // Called with the turn held: first-touch creation order is deterministic.
  std::scoped_lock lock(sync_vars_mu_);
  const auto it = atomic_vars_.find(addr);
  if (it != atomic_vars_.end()) return sync_vars_[it->second];
  const size_t id = sync_vars_.size();
  sync_vars_.emplace_back(SyncVar::Kind::kMutex);  // storage only
  atomic_vars_.emplace(addr, id);
  return sync_vars_[id];
}

uint64_t RfdetRuntime::RawLoad64(ThreadCtx& me, GAddr addr) {
  uint64_t v = 0;
  if (options_.isolation) {
    me.view->Load(addr, &v, sizeof v);
  } else {
    std::memcpy(&v, shared_image_.get() + addr, sizeof v);
  }
  return v;
}

void RfdetRuntime::RawStore64(ThreadCtx& me, GAddr addr, uint64_t value) {
  if (options_.isolation) {
    me.view->Store(addr, &value, sizeof value);
  } else {
    std::memcpy(shared_image_.get() + addr, &value, sizeof value);
  }
}

uint64_t RfdetRuntime::AtomicLoad(GAddr addr) {
  ThreadCtx& me = Ctx();
  PrepareSlice(me);
  TurnBegin(me, ReplayOp::kAtomicLoad, addr);
  SyncVar& sv = AtomicVar(addr);
  Record(TraceOp::kAtomic, me.tid, addr);
  CloseSlice(me);
  AcquireFrom(me, sv);  // an atomic load is an acquire
  const uint64_t v = RawLoad64(me, addr);
  TurnEndTick(me);
  return v;
}

void RfdetRuntime::AtomicStore(GAddr addr, uint64_t value) {
  ThreadCtx& me = Ctx();
  PrepareSlice(me);
  TurnBegin(me, ReplayOp::kAtomicStore, addr);
  SyncVar& sv = AtomicVar(addr);
  Record(TraceOp::kAtomic, me.tid, addr);
  CloseSlice(me);
  RawStore64(me, addr, value);
  CloseSlice(me);  // the store must be inside the released slice
  ReleasePublish(me, sv);
  TurnEndTick(me);
}

uint64_t RfdetRuntime::AtomicFetchAdd(GAddr addr, uint64_t delta) {
  ThreadCtx& me = Ctx();
  PrepareSlice(me);
  TurnBegin(me, ReplayOp::kAtomicRmw, addr);
  SyncVar& sv = AtomicVar(addr);
  Record(TraceOp::kAtomic, me.tid, addr);
  CloseSlice(me);
  AcquireFrom(me, sv);  // read-modify-write: acquire …
  const uint64_t old = RawLoad64(me, addr);
  RawStore64(me, addr, old + delta);
  CloseSlice(me);
  ReleasePublish(me, sv);  // … and release
  TurnEndTick(me);
  return old;
}

bool RfdetRuntime::AtomicCas(GAddr addr, uint64_t& expected,
                             uint64_t desired) {
  ThreadCtx& me = Ctx();
  PrepareSlice(me);
  TurnBegin(me, ReplayOp::kAtomicCas, addr);
  SyncVar& sv = AtomicVar(addr);
  Record(TraceOp::kAtomic, me.tid, addr);
  CloseSlice(me);
  AcquireFrom(me, sv);
  const uint64_t old = RawLoad64(me, addr);
  const bool success = old == expected;
  if (success) {
    RawStore64(me, addr, desired);
    CloseSlice(me);
    ReleasePublish(me, sv);  // only a successful CAS releases
  } else {
    expected = old;
  }
  TurnEndTick(me);
  return success;
}

// ---------------------------------------------------------------------------
// Barriers
// ---------------------------------------------------------------------------

RfdetErrc RfdetRuntime::BarrierWait(size_t id) {
  ThreadCtx& me = Ctx();
  stats_.barriers.fetch_add(1, std::memory_order_relaxed);
  SyncVar& b = Var(id, SyncVar::Kind::kBarrier);
  PrepareSlice(me);
  TurnBegin(me, ReplayOp::kBarrier, id);
  // Unreachable through the public API in a correct runtime (an arrived
  // thread is paused until the cycle completes), but cheap to rule out.
  RFDET_CHECK_MSG(std::find(b.arrived.begin(), b.arrived.end(), me.tid) ==
                      b.arrived.end(),
                  "barrier re-entered before the cycle completed");
  if (b.arrived.size() + 1 < b.parties) {
    // We would block. A provable stall here means the barrier can never
    // fill — e.g. a party already blocked on a mutex we hold.
    if (const RfdetErrc err =
            CheckBlockPermitted(me, BlockKind::kBarrier, id, kNone,
                                /*can_back_out=*/true);
        err != RfdetErrc::kOk) {
      TurnEndTick(me);
      return err;
    }
  }
  CloseSlice(me);
  Record(TraceOp::kBarrierArrive, me.tid, id);
  b.arrived.push_back(me.tid);
  if (b.arrived.size() < b.parties) {
    SetBlocked(me, BlockKind::kBarrier, id);
    const uint32_t baseline = me.wake_seq.load(std::memory_order_acquire);
    TurnEndPause(me);
    Block(me, baseline);
    // The last arriver performed the merge and updated our view, log and
    // vector clock while we were blocked; nothing left to do.
    return RfdetErrc::kOk;
  }
  // Last arriver: perform the deterministic merge (paper §4.1 "Barriers").
  std::vector<size_t> group = std::move(b.arrived);
  b.arrived.clear();
  std::sort(group.begin(), group.end());
  ThreadCtx& root = CtxOf(group.front());
  if (options_.isolation) {
    // Merge every arriving thread's happens-before-barrier slices into the
    // smallest-tid thread, in tid order.
    for (const size_t u : group) {
      if (u == root.tid) continue;
      VectorClock upper;
      {
        std::scoped_lock lock(CtxOf(u).clock_mu);
        upper = CtxOf(u).vclock;
      }
      PropagateFrom(root, u, upper, /*prelock_phase=*/false);
    }
    root.view->FlushPending();
    // Everyone leaves with a (COW) copy of the merge thread's memory,
    // slice list and vector clock.
    for (const size_t u : group) {
      if (u == root.tid) continue;
      ThreadCtx& ctx = CtxOf(u);
      ctx.view->CopyFrom(*root.view);
      ctx.log.AssignFrom(root.log);
      std::scoped_lock lock(ctx.clock_mu, root.clock_mu);
      ctx.vclock = root.vclock;
      ctx.turn_time = root.vclock;
    }
    {
      std::scoped_lock lock(root.clock_mu);
      root.turn_time = root.vclock;
    }
  }
  Record(TraceOp::kBarrierRelease, me.tid, id);
  // Resume the blocked arrivers with deterministic clocks, tid order.
  uint64_t delta = 1;
  for (const size_t u : group) {
    if (u == me.tid) continue;
    Wake(me, CtxOf(u), delta++, kNone, VectorClock{});
  }
  TurnEndTick(me);
  return RfdetErrc::kOk;
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

void RfdetRuntime::WorkerMain(ThreadCtx& ctx, std::function<void()> fn) {
  g_tls = {this, &ctx};
  if (options_.isolation) ctx.view->ActivateOnThisThread();
  fn();
  ThreadExit(ctx);
  if (options_.isolation) ThreadView::DeactivateOnThisThread();
  g_tls = {nullptr, nullptr};
}

RfdetErrc RfdetRuntime::TrySpawn(std::function<void()> fn, size_t* out_tid) {
  ThreadCtx& me = Ctx();
  stats_.forks.fetch_add(1, std::memory_order_relaxed);
  PrepareSlice(me);
  TurnBegin(me, ReplayOp::kSpawn, kNone);
  // Thread creation is a release whose paired acquire is the child's entry
  // point; the child inherits the parent's memory, so no propagation is
  // needed (paper §4.1 "Thread Create and Join").
  CloseSlice(me);

  const bool injected = NondetFail(NondetSite::kSpawn, me.tid,
                                   FaultSite::kSpawn);
  size_t tid;
  ThreadCtx* child = nullptr;
  {
    std::scoped_lock lock(threads_mu_);
    tid = threads_.size();
    if (!injected && tid < options_.max_threads) {
      threads_.push_back(std::make_unique<ThreadCtx>());
      child = threads_.back().get();
    }
  }
  if (child == nullptr) {
    stats_.spawn_failures.fetch_add(1, std::memory_order_relaxed);
    ReportError(RfdetErrc::kAgain,
                injected ? "spawn failed (injected fault)"
                         : "spawn failed: max_threads (" +
                               std::to_string(options_.max_threads) +
                               ") reached");
    TurnEndTick(me);
    return RfdetErrc::kAgain;
  }
  child->tid = tid;
  {
    std::scoped_lock lock(me.clock_mu);
    child->vclock = me.vclock;
    child->turn_time = me.vclock;
  }
  if (options_.isolation) {
    child->view = std::make_unique<ThreadView>(
        options_.region_bytes, options_.monitor, &arena_,
        options_.fault_injector, TrackReads(),
        [this](RfdetErrc errc, const std::string& what) {
          ReportError(errc, what);
        });
    child->view->CopyFrom(*me.view);
    child->log.AssignFrom(me.log);
  }
  const size_t ktid = kendo_.RegisterThread(kendo_.Clock(me.tid) + 1);
  RFDET_CHECK(ktid == tid);
  try {
    child->worker = std::thread([this, child, fn = std::move(fn)]() mutable {
      WorkerMain(*child, std::move(fn));
    });
  } catch (const std::system_error&) {
    // The OS refused the host thread. Roll back under the turn: no other
    // thread can have observed the registration between claim and here.
    kendo_.UnregisterLast(tid);
    {
      std::scoped_lock lock(threads_mu_);
      threads_.pop_back();
    }
    stats_.spawn_failures.fetch_add(1, std::memory_order_relaxed);
    ReportError(RfdetErrc::kAgain,
                "spawn failed: host thread creation refused");
    // Not nondet-recorded: a host-thread refusal during replay simply
    // diverges (grant mismatch) and the run falls back to live.
    TurnEndTick(me);
    return RfdetErrc::kAgain;
  }
  Record(TraceOp::kFork, me.tid, tid);
  TurnEndTick(me);
  *out_tid = tid;
  return RfdetErrc::kOk;
}

size_t RfdetRuntime::Spawn(std::function<void()> fn) {
  size_t tid = kNone;
  const RfdetErrc err = TrySpawn(std::move(fn), &tid);
  RFDET_CHECK_MSG(err == RfdetErrc::kOk, "max_threads exceeded");
  return tid;
}

void RfdetRuntime::ThreadExit(ThreadCtx& me) {
  PrepareSlice(me);
  TurnBegin(me, ReplayOp::kThreadExit, kNone);
  CloseSlice(me);
  {
    std::scoped_lock lock(me.clock_mu);
    me.final_clock = me.vclock;
  }
  Record(TraceOp::kExit, me.tid, kNone);
  const size_t joiner = me.joiner;
  me.finished.store(true, std::memory_order_release);
  if (joiner != kNone) {
    RecordGrant(TraceOp::kJoin, joiner, me.tid, kendo_.Clock(me.tid) + 1);
    Wake(me, CtxOf(joiner), /*delta=*/1, me.tid, me.final_clock);
  }
  TurnEndExit(me);
}

RfdetErrc RfdetRuntime::Join(size_t tid) {
  ThreadCtx& me = Ctx();
  stats_.joins.fetch_add(1, std::memory_order_relaxed);
  // This validation runs before TurnBegin, so a sibling thread may be
  // mid-Spawn and reallocating threads_ right now; take the spawn lock for
  // the vector access. The ThreadCtx itself is heap-stable once created.
  ThreadCtx* target_ptr = nullptr;
  {
    std::scoped_lock lock(threads_mu_);
    RFDET_CHECK_MSG(tid < threads_.size() && tid != me.tid,
                    "bad join target");
    target_ptr = threads_[tid].get();
  }
  ThreadCtx& target = *target_ptr;
  RFDET_CHECK_MSG(!target.joined, "double join");
  PrepareSlice(me);
  TurnBegin(me, ReplayOp::kJoin, tid);
  if (!target.finished.load(std::memory_order_acquire)) {
    // We would block on the target: a join cycle (or joining while every
    // other thread is blocked) is a provable deadlock.
    if (const RfdetErrc err =
            CheckBlockPermitted(me, BlockKind::kJoin, tid, kNone,
                                /*can_back_out=*/true);
        err != RfdetErrc::kOk) {
      TurnEndTick(me);
      return err;
    }
  }
  CloseSlice(me);
  if (target.finished.load(std::memory_order_acquire)) {
    VectorClock upper;
    {
      std::scoped_lock lock(target.clock_mu);
      upper = target.final_clock;
    }
    PropagateFrom(me, tid, upper, /*prelock_phase=*/false);
    {
      std::scoped_lock lock(me.clock_mu);
      me.turn_time = me.vclock;
    }
    Record(TraceOp::kJoin, me.tid, tid);
    TurnEndTick(me);
  } else {
    RFDET_CHECK_MSG(target.joiner == kNone, "concurrent join");
    target.joiner = me.tid;
    SetBlocked(me, BlockKind::kJoin, tid);
    const uint32_t baseline = me.wake_seq.load(std::memory_order_acquire);
    TurnEndPause(me);
    Block(me, baseline);
    PropagateFrom(me, me.mail_src, me.mail_time, /*prelock_phase=*/false);
  }
  target.joined = true;
  if (target.worker.joinable()) target.worker.join();
  return RfdetErrc::kOk;
}

size_t RfdetRuntime::CurrentTid() const { return Ctx().tid; }

// ---------------------------------------------------------------------------
// Sync object creation
// ---------------------------------------------------------------------------

size_t RfdetRuntime::CreateMutex() {
  ThreadCtx& me = Ctx();
  TurnBegin(me, ReplayOp::kCreateMutex, kNone);
  size_t id;
  {
    std::scoped_lock lock(sync_vars_mu_);
    id = sync_vars_.size();
    sync_vars_.emplace_back(SyncVar::Kind::kMutex);
  }
  TurnEndTick(me);
  return id;
}

size_t RfdetRuntime::CreateCond() {
  ThreadCtx& me = Ctx();
  TurnBegin(me, ReplayOp::kCreateCond, kNone);
  size_t id;
  {
    std::scoped_lock lock(sync_vars_mu_);
    id = sync_vars_.size();
    sync_vars_.emplace_back(SyncVar::Kind::kCond);
  }
  TurnEndTick(me);
  return id;
}

size_t RfdetRuntime::CreateBarrier(size_t parties) {
  RFDET_CHECK(parties > 0);
  ThreadCtx& me = Ctx();
  TurnBegin(me, ReplayOp::kCreateBarrier, kNone);
  size_t id;
  {
    std::scoped_lock lock(sync_vars_mu_);
    id = sync_vars_.size();
    sync_vars_.emplace_back(SyncVar::Kind::kBarrier);
    sync_vars_.back().parties = parties;
  }
  TurnEndTick(me);
  return id;
}

// ---------------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------------

void RfdetRuntime::MaybeRunGc() {
  if (!options_.isolation) return;
  size_t cooldown = gc_cooldown_.load(std::memory_order_relaxed);
  if (cooldown > 0) {
    gc_cooldown_.store(cooldown - 1, std::memory_order_relaxed);
    return;
  }
  if (!arena_.NeedsGc()) return;
  std::unique_lock lock(gc_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // another thread is already collecting
  if (!arena_.NeedsGc()) return;
  const size_t pruned = RunGc();
  if (arena_.NeedsGc() && pruned == 0) {
    // Nothing collectable (paper §5.4: slices can outgrow the metadata
    // space when threads rarely synchronize); back off to avoid a storm.
    gc_cooldown_.store(4096, std::memory_order_relaxed);
  }
}

size_t RfdetRuntime::RunGc() {
  // A slice is garbage once its time is ≤ every live thread's clock: it
  // has then been merged into every private memory (paper §4.5).
  VectorClock bound;
  bool first = true;
  {
    std::scoped_lock lock(threads_mu_);
    for (const auto& ctx : threads_) {
      if (ctx->finished.load(std::memory_order_acquire)) continue;
      std::scoped_lock clock_lock(ctx->clock_mu);
      if (first) {
        bound = ctx->vclock;
        first = false;
      } else {
        bound.Meet(ctx->vclock);
      }
    }
  }
  if (first) return 0;  // no live threads (teardown)
  size_t pruned = 0;
  {
    std::scoped_lock lock(threads_mu_);
    // Fold each origin's about-to-retire prefix into its cumulative delta
    // (DESIGN.md §18) *before* the prune drops the slices. Correct because
    // the bound is the Meet of live clocks and vector clocks only grow, so
    // per-origin retirement is prefix-monotone: slices retire in seq order
    // and the fold never has to un-merge.
    if (options_.propagate_coalesce) {
      for (const auto& ctx : threads_) FoldRetired(*ctx, bound);
    }
    for (const auto& ctx : threads_) {
      pruned += ctx->log.Prune(bound);
    }
  }
  // Race-window entries with time ≤ bound can never be concurrent with a
  // future slice: retiring them here cannot change the race set, so GC
  // timing stays irrelevant to the deterministic reports.
  if (race_detector_ != nullptr) race_detector_->Retire(bound);
  arena_.RecordGc();
  stats_.slices_pruned.fetch_add(pruned, std::memory_order_relaxed);
  return pruned;
}

size_t RfdetRuntime::ForceGc() {
  std::scoped_lock lock(gc_mu_);
  return RunGc();
}

void RfdetRuntime::ResetFold(ThreadCtx::RetiredFold& fold) {
  if (fold.charged > 0) arena_.Release(fold.charged);
  fold.delta.Clear();
  fold.time = VectorClock();
  fold.first_seq = fold.last_seq = 0;
  fold.slices = 0;
  fold.charged = 0;
}

void RfdetRuntime::FoldRetired(ThreadCtx& t, const VectorClock& bound) {
  // This GC retires, from t's own log, exactly t's slices with time ≤
  // bound; they appear in the log in seq order (the owner appends them in
  // publication order and Prune preserves order).
  std::vector<SliceRef> retired;
  t.log.ForEach([&](const SliceRef& s) {
    if (s->tid() == t.tid && s->time().LessEq(bound)) retired.push_back(s);
  });
  if (retired.empty()) return;
  ThreadCtx::RetiredFold& f = t.fold;
  // Continuity: the fold covers [first_seq, last_seq] gap-free, or it is
  // meaningless. A gap (checkpoint restore rewound the numbering, or a
  // previous pressure reset dropped a prefix) restarts the fold at the
  // current retirement frontier.
  if (f.slices > 0 && retired.front()->seq() != f.last_seq + 1) {
    ResetFold(f);
  }
  size_t estimate = f.charged;
  for (const SliceRef& s : retired) estimate += s->mods().MemoryBytes();
  if (!arena_.HasRoom(estimate)) {
    // Recoverable: the fold is an accelerator, not a correctness
    // obligation — give it up under pressure and let a later GC restart.
    ResetFold(f);
    return;
  }
  for (const SliceRef& s : retired) {
    f.delta.MergeFrom(s->mods());
    f.time.Join(s->time());
    if (f.slices == 0) f.first_seq = s->seq();
    f.last_seq = s->seq();
    ++f.slices;
  }
  f.delta.Compact();
  const size_t now = f.delta.MemoryBytes();
  arena_.Release(f.charged);
  arena_.Charge(now);
  f.charged = now;
}

bool RfdetRuntime::RetiredDelta(size_t tid, ModList* delta,
                                uint64_t* first_seq,
                                uint64_t* last_seq) const {
  std::scoped_lock gc_lock(gc_mu_);
  std::scoped_lock lock(threads_mu_);
  if (tid >= threads_.size()) return false;
  const ThreadCtx::RetiredFold& f = threads_[tid]->fold;
  if (f.slices == 0) return false;
  if (delta != nullptr) *delta = f.delta;
  if (first_seq != nullptr) *first_seq = f.first_seq;
  if (last_seq != nullptr) *last_seq = f.last_seq;
  return true;
}

// ---------------------------------------------------------------------------
// Record / replay turn brackets
// ---------------------------------------------------------------------------

void RfdetRuntime::TurnBegin(ThreadCtx& me, ReplayOp op, uint64_t object) {
  if (replay_ != nullptr && replay_->mode() == ReplayMode::kReplay &&
      replay_->Active()) {
    // Our deterministic clock is final for this op: publish it and wake
    // whichever parked thread the min-tree now names. In replay a
    // granted thread parked in WaitForTurn may be waiting for exactly
    // our off-turn ticks, and we are about to block in AwaitGrant where
    // the turn-end handoff cannot come from us (live mode gets this
    // wake from TurnEndTick). Wake-only: cannot affect the replay order.
    kendo_.Handoff(me.tid);
    // Block on the recorded grant order first. Kendo then agrees
    // immediately: in replay every thread gates its WaitForTurn behind
    // AwaitGrant, so the engine only ever sees the log's order. A
    // mismatch retires the log (false return) and every thread — this
    // one included — falls through to live arbitration.
    (void)replay_->AwaitGrant(me.tid, op, object, kendo_.Clock(me.tid));
  }
  kendo_.WaitForTurn(me.tid);
  if (replay_ != nullptr && replay_->mode() == ReplayMode::kRecord &&
      replay_->Active()) {
    // Appended under the turn just taken: file order is the deterministic
    // synchronization order itself.
    replay_->RecordGrant(me.tid, op, object, kendo_.Clock(me.tid));
  }
}

void RfdetRuntime::ReplayTurnDone() {
  if (replay_ != nullptr && replay_->mode() == ReplayMode::kReplay &&
      replay_->Active()) {
    replay_->CompleteGrant();
  }
}

void RfdetRuntime::TurnEndTick(ThreadCtx& me) {
  MaybeAutoCheckpoint(me);  // still under the turn
  kendo_.Tick(me.tid);
  // Successor handoff (DESIGN.md §15): publish the raised clock into the
  // min-tree and wake the thread the new root names, so a parked loser
  // gets the turn without waiting out its liveness timeout. Pause/Exit
  // perform the equivalent internally.
  kendo_.Handoff(me.tid);
  ReplayTurnDone();
}

void RfdetRuntime::TurnEndPause(ThreadCtx& me) {
  kendo_.Pause(me.tid);
  ReplayTurnDone();
}

void RfdetRuntime::TurnEndExit(ThreadCtx& me) {
  kendo_.Exit(me.tid);
  ReplayTurnDone();
}

bool RfdetRuntime::NondetFail(NondetSite site, size_t tid,
                              FaultSite fault_site) {
  if (replay_ != nullptr && replay_->Active() &&
      replay_->mode() == ReplayMode::kReplay) {
    uint64_t v;
    if (replay_->NextNondet(site, tid, &v)) return v != 0;
    // Subsequence exhausted: NextNondet already declared the divergence;
    // fall through to the live injector like every other retired path.
  }
  FaultInjector* fi = options_.fault_injector;
  const bool fail = fi != nullptr && fi->ShouldFail(fault_site);
  if (replay_ != nullptr && replay_->Active() &&
      replay_->mode() == ReplayMode::kRecord) {
    replay_->RecordNondet(site, tid, fail ? 1 : 0);
  }
  return fail;
}

// ---------------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------------

bool RfdetRuntime::CheckpointQuiescent() const {
  std::scoped_lock lock(threads_mu_);
  for (const auto& ctx : threads_) {
    if (ctx->tid != 0 && !ctx->joined) return false;
  }
  return true;
}

void RfdetRuntime::MaybeAutoCheckpoint(ThreadCtx& me) {
  if (options_.checkpoint_interval_turns == 0) return;
  ++turns_since_checkpoint_;  // mutated under the turn only
  if (me.tid != 0 ||
      turns_since_checkpoint_ < options_.checkpoint_interval_turns) {
    return;
  }
  // Zero-perturbation gate: the image must be capturable *without*
  // closing a slice — an extra vector-clock tick here would make a
  // checkpointing run fingerprint-diverge from a non-checkpointing one.
  // That needs main's view clean (its last CloseSlice captured every
  // write, and no prepared slice is parked) and the runtime quiescent
  // (all spawned threads joined, so main's view contains their writes).
  if (me.view == nullptr || me.view->SliceDirty() || me.prepared.valid ||
      !CheckpointQuiescent()) {
    stats_.checkpoint_skips.fetch_add(1, std::memory_order_relaxed);
    return;  // counter stays armed: retry at main's next turn end
  }
  ForceGc();  // prune-only; GC timing never affects deterministic state
  if (LiveSliceCount() != 0 ||
      (race_detector_ != nullptr && !race_detector_->WindowEmpty())) {
    stats_.checkpoint_skips.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Success or not, the attempt consumes its interval. A failed write must
  // NOT stay armed and retry at main's next turn end: quiescence skips are
  // a pure function of the deterministic schedule, but an I/O failure is
  // not — letting it shift the landing point would capture images at turn
  // ends (e.g. a driver-loop read back at the top) that a fault-free run
  // never checkpoints and that the application may not be able to re-enter
  // consistently after a restore. Forfeiting the interval keeps the set of
  // possible image points identical with and without I/O faults.
  WriteCheckpoint(me);
  turns_since_checkpoint_ = 0;
}

RfdetErrc RfdetRuntime::CheckpointNow() {
  ThreadCtx& me = Ctx();
  if (options_.checkpoint_path.empty() || !options_.isolation) {
    ReportError(RfdetErrc::kInvalid,
                "CheckpointNow without options.checkpoint_path");
    return RfdetErrc::kInvalid;
  }
  if (me.tid != 0) {
    ReportError(RfdetErrc::kInvalid,
                "CheckpointNow is a main-thread operation");
    return RfdetErrc::kInvalid;
  }
  // An explicit checkpoint is a deterministic schedule transition in every
  // mode (it closes a slice and ticks the clock), so record and replay
  // runs stay in lockstep across it — the grant below is what lets a
  // replayed run reproduce a recorded run's checkpoint boundary.
  PrepareSlice(me);
  TurnBegin(me, ReplayOp::kCheckpoint, kNone);
  RfdetErrc result;
  if (!CheckpointQuiescent()) {
    stats_.checkpoint_skips.fetch_add(1, std::memory_order_relaxed);
    ReportError(RfdetErrc::kAgain,
                "checkpoint skipped: spawned threads not yet joined");
    result = RfdetErrc::kAgain;
  } else {
    CloseSlice(me);
    ForceGc();
    if (LiveSliceCount() != 0 ||
        (race_detector_ != nullptr && !race_detector_->WindowEmpty())) {
      // Unreachable when quiescent (every worker slice is merged and
      // retired by the GC above) — but never capture a partial image.
      stats_.checkpoint_skips.fetch_add(1, std::memory_order_relaxed);
      ReportError(RfdetErrc::kAgain,
                  "checkpoint skipped: live slices remain");
      result = RfdetErrc::kAgain;
    } else {
      result = WriteCheckpoint(me) ? RfdetErrc::kOk : RfdetErrc::kIo;
    }
    turns_since_checkpoint_ = 0;
  }
  TurnEndTick(me);
  return result;
}

void RfdetRuntime::SerializeCheckpoint(ThreadCtx& me, std::string& out) {
  wire::PutU64(out, kCheckpointVersion);
  wire::PutU64(out, options_.region_bytes);
  wire::PutU64(out, options_.static_bytes);
  wire::PutU64(out, options_.max_threads);
  wire::PutU64(out, checkpoint_seq_);
  // Resume clock in the fixed header (duplicating the main-clock field
  // below) so PeekCheckpoint can rank ring slots — and the supervisor can
  // detect a poison turn — without parsing the whole image. Restore
  // cross-checks the two copies.
  wire::PutU64(out, kendo_.Clock(me.tid) + 1);

  // Replay-log cursors, tying the image to its log tail.
  const bool replay_live = replay_ != nullptr && replay_->Active();
  wire::PutU64(out, replay_live ? 1 : 0);
  wire::PutU64(out, replay_live ? replay_->FileOffset() : 0);
  wire::PutU64(out, replay_live ? replay_->Grants() : 0);
  wire::PutU64(out, replay_live ? replay_->RaceCursor() : 0);
  const std::vector<uint64_t> nondet =
      replay_live ? replay_->NondetCounts() : std::vector<uint64_t>{};
  wire::PutU64(out, nondet.size());
  for (const uint64_t c : nondet) wire::PutU64(out, c);

  // Finished threads (quiescence: everyone but main is joined). Their
  // whole deterministic residue is the Kendo saved clock (Exit == Pause)
  // and the final vector clock a future Join would propagate from.
  {
    std::scoped_lock lock(threads_mu_);
    wire::PutU64(out, threads_.size());
    for (const auto& ctx : threads_) {
      if (ctx->tid == 0) continue;
      RFDET_DCHECK(ctx->joined);
      wire::PutU64(out, kendo_.SavedClock(ctx->tid));
      std::scoped_lock cl(ctx->clock_mu);
      PutClock(out, ctx->final_clock);
    }
  }

  // Main thread. Serialization runs inside the checkpointing turn, before
  // its terminal kendo_.Tick — but a restored run resumes *after* that
  // turn, so the image stores the post-tick clock.
  wire::PutU64(out, kendo_.Clock(me.tid) + 1);
  {
    std::scoped_lock lock(me.clock_mu);
    PutClock(out, me.vclock);
    PutClock(out, me.turn_time);
    wire::PutU64(out, me.slice_seq);
    wire::PutU64(out, me.held_mutexes.size());
    for (const size_t id : me.held_mutexes) wire::PutU64(out, id);
  }
  wire::PutU64(out, me.loads.load(std::memory_order_relaxed));
  wire::PutU64(out, me.stores.load(std::memory_order_relaxed));
  wire::PutU64(out, me.fp_applies);
  wire::PutU64(out, me.fp_sync_ops);

  // Sync objects. Queues are provably empty at quiescence (a queued
  // thread cannot exit, and everyone but main has): only the scalar state
  // and the DLRC release metadata survive.
  {
    std::scoped_lock lock(sync_vars_mu_);
    wire::PutU64(out, sync_vars_.size());
    for (const SyncVar& v : sync_vars_) {
      RFDET_DCHECK(v.waiters.empty() && v.cond_waiters.empty() &&
                   v.arrived.empty());
      wire::PutU64(out, static_cast<uint64_t>(v.kind));
      wire::PutU64(out, v.locked ? 1 : 0);
      wire::PutU64(out, v.owner);
      wire::PutU64(out, v.parties);
      wire::PutU64(out, v.last_tid);
      PutClock(out, v.last_time);
    }
    // Atomic-location mapping, sorted so the image is a pure function of
    // state (the map itself is unordered).
    std::vector<std::pair<GAddr, size_t>> atomics(atomic_vars_.begin(),
                                                  atomic_vars_.end());
    std::sort(atomics.begin(), atomics.end());
    wire::PutU64(out, atomics.size());
    for (const auto& [addr, id] : atomics) {
      wire::PutU64(out, addr);
      wire::PutU64(out, id);
    }
  }

  // Subsystem states, length-framed so a truncated image fails restore
  // validation before any state is touched.
  std::string sub;
  allocator_.SerializeState(sub);
  wire::PutString(out, sub);

  wire::PutU64(out, race_detector_ != nullptr ? 1 : 0);
  sub.clear();
  if (race_detector_ != nullptr) race_detector_->SerializeState(sub);
  wire::PutString(out, sub);

  wire::PutU64(out, fingerprint_ != nullptr ? 1 : 0);
  sub.clear();
  if (fingerprint_ != nullptr) fingerprint_->ExportStreams(sub);
  wire::PutString(out, sub);
}

bool RfdetRuntime::WriteCheckpoint(ThreadCtx& me) {
  const auto t0 = std::chrono::steady_clock::now();
  // The image claims a durable log offset: flush the recording first so
  // "restore + log tail" never references bytes a crash could lose.
  if (replay_ != nullptr && replay_->Active() &&
      replay_->mode() == ReplayMode::kRecord) {
    replay_->MarkCheckpoint(checkpoint_seq_);
    if (!replay_->Flush()) {
      stats_.checkpoint_io_errors.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  CheckpointWriter::Config wc;
  wc.path = CheckpointSlotPath(options_.checkpoint_path,
                               options_.checkpoint_retain, checkpoint_seq_);
  wc.injector = options_.fault_injector;
  wc.on_error = [this](RfdetErrc errc, const std::string& what) {
    ReportError(errc, what);
  };
  CheckpointWriter writer(wc);
  // Remote slices applied lazily may still be parked as pending runs;
  // materialize them so the page scan sees every propagated write. Pure
  // view-internal state — a non-checkpointing run would do the same work
  // at the next local touch — so this stays zero-perturbation.
  me.view->FlushPending();
  std::string blob;
  SerializeCheckpoint(me, blob);
  bool ok = writer.Begin() && writer.Append(blob.data(), blob.size());
  if (ok) {
    // Region pages: non-zero resident pages only (restore starts from a
    // zeroed region). The pf view is memfd-backed, so page payloads can
    // be spliced kernel-side straight from the flat file.
    const int memfd = me.view->MemfdFd();
    std::string hdr;
    me.view->ForEachResidentPage([&](PageId pid, const std::byte* bytes) {
      if (!ok || PageIsZero(bytes)) return;
      hdr.clear();
      wire::PutU64(hdr, pid);
      ok = writer.Append(hdr.data(), hdr.size());
      if (!ok) return;
      ok = memfd >= 0
               ? writer.AppendFromFd(memfd, PageBase(pid), kPageSize)
               : writer.Append(bytes, kPageSize);
    });
  }
  if (ok) {
    std::string tail;
    wire::PutU64(tail, kPageSentinel);
    ok = writer.Append(tail.data(), tail.size()) && writer.Commit();
  }
  stats_.checkpoint_ns.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()),
      std::memory_order_relaxed);
  if (!ok) {
    stats_.checkpoint_io_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ++checkpoint_seq_;
  stats_.checkpoints_written.fetch_add(1, std::memory_order_relaxed);
  stats_.checkpoint_bytes.fetch_add(writer.BytesWritten(),
                                    std::memory_order_relaxed);
  return true;
}

bool RfdetRuntime::RestoreLatestValid() {
  // Rank every ring slot by its header sequence number and attempt a full
  // restore newest-first. Phase-1 validation inside RestoreFromCheckpoint
  // keeps a rejected attempt side-effect-free (and the subsystem restores
  // it can reach overwrite wholesale), so falling back to an older image
  // after a corrupt newest one is safe.
  struct Candidate {
    uint64_t seq;
    std::string path;
  };
  std::vector<Candidate> ranked;
  for (const std::string& slot : CheckpointRingPaths(
           options_.restore_checkpoint_path, options_.checkpoint_retain)) {
    CheckpointPeek peek;
    if (PeekCheckpoint(slot, &peek)) ranked.push_back({peek.seq, slot});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.seq > b.seq;
            });
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (RestoreFromCheckpoint(ranked[i].path, i + 1 == ranked.size())) {
      return true;
    }
  }
  if (ranked.empty()) {
    ReportError(RfdetErrc::kIo,
                "checkpoint restore failed (" +
                    options_.restore_checkpoint_path +
                    "): no valid image in ring; starting fresh");
  }
  return false;
}

bool RfdetRuntime::RestoreFromCheckpoint(const std::string& path,
                                         bool last_candidate) {
  // On the last (or only) candidate a failure means the run starts fresh;
  // earlier in the ring it just means the next-newest image is tried.
  const char* const and_then =
      last_candidate ? "; starting fresh" : "; trying older image";
  const auto fail = [&](const std::string& why) {
    ReportError(RfdetErrc::kIo, "checkpoint restore failed (" + path +
                                    "): " + why + and_then);
    return false;
  };
  std::string blob;
  if (!LoadCheckpointFile(
          path, options_.fault_injector,
          [&](RfdetErrc errc, const std::string& what) {
            ReportError(errc, what + and_then);
          },
          &blob)) {
    return false;  // already reported
  }

  // ---- phase 1: parse and validate everything into staging ---------------
  // Nothing below this comment mutates runtime state until the whole image
  // (including the page section) has been bounds-checked, so a truncated
  // or mismatched file leaves the fresh-constructed runtime untouched.
  size_t pos = 0;
  uint64_t version, region, statics, maxthreads, seq, resume_clock;
  if (!wire::GetU64(blob, &pos, &version) ||
      !wire::GetU64(blob, &pos, &region) ||
      !wire::GetU64(blob, &pos, &statics) ||
      !wire::GetU64(blob, &pos, &maxthreads) ||
      !wire::GetU64(blob, &pos, &seq) ||
      !wire::GetU64(blob, &pos, &resume_clock)) {
    return fail("truncated header");
  }
  if (version != kCheckpointVersion) {
    return fail("image version " + std::to_string(version) +
                " (expected " + std::to_string(kCheckpointVersion) + ")");
  }
  if (region != options_.region_bytes || statics != options_.static_bytes ||
      maxthreads != options_.max_threads) {
    return fail("geometry mismatch (image region/static/threads " +
                std::to_string(region) + "/" + std::to_string(statics) +
                "/" + std::to_string(maxthreads) + ")");
  }

  ReplayResume resume;
  uint64_t replay_active, nondet_n;
  if (!wire::GetU64(blob, &pos, &replay_active) ||
      !wire::GetU64(blob, &pos, &resume.file_offset) ||
      !wire::GetU64(blob, &pos, &resume.grant_cursor) ||
      !wire::GetU64(blob, &pos, &resume.race_cursor) ||
      !wire::GetU64(blob, &pos, &nondet_n) || nondet_n > blob.size() / 8) {
    return fail("truncated replay cursors");
  }
  resume.active = replay_active != 0;
  resume.nondet_consumed.resize(nondet_n);
  for (uint64_t i = 0; i < nondet_n; ++i) {
    if (!wire::GetU64(blob, &pos, &resume.nondet_consumed[i])) {
      return fail("truncated replay cursors");
    }
  }

  uint64_t nthreads;
  if (!wire::GetU64(blob, &pos, &nthreads) || nthreads == 0 ||
      nthreads > options_.max_threads) {
    return fail("bad thread count");
  }
  struct DeadThread {
    uint64_t saved_clock = 0;
    VectorClock final_clock;
  };
  std::vector<DeadThread> dead(nthreads - 1);
  for (DeadThread& t : dead) {
    if (!wire::GetU64(blob, &pos, &t.saved_clock) ||
        !GetClock(blob, &pos, &t.final_clock)) {
      return fail("truncated thread table");
    }
  }

  uint64_t main_clock, slice_seq, nheld;
  VectorClock main_vclock, main_turn_time;
  if (!wire::GetU64(blob, &pos, &main_clock) ||
      !GetClock(blob, &pos, &main_vclock) ||
      !GetClock(blob, &pos, &main_turn_time) ||
      !wire::GetU64(blob, &pos, &slice_seq) ||
      !wire::GetU64(blob, &pos, &nheld) || nheld > blob.size() / 8) {
    return fail("truncated main-thread state");
  }
  if (main_clock != resume_clock) {
    return fail("header resume clock " + std::to_string(resume_clock) +
                " disagrees with main clock " + std::to_string(main_clock));
  }
  std::vector<size_t> held(nheld);
  for (uint64_t i = 0; i < nheld; ++i) {
    uint64_t id;
    if (!wire::GetU64(blob, &pos, &id)) {
      return fail("truncated main-thread state");
    }
    held[i] = id;
  }
  uint64_t main_loads, main_stores, main_fp_applies, main_fp_sync_ops;
  if (!wire::GetU64(blob, &pos, &main_loads) ||
      !wire::GetU64(blob, &pos, &main_stores) ||
      !wire::GetU64(blob, &pos, &main_fp_applies) ||
      !wire::GetU64(blob, &pos, &main_fp_sync_ops)) {
    return fail("truncated main-thread state");
  }

  uint64_t nsync;
  if (!wire::GetU64(blob, &pos, &nsync) || nsync > blob.size() / 8) {
    return fail("truncated sync-object table");
  }
  struct SyncStage {
    uint64_t kind, locked, owner, parties, last_tid;
    VectorClock last_time;
  };
  std::vector<SyncStage> syncs(nsync);
  for (SyncStage& s : syncs) {
    if (!wire::GetU64(blob, &pos, &s.kind) || s.kind > 2 ||
        !wire::GetU64(blob, &pos, &s.locked) ||
        !wire::GetU64(blob, &pos, &s.owner) ||
        !wire::GetU64(blob, &pos, &s.parties) ||
        !wire::GetU64(blob, &pos, &s.last_tid) ||
        !GetClock(blob, &pos, &s.last_time)) {
      return fail("truncated sync-object table");
    }
  }
  uint64_t natomics;
  if (!wire::GetU64(blob, &pos, &natomics) || natomics > nsync) {
    return fail("truncated atomic-location table");
  }
  std::vector<std::pair<GAddr, size_t>> atomics(natomics);
  for (auto& [addr, id] : atomics) {
    uint64_t a, i;
    if (!wire::GetU64(blob, &pos, &a) || !wire::GetU64(blob, &pos, &i) ||
        i >= nsync) {
      return fail("truncated atomic-location table");
    }
    addr = a;
    id = i;
  }

  std::string alloc_blob, race_blob, fp_blob;
  uint64_t has_race, has_fp;
  if (!wire::GetString(blob, &pos, &alloc_blob) ||
      !wire::GetU64(blob, &pos, &has_race) ||
      !wire::GetString(blob, &pos, &race_blob) ||
      !wire::GetU64(blob, &pos, &has_fp) ||
      !wire::GetString(blob, &pos, &fp_blob)) {
    return fail("truncated subsystem state");
  }
  if (has_race != 0 && race_detector_ == nullptr) {
    return fail("image carries race-detector state but race_policy is off");
  }
  if (has_fp != 0 && fingerprint_ == nullptr) {
    return fail("image carries fingerprint state but fingerprinting is off");
  }

  // Page section: pre-scan offsets so application below cannot fail.
  const size_t page_count = options_.region_bytes / kPageSize;
  std::vector<std::pair<PageId, size_t>> pages;  // pid → payload offset
  for (;;) {
    uint64_t pid;
    if (!wire::GetU64(blob, &pos, &pid)) return fail("truncated page table");
    if (pid == kPageSentinel) break;
    if (pid >= page_count || blob.size() - pos < kPageSize) {
      return fail("truncated page table");
    }
    pages.emplace_back(static_cast<PageId>(pid), pos);
    pos += kPageSize;
  }

  // ---- phase 2: commit ----------------------------------------------------
  // Subsystem restores go first: their parsers build into locals and
  // commit atomically, so an internal failure (a corrupt full-length
  // image — truncation was caught above) still leaves the thread table,
  // the Kendo engine, and the region untouched for the fresh run.
  size_t sub_pos = 0;
  if (!allocator_.RestoreState(alloc_blob, &sub_pos)) {
    return fail("allocator state rejected");
  }
  if (has_race != 0) {
    sub_pos = 0;
    if (!race_detector_->RestoreState(race_blob, &sub_pos)) {
      return fail("race-detector state rejected");
    }
  }
  if (has_fp != 0) {
    sub_pos = 0;
    if (!fingerprint_->ImportStreams(fp_blob, &sub_pos)) {
      return fail("fingerprint state rejected");
    }
  }

  ThreadCtx& main = *threads_[0];
  for (size_t i = 1; i < nthreads; ++i) {
    auto ctx = std::make_unique<ThreadCtx>();
    ctx->tid = i;
    ctx->finished.store(true, std::memory_order_release);
    ctx->joined = true;
    ctx->final_clock = dead[i - 1].final_clock;
    ctx->vclock = dead[i - 1].final_clock;
    ctx->turn_time = dead[i - 1].final_clock;
    {
      std::scoped_lock lock(threads_mu_);
      threads_.push_back(std::move(ctx));
    }
    const size_t tid = kendo_.RegisterThread(0);
    RFDET_CHECK(tid == i);
    kendo_.RestoreSlot(i, KendoEngine::kPaused, dead[i - 1].saved_clock);
  }
  kendo_.RestoreSlot(0, main_clock, 0);
  {
    std::scoped_lock lock(main.clock_mu);
    main.vclock = main_vclock;
    main.turn_time = main_turn_time;
    main.held_mutexes = std::move(held);
  }
  main.slice_seq = slice_seq;
  main.loads.store(main_loads, std::memory_order_relaxed);
  main.stores.store(main_stores, std::memory_order_relaxed);
  main.fp_applies = main_fp_applies;
  main.fp_sync_ops = main_fp_sync_ops;

  {
    std::scoped_lock lock(sync_vars_mu_);
    for (const SyncStage& s : syncs) {
      sync_vars_.emplace_back(static_cast<SyncVar::Kind>(s.kind));
      SyncVar& v = sync_vars_.back();
      v.locked = s.locked != 0;
      v.owner = s.owner;
      v.parties = s.parties;
      v.last_tid = s.last_tid;
      v.last_time = s.last_time;
    }
    for (const auto& [addr, id] : atomics) atomic_vars_.emplace(addr, id);
  }

  for (const auto& [pid, offset] : pages) {
    main.view->RestorePage(
        pid, reinterpret_cast<const std::byte*>(blob.data() + offset));
  }

  checkpoint_seq_ = seq + 1;
  restored_seq_ = seq;
  restored_clock_ = main_clock;
  restored_resume_ = std::move(resume);
  return true;
}

// ---------------------------------------------------------------------------
// Failure reporting / diagnostics
// ---------------------------------------------------------------------------

void RfdetRuntime::ReportError(RfdetErrc errc, const std::string& what) {
  if (options_.on_error) {
    options_.on_error(errc, what);
    return;
  }
  // No sink installed: note each error code once on stderr (the caller
  // still gets the structured status; this is just so a silently ignored
  // status leaves a trace).
  const uint32_t bit = 1u << static_cast<uint32_t>(errc);
  if (error_note_mask_.fetch_or(bit, std::memory_order_relaxed) & bit) return;
  std::fprintf(stderr, "rfdet: error (%s): %s\n", ErrcName(errc),
               what.c_str());
}

// ---------------------------------------------------------------------------
// Determinism self-verification
// ---------------------------------------------------------------------------

uint64_t RfdetRuntime::RegionDigest() {
  // Level 3 of the fingerprint hierarchy: the static segment, where
  // workloads place their shared output. Reads go through the main view
  // (plain loads — no ticks, no schedule perturbation), so lazily parked
  // runs are resolved the same way the workload's own reads would.
  const size_t n = options_.static_bytes;
  if (!options_.isolation) {
    return ExecutionFingerprint::HashBytes(shared_image_.get(), n);
  }
  ThreadView& view = *threads_[0]->view;
  std::vector<std::byte> buf(kPageSize);
  uint64_t h = kFnvOffset;
  for (size_t off = 0; off < n; off += kPageSize) {
    const size_t chunk = std::min(kPageSize, n - off);
    view.Load(off, buf.data(), chunk);
    h = ExecutionFingerprint::HashBytes(buf.data(), chunk, h);
  }
  return h;
}

uint64_t RfdetRuntime::FinalizeFingerprint() {
  if (fingerprint_ == nullptr ||
      options_.fingerprint == FingerprintMode::kOff) {
    return 0;
  }
  uint64_t region = RegionDigest();
  if (race_detector_ != nullptr) {
    // Fold the detection-order race digest into the rollup: a kVerify
    // run whose race set diverges from the recording fails verification
    // even if the region contents happen to agree.
    const uint64_t races = race_detector_->Digest();
    region = ExecutionFingerprint::HashBytes(&races, sizeof races, region);
  }
  return fingerprint_->Finalize(region);
}

std::string RfdetRuntime::LastDivergenceReport() const {
  return fingerprint_ != nullptr ? fingerprint_->LastDivergenceReport() : "";
}

void RfdetRuntime::UpdateTurnFingerprint(ThreadCtx& t) {
  uint64_t events;
  uint64_t epochs;
  uint64_t chain;
  fingerprint_->ThreadProgress(t.tid, &events, &epochs, &chain);
  std::scoped_lock lock(t.clock_mu);
  t.turn_fp_events = events;
  t.turn_fp_epochs = epochs;
}

void RfdetRuntime::ParanoiaFailure(const std::string& what) {
  stats_.paranoia_failures.fetch_add(1, std::memory_order_relaxed);
  // fingerprint_ exists whenever dlrc_paranoia is set (see constructor);
  // the divergence sink provides report retention, the tap, and policy.
  fingerprint_->RaiseDivergence("rfdet: DIVERGENCE: dlrc_paranoia: " + what +
                                "\n");
}

void RfdetRuntime::ParanoiaCheckMods(const ThreadCtx& t,
                                     const ModList& mods) {
  const std::string who = "slice of thread " + std::to_string(t.tid);
  size_t total = 0;
  for (const ModRun& run : mods.Runs()) {
    if (run.len == 0) {
      ParanoiaFailure(who + " has an empty modification run");
      return;
    }
    if (static_cast<size_t>(run.data_offset) + run.len > mods.ByteCount()) {
      ParanoiaFailure(who + " has a run whose payload [" +
                      std::to_string(run.data_offset) + ", +" +
                      std::to_string(run.len) +
                      ") lies outside the diff data");
      return;
    }
    if (run.addr + run.len > options_.region_bytes) {
      ParanoiaFailure(who + " modifies bytes beyond the shared region (addr " +
                      std::to_string(run.addr) + ", len " +
                      std::to_string(run.len) + ")");
      return;
    }
    total += run.len;
  }
  if (total != mods.ByteCount()) {
    ParanoiaFailure(who + " run lengths sum to " + std::to_string(total) +
                    " but the diff payload is " +
                    std::to_string(mods.ByteCount()) + " bytes");
  }
}

uint64_t RfdetRuntime::ProgressFingerprint() const noexcept {
  // Fold every Kendo clock slot (FNV-style). Any turn transition — tick,
  // pause, resume, register — changes some slot, so a constant fingerprint
  // over a window means the schedule is stalled. Reads are racy on
  // purpose: the watchdog must never synchronize with the schedule.
  const size_t n = kendo_.ThreadCount();
  uint64_t h = 0xcbf29ce484222325ULL ^ n;
  for (size_t t = 0; t < n; ++t) {
    h = (h ^ kendo_.Clock(t)) * 0x100000001b3ULL;
  }
  return h;
}

std::string RfdetRuntime::DumpStateReport() const {
  std::ostringstream os;
  os << "=== rfdet state report ===\n";
  {
    std::scoped_lock lock(threads_mu_);
    for (const auto& ctx : threads_) {
      const ThreadCtx& t = *ctx;
      os << "thread " << t.tid << ": ";
      if (t.finished.load(std::memory_order_acquire)) {
        os << "finished";
      } else if (kendo_.IsPaused(t.tid)) {
        os << "paused (saved kendo clock " << kendo_.SavedClock(t.tid)
           << ")";
      } else {
        os << "kendo clock " << kendo_.Clock(t.tid);
        if (kendo_.IsParkedInWait(t.tid)) os << " (parked in turn wait)";
      }
      BlockKind kind;
      size_t object;
      std::string held;
      VectorClock vclock;
      {
        std::scoped_lock cl(t.clock_mu);
        kind = t.block_kind;
        object = t.block_object;
        held = JoinTids(t.held_mutexes);
        vclock = t.vclock;
      }
      if (kind != BlockKind::kNone) {
        os << ", blocked on " << BlockDesc(kind, object);
      }
      os << ", holds mutexes [" << held << "], vclock " << vclock << "\n";
    }
  }
  {
    // Queue contents are mutated under turns without sync_vars_mu_; these
    // reads are diagnostics-grade (the interesting case — a stalled
    // schedule — has no concurrent mutator anyway).
    std::scoped_lock lock(sync_vars_mu_);
    for (size_t id = 0; id < sync_vars_.size(); ++id) {
      const SyncVar& v = sync_vars_[id];
      os << "sync " << id << ": ";
      switch (v.kind) {
        case SyncVar::Kind::kMutex:
          os << "mutex " << (v.locked ? "locked" : "unlocked");
          if (v.owner != kNone) os << " owner=" << v.owner;
          os << " waiters=[" << JoinTids(v.waiters) << "]";
          break;
        case SyncVar::Kind::kCond:
          os << "cond waiters=[" << JoinTids(v.cond_waiters) << "]";
          break;
        case SyncVar::Kind::kBarrier:
          os << "barrier parties=" << v.parties << " arrived=["
             << JoinTids(v.arrived) << "]";
          break;
      }
      os << "\n";
    }
  }
  os << "arena: used " << arena_.Used() << " / " << arena_.Capacity()
     << " bytes, peak " << arena_.Peak() << ", gc count "
     << arena_.GcCount() << "\n";
  os << "kernels: " << simd::KernelTierName(simd::Kernels().tier)
     << ", off-turn close "
     << (options_.off_turn_close ? "enabled" : "disabled") << " ("
     << stats_.offturn_prepared_slices.load(std::memory_order_relaxed)
     << " slices, "
     << stats_.offturn_prepared_bytes.load(std::memory_order_relaxed)
     << " bytes prepared off turn, "
     << stats_.close_turn_ns.load(std::memory_order_relaxed)
     << " ns closing under the turn)\n";
  os << "coalesce: "
     << (options_.propagate_coalesce ? "enabled" : "disabled") << " (min "
     << options_.propagate_coalesce_min << "), "
     << stats_.coalesced_spans.load(std::memory_order_relaxed)
     << " spans covering "
     << stats_.coalesced_slices.load(std::memory_order_relaxed)
     << " slices, "
     << stats_.coalesce_bytes_saved.load(std::memory_order_relaxed)
     << " bytes saved\n";
  {
    const TurnWaitCounters tw = kendo_.WaitCounters();
    os << "turn-wait: " << TurnWaitModeName(kendo_.wait_mode()) << ", "
       << tw.spins << " spins, " << tw.parks << " parks ("
       << tw.park_ns / 1'000'000 << " ms parked), " << tw.wakeups
       << " wakeups, " << tw.handoffs << " handoffs\n";
  }
  if (stats_.exec_regions.load(std::memory_order_relaxed) > 0) {
    os << "exec: "
       << stats_.exec_regions.load(std::memory_order_relaxed)
       << " regions, " << stats_.exec_chunks.load(std::memory_order_relaxed)
       << " chunks, " << stats_.exec_items.load(std::memory_order_relaxed)
       << " worklist items, "
       << stats_.exec_donations.load(std::memory_order_relaxed)
       << " donations ("
       << stats_.exec_donated_items.load(std::memory_order_relaxed)
       << " items), reduce depth "
       << stats_.exec_reduce_depth.load(std::memory_order_relaxed) << "\n";
  }
  if (fingerprint_ != nullptr) os << fingerprint_->ProgressSummary();
  if (race_detector_ != nullptr) os << race_detector_->Summary();
  if (replay_ != nullptr) os << replay_->ProgressSummary() << "\n";
  if (!options_.checkpoint_path.empty() ||
      !options_.restore_checkpoint_path.empty()) {
    os << "checkpoint: seq " << checkpoint_seq_ << ", "
       << stats_.checkpoints_written.load(std::memory_order_relaxed)
       << " written ("
       << stats_.checkpoint_bytes.load(std::memory_order_relaxed)
       << " bytes, "
       << stats_.checkpoint_skips.load(std::memory_order_relaxed)
       << " skipped, "
       << stats_.checkpoint_io_errors.load(std::memory_order_relaxed)
       << " io-errors)";
    if (options_.checkpoint_interval_turns > 0) {
      os << ", interval " << options_.checkpoint_interval_turns
         << " turns (" << turns_since_checkpoint_ << " since last)";
    }
    if (restored_) os << ", restored from checkpoint";
    os << "\n";
  }
  if (options_.record_trace) {
    const std::vector<TraceEvent> events = Trace();
    const uint64_t dropped =
        stats_.trace_dropped.load(std::memory_order_relaxed);
    const size_t n = events.size();
    const size_t start = n > 16 ? n - 16 : 0;
    os << "trace tail (" << (n - start) << " of " << n << " buffered, "
       << dropped << " dropped):\n";
    for (size_t i = start; i < n; ++i) {
      const TraceEvent& e = events[i];
      // Index in the full schedule, counting ring-evicted events.
      os << "  [" << (dropped + i) << "] tid " << e.tid << " "
         << TraceOpName(e.op);
      if (e.object != kNone) os << " obj " << e.object;
      os << " clock " << e.kendo_clock << "\n";
    }
  }
  os << "=== end state report ===\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

void RfdetRuntime::Record(TraceOp op, size_t acting_tid, size_t object) {
  const bool fp = fingerprint_ != nullptr && fingerprint_->Absorbing();
  const bool skew =
      options_.test_mutation.kind == DetMutation::Kind::kSkewKendoTick;
  if (!options_.record_trace && !fp && !skew) return;
  const uint64_t raw = kendo_.Clock(acting_tid);
  const bool paused = raw == KendoEngine::kPaused;
  const uint64_t clock = paused ? kendo_.SavedClock(acting_tid) : raw;
  if (fp) {
    fingerprint_->OnSyncOp(acting_tid, static_cast<uint8_t>(op),
                           TraceOpName(op), object, clock);
  }
  // Test-only schedule skew: one extra tick at the target's index-th
  // self-recorded, non-paused op. Self-recorded only (not events a waker
  // records on a granted waiter's behalf — the waiter may already be
  // running, so ticking it here would race), and non-paused only (ticking
  // a paused slot would corrupt the kPaused sentinel). Both conditions are
  // themselves deterministic, so the counter is too.
  if (skew && !paused && acting_tid == options_.test_mutation.tid &&
      g_tls.ctx == &CtxOf(acting_tid) &&
      CtxOf(acting_tid).fp_sync_ops++ == options_.test_mutation.index) {
    kendo_.Tick(acting_tid, 1);
  }
  if (!options_.record_trace) return;
  AppendTrace(TraceEvent{acting_tid, op, object, clock});
}

void RfdetRuntime::RecordGrant(TraceOp op, size_t granted_tid, size_t object,
                               uint64_t granted_clock) {
  const bool fp = fingerprint_ != nullptr && fingerprint_->Absorbing();
  if (!options_.record_trace && !fp) return;
  if (fp) {
    fingerprint_->OnSyncOp(granted_tid, static_cast<uint8_t>(op),
                           TraceOpName(op), object, granted_clock);
  }
  if (!options_.record_trace) return;
  AppendTrace(TraceEvent{granted_tid, op, object, granted_clock});
}

void RfdetRuntime::AppendTrace(const TraceEvent& event) {
  std::scoped_lock lock(trace_mu_);
  if (trace_.size() < options_.trace_limit) {
    const size_t before = trace_.capacity();
    trace_.push_back(event);
    if (trace_.capacity() != before) {
      const size_t delta =
          (trace_.capacity() - before) * sizeof(TraceEvent);
      arena_.Charge(delta);
      trace_charged_ += delta;
    }
    return;
  }
  // Ring full: overwrite the oldest event.
  trace_[trace_next_] = event;
  trace_next_ = (trace_next_ + 1) % trace_.size();
  stats_.trace_dropped.fetch_add(1, std::memory_order_relaxed);
}

std::vector<RfdetRuntime::TraceEvent> RfdetRuntime::Trace() const {
  std::scoped_lock lock(trace_mu_);
  // Reassemble schedule order: the ring's oldest event is at trace_next_
  // once the buffer has wrapped.
  std::vector<TraceEvent> out;
  out.reserve(trace_.size());
  for (size_t i = 0; i < trace_.size(); ++i) {
    out.push_back(trace_[(trace_next_ + i) % trace_.size()]);
  }
  return out;
}

size_t RfdetRuntime::LiveSliceCount() const {
  size_t n = 0;
  std::scoped_lock lock(threads_mu_);
  for (const auto& ctx : threads_) n += ctx->log.Size();
  return n;
}

void RfdetRuntime::NoteExec(ExecEvent event, uint64_t n) noexcept {
  switch (event) {
    case ExecEvent::kRegion:
      stats_.exec_regions.fetch_add(n, std::memory_order_relaxed);
      break;
    case ExecEvent::kChunk:
      stats_.exec_chunks.fetch_add(n, std::memory_order_relaxed);
      break;
    case ExecEvent::kItem:
      stats_.exec_items.fetch_add(n, std::memory_order_relaxed);
      break;
    case ExecEvent::kDonation:
      stats_.exec_donations.fetch_add(n, std::memory_order_relaxed);
      break;
    case ExecEvent::kDonatedItems:
      stats_.exec_donated_items.fetch_add(n, std::memory_order_relaxed);
      break;
    case ExecEvent::kReduceDepth: {
      uint64_t cur =
          stats_.exec_reduce_depth.load(std::memory_order_relaxed);
      while (cur < n && !stats_.exec_reduce_depth.compare_exchange_weak(
                            cur, n, std::memory_order_relaxed)) {
      }
      break;
    }
  }
}

StatsSnapshot RfdetRuntime::Snapshot() const {
  StatsSnapshot s;
  s.locks = stats_.locks.load();
  s.unlocks = stats_.unlocks.load();
  s.cond_waits = stats_.cond_waits.load();
  s.cond_signals = stats_.cond_signals.load();
  s.barriers = stats_.barriers.load();
  s.forks = stats_.forks.load();
  s.joins = stats_.joins.load();
  s.slices_created = stats_.slices_created.load();
  s.slices_merged = stats_.slices_merged.load();
  s.slices_propagated = stats_.slices_propagated.load();
  s.apply_plans_built = stats_.apply_plans_built.load();
  s.bytes_propagated = stats_.bytes_propagated.load();
  s.prelock_slices = stats_.prelock_slices.load();
  s.prelock_bytes = stats_.prelock_bytes.load();
  s.slices_pruned = stats_.slices_pruned.load();
  s.coalesced_spans = stats_.coalesced_spans.load();
  s.coalesced_slices = stats_.coalesced_slices.load();
  s.coalesce_bytes_saved = stats_.coalesce_bytes_saved.load();
  s.offturn_prepared_slices = stats_.offturn_prepared_slices.load();
  s.offturn_prepared_bytes = stats_.offturn_prepared_bytes.load();
  s.close_turn_ns = stats_.close_turn_ns.load();
  s.gc_count = arena_.GcCount();
  s.metadata_peak_bytes = arena_.Peak();
  s.deadlocks_detected = stats_.deadlocks_detected.load();
  s.watchdog_stalls = stats_.watchdog_stalls.load();
  s.arena_gc_retries = stats_.arena_gc_retries.load();
  s.metadata_overflows = stats_.metadata_overflows.load();
  s.alloc_failures = stats_.alloc_failures.load();
  s.spawn_failures = stats_.spawn_failures.load();
  s.trace_dropped = stats_.trace_dropped.load();
  s.paranoia_failures = stats_.paranoia_failures.load();
  if (fingerprint_ != nullptr) {
    s.fingerprint_events = fingerprint_->Events();
    s.fingerprint_epochs = fingerprint_->Epochs();
    s.fingerprint_divergences = fingerprint_->Divergences();
    s.fingerprint_io_errors = fingerprint_->IoErrors();
  }
  if (race_detector_ != nullptr) {
    s.races_ww = race_detector_->RacesWW();
    s.races_rw_pages = race_detector_->RacesRWPages();
    s.race_checks = race_detector_->Checks();
    s.race_prefilter_hits = race_detector_->PrefilterHits();
    s.race_window_evictions = race_detector_->WindowEvictions();
  }
  {
    const TurnWaitCounters tw = kendo_.WaitCounters();
    s.turn_spins = tw.spins;
    s.turn_parks = tw.parks;
    s.turn_wakeups = tw.wakeups;
    s.turn_handoffs = tw.handoffs;
    s.park_ns = tw.park_ns;
  }
  if (replay_ != nullptr) {
    s.replay_grants = replay_->Grants();
    s.replay_divergences = replay_->Divergences();
    s.replay_io_errors = replay_->IoErrors();
  }
  s.checkpoints_written = stats_.checkpoints_written.load();
  s.checkpoint_skips = stats_.checkpoint_skips.load();
  s.checkpoint_bytes = stats_.checkpoint_bytes.load();
  s.checkpoint_ns = stats_.checkpoint_ns.load();
  s.checkpoint_io_errors = stats_.checkpoint_io_errors.load();
  s.restores = stats_.restores.load();
  s.exec_regions = stats_.exec_regions.load();
  s.exec_chunks = stats_.exec_chunks.load();
  s.exec_items = stats_.exec_items.load();
  s.exec_donations = stats_.exec_donations.load();
  s.exec_donated_items = stats_.exec_donated_items.load();
  s.exec_reduce_depth = stats_.exec_reduce_depth.load();
  std::scoped_lock lock(threads_mu_);
  for (const auto& ctx : threads_) {
    s.loads += ctx->loads.load(std::memory_order_relaxed);
    s.stores += ctx->stores.load(std::memory_order_relaxed);
    if (ctx->view) {
      const ViewStats& v = ctx->view->Stats();
      s.stores_with_copy += v.stores_with_copy;
      s.page_faults += v.page_faults;
      s.mprotect_calls += v.mprotect_calls;
      s.pages_diffed += v.pages_diffed;
      s.lazy_runs_parked += v.lazy_runs_parked;
      s.lazy_runs_coalesced += v.lazy_runs_coalesced;
      s.lazy_pages_applied += v.lazy_pages_applied;
      s.planned_applies += v.planned_applies;
      s.resident_bytes += ctx->view->ResidentBytes();
    }
  }
  if (!options_.isolation) s.resident_bytes = options_.region_bytes;
  return s;
}

}  // namespace rfdet
