#include "rfdet/simd/kernels.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "rfdet/common/hash.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define RFDET_KERNELS_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define RFDET_KERNELS_NEON 1
#endif

namespace rfdet::simd {
namespace {

// ---------------------------------------------------------------------------
// Shared run builder. Each tier only supplies a 64-bit "differs" mask per
// 64-byte block (bit i set ⇔ byte i differs); run extraction and the merge
// of runs spanning block boundaries are common, which is what makes the
// tiers byte-identical by construction.
// ---------------------------------------------------------------------------

size_t AppendMaskRuns(uint64_t mask, size_t base, DiffRun* out,
                      size_t count) noexcept {
  while (mask != 0) {
    const auto start = static_cast<unsigned>(std::countr_zero(mask));
    const uint64_t shifted = mask >> start;
    const auto len = static_cast<unsigned>(std::countr_one(shifted));
    const auto abs = static_cast<uint32_t>(base + start);
    if (count > 0 && out[count - 1].start + out[count - 1].len == abs) {
      out[count - 1].len += len;
    } else {
      out[count++] = DiffRun{abs, static_cast<uint32_t>(len)};
    }
    if (start + len >= 64) break;
    mask = (shifted >> len) << (start + len);
  }
  return count;
}

template <uint64_t (*DiffMask)(const std::byte*, const std::byte*)>
size_t PageDiffRunsImpl(const std::byte* snap, const std::byte* cur,
                        DiffRun* out) {
  size_t count = 0;
  for (size_t base = 0; base < kPageSize; base += 64) {
    const uint64_t mask = DiffMask(snap + base, cur + base);
    if (mask != 0) count = AppendMaskRuns(mask, base, out, count);
  }
  return count;
}

// ---------------------------------------------------------------------------
// Scalar tier. Word-compare to skip equal words, byte-compare only inside
// differing words (endian-independent).
// ---------------------------------------------------------------------------

uint64_t DiffMask64Scalar(const std::byte* a, const std::byte* b) {
  uint64_t mask = 0;
  for (size_t w = 0; w < 8; ++w) {
    uint64_t x;
    uint64_t y;
    std::memcpy(&x, a + 8 * w, 8);
    std::memcpy(&y, b + 8 * w, 8);
    if (x == y) continue;
    for (size_t j = 0; j < 8; ++j) {
      if (a[8 * w + j] != b[8 * w + j]) mask |= uint64_t{1} << (8 * w + j);
    }
  }
  return mask;
}

bool Block64EqualScalar(const std::byte* a, const std::byte* b) {
  uint64_t acc = 0;
  for (size_t w = 0; w < 8; ++w) {
    uint64_t x;
    uint64_t y;
    std::memcpy(&x, a + 8 * w, 8);
    std::memcpy(&y, b + 8 * w, 8);
    acc |= x ^ y;
  }
  return acc == 0;
}

void CopyBytesScalar(std::byte* dst, const std::byte* src, size_t n) {
  std::memcpy(dst, src, n);
}

void FnvLanes32Scalar(uint64_t lanes[4], const unsigned char* data, size_t n) {
  for (size_t i = 0; i + 32 <= n; i += 32) {
    for (size_t l = 0; l < 4; ++l) {
      uint64_t w;
      std::memcpy(&w, data + i + 8 * l, 8);
      lanes[l] = (lanes[l] ^ w) * kFnvPrime;
    }
  }
}

size_t AndFirstSetScalar(const uint64_t* a, const uint64_t* b, size_t nwords) {
  for (size_t w = 0; w < nwords; ++w) {
    const uint64_t x = a[w] & b[w];
    if (x != 0) return w * 64 + static_cast<size_t>(std::countr_zero(x));
  }
  return SIZE_MAX;
}

constexpr KernelOps kScalarOps = {KernelTier::kScalar,    Block64EqualScalar,
                                  PageDiffRunsImpl<DiffMask64Scalar>,
                                  CopyBytesScalar,         FnvLanes32Scalar,
                                  AndFirstSetScalar};

// ---------------------------------------------------------------------------
// x86: SSE2 and AVX2 tiers. Per-function target attributes keep the rest of
// the build at the baseline ISA; the dispatcher only hands out a table the
// running CPU supports.
// ---------------------------------------------------------------------------

#if defined(RFDET_KERNELS_X86)

__attribute__((target("sse2"))) uint64_t DiffMask64Sse2(const std::byte* a,
                                                        const std::byte* b) {
  uint64_t mask = 0;
  for (size_t v = 0; v < 4; ++v) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + 16 * v));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + 16 * v));
    const auto eq =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)));
    mask |= uint64_t{~eq & 0xffffu} << (16 * v);
  }
  return mask;
}

__attribute__((target("sse2"))) bool Block64EqualSse2(const std::byte* a,
                                                      const std::byte* b) {
  const auto* pa = reinterpret_cast<const __m128i*>(a);
  const auto* pb = reinterpret_cast<const __m128i*>(b);
  __m128i eq = _mm_cmpeq_epi8(_mm_loadu_si128(pa), _mm_loadu_si128(pb));
  for (size_t v = 1; v < 4; ++v) {
    eq = _mm_and_si128(eq, _mm_cmpeq_epi8(_mm_loadu_si128(pa + v),
                                          _mm_loadu_si128(pb + v)));
  }
  return _mm_movemask_epi8(eq) == 0xffff;
}

__attribute__((target("sse2"))) void CopyBytesSse2(std::byte* dst,
                                                   const std::byte* src,
                                                   size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
  }
  if (i < n) std::memcpy(dst + i, src + i, n - i);
}

// 64-bit lane multiply built from 32-bit partial products; exact mod 2^64,
// so the digests match the scalar IMUL bit for bit.
__attribute__((target("sse2"))) inline __m128i Mul64Sse2(__m128i a,
                                                         __m128i b) {
  const __m128i lolo = _mm_mul_epu32(a, b);
  const __m128i cross =
      _mm_add_epi64(_mm_mul_epu32(a, _mm_srli_epi64(b, 32)),
                    _mm_mul_epu32(_mm_srli_epi64(a, 32), b));
  return _mm_add_epi64(lolo, _mm_slli_epi64(cross, 32));
}

__attribute__((target("sse2"))) void FnvLanes32Sse2(uint64_t lanes[4],
                                                    const unsigned char* data,
                                                    size_t n) {
  const __m128i prime = _mm_set1_epi64x(static_cast<int64_t>(kFnvPrime));
  __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes));
  __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes + 2));
  for (size_t i = 0; i + 32 <= n; i += 32) {
    const auto* p = reinterpret_cast<const __m128i*>(data + i);
    lo = Mul64Sse2(_mm_xor_si128(lo, _mm_loadu_si128(p)), prime);
    hi = Mul64Sse2(_mm_xor_si128(hi, _mm_loadu_si128(p + 1)), prime);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), lo);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes + 2), hi);
}

__attribute__((target("sse2"))) size_t AndFirstSetSse2(const uint64_t* a,
                                                       const uint64_t* b,
                                                       size_t nwords) {
  size_t w = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; w + 2 <= nwords; w += 2) {
    const __m128i x = _mm_and_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + w)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + w)));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(x, zero)) != 0xffff) {
      return AndFirstSetScalar(a + w, b + w, 2) + w * 64;
    }
  }
  if (w < nwords && (a[w] & b[w]) != 0) {
    return w * 64 + static_cast<size_t>(std::countr_zero(a[w] & b[w]));
  }
  return SIZE_MAX;
}

constexpr KernelOps kSse2Ops = {KernelTier::kSse2,      Block64EqualSse2,
                                PageDiffRunsImpl<DiffMask64Sse2>,
                                CopyBytesSse2,           FnvLanes32Sse2,
                                AndFirstSetSse2};

__attribute__((target("avx2"))) uint64_t DiffMask64Avx2(const std::byte* a,
                                                        const std::byte* b) {
  const __m256i a0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i a1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 32));
  const __m256i b0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  const __m256i b1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 32));
  const auto eq0 = static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(a0, b0)));
  const auto eq1 = static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(a1, b1)));
  return uint64_t{~eq0} | (uint64_t{~eq1} << 32);
}

__attribute__((target("avx2"))) bool Block64EqualAvx2(const std::byte* a,
                                                      const std::byte* b) {
  const __m256i eq = _mm256_and_si256(
      _mm256_cmpeq_epi8(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b))),
      _mm256_cmpeq_epi8(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 32)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 32))));
  return _mm256_movemask_epi8(eq) == -1;
}

__attribute__((target("avx2"))) void CopyBytesAvx2(std::byte* dst,
                                                   const std::byte* src,
                                                   size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
  }
  if (i < n) std::memcpy(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) inline __m256i Mul64Avx2(__m256i a,
                                                         __m256i b) {
  const __m256i lolo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
                       _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
  return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) void FnvLanes32Avx2(uint64_t lanes[4],
                                                    const unsigned char* data,
                                                    size_t n) {
  const __m256i prime = _mm256_set1_epi64x(static_cast<int64_t>(kFnvPrime));
  __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes));
  for (size_t i = 0; i + 32 <= n; i += 32) {
    const __m256i stripe =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    acc = Mul64Avx2(_mm256_xor_si256(acc, stripe), prime);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
}

__attribute__((target("avx2"))) size_t AndFirstSetAvx2(const uint64_t* a,
                                                       const uint64_t* b,
                                                       size_t nwords) {
  size_t w = 0;
  for (; w + 4 <= nwords; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    if (!_mm256_testz_si256(va, vb)) {
      return AndFirstSetScalar(a + w, b + w, 4) + w * 64;
    }
  }
  const size_t rest = AndFirstSetScalar(a + w, b + w, nwords - w);
  return rest == SIZE_MAX ? SIZE_MAX : rest + w * 64;
}

constexpr KernelOps kAvx2Ops = {KernelTier::kAvx2,      Block64EqualAvx2,
                                PageDiffRunsImpl<DiffMask64Avx2>,
                                CopyBytesAvx2,           FnvLanes32Avx2,
                                AndFirstSetAvx2};

#endif  // RFDET_KERNELS_X86

// ---------------------------------------------------------------------------
// aarch64: NEON tier (baseline on aarch64, no runtime probe needed). NEON
// has no 64-bit lane multiply, so the FNV fold stays scalar.
// ---------------------------------------------------------------------------

#if defined(RFDET_KERNELS_NEON)

uint64_t DiffMask64Neon(const std::byte* a, const std::byte* b) {
  static const uint8x8_t kBitSel = {1, 2, 4, 8, 16, 32, 64, 128};
  uint64_t mask = 0;
  for (size_t w = 0; w < 8; ++w) {
    const uint8x8_t va = vld1_u8(reinterpret_cast<const uint8_t*>(a + 8 * w));
    const uint8x8_t vb = vld1_u8(reinterpret_cast<const uint8_t*>(b + 8 * w));
    const uint8x8_t ne = vmvn_u8(vceq_u8(va, vb));
    mask |= uint64_t{vaddv_u8(vand_u8(ne, kBitSel))} << (8 * w);
  }
  return mask;
}

bool Block64EqualNeon(const std::byte* a, const std::byte* b) {
  const auto* pa = reinterpret_cast<const uint8_t*>(a);
  const auto* pb = reinterpret_cast<const uint8_t*>(b);
  uint8x16_t acc = veorq_u8(vld1q_u8(pa), vld1q_u8(pb));
  for (size_t v = 1; v < 4; ++v) {
    acc = vorrq_u8(acc, veorq_u8(vld1q_u8(pa + 16 * v), vld1q_u8(pb + 16 * v)));
  }
  return vmaxvq_u8(acc) == 0;
}

void CopyBytesNeon(std::byte* dst, const std::byte* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(reinterpret_cast<uint8_t*>(dst + i),
             vld1q_u8(reinterpret_cast<const uint8_t*>(src + i)));
  }
  if (i < n) std::memcpy(dst + i, src + i, n - i);
}

constexpr KernelOps kNeonOps = {KernelTier::kNeon,      Block64EqualNeon,
                                PageDiffRunsImpl<DiffMask64Neon>,
                                CopyBytesNeon,           FnvLanes32Scalar,
                                AndFirstSetScalar};

#endif  // RFDET_KERNELS_NEON

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

const KernelOps* OpsForName(std::string_view name) noexcept {
  if (name == "auto") return KernelsForTier(BestSupportedTier());
  if (name == "scalar") return KernelsForTier(KernelTier::kScalar);
  if (name == "sse2") return KernelsForTier(KernelTier::kSse2);
  if (name == "avx2") return KernelsForTier(KernelTier::kAvx2);
  if (name == "neon") return KernelsForTier(KernelTier::kNeon);
  return nullptr;
}

const KernelOps& DefaultOps() noexcept {
  static const KernelOps* chosen = [] {
    if (const char* env = std::getenv("RFDET_KERNELS");
        env != nullptr && *env != '\0') {
      if (const KernelOps* ops = OpsForName(env)) return ops;
      std::fprintf(stderr,
                   "rfdet: RFDET_KERNELS=%s is unknown or unsupported here; "
                   "using auto\n",
                   env);
    }
    return KernelsForTier(BestSupportedTier());
  }();
  return *chosen;
}

std::atomic<const KernelOps*> g_selected{nullptr};

}  // namespace

const char* KernelTierName(KernelTier tier) noexcept {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kSse2:
      return "sse2";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kNeon:
      return "neon";
  }
  return "?";
}

KernelTier BestSupportedTier() noexcept {
#if defined(RFDET_KERNELS_X86)
  if (__builtin_cpu_supports("avx2")) return KernelTier::kAvx2;
  if (__builtin_cpu_supports("sse2")) return KernelTier::kSse2;
#endif
#if defined(RFDET_KERNELS_NEON)
  return KernelTier::kNeon;
#endif
  return KernelTier::kScalar;
}

const KernelOps* KernelsForTier(KernelTier tier) noexcept {
  switch (tier) {
    case KernelTier::kScalar:
      return &kScalarOps;
    case KernelTier::kSse2:
#if defined(RFDET_KERNELS_X86)
      if (__builtin_cpu_supports("sse2")) return &kSse2Ops;
#endif
      return nullptr;
    case KernelTier::kAvx2:
#if defined(RFDET_KERNELS_X86)
      if (__builtin_cpu_supports("avx2")) return &kAvx2Ops;
#endif
      return nullptr;
    case KernelTier::kNeon:
#if defined(RFDET_KERNELS_NEON)
      return &kNeonOps;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

std::vector<KernelTier> SupportedTiers() {
  std::vector<KernelTier> tiers;
  for (KernelTier t : {KernelTier::kAvx2, KernelTier::kNeon, KernelTier::kSse2,
                       KernelTier::kScalar}) {
    if (KernelsForTier(t) != nullptr) tiers.push_back(t);
  }
  return tiers;
}

std::string SelectKernels(std::string_view name) {
  const KernelOps* ops = OpsForName(name);
  if (ops == nullptr) {
    std::string err = "unknown or unsupported kernel tier \"";
    err.append(name);
    err += "\" (valid: auto, scalar";
#if defined(RFDET_KERNELS_X86)
    if (__builtin_cpu_supports("sse2")) err += ", sse2";
    if (__builtin_cpu_supports("avx2")) err += ", avx2";
#endif
#if defined(RFDET_KERNELS_NEON)
    err += ", neon";
#endif
    err += ")";
    return err;
  }
  g_selected.store(ops, std::memory_order_release);
  return "";
}

const KernelOps& Kernels() noexcept {
  const KernelOps* ops = g_selected.load(std::memory_order_acquire);
  return ops != nullptr ? *ops : DefaultOps();
}

}  // namespace rfdet::simd
