// Runtime-dispatched byte kernels for the propagation hot loops.
//
// Four primitives dominate the slice-close and apply paths: 64-byte block
// equality (snapshot diffing), page diff-to-runs (ModList construction),
// bulk copy (planned apply), and the four-lane word-FNV fold (execution
// fingerprinting). Each gets an AVX2 / SSE2 / NEON / scalar variant behind
// one dispatch table selected once at startup (cpuid on x86, unconditional
// on aarch64), overridable with RFDET_KERNELS=scalar|sse2|avx2|neon|auto or
// RfdetOptions::kernels.
//
// Every variant is byte-identical to the scalar one: diff runs are the
// maximal differing-byte runs (a pure function of the two buffers) and the
// FNV lane arithmetic is exact mod 2^64, so a fingerprint recorded with one
// tier verifies under any other — including across ISAs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rfdet/mem/addr.h"

namespace rfdet::simd {

enum class KernelTier : uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };

const char* KernelTierName(KernelTier tier) noexcept;

// One maximal run of differing bytes inside a page, page-relative.
struct DiffRun {
  uint32_t start;
  uint32_t len;
};

// Worst case: every other byte differs.
inline constexpr size_t kMaxDiffRuns = kPageSize / 2;

// Below roughly this many bytes the indirect call through the dispatch
// table costs more than the vector variant saves; hot call sites with
// mostly-tiny inputs (fingerprint runs, apply segments) inline a scalar
// path below the cutoff and dispatch above it. Any fixed cutoff is
// deterministic — both paths compute byte-identical results.
inline constexpr size_t kDispatchMinBytes = 256;

struct KernelOps {
  KernelTier tier;

  // Equality of two 64-byte blocks; no alignment requirement.
  bool (*block64_equal)(const std::byte* a, const std::byte* b);

  // Writes the maximal differing-byte runs between two kPageSize buffers to
  // `out` (capacity kMaxDiffRuns) and returns the run count. Output is a
  // pure function of the inputs, so every tier produces identical runs.
  size_t (*page_diff_runs)(const std::byte* snap, const std::byte* cur,
                           DiffRun* out);

  // memcpy semantics; ranges must not overlap.
  void (*copy_bytes)(std::byte* dst, const std::byte* src, size_t n);

  // Folds n bytes (n % 32 == 0) into four FNV lanes: per 32-byte stripe,
  // lane[l] = (lane[l] ^ word_l) * kFnvPrime with little-endian 8-byte
  // words. Exact mod 2^64 on every tier.
  void (*fnv_lanes32)(uint64_t lanes[4], const unsigned char* data, size_t n);

  // Bit index of the first set bit of a[i] & b[i] over nwords words, or
  // SIZE_MAX when the intersection is empty (race-detector byte intersect).
  size_t (*and_first_set)(const uint64_t* a, const uint64_t* b, size_t nwords);
};

// Best tier this machine can run.
KernelTier BestSupportedTier() noexcept;

// Ops for one tier; nullptr when the tier is not compiled in or the CPU
// lacks it. KernelsForTier(kScalar) never fails.
const KernelOps* KernelsForTier(KernelTier tier) noexcept;

// Tiers runnable on this machine, best first; always ends with kScalar.
std::vector<KernelTier> SupportedTiers();

// Process-wide selection. "auto" resolves to BestSupportedTier(); a tier
// name forces that tier. Returns "" on success, else an error message
// (unknown name or unsupported tier) and the selection is unchanged.
std::string SelectKernels(std::string_view name);

// Current selection. Before any SelectKernels call this honours the
// RFDET_KERNELS environment variable when it names a usable tier (a bad
// value warns on stderr once) and otherwise resolves "auto".
const KernelOps& Kernels() noexcept;

}  // namespace rfdet::simd
