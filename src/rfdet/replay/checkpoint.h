// Crash-consistent checkpoint file I/O.
//
// A checkpoint captures the runtime's complete deterministic state at a
// quiescent turn boundary (see Runtime::CheckpointNow): region pages,
// allocator and arena cursors, kendo clocks, vector clocks, sync-object
// state, race-detector state, fingerprint streams, and the replay-log
// cursors that tie the image to its log tail. This file provides only the
// *file* layer; serialization of the state itself lives in the runtime
// (which owns the state).
//
// Crash consistency comes from the commit protocol, not from the format:
// the image is written to `<path>.tmp` and rename(2)d over `<path>` only
// after a successful fsync, so `<path>` always names the latest *complete*
// checkpoint — a crash mid-write leaves the previous image intact.
//
// Page payloads can bypass user space: when the source view is backed by a
// memfd (the pf monitor's always-RW alias mapping), AppendFromFd issues
// copy_file_range(2) from the memfd straight into the checkpoint file,
// falling back to pread+write where the syscall is unavailable or refuses
// the pairing.
//
// Failures — including injected FaultSite::kCheckpointIo faults — follow
// the subsystem-wide fail-safe discipline: surface RfdetErrc::kIo through
// on_error, leave the previous checkpoint untouched, and never crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rfdet/common/error.h"

namespace rfdet {

class FaultInjector;

inline constexpr char kCheckpointMagic[8] = {'R', 'F', 'D', 'T',
                                             'C', 'K', '0', '1'};
// Image format version (first u64 after the magic). v2 added the resume
// kendo clock to the fixed header so supervisors can rank images and
// detect poison turns without parsing (or trusting) the full image.
inline constexpr uint64_t kCheckpointVersion = 2;

class CheckpointWriter {
 public:
  struct Config {
    std::string path;
    FaultInjector* injector = nullptr;  // kCheckpointIo site
    std::function<void(RfdetErrc, const std::string&)> on_error;
  };

  explicit CheckpointWriter(const Config& config);
  ~CheckpointWriter();  // aborts (removes the tmp file) if not committed

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  // Opens `<path>.tmp` and writes the magic. False on failure.
  [[nodiscard]] bool Begin();
  // Appends raw bytes. False on failure (writer is then dead).
  [[nodiscard]] bool Append(const void* data, size_t len);
  // Appends `len` bytes read from `fd` at `offset`, using copy_file_range
  // when the kernel accepts the pairing (zero user-space copies), else
  // pread+write.
  [[nodiscard]] bool AppendFromFd(int fd, uint64_t offset, size_t len);
  // fsync + atomic rename over `path`. False on failure (previous
  // checkpoint file, if any, is left intact).
  [[nodiscard]] bool Commit();

  [[nodiscard]] uint64_t BytesWritten() const noexcept { return bytes_; }
  [[nodiscard]] uint64_t FastPathBytes() const noexcept {
    return fast_bytes_;
  }

 private:
  [[nodiscard]] bool IoFault() noexcept;
  bool Fail(const std::string& what);
  void Abort();

  const std::string path_;
  const std::string tmp_path_;
  FaultInjector* const injector_;
  const std::function<void(RfdetErrc, const std::string&)> on_error_;
  int fd_ = -1;
  bool failed_ = false;
  bool committed_ = false;
  uint64_t bytes_ = 0;
  uint64_t fast_bytes_ = 0;
};

// Reads `path`, verifies the magic, and returns the payload (everything
// after the magic) in `*blob`. On failure reports RfdetErrc::kIo through
// `on_error` and returns false.
[[nodiscard]] bool LoadCheckpointFile(
    const std::string& path, FaultInjector* injector,
    const std::function<void(RfdetErrc, const std::string&)>& on_error,
    std::string* blob);

// ---- image ring ------------------------------------------------------------
//
// With options.checkpoint_retain == K > 1 the runtime rotates committed
// images over `<base>.<seq % K>` instead of overwriting one file; restore
// (and the supervisor's resume-point picker) ranks every slot by the
// header sequence number and tries them newest-first. The bare `<base>`
// path is also accepted as a candidate so a ring can be seeded from (or
// downgraded to) a retain-1 image.

// Fixed-header fields readable without loading the page payload. A peek
// is a cheap sanity scan for ranking ring slots — full validation is the
// restore's two-phase parse; a slot that peeks fine can still be rejected
// there and the next-newest slot tried.
struct CheckpointPeek {
  uint64_t version = 0;
  uint64_t seq = 0;           // checkpoint sequence number (monotonic)
  uint64_t resume_clock = 0;  // main-thread kendo clock execution resumes at
  uint64_t log_offset = 0;    // durable replay-log offset tied to the image
  bool replay_active = false;
};

// Reads `path`'s fixed header into `*out`. False (with no error report —
// absent or stale slots are expected while scanning a ring) when the file
// is missing, truncated before the header, carries a bad magic, or names
// a different format version.
[[nodiscard]] bool PeekCheckpoint(const std::string& path,
                                  CheckpointPeek* out);

// The slot file the image with sequence number `seq` is written to.
[[nodiscard]] std::string CheckpointSlotPath(const std::string& base,
                                             size_t retain, uint64_t seq);

// Every candidate slot path for a ring rooted at `base` (ring slots first,
// the bare base path last).
[[nodiscard]] std::vector<std::string> CheckpointRingPaths(
    const std::string& base, size_t retain);

}  // namespace rfdet
