// Deterministic record/replay log.
//
// Determinism makes an execution a pure function of its inputs — so the
// *complete* description of a run is tiny: the turn-ordered sequence of
// synchronization grants (which thread passed Kendo arbitration, for what
// operation, at what deterministic clock), plus the few genuinely
// nondeterministic inputs the runtime admits (fault-injector decisions on
// off-turn allocation paths, OS spawn failures). This log captures exactly
// that:
//
//   * grant records — one per WaitForTurn passage, appended under the turn
//     itself, so file order *is* the deterministic synchronization order;
//   * race records — the RaceDetector's deduplicated findings, reported
//     under the detecting thread's turn (deterministic order), so a replay
//     can cross-check that it reproduces the same race set;
//   * nondet records — Try* outcomes. Grant-ordered sites (spawn) are
//     appended under the turn; allocation sites run off-turn, so their
//     file interleaving is nondeterministic — but each (site, tid)
//     subsequence is deterministic, which is the granularity replay
//     consumes them at.
//
// In kRecord mode records are buffered and flushed on demand (the
// checkpoint path flushes before capturing the durable byte offset, which
// is what makes "restore from checkpoint + log tail" crash-consistent). In
// kReplay mode the log is parsed up front and *drives* arbitration: each
// thread blocks in AwaitGrant until the cursor reaches its next recorded
// grant, giving the recorded run's exact turn order without live Kendo
// waits. Kendo clocks still tick normally during replay, so any
// divergence (mismatched grant, exhausted log, I/O failure) retires the
// replayer and execution falls back to live arbitration seamlessly.
//
// All file I/O follows the fingerprint subsystem's fail-safe discipline:
// failures (including injected FaultSite::kReplayIo faults) count an
// io_error, surface RfdetErrc::kIo through on_error, and retire the
// subsystem — they never crash or wedge the execution.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "rfdet/common/error.h"
#include "rfdet/common/turn_wait.h"

namespace rfdet {

class FaultInjector;

enum class ReplayMode : uint8_t {
  kOff = 0,
  kRecord,  // append grants/races/nondet to the log file
  kReplay,  // drive arbitration from a recorded log
};

// What kind of synchronization transition a grant covers. Purely a
// cross-check: replay verifies the op (and object, and clock) of every
// grant it hands out, so a divergent execution is caught at the first
// wrong synchronization attempt instead of corrupting silently.
enum class ReplayOp : uint8_t {
  kLock = 0,
  kUnlock,
  kCondWait,
  kCondSignal,
  kCondBroadcast,
  kBarrier,
  kAtomicLoad,
  kAtomicStore,
  kAtomicRmw,
  kAtomicCas,
  kSpawn,
  kJoin,
  kThreadExit,
  kCreateMutex,
  kCreateCond,
  kCreateBarrier,
  kCheckpoint,
};

[[nodiscard]] constexpr const char* ReplayOpName(ReplayOp op) noexcept {
  switch (op) {
    case ReplayOp::kLock: return "lock";
    case ReplayOp::kUnlock: return "unlock";
    case ReplayOp::kCondWait: return "cond-wait";
    case ReplayOp::kCondSignal: return "signal";
    case ReplayOp::kCondBroadcast: return "broadcast";
    case ReplayOp::kBarrier: return "barrier";
    case ReplayOp::kAtomicLoad: return "atomic-load";
    case ReplayOp::kAtomicStore: return "atomic-store";
    case ReplayOp::kAtomicRmw: return "atomic-rmw";
    case ReplayOp::kAtomicCas: return "atomic-cas";
    case ReplayOp::kSpawn: return "spawn";
    case ReplayOp::kJoin: return "join";
    case ReplayOp::kThreadExit: return "thread-exit";
    case ReplayOp::kCreateMutex: return "create-mutex";
    case ReplayOp::kCreateCond: return "create-cond";
    case ReplayOp::kCreateBarrier: return "create-barrier";
    case ReplayOp::kCheckpoint: return "checkpoint";
  }
  return "?";
}

// Nondeterministic-input sites. Allocation outcomes are nondeterministic
// only through the fault injector (a seeded injector keys on the *global*
// hit index, which off-turn allocations race for); spawn additionally
// admits OS thread-creation failure.
enum class NondetSite : uint8_t {
  kSpawn = 0,
  kHeapAlloc,
  kStaticAlloc,
};
inline constexpr size_t kNumNondetSites = 3;

// Cursor state needed to resume a log mid-stream after a checkpoint
// restore (see replay/checkpoint.h). `nondet_consumed` is indexed
// site * max_threads + tid.
struct ReplayResume {
  bool active = false;
  uint64_t file_offset = 0;   // durable log bytes at the checkpoint
  uint64_t grant_cursor = 0;  // grants consumed before the checkpoint
  uint64_t race_cursor = 0;
  std::vector<uint64_t> nondet_consumed;
};

class ReplayLog {
 public:
  struct Config {
    ReplayMode mode = ReplayMode::kOff;
    std::string path;
    size_t max_threads = 64;
    FaultInjector* injector = nullptr;  // kReplayIo site
    // How AwaitGrant waits for the cursor to reach this thread's grant —
    // the same knob as the live engine's wait (common/turn_wait.h). The
    // replay order is log-driven, so the mode cannot change what is
    // replayed, only the CPU spent waiting for it.
    TurnWaitMode turn_wait = TurnWaitMode::kAdaptive;
    uint32_t turn_spin_budget = 512;
    // Divergence sink (replay mismatch / log exhaustion); the runtime
    // wires this into the fingerprint divergence machinery.
    std::function<void(const std::string&)> on_divergence;
    // Sink for recoverable file-I/O failures (RfdetErrc::kIo).
    std::function<void(RfdetErrc, const std::string&)> on_error;
    // When restoring from a checkpoint: kRecord reopens the existing log,
    // truncates it to `file_offset` (dropping any post-crash tail) and
    // appends; kReplay seeks its cursors past the already-consumed prefix.
    ReplayResume resume;
  };

  explicit ReplayLog(const Config& config);
  ~ReplayLog();

  ReplayLog(const ReplayLog&) = delete;
  ReplayLog& operator=(const ReplayLog&) = delete;

  [[nodiscard]] ReplayMode mode() const noexcept { return mode_; }
  // True while the log should be fed (record) or consulted (replay):
  // mode is not kOff and no divergence/I-O failure has retired it.
  [[nodiscard]] bool Active() const noexcept;

  // ---- record side ---------------------------------------------------------

  // One WaitForTurn passage (call under the granted turn).
  void RecordGrant(size_t tid, ReplayOp op, uint64_t object, uint64_t clock);
  // A deduplicated race report (called under the detecting turn).
  void RecordRace(uint64_t kind, uint64_t first_tid, uint64_t second_tid,
                  uint64_t page);
  // A Try* outcome. Safe off-turn (internally synchronized).
  void RecordNondet(NondetSite site, size_t tid, uint64_t value);
  // Informational checkpoint marker (debugging aid in log dumps).
  void MarkCheckpoint(uint64_t checkpoint_seq);

  // Makes all buffered records durable. Returns false on I/O failure
  // (after which the log is retired). The checkpoint path calls this
  // before capturing FileOffset().
  bool Flush();
  // Durable byte offset after the last successful Flush.
  [[nodiscard]] uint64_t FileOffset() const;
  // Flush + close; idempotent. Called at runtime teardown.
  void Finalize();

  // ---- replay side ---------------------------------------------------------

  // Blocks until the cursor grant belongs to `tid`, then verifies
  // {op, object, clock} against the recording. Returns true if the grant
  // matched (caller holds the replayed turn until CompleteGrant); false
  // if replay has been retired — mismatch, log exhausted, I/O failure —
  // in which case the caller must fall back to live arbitration.
  [[nodiscard]] bool AwaitGrant(size_t tid, ReplayOp op, uint64_t object,
                                uint64_t clock);
  // Releases the replayed turn: advances the cursor and wakes waiters.
  void CompleteGrant();
  // Pops the next recorded outcome for (site, tid). Returns false if
  // replay is retired or the subsequence is exhausted (divergence).
  [[nodiscard]] bool NextNondet(NondetSite site, size_t tid, uint64_t* value);
  // Cross-checks a live-detected race against the recorded sequence.
  void VerifyRace(uint64_t kind, uint64_t first_tid, uint64_t second_tid,
                  uint64_t page);

  // ---- introspection -------------------------------------------------------

  [[nodiscard]] uint64_t Grants() const;       // written (record) / consumed
  [[nodiscard]] uint64_t TotalGrants() const;  // parsed (replay only)
  [[nodiscard]] uint64_t RaceCursor() const;
  // Per-(site, tid) consumption counts, indexed site * max_threads + tid
  // (the shape ReplayResume::nondet_consumed wants).
  [[nodiscard]] std::vector<uint64_t> NondetCounts() const;
  [[nodiscard]] uint64_t Divergences() const;
  [[nodiscard]] uint64_t IoErrors() const;
  [[nodiscard]] std::string LastDivergenceReport() const;
  // Multi-line "replay: …" block for DumpStateReport.
  [[nodiscard]] std::string ProgressSummary() const;

 private:
  struct Grant {
    uint64_t tid = 0;
    uint64_t op = 0;
    uint64_t object = 0;
    uint64_t clock = 0;
  };
  struct Race {
    uint64_t kind = 0;
    uint64_t first_tid = 0;
    uint64_t second_tid = 0;
    uint64_t page = 0;
  };

  [[nodiscard]] bool IoFault() noexcept;
  // Callback emission happens outside mu_ (callbacks may re-enter the
  // log's introspection API); the *Locked helpers only mutate state.
  void EmitIoError(const std::string& what);
  void DivergeLocked(const std::string& report);
  void AppendLocked(const std::string& bytes);
  bool FlushLocked(std::string* err);
  void OpenRecord(std::string* err);
  void LoadReplay(std::string* err);
  [[nodiscard]] size_t NondetIndex(NondetSite site, size_t tid) const {
    return static_cast<size_t>(site) * max_threads_ + tid;
  }

  const ReplayMode mode_;
  const std::string path_;
  const size_t max_threads_;
  FaultInjector* const injector_;
  const std::function<void(const std::string&)> on_divergence_;
  const std::function<void(RfdetErrc, const std::string&)> on_error_;
  const TurnWaitMode turn_wait_;
  const uint32_t turn_spin_budget_;
  ReplayResume resume_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool dead_ = false;
  bool finalized_ = false;

  // record side
  std::FILE* file_ = nullptr;
  std::string buf_;             // records not yet fwritten
  uint64_t flushed_bytes_ = 0;  // durable file size (header included)
  uint64_t grants_written_ = 0;
  uint64_t races_written_ = 0;
  std::vector<uint64_t> nondet_written_;  // site * max_threads + tid

  // replay side
  std::vector<Grant> grants_;
  std::vector<Race> races_;
  std::vector<std::deque<uint64_t>> nondet_;  // site * max_threads + tid
  std::vector<uint64_t> nondet_consumed_;
  uint64_t cursor_ = 0;
  uint64_t race_cursor_ = 0;

  uint64_t divergences_ = 0;
  uint64_t io_errors_ = 0;
  std::string first_report_;
};

}  // namespace rfdet
