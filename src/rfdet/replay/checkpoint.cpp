#include "rfdet/replay/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "rfdet/common/fault_injection.h"

namespace rfdet {
namespace {

bool FullWrite(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

CheckpointWriter::CheckpointWriter(const Config& config)
    : path_(config.path),
      tmp_path_(config.path + ".tmp"),
      injector_(config.injector),
      on_error_(config.on_error) {}

CheckpointWriter::~CheckpointWriter() {
  if (!committed_) Abort();
}

bool CheckpointWriter::IoFault() noexcept {
  return injector_ && injector_->ShouldFail(FaultSite::kCheckpointIo);
}

bool CheckpointWriter::Fail(const std::string& what) {
  failed_ = true;
  Abort();
  if (on_error_) {
    on_error_(RfdetErrc::kIo, what);
  } else {
    std::fprintf(stderr, "rfdet: checkpoint error: %s\n", what.c_str());
  }
  return false;
}

void CheckpointWriter::Abort() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::unlink(tmp_path_.c_str());
  }
}

bool CheckpointWriter::Begin() {
  if (failed_ || committed_ || fd_ >= 0) return false;
  if (IoFault()) return Fail("injected checkpoint open fault: " + tmp_path_);
  fd_ = ::open(tmp_path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) return Fail("checkpoint open failed: " + tmp_path_);
  if (!FullWrite(fd_, kCheckpointMagic, sizeof kCheckpointMagic)) {
    return Fail("checkpoint magic write failed: " + tmp_path_);
  }
  bytes_ = sizeof kCheckpointMagic;
  return true;
}

bool CheckpointWriter::Append(const void* data, size_t len) {
  if (failed_ || fd_ < 0) return false;
  if (IoFault()) return Fail("injected checkpoint write fault: " + tmp_path_);
  if (!FullWrite(fd_, data, len)) {
    return Fail("checkpoint write failed: " + tmp_path_);
  }
  bytes_ += len;
  return true;
}

bool CheckpointWriter::AppendFromFd(int fd, uint64_t offset, size_t len) {
  if (failed_ || fd_ < 0) return false;
  if (IoFault()) return Fail("injected checkpoint write fault: " + tmp_path_);
#if defined(__linux__)
  // Fast path: splice the pages kernel-side. Fall back on the first
  // refusal (old kernel, filesystem pairing) and stay on read+write.
  size_t remaining = len;
  off_t in_off = static_cast<off_t>(offset);
  bool fast_ok = true;
  while (remaining > 0 && fast_ok) {
    const ssize_t n = ::copy_file_range(fd, &in_off, fd_, nullptr,
                                        remaining, 0);
    if (n > 0) {
      remaining -= static_cast<size_t>(n);
      bytes_ += static_cast<uint64_t>(n);
      fast_bytes_ += static_cast<uint64_t>(n);
    } else if (n == 0) {
      return Fail("checkpoint copy_file_range hit EOF: " + tmp_path_);
    } else if (errno == EINTR) {
      continue;
    } else {
      fast_ok = false;  // EXDEV/EINVAL/ENOSYS/EBADF → slow path
    }
  }
  if (remaining == 0) return true;
  offset += len - remaining;
  len = remaining;
#endif
  std::vector<char> buf(64 << 10);
  while (len > 0) {
    const size_t want = len < buf.size() ? len : buf.size();
    const ssize_t n = ::pread(fd, buf.data(), want,
                              static_cast<off_t>(offset));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return Fail("checkpoint source read failed: " + tmp_path_);
    if (!FullWrite(fd_, buf.data(), static_cast<size_t>(n))) {
      return Fail("checkpoint write failed: " + tmp_path_);
    }
    offset += static_cast<uint64_t>(n);
    len -= static_cast<size_t>(n);
    bytes_ += static_cast<uint64_t>(n);
  }
  return true;
}

bool CheckpointWriter::Commit() {
  if (failed_ || fd_ < 0) return false;
  if (IoFault()) return Fail("injected checkpoint commit fault: " + tmp_path_);
  if (::fsync(fd_) != 0) {
    return Fail("checkpoint fsync failed: " + tmp_path_);
  }
  ::close(fd_);
  fd_ = -1;
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp_path_.c_str());
    failed_ = true;
    if (on_error_) {
      on_error_(RfdetErrc::kIo, "checkpoint rename failed: " + path_);
    } else {
      std::fprintf(stderr, "rfdet: checkpoint rename failed: %s\n",
                   path_.c_str());
    }
    return false;
  }
  committed_ = true;
  return true;
}

bool LoadCheckpointFile(
    const std::string& path, FaultInjector* injector,
    const std::function<void(RfdetErrc, const std::string&)>& on_error,
    std::string* blob) {
  const auto fail = [&](const std::string& what) {
    if (on_error) {
      on_error(RfdetErrc::kIo, what);
    } else {
      std::fprintf(stderr, "rfdet: checkpoint error: %s\n", what.c_str());
    }
    return false;
  };
  if (injector && injector->ShouldFail(FaultSite::kCheckpointIo)) {
    return fail("injected checkpoint read fault: " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return fail("checkpoint open failed: " + path);
  std::string data;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long size = std::ftell(f);
    if (size > 0) data.resize(static_cast<size_t>(size));
    std::rewind(f);
  }
  size_t got = 0;
  while (got < data.size()) {
    const size_t n = std::fread(data.data() + got, 1, data.size() - got, f);
    if (n == 0) break;
    got += n;
  }
  std::fclose(f);
  if (got != data.size() || data.size() < sizeof kCheckpointMagic ||
      std::memcmp(data.data(), kCheckpointMagic, sizeof kCheckpointMagic) !=
          0) {
    return fail("bad checkpoint file: " + path);
  }
  blob->assign(data, sizeof kCheckpointMagic,
               data.size() - sizeof kCheckpointMagic);
  return true;
}

bool PeekCheckpoint(const std::string& path, CheckpointPeek* out) {
  // magic + version/region/statics/maxthreads/seq/resume_clock +
  // replay_active/file_offset — everything the ranking needs sits in the
  // first 72 bytes.
  constexpr size_t kHeaderBytes = sizeof kCheckpointMagic + 8 * 8;
  char buf[kHeaderBytes];
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  size_t got = 0;
  while (got < sizeof buf) {
    const ssize_t n = ::read(fd, buf + got, sizeof buf - got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  if (got < sizeof buf ||
      std::memcmp(buf, kCheckpointMagic, sizeof kCheckpointMagic) != 0) {
    return false;
  }
  const auto u64_at = [&](size_t i) {
    // Images are written little-endian (wire.h), decoded the same way.
    const auto* p = reinterpret_cast<const unsigned char*>(
        buf + sizeof kCheckpointMagic + i * 8);
    uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v |= static_cast<uint64_t>(p[b]) << (8 * b);
    return v;
  };
  CheckpointPeek peek;
  peek.version = u64_at(0);
  peek.seq = u64_at(4);
  peek.resume_clock = u64_at(5);
  peek.replay_active = u64_at(6) != 0;
  peek.log_offset = u64_at(7);
  if (peek.version != kCheckpointVersion) return false;
  *out = peek;
  return true;
}

std::string CheckpointSlotPath(const std::string& base, size_t retain,
                               uint64_t seq) {
  if (retain <= 1) return base;
  return base + "." + std::to_string(seq % retain);
}

std::vector<std::string> CheckpointRingPaths(const std::string& base,
                                             size_t retain) {
  std::vector<std::string> paths;
  paths.reserve(retain + 1);
  for (size_t i = 0; retain > 1 && i < retain; ++i) {
    paths.push_back(base + "." + std::to_string(i));
  }
  paths.push_back(base);
  return paths;
}

}  // namespace rfdet
