#include "rfdet/replay/replay_log.h"

#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "rfdet/common/backoff.h"
#include "rfdet/common/fault_injection.h"
#include "rfdet/common/wire.h"

namespace rfdet {
namespace {

constexpr char kMagic[8] = {'R', 'F', 'D', 'T', 'R', 'L', '0', '1'};
constexpr size_t kHeaderBytes = 16;  // magic + max_threads

constexpr uint64_t kRecGrant = 1;
constexpr uint64_t kRecRace = 2;
constexpr uint64_t kRecNondet = 3;
constexpr uint64_t kRecMark = 4;

// Consecutive 1-second waits with no cursor motion before a blocked
// replayer declares the recording divergent (the recorded turn order
// requires a thread that never arrives). Failure path only — a healthy
// replay never sleeps this long on one grant.
constexpr int kStallLimitSec = 10;

std::string Describe(uint64_t tid, uint64_t op, uint64_t object,
                     uint64_t clock) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "tid=%" PRIu64 " op=%s object=%" PRIu64
                                 " clock=%" PRIu64,
                tid, ReplayOpName(static_cast<ReplayOp>(op)), object, clock);
  return buf;
}

}  // namespace

ReplayLog::ReplayLog(const Config& config)
    : mode_(config.mode),
      path_(config.path),
      max_threads_(config.max_threads),
      injector_(config.injector),
      on_divergence_(config.on_divergence),
      on_error_(config.on_error),
      turn_wait_(config.turn_wait),
      turn_spin_budget_(config.turn_spin_budget),
      nondet_written_(kNumNondetSites * config.max_threads, 0),
      nondet_(kNumNondetSites * config.max_threads),
      nondet_consumed_(kNumNondetSites * config.max_threads, 0) {
  if (mode_ == ReplayMode::kOff) return;
  resume_ = config.resume;
  std::string err;
  if (mode_ == ReplayMode::kRecord) {
    OpenRecord(&err);
  } else {
    LoadReplay(&err);
  }
  if (!err.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++io_errors_;
      dead_ = true;
      if (file_) {
        std::fclose(file_);
        file_ = nullptr;
      }
    }
    EmitIoError(err);
  }
}

ReplayLog::~ReplayLog() { Finalize(); }

bool ReplayLog::Active() const noexcept {
  if (mode_ == ReplayMode::kOff) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return !dead_;
}

bool ReplayLog::IoFault() noexcept {
  return injector_ && injector_->ShouldFail(FaultSite::kReplayIo);
}

void ReplayLog::EmitIoError(const std::string& what) {
  if (on_error_) {
    on_error_(RfdetErrc::kIo, what);
  } else {
    std::fprintf(stderr, "rfdet: replay log error: %s\n", what.c_str());
  }
}

void ReplayLog::DivergeLocked(const std::string& report) {
  ++divergences_;
  if (first_report_.empty()) first_report_ = report;
  dead_ = true;
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Record side
// ---------------------------------------------------------------------------

void ReplayLog::OpenRecord(std::string* err) {
  if (IoFault()) {
    *err = "injected replay-log open fault: " + path_;
    return;
  }
  if (resume_.active) {
    // Continue the interrupted recording: drop everything past the
    // checkpoint's durable offset (a crash may have left a partial tail)
    // and append from there.
    file_ = std::fopen(path_.c_str(), "r+b");
    if (!file_) {
      *err = "replay log reopen failed: " + path_;
      return;
    }
    char magic[8];
    if (std::fread(magic, 1, sizeof magic, file_) != sizeof magic ||
        std::memcmp(magic, kMagic, sizeof magic) != 0) {
      *err = "bad replay log magic: " + path_;
      return;
    }
    if (resume_.file_offset < kHeaderBytes ||
        std::fseek(file_, 0, SEEK_END) != 0 ||
        static_cast<uint64_t>(std::ftell(file_)) < resume_.file_offset) {
      *err = "replay log shorter than checkpoint offset: " + path_;
      return;
    }
    if (ftruncate(fileno(file_), static_cast<off_t>(resume_.file_offset)) !=
            0 ||
        std::fseek(file_, static_cast<long>(resume_.file_offset), SEEK_SET) !=
            0) {
      *err = "replay log truncate failed: " + path_;
      return;
    }
    flushed_bytes_ = resume_.file_offset;
    grants_written_ = resume_.grant_cursor;
    races_written_ = resume_.race_cursor;
    if (resume_.nondet_consumed.size() == nondet_written_.size()) {
      nondet_written_ = resume_.nondet_consumed;
    }
    return;
  }
  file_ = std::fopen(path_.c_str(), "wb");
  if (!file_) {
    *err = "replay log open failed: " + path_;
    return;
  }
  std::string header(kMagic, sizeof kMagic);
  wire::PutU64(header, max_threads_);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fflush(file_) != 0) {
    *err = "replay log header write failed: " + path_;
    return;
  }
  flushed_bytes_ = header.size();
}

void ReplayLog::AppendLocked(const std::string& bytes) { buf_.append(bytes); }

void ReplayLog::RecordGrant(size_t tid, ReplayOp op, uint64_t object,
                            uint64_t clock) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_ || mode_ != ReplayMode::kRecord) return;
  std::string rec;
  wire::PutU64(rec, kRecGrant);
  wire::PutU64(rec, tid);
  wire::PutU64(rec, static_cast<uint64_t>(op));
  wire::PutU64(rec, object);
  wire::PutU64(rec, clock);
  AppendLocked(rec);
  ++grants_written_;
}

void ReplayLog::RecordRace(uint64_t kind, uint64_t first_tid,
                           uint64_t second_tid, uint64_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_ || mode_ != ReplayMode::kRecord) return;
  std::string rec;
  wire::PutU64(rec, kRecRace);
  wire::PutU64(rec, kind);
  wire::PutU64(rec, first_tid);
  wire::PutU64(rec, second_tid);
  wire::PutU64(rec, page);
  AppendLocked(rec);
  ++races_written_;
}

void ReplayLog::RecordNondet(NondetSite site, size_t tid, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_ || mode_ != ReplayMode::kRecord) return;
  std::string rec;
  wire::PutU64(rec, kRecNondet);
  wire::PutU64(rec, static_cast<uint64_t>(site));
  wire::PutU64(rec, tid);
  wire::PutU64(rec, value);
  AppendLocked(rec);
  ++nondet_written_[NondetIndex(site, tid)];
}

void ReplayLog::MarkCheckpoint(uint64_t checkpoint_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_ || mode_ != ReplayMode::kRecord) return;
  std::string rec;
  wire::PutU64(rec, kRecMark);
  wire::PutU64(rec, checkpoint_seq);
  AppendLocked(rec);
}

bool ReplayLog::FlushLocked(std::string* err) {
  if (dead_ || !file_) return false;
  if (buf_.empty()) return true;
  if (IoFault()) {
    *err = "injected replay-log write fault: " + path_;
    return false;
  }
  if (std::fwrite(buf_.data(), 1, buf_.size(), file_) != buf_.size() ||
      std::fflush(file_) != 0) {
    *err = "replay log write failed: " + path_;
    return false;
  }
  flushed_bytes_ += buf_.size();
  buf_.clear();
  return true;
}

bool ReplayLog::Flush() {
  std::string err;
  bool ok;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (mode_ != ReplayMode::kRecord) return !dead_;
    ok = FlushLocked(&err);
    if (!err.empty()) {
      ++io_errors_;
      dead_ = true;
      cv_.notify_all();
    }
  }
  if (!err.empty()) EmitIoError(err);
  return ok;
}

uint64_t ReplayLog::FileOffset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushed_bytes_;
}

void ReplayLog::Finalize() {
  std::string err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finalized_) return;
    finalized_ = true;
    if (file_) {
      if (!dead_) FlushLocked(&err);
      std::fclose(file_);
      file_ = nullptr;
    }
    if (!err.empty()) {
      ++io_errors_;
      dead_ = true;
      cv_.notify_all();
    }
  }
  if (!err.empty()) EmitIoError(err);
}

// ---------------------------------------------------------------------------
// Replay side
// ---------------------------------------------------------------------------

void ReplayLog::LoadReplay(std::string* err) {
  if (IoFault()) {
    *err = "injected replay-log read fault: " + path_;
    return;
  }
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (!f) {
    *err = "replay log open failed: " + path_;
    return;
  }
  std::string blob;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long size = std::ftell(f);
    if (size > 0) blob.resize(static_cast<size_t>(size));
    std::rewind(f);
  }
  size_t got = 0;
  while (got < blob.size()) {
    const size_t n = std::fread(blob.data() + got, 1, blob.size() - got, f);
    if (n == 0) break;
    got += n;
  }
  std::fclose(f);
  if (got != blob.size() || blob.size() < kHeaderBytes ||
      std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0) {
    *err = "bad replay log header: " + path_;
    return;
  }
  size_t pos = sizeof kMagic;
  uint64_t threads = 0;
  if (!wire::GetU64(blob, &pos, &threads) || threads != max_threads_) {
    *err = "replay log max_threads mismatch: " + path_;
    return;
  }
  while (pos < blob.size()) {
    uint64_t type = 0;
    uint64_t a = 0, b = 0, c = 0, d = 0;
    bool ok = wire::GetU64(blob, &pos, &type);
    if (ok) {
      switch (type) {
        case kRecGrant:
          ok = wire::GetU64(blob, &pos, &a) && wire::GetU64(blob, &pos, &b) &&
               wire::GetU64(blob, &pos, &c) && wire::GetU64(blob, &pos, &d);
          if (ok) grants_.push_back(Grant{a, b, c, d});
          break;
        case kRecRace:
          ok = wire::GetU64(blob, &pos, &a) && wire::GetU64(blob, &pos, &b) &&
               wire::GetU64(blob, &pos, &c) && wire::GetU64(blob, &pos, &d);
          if (ok) races_.push_back(Race{a, b, c, d});
          break;
        case kRecNondet:
          ok = wire::GetU64(blob, &pos, &a) && wire::GetU64(blob, &pos, &b) &&
               wire::GetU64(blob, &pos, &c);
          if (ok) {
            const size_t idx = static_cast<size_t>(a) * max_threads_ +
                               static_cast<size_t>(b);
            if (idx >= nondet_.size()) {
              ok = false;
            } else {
              nondet_[idx].push_back(c);
            }
          }
          break;
        case kRecMark:
          ok = wire::GetU64(blob, &pos, &a);
          break;
        default:
          ok = false;
          break;
      }
    }
    if (!ok) {
      *err = "truncated replay log: " + path_;
      return;
    }
  }
  if (resume_.active) {
    if (resume_.grant_cursor > grants_.size() ||
        resume_.race_cursor > races_.size()) {
      *err = "checkpoint cursors beyond replay log: " + path_;
      return;
    }
    cursor_ = resume_.grant_cursor;
    race_cursor_ = resume_.race_cursor;
    if (resume_.nondet_consumed.size() == nondet_.size()) {
      for (size_t i = 0; i < nondet_.size(); ++i) {
        uint64_t take = resume_.nondet_consumed[i];
        if (take > nondet_[i].size()) {
          *err = "checkpoint nondet cursor beyond replay log: " + path_;
          return;
        }
        nondet_[i].erase(nondet_[i].begin(),
                         nondet_[i].begin() + static_cast<long>(take));
        nondet_consumed_[i] = take;
      }
    }
  }
}

bool ReplayLog::AwaitGrant(size_t tid, ReplayOp op, uint64_t object,
                           uint64_t clock) {
  std::string report;
  bool granted = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t last_seen = cursor_;
    int stalls = 0;
    uint64_t spins = 0;
    Backoff backoff;
    // Spin-mode stall detection has no cv timeout to lean on, so track
    // wall time of the last cursor motion explicitly.
    auto moved_at = std::chrono::steady_clock::now();
    for (;;) {
      if (dead_) return false;
      if (cursor_ >= grants_.size()) {
        report = "replay divergence: log exhausted at grant #" +
                 std::to_string(cursor_) + "; live op " +
                 Describe(tid, static_cast<uint64_t>(op), object, clock);
        DivergeLocked(report);
        break;
      }
      const Grant& g = grants_[cursor_];
      if (g.tid == tid) {
        if (g.op != static_cast<uint64_t>(op) || g.object != object ||
            g.clock != clock) {
          report = "replay divergence: grant #" + std::to_string(cursor_) +
                   " mismatch\n  recorded: " +
                   Describe(g.tid, g.op, g.object, g.clock) +
                   "\n  live:     " +
                   Describe(tid, static_cast<uint64_t>(op), object, clock);
          DivergeLocked(report);
          break;
        }
        granted = true;
        break;
      }
      // Not our grant yet. Wait per the configured turn-wait mode — the
      // order is log-driven, so the mode affects only CPU spent waiting.
      const bool spin_now =
          turn_wait_ == TurnWaitMode::kSpin ||
          (turn_wait_ == TurnWaitMode::kAdaptive && spins < turn_spin_budget_);
      if (spin_now) {
        ++spins;
        lock.unlock();
        backoff.Pause();
        lock.lock();
        if (cursor_ != last_seen) {
          last_seen = cursor_;
          stalls = 0;
          moved_at = std::chrono::steady_clock::now();
        } else if (std::chrono::steady_clock::now() - moved_at >=
                   std::chrono::seconds(1)) {
          moved_at = std::chrono::steady_clock::now();
          if (++stalls >= kStallLimitSec) {
            report = "replay divergence: stalled at grant #" +
                     std::to_string(cursor_) + " (recorded " +
                     Describe(g.tid, g.op, g.object, g.clock) +
                     " never arrived); live op " +
                     Describe(tid, static_cast<uint64_t>(op), object, clock);
            DivergeLocked(report);
            break;
          }
        }
        continue;
      }
      if (cv_.wait_for(lock, std::chrono::seconds(1)) ==
          std::cv_status::timeout) {
        if (cursor_ == last_seen) {
          if (++stalls >= kStallLimitSec) {
            report = "replay divergence: stalled at grant #" +
                     std::to_string(cursor_) + " (recorded " +
                     Describe(g.tid, g.op, g.object, g.clock) +
                     " never arrived); live op " +
                     Describe(tid, static_cast<uint64_t>(op), object, clock);
            DivergeLocked(report);
            break;
          }
        } else {
          last_seen = cursor_;
          stalls = 0;
        }
      }
    }
  }
  if (!report.empty() && on_divergence_) on_divergence_(report);
  return granted;
}

void ReplayLog::CompleteGrant() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return;
  ++cursor_;
  cv_.notify_all();
}

bool ReplayLog::NextNondet(NondetSite site, size_t tid, uint64_t* value) {
  std::string report;
  bool ok = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return false;
    auto& q = nondet_[NondetIndex(site, tid)];
    if (q.empty()) {
      report = "replay divergence: nondet record exhausted (site=" +
               std::to_string(static_cast<int>(site)) +
               " tid=" + std::to_string(tid) + ")";
      DivergeLocked(report);
    } else {
      *value = q.front();
      q.pop_front();
      ++nondet_consumed_[NondetIndex(site, tid)];
      ok = true;
    }
  }
  if (!report.empty() && on_divergence_) on_divergence_(report);
  return ok;
}

void ReplayLog::VerifyRace(uint64_t kind, uint64_t first_tid,
                           uint64_t second_tid, uint64_t page) {
  std::string report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_ || mode_ != ReplayMode::kReplay) return;
    if (race_cursor_ >= races_.size()) {
      report = "replay divergence: race not in recording (kind=" +
               std::to_string(kind) + " tids=" + std::to_string(first_tid) +
               "," + std::to_string(second_tid) +
               " page=" + std::to_string(page) + ")";
      DivergeLocked(report);
    } else {
      const Race& r = races_[race_cursor_];
      if (r.kind != kind || r.first_tid != first_tid ||
          r.second_tid != second_tid || r.page != page) {
        report = "replay divergence: race #" + std::to_string(race_cursor_) +
                 " mismatch (recorded kind=" + std::to_string(r.kind) +
                 " tids=" + std::to_string(r.first_tid) + "," +
                 std::to_string(r.second_tid) +
                 " page=" + std::to_string(r.page) +
                 "; live kind=" + std::to_string(kind) +
                 " tids=" + std::to_string(first_tid) + "," +
                 std::to_string(second_tid) +
                 " page=" + std::to_string(page) + ")";
        DivergeLocked(report);
      } else {
        ++race_cursor_;
      }
    }
  }
  if (!report.empty() && on_divergence_) on_divergence_(report);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

uint64_t ReplayLog::Grants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mode_ == ReplayMode::kReplay ? cursor_ : grants_written_;
}

uint64_t ReplayLog::TotalGrants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grants_.size();
}

uint64_t ReplayLog::RaceCursor() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mode_ == ReplayMode::kReplay ? race_cursor_ : races_written_;
}

std::vector<uint64_t> ReplayLog::NondetCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mode_ == ReplayMode::kReplay ? nondet_consumed_ : nondet_written_;
}

uint64_t ReplayLog::Divergences() const {
  std::lock_guard<std::mutex> lock(mu_);
  return divergences_;
}

uint64_t ReplayLog::IoErrors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return io_errors_;
}

std::string ReplayLog::LastDivergenceReport() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_report_;
}

std::string ReplayLog::ProgressSummary() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t nondet = 0;
  const auto& counts =
      mode_ == ReplayMode::kReplay ? nondet_consumed_ : nondet_written_;
  for (uint64_t c : counts) nondet += c;
  char buf[256];
  if (mode_ == ReplayMode::kRecord) {
    std::snprintf(buf, sizeof buf,
                  "replay: mode=record grants=%" PRIu64 " races=%" PRIu64
                  " nondet=%" PRIu64 " durable=%" PRIu64
                  "B pending=%zuB io-errors=%" PRIu64 "%s",
                  grants_written_, races_written_, nondet, flushed_bytes_,
                  buf_.size(), io_errors_, dead_ ? " (retired)" : "");
  } else {
    std::snprintf(buf, sizeof buf,
                  "replay: mode=replay grant %" PRIu64 "/%zu races=%" PRIu64
                  "/%zu nondet=%" PRIu64 " divergences=%" PRIu64
                  " io-errors=%" PRIu64 "%s",
                  cursor_, grants_.size(), race_cursor_, races_.size(), nondet,
                  divergences_, io_errors_, dead_ ? " (live fallback)" : "");
  }
  return buf;
}

}  // namespace rfdet
