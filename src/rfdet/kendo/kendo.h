// The Kendo deterministic-arbitration engine (Olszewski et al., ASPLOS'09),
// as used by RFDet (§3, §4.1) to order all synchronization operations
// deterministically.
//
// Each thread owns a *deterministic logical clock* advanced only by its own
// deterministic execution (in the paper, compile-time instruction
// instrumentation; here, ticks issued by the instrumented memory-access
// stream of dmt::Env). A thread may perform a synchronization operation
// only when its (clock, tid) pair is the unique lexicographic minimum over
// all *active* threads — so the total order of synchronization operations
// is a pure function of the deterministic clocks, not of physical timing.
//
// Threads that block (condition wait, join, exit) are *paused*: excluded
// from the arbitration so they cannot stall the turn. They are resumed with
// a clock chosen deterministically by their (deterministically ordered)
// waker.
//
// Physical-race hygiene: a waiter passes WaitForTurn only after observing
// clock[t] > clock[me] for every other active t with seq_cst loads; any
// state another thread wrote *before* raising its clock is therefore
// visible to the turn-holder (the runtime relies on this to read lock
// release times and slice logs without additional fences).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "rfdet/common/check.h"

namespace rfdet {

class KendoEngine {
 public:
  // Sentinel stored in a paused/exited thread's clock slot. Chosen so that
  // paused threads compare greater than every real clock and naturally
  // drop out of the minimum.
  static constexpr uint64_t kPaused = UINT64_MAX;

  explicit KendoEngine(size_t max_threads = kDefaultMaxThreads)
      : slots_(max_threads) {}

  KendoEngine(const KendoEngine&) = delete;
  KendoEngine& operator=(const KendoEngine&) = delete;

  // Registers a new thread with the given initial clock and returns its id.
  // Thread creation is itself a synchronization operation: the caller must
  // hold the turn, which guarantees other threads observe the registration
  // before any of them can pass WaitForTurn again.
  size_t RegisterThread(uint64_t initial_clock) {
    const size_t tid = count_.load(std::memory_order_relaxed);
    RFDET_CHECK_MSG(tid < slots_.size(), "KendoEngine thread capacity");
    slots_[tid].clock.store(initial_clock, std::memory_order_seq_cst);
    count_.store(tid + 1, std::memory_order_seq_cst);
    return tid;
  }

  [[nodiscard]] size_t ThreadCount() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  // Rolls back the most recent RegisterThread (spawn failed after the slot
  // was claimed, e.g. the OS refused the host thread). Caller must hold
  // the turn, so no other thread can have observed tid as active between
  // registration and rollback.
  void UnregisterLast(size_t tid) noexcept {
    RFDET_DCHECK(count_.load(std::memory_order_relaxed) == tid + 1);
    slots_[tid].clock.store(kPaused, std::memory_order_seq_cst);
    count_.store(tid, std::memory_order_seq_cst);
  }

  // Advances tid's deterministic clock. Only ever called by thread tid.
  void Tick(size_t tid, uint64_t n = 1) noexcept {
    auto& c = slots_[tid].clock;
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_seq_cst);
  }

  [[nodiscard]] uint64_t Clock(size_t tid) const noexcept {
    return slots_[tid].clock.load(std::memory_order_seq_cst);
  }

  // True iff (clock, tid) is the unique minimum over active threads.
  [[nodiscard]] bool HasTurn(size_t tid) const noexcept {
    const uint64_t mine = Clock(tid);
    RFDET_DCHECK(mine != kPaused);
    const size_t n = ThreadCount();
    for (size_t t = 0; t < n; ++t) {
      if (t == tid) continue;
      const uint64_t other = slots_[t].clock.load(std::memory_order_seq_cst);
      if (other < mine || (other == mine && t < tid)) return false;
    }
    return true;
  }

  // Blocks (spin → yield → sleep) until tid holds the turn.
  void WaitForTurn(size_t tid) const;

  // Excludes tid from arbitration (blocked in cond-wait/join, or exited).
  // The pre-pause clock is preserved for the resumer.
  void Pause(size_t tid) noexcept {
    slots_[tid].saved_clock = Clock(tid);
    slots_[tid].clock.store(kPaused, std::memory_order_seq_cst);
  }

  [[nodiscard]] bool IsPaused(size_t tid) const noexcept {
    return Clock(tid) == kPaused;
  }

  [[nodiscard]] uint64_t SavedClock(size_t tid) const noexcept {
    return slots_[tid].saved_clock;
  }

  // Reactivates tid with a deterministically chosen clock. Called by the
  // waker (which holds the turn), not by tid itself.
  void Resume(size_t tid, uint64_t new_clock) noexcept {
    RFDET_DCHECK(IsPaused(tid));
    RFDET_DCHECK(new_clock != kPaused);
    slots_[tid].clock.store(new_clock, std::memory_order_seq_cst);
  }

  // Permanently removes tid from arbitration.
  void Exit(size_t tid) noexcept { Pause(tid); }

  // Checkpoint restore: writes a slot's full state directly. Only valid
  // while the engine is single-threaded (the restoring thread is the sole
  // runner); tid must already be registered.
  void RestoreSlot(size_t tid, uint64_t clock, uint64_t saved_clock) noexcept {
    RFDET_DCHECK(tid < count_.load(std::memory_order_relaxed));
    slots_[tid].saved_clock = saved_clock;
    slots_[tid].clock.store(clock, std::memory_order_seq_cst);
  }

  // Total WaitForTurn spin iterations (coarse contention metric).
  [[nodiscard]] uint64_t TurnSpins() const noexcept {
    return turn_spins_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kDefaultMaxThreads = 256;

  struct alignas(64) Slot {
    std::atomic<uint64_t> clock{kPaused};
    uint64_t saved_clock = 0;
  };

  std::vector<Slot> slots_;
  std::atomic<size_t> count_{0};
  mutable std::atomic<uint64_t> turn_spins_{0};
};

}  // namespace rfdet
