// The Kendo deterministic-arbitration engine (Olszewski et al., ASPLOS'09),
// as used by RFDet (§3, §4.1) to order all synchronization operations
// deterministically.
//
// Each thread owns a *deterministic logical clock* advanced only by its own
// deterministic execution (in the paper, compile-time instruction
// instrumentation; here, ticks issued by the instrumented memory-access
// stream of dmt::Env). A thread may perform a synchronization operation
// only when its (clock, tid) pair is the unique lexicographic minimum over
// all *active* threads — so the total order of synchronization operations
// is a pure function of the deterministic clocks, not of physical timing.
//
// Threads that block (condition wait, join, exit) are *paused*: excluded
// from the arbitration so they cannot stall the turn. They are resumed with
// a clock chosen deterministically by their (deterministically ordered)
// waker.
//
// Physical-race hygiene: a waiter passes WaitForTurn only after observing
// clock[t] > clock[me] for every other active t with seq_cst loads; any
// state another thread wrote *before* raising its clock is therefore
// visible to the turn-holder (the runtime relies on this to read lock
// release times and slice logs without additional fences).
//
// Scalable waiting (DESIGN.md §15): the exact slot scan above remains the
// *arbiter*, but waiters no longer run it per poll. A tournament min-tree
// (turn_tree.h) caches the (clock, tid) minimum so the wait loop polls one
// root word (HasTurnFast); only a confirmed root claim pays the scan. When
// a turn-holder releases the turn it republishes its path and wakes the
// thread the new root names — the direct successor handoff — and losers
// wait in one of three modes (TurnWaitMode): spin forever, spin a budget
// then park on a per-thread futex word, or park promptly. The wait
// mechanism never feeds the arbitration function, so record/replay and
// fingerprints are byte-identical across modes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "rfdet/common/check.h"
#include "rfdet/common/turn_wait.h"
#include "rfdet/kendo/turn_tree.h"

#if !defined(__linux__)
#include <condition_variable>
#include <mutex>
#endif

namespace rfdet {

// Wait-side counters (coarse contention metrics; all monotonic).
struct TurnWaitCounters {
  uint64_t spins = 0;     // wait-loop iterations (root polls)
  uint64_t parks = 0;     // futex/condvar park episodes
  uint64_t wakeups = 0;   // wakes issued to parked waiters
  uint64_t handoffs = 0;  // wakes issued by the successor handoff path
  uint64_t park_ns = 0;   // wall time spent parked
};

class KendoEngine {
 public:
  // Sentinel stored in a paused/exited thread's clock slot. Chosen so that
  // paused threads compare greater than every real clock and naturally
  // drop out of the minimum.
  static constexpr uint64_t kPaused = UINT64_MAX;

  explicit KendoEngine(size_t max_threads = kDefaultMaxThreads)
      : slots_(max_threads), waits_(max_threads), tree_(max_threads) {}

  KendoEngine(const KendoEngine&) = delete;
  KendoEngine& operator=(const KendoEngine&) = delete;

  // Selects the wait mechanism (never the arbitration order). spin_budget
  // is the adaptive mode's pre-park spin count; pre_park, when set, runs
  // on the waiting thread right before its first park of a wait — the
  // runtime uses it to drain pending propagation work (§4.5) into the
  // otherwise-idle gap. Call before threads contend (construction time).
  void ConfigureWait(TurnWaitMode mode, uint32_t spin_budget,
                     std::function<void(size_t)> pre_park = nullptr) {
    wait_mode_ = mode;
    spin_budget_ = spin_budget;
    pre_park_ = std::move(pre_park);
  }

  [[nodiscard]] TurnWaitMode wait_mode() const noexcept { return wait_mode_; }

  // Registers a new thread with the given initial clock and returns its id.
  // Thread creation is itself a synchronization operation: the caller must
  // hold the turn, which guarantees other threads observe the registration
  // before any of them can pass WaitForTurn again.
  size_t RegisterThread(uint64_t initial_clock) {
    const size_t tid = count_.load(std::memory_order_relaxed);
    RFDET_CHECK_MSG(tid < slots_.size(), "KendoEngine thread capacity");
    slots_[tid].clock.store(initial_clock, std::memory_order_seq_cst);
    count_.store(tid + 1, std::memory_order_seq_cst);
    tree_.Publish(tid, initial_clock);
    return tid;
  }

  [[nodiscard]] size_t ThreadCount() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  // Rolls back the most recent RegisterThread (spawn failed after the slot
  // was claimed, e.g. the OS refused the host thread). Caller must hold
  // the turn, so no other thread can have observed tid as active between
  // registration and rollback.
  void UnregisterLast(size_t tid) noexcept {
    RFDET_DCHECK(count_.load(std::memory_order_relaxed) == tid + 1);
    slots_[tid].clock.store(kPaused, std::memory_order_seq_cst);
    count_.store(tid, std::memory_order_seq_cst);
    tree_.Publish(tid, kPaused);
  }

  // Advances tid's deterministic clock. Only ever called by thread tid.
  // Deliberately does NOT touch the min-tree: ticks are the per-access
  // hot path, and a raised clock only ever *delays* tid's next turn. The
  // stale (lag-low) leaf is republished at tid's next turn transition, or
  // healed by whichever waiter the stale root misdirects (WaitForTurn).
  void Tick(size_t tid, uint64_t n = 1) noexcept {
    auto& c = slots_[tid].clock;
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_seq_cst);
  }

  [[nodiscard]] uint64_t Clock(size_t tid) const noexcept {
    return slots_[tid].clock.load(std::memory_order_seq_cst);
  }

  // True iff (clock, tid) is the unique minimum over active threads — the
  // exact O(N) slot scan. This is the arbiter (and the tests' oracle):
  // WaitForTurn grants only on this predicate, whatever the tree says.
  [[nodiscard]] bool HasTurn(size_t tid) const noexcept {
    const uint64_t mine = Clock(tid);
    RFDET_DCHECK(mine != kPaused);
    const size_t n = ThreadCount();
    for (size_t t = 0; t < n; ++t) {
      if (t == tid) continue;
      const uint64_t other = slots_[t].clock.load(std::memory_order_seq_cst);
      if (other < mine || (other == mine && t < tid)) return false;
    }
    return true;
  }

  // O(1) root compare against the min-tree: the wait-loop fast path.
  // May transiently answer false for the true minimum (stale tree — the
  // loop heals it) and, in CAS races, true for a non-minimum (screened
  // out by the HasTurn confirmation); never consulted for the grant
  // decision itself.
  [[nodiscard]] bool HasTurnFast(size_t tid) const noexcept {
    return tree_.RootKey() == tree_.Pack(tid, Clock(tid));
  }

  // Republishes tid's live clock into the min-tree (O(log N)).
  void PublishClock(size_t tid) const noexcept {
    tree_.Publish(tid, Clock(tid));
  }

  // Blocks until tid holds the turn, per the configured TurnWaitMode.
  void WaitForTurn(size_t tid) const;

  // Turn-release hand-off: republish tid's path (its clock just moved)
  // and wake the thread the new root names, if it is parked. The runtime
  // calls this after every turn-ending Tick; Pause/Exit run it
  // internally. No-op on the arbitration order — only wake timing.
  void Handoff(size_t tid) const noexcept {
    tree_.Publish(tid, Clock(tid));
    WakeSuccessor(tid);
  }

  // Excludes tid from arbitration (blocked in cond-wait/join, or exited).
  // The pre-pause clock is preserved for the resumer. Callers hold the
  // turn (pausing releases it), so the successor is woken here.
  void Pause(size_t tid) noexcept {
    slots_[tid].saved_clock = Clock(tid);
    slots_[tid].clock.store(kPaused, std::memory_order_seq_cst);
    tree_.Publish(tid, kPaused);
    WakeSuccessor(tid);
  }

  [[nodiscard]] bool IsPaused(size_t tid) const noexcept {
    return Clock(tid) == kPaused;
  }

  [[nodiscard]] uint64_t SavedClock(size_t tid) const noexcept {
    return slots_[tid].saved_clock;
  }

  // Reactivates tid with a deterministically chosen clock. Called by the
  // waker (which holds the turn), not by tid itself — so the lowered key
  // is published synchronously under the turn (the tree may lag low, but
  // never lag high; see turn_tree.h).
  void Resume(size_t tid, uint64_t new_clock) noexcept {
    RFDET_DCHECK(IsPaused(tid));
    RFDET_DCHECK(new_clock != kPaused);
    slots_[tid].clock.store(new_clock, std::memory_order_seq_cst);
    tree_.Publish(tid, new_clock);
  }

  // Permanently removes tid from arbitration.
  void Exit(size_t tid) noexcept { Pause(tid); }

  // Checkpoint restore: writes a slot's full state directly. Only valid
  // while the engine is single-threaded (the restoring thread is the sole
  // runner); tid must already be registered.
  void RestoreSlot(size_t tid, uint64_t clock, uint64_t saved_clock) noexcept {
    RFDET_DCHECK(tid < count_.load(std::memory_order_relaxed));
    slots_[tid].saved_clock = saved_clock;
    slots_[tid].clock.store(clock, std::memory_order_seq_cst);
    tree_.Publish(tid, clock);
  }

  // Total WaitForTurn spin iterations (coarse contention metric).
  [[nodiscard]] uint64_t TurnSpins() const noexcept {
    return counters_.spins.load(std::memory_order_relaxed);
  }

  [[nodiscard]] TurnWaitCounters WaitCounters() const noexcept {
    TurnWaitCounters c;
    c.spins = counters_.spins.load(std::memory_order_relaxed);
    c.parks = counters_.parks.load(std::memory_order_relaxed);
    c.wakeups = counters_.wakeups.load(std::memory_order_relaxed);
    c.handoffs = counters_.handoffs.load(std::memory_order_relaxed);
    c.park_ns = counters_.park_ns.load(std::memory_order_relaxed);
    return c;
  }

  // True while tid is parked inside WaitForTurn (diagnostics: the state
  // dump distinguishes a parked loser from a spinning one).
  [[nodiscard]] bool IsParkedInWait(size_t tid) const noexcept {
    return waits_[tid].parked.load(std::memory_order_relaxed) != 0;
  }

 private:
  static constexpr size_t kDefaultMaxThreads = 256;

  struct alignas(64) Slot {
    std::atomic<uint64_t> clock{kPaused};
    uint64_t saved_clock = 0;
  };

  // Per-thread park state: `word` is the futex word (bumped on every wake
  // so a sleeper concurrent with its wake sees the change), `parked`
  // advertises an in-progress park so wakers can skip the syscall for
  // running threads. Padded: a waker writing one thread's word must not
  // collide with another thread's park loop.
  struct alignas(64) WaitSlot {
#if !defined(__linux__)
    mutable std::mutex mu;
    mutable std::condition_variable cv;
#endif
    std::atomic<uint32_t> word{0};
    std::atomic<uint32_t> parked{0};
  };

  // Parks tid until woken or the liveness timeout lapses; returns the
  // parked wall time in ns. Rechecks the root after advertising the park
  // (seq_cst on both sides pairs with WakeSuccessor's transition-then-
  // check order) so a wake cannot be lost.
  uint64_t Park(size_t tid) const noexcept;
  // Wakes t if parked; returns whether a wake was issued.
  bool WakeThread(size_t t) const noexcept;
  // Wakes the thread the root currently names (if parked and != self).
  void WakeSuccessor(size_t self) const noexcept;

  std::vector<Slot> slots_;
  mutable std::vector<WaitSlot> waits_;
  mutable TurnTree tree_;
  std::atomic<size_t> count_{0};

  TurnWaitMode wait_mode_ = TurnWaitMode::kAdaptive;
  uint32_t spin_budget_ = 512;
  std::function<void(size_t)> pre_park_;

  struct Counters {
    mutable std::atomic<uint64_t> spins{0};
    mutable std::atomic<uint64_t> parks{0};
    mutable std::atomic<uint64_t> wakeups{0};
    mutable std::atomic<uint64_t> handoffs{0};
    mutable std::atomic<uint64_t> park_ns{0};
  };
  Counters counters_;
};

}  // namespace rfdet
