// Tournament min-tree over the Kendo clock slots.
//
// The turn is the unique lexicographic minimum of (clock, tid) over all
// active threads. The engine's slot array answers "is (clock[me], me) the
// minimum?" only by an O(N) scan with seq_cst loads — every waiter
// rescanning every slot is exactly the all-to-all cache traffic the paper
// replaces global barriers to avoid. This tree caches the pairwise minima
// so a waiter polls one root word instead:
//
//   * each (clock, tid) pair packs into one 64-bit key — clock in the
//     high bits, tid in the low log2(width) bits — so lexicographic order
//     on pairs is integer order on keys, and a paused thread's kPaused
//     clock packs to the all-ones kEmptyKey, greater than every live key;
//   * leaves hold thread keys, internal nodes hold the min of their
//     children, the root holds the global minimum; every node sits on its
//     own cache line so waiters polling the root never false-share with
//     updaters in the leaves;
//   * Publish(tid, clock) rewrites tid's leaf and restores the min
//     invariant along tid's root path in O(log N) with a CAS-verify loop
//     at each node (see Publish in turn_tree.cpp for the convergence
//     argument under concurrent publishers).
//
// The tree is a *wait-side cache*, not the arbiter: per-access Tick()s
// update only the engine's slot, so a leaf may lag its thread's live
// clock (always lagging LOW — ticks only raise clocks; every lowering
// transition — resume, register, restore — publishes synchronously under
// the turn). A lag-low root merely names a stale leader; waiters heal it
// by republishing the named leader's path from its live slot. The engine
// therefore grants a turn only when the root claim is *confirmed* by the
// exact slot scan (kendo.cpp), so transient tree states can delay a grant
// by one heal round but can never misorder one.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "rfdet/common/check.h"

namespace rfdet {

class TurnTree {
 public:
  // Key of an empty/paused leaf: greater than every live key, and the
  // root value when no thread is active.
  static constexpr uint64_t kEmptyKey = UINT64_MAX;

  explicit TurnTree(size_t max_threads);

  TurnTree(const TurnTree&) = delete;
  TurnTree& operator=(const TurnTree&) = delete;

  // Packs (clock, tid) so that key order == lexicographic (clock, tid)
  // order. A kPaused clock (and any clock at or beyond the saturation
  // bound — checked, see turn_tree.cpp) packs to kEmptyKey.
  [[nodiscard]] uint64_t Pack(size_t tid, uint64_t clock) const noexcept {
    if (clock >= clock_limit_) return kEmptyKey;
    return (clock << tid_bits_) | static_cast<uint64_t>(tid);
  }

  [[nodiscard]] size_t TidOf(uint64_t key) const noexcept {
    return static_cast<size_t>(key & (width_ - 1));
  }

  // Rewrites tid's leaf to Pack(tid, clock) and restores the min
  // invariant along tid's leaf-to-root path. Any thread may publish any
  // path (waiters heal stale leaders this way); concurrent publishers
  // converge — see the comment in turn_tree.cpp.
  void Publish(size_t tid, uint64_t clock) noexcept;

  // The cached global minimum key (kEmptyKey when no live leaf).
  [[nodiscard]] uint64_t RootKey() const noexcept {
    return nodes_[1].key.load(std::memory_order_seq_cst);
  }

  [[nodiscard]] uint64_t LeafKey(size_t tid) const noexcept {
    return nodes_[width_ + tid].key.load(std::memory_order_seq_cst);
  }

  [[nodiscard]] size_t width() const noexcept { return width_; }

 private:
  size_t width_;        // leaf count, power of two, >= max_threads
  size_t tid_bits_;     // log2(width_)
  uint64_t clock_limit_;  // clocks >= this saturate to kEmptyKey

  struct alignas(64) Node {
    std::atomic<uint64_t> key{kEmptyKey};
  };
  // Implicit binary heap layout: root at 1, leaves at [width_, 2*width_).
  std::vector<Node> nodes_;
};

}  // namespace rfdet
