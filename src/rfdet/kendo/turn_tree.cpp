#include "rfdet/kendo/turn_tree.h"

#include <algorithm>

namespace rfdet {

namespace {

size_t CeilPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

size_t Log2(size_t pow2) {
  size_t b = 0;
  while ((size_t{1} << b) < pow2) ++b;
  return b;
}

}  // namespace

TurnTree::TurnTree(size_t max_threads)
    : width_(CeilPow2(std::max<size_t>(max_threads, 1))),
      tid_bits_(Log2(width_)),
      // The all-ones clock image is reserved for kEmptyKey; everything
      // below it packs injectively. With 64 threads that leaves 2^58
      // clock values — a deterministic clock ticks once per accessed
      // word, so saturation is ~petabytes of instrumented accesses away.
      // Publish CHECKs rather than silently saturating: a wrapped key
      // would reorder the arbitration, and a loud crash beats that.
      clock_limit_((uint64_t{1} << (64 - tid_bits_)) - 1),
      nodes_(2 * width_) {}

// Concurrent-publish convergence: at each node on the path the publisher
// loops { read both children, want = min; read node; if node == want,
// ascend; else CAS node -> want and re-verify }. A publisher therefore
// leaves a node only after observing node == min(children) with child
// reads *fresher than its last write* to that node. Two racing
// publishers can transiently store a stale min (A reads B's child before
// B writes it, then A's CAS lands after B's) — but B's own loop has not
// exited either: B re-reads the node after its CAS, sees A's stale
// value, and repairs it. Inductively, the last publisher to leave any
// node leaves it equal to min(children) over the final child values, so
// once publishers quiesce the root is the exact minimum. While they have
// not quiesced, the engine's grant-time slot scan (kendo.cpp) screens
// out any transiently wrong root claim.
void TurnTree::Publish(size_t tid, uint64_t clock) noexcept {
  RFDET_DCHECK(tid < width_);
  RFDET_CHECK_MSG(clock == UINT64_MAX || clock < clock_limit_,
                  "Kendo clock saturates the turn-tree key packing");
  size_t n = width_ + tid;
  nodes_[n].key.store(Pack(tid, clock), std::memory_order_seq_cst);
  for (n >>= 1; n >= 1; n >>= 1) {
    for (;;) {
      const uint64_t left =
          nodes_[2 * n].key.load(std::memory_order_seq_cst);
      const uint64_t right =
          nodes_[2 * n + 1].key.load(std::memory_order_seq_cst);
      const uint64_t want = std::min(left, right);
      uint64_t cur = nodes_[n].key.load(std::memory_order_seq_cst);
      if (cur == want) break;
      // On CAS success, loop again: the exit condition must be verified
      // against child reads taken after our own write (see above).
      nodes_[n].key.compare_exchange_weak(cur, want,
                                          std::memory_order_seq_cst);
    }
  }
}

}  // namespace rfdet
