#include "rfdet/kendo/kendo.h"

#include <chrono>

#include "rfdet/common/backoff.h"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <ctime>
#endif

namespace rfdet {

namespace {

// Liveness backstop for parked waiters: even if a handoff wake is lost
// to a transiently wrong tree (possible only while concurrent publishers
// race), a parked thread re-examines the world this often. Pure
// liveness — a timeout re-enters the same deterministic wait loop and
// cannot perturb the arbitration order.
constexpr int64_t kParkTimeoutNs = 2'000'000;  // 2ms

// Pre-park spin count of kPark mode: one heal round to catch a handoff
// already in flight, then straight to the futex — kPark's contract is
// minimal CPU, not minimal latency (kAdaptive is the latency/CPU blend).
constexpr uint64_t kParkModeSpinBudget = 2;

// Periodicity of the exact-scan insurance poll in the wait loop.
constexpr uint64_t kExactScanPeriod = 1024;

#if defined(__linux__)
void FutexWait(std::atomic<uint32_t>* addr, uint32_t expected,
               int64_t timeout_ns) noexcept {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_ns / 1'000'000'000);
  ts.tv_nsec = static_cast<long>(timeout_ns % 1'000'000'000);
  syscall(SYS_futex, addr, FUTEX_WAIT_PRIVATE, expected, &ts, nullptr, 0);
}

void FutexWake(std::atomic<uint32_t>* addr) noexcept {
  syscall(SYS_futex, addr, FUTEX_WAKE_PRIVATE, 1, nullptr, nullptr, 0);
}
#endif

}  // namespace

uint64_t KendoEngine::Park(size_t tid) const noexcept {
  WaitSlot& w = waits_[tid];
  // Dekker-style no-lost-wake protocol, pairing with WakeThread:
  //   waiter: word.load; parked.store(1); recheck turn; sleep-if(word
  //           unchanged)
  //   waker:  publish transition; parked.load; word.fetch_add; futex_wake
  // Both sides are seq_cst, so either the waker sees parked == 1 (and
  // its word bump aborts or ends the sleep) or the waiter's recheck sees
  // the waker's prior transition and skips the sleep.
  const uint32_t observed = w.word.load(std::memory_order_seq_cst);
  w.parked.store(1, std::memory_order_seq_cst);
  if (HasTurnFast(tid) || HasTurn(tid)) {
    w.parked.store(0, std::memory_order_seq_cst);
    return 0;
  }
  const auto t0 = std::chrono::steady_clock::now();
#if defined(__linux__)
  FutexWait(&w.word, observed, kParkTimeoutNs);
#else
  {
    std::unique_lock<std::mutex> lock(w.mu);
    w.cv.wait_for(lock, std::chrono::nanoseconds(kParkTimeoutNs), [&] {
      return w.word.load(std::memory_order_seq_cst) != observed;
    });
  }
#endif
  const auto t1 = std::chrono::steady_clock::now();
  w.parked.store(0, std::memory_order_seq_cst);
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

bool KendoEngine::WakeThread(size_t t) const noexcept {
  WaitSlot& w = waits_[t];
  if (w.parked.load(std::memory_order_seq_cst) == 0) return false;
#if defined(__linux__)
  w.word.fetch_add(1, std::memory_order_seq_cst);
  FutexWake(&w.word);
#else
  {
    // Bump under the mutex so a waiter between its predicate check and
    // its cv sleep cannot miss the notification.
    std::lock_guard<std::mutex> lock(w.mu);
    w.word.fetch_add(1, std::memory_order_seq_cst);
  }
  w.cv.notify_one();
#endif
  counters_.wakeups.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void KendoEngine::WakeSuccessor(size_t self) const noexcept {
  const uint64_t root = tree_.RootKey();
  if (root == TurnTree::kEmptyKey) return;
  const size_t next = tree_.TidOf(root);
  if (next == self) return;
  if (WakeThread(next)) {
    counters_.handoffs.fetch_add(1, std::memory_order_relaxed);
  }
}

void KendoEngine::WaitForTurn(size_t tid) const {
  // Uncontended fast path: one exact scan, no tree traffic — the same
  // cost the pre-tree engine paid when the turn was already ours.
  if (HasTurn(tid)) return;

  // Make sure the tree knows our live key before we start trusting its
  // root: our own leaf may lag low (stale since before our last ticks),
  // and a lag-low own leaf would name us as a phantom leader for
  // everyone else.
  tree_.Publish(tid, Clock(tid));

  uint64_t budget = 0;
  switch (wait_mode_) {
    case TurnWaitMode::kSpin:
      budget = UINT64_MAX;
      break;
    case TurnWaitMode::kAdaptive:
      budget = spin_budget_;
      break;
    case TurnWaitMode::kPark:
      budget = kParkModeSpinBudget;
      break;
  }

  Backoff backoff;
  bool drained = false;
  uint64_t spins = 0;
  for (;;) {
    ++spins;
    counters_.spins.fetch_add(1, std::memory_order_relaxed);

    // Grant = root claim AND exact-scan confirmation. The scan also
    // re-establishes the hygiene contract: we pass only after observing
    // every active clock above ours with seq_cst loads.
    if (HasTurnFast(tid) && HasTurn(tid)) return;

    // Insurance: the tree delays grants only transiently (turn_tree.h),
    // but an exact poll every ~1k spins bounds any stale-root episode.
    if ((spins & (kExactScanPeriod - 1)) == 0 && HasTurn(tid)) return;

    // Heal the root: republish the named leader's path from its live
    // slot. If the leader's leaf lagged low (it ticked past us without
    // publishing), this raises it and the root moves on — eventually to
    // us, since our key is published and only paused threads go lower.
    const uint64_t root = tree_.RootKey();
    const size_t leader =
        root == TurnTree::kEmptyKey ? tid : tree_.TidOf(root);
    tree_.Publish(leader, Clock(leader));

    if (spins < budget) {
      backoff.Pause();
      continue;
    }

    // Out of spin budget — we are about to go quiet. First overlap the
    // park with useful work: drain pending propagation (§4.5) once per
    // wait. The hook touches only thread-private deferred state, so it
    // cannot perturb the deterministic order.
    if (!drained && pre_park_) {
      drained = true;
      pre_park_(tid);
      continue;  // the drain took time; re-poll before sleeping
    }

    // Lost-arbitration handoff: if the believed leader is itself parked
    // (it lost earlier on a then-stale root), our heal above may have
    // just made it the true minimum — wake it, or everyone naps until a
    // timeout.
    if (leader != tid) WakeThread(leader);

    counters_.parks.fetch_add(1, std::memory_order_relaxed);
    counters_.park_ns.fetch_add(Park(tid), std::memory_order_relaxed);
    backoff.Reset();
  }
}

}  // namespace rfdet
