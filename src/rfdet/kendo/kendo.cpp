#include "rfdet/kendo/kendo.h"

#include "rfdet/common/backoff.h"

namespace rfdet {

void KendoEngine::WaitForTurn(size_t tid) const {
  Backoff backoff;
  uint64_t spins = 0;
  while (!HasTurn(tid)) {
    ++spins;
    backoff.Pause();
  }
  if (spins != 0) {
    turn_spins_.fetch_add(spins, std::memory_order_relaxed);
  }
}

}  // namespace rfdet
