// Deterministic data-parallel executor — the structured programming model
// layered on dmt::Env (DESIGN.md §17).
//
// Three primitives, all bit-deterministic on the deterministic backends
// and confluence-correct on pthreads:
//
//   det_parallel_for(ex, begin, end, grain, body)
//       Static chunked range partition. Chunk c covers
//       [begin + c*grain, min(end, begin + (c+1)*grain)) and runs on pool
//       worker c % threads — a pure function of (range, grain, threads),
//       never of timing.
//
//   det_reduce(ex, begin, end, grain, map, combine, identity)
//       Per-chunk partials combined by a fixed pairwise tree over chunk
//       index: level by level, partial[i] = combine(partial[2i],
//       partial[2i+1]) in index order. The combine order is a pure
//       function of the chunk count alone, so the result is bit-identical
//       across thread counts, wait modes, monitor modes, kernel tiers and
//       off-turn close. With an associative combine it is additionally
//       independent of the grain.
//
//   det_for_each(ex, seeds, n, body)
//       Per-worker worklists. Seed i starts on worker i % threads; items a
//       worker pushes go to its own list (FIFO). Idle workers take work by
//       deterministic donation: scan victims in ring order from the
//       requester, move the newest half of the first list holding >= 2
//       items. Every transfer is a pair of Kendo-ordered Env mutex
//       sections, so who-donates-what-to-whom is part of the deterministic
//       schedule — there is no racy stealing. Termination is an
//       outstanding-items count maintained with Env atomics.
//
// The pool spawns `threads` workers through Env::Spawn on first use and
// parks them on an Env condvar between regions, because thread ids are
// never reused (a per-region fork/join would exhaust max_threads).
// Between regions the pool is idle but not joined, which blocks
// checkpoint eligibility; call Quiesce() to join the workers (the next
// region respawns them, consuming fresh thread ids) before
// Env::Checkpoint(). The region handshake brackets every chunk with
// acquire/release pairs on the pool mutex, so main observes all worker
// slices after a region returns and checkpoints taken after Quiesce() see
// a quiescent heap.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "rfdet/api/env.h"

namespace dmt::exec {

struct ExecOptions {
  // Pool size. 0 = Env::ExecDefaults().pool_threads, else 1.
  size_t threads = 0;
  // Default chunk grain for range regions. 0 = Env default, else auto
  // (count / (8 * threads), min 1).
  size_t grain = 0;
  // Work-donation between worklists: 1 on, 0 off, -1 = Env default.
  int donation = -1;
  // Per-worker worklist ring capacity in items. 0 = auto (items beyond it
  // overflow into a host-side spill deque, so capacity is never a
  // correctness limit).
  size_t worklist_capacity = 0;
};

class Executor;

// Handed to det_for_each bodies; Push appends to the calling worker's own
// worklist (deterministic: the producer is part of the schedule).
class WorkContext {
 public:
  void Push(uint64_t item);
  [[nodiscard]] size_t worker() const noexcept { return worker_; }

 private:
  friend class Executor;
  WorkContext(Executor* ex, size_t worker) : ex_(ex), worker_(worker) {}
  Executor* ex_;
  size_t worker_;
};

class Executor {
 public:
  using RangeBody =
      std::function<void(size_t begin, size_t end, size_t worker)>;
  using MapFn = std::function<uint64_t(size_t begin, size_t end)>;
  using CombineFn = std::function<uint64_t(uint64_t a, uint64_t b)>;
  using ItemBody = std::function<void(uint64_t item, WorkContext& ctx)>;

  explicit Executor(Env& env, ExecOptions opts = {});
  ~Executor();  // Quiesce()s
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] size_t threads() const noexcept { return nthreads_; }
  // The grain a range region of `count` items would use (explicit `grain`
  // wins, else the configured default, else auto).
  [[nodiscard]] size_t GrainFor(size_t count, size_t grain = 0) const;

  // Chunked range region; empty ranges return without touching the pool.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const RangeBody& body);
  void ParallelFor(size_t begin, size_t end, const RangeBody& body) {
    ParallelFor(begin, end, 0, body);
  }

  // Map chunks to uint64 partials, combine with the fixed pairwise tree.
  // `combine` must be a pure function; `identity` is returned for an
  // empty range and never otherwise enters the tree.
  uint64_t Reduce(size_t begin, size_t end, size_t grain, const MapFn& map,
                  const CombineFn& combine, uint64_t identity);

  // Drain `seeds` (and everything bodies push) through the per-worker
  // worklists until globally empty.
  void ForEach(const uint64_t* seeds, size_t count, const ItemBody& body);

  // Join the pool workers so the runtime is quiescent (checkpoint
  // eligible). The next region lazily respawns the pool, consuming fresh
  // thread ids — bounded by the runtime's max_threads.
  void Quiesce();

 private:
  friend class WorkContext;

  enum class JobKind : uint8_t { kFor, kEach };
  struct Job {
    JobKind kind = JobKind::kFor;
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    size_t nchunks = 0;
    const RangeBody* range_body = nullptr;
    const ItemBody* item_body = nullptr;
  };

  void EnsurePool();
  void Launch();  // runs job_ on the pool, returns when all workers done
  void LaunchFor(size_t begin, size_t end, size_t grain,
                 const RangeBody& body);
  void WorkerLoop(size_t worker, uint64_t seen_seq);
  void RunForPart(size_t worker);
  void RunEachPart(size_t worker);
  // Worklist helpers; all require q_mu_[worker] (or q_mu_[victim]) held.
  [[nodiscard]] GAddr RingSlot(size_t worker, uint64_t index) const;
  [[nodiscard]] size_t QueueLenLocked(size_t worker);
  bool PopFrontLocked(size_t worker, uint64_t* out);
  void AppendLocked(size_t worker, uint64_t item);
  void TakeBackLocked(size_t victim, size_t take,
                      std::vector<uint64_t>* out);
  // Lock-discipline wrappers used by the drain loop.
  bool TryDonate(size_t worker, uint64_t* out);
  void PushItem(size_t worker, uint64_t item);

  Env& env_;
  size_t nthreads_ = 1;
  size_t default_grain_ = 0;  // 0 = auto
  bool donation_ = true;
  size_t ring_capacity_ = 1024;

  // Pool control (all cell accesses under pool_mu_).
  size_t pool_mu_ = 0;
  size_t work_cv_ = 0;
  size_t done_cv_ = 0;
  size_t idle_cv_ = 0;
  std::vector<size_t> q_mu_;  // per-worker worklist locks
  GAddr job_seq_ = rfdet::kNullGAddr;
  GAddr done_count_ = rfdet::kNullGAddr;
  GAddr shutdown_ = rfdet::kNullGAddr;
  GAddr outstanding_ = rfdet::kNullGAddr;  // Env atomics only
  GAddr rings_ = rfdet::kNullGAddr;        // [worker][ring_capacity_] items
  GAddr heads_ = rfdet::kNullGAddr;        // per-worker pop cursor
  GAddr tails_ = rfdet::kNullGAddr;        // per-worker push cursor
  // Host-side spill beyond the ring, one deque per worker; accessed only
  // under that worker's q_mu_ (the Env mutex carries the happens-before),
  // plus by main between regions while the pool is parked.
  std::vector<std::deque<uint64_t>> overflow_;
  std::vector<size_t> worker_tids_;
  bool pool_live_ = false;
  uint64_t launched_jobs_ = 0;  // mirrors the shared job_seq_ cell
  Job job_;
};

// Paper-style spellings over an executor.
inline void det_parallel_for(Executor& ex, size_t begin, size_t end,
                             size_t grain, const Executor::RangeBody& body) {
  ex.ParallelFor(begin, end, grain, body);
}
inline uint64_t det_reduce(Executor& ex, size_t begin, size_t end,
                           size_t grain, const Executor::MapFn& map,
                           const Executor::CombineFn& combine,
                           uint64_t identity = 0) {
  return ex.Reduce(begin, end, grain, map, combine, identity);
}
inline void det_for_each(Executor& ex, const uint64_t* seeds, size_t count,
                         const Executor::ItemBody& body) {
  ex.ForEach(seeds, count, body);
}

}  // namespace dmt::exec
