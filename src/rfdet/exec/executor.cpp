#include "rfdet/exec/executor.h"

#include <algorithm>
#include <cstdint>

namespace dmt::exec {

namespace {
constexpr size_t kDefaultRingCapacity = 256;
// Process this many items between surplus offers (a broadcast that lets
// idle workers come and donate-take from a backlogged worker).
constexpr uint64_t kOfferEvery = 8;
}  // namespace

void WorkContext::Push(uint64_t item) { ex_->PushItem(worker_, item); }

Executor::Executor(Env& env, ExecOptions opts) : env_(env) {
  const ExecHints hints = env.ExecDefaults();
  nthreads_ = opts.threads != 0         ? opts.threads
              : hints.pool_threads != 0 ? hints.pool_threads
                                        : 1;
  default_grain_ = opts.grain != 0 ? opts.grain : hints.grain;
  donation_ = opts.donation >= 0 ? opts.donation != 0 : hints.donation;
  ring_capacity_ = opts.worklist_capacity != 0 ? opts.worklist_capacity
                                               : kDefaultRingCapacity;
  pool_mu_ = env.CreateMutex();
  work_cv_ = env.CreateCond();
  done_cv_ = env.CreateCond();
  idle_cv_ = env.CreateCond();
  q_mu_.reserve(nthreads_);
  for (size_t w = 0; w < nthreads_; ++w) q_mu_.push_back(env.CreateMutex());
  const GAddr ctrl = env.AllocStatic(4 * sizeof(uint64_t));
  job_seq_ = ctrl;
  done_count_ = ctrl + 8;
  shutdown_ = ctrl + 16;
  outstanding_ = ctrl + 24;
  for (size_t i = 0; i < 4; ++i) {
    env.Put<uint64_t>(ctrl + i * 8, 0);
  }
  rings_ = env.AllocStatic(nthreads_ * ring_capacity_ * sizeof(uint64_t));
  heads_ = env.AllocStatic(nthreads_ * sizeof(uint64_t));
  tails_ = env.AllocStatic(nthreads_ * sizeof(uint64_t));
  overflow_.resize(nthreads_);
}

Executor::~Executor() { Quiesce(); }

size_t Executor::GrainFor(size_t count, size_t grain) const {
  size_t g = grain != 0 ? grain : default_grain_;
  if (g == 0) g = count / (8 * nthreads_);
  return g != 0 ? g : 1;
}

void Executor::EnsurePool() {
  if (pool_live_) return;
  env_.Put<uint64_t>(shutdown_, 0);
  const uint64_t seen = launched_jobs_;
  worker_tids_.reserve(nthreads_);
  for (size_t w = 0; w < nthreads_; ++w) {
    worker_tids_.push_back(
        env_.Spawn([this, w, seen] { WorkerLoop(w, seen); }));
  }
  pool_live_ = true;
}

void Executor::Quiesce() {
  if (!pool_live_) return;
  env_.Lock(pool_mu_);
  env_.Put<uint64_t>(shutdown_, 1);
  env_.Broadcast(work_cv_);
  env_.Unlock(pool_mu_);
  for (const size_t tid : worker_tids_) env_.Join(tid);
  worker_tids_.clear();
  pool_live_ = false;
}

void Executor::Launch() {
  EnsurePool();
  env_.Lock(pool_mu_);
  env_.Put<uint64_t>(done_count_, 0);
  ++launched_jobs_;
  env_.Put<uint64_t>(job_seq_, launched_jobs_);
  env_.Broadcast(work_cv_);
  while (env_.Get<uint64_t>(done_count_) < nthreads_) {
    env_.Wait(done_cv_, pool_mu_);
  }
  env_.Unlock(pool_mu_);
}

void Executor::WorkerLoop(size_t worker, uint64_t seen_seq) {
  for (;;) {
    env_.Lock(pool_mu_);
    while (env_.Get<uint64_t>(job_seq_) == seen_seq &&
           env_.Get<uint64_t>(shutdown_) == 0) {
      env_.Wait(work_cv_, pool_mu_);
    }
    if (env_.Get<uint64_t>(shutdown_) != 0) {
      env_.Unlock(pool_mu_);
      return;
    }
    seen_seq = env_.Get<uint64_t>(job_seq_);
    env_.Unlock(pool_mu_);
    if (job_.kind == JobKind::kFor) {
      RunForPart(worker);
    } else {
      RunEachPart(worker);
    }
    env_.Lock(pool_mu_);
    const uint64_t done = env_.Get<uint64_t>(done_count_) + 1;
    env_.Put<uint64_t>(done_count_, done);
    if (done == nthreads_) env_.Signal(done_cv_);
    env_.Unlock(pool_mu_);
  }
}

// ---- chunked ranges --------------------------------------------------------

void Executor::LaunchFor(size_t begin, size_t end, size_t grain,
                         const RangeBody& body) {
  job_ = Job{};
  job_.kind = JobKind::kFor;
  job_.begin = begin;
  job_.end = end;
  job_.grain = grain;
  job_.nchunks = (end - begin + grain - 1) / grain;
  job_.range_body = &body;
  Launch();
}

void Executor::RunForPart(size_t worker) {
  // Host copy: the job descriptor was published by the Launch handshake.
  const Job job = job_;
  uint64_t chunks = 0;
  for (size_t c = worker; c < job.nchunks; c += nthreads_) {
    const size_t lo = job.begin + c * job.grain;
    const size_t hi = std::min(job.end, lo + job.grain);
    (*job.range_body)(lo, hi, worker);
    ++chunks;
    env_.Tick(1);  // chunk-boundary deterministic progress
  }
  if (chunks > 0) env_.NoteExec(rfdet::ExecEvent::kChunk, chunks);
}

void Executor::ParallelFor(size_t begin, size_t end, size_t grain,
                           const RangeBody& body) {
  env_.NoteExec(rfdet::ExecEvent::kRegion, 1);
  if (begin >= end) return;
  LaunchFor(begin, end, GrainFor(end - begin, grain), body);
}

uint64_t Executor::Reduce(size_t begin, size_t end, size_t grain,
                          const MapFn& map, const CombineFn& combine,
                          uint64_t identity) {
  env_.NoteExec(rfdet::ExecEvent::kRegion, 1);
  if (begin >= end) return identity;
  const size_t count = end - begin;
  const size_t g = GrainFor(count, grain);
  const size_t nchunks = (count + g - 1) / g;
  // Two ping-pong halves so each tree level reads one buffer and writes
  // the other (levels would otherwise overlap in place).
  const GAddr buf = env_.Malloc(2 * nchunks * sizeof(uint64_t));
  const auto slot = [&](size_t half, size_t i) {
    return buf + (half * nchunks + i) * sizeof(uint64_t);
  };
  LaunchFor(begin, end, g, [&](size_t lo, size_t hi, size_t) {
    env_.Put<uint64_t>(slot(0, (lo - begin) / g), map(lo, hi));
  });
  // Fixed pairwise combining tree: level by level in chunk-index order,
  // dst[i] = combine(src[2i], src[2i+1]); an odd tail passes through.
  // The shape (and so the combine order) depends only on nchunks.
  uint64_t depth = 0;
  size_t src = 0;
  size_t width = nchunks;
  while (width > 1) {
    const size_t dst = 1 - src;
    const size_t next_width = (width + 1) / 2;
    LaunchFor(0, next_width, GrainFor(next_width, 0),
              [&](size_t lo, size_t hi, size_t) {
                for (size_t i = lo; i < hi; ++i) {
                  const uint64_t a = env_.Get<uint64_t>(slot(src, 2 * i));
                  const uint64_t v =
                      2 * i + 1 < width
                          ? combine(a, env_.Get<uint64_t>(
                                           slot(src, 2 * i + 1)))
                          : a;
                  env_.Put<uint64_t>(slot(dst, i), v);
                }
              });
    src = dst;
    width = next_width;
    ++depth;
  }
  const uint64_t result = env_.Get<uint64_t>(slot(src, 0));
  env_.Free(buf);
  env_.NoteExec(rfdet::ExecEvent::kReduceDepth, depth);
  return result;
}

// ---- worklists -------------------------------------------------------------

GAddr Executor::RingSlot(size_t worker, uint64_t index) const {
  return rings_ +
         (worker * ring_capacity_ + index % ring_capacity_) *
             sizeof(uint64_t);
}

size_t Executor::QueueLenLocked(size_t worker) {
  const uint64_t h = env_.Get<uint64_t>(heads_ + worker * 8);
  const uint64_t t = env_.Get<uint64_t>(tails_ + worker * 8);
  return static_cast<size_t>(t - h) + overflow_[worker].size();
}

bool Executor::PopFrontLocked(size_t worker, uint64_t* out) {
  uint64_t h = env_.Get<uint64_t>(heads_ + worker * 8);
  uint64_t t = env_.Get<uint64_t>(tails_ + worker * 8);
  if (h == t) {
    // Ring empty: refill from the host-side spill (oldest first, so the
    // combined queue stays FIFO).
    std::deque<uint64_t>& spill = overflow_[worker];
    if (spill.empty()) return false;
    const size_t n = std::min(spill.size(), ring_capacity_);
    for (size_t i = 0; i < n; ++i) {
      env_.Put<uint64_t>(RingSlot(worker, i), spill.front());
      spill.pop_front();
    }
    env_.Put<uint64_t>(heads_ + worker * 8, 0);
    env_.Put<uint64_t>(tails_ + worker * 8, n);
    h = 0;
    t = n;
  }
  *out = env_.Get<uint64_t>(RingSlot(worker, h));
  env_.Put<uint64_t>(heads_ + worker * 8, h + 1);
  return true;
}

void Executor::AppendLocked(size_t worker, uint64_t item) {
  const uint64_t h = env_.Get<uint64_t>(heads_ + worker * 8);
  const uint64_t t = env_.Get<uint64_t>(tails_ + worker * 8);
  if (!overflow_[worker].empty() || t - h >= ring_capacity_) {
    overflow_[worker].push_back(item);
    return;
  }
  env_.Put<uint64_t>(RingSlot(worker, t), item);
  env_.Put<uint64_t>(tails_ + worker * 8, t + 1);
}

void Executor::TakeBackLocked(size_t victim, size_t take,
                              std::vector<uint64_t>* out) {
  // Newest `take` items in FIFO order: ring-tail part (older) first, then
  // the tail of the spill (newer).
  std::deque<uint64_t>& spill = overflow_[victim];
  const size_t from_spill = std::min(take, spill.size());
  const size_t from_ring = take - from_spill;
  if (from_ring > 0) {
    const uint64_t t = env_.Get<uint64_t>(tails_ + victim * 8);
    for (size_t i = 0; i < from_ring; ++i) {
      out->push_back(env_.Get<uint64_t>(RingSlot(victim, t - from_ring + i)));
    }
    env_.Put<uint64_t>(tails_ + victim * 8, t - from_ring);
  }
  for (size_t i = spill.size() - from_spill; i < spill.size(); ++i) {
    out->push_back(spill[i]);
  }
  spill.erase(spill.end() - static_cast<ptrdiff_t>(from_spill),
              spill.end());
}

bool Executor::TryDonate(size_t worker, uint64_t* out) {
  // Deterministic donation: scan victims in ring order from the
  // requester; the first queue holding >= 2 items donates its newest
  // half. Two disjoint lock sections (victim's, then our own) — never
  // nested, so the protocol cannot deadlock.
  for (size_t k = 1; k < nthreads_; ++k) {
    const size_t victim = (worker + k) % nthreads_;
    std::vector<uint64_t> taken;
    env_.Lock(q_mu_[victim]);
    const size_t len = QueueLenLocked(victim);
    if (len >= 2) TakeBackLocked(victim, len / 2, &taken);
    env_.Unlock(q_mu_[victim]);
    if (taken.empty()) continue;
    env_.NoteExec(rfdet::ExecEvent::kDonation, 1);
    env_.NoteExec(rfdet::ExecEvent::kDonatedItems, taken.size());
    env_.Lock(q_mu_[worker]);
    for (size_t i = 1; i < taken.size(); ++i) AppendLocked(worker, taken[i]);
    env_.Unlock(q_mu_[worker]);
    *out = taken[0];
    return true;
  }
  return false;
}

void Executor::PushItem(size_t worker, uint64_t item) {
  // Count it outstanding before it becomes visible, so the drain count
  // can never dip to zero while the item is queued.
  env_.AtomicFetchAdd(outstanding_, 1);
  env_.Lock(q_mu_[worker]);
  AppendLocked(worker, item);
  env_.Unlock(q_mu_[worker]);
}

void Executor::ForEach(const uint64_t* seeds, size_t count,
                       const ItemBody& body) {
  env_.NoteExec(rfdet::ExecEvent::kRegion, 1);
  if (count == 0) return;
  // Main owns the queues between regions (the pool is parked and only
  // touches them inside a kEach job): reset and distribute seeds
  // round-robin, i -> worker i % threads.
  for (size_t w = 0; w < nthreads_; ++w) {
    env_.Put<uint64_t>(heads_ + w * 8, 0);
    env_.Put<uint64_t>(tails_ + w * 8, 0);
    overflow_[w].clear();
  }
  for (size_t i = 0; i < count; ++i) {
    const size_t w = i % nthreads_;
    const uint64_t t = env_.Get<uint64_t>(tails_ + w * 8);
    if (t < ring_capacity_) {
      env_.Put<uint64_t>(RingSlot(w, t), seeds[i]);
      env_.Put<uint64_t>(tails_ + w * 8, t + 1);
    } else {
      overflow_[w].push_back(seeds[i]);
    }
  }
  env_.AtomicStore(outstanding_, count);
  job_ = Job{};
  job_.kind = JobKind::kEach;
  job_.item_body = &body;
  Launch();
}

void Executor::RunEachPart(size_t worker) {
  const ItemBody& body = *job_.item_body;
  WorkContext ctx(this, worker);
  uint64_t processed = 0;
  uint64_t since_offer = 0;
  for (;;) {
    uint64_t item = 0;
    env_.Lock(q_mu_[worker]);
    bool got = PopFrontLocked(worker, &item);
    env_.Unlock(q_mu_[worker]);
    if (!got && donation_ && nthreads_ > 1) got = TryDonate(worker, &item);
    if (got) {
      body(item, ctx);
      ++processed;
      env_.Tick(1);
      const uint64_t before =
          env_.AtomicFetchAdd(outstanding_, ~uint64_t{0});
      if (before == 1) {
        // That was the last item anywhere: release the idle waiters.
        env_.Lock(pool_mu_);
        env_.Broadcast(idle_cv_);
        env_.Unlock(pool_mu_);
      } else if (donation_ && nthreads_ > 1 &&
                 ++since_offer >= kOfferEvery) {
        since_offer = 0;
        env_.Lock(q_mu_[worker]);
        const bool surplus = QueueLenLocked(worker) >= 2;
        env_.Unlock(q_mu_[worker]);
        if (surplus) {
          // Surplus offer: wake idlers so they donate-take from us.
          env_.Lock(pool_mu_);
          env_.Broadcast(idle_cv_);
          env_.Unlock(pool_mu_);
        }
      }
      continue;
    }
    // Idle: own queue empty and nothing donated. Either the region is
    // drained, or we park until an offer / the final drain broadcast.
    // The drain broadcast is taken under pool_mu_, so checking the count
    // with the mutex held cannot miss it.
    env_.Lock(pool_mu_);
    if (env_.AtomicLoad(outstanding_) == 0) {
      env_.Unlock(pool_mu_);
      break;
    }
    env_.Wait(idle_cv_, pool_mu_);
    env_.Unlock(pool_mu_);
  }
  if (processed > 0) env_.NoteExec(rfdet::ExecEvent::kItem, processed);
}

}  // namespace dmt::exec
