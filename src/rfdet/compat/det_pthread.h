// det_pthread — a drop-in, pthreads-shaped C-style API over RfdetRuntime.
//
// The paper's RFDet ships as a replacement pthreads library (§4.1): the
// application keeps calling pthread_mutex_lock & co. and the runtime makes
// them deterministic. This header is that surface for this repository:
// the same function names and calling conventions (prefixed det_), backed
// by a process-wide deterministic runtime. Ordinary shared-memory accesses
// still go through the runtime's instrumented interface (det_store /
// det_load below), which is this reproduction's analogue of compile-time
// store instrumentation.
//
// Usage:
//   rfdet::compat::DetProcess process(options);   // RAII, main thread
//   det_pthread_t t;
//   det_pthread_create(&t, nullptr, worker, arg);
//   det_pthread_join(t, &ret);
#pragma once

#include <cstddef>
#include <cstdint>

#include "rfdet/runtime/options.h"

namespace rfdet {
class RfdetRuntime;
}

namespace rfdet::compat {

// Owns the process-wide deterministic runtime. Exactly one may be live at
// a time; construct it on the main thread before any det_pthread call.
class DetProcess {
 public:
  explicit DetProcess(const RfdetOptions& options = {});
  ~DetProcess();

  DetProcess(const DetProcess&) = delete;
  DetProcess& operator=(const DetProcess&) = delete;

  [[nodiscard]] static RfdetRuntime& Runtime();

 private:
  RfdetRuntime* runtime_;
};

}  // namespace rfdet::compat

// ---- C-style surface --------------------------------------------------------

using det_pthread_t = size_t;

struct det_pthread_mutex_t {
  size_t id;
  bool initialized;
};
struct det_pthread_cond_t {
  size_t id;
  bool initialized;
};
struct det_pthread_barrier_t {
  size_t id;
  bool initialized;
};

inline constexpr det_pthread_mutex_t DET_PTHREAD_MUTEX_UNINIT{0, false};

// Threads. `attr` is accepted for signature parity and must be null.
int det_pthread_create(det_pthread_t* thread, const void* attr,
                       void* (*start_routine)(void*), void* arg);
int det_pthread_join(det_pthread_t thread, void** retval);
det_pthread_t det_pthread_self();

// Mutexes.
int det_pthread_mutex_init(det_pthread_mutex_t* mutex, const void* attr);
int det_pthread_mutex_lock(det_pthread_mutex_t* mutex);
int det_pthread_mutex_unlock(det_pthread_mutex_t* mutex);
int det_pthread_mutex_destroy(det_pthread_mutex_t* mutex);

// Condition variables.
int det_pthread_cond_init(det_pthread_cond_t* cond, const void* attr);
int det_pthread_cond_wait(det_pthread_cond_t* cond,
                          det_pthread_mutex_t* mutex);
int det_pthread_cond_signal(det_pthread_cond_t* cond);
int det_pthread_cond_broadcast(det_pthread_cond_t* cond);
int det_pthread_cond_destroy(det_pthread_cond_t* cond);

// Barriers.
int det_pthread_barrier_init(det_pthread_barrier_t* barrier,
                             const void* attr, unsigned count);
int det_pthread_barrier_wait(det_pthread_barrier_t* barrier);
int det_pthread_barrier_destroy(det_pthread_barrier_t* barrier);

// Shared-memory accessors (the instrumented-access analogue): GAddr-based
// malloc/free plus typed load/store.
uint64_t det_malloc(size_t size);
void det_free(uint64_t addr);
void det_store(uint64_t addr, const void* src, size_t len);
void det_load(uint64_t addr, void* dst, size_t len);
