#include "rfdet/compat/det_pthread.h"

#include <cerrno>
#include <mutex>
#include <unordered_map>

#include "rfdet/common/check.h"
#include "rfdet/runtime/runtime.h"

namespace rfdet::compat {

namespace {

RfdetRuntime* g_runtime = nullptr;

// Thread return values, keyed by deterministic tid. Guarded by a host
// mutex: contents are a deterministic function of execution; the lock only
// orders physically concurrent map operations.
std::mutex g_retval_mu;
std::unordered_map<size_t, void*> g_retvals;

RfdetRuntime& Rt() {
  RFDET_CHECK_MSG(g_runtime != nullptr,
                  "no DetProcess is live; construct one on the main thread");
  return *g_runtime;
}

}  // namespace

DetProcess::DetProcess(const RfdetOptions& options)
    : runtime_(new RfdetRuntime(options)) {
  RFDET_CHECK_MSG(g_runtime == nullptr, "a DetProcess is already live");
  g_runtime = runtime_;
}

DetProcess::~DetProcess() {
  g_runtime = nullptr;
  delete runtime_;
  std::scoped_lock lock(g_retval_mu);
  g_retvals.clear();
}

RfdetRuntime& DetProcess::Runtime() { return Rt(); }

}  // namespace rfdet::compat

using rfdet::compat::DetProcess;

int det_pthread_create(det_pthread_t* thread, const void* attr,
                       void* (*start_routine)(void*), void* arg) {
  RFDET_CHECK_MSG(attr == nullptr, "thread attributes are not supported");
  auto& rt = DetProcess::Runtime();
  size_t tid = 0;
  // Recoverable path: slot exhaustion surfaces as EAGAIN, exactly like
  // pthread_create, instead of aborting the process.
  const rfdet::RfdetErrc err = rt.TrySpawn(
      [start_routine, arg, &rt] {
        void* ret = start_routine(arg);
        std::scoped_lock lock(rfdet::compat::g_retval_mu);
        rfdet::compat::g_retvals[rt.CurrentTid()] = ret;
      },
      &tid);
  if (err != rfdet::RfdetErrc::kOk) return rfdet::ErrcToErrno(err);
  *thread = tid;
  return 0;
}

int det_pthread_join(det_pthread_t thread, void** retval) {
  const rfdet::RfdetErrc err = DetProcess::Runtime().Join(thread);
  if (err != rfdet::RfdetErrc::kOk) return rfdet::ErrcToErrno(err);
  if (retval != nullptr) {
    std::scoped_lock lock(rfdet::compat::g_retval_mu);
    const auto it = rfdet::compat::g_retvals.find(thread);
    *retval = it == rfdet::compat::g_retvals.end() ? nullptr : it->second;
  }
  return 0;
}

det_pthread_t det_pthread_self() {
  return DetProcess::Runtime().CurrentTid();
}

int det_pthread_mutex_init(det_pthread_mutex_t* mutex, const void* attr) {
  RFDET_CHECK_MSG(attr == nullptr, "mutex attributes are not supported");
  mutex->id = DetProcess::Runtime().CreateMutex();
  mutex->initialized = true;
  return 0;
}

int det_pthread_mutex_lock(det_pthread_mutex_t* mutex) {
  RFDET_CHECK_MSG(mutex->initialized, "lock of uninitialized mutex");
  // Under DeadlockPolicy::kReturnError a provable deadlock comes back as
  // EDEADLK — the POSIX error-checking-mutex contract.
  return rfdet::ErrcToErrno(DetProcess::Runtime().MutexLock(mutex->id));
}

int det_pthread_mutex_unlock(det_pthread_mutex_t* mutex) {
  RFDET_CHECK_MSG(mutex->initialized, "unlock of uninitialized mutex");
  DetProcess::Runtime().MutexUnlock(mutex->id);
  return 0;
}

int det_pthread_mutex_destroy(det_pthread_mutex_t* mutex) {
  mutex->initialized = false;
  return 0;
}

int det_pthread_cond_init(det_pthread_cond_t* cond, const void* attr) {
  RFDET_CHECK_MSG(attr == nullptr, "cond attributes are not supported");
  cond->id = DetProcess::Runtime().CreateCond();
  cond->initialized = true;
  return 0;
}

int det_pthread_cond_wait(det_pthread_cond_t* cond,
                          det_pthread_mutex_t* mutex) {
  RFDET_CHECK(cond->initialized && mutex->initialized);
  // EDEADLK on a provable stall (kReturnError policy); the mutex is then
  // still held and the thread was never enqueued on the condition.
  return rfdet::ErrcToErrno(
      DetProcess::Runtime().CondWait(cond->id, mutex->id));
}

int det_pthread_cond_signal(det_pthread_cond_t* cond) {
  RFDET_CHECK(cond->initialized);
  DetProcess::Runtime().CondSignal(cond->id);
  return 0;
}

int det_pthread_cond_broadcast(det_pthread_cond_t* cond) {
  RFDET_CHECK(cond->initialized);
  DetProcess::Runtime().CondBroadcast(cond->id);
  return 0;
}

int det_pthread_cond_destroy(det_pthread_cond_t* cond) {
  cond->initialized = false;
  return 0;
}

int det_pthread_barrier_init(det_pthread_barrier_t* barrier,
                             const void* attr, unsigned count) {
  RFDET_CHECK_MSG(attr == nullptr, "barrier attributes are not supported");
  barrier->id = DetProcess::Runtime().CreateBarrier(count);
  barrier->initialized = true;
  return 0;
}

int det_pthread_barrier_wait(det_pthread_barrier_t* barrier) {
  RFDET_CHECK(barrier->initialized);
  return rfdet::ErrcToErrno(
      DetProcess::Runtime().BarrierWait(barrier->id));
}

int det_pthread_barrier_destroy(det_pthread_barrier_t* barrier) {
  barrier->initialized = false;
  return 0;
}

uint64_t det_malloc(size_t size) {
  // malloc contract: 0 (no object ever lives at GAddr 0) on exhaustion
  // instead of aborting.
  const rfdet::GAddr addr = DetProcess::Runtime().TryMalloc(size);
  return addr == rfdet::kNullGAddr ? 0 : addr;
}

void det_free(uint64_t addr) { DetProcess::Runtime().Free(addr); }

void det_store(uint64_t addr, const void* src, size_t len) {
  DetProcess::Runtime().Store(addr, src, len);
}

void det_load(uint64_t addr, void* dst, size_t len) {
  DetProcess::Runtime().Load(addr, dst, len);
}
