// Backend registry: one factory for the five interchangeable runtimes.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rfdet/api/env.h"
#include "rfdet/mem/thread_view.h"
#include "rfdet/race/race_detector.h"
#include "rfdet/replay/replay_log.h"
#include "rfdet/verify/fingerprint.h"

namespace dmt {

enum class BackendKind {
  kPthreads,  // nondeterministic baseline
  kKendo,     // weak determinism (Kendo sync, shared memory)
  kRfdetCi,   // the paper's system, instrumented-store monitor
  kRfdetPf,   // the paper's system, page-fault monitor
  kDthreads,  // serial-commit-at-sync global-barrier baseline
  kCoredet,   // quantum-lockstep global-barrier ablation
};

struct BackendConfig {
  BackendKind kind = BackendKind::kRfdetCi;

  // Common geometry.
  size_t region_bytes = 64u << 20;
  size_t static_bytes = 4u << 20;
  size_t max_threads = 64;

  // RFDet tuning (paper §4.5 / §5.4).
  bool slice_merging = true;
  bool prelock = true;
  bool lazy_writes = true;
  size_t metadata_bytes = 256u << 20;
  double gc_threshold = 0.90;

  // Wait/kernel tuning (rfdet backends; ignored by the others). Same
  // semantics as the matching RfdetOptions fields — never a correctness
  // decision, so benches and tests can sweep them per cell.
  std::string kernels = "auto";
  std::string turn_wait = "adaptive";
  bool off_turn_close = false;

  // Deterministic executor defaults (rfdet/kendo backends; surfaced to
  // exec::Executor via Env::ExecDefaults). See RfdetOptions for semantics.
  size_t exec_grain = 0;
  bool exec_donation = true;
  size_t exec_pool_threads = 0;

  // CoreDet quantum length in deterministic ticks (~words of work).
  uint64_t coredet_quantum = 100'000;

  // Determinism self-verification (rfdet/kendo backends; ignored by the
  // others). fingerprint_panic maps to DivergencePolicy::kPanic; false
  // retains the report (Env::LastDivergenceReport) and keeps running.
  rfdet::FingerprintMode fingerprint = rfdet::FingerprintMode::kOff;
  std::string fingerprint_path;
  bool fingerprint_panic = true;
  size_t fingerprint_epoch_ops = 64;
  bool dlrc_paranoia = false;

  // Data-race detection (rfdet backends only; forced off for kendo, which
  // has no slices to compare, and ignored by the others).
  rfdet::RacePolicy race_policy = rfdet::RacePolicy::kOff;
  size_t race_window_bytes = 8u << 20;
  size_t race_max_reports = 64;
  bool race_track_reads = false;

  // Record/replay + checkpoint/restore (rfdet/kendo backends; replay only
  // needs the deterministic schedule, checkpointing additionally needs
  // isolation and is dropped for kendo). See RfdetOptions for semantics.
  rfdet::ReplayMode replay_mode = rfdet::ReplayMode::kOff;
  std::string replay_log_path;
  std::string checkpoint_path;
  uint64_t checkpoint_interval_turns = 0;
  std::string restore_checkpoint_path;

  // Monitor used by the lockstep baselines. Real DThreads uses page
  // protection; the default here is the COW-page-table monitor because it
  // models DThreads' cheap commit-then-share-globals update (re-copying
  // every touched page per phase, as kPageFault does, would overcharge
  // it). Set kPageFault to measure the protection-based variant.
  rfdet::MonitorMode lockstep_monitor = rfdet::MonitorMode::kInstrumented;
};

[[nodiscard]] std::string_view ToString(BackendKind kind);
[[nodiscard]] std::optional<BackendKind> ParseBackend(std::string_view name);
[[nodiscard]] const std::vector<BackendKind>& AllBackends();

// Creates a fresh Env for one workload run. The Env owns its runtime; the
// calling thread is attached as the main thread and must destroy the Env
// from the same thread.
[[nodiscard]] std::unique_ptr<Env> CreateEnv(const BackendConfig& config);

}  // namespace dmt
