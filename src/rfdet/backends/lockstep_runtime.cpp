#include "rfdet/backends/lockstep_runtime.h"

#include <algorithm>

#include "rfdet/common/check.h"

namespace rfdet {

namespace {

struct TlsBinding {
  LockstepRuntime* runtime = nullptr;
  void* ctx = nullptr;
};
thread_local TlsBinding g_tls;

}  // namespace

LockstepRuntime::LockstepRuntime(const Options& options)
    : options_(options),
      allocator_(DetAllocator::Config{
          .static_base = 16,
          .static_size = options.static_bytes,
          .heap_size = options.region_bytes - options.static_bytes -
                       2 * kPageSize,
          .max_threads = options.max_threads,
      }),
      global_view_(options.region_bytes, MonitorMode::kInstrumented,
                   nullptr) {
  RFDET_CHECK_MSG(g_tls.runtime == nullptr,
                  "a runtime is already attached to this thread");
  threads_.reserve(options_.max_threads);
  auto main_ctx = std::make_unique<ThreadCtx>();
  main_ctx->tid = 0;
  main_ctx->view = std::make_unique<ThreadView>(options_.region_bytes,
                                                options_.monitor, nullptr);
  main_ctx->view->ActivateOnThisThread();
  threads_.push_back(std::move(main_ctx));
  g_tls = {this, threads_[0].get()};
}

LockstepRuntime::~LockstepRuntime() {
  for (auto& ctx : threads_) {
    if (ctx->worker.joinable()) ctx->worker.join();
  }
  ThreadView::DeactivateOnThisThread();
  g_tls = {nullptr, nullptr};
}

LockstepRuntime::ThreadCtx& LockstepRuntime::Ctx() const {
  RFDET_CHECK_MSG(g_tls.runtime == this,
                  "calling thread is not attached to this runtime");
  return *static_cast<ThreadCtx*>(g_tls.ctx);
}

LockstepRuntime::SyncObj& LockstepRuntime::Obj(size_t id,
                                               SyncObj::Kind kind) {
  std::scoped_lock lock(mu_);
  RFDET_CHECK_MSG(id < sync_objs_.size(), "unknown sync object id");
  SyncObj& obj = sync_objs_[id];
  RFDET_CHECK_MSG(obj.kind == kind, "sync object used as wrong kind");
  return obj;
}

// ---------------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------------

GAddr LockstepRuntime::AllocStatic(size_t size, size_t align) {
  RFDET_CHECK_MSG(Ctx().tid == 0,
                  "static allocation is a main-thread setup operation");
  return allocator_.AllocStatic(size, align);
}

GAddr LockstepRuntime::Malloc(size_t size) {
  return allocator_.Alloc(Ctx().tid, size);
}

void LockstepRuntime::Free(GAddr addr) { allocator_.Free(Ctx().tid, addr); }

void LockstepRuntime::ChargeTicks(ThreadCtx& me, uint64_t words) {
  if (options_.quantum_ticks == 0) return;  // DThreads: sync-only quanta
  me.quantum_used += words;
  if (me.quantum_used >= options_.quantum_ticks) {
    me.quantum_used = 0;
    SyncPoint(me, Action{});  // quantum barrier with no sync action
  }
}

void LockstepRuntime::Store(GAddr addr, const void* src, size_t len) {
  ThreadCtx& me = Ctx();
  const uint64_t words = (len + 7) / 8;
  me.stores.fetch_add(words, std::memory_order_relaxed);
  me.view->Store(addr, src, len);
  ChargeTicks(me, words);
}

void LockstepRuntime::Load(GAddr addr, void* dst, size_t len) {
  ThreadCtx& me = Ctx();
  const uint64_t words = (len + 7) / 8;
  me.loads.fetch_add(words, std::memory_order_relaxed);
  me.view->Load(addr, dst, len);
  ChargeTicks(me, words);
}

void LockstepRuntime::Tick(uint64_t words) { ChargeTicks(Ctx(), words); }

// ---------------------------------------------------------------------------
// Fence and serial phase
// ---------------------------------------------------------------------------

void LockstepRuntime::SyncPoint(ThreadCtx& me, Action action) {
  // Close the quantum's slice outside the global lock.
  me.mods.Clear();
  me.view->CollectModifications(me.mods);

  std::unique_lock lock(mu_);
  me.state = State::kArrived;
  me.action = action;
  ++arrived_;
  if (arrived_ == runnable_) {
    RunSerialPhase();
  } else {
    const uint64_t entry_epoch = epoch_;
    fence_cv_.wait(lock, [&] { return epoch_ != entry_epoch; });
  }
  // If our action blocked us, sleep until a later phase grants it.
  fence_cv_.wait(lock, [&] {
    return me.state == State::kRunning || me.state == State::kExited;
  });
}

void LockstepRuntime::RunSerialPhase() {
  phases_.fetch_add(1, std::memory_order_relaxed);
  std::vector<ThreadCtx*> batch;
  for (auto& ctx : threads_) {
    if (ctx->state == State::kArrived) batch.push_back(ctx.get());
  }
  std::sort(batch.begin(), batch.end(),
            [](const ThreadCtx* a, const ThreadCtx* b) {
              return a->tid < b->tid;
            });
  // Token order, part 1: commit every thread's isolated modifications into
  // the global image (last committer — highest tid — wins conflicts,
  // deterministically).
  for (ThreadCtx* ctx : batch) {
    global_view_.ApplyRemote(ctx->mods, /*lazy=*/false);
    stats_.bytes_propagated.fetch_add(ctx->mods.ByteCount(),
                                      std::memory_order_relaxed);
    ctx->mods.Clear();
  }
  // Token order, part 2: execute the pending synchronization actions.
  for (ThreadCtx* ctx : batch) {
    ctx->state = State::kRunning;  // may be re-blocked by its own action
    ExecuteAction(*ctx);
  }
  // Refresh every runnable thread's private view from the global image.
  for (auto& ctx : threads_) {
    if (ctx->state == State::kRunning) {
      ctx->view->CopyFrom(global_view_);
    }
  }
  arrived_ = 0;
  ++epoch_;
  RFDET_CHECK_MSG(runnable_ > 0, "lockstep deadlock: no runnable threads");
  fence_cv_.notify_all();
}

void LockstepRuntime::MakeRunnable(ThreadCtx& ctx) {
  RFDET_DCHECK(ctx.state == State::kBlocked);
  ctx.state = State::kRunning;
  ++runnable_;
}

void LockstepRuntime::ExecuteAction(ThreadCtx& ctx) {
  const Action action = ctx.action;
  ctx.action = Action{};
  switch (action.kind) {
    case Action::Kind::kNone:
      break;
    case Action::Kind::kLock: {
      SyncObj& m = sync_objs_[action.a];
      if (!m.locked) {
        m.locked = true;
        m.owner = ctx.tid;
      } else {
        m.waitq.push_back(ctx.tid);
        ctx.state = State::kBlocked;
        --runnable_;
      }
      break;
    }
    case Action::Kind::kUnlock: {
      SyncObj& m = sync_objs_[action.a];
      RFDET_CHECK_MSG(m.locked && m.owner == ctx.tid,
                      "unlock of unowned mutex");
      if (!m.waitq.empty()) {
        const size_t next = m.waitq.front();
        m.waitq.pop_front();
        m.owner = next;
        MakeRunnable(CtxOf(next));
      } else {
        m.locked = false;
        m.owner = kNone;
      }
      break;
    }
    case Action::Kind::kWait: {
      SyncObj& m = sync_objs_[action.b];
      RFDET_CHECK_MSG(m.locked && m.owner == ctx.tid,
                      "cond wait without holding the mutex");
      SyncObj& c = sync_objs_[action.a];
      c.cond_q.push_back(ctx.tid);
      ctx.wait_mutex = action.b;
      // Embedded unlock with deterministic hand-off.
      if (!m.waitq.empty()) {
        const size_t next = m.waitq.front();
        m.waitq.pop_front();
        m.owner = next;
        MakeRunnable(CtxOf(next));
      } else {
        m.locked = false;
        m.owner = kNone;
      }
      ctx.state = State::kBlocked;
      --runnable_;
      break;
    }
    case Action::Kind::kSignal:
    case Action::Kind::kBroadcast: {
      SyncObj& c = sync_objs_[action.a];
      const size_t n =
          action.kind == Action::Kind::kSignal
              ? std::min<size_t>(1, c.cond_q.size())
              : c.cond_q.size();
      for (size_t i = 0; i < n; ++i) {
        const size_t w = c.cond_q.front();
        c.cond_q.pop_front();
        // The waiter must re-acquire the mutex it waited with.
        ThreadCtx& waiter = CtxOf(w);
        SyncObj& m = sync_objs_[waiter.wait_mutex];
        if (!m.locked) {
          m.locked = true;
          m.owner = w;
          MakeRunnable(waiter);
        } else {
          m.waitq.push_back(w);  // stays blocked until the unlock
        }
      }
      break;
    }
    case Action::Kind::kBarrier: {
      SyncObj& b = sync_objs_[action.a];
      b.barrier_q.push_back(ctx.tid);
      if (b.barrier_q.size() == b.parties) {
        for (const size_t w : b.barrier_q) {
          if (w == ctx.tid) continue;
          MakeRunnable(CtxOf(w));
        }
        b.barrier_q.clear();
      } else {
        ctx.state = State::kBlocked;
        --runnable_;
      }
      break;
    }
    case Action::Kind::kJoin: {
      ThreadCtx& target = CtxOf(action.a);
      if (target.state != State::kExited) {
        RFDET_CHECK_MSG(target.joiner == kNone, "concurrent join");
        target.joiner = ctx.tid;
        ctx.state = State::kBlocked;
        --runnable_;
      }
      break;
    }
    case Action::Kind::kExit: {
      ctx.state = State::kExited;
      --runnable_;
      if (ctx.joiner != kNone) {
        MakeRunnable(CtxOf(ctx.joiner));
      }
      break;
    }
    case Action::Kind::kAtomic: {
      // Execute against the committed global image, in token order.
      uint64_t cur = 0;
      global_view_.Load(action.addr, &cur, sizeof cur);
      auto store_global = [&](uint64_t v) {
        ModList one;
        one.Append(action.addr,
                   {reinterpret_cast<const std::byte*>(&v), sizeof v});
        global_view_.ApplyRemote(one, /*lazy=*/false);
      };
      switch (action.atomic_op) {
        case Action::AtomicOp::kLoad:
          ctx.atomic_result = cur;
          break;
        case Action::AtomicOp::kStore:
          store_global(action.operand);
          break;
        case Action::AtomicOp::kAdd:
          ctx.atomic_result = cur;
          store_global(cur + action.operand);
          break;
        case Action::AtomicOp::kCas:
          ctx.atomic_result = cur;
          ctx.atomic_success = cur == action.expected;
          if (ctx.atomic_success) store_global(action.operand);
          break;
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

uint64_t LockstepRuntime::AtomicLoad(GAddr addr) {
  ThreadCtx& me = Ctx();
  SyncPoint(me, Action{.kind = Action::Kind::kAtomic,
                       .atomic_op = Action::AtomicOp::kLoad,
                       .addr = addr});
  std::scoped_lock lock(mu_);
  return me.atomic_result;
}

void LockstepRuntime::AtomicStore(GAddr addr, uint64_t value) {
  ThreadCtx& me = Ctx();
  SyncPoint(me, Action{.kind = Action::Kind::kAtomic,
                       .atomic_op = Action::AtomicOp::kStore,
                       .addr = addr,
                       .operand = value});
}

uint64_t LockstepRuntime::AtomicFetchAdd(GAddr addr, uint64_t delta) {
  ThreadCtx& me = Ctx();
  SyncPoint(me, Action{.kind = Action::Kind::kAtomic,
                       .atomic_op = Action::AtomicOp::kAdd,
                       .addr = addr,
                       .operand = delta});
  std::scoped_lock lock(mu_);
  return me.atomic_result;
}

bool LockstepRuntime::AtomicCas(GAddr addr, uint64_t& expected,
                                uint64_t desired) {
  ThreadCtx& me = Ctx();
  SyncPoint(me, Action{.kind = Action::Kind::kAtomic,
                       .atomic_op = Action::AtomicOp::kCas,
                       .addr = addr,
                       .operand = desired,
                       .expected = expected});
  std::scoped_lock lock(mu_);
  if (!me.atomic_success) expected = me.atomic_result;
  return me.atomic_success;
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

void LockstepRuntime::WorkerMain(ThreadCtx& ctx, std::function<void()> fn) {
  g_tls = {this, &ctx};
  ctx.view->ActivateOnThisThread();
  fn();
  SyncPoint(ctx, Action{.kind = Action::Kind::kExit});
  ThreadView::DeactivateOnThisThread();
  g_tls = {nullptr, nullptr};
}

size_t LockstepRuntime::Spawn(std::function<void()> fn) {
  ThreadCtx& me = Ctx();
  stats_.forks.fetch_add(1, std::memory_order_relaxed);
  // Fork is a synchronization point: commit our modifications so the child
  // inherits them through the global image.
  SyncPoint(me, Action{});
  std::scoped_lock lock(mu_);
  const size_t tid = threads_.size();
  RFDET_CHECK_MSG(tid < options_.max_threads, "max_threads exceeded");
  threads_.push_back(std::make_unique<ThreadCtx>());
  ThreadCtx* child = threads_.back().get();
  child->tid = tid;
  child->view = std::make_unique<ThreadView>(options_.region_bytes,
                                             options_.monitor, nullptr);
  child->view->CopyFrom(global_view_);
  ++runnable_;
  child->worker = std::thread([this, child, fn = std::move(fn)]() mutable {
    WorkerMain(*child, std::move(fn));
  });
  return tid;
}

void LockstepRuntime::Join(size_t tid) {
  ThreadCtx& me = Ctx();
  stats_.joins.fetch_add(1, std::memory_order_relaxed);
  RFDET_CHECK_MSG(tid < threads_.size() && tid != me.tid, "bad join target");
  SyncPoint(me, Action{.kind = Action::Kind::kJoin, .a = tid});
  ThreadCtx& target = CtxOf(tid);
  std::unique_lock lock(mu_);
  RFDET_CHECK(!target.join_reaped);
  target.join_reaped = true;
  lock.unlock();
  if (target.worker.joinable()) target.worker.join();
}

size_t LockstepRuntime::CurrentTid() const { return Ctx().tid; }

// ---------------------------------------------------------------------------
// Synchronization API
// ---------------------------------------------------------------------------

size_t LockstepRuntime::CreateMutex() {
  std::scoped_lock lock(mu_);
  sync_objs_.emplace_back(SyncObj::Kind::kMutex);
  return sync_objs_.size() - 1;
}

size_t LockstepRuntime::CreateCond() {
  std::scoped_lock lock(mu_);
  sync_objs_.emplace_back(SyncObj::Kind::kCond);
  return sync_objs_.size() - 1;
}

size_t LockstepRuntime::CreateBarrier(size_t parties) {
  RFDET_CHECK(parties > 0);
  std::scoped_lock lock(mu_);
  sync_objs_.emplace_back(SyncObj::Kind::kBarrier);
  sync_objs_.back().parties = parties;
  return sync_objs_.size() - 1;
}

void LockstepRuntime::MutexLock(size_t id) {
  ThreadCtx& me = Ctx();
  stats_.locks.fetch_add(1, std::memory_order_relaxed);
  Obj(id, SyncObj::Kind::kMutex);
  SyncPoint(me, Action{.kind = Action::Kind::kLock, .a = id});
}

void LockstepRuntime::MutexUnlock(size_t id) {
  ThreadCtx& me = Ctx();
  stats_.unlocks.fetch_add(1, std::memory_order_relaxed);
  Obj(id, SyncObj::Kind::kMutex);
  SyncPoint(me, Action{.kind = Action::Kind::kUnlock, .a = id});
}

void LockstepRuntime::CondWait(size_t cond_id, size_t mutex_id) {
  ThreadCtx& me = Ctx();
  stats_.cond_waits.fetch_add(1, std::memory_order_relaxed);
  Obj(cond_id, SyncObj::Kind::kCond);
  Obj(mutex_id, SyncObj::Kind::kMutex);
  SyncPoint(me,
            Action{.kind = Action::Kind::kWait, .a = cond_id, .b = mutex_id});
}

void LockstepRuntime::CondSignal(size_t cond_id) {
  ThreadCtx& me = Ctx();
  stats_.cond_signals.fetch_add(1, std::memory_order_relaxed);
  Obj(cond_id, SyncObj::Kind::kCond);
  SyncPoint(me, Action{.kind = Action::Kind::kSignal, .a = cond_id});
}

void LockstepRuntime::CondBroadcast(size_t cond_id) {
  ThreadCtx& me = Ctx();
  stats_.cond_signals.fetch_add(1, std::memory_order_relaxed);
  Obj(cond_id, SyncObj::Kind::kCond);
  SyncPoint(me, Action{.kind = Action::Kind::kBroadcast, .a = cond_id});
}

void LockstepRuntime::BarrierWait(size_t id) {
  ThreadCtx& me = Ctx();
  stats_.barriers.fetch_add(1, std::memory_order_relaxed);
  Obj(id, SyncObj::Kind::kBarrier);
  SyncPoint(me, Action{.kind = Action::Kind::kBarrier, .a = id});
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

StatsSnapshot LockstepRuntime::Snapshot() const {
  StatsSnapshot s;
  s.locks = stats_.locks.load();
  s.unlocks = stats_.unlocks.load();
  s.cond_waits = stats_.cond_waits.load();
  s.cond_signals = stats_.cond_signals.load();
  s.barriers = stats_.barriers.load();
  s.forks = stats_.forks.load();
  s.joins = stats_.joins.load();
  s.bytes_propagated = stats_.bytes_propagated.load();
  std::scoped_lock lock(mu_);
  for (const auto& ctx : threads_) {
    s.loads += ctx->loads.load(std::memory_order_relaxed);
    s.stores += ctx->stores.load(std::memory_order_relaxed);
    if (ctx->view) {
      const ViewStats& v = ctx->view->Stats();
      s.stores_with_copy += v.stores_with_copy;
      s.page_faults += v.page_faults;
      s.mprotect_calls += v.mprotect_calls;
      s.pages_diffed += v.pages_diffed;
      s.resident_bytes += ctx->view->ResidentBytes();
    }
  }
  s.resident_bytes += global_view_.ResidentBytes();
  return s;
}

}  // namespace rfdet
