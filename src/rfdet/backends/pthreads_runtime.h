// PthreadsRuntime — the conventional nondeterministic baseline.
//
// Plain std::thread / std::mutex / std::condition_variable over a single
// shared image, with no isolation, no instrumentation overhead and no
// deterministic scheduling. This is the "pthreads" bar every Figure-7
// measurement is normalized to.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rfdet/mem/det_allocator.h"
#include "rfdet/runtime/stats.h"

namespace rfdet {

class PthreadsRuntime {
 public:
  struct Options {
    size_t region_bytes = 64u << 20;
    size_t static_bytes = 4u << 20;
    size_t max_threads = 64;
  };

  explicit PthreadsRuntime(const Options& options);
  ~PthreadsRuntime();

  PthreadsRuntime(const PthreadsRuntime&) = delete;
  PthreadsRuntime& operator=(const PthreadsRuntime&) = delete;

  GAddr AllocStatic(size_t size, size_t align = 16);
  GAddr Malloc(size_t size);
  void Free(GAddr addr);
  void Store(GAddr addr, const void* src, size_t len);
  void Load(GAddr addr, void* dst, size_t len);
  void Tick(uint64_t words) { (void)words; }

  uint64_t AtomicLoad(GAddr addr);
  void AtomicStore(GAddr addr, uint64_t value);
  uint64_t AtomicFetchAdd(GAddr addr, uint64_t delta);
  bool AtomicCas(GAddr addr, uint64_t& expected, uint64_t desired);

  size_t Spawn(std::function<void()> fn);
  void Join(size_t tid);
  [[nodiscard]] size_t CurrentTid() const;

  size_t CreateMutex();
  size_t CreateCond();
  size_t CreateBarrier(size_t parties);
  void MutexLock(size_t id);
  void MutexUnlock(size_t id);
  void CondWait(size_t cond_id, size_t mutex_id);
  void CondSignal(size_t cond_id);
  void CondBroadcast(size_t cond_id);
  void BarrierWait(size_t id);

  [[nodiscard]] StatsSnapshot Snapshot() const;
  [[nodiscard]] size_t FootprintBytes() const {
    return allocator_.StaticBytes() + allocator_.PeakBytes();
  }

 private:
  struct SyncObj {
    enum class Kind : uint8_t { kMutex, kCond, kBarrier };
    explicit SyncObj(Kind k) : kind(k) {}
    Kind kind;
    std::mutex m;
    std::condition_variable_any cv;  // cond: waiters; barrier: generation
    std::mutex barrier_mu;
    size_t parties = 0;
    size_t arrived = 0;
    uint64_t generation = 0;
  };

  struct ThreadCtx {
    size_t tid = 0;
    std::thread worker;
    std::atomic<uint64_t> loads{0};
    std::atomic<uint64_t> stores{0};
  };

  ThreadCtx& Ctx() const;
  SyncObj& Obj(size_t id, SyncObj::Kind kind);

  Options options_;
  DetAllocator allocator_;
  RuntimeStats stats_;
  std::unique_ptr<std::byte[]> image_;

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadCtx>> threads_;
  std::deque<SyncObj> sync_objs_;
};

}  // namespace rfdet
