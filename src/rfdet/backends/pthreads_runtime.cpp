#include "rfdet/backends/pthreads_runtime.h"

#include <cstring>

#include "rfdet/common/check.h"

namespace rfdet {

namespace {

struct TlsBinding {
  PthreadsRuntime* runtime = nullptr;
  void* ctx = nullptr;
};
thread_local TlsBinding g_tls;

}  // namespace

PthreadsRuntime::PthreadsRuntime(const Options& options)
    : options_(options),
      allocator_(DetAllocator::Config{
          .static_base = 16,
          .static_size = options.static_bytes,
          .heap_size = options.region_bytes - options.static_bytes -
                       2 * kPageSize,
          .max_threads = options.max_threads,
      }),
      image_(std::make_unique<std::byte[]>(options.region_bytes)) {
  RFDET_CHECK_MSG(g_tls.runtime == nullptr,
                  "a runtime is already attached to this thread");
  std::memset(image_.get(), 0, options_.region_bytes);
  threads_.reserve(options_.max_threads);
  auto main_ctx = std::make_unique<ThreadCtx>();
  main_ctx->tid = 0;
  threads_.push_back(std::move(main_ctx));
  g_tls = {this, threads_[0].get()};
}

PthreadsRuntime::~PthreadsRuntime() {
  for (auto& ctx : threads_) {
    if (ctx->worker.joinable()) ctx->worker.join();
  }
  g_tls = {nullptr, nullptr};
}

PthreadsRuntime::ThreadCtx& PthreadsRuntime::Ctx() const {
  RFDET_CHECK_MSG(g_tls.runtime == this,
                  "calling thread is not attached to this runtime");
  return *static_cast<ThreadCtx*>(g_tls.ctx);
}

PthreadsRuntime::SyncObj& PthreadsRuntime::Obj(size_t id,
                                               SyncObj::Kind kind) {
  SyncObj* obj;
  {
    std::scoped_lock lock(registry_mu_);
    RFDET_CHECK_MSG(id < sync_objs_.size(), "unknown sync object id");
    obj = &sync_objs_[id];
  }
  RFDET_CHECK_MSG(obj->kind == kind, "sync object used as wrong kind");
  return *obj;
}

GAddr PthreadsRuntime::AllocStatic(size_t size, size_t align) {
  RFDET_CHECK_MSG(Ctx().tid == 0,
                  "static allocation is a main-thread setup operation");
  return allocator_.AllocStatic(size, align);
}

GAddr PthreadsRuntime::Malloc(size_t size) {
  return allocator_.Alloc(Ctx().tid, size);
}

void PthreadsRuntime::Free(GAddr addr) { allocator_.Free(Ctx().tid, addr); }

void PthreadsRuntime::Store(GAddr addr, const void* src, size_t len) {
  ThreadCtx& me = Ctx();
  RFDET_DCHECK(addr + len <= options_.region_bytes);
  me.stores.fetch_add((len + 7) / 8, std::memory_order_relaxed);
  std::memcpy(image_.get() + addr, src, len);
}

void PthreadsRuntime::Load(GAddr addr, void* dst, size_t len) {
  ThreadCtx& me = Ctx();
  RFDET_DCHECK(addr + len <= options_.region_bytes);
  me.loads.fetch_add((len + 7) / 8, std::memory_order_relaxed);
  std::memcpy(dst, image_.get() + addr, len);
}

namespace {
std::atomic<uint64_t>& AtomicAt(std::byte* image, GAddr addr) {
  // 8-byte-aligned shared slots; plain hardware atomics.
  RFDET_DCHECK(addr % 8 == 0);
  return *reinterpret_cast<std::atomic<uint64_t>*>(image + addr);
}
}  // namespace

uint64_t PthreadsRuntime::AtomicLoad(GAddr addr) {
  return AtomicAt(image_.get(), addr).load(std::memory_order_seq_cst);
}

void PthreadsRuntime::AtomicStore(GAddr addr, uint64_t value) {
  AtomicAt(image_.get(), addr).store(value, std::memory_order_seq_cst);
}

uint64_t PthreadsRuntime::AtomicFetchAdd(GAddr addr, uint64_t delta) {
  return AtomicAt(image_.get(), addr)
      .fetch_add(delta, std::memory_order_seq_cst);
}

bool PthreadsRuntime::AtomicCas(GAddr addr, uint64_t& expected,
                                uint64_t desired) {
  return AtomicAt(image_.get(), addr)
      .compare_exchange_strong(expected, desired,
                               std::memory_order_seq_cst);
}

size_t PthreadsRuntime::Spawn(std::function<void()> fn) {
  stats_.forks.fetch_add(1, std::memory_order_relaxed);
  std::scoped_lock lock(registry_mu_);
  const size_t tid = threads_.size();
  RFDET_CHECK_MSG(tid < options_.max_threads, "max_threads exceeded");
  threads_.push_back(std::make_unique<ThreadCtx>());
  ThreadCtx* child = threads_.back().get();
  child->tid = tid;
  child->worker = std::thread([this, child, fn = std::move(fn)]() mutable {
    g_tls = {this, child};
    fn();
    g_tls = {nullptr, nullptr};
  });
  return tid;
}

void PthreadsRuntime::Join(size_t tid) {
  stats_.joins.fetch_add(1, std::memory_order_relaxed);
  ThreadCtx* target;
  {
    std::scoped_lock lock(registry_mu_);
    RFDET_CHECK_MSG(tid < threads_.size(), "bad join target");
    target = threads_[tid].get();
  }
  if (target->worker.joinable()) target->worker.join();
}

size_t PthreadsRuntime::CurrentTid() const { return Ctx().tid; }

size_t PthreadsRuntime::CreateMutex() {
  std::scoped_lock lock(registry_mu_);
  sync_objs_.emplace_back(SyncObj::Kind::kMutex);
  return sync_objs_.size() - 1;
}

size_t PthreadsRuntime::CreateCond() {
  std::scoped_lock lock(registry_mu_);
  sync_objs_.emplace_back(SyncObj::Kind::kCond);
  return sync_objs_.size() - 1;
}

size_t PthreadsRuntime::CreateBarrier(size_t parties) {
  RFDET_CHECK(parties > 0);
  std::scoped_lock lock(registry_mu_);
  sync_objs_.emplace_back(SyncObj::Kind::kBarrier);
  sync_objs_.back().parties = parties;
  return sync_objs_.size() - 1;
}

void PthreadsRuntime::MutexLock(size_t id) {
  stats_.locks.fetch_add(1, std::memory_order_relaxed);
  Obj(id, SyncObj::Kind::kMutex).m.lock();
}

void PthreadsRuntime::MutexUnlock(size_t id) {
  stats_.unlocks.fetch_add(1, std::memory_order_relaxed);
  Obj(id, SyncObj::Kind::kMutex).m.unlock();
}

void PthreadsRuntime::CondWait(size_t cond_id, size_t mutex_id) {
  stats_.cond_waits.fetch_add(1, std::memory_order_relaxed);
  SyncObj& c = Obj(cond_id, SyncObj::Kind::kCond);
  SyncObj& m = Obj(mutex_id, SyncObj::Kind::kMutex);
  std::unique_lock lock(m.m, std::adopt_lock);
  c.cv.wait(lock);
  lock.release();  // caller still logically holds the mutex
}

void PthreadsRuntime::CondSignal(size_t cond_id) {
  stats_.cond_signals.fetch_add(1, std::memory_order_relaxed);
  Obj(cond_id, SyncObj::Kind::kCond).cv.notify_one();
}

void PthreadsRuntime::CondBroadcast(size_t cond_id) {
  stats_.cond_signals.fetch_add(1, std::memory_order_relaxed);
  Obj(cond_id, SyncObj::Kind::kCond).cv.notify_all();
}

void PthreadsRuntime::BarrierWait(size_t id) {
  stats_.barriers.fetch_add(1, std::memory_order_relaxed);
  SyncObj& b = Obj(id, SyncObj::Kind::kBarrier);
  std::unique_lock lock(b.barrier_mu);
  if (++b.arrived == b.parties) {
    b.arrived = 0;
    ++b.generation;
    b.cv.notify_all();
  } else {
    const uint64_t gen = b.generation;
    b.cv.wait(lock, [&] { return b.generation != gen; });
  }
}

StatsSnapshot PthreadsRuntime::Snapshot() const {
  StatsSnapshot s;
  s.locks = stats_.locks.load();
  s.unlocks = stats_.unlocks.load();
  s.cond_waits = stats_.cond_waits.load();
  s.cond_signals = stats_.cond_signals.load();
  s.barriers = stats_.barriers.load();
  s.forks = stats_.forks.load();
  s.joins = stats_.joins.load();
  std::scoped_lock lock(registry_mu_);
  for (const auto& ctx : threads_) {
    s.loads += ctx->loads.load(std::memory_order_relaxed);
    s.stores += ctx->stores.load(std::memory_order_relaxed);
  }
  s.resident_bytes = FootprintBytes();
  return s;
}

}  // namespace rfdet
