#include "rfdet/backends/backends.h"

#include "rfdet/backends/lockstep_runtime.h"
#include "rfdet/backends/pthreads_runtime.h"
#include "rfdet/runtime/runtime.h"

namespace dmt {

namespace {

// All runtimes expose the same method surface; one adapter covers them.
template <typename Runtime>
class RuntimeEnv final : public Env {
 public:
  template <typename Opts>
  RuntimeEnv(std::string name, bool deterministic, const Opts& opts)
      : name_(std::move(name)),
        deterministic_(deterministic),
        runtime_(opts) {}

  [[nodiscard]] std::string Name() const override { return name_; }
  [[nodiscard]] bool Deterministic() const override {
    return deterministic_;
  }

  [[nodiscard]] size_t Tid() const override { return runtime_.CurrentTid(); }

  GAddr AllocStatic(size_t bytes, size_t align) override {
    return runtime_.AllocStatic(bytes, align);
  }
  GAddr Malloc(size_t bytes) override { return runtime_.Malloc(bytes); }
  void Free(GAddr addr) override { runtime_.Free(addr); }
  void Store(GAddr addr, const void* src, size_t len) override {
    runtime_.Store(addr, src, len);
  }
  void Load(GAddr addr, void* dst, size_t len) override {
    runtime_.Load(addr, dst, len);
  }
  void Tick(uint64_t words) override { runtime_.Tick(words); }

  uint64_t AtomicLoad(GAddr addr) override {
    return runtime_.AtomicLoad(addr);
  }
  void AtomicStore(GAddr addr, uint64_t value) override {
    runtime_.AtomicStore(addr, value);
  }
  uint64_t AtomicFetchAdd(GAddr addr, uint64_t delta) override {
    return runtime_.AtomicFetchAdd(addr, delta);
  }
  bool AtomicCas(GAddr addr, uint64_t& expected, uint64_t desired) override {
    return runtime_.AtomicCas(addr, expected, desired);
  }

  GAddr TryMalloc(size_t bytes) override {
    // Runtimes with a recoverable allocation path expose TryMalloc; the
    // others (pthreads, lockstep) keep the aborting semantics.
    if constexpr (requires { runtime_.TryMalloc(bytes); }) {
      return runtime_.TryMalloc(bytes);
    } else {
      return runtime_.Malloc(bytes);
    }
  }

  size_t Spawn(std::function<void()> fn) override {
    return runtime_.Spawn(std::move(fn));
  }
  int TrySpawn(std::function<void()> fn, size_t* out_tid) override {
    if constexpr (requires {
                    runtime_.TrySpawn(std::move(fn), out_tid);
                  }) {
      return rfdet::ErrcToErrno(runtime_.TrySpawn(std::move(fn), out_tid));
    } else {
      *out_tid = runtime_.Spawn(std::move(fn));
      return 0;
    }
  }
  void Join(size_t tid) override { runtime_.Join(tid); }

  size_t CreateMutex() override { return runtime_.CreateMutex(); }
  size_t CreateCond() override { return runtime_.CreateCond(); }
  size_t CreateBarrier(size_t parties) override {
    return runtime_.CreateBarrier(parties);
  }
  void Lock(size_t id) override { runtime_.MutexLock(id); }
  void Unlock(size_t id) override { runtime_.MutexUnlock(id); }
  void Wait(size_t cond_id, size_t mutex_id) override {
    runtime_.CondWait(cond_id, mutex_id);
  }
  void Signal(size_t cond_id) override { runtime_.CondSignal(cond_id); }
  void Broadcast(size_t cond_id) override {
    runtime_.CondBroadcast(cond_id);
  }
  void Barrier(size_t barrier_id) override {
    runtime_.BarrierWait(barrier_id);
  }

  uint64_t FinalizeFingerprint() override {
    if constexpr (requires { runtime_.FinalizeFingerprint(); }) {
      return runtime_.FinalizeFingerprint();
    } else {
      return 0;
    }
  }
  [[nodiscard]] std::string LastDivergenceReport() const override {
    if constexpr (requires { runtime_.LastDivergenceReport(); }) {
      return runtime_.LastDivergenceReport();
    } else {
      return "";
    }
  }
  [[nodiscard]] std::string RaceReportText() const override {
    if constexpr (requires { runtime_.RaceReportText(); }) {
      return runtime_.RaceReportText();
    } else {
      return "";
    }
  }

  bool Checkpoint() override {
    if constexpr (requires { runtime_.CheckpointNow(); }) {
      return runtime_.CheckpointNow() == rfdet::RfdetErrc::kOk;
    } else {
      return false;
    }
  }
  [[nodiscard]] bool Restored() const override {
    if constexpr (requires { runtime_.Restored(); }) {
      return runtime_.Restored();
    } else {
      return false;
    }
  }

  [[nodiscard]] ExecHints ExecDefaults() const override {
    if constexpr (requires { runtime_.options().exec_grain; }) {
      const auto& o = runtime_.options();
      return ExecHints{.pool_threads = o.exec_pool_threads,
                       .grain = o.exec_grain,
                       .donation = o.exec_donation};
    } else {
      return {};
    }
  }
  void NoteExec(rfdet::ExecEvent event, uint64_t n) override {
    if constexpr (requires { runtime_.NoteExec(event, n); }) {
      runtime_.NoteExec(event, n);
    }
  }

  [[nodiscard]] rfdet::StatsSnapshot Stats() const override {
    return runtime_.Snapshot();
  }
  [[nodiscard]] size_t FootprintBytes() const override {
    const rfdet::StatsSnapshot s = runtime_.Snapshot();
    return s.resident_bytes + s.metadata_peak_bytes;
  }

  [[nodiscard]] Runtime& runtime() noexcept { return runtime_; }

 private:
  std::string name_;
  bool deterministic_;
  Runtime runtime_;
};

}  // namespace

std::string_view ToString(BackendKind kind) {
  switch (kind) {
    case BackendKind::kPthreads:
      return "pthreads";
    case BackendKind::kKendo:
      return "kendo";
    case BackendKind::kRfdetCi:
      return "rfdet-ci";
    case BackendKind::kRfdetPf:
      return "rfdet-pf";
    case BackendKind::kDthreads:
      return "dthreads";
    case BackendKind::kCoredet:
      return "coredet";
  }
  return "?";
}

std::optional<BackendKind> ParseBackend(std::string_view name) {
  for (const BackendKind kind : AllBackends()) {
    if (ToString(kind) == name) return kind;
  }
  return std::nullopt;
}

const std::vector<BackendKind>& AllBackends() {
  static const std::vector<BackendKind> kAll = {
      BackendKind::kPthreads, BackendKind::kKendo,   BackendKind::kRfdetCi,
      BackendKind::kRfdetPf,  BackendKind::kDthreads, BackendKind::kCoredet,
  };
  return kAll;
}

std::unique_ptr<Env> CreateEnv(const BackendConfig& config) {
  const std::string name{ToString(config.kind)};
  switch (config.kind) {
    case BackendKind::kPthreads: {
      rfdet::PthreadsRuntime::Options opts;
      opts.region_bytes = config.region_bytes;
      opts.static_bytes = config.static_bytes;
      opts.max_threads = config.max_threads;
      return std::make_unique<RuntimeEnv<rfdet::PthreadsRuntime>>(
          name, /*deterministic=*/false, opts);
    }
    case BackendKind::kKendo:
    case BackendKind::kRfdetCi:
    case BackendKind::kRfdetPf: {
      rfdet::RfdetOptions opts;
      opts.isolation = config.kind != BackendKind::kKendo;
      opts.monitor = config.kind == BackendKind::kRfdetPf
                         ? rfdet::MonitorMode::kPageFault
                         : rfdet::MonitorMode::kInstrumented;
      opts.slice_merging = config.slice_merging;
      opts.prelock = config.prelock;
      opts.lazy_writes = config.lazy_writes;
      opts.region_bytes = config.region_bytes;
      opts.static_bytes = config.static_bytes;
      opts.max_threads = config.max_threads;
      opts.metadata_bytes = config.metadata_bytes;
      opts.gc_threshold = config.gc_threshold;
      opts.kernels = config.kernels;
      opts.turn_wait = config.turn_wait;
      opts.off_turn_close = config.off_turn_close && opts.isolation;
      opts.exec_grain = config.exec_grain;
      opts.exec_donation = config.exec_donation;
      opts.exec_pool_threads = config.exec_pool_threads;
      opts.fingerprint = config.fingerprint;
      opts.fingerprint_path = config.fingerprint_path;
      opts.divergence_policy = config.fingerprint_panic
                                   ? rfdet::DivergencePolicy::kPanic
                                   : rfdet::DivergencePolicy::kReport;
      opts.fingerprint_epoch_ops = config.fingerprint_epoch_ops;
      opts.dlrc_paranoia = config.dlrc_paranoia;
      // The kendo backend runs without isolation: no slices exist, so
      // there is nothing for the detector to compare.
      if (opts.isolation) {
        opts.race_policy = config.race_policy;
        opts.race_window_bytes = config.race_window_bytes;
        opts.race_max_reports = config.race_max_reports;
        opts.race_track_reads =
            config.race_track_reads &&
            config.race_policy != rfdet::RacePolicy::kOff;
      }
      // Replay only needs the deterministic schedule; checkpointing needs
      // a view to image, so it is dropped (not an error) for kendo.
      opts.replay_mode = config.replay_mode;
      opts.replay_log_path = config.replay_log_path;
      if (opts.isolation) {
        opts.checkpoint_path = config.checkpoint_path;
        opts.checkpoint_interval_turns = config.checkpoint_interval_turns;
        opts.restore_checkpoint_path = config.restore_checkpoint_path;
      }
      return std::make_unique<RuntimeEnv<rfdet::RfdetRuntime>>(
          name, /*deterministic=*/true, opts);
    }
    case BackendKind::kDthreads:
    case BackendKind::kCoredet: {
      rfdet::LockstepRuntime::Options opts;
      opts.monitor = config.lockstep_monitor;
      opts.region_bytes = config.region_bytes;
      opts.static_bytes = config.static_bytes;
      opts.max_threads = config.max_threads;
      opts.quantum_ticks = config.kind == BackendKind::kCoredet
                               ? config.coredet_quantum
                               : 0;
      return std::make_unique<RuntimeEnv<rfdet::LockstepRuntime>>(
          name, /*deterministic=*/true, opts);
    }
  }
  RFDET_PANIC("unknown backend kind");
}

}  // namespace dmt
