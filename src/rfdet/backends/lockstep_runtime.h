// LockstepRuntime — the global-barrier DMT baselines (paper §2, Figure 1).
//
// This runtime implements the classic strong-DMT formula RFDet is designed
// to beat: execution proceeds in quanta separated by *global barriers*.
// Threads run isolated in private views; at the end of each quantum every
// runnable thread must arrive at a fence, after which a serial phase
// commits each thread's isolated modifications into a shared global image
// and executes the pending synchronization actions in deterministic token
// order (ascending tid), then refreshes every runnable thread's view from
// the global image.
//
// Two configurations reproduce the paper's comparison systems:
//
//  * quantum_ticks == 0 — a quantum ends only at a synchronization
//    operation: the DThreads model ("a parallel phase ends after each
//    thread encounters any synchronization operation"). A thread that
//    computes without synchronizing stalls every other thread at the
//    fence — exactly the imbalance the paper's Figure 1 criticizes.
//
//  * quantum_ticks > 0 — a quantum also ends after a fixed amount of
//    deterministic work: the CoreDet/DMP lockstep model.
//
// Determinism: which threads are runnable, what each committed, and the
// token order are all pure functions of prior phases, so the whole
// execution is deterministic (this is tested).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rfdet/mem/det_allocator.h"
#include "rfdet/mem/thread_view.h"
#include "rfdet/runtime/stats.h"

namespace rfdet {

class LockstepRuntime {
 public:
  static constexpr size_t kNone = SIZE_MAX;

  struct Options {
    MonitorMode monitor = MonitorMode::kInstrumented;
    size_t region_bytes = 64u << 20;
    size_t static_bytes = 4u << 20;
    size_t max_threads = 64;
    uint64_t quantum_ticks = 0;  // 0 = DThreads; >0 = CoreDet quantum size
  };

  explicit LockstepRuntime(const Options& options);
  ~LockstepRuntime();

  LockstepRuntime(const LockstepRuntime&) = delete;
  LockstepRuntime& operator=(const LockstepRuntime&) = delete;

  GAddr AllocStatic(size_t size, size_t align = 16);
  GAddr Malloc(size_t size);
  void Free(GAddr addr);
  void Store(GAddr addr, const void* src, size_t len);
  void Load(GAddr addr, void* dst, size_t len);
  void Tick(uint64_t words);

  // Atomics are synchronization points: the operation executes inside the
  // serial phase against the global image, in token order.
  uint64_t AtomicLoad(GAddr addr);
  void AtomicStore(GAddr addr, uint64_t value);
  uint64_t AtomicFetchAdd(GAddr addr, uint64_t delta);
  bool AtomicCas(GAddr addr, uint64_t& expected, uint64_t desired);

  size_t Spawn(std::function<void()> fn);
  void Join(size_t tid);
  [[nodiscard]] size_t CurrentTid() const;

  size_t CreateMutex();
  size_t CreateCond();
  size_t CreateBarrier(size_t parties);
  void MutexLock(size_t id);
  void MutexUnlock(size_t id);
  void CondWait(size_t cond_id, size_t mutex_id);
  void CondSignal(size_t cond_id);
  void CondBroadcast(size_t cond_id);
  void BarrierWait(size_t id);

  [[nodiscard]] StatsSnapshot Snapshot() const;
  [[nodiscard]] uint64_t PhaseCount() const {
    return phases_.load(std::memory_order_relaxed);
  }

 private:
  struct Action {
    enum class Kind : uint8_t {
      kNone,  // quantum boundary without synchronization
      kLock,
      kUnlock,
      kWait,
      kSignal,
      kBroadcast,
      kBarrier,
      kJoin,
      kExit,
      kAtomic,
    };
    enum class AtomicOp : uint8_t { kLoad, kStore, kAdd, kCas };
    Kind kind = Kind::kNone;
    size_t a = kNone;  // sync object id / join target
    size_t b = kNone;  // mutex id for kWait
    AtomicOp atomic_op = AtomicOp::kLoad;
    GAddr addr = 0;
    uint64_t operand = 0;   // store value / add delta / CAS desired
    uint64_t expected = 0;  // CAS expected
  };

  enum class State : uint8_t { kRunning, kArrived, kBlocked, kExited };

  struct ThreadCtx {
    size_t tid = 0;
    std::unique_ptr<ThreadView> view;
    std::thread worker;
    uint64_t quantum_used = 0;
    std::atomic<uint64_t> loads{0};
    std::atomic<uint64_t> stores{0};
    // Everything below is guarded by mu_.
    State state = State::kRunning;
    Action action;
    ModList mods;
    size_t wait_mutex = kNone;  // mutex to re-acquire after a cond signal
    size_t joiner = kNone;
    bool join_reaped = false;
    uint64_t atomic_result = 0;  // old/observed value
    bool atomic_success = false;
  };

  struct SyncObj {
    enum class Kind : uint8_t { kMutex, kCond, kBarrier };
    explicit SyncObj(Kind k) : kind(k) {}
    Kind kind;
    bool locked = false;
    size_t owner = kNone;
    std::deque<size_t> waitq;       // mutex FIFO
    std::deque<size_t> cond_q;      // condition FIFO
    size_t parties = 0;
    std::vector<size_t> barrier_q;  // arrived tids
  };

  ThreadCtx& Ctx() const;
  ThreadCtx& CtxOf(size_t tid) const { return *threads_[tid]; }
  SyncObj& Obj(size_t id, SyncObj::Kind kind);

  // Ends the quantum: arrive at the fence with `action`, run or wait for
  // the serial phase, and (if the action blocks) sleep until granted.
  void SyncPoint(ThreadCtx& me, Action action);
  // Runs the serial phase; caller holds mu_ and is the last arriver.
  void RunSerialPhase();
  void ExecuteAction(ThreadCtx& ctx);
  // Grants a blocked thread (lock hand-off, barrier release, join, …).
  void MakeRunnable(ThreadCtx& ctx);

  void ChargeTicks(ThreadCtx& me, uint64_t words);
  void WorkerMain(ThreadCtx& ctx, std::function<void()> fn);

  Options options_;
  DetAllocator allocator_;
  ThreadView global_view_;
  RuntimeStats stats_;

  mutable std::mutex mu_;
  std::condition_variable fence_cv_;
  size_t runnable_ = 1;
  size_t arrived_ = 0;
  uint64_t epoch_ = 0;
  std::atomic<uint64_t> phases_{0};

  std::vector<std::unique_ptr<ThreadCtx>> threads_;
  std::deque<SyncObj> sync_objs_;
};

}  // namespace rfdet
