// Execution fingerprinting — online determinism self-verification.
//
// RFDet's promise is strong determinism, but a single end-of-run workload
// signature can only *assert* it: a determinism bug surfaces as "hash
// mismatch" with zero localization. This subsystem incrementally digests
// the execution at three levels so a divergence is pinpointed instead:
//
//   1. Schedule digest — one global stream absorbing every turn-ordered
//      synchronization transition (tid, op, sync var, kendo clock). All
//      absorbs happen under a turn, so the stream order is the
//      deterministic synchronization order itself.
//   2. Memory digests — one stream per thread, absorbing that thread's
//      slice closes (vector clock + ModList page-diff bytes) and every
//      remote slice applied to its view. Propagation runs concurrently
//      (prelock, post-wake), so a *global* order of memory events is not
//      deterministic — but each receiver's own sequence is, which is
//      exactly the per-stream granularity used here.
//   3. Final rollup — the per-stream chains folded with a digest of the
//      static region (where workloads put their output).
//
// Streams are chunked into *epochs*: every `epoch_ops` events the running
// chain is snapshotted as an epoch record {stream, seq, digest, anchor}.
// kRecord serializes the epoch chain to a compact binary file; kVerify
// streams the same execution against a recorded file and fails at the
// first epoch whose digest differs, with a report naming the stream
// (schedule or thread), epoch, and the last absorbed event (thread, kendo
// clock, vector clock, sync var or page). Within one stream the first
// divergent epoch — and therefore the report — is a pure function of the
// deterministic execution: byte-identical across runs.
//
// Thread-safety: each stream is only ever absorbed into by one host
// thread at a time (the schedule stream by the turn holder; a memory
// stream by its owner — or, during a barrier merge, by the last arriver
// while the owner is blocked). Counters are relaxed atomics so the
// watchdog can read racy-but-sane progress values from outside the
// schedule.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rfdet/common/error.h"
#include "rfdet/common/hash.h"
#include "rfdet/mem/metadata_arena.h"
#include "rfdet/mem/mod_list.h"
#include "rfdet/time/vector_clock.h"

namespace rfdet {

class FaultInjector;

enum class FingerprintMode : uint8_t {
  kOff = 0,
  kRecord,  // digest and serialize the fingerprint file at finalize
  kVerify,  // digest and stream-compare against a recorded file
};

// What a kVerify divergence (or a dlrc_paranoia invariant failure) does.
enum class DivergencePolicy : uint8_t {
  // Print the deterministic divergence report to stderr and panic — the
  // guardrail disposition (CI, det-check).
  kPanic,
  // Retain the first report (LastDivergenceReport), count it, call
  // on_divergence, and stop verifying; execution continues.
  kReport,
};

// One serialized digest record. kind 0 = schedule epoch (stream is 0),
// kind 1 = memory epoch (stream is the owning tid), kind 2 = the final
// rollup (stream 0, digest = rollup, anchor = region digest).
struct FingerprintEpoch {
  uint64_t kind = 0;
  uint64_t stream = 0;
  uint64_t seq = 0;     // epoch index within the stream
  uint64_t digest = 0;  // chained digest after the epoch's last event
  uint64_t anchor = 0;  // kendo clock (schedule) / vclock component (memory)
  uint64_t events = 0;  // cumulative events absorbed into the stream
  bool operator==(const FingerprintEpoch&) const = default;
};

class ExecutionFingerprint {
 public:
  struct Config {
    FingerprintMode mode = FingerprintMode::kOff;
    std::string path;  // fingerprint file ("" in kRecord: digest only)
    DivergencePolicy policy = DivergencePolicy::kPanic;
    size_t epoch_ops = 64;  // events per epoch (1 = exact pinpointing)
    size_t max_threads = 64;
    MetadataArena* arena = nullptr;      // charged for epoch storage
    FaultInjector* injector = nullptr;   // kFingerprintIo site
    std::function<void(const std::string&)> on_divergence;
    // Sink for recoverable file-I/O failures (RfdetErrc::kIo).
    std::function<void(RfdetErrc, const std::string&)> on_error;
  };

  explicit ExecutionFingerprint(const Config& config);
  ~ExecutionFingerprint();

  ExecutionFingerprint(const ExecutionFingerprint&) = delete;
  ExecutionFingerprint& operator=(const ExecutionFingerprint&) = delete;

  // True while events should be fed in: mode is not kOff and neither a
  // divergence nor an I/O failure has retired the subsystem.
  [[nodiscard]] bool Absorbing() const noexcept {
    return mode_ != FingerprintMode::kOff &&
           !dead_.load(std::memory_order_relaxed);
  }

  // ---- event absorption ----------------------------------------------------

  // A turn-ordered synchronization transition (call under the turn).
  void OnSyncOp(size_t tid, uint8_t op, const char* op_name, uint64_t object,
                uint64_t kendo_clock);
  // Thread `tid` closed a slice with the given time and modifications.
  void OnSliceClose(size_t tid, uint64_t seq, const VectorClock& time,
                    const ModList& mods);
  // Same, with the mods digest precomputed as HashMods(mods, kFnvOffset) —
  // the off-turn close path hashes the ModList bytes before taking the
  // turn and folds only this 64-bit value under it.
  void OnSliceClose(size_t tid, uint64_t seq, const VectorClock& time,
                    const ModList& mods, uint64_t mods_digest);
  // A remote slice (src_tid, src_seq, time) was applied to receiver's view.
  void OnApply(size_t receiver, size_t src_tid, uint64_t src_seq,
               const VectorClock& time, const ModList& mods);

  // Paranoia / external invariant failure: routed through the same
  // divergence sink (report retention, on_divergence, policy).
  void RaiseDivergence(const std::string& report);

  // Closes all partial epochs, folds the rollup (with `region_digest`
  // covering the shared region's output bytes), then writes the recording
  // (kRecord) or checks stream completeness and the final record
  // (kVerify). Idempotent; call once all worker threads have quiesced.
  uint64_t Finalize(uint64_t region_digest);

  // ---- introspection -------------------------------------------------------

  [[nodiscard]] FingerprintMode mode() const noexcept { return mode_; }
  [[nodiscard]] uint64_t Events() const noexcept;
  [[nodiscard]] uint64_t Epochs() const noexcept;
  [[nodiscard]] uint64_t Divergences() const noexcept {
    return divergences_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t IoErrors() const noexcept {
    return io_errors_.load(std::memory_order_relaxed);
  }
  // The first divergence report ("" if none). Under kReport this is the
  // deterministic, byte-identical failure artifact.
  [[nodiscard]] std::string LastDivergenceReport() const;
  // The final rollup once finalized; a live (racy-but-sane) fold before.
  [[nodiscard]] uint64_t Rollup() const;
  // Racy progress counters for thread `tid`'s memory stream (watchdog and
  // deadlock-report use; reading under the turn yields deterministic
  // values because every absorb into the stream is turn-or-causally
  // ordered before the read).
  void ThreadProgress(size_t tid, uint64_t* events, uint64_t* epochs,
                      uint64_t* chain) const;
  // Multi-line "fingerprint: …" block for DumpStateReport.
  [[nodiscard]] std::string ProgressSummary() const;

  // ---- checkpoint support --------------------------------------------------

  // Appends the live stream state — event/epoch counters, chains,
  // anchors, last-event strings, and (kRecord) the epochs recorded so
  // far — to `out`. ImportStreams restores it from `in` at `*pos`,
  // returning false on a truncated or shape-mismatched image. In kVerify
  // the expected epochs stay as loaded from the recording file; the
  // restored epoch counters simply resume indexing into them. Both are
  // quiescent-only (no concurrent absorbs).
  void ExportStreams(std::string& out) const;
  [[nodiscard]] bool ImportStreams(const std::string& in, size_t* pos);

  // ---- digest helpers (shared with benches/tests) --------------------------

  // Word-lane FNV-1a, four independent lanes on bulk input so the
  // multiplies pipeline instead of serializing on the chain. Not
  // byte-FNV-compatible, but far faster — the record-mode overhead budget
  // (≤2x on the propagation bench) is dominated by this loop.
  [[nodiscard]] static uint64_t HashBytes(const void* data, size_t len,
                                          uint64_t seed = kFnvOffset);
  [[nodiscard]] static uint64_t HashClock(const VectorClock& vc,
                                          uint64_t seed = kFnvOffset);
  [[nodiscard]] static uint64_t HashMods(const ModList& mods, uint64_t seed);

 private:
  struct Stream {
    std::atomic<uint64_t> events{0};
    std::atomic<uint64_t> epochs{0};
    std::atomic<uint64_t> chain{kFnvOffset};
    // Last absorbed event, owner-written, read only by the owner when it
    // builds a divergence report.
    uint64_t last_anchor = 0;
    std::string last_event;
    // kRecord: the epoch log this run produces.
    std::vector<FingerprintEpoch> recorded;
    // kVerify: the recording's epochs for this stream.
    std::vector<FingerprintEpoch> expected;
  };

  [[nodiscard]] bool IoFault() noexcept;
  void IoError(const std::string& what);
  void Absorb(Stream& s, uint64_t kind, uint64_t stream_id,
              uint64_t event_digest, uint64_t anchor, std::string event_desc);
  void CloseEpoch(Stream& s, uint64_t kind, uint64_t stream_id);
  void CompareEpoch(const Stream& s, uint64_t stream_id,
                    const FingerprintEpoch& got);
  [[nodiscard]] static std::string StreamName(uint64_t kind,
                                              uint64_t stream_id);
  [[nodiscard]] uint64_t FoldRollup(uint64_t region_digest) const;
  void ChargeArena(size_t bytes);
  bool WriteFile(const std::vector<FingerprintEpoch>& records);
  bool LoadFile(std::vector<FingerprintEpoch>* records);

  const FingerprintMode mode_;
  const std::string path_;
  const DivergencePolicy policy_;
  const size_t epoch_ops_;
  MetadataArena* const arena_;
  FaultInjector* const injector_;
  const std::function<void(const std::string&)> on_divergence_;
  const std::function<void(RfdetErrc, const std::string&)> on_error_;

  Stream schedule_;
  std::vector<std::unique_ptr<Stream>> memory_;  // index = tid
  FingerprintEpoch expected_final_;
  bool have_expected_final_ = false;

  std::atomic<bool> dead_{false};
  std::atomic<uint64_t> divergences_{0};
  std::atomic<uint64_t> io_errors_{0};
  mutable std::mutex report_mu_;
  std::string first_report_;

  mutable std::mutex finalize_mu_;
  bool finalized_ = false;
  uint64_t rollup_ = 0;
  // Streams charge concurrently (each under its own host thread).
  std::atomic<size_t> charged_bytes_{0};
};

}  // namespace rfdet
