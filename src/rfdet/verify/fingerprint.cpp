#include "rfdet/verify/fingerprint.h"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "rfdet/common/check.h"
#include "rfdet/common/fault_injection.h"
#include "rfdet/common/wire.h"
#include "rfdet/mem/addr.h"
#include "rfdet/simd/kernels.h"

namespace rfdet {

namespace {

// File layout: magic, epoch_ops, record count, then records as plain
// little-endian u64 sextuples in deterministic order (schedule epochs,
// memory epochs by ascending tid, final rollup) — recording the same
// execution twice yields byte-identical files.
constexpr char kMagic[8] = {'R', 'F', 'D', 'T', 'F', 'P', '0', '1'};

constexpr uint64_t kKindSchedule = 0;
constexpr uint64_t kKindMemory = 1;
constexpr uint64_t kKindFinal = 2;

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>((in)[*pos + i]))
         << (8 * i);
  }
  *pos += 8;
  *v = r;
  return true;
}

std::string Hex(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

uint64_t MixStep(uint64_t chain, uint64_t v) {
  chain ^= v + 0x9e3779b97f4a7c15ULL + (chain << 6) + (chain >> 2);
  return chain * kFnvPrime;
}

// Same stripe fold as the dispatched fnv_lanes32 kernels (exact mod 2^64,
// byte-identical), inlined for the tiny bulks — most fingerprint runs are
// tens of bytes, where the indirect call would dominate.
inline void FnvLanesInline(uint64_t lanes[4], const unsigned char* data,
                           size_t n) {
  for (size_t i = 0; i + 32 <= n; i += 32) {
    for (size_t l = 0; l < 4; ++l) {
      uint64_t w;
      std::memcpy(&w, data + i + 8 * l, 8);
      lanes[l] = (lanes[l] ^ w) * kFnvPrime;
    }
  }
}

inline void FnvLanes(uint64_t lanes[4], const unsigned char* data, size_t n) {
  if (n >= simd::kDispatchMinBytes) {
    simd::Kernels().fnv_lanes32(lanes, data, n);
  } else {
    FnvLanesInline(lanes, data, n);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Digest helpers
// ---------------------------------------------------------------------------

// Lane seeds: distinct odd constants so a block permuted across lanes
// changes the digest.
constexpr uint64_t kLaneSalt[4] = {0, 0x9e3779b97f4a7c15ULL,
                                   0xc2b2ae3d27d4eb4fULL,
                                   0x165667b19e3779f9ULL};

uint64_t ExecutionFingerprint::HashBytes(const void* data, size_t len,
                                         uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  size_t i = 0;
  if (len >= 64) {
    // The FNV chain is serial — one multiply latency per 8 bytes. Four
    // independent lanes keep the multiplier pipeline full on the bulk; the
    // dispatched kernel vectorizes the fold with exact mod-2^64 lane
    // multiplies, so every tier produces the same digest.
    uint64_t lane[4] = {seed ^ kLaneSalt[0], seed ^ kLaneSalt[1],
                        seed ^ kLaneSalt[2], seed ^ kLaneSalt[3]};
    const size_t bulk = len & ~size_t{31};
    FnvLanes(lane, p, bulk);
    i = bulk;
    h = lane[0];
    h = MixStep(h, lane[1]);
    h = MixStep(h, lane[2]);
    h = MixStep(h, lane[3]);
  }
  for (; i + 8 <= len; i += 8) {
    uint64_t word;
    std::memcpy(&word, p + i, 8);
    h = (h ^ word) * kFnvPrime;
  }
  for (; i < len; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

uint64_t ExecutionFingerprint::HashClock(const VectorClock& vc,
                                         uint64_t seed) {
  uint64_t h = (seed ^ vc.Dims()) * kFnvPrime;
  for (size_t d = 0; d < vc.Dims(); ++d) h = (h ^ vc.Get(d)) * kFnvPrime;
  return h;
}

uint64_t ExecutionFingerprint::HashMods(const ModList& mods, uint64_t seed) {
  uint64_t h = (seed ^ mods.RunCount()) * kFnvPrime;
  // Run metadata rides the serial chain; payload words stripe across four
  // lanes that persist across runs, so short fragmented runs (the common
  // shape — tens of bytes) still pipeline their multiplies. Striping is a
  // pure function of run order and length, hence deterministic.
  uint64_t lane[4] = {seed ^ kLaneSalt[0], seed ^ kLaneSalt[1],
                      seed ^ kLaneSalt[2], seed ^ kLaneSalt[3]};
  for (const ModRun& run : mods.Runs()) {
    h = (h ^ run.addr) * kFnvPrime;
    h = (h ^ run.len) * kFnvPrime;
    const auto bytes = mods.RunData(run);
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
    const size_t n = bytes.size();
    const size_t bulk = n & ~size_t{31};
    FnvLanes(lane, p, bulk);
    size_t i = bulk;
    for (; i + 8 <= n; i += 8) {
      uint64_t word;
      std::memcpy(&word, p + i, 8);
      uint64_t& ln = lane[(i >> 3) & 3];
      ln = (ln ^ word) * kFnvPrime;
    }
    for (; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  }
  h = MixStep(h, lane[0]);
  h = MixStep(h, lane[1]);
  h = MixStep(h, lane[2]);
  h = MixStep(h, lane[3]);
  return h;
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

ExecutionFingerprint::ExecutionFingerprint(const Config& config)
    : mode_(config.mode),
      path_(config.path),
      policy_(config.policy),
      epoch_ops_(config.epoch_ops == 0 ? 1 : config.epoch_ops),
      arena_(config.arena),
      injector_(config.injector),
      on_divergence_(config.on_divergence),
      on_error_(config.on_error) {
  memory_.reserve(config.max_threads);
  for (size_t t = 0; t < config.max_threads; ++t) {
    memory_.push_back(std::make_unique<Stream>());
  }
  ChargeArena(config.max_threads * sizeof(Stream) + sizeof(Stream));
  if (mode_ != FingerprintMode::kVerify) return;
  std::vector<FingerprintEpoch> records;
  if (!LoadFile(&records)) return;  // IoError already retired the subsystem
  size_t bytes = 0;
  for (const FingerprintEpoch& e : records) {
    if (e.kind == kKindSchedule) {
      schedule_.expected.push_back(e);
    } else if (e.kind == kKindMemory && e.stream < memory_.size()) {
      memory_[e.stream]->expected.push_back(e);
    } else if (e.kind == kKindFinal) {
      expected_final_ = e;
      have_expected_final_ = true;
    } else {
      IoError("fingerprint file names thread " + std::to_string(e.stream) +
              " beyond max_threads");
      return;
    }
    bytes += sizeof(FingerprintEpoch);
  }
  ChargeArena(bytes);
}

ExecutionFingerprint::~ExecutionFingerprint() {
  const size_t charged = charged_bytes_.load(std::memory_order_relaxed);
  if (arena_ != nullptr && charged > 0) arena_->Release(charged);
}

void ExecutionFingerprint::ChargeArena(size_t bytes) {
  if (arena_ != nullptr) arena_->Charge(bytes);
  charged_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Checkpoint support
// ---------------------------------------------------------------------------

void ExecutionFingerprint::ExportStreams(std::string& out) const {
  const auto put_stream = [&out](const Stream& s) {
    wire::PutU64(out, s.events.load(std::memory_order_relaxed));
    wire::PutU64(out, s.epochs.load(std::memory_order_relaxed));
    wire::PutU64(out, s.chain.load(std::memory_order_relaxed));
    wire::PutU64(out, s.last_anchor);
    wire::PutString(out, s.last_event);
    wire::PutU64(out, s.recorded.size());
    for (const FingerprintEpoch& e : s.recorded) {
      wire::PutU64(out, e.kind);
      wire::PutU64(out, e.stream);
      wire::PutU64(out, e.seq);
      wire::PutU64(out, e.digest);
      wire::PutU64(out, e.anchor);
      wire::PutU64(out, e.events);
    }
  };
  wire::PutU64(out, 1 + memory_.size());
  put_stream(schedule_);
  for (const auto& s : memory_) put_stream(*s);
}

bool ExecutionFingerprint::ImportStreams(const std::string& in, size_t* pos) {
  const auto get_stream = [&in, pos, this](Stream& s) {
    uint64_t events = 0, epochs = 0, chain = 0, anchor = 0, n = 0;
    std::string last_event;
    if (!wire::GetU64(in, pos, &events) || !wire::GetU64(in, pos, &epochs) ||
        !wire::GetU64(in, pos, &chain) || !wire::GetU64(in, pos, &anchor) ||
        !wire::GetString(in, pos, &last_event) ||
        !wire::GetU64(in, pos, &n) || n > in.size() / 48) {
      return false;
    }
    std::vector<FingerprintEpoch> recorded;
    recorded.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      FingerprintEpoch e;
      if (!wire::GetU64(in, pos, &e.kind) ||
          !wire::GetU64(in, pos, &e.stream) ||
          !wire::GetU64(in, pos, &e.seq) ||
          !wire::GetU64(in, pos, &e.digest) ||
          !wire::GetU64(in, pos, &e.anchor) ||
          !wire::GetU64(in, pos, &e.events)) {
        return false;
      }
      recorded.push_back(e);
    }
    s.events.store(events, std::memory_order_relaxed);
    s.epochs.store(epochs, std::memory_order_relaxed);
    s.chain.store(chain, std::memory_order_relaxed);
    s.last_anchor = anchor;
    s.last_event = std::move(last_event);
    s.recorded = std::move(recorded);
    ChargeArena(s.recorded.capacity() * sizeof(FingerprintEpoch));
    return true;
  };
  uint64_t nstreams = 0;
  if (!wire::GetU64(in, pos, &nstreams) || nstreams != 1 + memory_.size()) {
    return false;
  }
  if (!get_stream(schedule_)) return false;
  for (const auto& s : memory_) {
    if (!get_stream(*s)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Event absorption
// ---------------------------------------------------------------------------

void ExecutionFingerprint::Absorb(Stream& s, uint64_t kind,
                                  uint64_t stream_id, uint64_t event_digest,
                                  uint64_t anchor, std::string event_desc) {
  const uint64_t chain =
      MixStep(s.chain.load(std::memory_order_relaxed), event_digest);
  s.chain.store(chain, std::memory_order_relaxed);
  s.last_anchor = anchor;
  s.last_event = std::move(event_desc);
  const uint64_t events =
      s.events.fetch_add(1, std::memory_order_relaxed) + 1;
  if (events % epoch_ops_ == 0) CloseEpoch(s, kind, stream_id);
}

void ExecutionFingerprint::OnSyncOp(size_t tid, uint8_t op,
                                    const char* op_name, uint64_t object,
                                    uint64_t kendo_clock) {
  if (!Absorbing()) return;
  uint64_t d = (kFnvOffset ^ tid) * kFnvPrime;
  d = (d ^ op) * kFnvPrime;
  d = (d ^ object) * kFnvPrime;
  d = (d ^ kendo_clock) * kFnvPrime;
  std::string desc = "tid " + std::to_string(tid) + " " + op_name + " obj " +
                     std::to_string(object) + " kendo clock " +
                     std::to_string(kendo_clock);
  Absorb(schedule_, kKindSchedule, 0, d, kendo_clock, std::move(desc));
}

void ExecutionFingerprint::OnSliceClose(size_t tid, uint64_t seq,
                                        const VectorClock& time,
                                        const ModList& mods) {
  if (!Absorbing() || tid >= memory_.size()) return;
  OnSliceClose(tid, seq, time, mods, HashMods(mods, kFnvOffset));
}

void ExecutionFingerprint::OnSliceClose(size_t tid, uint64_t seq,
                                        const VectorClock& time,
                                        const ModList& mods,
                                        uint64_t mods_digest) {
  if (!Absorbing() || tid >= memory_.size()) return;
  uint64_t d = (kFnvOffset ^ 0x51u) * kFnvPrime;  // close tag
  d = (d ^ seq) * kFnvPrime;
  d = HashClock(time, d);
  // The mods digest is seeded with kFnvOffset, not the chain above, so it
  // is a pure function of the ModList: the off-turn prepare phase can
  // compute it before seq and the close time are known.
  d = MixStep(d, mods_digest);
  std::ostringstream desc;
  desc << "close of own slice " << seq << ", first page "
       << (mods.Empty() ? GAddr{0} : PageOf(mods.Runs().front().addr))
       << ", " << mods.ByteCount() << " bytes, vclock " << time;
  Absorb(*memory_[tid], kKindMemory, tid, d, time.Get(tid), desc.str());
}

void ExecutionFingerprint::OnApply(size_t receiver, size_t src_tid,
                                   uint64_t src_seq, const VectorClock& time,
                                   const ModList& mods) {
  if (!Absorbing() || receiver >= memory_.size()) return;
  uint64_t d = (kFnvOffset ^ 0xA9u) * kFnvPrime;  // apply tag
  d = (d ^ src_tid) * kFnvPrime;
  d = (d ^ src_seq) * kFnvPrime;
  d = HashClock(time, d);
  d = HashMods(mods, d);
  std::ostringstream desc;
  desc << "apply of slice (src tid " << src_tid << ", seq " << src_seq
       << "), first page "
       << (mods.Empty() ? GAddr{0} : PageOf(mods.Runs().front().addr))
       << ", " << mods.ByteCount() << " bytes, vclock " << time;
  Absorb(*memory_[receiver], kKindMemory, receiver, d, time.Get(src_tid),
         desc.str());
}

// ---------------------------------------------------------------------------
// Epochs and verification
// ---------------------------------------------------------------------------

std::string ExecutionFingerprint::StreamName(uint64_t kind,
                                             uint64_t stream_id) {
  if (kind == kKindSchedule) return "schedule stream";
  if (kind == kKindFinal) return "final rollup";
  return "memory stream of thread " + std::to_string(stream_id);
}

void ExecutionFingerprint::CloseEpoch(Stream& s, uint64_t kind,
                                      uint64_t stream_id) {
  FingerprintEpoch e;
  e.kind = kind;
  e.stream = stream_id;
  e.seq = s.epochs.fetch_add(1, std::memory_order_relaxed);
  e.digest = s.chain.load(std::memory_order_relaxed);
  e.anchor = s.last_anchor;
  e.events = s.events.load(std::memory_order_relaxed);
  if (mode_ == FingerprintMode::kRecord) {
    const size_t before = s.recorded.capacity();
    s.recorded.push_back(e);
    if (s.recorded.capacity() != before) {
      ChargeArena((s.recorded.capacity() - before) *
                  sizeof(FingerprintEpoch));
    }
    return;
  }
  CompareEpoch(s, stream_id, e);
}

void ExecutionFingerprint::CompareEpoch(const Stream& s, uint64_t stream_id,
                                        const FingerprintEpoch& got) {
  const std::string name = StreamName(got.kind, stream_id);
  if (got.seq >= s.expected.size()) {
    RaiseDivergence("rfdet: DIVERGENCE: " + name + " epoch " +
                    std::to_string(got.seq) +
                    ": execution produced more epochs than the recording (" +
                    std::to_string(s.expected.size()) + ")\n  last event: " +
                    s.last_event + "\n");
    return;
  }
  const FingerprintEpoch& want = s.expected[got.seq];
  if (want.digest == got.digest && want.events == got.events) return;
  std::string report = "rfdet: DIVERGENCE: " + name + " epoch " +
                       std::to_string(got.seq) + ": digest " +
                       Hex(got.digest) + " != recorded " + Hex(want.digest) +
                       "\n  events absorbed: " + std::to_string(got.events) +
                       " (recorded " + std::to_string(want.events) + ")" +
                       "\n  last event: " + s.last_event +
                       "\n  recorded anchor: " + std::to_string(want.anchor) +
                       ", this run: " + std::to_string(got.anchor) + "\n";
  RaiseDivergence(report);
}

void ExecutionFingerprint::RaiseDivergence(const std::string& report) {
  divergences_.fetch_add(1, std::memory_order_relaxed);
  bool first;
  {
    std::scoped_lock lock(report_mu_);
    first = first_report_.empty();
    if (first) first_report_ = report;
  }
  // Fail fast: the first divergence retires the subsystem, so later
  // (causally-downstream) mismatches never overwrite the root cause.
  dead_.store(true, std::memory_order_relaxed);
  if (!first) return;
  if (on_divergence_) on_divergence_(report);
  if (policy_ == DivergencePolicy::kPanic) {
    std::fputs(report.c_str(), stderr);
    std::fflush(stderr);
    RFDET_PANIC("determinism divergence detected");
  }
}

// ---------------------------------------------------------------------------
// Finalize
// ---------------------------------------------------------------------------

uint64_t ExecutionFingerprint::FoldRollup(uint64_t region_digest) const {
  uint64_t h = MixStep(kFnvOffset,
                       schedule_.chain.load(std::memory_order_relaxed));
  h = MixStep(h, schedule_.events.load(std::memory_order_relaxed));
  for (const auto& s : memory_) {
    h = MixStep(h, s->chain.load(std::memory_order_relaxed));
    h = MixStep(h, s->events.load(std::memory_order_relaxed));
  }
  return MixStep(h, region_digest);
}

uint64_t ExecutionFingerprint::Finalize(uint64_t region_digest) {
  std::scoped_lock lock(finalize_mu_);
  if (finalized_) return rollup_;
  finalized_ = true;
  if (mode_ == FingerprintMode::kOff) return 0;

  const auto close_partial = [&](Stream& s, uint64_t kind, uint64_t id) {
    if (dead_.load(std::memory_order_relaxed)) return;
    const uint64_t events = s.events.load(std::memory_order_relaxed);
    if (events > 0 && events % epoch_ops_ != 0) CloseEpoch(s, kind, id);
  };
  close_partial(schedule_, kKindSchedule, 0);
  for (size_t t = 0; t < memory_.size(); ++t) {
    close_partial(*memory_[t], kKindMemory, t);
  }

  rollup_ = FoldRollup(region_digest);
  FingerprintEpoch final_record;
  final_record.kind = kKindFinal;
  final_record.digest = rollup_;
  final_record.anchor = region_digest;
  final_record.events = Events();

  if (mode_ == FingerprintMode::kRecord) {
    if (dead_.load(std::memory_order_relaxed)) return rollup_;
    std::vector<FingerprintEpoch> records = schedule_.recorded;
    for (const auto& s : memory_) {
      records.insert(records.end(), s->recorded.begin(), s->recorded.end());
    }
    records.push_back(final_record);
    if (!path_.empty()) WriteFile(records);
    return rollup_;
  }

  // kVerify: completeness — a stream that stopped short of the recording
  // is as divergent as one that overran it.
  if (dead_.load(std::memory_order_relaxed)) return rollup_;
  const auto check_complete = [&](const Stream& s, uint64_t kind,
                                  uint64_t id) {
    if (dead_.load(std::memory_order_relaxed)) return;
    const uint64_t epochs = s.epochs.load(std::memory_order_relaxed);
    if (epochs < s.expected.size()) {
      RaiseDivergence(
          "rfdet: DIVERGENCE: " + StreamName(kind, id) +
          " ended after epoch " + std::to_string(epochs) +
          ": the recording has " + std::to_string(s.expected.size()) +
          " epochs\n  last event: " +
          (s.last_event.empty() ? "(none)" : s.last_event) + "\n");
    }
  };
  check_complete(schedule_, kKindSchedule, 0);
  for (size_t t = 0; t < memory_.size(); ++t) {
    check_complete(*memory_[t], kKindMemory, t);
  }
  if (!dead_.load(std::memory_order_relaxed) && have_expected_final_ &&
      expected_final_.digest != rollup_) {
    RaiseDivergence("rfdet: DIVERGENCE: final rollup " + Hex(rollup_) +
                    " != recorded " + Hex(expected_final_.digest) +
                    "\n  region digest: " + Hex(region_digest) +
                    ", recorded " + Hex(expected_final_.anchor) + "\n");
  }
  return rollup_;
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

bool ExecutionFingerprint::IoFault() noexcept {
  return injector_ != nullptr &&
         injector_->ShouldFail(FaultSite::kFingerprintIo);
}

void ExecutionFingerprint::IoError(const std::string& what) {
  io_errors_.fetch_add(1, std::memory_order_relaxed);
  // Fail safe, not fail stop: a broken fingerprint file must not take the
  // workload down — verification is disabled and the error reported.
  dead_.store(true, std::memory_order_relaxed);
  if (on_error_) {
    on_error_(RfdetErrc::kIo, what);
  } else {
    std::fprintf(stderr, "rfdet: fingerprint I/O error: %s\n", what.c_str());
  }
}

bool ExecutionFingerprint::WriteFile(
    const std::vector<FingerprintEpoch>& records) {
  std::string blob;
  blob.reserve(sizeof kMagic + 16 + records.size() * 48);
  blob.append(kMagic, sizeof kMagic);
  PutU64(blob, epoch_ops_);
  PutU64(blob, records.size());
  for (const FingerprintEpoch& e : records) {
    PutU64(blob, e.kind);
    PutU64(blob, e.stream);
    PutU64(blob, e.seq);
    PutU64(blob, e.digest);
    PutU64(blob, e.anchor);
    PutU64(blob, e.events);
  }
  std::FILE* f = IoFault() ? nullptr : std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    IoError("cannot write fingerprint file " + path_);
    return false;
  }
  const bool ok = std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    IoError("short write to fingerprint file " + path_);
    return false;
  }
  return true;
}

bool ExecutionFingerprint::LoadFile(std::vector<FingerprintEpoch>* records) {
  std::FILE* f = IoFault() ? nullptr : std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    IoError("cannot open fingerprint file " + path_);
    return false;
  }
  std::string blob;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) blob.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    IoError("read error on fingerprint file " + path_);
    return false;
  }
  if (blob.size() < sizeof kMagic + 16 ||
      std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0) {
    IoError("not a fingerprint file: " + path_);
    return false;
  }
  size_t pos = sizeof kMagic;
  uint64_t file_epoch_ops = 0;
  uint64_t count = 0;
  GetU64(blob, &pos, &file_epoch_ops);
  GetU64(blob, &pos, &count);
  if (file_epoch_ops != epoch_ops_) {
    IoError("fingerprint file " + path_ + " was recorded with epoch_ops=" +
            std::to_string(file_epoch_ops) + ", this run uses " +
            std::to_string(epoch_ops_));
    return false;
  }
  records->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FingerprintEpoch e;
    if (!GetU64(blob, &pos, &e.kind) || !GetU64(blob, &pos, &e.stream) ||
        !GetU64(blob, &pos, &e.seq) || !GetU64(blob, &pos, &e.digest) ||
        !GetU64(blob, &pos, &e.anchor) || !GetU64(blob, &pos, &e.events)) {
      IoError("truncated fingerprint file " + path_);
      return false;
    }
    records->push_back(e);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

uint64_t ExecutionFingerprint::Events() const noexcept {
  uint64_t n = schedule_.events.load(std::memory_order_relaxed);
  for (const auto& s : memory_) {
    n += s->events.load(std::memory_order_relaxed);
  }
  return n;
}

uint64_t ExecutionFingerprint::Epochs() const noexcept {
  uint64_t n = schedule_.epochs.load(std::memory_order_relaxed);
  for (const auto& s : memory_) {
    n += s->epochs.load(std::memory_order_relaxed);
  }
  return n;
}

std::string ExecutionFingerprint::LastDivergenceReport() const {
  std::scoped_lock lock(report_mu_);
  return first_report_;
}

uint64_t ExecutionFingerprint::Rollup() const {
  {
    std::scoped_lock lock(finalize_mu_);
    if (finalized_) return rollup_;
  }
  return FoldRollup(0);
}

void ExecutionFingerprint::ThreadProgress(size_t tid, uint64_t* events,
                                          uint64_t* epochs,
                                          uint64_t* chain) const {
  if (tid >= memory_.size()) {
    *events = *epochs = *chain = 0;
    return;
  }
  const Stream& s = *memory_[tid];
  *events = s.events.load(std::memory_order_relaxed);
  *epochs = s.epochs.load(std::memory_order_relaxed);
  *chain = s.chain.load(std::memory_order_relaxed);
}

std::string ExecutionFingerprint::ProgressSummary() const {
  std::ostringstream os;
  os << "fingerprint: mode="
     << (mode_ == FingerprintMode::kRecord
             ? "record"
             : mode_ == FingerprintMode::kVerify ? "verify" : "off")
     << ", schedule epochs "
     << schedule_.epochs.load(std::memory_order_relaxed) << " (events "
     << schedule_.events.load(std::memory_order_relaxed) << ", chain "
     << Hex(schedule_.chain.load(std::memory_order_relaxed))
     << "), divergences " << Divergences() << ", io errors " << IoErrors()
     << "\n";
  for (size_t t = 0; t < memory_.size(); ++t) {
    const Stream& s = *memory_[t];
    const uint64_t events = s.events.load(std::memory_order_relaxed);
    if (events == 0) continue;
    os << "  thread " << t << ": memory events " << events << ", epochs "
       << s.epochs.load(std::memory_order_relaxed) << ", chain "
       << Hex(s.chain.load(std::memory_order_relaxed)) << "\n";
  }
  return os.str();
}

}  // namespace rfdet
