// Umbrella header for the RFDet library's public surface.
//
// Most applications only need:
//   #include "rfdet/rfdet.h"
// and then either the backend-neutral dmt::Env (portable across all six
// runtimes) or the pthreads-shaped det_pthread_* shim.
#pragma once

#include "rfdet/api/env.h"              // dmt::Env, ArrayRef
#include "rfdet/backends/backends.h"    // dmt::CreateEnv + BackendKind
#include "rfdet/compat/det_pthread.h"   // det_pthread_* C-style surface
#include "rfdet/runtime/runtime.h"      // direct RfdetRuntime access
#include "rfdet/runtime/stats.h"        // StatsSnapshot
