#include "rfdet/race/race_detector.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include <array>

#include "rfdet/common/check.h"
#include "rfdet/common/fault_injection.h"
#include "rfdet/common/hash.h"
#include "rfdet/common/wire.h"
#include "rfdet/simd/kernels.h"

namespace rfdet {
namespace {

// One bit per page in a 64-bit Bloom filter. Fibonacci hashing spreads
// adjacent page ids across the word so dense-but-small working sets do
// not collapse onto a few bits.
[[nodiscard]] constexpr uint64_t BloomBit(PageId pid) noexcept {
  return uint64_t{1} << ((pid * 0x9E3779B97F4A7C15ull) >> 58);
}

[[nodiscard]] uint64_t PlanBloom(const ApplyPlan& plan) noexcept {
  uint64_t bloom = 0;
  for (const PlanPage& page : plan.Pages()) bloom |= BloomBit(page.pid);
  return bloom;
}

[[nodiscard]] uint64_t PageListBloom(const std::vector<PageId>& pages) noexcept {
  uint64_t bloom = 0;
  for (const PageId pid : pages) bloom |= BloomBit(pid);
  return bloom;
}

// Byte-occupancy bitmap of one page (one bit per byte) for the exact
// write-write intersection. Above kBitmapSweepPairs candidate pairs the
// O(na*nb) segment sweep is replaced by marking both slices' bytes and
// ANDing the bitmaps with the dispatched SIMD kernel; the sweep then only
// runs to identify the segment pair behind an already-proven overlap, so
// reports stay byte-identical to the plain sweep.
constexpr size_t kPageBitmapWords = kPageSize / 64;
constexpr size_t kBitmapSweepPairs = 32;

using PageBitmap = std::array<uint64_t, kPageBitmapWords>;

void MarkBytes(PageBitmap& bm, size_t first, size_t len) noexcept {
  size_t word = first >> 6;
  size_t bit = first & 63;
  while (len > 0) {
    const size_t n = std::min(len, size_t{64} - bit);
    const uint64_t ones =
        n == 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1) << bit;
    bm[word] |= ones;
    ++word;
    bit = 0;
    len -= n;
  }
}

// First byte offset written by both segment lists, or SIZE_MAX.
size_t FirstOverlapByte(std::span<const PlanSegment> segs_a,
                        std::span<const PlanSegment> segs_b, GAddr base) {
  static thread_local PageBitmap bits_a;
  static thread_local PageBitmap bits_b;
  bits_a.fill(0);
  bits_b.fill(0);
  for (const PlanSegment& s : segs_a) {
    MarkBytes(bits_a, static_cast<size_t>(s.addr - base), s.len);
  }
  for (const PlanSegment& s : segs_b) {
    MarkBytes(bits_b, static_cast<size_t>(s.addr - base), s.len);
  }
  return simd::Kernels().and_first_set(bits_a.data(), bits_b.data(),
                                       kPageBitmapWords);
}

}  // namespace

RaceDetector::RaceDetector(const Config& config)
    : policy_(config.policy),
      window_bytes_(config.window_bytes),
      max_reports_(config.max_reports),
      page_count_(config.page_count),
      arena_(config.arena),
      injector_(config.injector),
      on_race_(config.on_race),
      on_error_(config.on_error),
      digest_(kFnvOffset) {}

RaceDetector::~RaceDetector() {
  std::scoped_lock lock(mu_);
  if (arena_ != nullptr) {
    for (const Entry& e : window_) arena_->Release(e.charged);
  }
  window_.clear();
}

void RaceDetector::OnSliceClose(size_t tid, uint64_t seq, uint64_t kendo_clock,
                                const VectorClock& time, SliceRef slice,
                                std::vector<PageId> read_pages) {
  if (!Enabled()) return;

  Entry e;
  e.tid = tid;
  e.seq = seq;
  e.kendo_clock = kendo_clock;
  e.time = time;
  e.slice = std::move(slice);
  e.read_pages = std::move(read_pages);
  if (e.slice != nullptr) e.write_bloom = PlanBloom(e.slice->Plan());
  e.read_bloom = PageListBloom(e.read_pages);

  std::scoped_lock lock(mu_);
  for (const Entry& w : window_) {
    if (w.tid == e.tid) continue;  // same thread: always ordered
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (!w.time.ConcurrentWith(e.time)) continue;
    CheckPair(e, w);
  }

  if (e.slice == nullptr && e.read_pages.empty()) return;  // nothing to hold

  // The slice's payload is already arena-charged by Slice itself; the
  // window charge covers only the entry bookkeeping. The budget, by
  // contrast, counts the full retained footprint — holding the SliceRef
  // keeps the slice (and its charge) alive past GC, which is exactly
  // what race_window_bytes bounds.
  e.charged = sizeof(Entry) + e.time.MemoryBytes() +
              e.read_pages.capacity() * sizeof(PageId);
  e.budget = e.charged +
             (e.slice != nullptr ? e.slice->MemoryBytes() : size_t{0});
  const bool injected =
      injector_ != nullptr && injector_->ShouldFail(FaultSite::kRaceWindow);
  if (injected || (arena_ != nullptr && !arena_->HasRoom(e.charged))) {
    // Recoverable: the slice is still propagated and GC'd normally; the
    // detector just cannot retain it, so races against it may be missed.
    window_evictions_.fetch_add(1, std::memory_order_relaxed);
    if (on_error_) {
      on_error_(RfdetErrc::kNoMemory,
                std::string("race detector: dropped window entry (tid ") +
                    std::to_string(e.tid) + " seq " + std::to_string(e.seq) +
                    (injected ? ", injected fault)" : ", arena full)"));
    }
    return;
  }
  if (arena_ != nullptr) arena_->Charge(e.charged);
  window_used_ += e.budget;
  window_.push_back(std::move(e));
  while (window_used_ > window_bytes_ && window_.size() > 1) EvictOldest();
}

void RaceDetector::Retire(const VectorClock& frontier) {
  if (!Enabled()) return;
  std::scoped_lock lock(mu_);
  // Anything closed from now on has time ≥ frontier (the Meet of all
  // live threads' clocks), so an entry with time ≤ frontier
  // happens-before every future slice: it can never race again.
  std::erase_if(window_, [&](const Entry& e) {
    if (!e.time.LessEq(frontier)) return false;
    if (arena_ != nullptr) arena_->Release(e.charged);
    window_used_ -= e.budget;
    return true;
  });
}

void RaceDetector::EvictOldest() {
  Entry& e = window_.front();
  if (arena_ != nullptr) arena_->Release(e.charged);
  window_used_ -= e.budget;
  window_.pop_front();
  window_evictions_.fetch_add(1, std::memory_order_relaxed);
}

void RaceDetector::CheckPair(const Entry& incoming, const Entry& older) {
  // Write-write: byte-exact over the two plans.
  if (incoming.slice != nullptr && older.slice != nullptr &&
      (incoming.write_bloom & older.write_bloom) != 0) {
    prefilter_hits_.fetch_add(1, std::memory_order_relaxed);
    const ApplyPlan& pa = older.slice->Plan();
    const ApplyPlan& pb = incoming.slice->Plan();
    const auto pages_a = pa.Pages();
    const auto pages_b = pb.Pages();
    const PairKey pair{0, std::min(incoming.tid, older.tid),
                       std::max(incoming.tid, older.tid)};
    const std::vector<uint64_t>* reported = Reported(pair);
    size_t ia = 0, ib = 0;
    while (ia < pages_a.size() && ib < pages_b.size()) {
      if (pages_a[ia].pid < pages_b[ib].pid) {
        ++ia;
      } else if (pages_b[ib].pid < pages_a[ia].pid) {
        ++ib;
      } else {
        const PageId pid = pages_a[ia].pid;
        // Dedup before the exact intersection: in steady state a hot
        // racing page costs one bit test, not a segment sweep.
        if (!TestPage(reported, pid)) {
          const auto segs_a = pa.Segments(pages_a[ia]);
          const auto segs_b = pb.Segments(pages_b[ib]);
          // On fragmented pages, prove (or refute) the overlap first with
          // the SIMD bitmap intersect; disjoint same-page writes — the
          // common page-collision shape — then skip the pair sweep.
          GAddr known_lo = kNullGAddr;
          bool sweep = true;
          if (segs_a.size() * segs_b.size() >= kBitmapSweepPairs) {
            const size_t first =
                FirstOverlapByte(segs_a, segs_b, PageBase(pid));
            sweep = first != SIZE_MAX;
            if (sweep) known_lo = PageBase(pid) + first;
          }
          // First overlapping byte range on this page, by lowest start
          // address — deterministic regardless of segment counts.
          GAddr best_start = kNullGAddr;
          uint32_t best_len = 0;
          const PlanSegment* best_b = nullptr;
          const auto done = [&] {
            // A strict `<` below means the first pair reaching the
            // bitmap's first overlapping byte is final: stop both loops.
            return known_lo != kNullGAddr && best_start == known_lo;
          };
          for (const PlanSegment& sa : segs_a) {
            if (!sweep || done()) break;
            for (const PlanSegment& sb : segs_b) {
              const GAddr lo = std::max(sa.addr, sb.addr);
              const GAddr hi =
                  std::min(sa.addr + sa.len, sb.addr + sb.len);
              if (lo < hi && lo < best_start) {
                best_start = lo;
                best_len = static_cast<uint32_t>(hi - lo);
                best_b = &sb;
              }
              if (done()) break;
            }
          }
          if (best_b != nullptr) {
            const std::byte* later = incoming.slice->mods().DataAt(
                best_b->data_offset +
                static_cast<uint32_t>(best_start - best_b->addr));
            EmitWW(older, incoming, pid, best_start, best_len, later);
            reported = Reported(pair);  // Record created the bitmap
          }
        }
        ++ia;
        ++ib;
      }
    }
  }

  // Write-read, both directions. Reads are page-granular, so this only
  // needs the sorted page lists.
  const auto check_rw = [this](const Entry& writer, const Entry& reader) {
    if (writer.slice == nullptr || reader.read_pages.empty()) return;
    if ((writer.write_bloom & reader.read_bloom) == 0) return;
    prefilter_hits_.fetch_add(1, std::memory_order_relaxed);
    const auto pages = writer.slice->Plan().Pages();
    const PairKey pair{1, writer.tid, reader.tid};
    const std::vector<uint64_t>* reported = Reported(pair);
    size_t iw = 0, ir = 0;
    while (iw < pages.size() && ir < reader.read_pages.size()) {
      if (pages[iw].pid < reader.read_pages[ir]) {
        ++iw;
      } else if (reader.read_pages[ir] < pages[iw].pid) {
        ++ir;
      } else {
        if (!TestPage(reported, pages[iw].pid)) {
          EmitRW(writer, reader, pages[iw].pid);
          reported = Reported(pair);
        }
        ++iw;
        ++ir;
      }
    }
  };
  check_rw(incoming, older);
  check_rw(older, incoming);
}

namespace {

void AppendSliceLine(std::ostream& os, const char* label, size_t tid,
                     uint64_t seq, uint64_t kendo, const VectorClock& time) {
  os << "  " << label << ": tid " << tid << " seq " << seq << " kendo "
     << kendo << " vclock " << time << "\n";
}

}  // namespace

void RaceDetector::EmitWW(const Entry& a, const Entry& b, PageId pid,
                          GAddr addr, uint32_t len,
                          const std::byte* later_bytes) {
  std::ostringstream os;
  os << "rfdet: data race (write-write)\n";
  AppendSliceLine(os, "slice A", a.tid, a.seq, a.kendo_clock, a.time);
  AppendSliceLine(os, "slice B", b.tid, b.seq, b.kendo_clock, b.time);
  os << "  overlap: gaddr [0x" << std::hex << addr << ", 0x" << addr + len
     << std::dec << ") " << len << " byte(s) on page " << pid << "\n";
  os << "  later writer (slice B) bytes:";
  char buf[8];
  const uint32_t shown = std::min<uint32_t>(len, 16);
  for (uint32_t i = 0; i < shown; ++i) {
    std::snprintf(buf, sizeof buf, " %02x",
                  static_cast<unsigned>(later_bytes[i]));
    os << buf;
  }
  if (shown < len) os << " …";
  os << "\n";

  RaceReport report;
  report.kind = 0;
  report.first_tid = std::min(a.tid, b.tid);
  report.second_tid = std::max(a.tid, b.tid);
  report.page = pid;
  report.addr = addr;
  report.bytes = len;
  report.text = os.str();
  Record(0, report.first_tid, report.second_tid, pid, std::move(report));
}

void RaceDetector::EmitRW(const Entry& writer, const Entry& reader,
                          PageId pid) {
  std::ostringstream os;
  os << "rfdet: data race (write-read, page-granular, may be false "
        "positive)\n";
  AppendSliceLine(os, "writer", writer.tid, writer.seq, writer.kendo_clock,
                  writer.time);
  AppendSliceLine(os, "reader", reader.tid, reader.seq, reader.kendo_clock,
                  reader.time);
  os << "  page " << pid << ": gaddr [0x" << std::hex << PageBase(pid)
     << ", 0x" << PageBase(pid) + kPageSize << std::dec << ")\n";

  RaceReport report;
  report.kind = 1;
  report.first_tid = writer.tid;
  report.second_tid = reader.tid;
  report.page = pid;
  report.addr = PageBase(pid);
  report.bytes = static_cast<uint32_t>(kPageSize);
  report.text = os.str();
  Record(1, writer.tid, reader.tid, pid, std::move(report));
}

const std::vector<uint64_t>* RaceDetector::Reported(
    const PairKey& key) const {
  const auto it = reported_.find(key);
  return it == reported_.end() ? nullptr : &it->second;
}

bool RaceDetector::Record(uint8_t kind, size_t key_a, size_t key_b,
                          PageId page, RaceReport report) {
  std::vector<uint64_t>& bits = reported_[PairKey{kind, key_a, key_b}];
  const size_t word = static_cast<size_t>(page >> 6);
  if (bits.size() <= word) bits.resize(word + 1, 0);
  const uint64_t mask = uint64_t{1} << (page & 63);
  if ((bits[word] & mask) != 0) return false;
  bits[word] |= mask;
  const std::array<uint64_t, 4> key{kind, key_a, key_b, page};
  // The digest covers every dedup'd race in detection order — including
  // ones past max_reports — so a divergent race set always diverges the
  // fingerprint rollup.
  digest_ = Fnv1a(key.data(), sizeof(key), digest_);
  if (kind == 0) {
    races_ww_.fetch_add(1, std::memory_order_relaxed);
  } else {
    races_rw_pages_.fetch_add(1, std::memory_order_relaxed);
  }
  const bool panic = policy_ == RacePolicy::kPanic;
  if (panic) std::fputs(report.text.c_str(), stderr);
  if (reports_.size() < max_reports_) {
    reports_.push_back(std::move(report));
    if (on_race_) on_race_(reports_.back());
  } else {
    ++suppressed_;
  }
  if (panic) RFDET_PANIC("rfdet: data race detected (RacePolicy::kPanic)");
  return true;
}

uint64_t RaceDetector::Digest() const {
  std::scoped_lock lock(mu_);
  return digest_;
}

std::vector<RaceReport> RaceDetector::Reports() const {
  std::scoped_lock lock(mu_);
  return reports_;
}

std::string RaceDetector::ReportText() const {
  std::scoped_lock lock(mu_);
  std::string out;
  for (const RaceReport& r : reports_) out += r.text;
  if (suppressed_ != 0) {
    out += "rfdet: " + std::to_string(suppressed_) +
           " further race(s) suppressed (race_max_reports=" +
           std::to_string(max_reports_) + ")\n";
  }
  return out;
}

bool RaceDetector::WindowEmpty() const {
  std::scoped_lock lock(mu_);
  return window_.empty();
}

void RaceDetector::SerializeState(std::string& out) const {
  std::scoped_lock lock(mu_);
  RFDET_CHECK_MSG(window_.empty(),
                  "race-detector checkpoint requires an empty window");
  wire::PutU64(out, reported_.size());
  for (const auto& [key, bits] : reported_) {
    for (uint64_t k : key) wire::PutU64(out, k);
    wire::PutU64(out, bits.size());
    for (uint64_t w : bits) wire::PutU64(out, w);
  }
  wire::PutU64(out, reports_.size());
  for (const RaceReport& r : reports_) {
    wire::PutU64(out, r.kind);
    wire::PutU64(out, r.first_tid);
    wire::PutU64(out, r.second_tid);
    wire::PutU64(out, r.page);
    wire::PutU64(out, r.addr);
    wire::PutU64(out, r.bytes);
    wire::PutString(out, r.text);
  }
  wire::PutU64(out, digest_);
  wire::PutU64(out, suppressed_);
  wire::PutU64(out, races_ww_.load(std::memory_order_relaxed));
  wire::PutU64(out, races_rw_pages_.load(std::memory_order_relaxed));
  wire::PutU64(out, checks_.load(std::memory_order_relaxed));
  wire::PutU64(out, prefilter_hits_.load(std::memory_order_relaxed));
  wire::PutU64(out, window_evictions_.load(std::memory_order_relaxed));
}

bool RaceDetector::RestoreState(const std::string& in, size_t* pos) {
  std::scoped_lock lock(mu_);
  uint64_t npairs = 0;
  if (!wire::GetU64(in, pos, &npairs) || npairs > in.size() / 24) {
    return false;
  }
  std::map<PairKey, std::vector<uint64_t>> reported;
  for (uint64_t i = 0; i < npairs; ++i) {
    PairKey key{};
    for (uint64_t& k : key) {
      if (!wire::GetU64(in, pos, &k)) return false;
    }
    uint64_t nwords = 0;
    if (!wire::GetU64(in, pos, &nwords) || nwords > in.size() / 8) {
      return false;
    }
    std::vector<uint64_t> bits(nwords);
    for (uint64_t& w : bits) {
      if (!wire::GetU64(in, pos, &w)) return false;
    }
    reported.emplace(key, std::move(bits));
  }
  uint64_t nreports = 0;
  if (!wire::GetU64(in, pos, &nreports) || nreports > in.size() / 48) {
    return false;
  }
  std::vector<RaceReport> reports;
  reports.reserve(nreports);
  for (uint64_t i = 0; i < nreports; ++i) {
    RaceReport r;
    uint64_t kind = 0, first = 0, second = 0, addr = 0, bytes = 0;
    if (!wire::GetU64(in, pos, &kind) || !wire::GetU64(in, pos, &first) ||
        !wire::GetU64(in, pos, &second) || !wire::GetU64(in, pos, &r.page) ||
        !wire::GetU64(in, pos, &addr) || !wire::GetU64(in, pos, &bytes) ||
        !wire::GetString(in, pos, &r.text)) {
      return false;
    }
    r.kind = static_cast<uint8_t>(kind);
    r.first_tid = static_cast<size_t>(first);
    r.second_tid = static_cast<size_t>(second);
    r.addr = addr;
    r.bytes = static_cast<uint32_t>(bytes);
    reports.push_back(std::move(r));
  }
  uint64_t digest = 0, suppressed = 0;
  uint64_t ww = 0, rw = 0, checks = 0, prefilter = 0, evictions = 0;
  if (!wire::GetU64(in, pos, &digest) ||
      !wire::GetU64(in, pos, &suppressed) || !wire::GetU64(in, pos, &ww) ||
      !wire::GetU64(in, pos, &rw) || !wire::GetU64(in, pos, &checks) ||
      !wire::GetU64(in, pos, &prefilter) ||
      !wire::GetU64(in, pos, &evictions)) {
    return false;
  }
  reported_ = std::move(reported);
  reports_ = std::move(reports);
  digest_ = digest;
  suppressed_ = suppressed;
  races_ww_.store(ww, std::memory_order_relaxed);
  races_rw_pages_.store(rw, std::memory_order_relaxed);
  checks_.store(checks, std::memory_order_relaxed);
  prefilter_hits_.store(prefilter, std::memory_order_relaxed);
  window_evictions_.store(evictions, std::memory_order_relaxed);
  return true;
}

std::string RaceDetector::Summary() const {
  std::scoped_lock lock(mu_);
  std::ostringstream os;
  os << "races: policy " << RacePolicyName(policy_) << ", ww "
     << races_ww_.load(std::memory_order_relaxed) << ", rw-pages "
     << races_rw_pages_.load(std::memory_order_relaxed) << ", checks "
     << checks_.load(std::memory_order_relaxed) << ", prefilter-hits "
     << prefilter_hits_.load(std::memory_order_relaxed) << "\n";
  os << "races: window " << window_used_ << "/" << window_bytes_
     << " bytes (" << window_.size() << " entries, "
     << window_evictions_.load(std::memory_order_relaxed)
     << " evictions), reports " << reports_.size() << " (" << suppressed_
     << " suppressed)\n";
  return os.str();
}

}  // namespace rfdet
