// Deterministic online data-race detection over slices.
//
// DLRC already materializes everything a happens-before race detector
// needs: every slice is <tid, ModList, vector clock>, and the paper's
// atomic property (§4.2) guarantees every access inside a slice has the
// same happens-before relation to anything outside it. Two slices
// therefore *race* exactly when their vector clocks are incomparable
// (ConcurrentWith) and their byte ranges overlap — slice-granularity
// comparison is sound, no per-access instrumentation needed.
//
// The detector piggybacks on the close path: every slice close runs
// under the closing thread's Kendo turn, so OnSliceClose calls arrive in
// the deterministic global synchronization order. The detector keeps a
// bounded window of recently closed slices and checks each newcomer
// against the concurrent entries:
//
//   1. prefilter — 64-bit page Bloom built from the slice's ApplyPlan
//      page partition; disjoint blooms can never overlap, so the common
//      no-conflict case costs one AND.
//   2. page intersection — the plans' page lists are sorted, so a
//      two-pointer sweep yields the common pages.
//   3. exact byte intersection — per common page, segment-pair overlap
//      over the plans' single-page segments; a write-write race is
//      reported only when actual bytes intersect (disjoint writes to the
//      same page are NOT races, matching the §4.6 byte-merge semantics).
//
// Write-read races come from an opt-in page-granularity read set
// (race_track_reads): pf mode keeps pages PROT_NONE between slices and
// records the page on the first read fault; ci mode records in the Load
// path. Reads are only known per page, so write-read reports say
// "page-granular, may be false positive".
//
// Window retirement reuses the GC frontier: RunGc's bound is the Meet of
// all live threads' clocks, so any slice the runtime will ever close
// afterwards has time ≥ bound — entries with time ≤ bound can no longer
// be concurrent with anything future and are retired. GC timing is not
// deterministic, but retirement by this rule can only drop entries that
// could never produce another report, so the report set is unaffected.
// Budget evictions (window over race_window_bytes) ARE part of the
// deterministic state machine: they happen inside turn-ordered
// OnSliceClose, oldest first.
//
// Reports are deduplicated by a stable key (kind, tids, page), capped at
// race_max_reports, and folded into a detection-order digest that the
// runtime mixes into the fingerprint rollup — a kVerify run with a
// divergent race set fails verification. The full report text is a pure
// function of the deterministic execution: byte-identical across runs.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "rfdet/common/error.h"
#include "rfdet/mem/addr.h"
#include "rfdet/slice/slice.h"
#include "rfdet/time/vector_clock.h"

namespace rfdet {

class FaultInjector;

enum class RacePolicy : uint8_t {
  kOff = 0,
  kReport,  // retain deterministic reports, surface them at exit
  kPanic,   // print the first race report and panic
};

[[nodiscard]] constexpr const char* RacePolicyName(RacePolicy p) noexcept {
  switch (p) {
    case RacePolicy::kOff:
      return "off";
    case RacePolicy::kReport:
      return "report";
    case RacePolicy::kPanic:
      return "panic";
  }
  return "?";
}

// One deduplicated race. All fields are deterministic; `text` is the
// multi-line human report in the deadlock/divergence style.
struct RaceReport {
  uint8_t kind = 0;  // 0 = write-write (byte-exact), 1 = write-read (page)
  size_t first_tid = 0;   // WW: lower tid; WR: writer tid
  size_t second_tid = 0;  // WW: higher tid; WR: reader tid
  PageId page = 0;
  GAddr addr = 0;      // WW: first overlapping byte; WR: page base
  uint32_t bytes = 0;  // WW: overlapping byte count; WR: kPageSize
  std::string text;
};

class RaceDetector {
 public:
  struct Config {
    RacePolicy policy = RacePolicy::kOff;
    size_t window_bytes = 8u << 20;  // live-slice window budget
    size_t max_reports = 64;         // dedup'd reports retained
    size_t page_count = 0;           // region pages (for report context)
    MetadataArena* arena = nullptr;  // charged for window entries
    FaultInjector* injector = nullptr;  // kRaceWindow site
    // Called with each new dedup'd report (under the reporting turn).
    std::function<void(const RaceReport&)> on_race;
    // Sink for recoverable failures (arena exhaustion drops the entry).
    std::function<void(RfdetErrc, const std::string&)> on_error;
  };

  explicit RaceDetector(const Config& config);
  ~RaceDetector();

  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  [[nodiscard]] bool Enabled() const noexcept {
    return policy_ != RacePolicy::kOff;
  }
  [[nodiscard]] RacePolicy policy() const noexcept { return policy_; }

  // Thread `tid` closed a slice. Must be called under the closing
  // thread's turn (that is what makes detection order deterministic).
  // `slice` may be null when the close produced no writes but the thread
  // has tracked reads; `read_pages` is the sorted page-granularity read
  // set (empty when read tracking is off). `kendo_clock` is the closing
  // thread's deterministic logical clock, for the report.
  void OnSliceClose(size_t tid, uint64_t seq, uint64_t kendo_clock,
                    const VectorClock& time, SliceRef slice,
                    std::vector<PageId> read_pages);

  // Retires window entries with time ≤ frontier (the GC bound: nothing
  // closed from now on can be concurrent with them). Safe to call from
  // any thread; never affects the report set.
  void Retire(const VectorClock& frontier);

  // ---- introspection -------------------------------------------------------

  [[nodiscard]] uint64_t RacesWW() const noexcept {
    return races_ww_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t RacesRWPages() const noexcept {
    return races_rw_pages_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t Checks() const noexcept {
    return checks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t PrefilterHits() const noexcept {
    return prefilter_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t WindowEvictions() const noexcept {
    return window_evictions_.load(std::memory_order_relaxed);
  }

  // Detection-order digest over the dedup keys — folded into the
  // fingerprint rollup so kVerify catches a divergent race set.
  [[nodiscard]] uint64_t Digest() const;
  // Deduplicated reports in detection order (copy; watchdog-safe).
  [[nodiscard]] std::vector<RaceReport> Reports() const;
  // Full deterministic report text: every retained report concatenated,
  // plus a suppression line if max_reports was hit. "" when no races.
  [[nodiscard]] std::string ReportText() const;
  // Multi-line "races: …" block for DumpStateReport.
  [[nodiscard]] std::string Summary() const;

  // ---- checkpoint support --------------------------------------------------

  // True when the live-slice window holds no entries. Checkpoints only
  // serialize the detector at quiescent boundaries where a Retire with
  // the final frontier has emptied the window (no retained SliceRefs to
  // capture).
  [[nodiscard]] bool WindowEmpty() const;
  // Appends the report state (dedup bitmaps, retained reports, digest,
  // counters) to `out`; requires an empty window. RestoreState rebuilds
  // it from `in` at `*pos`, returning false on a truncated image.
  void SerializeState(std::string& out) const;
  [[nodiscard]] bool RestoreState(const std::string& in, size_t* pos);

 private:
  struct Entry {
    size_t tid = 0;
    uint64_t seq = 0;
    uint64_t kendo_clock = 0;
    VectorClock time;
    SliceRef slice;  // null for read-only entries
    uint64_t write_bloom = 0;
    uint64_t read_bloom = 0;
    std::vector<PageId> read_pages;  // sorted
    size_t charged = 0;              // arena charge for this entry
    size_t budget = 0;               // window-budget footprint
  };

  // Dedup key prefix: (kind, first tid, second tid). The page dimension
  // lives in a per-pair bitmap so the steady-state re-check of an
  // already-reported page is one bit test, not an ordered-set lookup —
  // the lookups dominated the close path once a pair kept racing.
  using PairKey = std::array<uint64_t, 3>;

  void CheckPair(const Entry& incoming, const Entry& older);
  void EmitWW(const Entry& a, const Entry& b, PageId pid, GAddr addr,
              uint32_t len, const std::byte* later_bytes);
  void EmitRW(const Entry& writer, const Entry& reader, PageId pid);
  // Records a dedup'd report; returns false when already seen.
  bool Record(uint8_t kind, size_t key_a, size_t key_b, PageId page,
              RaceReport report);
  void EvictOldest();
  [[nodiscard]] const std::vector<uint64_t>* Reported(
      const PairKey& key) const;
  [[nodiscard]] static bool TestPage(const std::vector<uint64_t>* bits,
                                     PageId pid) noexcept {
    if (bits == nullptr) return false;
    const size_t word = static_cast<size_t>(pid >> 6);
    return word < bits->size() && (((*bits)[word] >> (pid & 63)) & 1) != 0;
  }

  const RacePolicy policy_;
  const size_t window_bytes_;
  const size_t max_reports_;
  const size_t page_count_;
  MetadataArena* const arena_;
  FaultInjector* const injector_;
  const std::function<void(const RaceReport&)> on_race_;
  const std::function<void(RfdetErrc, const std::string&)> on_error_;

  // Guards window/report state. All mutating calls arrive turn-ordered,
  // but the watchdog and DumpStateReport read from outside the schedule.
  mutable std::mutex mu_;
  std::deque<Entry> window_;
  size_t window_used_ = 0;
  // Reported-page bitmaps, lazily grown per racing pair; bounded by
  // pairs × page_count/8 bytes and only allocated once a pair reports.
  std::map<PairKey, std::vector<uint64_t>> reported_;
  std::vector<RaceReport> reports_;
  uint64_t digest_;
  uint64_t suppressed_ = 0;

  std::atomic<uint64_t> races_ww_{0};
  std::atomic<uint64_t> races_rw_pages_{0};
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> prefilter_hits_{0};
  std::atomic<uint64_t> window_evictions_{0};
};

}  // namespace rfdet
