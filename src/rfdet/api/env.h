// dmt::Env — the backend-neutral execution API.
//
// Every workload in this repository (the SPLASH-2 / Phoenix / PARSEC
// kernels, racey, the examples) is written once against this interface and
// can then run unchanged on any of the five runtimes:
//
//   pthreads  — conventional nondeterministic threading (baseline)
//   kendo     — weak determinism: Kendo-ordered sync, shared memory
//   rfdet     — the paper's system (strong determinism, no global barriers)
//   dthreads  — DThreads-style serial-commit-at-sync baseline
//   coredet   — CoreDet/DMP-style quantum-lockstep ablation
//
// Shared memory is named by GAddr offsets; loads and stores go through the
// Env so each runtime observes the identical deterministic access stream
// (the library-level equivalent of the paper's compile-time
// instrumentation). The same Env object is used from every spawned thread;
// implementations dispatch on thread-local state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "rfdet/mem/addr.h"
#include "rfdet/runtime/stats.h"

namespace dmt {

using rfdet::GAddr;

// Backend-supplied defaults for the deterministic executor layer
// (exec/executor.h). Zero / true mean "let the executor pick": explicit
// ExecOptions at the call site win over these, which win over the
// executor's built-in auto heuristics.
struct ExecHints {
  size_t pool_threads = 0;  // 0 = executor default (1 worker)
  size_t grain = 0;         // 0 = auto (range / (8 * threads))
  bool donation = true;     // deterministic work-donation enabled
};

class Env {
 public:
  virtual ~Env() = default;

  [[nodiscard]] virtual std::string Name() const = 0;
  [[nodiscard]] virtual bool Deterministic() const = 0;

  // ---- identity ----------------------------------------------------------
  [[nodiscard]] virtual size_t Tid() const = 0;

  // ---- memory ------------------------------------------------------------
  virtual GAddr AllocStatic(size_t bytes, size_t align = 16) = 0;
  virtual GAddr Malloc(size_t bytes) = 0;
  virtual void Free(GAddr addr) = 0;
  virtual void Store(GAddr addr, const void* src, size_t len) = 0;
  virtual void Load(GAddr addr, void* dst, size_t len) = 0;
  // Deterministic-progress tick for compute-only stretches (the analogue
  // of instruction-count instrumentation in basic blocks with no shared
  // accesses). `words` ≈ amount of work done.
  virtual void Tick(uint64_t words) = 0;

  // Recoverable allocation: returns kNullGAddr instead of aborting when the
  // backend can back out of exhaustion (rfdet/kendo); other backends fall
  // back to the aborting Malloc.
  virtual GAddr TryMalloc(size_t bytes) { return Malloc(bytes); }

  // ---- threads -----------------------------------------------------------
  virtual size_t Spawn(std::function<void()> fn) = 0;
  // Recoverable spawn, errno-style: 0 on success (tid stored in *out_tid),
  // EAGAIN when thread slots are exhausted. Default delegates to the
  // aborting Spawn for backends without a recoverable path.
  virtual int TrySpawn(std::function<void()> fn, size_t* out_tid) {
    *out_tid = Spawn(std::move(fn));
    return 0;
  }
  virtual void Join(size_t tid) = 0;

  // ---- synchronization -----------------------------------------------------
  // ---- low-level atomics ---------------------------------------------------
  // 64-bit atomics on 8-byte-aligned shared locations, for ad hoc and
  // lock-free synchronization (the paper's §4.6 extension). Under the
  // strong-DMT backends these are Kendo-ordered acquire/release operations;
  // under pthreads they are plain hardware atomics.
  virtual uint64_t AtomicLoad(GAddr addr) = 0;
  virtual void AtomicStore(GAddr addr, uint64_t value) = 0;
  virtual uint64_t AtomicFetchAdd(GAddr addr, uint64_t delta) = 0;
  virtual bool AtomicCas(GAddr addr, uint64_t& expected,
                         uint64_t desired) = 0;

  virtual size_t CreateMutex() = 0;
  virtual size_t CreateCond() = 0;
  virtual size_t CreateBarrier(size_t parties) = 0;
  virtual void Lock(size_t mutex_id) = 0;
  virtual void Unlock(size_t mutex_id) = 0;
  virtual void Wait(size_t cond_id, size_t mutex_id) = 0;
  virtual void Signal(size_t cond_id) = 0;
  virtual void Broadcast(size_t cond_id) = 0;
  virtual void Barrier(size_t barrier_id) = 0;

  // ---- deterministic executor hooks ----------------------------------------
  // Defaults for exec::Executor when the caller leaves knobs unset. The
  // rfdet runtimes surface their RfdetOptions exec_* knobs (including the
  // RFDET_EXEC_GRAIN env override) here; other backends return zeros.
  [[nodiscard]] virtual ExecHints ExecDefaults() const { return {}; }
  // Executor statistics event (no-op on runtimes without exec counters).
  virtual void NoteExec(rfdet::ExecEvent event, uint64_t n) {
    (void)event;
    (void)n;
  }

  // ---- introspection -------------------------------------------------------
  [[nodiscard]] virtual rfdet::StatsSnapshot Stats() const { return {}; }
  // Approximate memory footprint of the run (Table 1 columns 10-12).
  [[nodiscard]] virtual size_t FootprintBytes() const { return 0; }

  // ---- determinism self-verification ---------------------------------------
  // Completes execution fingerprinting (writes the recording / performs the
  // final verify checks) and returns the rollup digest. Call from the main
  // thread after the workload finishes, before destroying the Env. 0 for
  // backends without fingerprinting (or with it off).
  virtual uint64_t FinalizeFingerprint() { return 0; }
  // First divergence report of a verify run ("" if none / unsupported).
  [[nodiscard]] virtual std::string LastDivergenceReport() const {
    return "";
  }

  // ---- data-race detection --------------------------------------------------
  // The run's deterministic race report text so far ("" if no races, race
  // detection off, or unsupported by the backend). Byte-identical across
  // runs of the same program under RacePolicy::kReport.
  [[nodiscard]] virtual std::string RaceReportText() const { return ""; }

  // ---- checkpoint / restore -------------------------------------------------
  // Writes a crash-consistent checkpoint of the deterministic state to the
  // configured checkpoint path (a turn-ordered schedule transition — record
  // and replay runs must call it at the same program point). Main thread
  // only. False when unsupported, unconfigured, or the write failed.
  virtual bool Checkpoint() { return false; }
  // True when this Env resumed from a checkpoint image instead of starting
  // fresh (workloads use this to skip already-completed setup phases).
  [[nodiscard]] virtual bool Restored() const { return false; }

  // ---- typed convenience ---------------------------------------------------
  template <typename T>
  [[nodiscard]] T Get(GAddr addr) {
    T v;
    Load(addr, &v, sizeof v);
    return v;
  }
  template <typename T>
  void Put(GAddr addr, const T& v) {
    Store(addr, &v, sizeof v);
  }
};

// A typed view of a contiguous shared array starting at `base`.
template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;
  ArrayRef(GAddr base, size_t size) : base_(base), size_(size) {}

  [[nodiscard]] GAddr addr(size_t i) const {
    return base_ + i * sizeof(T);
  }
  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] GAddr base() const { return base_; }

  [[nodiscard]] T Get(Env& env, size_t i) const {
    return env.Get<T>(addr(i));
  }
  void Put(Env& env, size_t i, const T& v) const { env.Put<T>(addr(i), v); }

  // Bulk transfer of [first, first+count).
  void Read(Env& env, size_t first, T* dst, size_t count) const {
    env.Load(addr(first), dst, count * sizeof(T));
  }
  void Write(Env& env, size_t first, const T* src, size_t count) const {
    env.Store(addr(first), src, count * sizeof(T));
  }

 private:
  GAddr base_ = rfdet::kNullGAddr;
  size_t size_ = 0;
};

// Allocates a static shared array sized for `count` elements.
template <typename T>
ArrayRef<T> MakeStaticArray(Env& env, size_t count) {
  return ArrayRef<T>(env.AllocStatic(count * sizeof(T), alignof(T) > 16
                                                            ? alignof(T)
                                                            : 16),
                     count);
}

}  // namespace dmt
