// Process-level crash isolation for the deterministic runtime.
//
// The paper's pitch is that any failure is reproducible — but a runtime
// still dies with the process hosting it. The Supervisor closes that loop:
// it fork(2)s the workload (a user callback receiving amended RfdetOptions)
// into a child process, monitors the child over a pipe heartbeat plus
// waitpid(2), and on *any* failure — fatal signal (SIGSEGV/SIGBUS/SIGABRT),
// deadlock or watchdog panic, replay divergence, nonzero exit — restarts it
// from the newest valid checkpoint image plus the durable replay-log tail.
// Determinism is what makes this safe: execution resumed from a checkpoint
// is a pure function of the image, so the supervised run's final §11
// fingerprint rollup is bit-identical to an uninterrupted one (gated in
// bench/chaos_soak).
//
// Robustness policy lives here, not in the child:
//   * capped-exponential restart backoff (common/backoff.h RestartBackoff);
//   * a max_restarts budget bounding total respawns;
//   * crash-loop quarantine: K consecutive deaths that resumed at the same
//     kendo clock mean the failure is *inside* the deterministic execution
//     ("poison turn") and a restart will reproduce it forever — stop
//     retrying and emit a byte-identical post-mortem bundle (resume point,
//     checkpoint slot, durable log offset, crash disposition, image ring
//     state) instead of looping;
//   * heartbeat watchdog: with heartbeat_timeout_ms set, a child that stops
//     writing (hung outside the runtime's own watchdog reach) is SIGKILLed
//     and restarted.
//
// Supervision state machine (DESIGN.md §16):
//
//   [pick resume point] → fork → (Ready) → run → exit 0 → kCompleted
//        ^                         | crash/timeout
//        |                         v
//        +── backoff ──── restarts < max_restarts? ── no ──→ kRestartBudget
//                          | yes
//                          v
//            K-th death at same resume clock? ── yes ──→ kQuarantined
//
// IPC failures (pipe write/read errors, injected FaultSite::kSupervisorIpc
// faults) degrade supervision to waitpid-only — they never kill a healthy
// child and never crash the supervisor.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rfdet/runtime/options.h"
#include "rfdet/runtime/stats.h"

namespace rfdet {

class RfdetRuntime;

struct SupervisorConfig {
  // Base options for the child runtime. The supervisor amends the
  // checkpoint/replay knobs below before handing them to the body; all
  // other fields (geometry, fingerprinting, fault injector, …) pass
  // through untouched.
  RfdetOptions runtime;

  // Checkpoint image ring base (required) and its policy.
  std::string checkpoint_path;
  uint64_t checkpoint_interval_turns = 32;
  size_t checkpoint_retain = 2;
  // Durable replay log recorded by the child ("" disables recording: the
  // child then resumes from the image alone, which is still bit-identical
  // — the log only serves post-hoc replay).
  std::string replay_log_path;

  // Restart policy.
  uint32_t max_restarts = 16;     // respawn budget (attempts = restarts + 1)
  uint32_t quarantine_after = 3;  // K consecutive deaths at one resume clock
  uint32_t backoff_min_ms = 1;    // RestartBackoff floor …
  uint32_t backoff_max_ms = 64;   // … and cap

  // Heartbeat: the child writes a beat every interval; a parent poll(2)
  // that sees nothing for timeout ms SIGKILLs the child and restarts it.
  // timeout 0 disables the watchdog (waitpid-only supervision);
  // interval 0 disables the child-side beat thread.
  uint32_t heartbeat_interval_ms = 20;
  uint32_t heartbeat_timeout_ms = 0;

  // Where the quarantine post-mortem bundle is written ("" = keep it only
  // in SupervisionResult::post_mortem).
  std::string post_mortem_path;

  // FaultSite::kSupervisorIpc injection: each child-side Send (heartbeat /
  // Ready / Done) consults this injector and an injected hit loses the
  // message on the wire — the lossy-channel simulation. The parent never
  // trusts the channel for liveness (waitpid is authoritative), so lost
  // messages degrade observability, not supervision. The child runtime's
  // own injector is runtime.fault_injector as usual.
  FaultInjector* injector = nullptr;

  // Structured supervision event tap (also collected in the result).
  std::function<void(const std::string&)> on_event;
};

// First violated invariant ("" when valid) — same contract as
// ValidateOptions.
[[nodiscard]] std::string ValidateSupervisorConfig(
    const SupervisorConfig& config);

enum class SupervisionOutcome : uint8_t {
  kCompleted = 0,   // child finished with exit code 0
  kQuarantined,     // poison turn: stopped retrying, post-mortem emitted
  kRestartBudget,   // max_restarts exhausted
  kFailed,          // unsupervisable (invalid config, fork/pipe failure)
};

[[nodiscard]] constexpr const char* SupervisionOutcomeName(
    SupervisionOutcome o) noexcept {
  switch (o) {
    case SupervisionOutcome::kCompleted:
      return "completed";
    case SupervisionOutcome::kQuarantined:
      return "quarantined";
    case SupervisionOutcome::kRestartBudget:
      return "restart-budget-exhausted";
    case SupervisionOutcome::kFailed:
      return "failed";
  }
  return "?";
}

struct SupervisionResult {
  SupervisionOutcome outcome = SupervisionOutcome::kFailed;
  uint32_t attempts = 0;         // child processes spawned
  uint32_t restarts = 0;         // respawns after a failure
  uint32_t crashes = 0;          // child deaths (signal / nonzero exit)
  uint32_t watchdog_kills = 0;   // heartbeat timeouts → SIGKILL
  uint32_t quarantines = 0;      // 0 or 1
  uint32_t ipc_errors = 0;       // pipe faults (supervision degraded)
  uint32_t resume_mismatches = 0;  // child Ready disagreed with the peek
  uint64_t resume_samples = 0;   // Ready messages timed
  uint64_t resume_ns_total = 0;  // Σ fork→Ready wall time
  uint64_t resume_ns_max = 0;
  bool rollup_valid = false;     // Done message received
  uint64_t rollup = 0;           // final fingerprint rollup from the child
  uint64_t divergences = 0;      // replay+fingerprint divergences reported
  int last_status = 0;           // raw waitpid status of the last child
  std::string post_mortem;       // byte-identical bundle ("" unless quarantined)
  std::vector<std::string> events;

  // The supervision counters in StatsSnapshot form (sup_restarts,
  // sup_crashes, sup_quarantines, sup_resume_ns; everything else zero —
  // the supervisor has no runtime of its own).
  [[nodiscard]] StatsSnapshot SupStats() const noexcept {
    StatsSnapshot s;
    s.sup_restarts = restarts;
    s.sup_crashes = crashes;
    s.sup_quarantines = quarantines;
    s.sup_resume_ns = resume_ns_total;
    return s;
  }
};

// Child-side handle the workload body uses to talk to its supervisor.
class SupervisedChild {
 public:
  // 0 on the first run, incremented per restart. Lets chaos harnesses
  // crash only the first attempt.
  [[nodiscard]] uint32_t attempt() const noexcept { return attempt_; }
  // True when the supervisor launched this attempt from a checkpoint.
  [[nodiscard]] bool resumed() const noexcept { return resumed_; }

  // Call once the runtime is constructed: reports the restore point the
  // child actually landed on (the supervisor cross-checks it against the
  // image it picked and times fork→Ready as sup_resume_ns).
  void Ready(const RfdetRuntime& rt);
  // Call after FinalizeFingerprint: hands the supervisor the final rollup
  // (the §11 bit-identity instrument) and the run's divergence count.
  void Finish(uint64_t rollup, uint64_t divergences = 0);

 private:
  friend class Supervisor;
  SupervisedChild(int fd, uint32_t attempt, bool resumed,
                  FaultInjector* injector, uint32_t heartbeat_interval_ms);
  ~SupervisedChild();
  void StartHeartbeat();
  void StopHeartbeat();
  void Send(const std::string& msg) noexcept;

  int fd_;
  uint32_t attempt_;
  bool resumed_;
  FaultInjector* injector_;
  uint32_t heartbeat_interval_ms_;
  struct HeartbeatState;
  HeartbeatState* hb_ = nullptr;
};

class Supervisor {
 public:
  // The workload. Runs in the child process; receives the amended options
  // (checkpoint ring + interval, kRecord replay, restore path when a valid
  // image exists) and the child handle. Its return value is the child's
  // exit code — return nonzero on any failure the supervisor should treat
  // as a crash (e.g. a detected divergence).
  using Body = std::function<int(const RfdetOptions&, SupervisedChild&)>;

  explicit Supervisor(SupervisorConfig config);

  // Runs `body` under supervision until it completes, quarantines, or
  // exhausts the restart budget. Prints a one-line exit summary to stderr.
  SupervisionResult Run(const Body& body);

 private:
  struct Launch {
    bool has_image = false;
    uint64_t seq = 0;
    uint64_t clock = 0;       // kendo clock the child will resume at (0=fresh)
    uint64_t log_offset = 0;  // durable replay-log offset tied to the image
    std::string slot;         // ring slot path of the chosen image
  };

  Launch PickResume() const;
  [[noreturn]] void RunChild(int fd, const Launch& launch, uint32_t attempt,
                             const Body& body);
  void Event(SupervisionResult& res, const std::string& what) const;
  std::string RingStateText() const;

  SupervisorConfig config_;
};

}  // namespace rfdet
