#include "rfdet/supervise/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "rfdet/common/backoff.h"
#include "rfdet/common/fault_injection.h"
#include "rfdet/common/wire.h"
#include "rfdet/replay/checkpoint.h"
#include "rfdet/runtime/runtime.h"

namespace rfdet {

namespace {

// Pipe protocol, child → parent. One type byte, then fixed little-endian
// u64 fields (common/wire.h). The stream is append-only and self-framing;
// anything else is a garbled channel and degrades supervision to
// waitpid-only.
constexpr uint8_t kMsgHeartbeat = 1;            // 1 byte
constexpr uint8_t kMsgReady = 2;                // + restored, seq, clock
constexpr uint8_t kMsgDone = 3;                 // + rollup, divergences
constexpr size_t kReadyBytes = 1 + 3 * 8;
constexpr size_t kDoneBytes = 1 + 2 * 8;

uint64_t U64At(const std::string& buf, size_t at) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(buf[at + static_cast<size_t>(i)]);
  }
  return v;
}

std::string SignalText(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGABRT: return "SIGABRT";
    case SIGKILL: return "SIGKILL";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGTERM: return "SIGTERM";
    default: return "signal " + std::to_string(sig);
  }
}

// Deterministic text for how a child died — feeds events and the
// byte-identical post-mortem, so no pids, addresses, or timestamps.
std::string DispositionText(int status, bool watchdog_kill) {
  if (watchdog_kill) {
    return "watchdog SIGKILL (heartbeat timeout)";
  }
  if (WIFSIGNALED(status)) {
    return "fatal " + SignalText(WTERMSIG(status));
  }
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == kRegionBackingLostExit) {
      return "exit code 104 (region backing lost)";
    }
    return "exit code " + std::to_string(code);
  }
  return "unknown status";
}

std::string Hex64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string ValidateSupervisorConfig(const SupervisorConfig& config) {
  if (config.checkpoint_path.empty()) {
    return "checkpoint_path must be set (the supervisor restarts from the "
           "image ring)";
  }
  if (config.checkpoint_retain == 0) {
    return "checkpoint_retain must be >= 1 (the ring needs at least one "
           "image slot)";
  }
  if (config.quarantine_after == 0) {
    return "quarantine_after must be >= 1 (0 would quarantine before the "
           "first crash)";
  }
  if (!config.runtime.isolation) {
    return "supervision requires isolation (the checkpoint image is the "
           "main view's region)";
  }
  if (config.heartbeat_timeout_ms > 0 && config.heartbeat_interval_ms == 0) {
    return "heartbeat_timeout_ms requires heartbeat_interval_ms > 0 (a "
           "silent child would always be killed)";
  }
  if (config.heartbeat_timeout_ms > 0 &&
      config.heartbeat_timeout_ms <= config.heartbeat_interval_ms) {
    return "heartbeat_timeout_ms must exceed heartbeat_interval_ms (the "
           "watchdog would race every beat)";
  }
  return "";
}

// ---- SupervisedChild -------------------------------------------------------

struct SupervisedChild::HeartbeatState {
  std::mutex m;
  std::condition_variable cv;
  bool stop = false;
  std::thread th;
};

SupervisedChild::SupervisedChild(int fd, uint32_t attempt, bool resumed,
                                 FaultInjector* injector,
                                 uint32_t heartbeat_interval_ms)
    : fd_(fd),
      attempt_(attempt),
      resumed_(resumed),
      injector_(injector),
      heartbeat_interval_ms_(heartbeat_interval_ms) {}

SupervisedChild::~SupervisedChild() { StopHeartbeat(); }

void SupervisedChild::Send(const std::string& msg) noexcept {
  if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kSupervisorIpc)) {
    return;  // injected IPC fault: the message is lost on the wire
  }
  size_t off = 0;
  while (off < msg.size()) {
    const ssize_t n = ::write(fd_, msg.data() + off, msg.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // parent gone or channel degraded; supervision is advisory
    }
    off += static_cast<size_t>(n);
  }
}

void SupervisedChild::StartHeartbeat() {
  if (heartbeat_interval_ms_ == 0 || hb_ != nullptr) return;
  hb_ = new HeartbeatState();
  hb_->th = std::thread([this] {
    std::unique_lock<std::mutex> lk(hb_->m);
    for (;;) {
      hb_->cv.wait_for(lk, std::chrono::milliseconds(heartbeat_interval_ms_),
                       [this] { return hb_->stop; });
      if (hb_->stop) return;
      lk.unlock();
      Send(std::string(1, static_cast<char>(kMsgHeartbeat)));
      lk.lock();
    }
  });
}

void SupervisedChild::StopHeartbeat() {
  if (hb_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lk(hb_->m);
    hb_->stop = true;
  }
  hb_->cv.notify_all();
  hb_->th.join();
  delete hb_;
  hb_ = nullptr;
}

void SupervisedChild::Ready(const RfdetRuntime& rt) {
  std::string msg(1, static_cast<char>(kMsgReady));
  wire::PutU64(msg, rt.Restored() ? 1 : 0);
  wire::PutU64(msg, rt.RestoredCheckpointSeq());
  wire::PutU64(msg, rt.RestoredClock());
  Send(msg);
}

void SupervisedChild::Finish(uint64_t rollup, uint64_t divergences) {
  std::string msg(1, static_cast<char>(kMsgDone));
  wire::PutU64(msg, rollup);
  wire::PutU64(msg, divergences);
  Send(msg);
}

// ---- Supervisor ------------------------------------------------------------

Supervisor::Supervisor(SupervisorConfig config) : config_(std::move(config)) {}

void Supervisor::Event(SupervisionResult& res, const std::string& what) const {
  res.events.push_back(what);
  if (config_.on_event) config_.on_event(what);
}

Supervisor::Launch Supervisor::PickResume() const {
  Launch launch;
  for (const std::string& path :
       CheckpointRingPaths(config_.checkpoint_path, config_.checkpoint_retain)) {
    CheckpointPeek peek;
    if (!PeekCheckpoint(path, &peek)) continue;
    if (!launch.has_image || peek.seq > launch.seq) {
      launch.has_image = true;
      launch.seq = peek.seq;
      launch.clock = peek.resume_clock;
      launch.log_offset = peek.log_offset;
      launch.slot = path;
    }
  }
  return launch;
}

std::string Supervisor::RingStateText() const {
  std::string out;
  for (const std::string& path :
       CheckpointRingPaths(config_.checkpoint_path, config_.checkpoint_retain)) {
    CheckpointPeek peek;
    out += "  " + path + ": ";
    if (PeekCheckpoint(path, &peek)) {
      out += "seq " + std::to_string(peek.seq) + ", resume clock " +
             std::to_string(peek.resume_clock) + ", log offset " +
             std::to_string(peek.log_offset) + "\n";
    } else {
      out += "no valid image\n";
    }
  }
  return out;
}

void Supervisor::RunChild(int fd, const Launch& launch, uint32_t attempt,
                          const Body& body) {
  // A dead parent must not kill the child mid-write; Send handles EPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  RfdetOptions opts = config_.runtime;
  opts.checkpoint_path = config_.checkpoint_path;
  opts.checkpoint_interval_turns = config_.checkpoint_interval_turns;
  opts.checkpoint_retain = config_.checkpoint_retain;
  if (!config_.replay_log_path.empty()) {
    opts.replay_mode = ReplayMode::kRecord;
    opts.replay_log_path = config_.replay_log_path;
  }
  // Point the runtime at the ring base only when the parent saw a valid
  // image: RestoreLatestValid re-scans the ring itself (so a newest image
  // that fails deep validation still falls back to an older slot), and an
  // empty path avoids a spurious "starting fresh" error on first launch.
  opts.restore_checkpoint_path =
      launch.has_image ? config_.checkpoint_path : std::string();

  SupervisedChild child(fd, attempt, launch.has_image, config_.injector,
                        config_.heartbeat_interval_ms);
  child.StartHeartbeat();
  int code = 1;
  try {
    code = body(opts, child);
  } catch (...) {
    code = 1;
  }
  child.StopHeartbeat();
  // _Exit: the child is a fork of an arbitrary host process (test binary,
  // bench); running its atexit handlers here would be wrong twice over.
  std::_Exit(code & 0xff);
}

SupervisionResult Supervisor::Run(const Body& body) {
  using Clock = std::chrono::steady_clock;
  SupervisionResult res;

  const std::string invalid = ValidateSupervisorConfig(config_);
  if (!invalid.empty()) {
    Event(res, "config rejected: " + invalid);
    res.outcome = SupervisionOutcome::kFailed;
    return res;
  }

  RestartBackoff backoff(config_.backoff_min_ms, config_.backoff_max_ms);
  uint32_t consecutive = 0;       // deaths in a row at poison_clock
  uint64_t poison_clock = 0;
  bool have_poison = false;
  std::string last_disposition;

  for (;;) {
    const Launch launch = PickResume();
    int fds[2];
    if (::pipe2(fds, O_CLOEXEC) != 0) {
      Event(res, "pipe2 failed: " + std::string(std::strerror(errno)));
      res.outcome = SupervisionOutcome::kFailed;
      break;
    }
    const Clock::time_point t0 = Clock::now();
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      Event(res, "fork failed: " + std::string(std::strerror(errno)));
      res.outcome = SupervisionOutcome::kFailed;
      break;
    }
    if (pid == 0) {
      ::close(fds[0]);
      RunChild(fds[1], launch, res.attempts, body);
    }
    ::close(fds[1]);
    ++res.attempts;
    Event(res, "attempt " + std::to_string(res.attempts - 1) + ": " +
                   (launch.has_image
                        ? "resume from checkpoint seq " +
                              std::to_string(launch.seq) + " (clock " +
                              std::to_string(launch.clock) + ", " +
                              launch.slot + ")"
                        : "fresh start"));

    // ---- monitor: pipe messages + heartbeat watchdog ----------------------
    bool watchdog_fired = false;
    bool done_seen = false;
    std::string buf;
    size_t pos = 0;
    const int rfd = fds[0];
    bool channel_open = true;
    while (channel_open) {
      struct pollfd pfd;
      pfd.fd = rfd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int timeout_ms = config_.heartbeat_timeout_ms > 0
                                 ? static_cast<int>(config_.heartbeat_timeout_ms)
                                 : -1;
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        ++res.ipc_errors;
        Event(res, "ipc: poll failed (" + std::string(std::strerror(errno)) +
                       "); supervision degrades to waitpid-only");
        break;
      }
      if (pr == 0) {
        watchdog_fired = true;
        ++res.watchdog_kills;
        ::kill(pid, SIGKILL);
        Event(res, "watchdog: no heartbeat for " +
                       std::to_string(config_.heartbeat_timeout_ms) +
                       " ms; SIGKILL");
        break;
      }
      char tmp[256];
      const ssize_t n = ::read(rfd, tmp, sizeof tmp);
      if (n < 0) {
        if (errno == EINTR) continue;
        ++res.ipc_errors;
        Event(res, "ipc: read failed (" + std::string(std::strerror(errno)) +
                       "); supervision degrades to waitpid-only");
        break;
      }
      if (n == 0) break;  // EOF: child exited (or closed its end)
      buf.append(tmp, static_cast<size_t>(n));
      while (pos < buf.size()) {
        const uint8_t type = static_cast<uint8_t>(buf[pos]);
        if (type == kMsgHeartbeat) {
          ++pos;
          continue;
        }
        if (type == kMsgReady) {
          if (buf.size() - pos < kReadyBytes) break;
          const uint64_t child_restored = U64At(buf, pos + 1);
          const uint64_t child_seq = U64At(buf, pos + 9);
          const uint64_t child_clock = U64At(buf, pos + 17);
          pos += kReadyBytes;
          const uint64_t ns = static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - t0)
                  .count());
          ++res.resume_samples;
          res.resume_ns_total += ns;
          if (ns > res.resume_ns_max) res.resume_ns_max = ns;
          const bool match = (child_restored != 0) == launch.has_image &&
                             child_seq == launch.seq &&
                             child_clock == launch.clock;
          if (!match) {
            ++res.resume_mismatches;
            Event(res, "resume verification mismatch: expected seq " +
                           std::to_string(launch.seq) + " clock " +
                           std::to_string(launch.clock) + ", child reports " +
                           (child_restored != 0
                                ? "seq " + std::to_string(child_seq) +
                                      " clock " + std::to_string(child_clock)
                                : std::string("fresh start")));
          } else {
            Event(res, "ready: " +
                           (launch.has_image
                                ? "resumed at clock " +
                                      std::to_string(child_clock) +
                                      " (verified against image seq " +
                                      std::to_string(child_seq) + ")"
                                : std::string("fresh run started")));
          }
          continue;
        }
        if (type == kMsgDone) {
          if (buf.size() - pos < kDoneBytes) break;
          res.rollup = U64At(buf, pos + 1);
          res.divergences = U64At(buf, pos + 9);
          res.rollup_valid = true;
          done_seen = true;
          pos += kDoneBytes;
          continue;
        }
        ++res.ipc_errors;
        Event(res, "ipc: garbled message type " + std::to_string(type) +
                       "; supervision degrades to waitpid-only");
        channel_open = false;
        break;
      }
      if (pos > 4096) {
        buf.erase(0, pos);
        pos = 0;
      }
    }
    ::close(rfd);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    res.last_status = status;

    const bool clean =
        !watchdog_fired && WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (clean) {
      res.outcome = SupervisionOutcome::kCompleted;
      Event(res, done_seen ? "child completed; rollup " + Hex64(res.rollup)
                           : "child completed (no Done message; rollup "
                             "unavailable)");
      break;
    }

    // ---- failure: classify, account toward quarantine, maybe restart ------
    ++res.crashes;
    last_disposition = DispositionText(status, watchdog_fired);
    Event(res, "child died: " + last_disposition + " (was resuming at clock " +
                   std::to_string(launch.clock) + ")");

    if (have_poison && launch.clock == poison_clock) {
      ++consecutive;
    } else {
      // The resume point advanced: previous restarts made progress, so the
      // failure is not (yet) a reproducible poison turn.
      consecutive = 1;
      poison_clock = launch.clock;
      have_poison = true;
      backoff.Reset();
    }
    if (consecutive >= config_.quarantine_after) {
      res.quarantines = 1;
      res.outcome = SupervisionOutcome::kQuarantined;
      std::string pm;
      pm += "rfdet supervisor post-mortem\n";
      pm += "reason: poison turn: " + std::to_string(consecutive) +
            " consecutive deaths resuming at kendo clock " +
            std::to_string(poison_clock) + "\n";
      pm += "resume point: ";
      pm += launch.has_image
                ? "checkpoint seq " + std::to_string(launch.seq) + " (" +
                      launch.slot + ")"
                : std::string("fresh start (no valid image)");
      pm += "\n";
      pm += "replay log: ";
      pm += config_.replay_log_path.empty()
                ? std::string("disabled")
                : config_.replay_log_path + " (durable offset " +
                      std::to_string(launch.log_offset) + ")";
      pm += "\n";
      pm += "crash: " + last_disposition + "\n";
      pm += "image ring:\n" + RingStateText();
      res.post_mortem = pm;
      if (!config_.post_mortem_path.empty()) {
        if (FILE* f = std::fopen(config_.post_mortem_path.c_str(), "w")) {
          std::fwrite(pm.data(), 1, pm.size(), f);
          std::fclose(f);
        }
      }
      Event(res, "quarantined: poison turn at clock " +
                     std::to_string(poison_clock) + " after " +
                     std::to_string(consecutive) + " consecutive deaths");
      break;
    }

    if (res.restarts >= config_.max_restarts) {
      res.outcome = SupervisionOutcome::kRestartBudget;
      Event(res, "restart budget exhausted (" +
                     std::to_string(config_.max_restarts) + ")");
      break;
    }
    ++res.restarts;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff.NextMs()));
  }

  const std::string rollup_note =
      res.rollup_valid ? "; rollup " + Hex64(res.rollup) : std::string();
  std::fprintf(
      stderr,
      "rfdet: supervisor %s: attempts=%u restarts=%u crashes=%u watchdog=%u "
      "quarantines=%u ipc-errors=%u mismatches=%u resume-avg=%.2f ms%s\n",
      SupervisionOutcomeName(res.outcome), res.attempts, res.restarts,
      res.crashes, res.watchdog_kills, res.quarantines, res.ipc_errors,
      res.resume_mismatches,
      res.resume_samples == 0
          ? 0.0
          : static_cast<double>(res.resume_ns_total / res.resume_samples) / 1e6,
      rollup_note.c_str());
  return res;
}

}  // namespace rfdet
