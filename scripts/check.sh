#!/usr/bin/env bash
# Tier-1 gate plus an ASan pass over the failure-containment suites.
#
#   scripts/check.sh            # plain build + full ctest
#   scripts/check.sh --asan     # additionally build with RFDET_SANITIZE=address
#                               # and rerun the robustness tests under it
#   scripts/check.sh --tsan     # same with thread sanitizer
#   scripts/check.sh --bench    # additionally Release-build and run the
#                               # propagation-path bench (scripts/bench.sh),
#                               # refreshing bench/artifacts/BENCH_propagation.json
#   scripts/check.sh --detcheck # additionally run the determinism
#                               # self-check: record a racey execution
#                               # fingerprint, verify 4 more runs against it
#   scripts/check.sh --races    # additionally run the online race
#                               # detector: racey must report a nonempty,
#                               # byte-identical race set across 5 runs;
#                               # locked workloads must stay silent
#   scripts/check.sh --chaos    # additionally run the full seeded chaos
#                               # soak: 20 rounds of supervised crash-kill
#                               # + fault-injection, gating bit-identical
#                               # rollups and bounded recovery time
#
# Sanitized builds go to build-asan/ / build-tsan/ (and the bench build to
# build-bench/) so they never disturb the primary build/ tree.
set -euo pipefail
cd "$(dirname "$0")/.."

# Validate arguments before the (long) tier-1 pass runs.
sanitizers=()
run_bench=0
run_detcheck=0
run_races=0
run_chaos=0
for arg in "$@"; do
  case "$arg" in
    --asan) sanitizers+=(address) ;;
    --tsan) sanitizers+=(thread) ;;
    --bench) run_bench=1 ;;
    --detcheck) run_detcheck=1 ;;
    --races) run_races=1 ;;
    --chaos) run_chaos=1 ;;
    *)
      echo "usage: scripts/check.sh [--asan] [--tsan] [--bench] [--detcheck] [--races] [--chaos]" >&2
      exit 2
      ;;
  esac
done

# Tier-1: the configuration CI pins.
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

for san in ${sanitizers[@]+"${sanitizers[@]}"}; do
  dir="build-${san/address/asan}"
  dir="${dir/build-thread/build-tsan}"
  cmake -B "$dir" -S . "-DRFDET_SANITIZE=${san}"
  cmake --build "$dir" -j
  # Sanitizers multiply runtime; rerun only the suites this PR hardens.
  # Death tests re-exec the binary, which ASan/TSan tolerate fine under
  # the threadsafe style the fixtures select.
  (cd "$dir" && ctest --output-on-failure -j "$(nproc)" \
      -R 'Deadlock|Watchdog|FaultInject|Misuse|OptionsValidation|FaultHandler|Fingerprint|Race|Kernel|Close|Replay|Checkpoint|Turn|Park|Supervis|Chaos|Exec|Graph|Coalesce|Span')
done

if [[ "$run_bench" == 1 ]]; then
  # Release-build bench step: the propagation-path numbers only mean
  # something at -O3, and the binary exits nonzero if the batched path
  # regresses below the 2x mprotect-reduction floor.
  scripts/bench.sh
fi

if [[ "$run_detcheck" == 1 ]]; then
  # Determinism self-check on the racey stress workload: record one
  # fingerprint, verify 4 more executions epoch-by-epoch against it. Exits
  # nonzero with a pinpointed report at the first diverging epoch.
  ./build/bench/det_check --workload=racey --det-check=5 --threads=4 \
      --paranoia
fi

if [[ "$run_races" == 1 ]]; then
  # Online race detection gate (race_scan diffs the per-run reports
  # itself and exits nonzero on any mismatch):
  #  * racey — intentionally racy; a nonempty write-write race set,
  #    byte-identical across 5 runs, on both monitors.
  #  * pca / wordcount (phoenix) — properly synchronized; the byte-exact
  #    write-write check must stay silent. (canneal is intentionally racy
  #    — see apps/canneal.cpp — so it belongs with racey, not here.)
  ./build/bench/race_scan --workload=racey --backend=rfdet-pf --runs=5 \
      --threads=4 --expect=races
  ./build/bench/race_scan --workload=racey --backend=rfdet-ci --runs=5 \
      --threads=4 --expect=races
  ./build/bench/race_scan --workload=canneal --backend=rfdet-pf --runs=3 \
      --threads=4 --expect=races
  ./build/bench/race_scan --workload=pca --backend=rfdet-pf --runs=3 \
      --threads=4 --expect=none
  ./build/bench/race_scan --workload=wordcount --backend=rfdet-ci --runs=3 \
      --threads=4 --expect=none
fi

if [[ "$run_chaos" == 1 ]]; then
  # Seeded chaos campaign: a supervised child is crash-killed (exit/SEGV/
  # SIGBUS/abort) at deterministic points under injected checkpoint-I/O,
  # replay-I/O, IPC-loss and memfd-backing faults; every round's recovered
  # rollup must be bit-identical to its uninterrupted reference, and the
  # poison-turn quarantine must produce a byte-identical post-mortem.
  cmake --build build -j --target chaos_soak
  ./build/bench/chaos_soak
fi

echo "check.sh: all requested suites passed"
