#!/usr/bin/env bash
# Tier-1 gate plus an ASan pass over the failure-containment suites.
#
#   scripts/check.sh            # plain build + full ctest
#   scripts/check.sh --asan     # additionally build with RFDET_SANITIZE=address
#                               # and rerun the robustness tests under it
#   scripts/check.sh --tsan     # same with thread sanitizer
#
# Sanitized builds go to build-asan/ / build-tsan/ so they never disturb
# the primary build/ tree.
set -euo pipefail
cd "$(dirname "$0")/.."

# Validate arguments before the (long) tier-1 pass runs.
sanitizers=()
for arg in "$@"; do
  case "$arg" in
    --asan) sanitizers+=(address) ;;
    --tsan) sanitizers+=(thread) ;;
    *)
      echo "usage: scripts/check.sh [--asan] [--tsan]" >&2
      exit 2
      ;;
  esac
done

# Tier-1: the configuration CI pins.
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

for san in ${sanitizers[@]+"${sanitizers[@]}"}; do
  dir="build-${san/address/asan}"
  dir="${dir/build-thread/build-tsan}"
  cmake -B "$dir" -S . "-DRFDET_SANITIZE=${san}"
  cmake --build "$dir" -j
  # Sanitizers multiply runtime; rerun only the suites this PR hardens.
  # Death tests re-exec the binary, which ASan/TSan tolerate fine under
  # the threadsafe style the fixtures select.
  (cd "$dir" && ctest --output-on-failure -j "$(nproc)" \
      -R 'Deadlock|Watchdog|FaultInject|Misuse|OptionsValidation|FaultHandler')
done

echo "check.sh: all requested suites passed"
