#!/usr/bin/env bash
# Propagation-path benchmark runner: Release build + timed run, emitting
# bench/artifacts/BENCH_propagation.json so PRs leave a perf trajectory.
#
#   scripts/bench.sh             # full timed run (writes the JSON)
#   scripts/bench.sh --smoke     # correctness cells only (no JSON refresh)
#
# The Release tree lives in build-bench/ so it never disturbs the primary
# RelWithDebInfo build/ tree the tier-1 gate uses.
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=0
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke=1 ;;
    *)
      echo "usage: scripts/bench.sh [--smoke]" >&2
      exit 2
      ;;
  esac
done

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-bench -j --target propagation_path racey_determinism \
    close_scaling replay_overhead chaos_soak graph_kernels

mkdir -p bench/artifacts
if [[ "$smoke" == 1 ]]; then
  ./build-bench/bench/propagation_path --smoke
  ./build-bench/bench/close_scaling --smoke
  ./build-bench/bench/replay_overhead --smoke
  ./build-bench/bench/chaos_soak --smoke
  ./build-bench/bench/graph_kernels --smoke
else
  ./build-bench/bench/propagation_path \
      --json="$(pwd)/bench/artifacts/BENCH_propagation.json"
  # close_scaling gates >=2x off-turn+SIMD close throughput at 8 threads
  # and splices its summary keys into the propagation JSON.
  ./build-bench/bench/close_scaling \
      --merge_json="$(pwd)/bench/artifacts/BENCH_propagation.json"
  # replay_overhead gates <=1.5x record overhead and splices record/replay/
  # checkpoint summary keys into the propagation JSON.
  ./build-bench/bench/replay_overhead \
      --merge_json="$(pwd)/bench/artifacts/BENCH_propagation.json"
  # chaos_soak gates 20/20 bit-identical supervised recoveries and splices
  # supervised_resume_ms / chaos_rounds_bitidentical into the JSON.
  ./build-bench/bench/chaos_soak \
      --merge_json="$(pwd)/bench/artifacts/BENCH_propagation.json"
  # graph_kernels gates bit-identical executor-layer graph analytics across
  # wait modes / kernel tiers / monitors and splices per-kernel slices/s +
  # executor-overhead keys into the JSON.
  ./build-bench/bench/graph_kernels \
      --merge_json="$(pwd)/bench/artifacts/BENCH_propagation.json"
  echo "bench.sh: wrote bench/artifacts/BENCH_propagation.json"
fi

# Bench runs must leave no stray files: everything lands in the allow-listed
# bench/artifacts/BENCH_*.json (fingerprints and scratch go to /tmp). This
# covers every cell above, including the propagation bench's overlap-chain
# coalescing run — its span/plan state is all in-memory, so any file it
# drops under bench/ is a bug.
stray="$(git ls-files --others --exclude-standard bench)"
if [[ -n "$stray" ]]; then
  echo "bench.sh: stray bench artifacts not covered by .gitignore:" >&2
  echo "$stray" >&2
  exit 1
fi
