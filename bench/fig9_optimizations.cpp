// Figure 9 — effect of the prelock and lazy-writes optimizations.
//
// SPLASH-2 applications only (their heavy synchronization magnifies the
// optimizations, §5.5). The baseline disables both optimizations; each
// optimization is then enabled alone and its speedup over the baseline is
// reported, together with the fraction of propagation work the prelock
// reservation phase moved off the critical path (the paper reports ~80%).
//
// Flags: --threads=4 --scale=2 --repeat=2
#include <cstdio>

#include "rfdet/harness/harness.h"

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  apps::Params params;
  params.threads = static_cast<size_t>(flags.Int("threads", 4));
  params.scale = static_cast<int>(flags.Int("scale", 2));
  const int repeat = static_cast<int>(flags.Int("repeat", 2));

  std::printf("Figure 9: speedup over both-optimizations-disabled baseline "
              "(%zu threads, scale %d)\n\n", params.threads, params.scale);
  harness::Table table({"benchmark", "baseline(s)", "+prelock",
                        "+lazy writes", "+both", "merging benefit", "prelock share"});

  auto config_with = [&](bool prelock, bool lazy, bool merging = true) {
    dmt::BackendConfig c;
    c.kind = dmt::BackendKind::kRfdetCi;
    c.region_bytes = 64u << 20;
    c.static_bytes = 32u << 20;
    c.prelock = prelock;
    c.lazy_writes = lazy;
    c.slice_merging = merging;
    return c;
  };

  for (const apps::Workload* w : apps::AllWorkloads()) {
    if (w->Suite() != "splash2") continue;
    const harness::RunOutcome base =
        harness::MeasureBest(*w, params, config_with(false, false), repeat);
    const harness::RunOutcome pre =
        harness::MeasureBest(*w, params, config_with(true, false), repeat);
    const harness::RunOutcome lazy =
        harness::MeasureBest(*w, params, config_with(false, true), repeat);
    const harness::RunOutcome both =
        harness::MeasureBest(*w, params, config_with(true, true), repeat);
    // Ablation beyond the paper's figure: slice merging off (prelock/lazy
    // off too, so the ratio isolates merging against the same baseline).
    const harness::RunOutcome no_merge = harness::MeasureBest(
        *w, params, config_with(false, false, /*merging=*/false), repeat);

    const double prelock_share =
        pre.stats.bytes_propagated == 0
            ? 0.0
            : 100.0 * static_cast<double>(pre.stats.prelock_bytes) /
                  static_cast<double>(pre.stats.bytes_propagated);
    char share[16];
    std::snprintf(share, sizeof share, "%.0f%%", prelock_share);
    table.AddRow({
        w->Name(),
        harness::FormatSeconds(base.seconds),
        harness::FormatRatio(base.seconds / pre.seconds),
        harness::FormatRatio(base.seconds / lazy.seconds),
        harness::FormatRatio(base.seconds / both.seconds),
        harness::FormatRatio(no_merge.seconds / base.seconds),
        share,
    });
  }
  table.Print();
  return 0;
}
