// Graph-analytics kernels on the deterministic executor: determinism
// cells + throughput + executor overhead.
//
//   ./build/bench/graph_kernels [--scale=4] [--threads=4] [--repeat=3]
//                               [--smoke] [--merge_json=path]
//
// Determinism cells (run even in --smoke, all hard gates): for each of
// pagerank / bfs / cc, a fingerprinted record run must be bit-identical —
// workload signature AND §11 fingerprint rollup — to verify runs under
//   (a) an identical config (plain repeat),
//   (b) turn_wait=park + off-turn close,
//   (c) scalar kernels,
// and signature + rollup must match an independent record under the
// page-fault monitor. A grain sweep (explicit exec_grain vs auto) must
// keep the signature (the reduce tree of an associative combine and the
// worklist drain are grain-independent; the schedule itself is not, so
// that cell compares signatures only). bfs additionally runs twice with
// donation on: the donation counters ride the deterministic schedule and
// must be equal run to run.
//
// Perf cells (skipped in --smoke): best-of-`repeat` slices/s per kernel on
// rfdet-ci, plus the null-body ParallelFor region overhead in µs. Keys are
// merged idempotently into bench/artifacts/BENCH_propagation.json with
// --merge_json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rfdet/apps/workload.h"
#include "rfdet/backends/backends.h"
#include "rfdet/exec/executor.h"
#include "rfdet/harness/harness.h"

namespace {

using dmt::BackendConfig;
using dmt::BackendKind;
using harness::RunOutcome;

int g_failures = 0;

void Gate(bool ok, const std::string& what) {
  std::printf("  %-58s %s\n", what.c_str(), ok ? "ok" : "FAIL");
  if (!ok) ++g_failures;
}

BackendConfig Rfdet(BackendKind kind) {
  BackendConfig config;
  config.kind = kind;
  return config;
}

std::string FpPath(const std::string& kernel, const char* monitor) {
  return "/tmp/graph_kernels_" + kernel + "_" + monitor + ".fp";
}

// One record + four verify/compare cells per kernel; returns true when
// every cell was bit-identical.
bool DeterminismCells(const apps::Workload& w, const apps::Params& params) {
  std::printf("%s: determinism cells (threads=%zu scale=%d)\n",
              w.Name().c_str(), params.threads, params.scale);
  const std::string ci_fp = FpPath(w.Name(), "ci");
  BackendConfig record = Rfdet(BackendKind::kRfdetCi);
  record.fingerprint = rfdet::FingerprintMode::kRecord;
  record.fingerprint_path = ci_fp;
  record.turn_wait = "spin";
  const RunOutcome base = harness::Measure(w, params, record);
  const int before = g_failures;
  Gate(base.fingerprint_rollup != 0, "record run produced a rollup");

  const auto check = [&](const char* label, BackendConfig config) {
    config.fingerprint = rfdet::FingerprintMode::kVerify;
    config.fingerprint_path = ci_fp;
    config.fingerprint_panic = false;
    const RunOutcome out = harness::Measure(w, params, config);
    Gate(out.divergence_report.empty() &&
             out.signature == base.signature &&
             out.fingerprint_rollup == base.fingerprint_rollup,
         std::string(label) + " bit-identical");
    if (!out.divergence_report.empty()) {
      std::printf("    divergence: %s\n", out.divergence_report.c_str());
    }
  };
  check("repeat (same config)", record);

  BackendConfig park = record;
  park.turn_wait = "park";
  park.off_turn_close = true;
  check("turn_wait=park + off-turn close", park);

  BackendConfig scalar = record;
  scalar.kernels = "scalar";
  check("kernels=scalar", scalar);

  // Independent record under the page-fault monitor: same deterministic
  // execution, different write-monitoring mechanism.
  BackendConfig pf = Rfdet(BackendKind::kRfdetPf);
  pf.fingerprint = rfdet::FingerprintMode::kRecord;
  pf.fingerprint_path = FpPath(w.Name(), "pf");
  pf.turn_wait = "spin";
  const RunOutcome pf_out = harness::Measure(w, params, pf);
  Gate(pf_out.signature == base.signature &&
           pf_out.fingerprint_rollup == base.fingerprint_rollup,
       "pf monitor signature + rollup match ci");

  // Grain sweep: the schedule legitimately changes (different chunk
  // count), so this cell compares workload signatures only.
  BackendConfig grained = Rfdet(BackendKind::kRfdetCi);
  grained.exec_grain = 3;
  const RunOutcome g3 = harness::Measure(w, params, grained);
  grained.exec_grain = 13;
  const RunOutcome g13 = harness::Measure(w, params, grained);
  Gate(g3.signature == base.signature && g13.signature == base.signature,
       "signature independent of exec_grain (3, 13, auto)");

  std::remove(ci_fp.c_str());
  std::remove(pf.fingerprint_path.c_str());
  return g_failures == before;
}

void DonationTripwire(const apps::Workload& w, const apps::Params& params) {
  const BackendConfig config = Rfdet(BackendKind::kRfdetCi);
  const RunOutcome a = harness::Measure(w, params, config);
  const RunOutcome b = harness::Measure(w, params, config);
  std::printf("%s: donations %llu (%llu items moved)\n", w.Name().c_str(),
              static_cast<unsigned long long>(a.stats.exec_donations),
              static_cast<unsigned long long>(a.stats.exec_donated_items));
  Gate(a.stats.exec_donations == b.stats.exec_donations &&
           a.stats.exec_donated_items == b.stats.exec_donated_items,
       "donation counters identical across runs");
}

double KernelSlicesPerSec(const apps::Workload& w, apps::Params params,
                          int repeat) {
  const RunOutcome best =
      harness::MeasureBest(w, params, Rfdet(BackendKind::kRfdetCi), repeat);
  const double rate =
      best.seconds > 0
          ? static_cast<double>(best.stats.slices_created) / best.seconds
          : 0;
  std::printf("%s: %.0f slices/s (%.1f ms, %llu slices, %llu chunks, "
              "%llu items, reduce depth %llu)\n",
              w.Name().c_str(), rate, best.seconds * 1e3,
              static_cast<unsigned long long>(best.stats.slices_created),
              static_cast<unsigned long long>(best.stats.exec_chunks),
              static_cast<unsigned long long>(best.stats.exec_items),
              static_cast<unsigned long long>(best.stats.exec_reduce_depth));
  Gate(rate > 0, std::string(w.Name()) + " throughput measured");
  return rate;
}

double RegionOverheadUs(size_t threads, int regions) {
  const auto env = dmt::CreateEnv(Rfdet(BackendKind::kRfdetCi));
  dmt::exec::Executor ex(*env, {.threads = threads});
  const auto noop = [](size_t, size_t, size_t) {};
  ex.ParallelFor(0, threads, 1, noop);  // spawn + warm the pool
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < regions; ++i) ex.ParallelFor(0, threads, 1, noop);
  const double us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count() /
      regions;
  std::printf("executor: %.1f us per null %zu-chunk region (%d regions)\n",
              us, threads, regions);
  return us;
}

// Same string-surgery merge used by the other bench binaries: the file is
// this repo's own fixed-layout artifact, not arbitrary JSON.
void EraseKeyLine(std::string& text, const std::string& key) {
  const std::string needle = "\n    \"" + key + "\":";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return;
  const size_t end = text.find('\n', at + 1);
  if (end == std::string::npos) return;
  text.erase(at, end - at);
}

bool MergeIntoPropagationJson(const std::string& path, double pagerank,
                              double bfs, double cc, double overhead_us,
                              bool bitidentical) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "graph_kernels: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  EraseKeyLine(text, "graph_pagerank_slices_per_sec");
  EraseKeyLine(text, "graph_bfs_slices_per_sec");
  EraseKeyLine(text, "graph_cc_slices_per_sec");
  EraseKeyLine(text, "graph_exec_region_overhead_us");
  EraseKeyLine(text, "graph_kernels_cells_bitidentical");
  const std::string anchor = "\"summary\": {";
  const size_t at = text.find(anchor);
  if (at == std::string::npos) {
    std::fprintf(stderr, "graph_kernels: no summary object in %s\n",
                 path.c_str());
    return false;
  }
  char keys[512];
  std::snprintf(keys, sizeof keys,
                "\n    \"graph_pagerank_slices_per_sec\": %g,"
                "\n    \"graph_bfs_slices_per_sec\": %g,"
                "\n    \"graph_cc_slices_per_sec\": %g,"
                "\n    \"graph_exec_region_overhead_us\": %g,"
                "\n    \"graph_kernels_cells_bitidentical\": %d,",
                pagerank, bfs, cc, overhead_us, bitidentical ? 1 : 0);
  text.insert(at + anchor.size(), keys);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "graph_kernels: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const bool smoke = flags.Bool("smoke", false);
  apps::Params params;
  params.threads = static_cast<size_t>(flags.Int("threads", 4));
  params.scale = static_cast<int>(flags.Int("scale", smoke ? 1 : 4));
  const int repeat = static_cast<int>(flags.Int("repeat", 3));
  const std::string merge_path = flags.Str("merge_json", "");

  const char* kKernels[] = {"pagerank", "bfs", "cc"};
  std::vector<const apps::Workload*> kernels;
  for (const char* name : kKernels) {
    const apps::Workload* w = apps::FindWorkload(name);
    if (w == nullptr) {
      std::fprintf(stderr, "graph_kernels: missing workload %s\n", name);
      return 1;
    }
    kernels.push_back(w);
  }

  bool bitidentical = true;
  for (const apps::Workload* w : kernels) {
    bitidentical = DeterminismCells(*w, params) && bitidentical;
  }
  DonationTripwire(*kernels[1], params);  // bfs drives the worklists

  double rates[3] = {0, 0, 0};
  double overhead_us = 0;
  if (!smoke) {
    std::printf("\nthroughput (best of %d, rfdet-ci)\n", repeat);
    for (size_t i = 0; i < kernels.size(); ++i) {
      rates[i] = KernelSlicesPerSec(*kernels[i], params, repeat);
    }
    overhead_us = RegionOverheadUs(params.threads, 200);
  } else {
    overhead_us = RegionOverheadUs(params.threads, 20);
  }

  if (!merge_path.empty()) {
    if (!MergeIntoPropagationJson(merge_path, rates[0], rates[1], rates[2],
                                  overhead_us, bitidentical)) {
      ++g_failures;
    } else {
      std::printf("merged graph kernel keys into %s\n", merge_path.c_str());
    }
  }

  std::printf("\ngraph_kernels: %s (%d gate failure%s)\n",
              g_failures == 0 ? "PASS" : "FAIL", g_failures,
              g_failures == 1 ? "" : "s");
  return g_failures == 0 ? 0 : 1;
}
