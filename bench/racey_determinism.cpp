// §5.1 determinism experiment — racey.
//
// The paper ran racey 1000 times at 2, 4 and 8 threads under RFDet and
// observed a single output per configuration. This binary repeats that,
// and also runs the weak/nondeterministic backends for contrast (pthreads
// typically produces many distinct outputs; Kendo is deterministic only
// up to the first race, so racey diverges there too).
//
// Flags: --runs=100 (use --runs=1000 for the paper's full count) --scale=1
#include <cstdio>
#include <set>

#include "rfdet/harness/harness.h"

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const int runs = static_cast<int>(flags.Int("runs", 100));
  const int scale = static_cast<int>(flags.Int("scale", 1));
  const apps::Workload* racey = apps::FindWorkload("racey");

  std::printf("racey determinism: %d runs per configuration (scale %d)\n\n",
              runs, scale);
  harness::Table table(
      {"backend", "threads", "distinct outputs", "deterministic"});

  const dmt::BackendKind kBackends[] = {
      dmt::BackendKind::kRfdetCi, dmt::BackendKind::kRfdetPf,
      dmt::BackendKind::kDthreads, dmt::BackendKind::kKendo,
      dmt::BackendKind::kPthreads};
  for (const dmt::BackendKind kind : kBackends) {
    for (const size_t threads : {2u, 4u, 8u}) {
      std::set<uint64_t> outputs;
      for (int i = 0; i < runs; ++i) {
        dmt::BackendConfig config;
        config.kind = kind;
        config.region_bytes = 16u << 20;
        apps::Params params;
        params.threads = threads;
        params.scale = scale;
        outputs.insert(
            harness::Measure(*racey, params, config).signature);
      }
      const bool deterministic = outputs.size() == 1;
      const bool strong = kind == dmt::BackendKind::kRfdetCi ||
                          kind == dmt::BackendKind::kRfdetPf ||
                          kind == dmt::BackendKind::kDthreads;
      table.AddRow({std::string(dmt::ToString(kind)),
                    std::to_string(threads),
                    std::to_string(outputs.size()),
                    deterministic ? "yes" : (strong ? "VIOLATION" : "no")});
    }
  }
  table.Print();
  std::printf("\nExpected: every strong-DMT row reports exactly 1 distinct "
              "output; pthreads/kendo may report many.\n");
  return 0;
}
