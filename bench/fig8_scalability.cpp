// Figure 8 — scalability of RFDet-ci compared to pthreads.
//
// For each application, runs with 2, 4 and 8 threads and reports the
// speedup of the 4- and 8-thread executions relative to the 2-thread one,
// for both pthreads and RFDet-ci. Like the paper, dedup and ferret are
// excluded (memory limits at 8 threads) and lu-con represents lu-non.
//
// NOTE: on a single-core host all "speedups" hover around 1.0 or below;
// the series still demonstrates that RFDet's *relative* scaling tracks
// pthreads' (the paper's claim), since both degrade identically.
//
// Flags: --scale=2 --repeat=2
#include <cstdio>

#include "rfdet/harness/harness.h"

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const int scale = static_cast<int>(flags.Int("scale", 2));
  const int repeat = static_cast<int>(flags.Int("repeat", 2));

  std::printf("Figure 8: speedup of 4/8-thread runs over the 2-thread run "
              "(scale %d)\n\n", scale);
  harness::Table table({"benchmark", "pthreads 4t", "pthreads 8t",
                        "rfdet-ci 4t", "rfdet-ci 8t"});

  for (const apps::Workload* w : apps::AllWorkloads()) {
    const std::string name = w->Name();
    if (w->Suite() == "stress" || w->Suite() == "extension" ||
        name == "dedup" || name == "ferret" ||
        name == "lu-non") {
      continue;  // same exclusions as the paper's Figure 8
    }
    std::vector<std::string> row{name};
    for (const dmt::BackendKind kind :
         {dmt::BackendKind::kPthreads, dmt::BackendKind::kRfdetCi}) {
      dmt::BackendConfig config;
      config.kind = kind;
      config.region_bytes = 64u << 20;
      config.static_bytes = 32u << 20;
      double base = 0;
      for (const size_t threads : {2u, 4u, 8u}) {
        apps::Params params;
        params.threads = threads;
        params.scale = scale;
        const harness::RunOutcome out =
            harness::MeasureBest(*w, params, config, repeat);
        if (threads == 2) {
          base = out.seconds;
        } else {
          row.push_back(harness::FormatRatio(base / out.seconds));
        }
      }
    }
    // Reorder: we gathered pthreads{4,8} then rfdet{4,8} — already in
    // header order.
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
