// Close-throughput scaling bench (off-turn slice close + SIMD kernels).
//
// T spawned threads each run a close-heavy loop: dirty `pages` private
// pages (one `run_len`-byte store per page, so the close diff scans the
// full page and then byte-refines a large differing run — the
// refinement loop is where the vector diff kernel is an order of
// magnitude ahead of the scalar one) and close the slice with an
// uncontended per-thread atomic acquire. Aggregate close throughput
// (slices/s summed over threads) is measured for every cell of
//
//   {ci, pf} x {turn-serial + scalar kernels, off-turn + auto kernels}
//            x {1, 8 threads}
//
// The first config is the pre-PR behavior (every close diffs under the
// turn with the portable byte loop); the second is this PR's fast path
// (diff/plan/pre-hash off turn, best SIMD tier).
//
// Two throughput views are reported per cell:
//  * wall slices/s — end-to-end aggregate over the measurement window;
//  * turn capacity — slices/s of *turn-held* close time (close_turn_ns
//    runtime counter). Closes serialize on the Kendo turn, so at T
//    threads the aggregate close rate is capped at T cores by
//    1 / turn-held-time-per-close; off-turn close attacks exactly this
//    term by moving the diff/plan/pre-hash out of the turn.
//
// The acceptance gate is >=2x turn capacity at 8 threads, ci monitor,
// treatment vs baseline, plus a wall-clock sanity floor (the wall ratio
// understates the win on few-core hosts, where the off-turn work cannot
// actually overlap and only the SIMD kernels show up end to end). pf
// cells are reported too (their closes are fault-dominated, so the
// kernel win is diluted by constant syscall cost).
//
// A turn-wait comparison pass reruns the contended ci off-turn cell at
// the top thread count under spin vs park waiting (DESIGN.md §15) and
// gates a >=10x reduction in wait-loop iterations (turn_spins). The JSON
// summary records host_cores and the turn_wait mode; wall-clock gates
// auto-relax when host_cores < top threads (the overlap cannot
// physically materialize on an oversubscribed host).
//
// --merge_json=PATH splices this bench's summary keys
// (`pf_eager_offturn_close_speedup`, `close_scaling_8t_vs_1t`,
// `close_scaling_host_cores`, `close_scaling_turn_wait`,
// `close_scaling_turn_spins_reduction`) into an existing
// BENCH_propagation.json written by propagation_path.
//
// Flags: --pages=32 --run_len=2048 --iters=200 --smoke
//        --json=PATH --merge_json=PATH
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rfdet/harness/harness.h"
#include "rfdet/runtime/runtime.h"

namespace {

using namespace rfdet;  // NOLINT: bench-local brevity

struct Shape {
  size_t pages = 32;     // private pages dirtied per slice
  size_t run_len = 2048; // bytes stored per page (one contiguous run)
  size_t iters = 200;    // timed closes per thread
  size_t warmup = 3;     // untimed closes per thread (page materialization)
  size_t repeat = 3;     // per-cell reruns; best throughput wins (noise)
};

struct CellResult {
  std::string mode;      // "ci" | "pf"
  std::string config;    // "serial-scalar" | "offturn-auto"
  size_t threads = 0;
  double slices_per_sec = 0;
  double seconds = 0;
  double turn_us_per_slice = 0;  // turn-held close time (close_turn_ns)
  uint64_t prepared_slices = 0;
  uint64_t turn_spins = 0;  // wait-loop iterations (kendo WaitCounters)
  uint64_t turn_parks = 0;
};

CellResult RunCell(MonitorMode monitor, bool off_turn, const char* kernels,
                   size_t threads, const Shape& shape,
                   const char* turn_wait = "adaptive") {
  RfdetOptions o;
  o.monitor = monitor;
  o.region_bytes = 96u << 20;
  o.static_bytes = 8u << 20;
  o.off_turn_close = off_turn;
  o.kernels = kernels;
  o.turn_wait = turn_wait;
  RfdetRuntime rt(o);

  const GAddr data = rt.AllocStatic(threads * shape.pages * kPageSize,
                                    kPageSize);
  const GAddr sync = rt.AllocStatic(threads * 64, 64);

  // Host-side wall-clock slots, one writer each; read after the joins.
  std::vector<double> begin_s(threads, 0.0);
  std::vector<double> end_s(threads, 0.0);
  const auto now = [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };

  std::vector<size_t> tids;
  for (size_t t = 0; t < threads; ++t) {
    tids.push_back(rt.Spawn([&, t] {
      const GAddr base = data + t * shape.pages * kPageSize;
      const GAddr my_sync = sync + t * 64;
      std::vector<std::byte> buf(shape.run_len);
      for (size_t i = 0; i < shape.warmup + shape.iters; ++i) {
        if (i == shape.warmup) begin_s[t] = now();
        // Fresh payload once per iteration (outside the page loop so the
        // bench's own byte mutation stays a small share of the close
        // work), then one large store per page: the close diff scans the
        // whole page and byte-refines a run_len differing run — the
        // refinement-dominated shape where the vector kernel leads most.
        for (auto& b : buf) {
          b = static_cast<std::byte>(i + 1 + static_cast<size_t>(b));
        }
        for (size_t p = 0; p < shape.pages; ++p) {
          const GAddr at = base + p * kPageSize +
                           (i % 2 == 0 ? 0 : kPageSize - shape.run_len);
          rt.Store(at, buf.data(), buf.size());
        }
        rt.AtomicLoad(my_sync);  // uncontended acquire: closes the slice
      }
      end_s[t] = now();
    }));
  }
  for (const size_t tid : tids) rt.Join(tid);

  const double window =
      *std::max_element(end_s.begin(), end_s.end()) -
      *std::min_element(begin_s.begin(), begin_s.end());
  CellResult r;
  r.mode = monitor == MonitorMode::kInstrumented ? "ci" : "pf";
  r.config = off_turn ? "offturn-auto" : "serial-scalar";
  r.threads = threads;
  r.seconds = window;
  r.slices_per_sec =
      window > 0
          ? static_cast<double>(threads * shape.iters) / window
          : 0;
  const StatsSnapshot snap = rt.Snapshot();
  r.prepared_slices = snap.offturn_prepared_slices;
  r.turn_spins = snap.turn_spins;
  r.turn_parks = snap.turn_parks;
  r.turn_us_per_slice =
      snap.slices_created > 0
          ? static_cast<double>(snap.close_turn_ns) / 1000.0 /
                static_cast<double>(snap.slices_created)
          : 0;
  return r;
}

const CellResult* Cell(const std::vector<CellResult>& cells,
                       const char* mode, const char* config,
                       size_t threads) {
  for (const CellResult& c : cells) {
    if (c.mode == mode && c.config == config && c.threads == threads) {
      return &c;
    }
  }
  return nullptr;
}

double WallRatio(const CellResult* num, const CellResult* den) {
  if (num == nullptr || den == nullptr || den->slices_per_sec <= 0) return 0;
  return num->slices_per_sec / den->slices_per_sec;
}

// Aggregate-close-capacity ratio: closes serialize on the turn, so
// capacity scales as 1 / turn-held-time-per-close.
double TurnCapacityRatio(const CellResult* num, const CellResult* den) {
  if (num == nullptr || den == nullptr || num->turn_us_per_slice <= 0) {
    return 0;
  }
  return den->turn_us_per_slice / num->turn_us_per_slice;
}

// Splices the two new summary keys into a BENCH_propagation.json written
// by propagation_path (plain string surgery on its fixed layout — the
// file is this repo's own artifact, not arbitrary JSON).
void EraseKeyLine(std::string& text, const std::string& key) {
  const std::string needle = "\n    \"" + key + "\":";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return;
  const size_t end = text.find('\n', at + 1);
  if (end == std::string::npos) return;
  text.erase(at, end - at);
}

bool MergeIntoPropagationJson(const std::string& path, double pf_speedup,
                              double scaling_8t_vs_1t, unsigned host_cores,
                              const std::string& turn_wait,
                              double spins_reduction) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "close_scaling: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  // Idempotent: running the merge twice replaces rather than duplicates.
  EraseKeyLine(text, "pf_eager_offturn_close_speedup");
  EraseKeyLine(text, "close_scaling_8t_vs_1t");
  EraseKeyLine(text, "close_scaling_host_cores");
  EraseKeyLine(text, "close_scaling_turn_wait");
  EraseKeyLine(text, "close_scaling_turn_spins_reduction");
  const std::string anchor = "\"summary\": {";
  const size_t at = text.find(anchor);
  if (at == std::string::npos) {
    std::fprintf(stderr, "close_scaling: no summary object in %s\n",
                 path.c_str());
    return false;
  }
  char keys[512];
  std::snprintf(keys, sizeof keys,
                "\n    \"pf_eager_offturn_close_speedup\": %g,"
                "\n    \"close_scaling_8t_vs_1t\": %g,"
                "\n    \"close_scaling_host_cores\": %u,"
                "\n    \"close_scaling_turn_wait\": \"%s\","
                "\n    \"close_scaling_turn_spins_reduction\": %g,",
                pf_speedup, scaling_8t_vs_1t, host_cores, turn_wait.c_str(),
                spins_reduction);
  text.insert(at + anchor.size(), keys);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "close_scaling: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const bool smoke = flags.Bool("smoke", false);
  Shape shape;
  shape.pages = static_cast<size_t>(flags.Int("pages", smoke ? 8 : 32));
  shape.repeat = smoke ? 1 : 3;
  shape.run_len = static_cast<size_t>(flags.Int("run_len", 2048));
  shape.iters = static_cast<size_t>(flags.Int("iters", smoke ? 6 : 200));
  const std::string json_path = flags.Str("json", "");
  const std::string merge_path = flags.Str("merge_json", "");
  const std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 8};
  const size_t top = thread_counts.back();

  std::printf("close_scaling: %zu pages x %zu B per slice, %zu iters, "
              "threads {%zu, %zu}\n",
              shape.pages, shape.run_len, shape.iters, thread_counts.front(),
              top);

  std::vector<CellResult> cells;
  harness::Table table({"mode", "config", "threads", "slices/s", "seconds",
                        "turn-us/slice"});
  bool counters_ok = true;
  for (const MonitorMode monitor :
       {MonitorMode::kInstrumented, MonitorMode::kPageFault}) {
    for (const bool off_turn : {false, true}) {
      for (const size_t t : thread_counts) {
        // Best of `repeat` runs: each run spawns fresh threads, so a
        // single run can absorb an unrelated scheduling burst. Wall
        // throughput takes the fastest run; turn-held time takes the
        // minimum (both are "least disturbed" estimates).
        CellResult r;
        for (size_t rep = 0; rep < shape.repeat; ++rep) {
          const CellResult one =
              RunCell(monitor, off_turn, off_turn ? "auto" : "scalar", t,
                      shape);
          if (rep == 0) {
            r = one;
          } else {
            if (one.slices_per_sec > r.slices_per_sec) {
              r.slices_per_sec = one.slices_per_sec;
              r.seconds = one.seconds;
            }
            r.turn_us_per_slice =
                std::min(r.turn_us_per_slice, one.turn_us_per_slice);
          }
        }
        // Correctness tripwire: treatment cells must actually have
        // prepared off turn; baseline cells must not.
        if (off_turn ? r.prepared_slices == 0 : r.prepared_slices != 0) {
          std::fprintf(stderr,
                       "close_scaling: offturn_prepared_slices=%llu in a "
                       "%s cell\n",
                       static_cast<unsigned long long>(r.prepared_slices),
                       r.config.c_str());
          counters_ok = false;
        }
        char buf[3][32];
        std::snprintf(buf[0], sizeof buf[0], "%.0f", r.slices_per_sec);
        std::snprintf(buf[1], sizeof buf[1], "%.3f", r.seconds);
        std::snprintf(buf[2], sizeof buf[2], "%.2f", r.turn_us_per_slice);
        table.AddRow({r.mode, r.config, std::to_string(r.threads), buf[0],
                      buf[1], buf[2]});
        cells.push_back(r);
      }
    }
  }
  table.Print();
  if (!counters_ok) return 1;

  const CellResult* ci_base = Cell(cells, "ci", "serial-scalar", top);
  const CellResult* ci_treat = Cell(cells, "ci", "offturn-auto", top);
  const CellResult* pf_base = Cell(cells, "pf", "serial-scalar", top);
  const CellResult* pf_treat = Cell(cells, "pf", "offturn-auto", top);
  const double ci_wall = WallRatio(ci_treat, ci_base);
  const double ci_capacity = TurnCapacityRatio(ci_treat, ci_base);
  const double pf_wall = WallRatio(pf_treat, pf_base);
  const double pf_capacity = TurnCapacityRatio(pf_treat, pf_base);
  const double scaling =
      WallRatio(pf_treat, Cell(cells, "pf", "offturn-auto", 1));
  const unsigned host_cores = std::thread::hardware_concurrency();
  std::printf(
      "\nsummary (at %zu threads, %u host cores): ci close capacity %.1fx "
      "(wall %.2fx), pf close capacity %.1fx (wall %.2fx), pf off-turn "
      "aggregate %zut/1t scaling %.2fx\n",
      top, host_cores, ci_capacity, ci_wall, pf_capacity, pf_wall, top,
      scaling);

  // Turn-wait comparison (DESIGN.md §15): the same contended ci off-turn
  // cell at the top thread count under spin vs park waiting. The park
  // cell's waiters sleep on their futex words between successor handoffs
  // instead of polling, so its wait-loop iteration count (turn_spins)
  // collapses; the reduction is the gated metric. Determinism is
  // unaffected by mode, so throughput differences are pure wait overhead.
  const CellResult spin_cell = RunCell(MonitorMode::kInstrumented, true,
                                       "auto", top, shape, "spin");
  const CellResult park_cell = RunCell(MonitorMode::kInstrumented, true,
                                       "auto", top, shape, "park");
  const double spins_reduction =
      park_cell.turn_spins > 0
          ? static_cast<double>(spin_cell.turn_spins) /
                static_cast<double>(park_cell.turn_spins)
          : 0;
  std::printf(
      "turn-wait at %zu threads: spin %llu spins; park %llu spins, "
      "%llu parks -> %.1fx spin reduction\n",
      top, static_cast<unsigned long long>(spin_cell.turn_spins),
      static_cast<unsigned long long>(park_cell.turn_spins),
      static_cast<unsigned long long>(park_cell.turn_parks),
      spins_reduction);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"close_scaling\",\n";
    out << "  \"shape\": {\"pages\": " << shape.pages
        << ", \"run_len\": " << shape.run_len
        << ", \"iters\": " << shape.iters << "},\n  \"cells\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
      const CellResult& c = cells[i];
      out << "    {\"mode\": \"" << c.mode << "\", \"config\": \""
          << c.config << "\", \"threads\": " << c.threads
          << ", \"slices_per_sec\": " << c.slices_per_sec
          << ", \"turn_us_per_slice\": " << c.turn_us_per_slice << "}"
          << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"summary\": {\n";
    out << "    \"ci_offturn_close_speedup\": " << ci_capacity << ",\n";
    out << "    \"ci_offturn_close_wall_speedup\": " << ci_wall << ",\n";
    out << "    \"pf_eager_offturn_close_speedup\": " << pf_capacity
        << ",\n";
    out << "    \"pf_eager_offturn_close_wall_speedup\": " << pf_wall
        << ",\n";
    out << "    \"close_scaling_8t_vs_1t\": " << scaling << ",\n";
    out << "    \"host_cores\": " << host_cores << ",\n";
    out << "    \"turn_wait\": \"adaptive\",\n";
    out << "    \"turn_spins_spin\": " << spin_cell.turn_spins << ",\n";
    out << "    \"turn_spins_park\": " << park_cell.turn_spins << ",\n";
    out << "    \"turn_spins_reduction\": " << spins_reduction << "\n";
    out << "  }\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!merge_path.empty() &&
      !MergeIntoPropagationJson(merge_path, pf_capacity, scaling, host_cores,
                                "adaptive", spins_reduction)) {
    return 1;
  }

  // Acceptance, at the top thread count on the ci monitor: the off-turn +
  // SIMD close must at least double aggregate close *capacity* (the
  // turn-held-time cap that actually bounds close throughput at scale)
  // over the turn-serial scalar baseline, and must beat it end to end by
  // a sanity margin. Wall-clock gates auto-relax when the host has fewer
  // cores than the top thread count (recorded as host_cores in the JSON):
  // with T threads time-slicing < T cores, neither the off-turn overlap
  // nor the 1t->Tt aggregate scaling can physically materialize, so those
  // ratios are recorded but not gated. The turn-held capacity ratio and
  // the spin-reduction ratio do not depend on parallel hardware and gate
  // everywhere. pf cells are fault-dominated; recorded, not gated.
  const bool gate_wall = host_cores >= top;
  if (!smoke && ci_capacity < 2.0) {
    std::fprintf(stderr,
                 "close_scaling: ci close capacity %.2fx < 2x target\n",
                 ci_capacity);
    return 1;
  }
  if (!smoke && gate_wall && ci_wall < 1.15) {
    std::fprintf(stderr,
                 "close_scaling: ci wall speedup %.2fx < 1.15x floor\n",
                 ci_wall);
    return 1;
  }
  if (!smoke && gate_wall && scaling < 2.0) {
    std::fprintf(stderr,
                 "close_scaling: %zut/1t wall scaling %.2fx < 2x target\n",
                 top, scaling);
    return 1;
  }
  if (!gate_wall) {
    std::printf("close_scaling: wall gates relaxed (host_cores %u < top "
                "threads %zu)\n",
                host_cores, top);
  }
  if (!smoke && spins_reduction < 10.0) {
    std::fprintf(stderr,
                 "close_scaling: park-mode turn_spins reduction %.1fx < "
                 "10x target\n",
                 spins_reduction);
    return 1;
  }
  return 0;
}
