// Online race-detection driver (scripts/check.sh --races).
//
// Runs one workload N times under RacePolicy::kReport and checks the two
// properties the detector promises:
//
//   1. Determinism: the race report text is byte-identical across runs.
//      Detection piggybacks on turn-ordered slice closes, so the set of
//      reported races — like every other observable — must not vary.
//   2. Expectation: --expect=races demands a nonempty report (racey),
//      --expect=none demands an empty one (properly locked workloads).
//
// Flags:
//   --workload=racey     any apps workload name
//   --backend=rfdet-pf   rfdet-ci | rfdet-pf
//   --runs=5 --threads=4 --scale=1
//   --expect=races       races | none | any (default: any, report only)
//   --track-reads        also enable page-granular write-read detection
#include <cstdio>
#include <string>
#include <vector>

#include "rfdet/harness/harness.h"

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const int runs = std::max<int>(1, static_cast<int>(flags.Int("runs", 5)));
  const std::string workload_name = flags.Str("workload", "racey");
  const std::string backend_name = flags.Str("backend", "rfdet-pf");
  const std::string expect = flags.Str("expect", "any");

  const apps::Workload* workload = apps::FindWorkload(workload_name);
  if (workload == nullptr) {
    std::fprintf(stderr, "race_scan: unknown workload '%s'\n",
                 workload_name.c_str());
    return 2;
  }
  const auto kind = dmt::ParseBackend(backend_name);
  if (!kind || (*kind != dmt::BackendKind::kRfdetCi &&
                *kind != dmt::BackendKind::kRfdetPf)) {
    std::fprintf(stderr,
                 "race_scan: backend '%s' has no race detector "
                 "(use rfdet-ci or rfdet-pf)\n",
                 backend_name.c_str());
    return 2;
  }
  if (expect != "races" && expect != "none" && expect != "any") {
    std::fprintf(stderr, "race_scan: --expect must be races|none|any\n");
    return 2;
  }

  dmt::BackendConfig config;
  config.kind = *kind;
  config.region_bytes = 16u << 20;
  config.race_policy = rfdet::RacePolicy::kReport;
  config.race_track_reads = flags.Bool("track-reads", false);

  apps::Params params;
  params.threads = static_cast<size_t>(flags.Int("threads", 4));
  params.scale = static_cast<int>(flags.Int("scale", 1));

  std::printf("race-scan: %s on %s, %zu threads, %d runs, expect=%s%s\n\n",
              workload_name.c_str(), backend_name.c_str(), params.threads,
              runs, expect.c_str(),
              config.race_track_reads ? ", read tracking on" : "");

  std::vector<harness::RunOutcome> outs;
  outs.reserve(static_cast<size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    outs.push_back(harness::Measure(*workload, params, config));
  }

  harness::Table table(
      {"run", "signature", "ww", "rw pages", "checks", "report"});
  for (int i = 0; i < runs; ++i) {
    const harness::RunOutcome& out = outs[static_cast<size_t>(i)];
    char sig[32];
    std::snprintf(sig, sizeof sig, "%016llx",
                  static_cast<unsigned long long>(out.signature));
    table.AddRow({std::to_string(i + 1), sig,
                  harness::FormatCount(out.stats.races_ww),
                  harness::FormatCount(out.stats.races_rw_pages),
                  harness::FormatCount(out.stats.race_checks),
                  out.race_report.empty() ? "empty"
                                          : std::to_string(
                                                out.race_report.size()) +
                                                " bytes"});
  }
  table.Print();

  int failures = 0;
  for (int i = 1; i < runs; ++i) {
    const auto idx = static_cast<size_t>(i);
    if (outs[idx].race_report != outs[0].race_report) {
      std::printf("\nFAIL: run %d race report differs from run 1 "
                  "(%zu vs %zu bytes) — detection is nondeterministic\n",
                  i + 1, outs[idx].race_report.size(),
                  outs[0].race_report.size());
      ++failures;
    }
    if (outs[idx].signature != outs[0].signature) {
      std::printf("\nFAIL: run %d workload signature differs from run 1\n",
                  i + 1);
      ++failures;
    }
  }
  const bool raced = !outs[0].race_report.empty();
  if (expect == "races" && !raced) {
    std::printf("\nFAIL: expected races, report is empty\n");
    ++failures;
  }
  if (expect == "none" && raced) {
    std::printf("\nFAIL: expected no races, got report:\n%s\n",
                outs[0].race_report.c_str());
    ++failures;
  }

  if (failures == 0) {
    if (raced) {
      std::printf("\nAll %d runs produced this byte-identical report:\n%s",
                  runs, outs[0].race_report.c_str());
    } else {
      std::printf("\nAll %d runs race-free (empty report).\n", runs);
    }
    return 0;
  }
  return 1;
}
