// Figure 7 — execution time normalized to pthreads, 4 threads.
//
// Reproduces the paper's headline comparison: pthreads vs DThreads vs
// RFDet-pf vs RFDet-ci for all 16 benchmark applications. The paper
// reports (at 4 threads): RFDet-ci ≈ 1.35x, RFDet-pf ≈ 1.73x, DThreads
// ≈ 2.5x, with DThreads' worst case near 10x (lu-non). Absolute numbers
// differ on this substrate, but the expected *shape* is the same:
//   pthreads < rfdet-ci < rfdet-pf < dthreads (geomean),
// with DThreads blowing up on sync-heavy / imbalance-prone kernels.
//
// Flags: --threads=4 --scale=2 --repeat=2 --apps=a,b,c
#include <cstdio>

#include "rfdet/harness/harness.h"

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  apps::Params params;
  params.threads = static_cast<size_t>(flags.Int("threads", 4));
  params.scale = static_cast<int>(flags.Int("scale", 2));
  params.seed = static_cast<uint64_t>(flags.Int("seed", 42));
  const int repeat = static_cast<int>(flags.Int("repeat", 2));
  const std::string only = flags.Str("apps", "");

  const dmt::BackendKind kBackends[] = {
      dmt::BackendKind::kPthreads,
      dmt::BackendKind::kRfdetCi,
      dmt::BackendKind::kRfdetPf,
      dmt::BackendKind::kDthreads,
  };

  std::printf("Figure 7: execution time normalized to pthreads "
              "(%zu threads, scale %d)\n\n",
              params.threads, params.scale);
  harness::Table table({"benchmark", "pthreads(s)", "rfdet-ci", "rfdet-pf",
                        "dthreads"});
  std::vector<double> ci_ratios;
  std::vector<double> pf_ratios;
  std::vector<double> dt_ratios;

  for (const apps::Workload* w : apps::AllWorkloads()) {
    if (w->Suite() == "stress" || w->Suite() == "extension") continue;
    if (!only.empty() && only.find(w->Name()) == std::string::npos) continue;
    double base = 0;
    std::vector<std::string> row{w->Name()};
    std::vector<double> ratios;
    for (const dmt::BackendKind kind : kBackends) {
      dmt::BackendConfig config;
      config.kind = kind;
      config.region_bytes = 64u << 20;
      config.static_bytes = 32u << 20;
      const harness::RunOutcome out =
          harness::MeasureBest(*w, params, config, repeat);
      if (kind == dmt::BackendKind::kPthreads) {
        base = out.seconds;
        row.push_back(harness::FormatSeconds(out.seconds));
      } else {
        const double ratio = out.seconds / base;
        ratios.push_back(ratio);
        row.push_back(harness::FormatRatio(ratio));
      }
    }
    ci_ratios.push_back(ratios[0]);
    pf_ratios.push_back(ratios[1]);
    dt_ratios.push_back(ratios[2]);
    table.AddRow(std::move(row));
  }
  table.AddRow({"geomean", "-", harness::FormatRatio(harness::GeoMean(ci_ratios)),
                harness::FormatRatio(harness::GeoMean(pf_ratios)),
                harness::FormatRatio(harness::GeoMean(dt_ratios))});
  table.Print();

  const double ci = harness::GeoMean(ci_ratios);
  const double pf = harness::GeoMean(pf_ratios);
  const double dt = harness::GeoMean(dt_ratios);
  std::printf("\nPaper's claims, checked on this substrate:\n");
  std::printf("  rfdet-ci < rfdet-pf   : %s (%.2f vs %.2f)\n",
              ci < pf ? "yes" : "NO", ci, pf);
  std::printf("  rfdet-pf < dthreads   : %s (%.2f vs %.2f)\n",
              pf < dt ? "yes" : "NO", pf, dt);
  std::printf("  rfdet-ci speedup over dthreads: %.2fx (paper: ~1.8x)\n",
              dt / ci);
  return 0;
}
