// Propagation fast-path microbenchmark (ISSUE 2 / EXPERIMENTS.md).
//
// Measures the slice-apply hot path in isolation: a synthetic source slice
// (P pages × F fragments, plus cross-page runs) applied repeatedly to a
// receiver ThreadView, for every cell of
//   {ci, pf} × {eager, lazy} × {legacy per-run splitting, planned apply}.
//
// Reported per cell: slices/sec, MB/sec of payload, and mprotect calls per
// applied slice (the per-acquire syscall cost in pf mode). The planned
// path must be byte-identical to the legacy path — every cell is
// cross-checked against a legacy replay before timing, and --smoke runs
// only that check (wired into ctest).
//
// --json=PATH writes a machine-readable record (BENCH_propagation.json)
// so later PRs can track a perf trajectory.
//
// Flags: --pages=64 --frags=8 --run_len=48 --iters=400 --stride=1
//        --smoke --json=PATH
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "rfdet/harness/harness.h"
#include "rfdet/mem/apply_plan.h"
#include "rfdet/mem/mod_list.h"
#include "rfdet/mem/thread_view.h"
#include "rfdet/race/race_detector.h"
#include "rfdet/slice/slice.h"
#include "rfdet/slice/slice_span.h"
#include "rfdet/verify/fingerprint.h"

namespace {

using namespace rfdet;  // NOLINT: bench-local brevity

struct Shape {
  size_t pages = 64;      // distinct pages the slice touches
  size_t frags = 8;       // fragments per page
  size_t run_len = 48;    // bytes per fragment
  size_t stride = 1;      // page stride (1 = contiguous dirty range)
  size_t iters = 400;     // applies per timed cell
  size_t repeat = 3;      // timed passes per cell; best (min) is kept
};

constexpr size_t kCapacity = 32u << 20;  // 8192 pages

// A synthetic slice: `frags` runs in each of `pages` pages (strided), plus
// one page-boundary-crossing run per 8 pages to exercise plan clipping.
ModList MakeSourceMods(const Shape& shape) {
  ModList mods;
  std::vector<std::byte> payload(shape.run_len);
  uint8_t seed = 1;
  for (size_t p = 0; p < shape.pages; ++p) {
    const GAddr base = PageBase(p * shape.stride);
    for (size_t f = 0; f < shape.frags; ++f) {
      for (auto& b : payload) b = static_cast<std::byte>(seed++);
      const GAddr addr =
          base + f * (kPageSize / shape.frags) % (kPageSize - shape.run_len);
      mods.Append(addr, payload);
    }
    if (p % 8 == 7 && shape.stride == 1 && p + 1 < shape.pages) {
      for (auto& b : payload) b = static_cast<std::byte>(seed++);
      mods.Append(base + kPageSize - shape.run_len / 2, payload);
    }
  }
  return mods;
}

struct CellResult {
  std::string mode;       // "ci" | "pf"
  std::string apply;      // "eager" | "lazy"
  std::string path;       // "legacy" | "planned"
  double slices_per_sec = 0;
  double mbytes_per_sec = 0;
  double mprotect_per_apply = 0;
  double seconds = 0;
};

void ApplyOnce(ThreadView& view, const ModList& mods, const ApplyPlan* plan,
               bool lazy) {
  if (plan != nullptr) {
    view.ApplyRemote(mods, *plan, lazy);
  } else {
    view.ApplyRemote(mods, lazy);
  }
  if (lazy) view.FlushPending();  // force application so work is measured
}

// Byte-identical cross-check: planned apply must equal a legacy replay.
bool VerifyCell(MonitorMode mode, const ModList& mods, const ApplyPlan& plan,
                bool lazy) {
  MetadataArena arena(256u << 20);
  ThreadView a(kCapacity, mode, &arena);
  ThreadView b(kCapacity, mode, &arena);
  a.ActivateOnThisThread();
  ApplyOnce(a, mods, nullptr, lazy);
  b.ActivateOnThisThread();
  ApplyOnce(b, mods, &plan, lazy);
  std::vector<std::byte> la(kPageSize);
  std::vector<std::byte> lb(kPageSize);
  bool ok = true;
  for (PageId pid = 0; pid < kCapacity / kPageSize && ok; ++pid) {
    a.ActivateOnThisThread();
    a.Load(PageBase(pid), la.data(), kPageSize);
    b.ActivateOnThisThread();
    b.Load(PageBase(pid), lb.data(), kPageSize);
    ok = std::memcmp(la.data(), lb.data(), kPageSize) == 0;
    if (!ok) {
      std::fprintf(stderr, "MISMATCH: page %llu differs (%s, %s)\n",
                   static_cast<unsigned long long>(pid),
                   mode == MonitorMode::kInstrumented ? "ci" : "pf",
                   lazy ? "lazy" : "eager");
    }
  }
  ThreadView::DeactivateOnThisThread();
  return ok;
}

CellResult RunCell(MonitorMode mode, bool lazy, bool planned,
                   const ModList& mods, const ApplyPlan& plan,
                   const Shape& shape) {
  MetadataArena arena(256u << 20);
  ThreadView view(kCapacity, mode, &arena);
  view.ActivateOnThisThread();
  // Warm-up: materialize pages / take the first-touch costs out of the
  // timed region.
  ApplyOnce(view, mods, planned ? &plan : nullptr, lazy);

  // Best of `repeat` timed passes: on a loaded machine a single pass can
  // absorb an unrelated scheduling burst; the minimum is the conventional
  // noise-suppressed estimate (mprotect counts are deterministic per
  // apply, so any pass yields the same delta).
  const uint64_t mprotect_before = view.Stats().mprotect_calls;
  double best = 0;
  for (size_t rep = 0; rep < shape.repeat; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < shape.iters; ++i) {
      ApplyOnce(view, mods, planned ? &plan : nullptr, lazy);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || s < best) best = s;
  }
  const uint64_t mprotect_after =
      mprotect_before +
      (view.Stats().mprotect_calls - mprotect_before) / shape.repeat;
  ThreadView::DeactivateOnThisThread();

  CellResult r;
  r.mode = mode == MonitorMode::kInstrumented ? "ci" : "pf";
  r.apply = lazy ? "lazy" : "eager";
  r.path = planned ? "planned" : "legacy";
  r.seconds = best;
  const double per_sec =
      r.seconds > 0 ? static_cast<double>(shape.iters) / r.seconds : 0;
  r.slices_per_sec = per_sec;
  r.mbytes_per_sec =
      per_sec * static_cast<double>(mods.ByteCount()) / (1024.0 * 1024.0);
  r.mprotect_per_apply =
      static_cast<double>(mprotect_after - mprotect_before) /
      static_cast<double>(shape.iters);
  return r;
}

// The pf-eager-planned cell with record-mode fingerprinting in the loop:
// every apply is also absorbed into a receiver memory stream (OnApply
// digests the vector clock plus the full ModList payload). The ratio
// against the same loop without fingerprinting is the det-check record
// overhead on the propagation hot path; ISSUE 3 budgets it at ≤2x. The
// two loops run paired on one warmed view, best-of-3 each, so the ratio
// is not at the mercy of scheduler noise between separately-built cells.
double FingerprintOverhead(const ModList& mods, const ApplyPlan& plan,
                           const Shape& shape) {
  MetadataArena arena(256u << 20);
  ThreadView view(kCapacity, MonitorMode::kPageFault, &arena);
  view.ActivateOnThisThread();
  ApplyOnce(view, mods, &plan, /*lazy=*/false);

  ExecutionFingerprint::Config fc;
  fc.mode = FingerprintMode::kRecord;  // empty path: digest only
  fc.epoch_ops = 64;
  fc.max_threads = 2;
  fc.arena = &arena;
  ExecutionFingerprint fp(fc);
  VectorClock time(2);
  uint64_t seq = 0;

  double plain = 0;
  double with_fp = 0;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < shape.iters; ++i) {
      ApplyOnce(view, mods, &plan, /*lazy=*/false);
    }
    auto t1 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < shape.iters; ++i) {
      ApplyOnce(view, mods, &plan, /*lazy=*/false);
      time.Tick(1);  // a fresh source slice per apply, as in a real run
      fp.OnApply(/*receiver=*/0, /*src_tid=*/1, /*src_seq=*/seq++, time,
                 mods);
    }
    auto t2 = std::chrono::steady_clock::now();
    const double p = std::chrono::duration<double>(t1 - t0).count();
    const double f = std::chrono::duration<double>(t2 - t1).count();
    if (rep == 0 || p < plain) plain = p;
    if (rep == 0 || f < with_fp) with_fp = f;
  }
  ThreadView::DeactivateOnThisThread();
  return plain > 0 ? with_fp / plain : 0;
}

// The same paired loop with the race detector on the close path: every
// apply is followed by an OnSliceClose of a premade slice, alternating
// between two tids whose vector clocks tick only their own component, so
// every cross-thread window pair stays concurrent and each close walks the
// full window (vclock compare, Bloom prefilter, sorted-page intersection;
// the dedup set caps the exact byte sweep after the first report, as in a
// real run's steady state). The ratio against the plain loop is the
// kReport-mode detection overhead on the propagation hot path; the PR
// budgets it at ≤1.5x.
double RaceOverhead(const ModList& mods, const ApplyPlan& plan,
                    const Shape& shape) {
  MetadataArena arena(256u << 20);
  ThreadView view(kCapacity, MonitorMode::kPageFault, &arena);
  view.ActivateOnThisThread();
  ApplyOnce(view, mods, &plan, /*lazy=*/false);

  RaceDetector::Config rc;
  rc.policy = RacePolicy::kReport;
  rc.page_count = kCapacity / kPageSize;
  rc.arena = &arena;
  RaceDetector det(rc);

  // Two premade slices (one per tid) stand in for freshly closed slices;
  // slice construction is not detector cost — a real CloseSlice builds the
  // slice whether or not detection is on. The close time is passed
  // separately, so reusing the slices with fresh clocks is sound.
  VectorClock clock_a(2);
  VectorClock clock_b(2);
  const SliceRef slice_a = std::make_shared<Slice>(
      /*tid=*/0, /*seq=*/0, clock_a, ModList(mods), nullptr);
  const SliceRef slice_b = std::make_shared<Slice>(
      /*tid=*/1, /*seq=*/0, clock_b, ModList(mods), nullptr);
  uint64_t seq = 0;

  double plain = 0;
  double with_race = 0;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < shape.iters; ++i) {
      ApplyOnce(view, mods, &plan, /*lazy=*/false);
    }
    auto t1 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < shape.iters; ++i) {
      ApplyOnce(view, mods, &plan, /*lazy=*/false);
      const size_t tid = i & 1;
      VectorClock& time = tid == 0 ? clock_a : clock_b;
      time.Tick(tid);
      ++seq;
      det.OnSliceClose(tid, seq, seq, time, tid == 0 ? slice_a : slice_b,
                       {});
      // Periodic synchronization, as in a locked program: the clocks
      // join, ordering every earlier close before everything later, and
      // the GC frontier (their meet) retires those entries — the window
      // stays at its real-run steady-state size instead of accumulating
      // to the budget cap, which no GC'd execution does.
      if ((i & 15) == 15) {
        clock_a.Join(clock_b);
        clock_b.Join(clock_a);
        VectorClock meet = clock_a;
        meet.Meet(clock_b);
        det.Retire(meet);
      }
    }
    auto t2 = std::chrono::steady_clock::now();
    const double p = std::chrono::duration<double>(t1 - t0).count();
    const double r = std::chrono::duration<double>(t2 - t1).count();
    if (rep == 0 || p < plain) plain = p;
    if (rep == 0 || r < with_race) with_race = r;
  }
  ThreadView::DeactivateOnThisThread();
  return plain > 0 ? with_race / plain : 0;
}

// ---------------------------------------------------------------------------
// Overlap-chain cell (ISSUE 10): many small slices from one source
// rewriting a hot page set, consumed by multiple receivers. Per-slice
// apply copies every slice's payload; the coalesced SliceSpan applies one
// compacted last-writer-wins delta. The speedup and the fraction of
// redundant bytes the compaction eliminated are the gated outputs.
// ---------------------------------------------------------------------------

struct OverlapShape {
  size_t slices = 24;     // chain length (one source's pending batch)
  size_t hot_pages = 16;  // pages every slice rewrites
  size_t frags = 4;       // fragments per hot page
  size_t run_len = 48;    // bytes per fragment
  size_t receivers = 4;   // simulated receivers per timed iteration
  size_t iters = 100;     // timed iterations
  size_t repeat = 3;      // best-of passes
};

// Slice k writes `frags` runs per hot page, shifted by a cycling
// run_len/4 offset — heavy cross-slice overlap with genuine split/trim
// merging at the window edges, like a hot data structure whose fields are
// rewritten every critical section. The cycle keeps the merged delta's
// run count bounded (a monotone slide would leave one fragment per slice,
// making the coalesced apply issue as many memcpys as the whole chain).
std::vector<SliceRef> MakeOverlapChain(const OverlapShape& os) {
  std::vector<SliceRef> chain;
  std::vector<std::byte> payload(os.run_len);
  VectorClock time(2);
  uint8_t seed = 7;
  for (size_t k = 0; k < os.slices; ++k) {
    ModList mods;
    for (size_t p = 0; p < os.hot_pages; ++p) {
      const GAddr base = PageBase(p);
      for (size_t f = 0; f < os.frags; ++f) {
        for (auto& b : payload) b = static_cast<std::byte>(seed++);
        const GAddr addr = base + (f * (kPageSize / os.frags) +
                                   (k % 3) * (os.run_len / 4)) %
                                      (kPageSize - os.run_len);
        mods.Append(addr, payload);
      }
    }
    time.Tick(1);
    chain.push_back(std::make_shared<Slice>(/*tid=*/1, /*seq=*/k, time,
                                            std::move(mods), nullptr));
  }
  return chain;
}

// Coalesced apply must leave bytes identical to the sequential per-slice
// chain replay — on both monitor backends.
bool VerifyOverlapChain(MonitorMode mode, const SliceSpan& span) {
  const ModList* merged = span.Merged();
  if (merged == nullptr) return false;
  MetadataArena arena(256u << 20);
  ThreadView a(kCapacity, mode, &arena);
  ThreadView b(kCapacity, mode, &arena);
  a.ActivateOnThisThread();
  for (const SliceRef& s : span.Slices()) {
    a.ApplyRemote(s->mods(), s->Plan(), /*lazy=*/false);
  }
  b.ActivateOnThisThread();
  b.ApplyRemote(*merged, span.Plan(), /*lazy=*/false);
  std::vector<std::byte> la(kPageSize);
  std::vector<std::byte> lb(kPageSize);
  bool ok = true;
  for (PageId pid = 0; pid < kCapacity / kPageSize && ok; ++pid) {
    a.ActivateOnThisThread();
    a.Load(PageBase(pid), la.data(), kPageSize);
    b.ActivateOnThisThread();
    b.Load(PageBase(pid), lb.data(), kPageSize);
    ok = std::memcmp(la.data(), lb.data(), kPageSize) == 0;
    if (!ok) {
      std::fprintf(stderr,
                   "MISMATCH: coalesced page %llu differs from per-slice "
                   "chain (%s)\n",
                   static_cast<unsigned long long>(pid),
                   mode == MonitorMode::kInstrumented ? "ci" : "pf");
    }
  }
  ThreadView::DeactivateOnThisThread();
  return ok;
}

struct OverlapResult {
  double per_slice_s = 0;
  double coalesced_s = 0;
  double speedup = 0;
  double bytes_saved_frac = 0;
};

// Times R receivers re-acquiring the K-slice chain, per-slice vs through
// the span's merged plan. The span is built once (production: one build
// shared by all receivers via the source's SpanCache), so build cost is
// excluded — exactly the amortization the coalescing design buys.
OverlapResult RunOverlapChain(const SliceSpan& span, const OverlapShape& os) {
  const ModList* merged = span.Merged();
  OverlapResult r;
  r.bytes_saved_frac =
      span.LogicalBytes() > 0
          ? 1.0 - static_cast<double>(merged->ByteCount()) /
                      static_cast<double>(span.LogicalBytes())
          : 0;
  MetadataArena arena(256u << 20);
  ThreadView view(kCapacity, MonitorMode::kPageFault, &arena);
  view.ActivateOnThisThread();
  view.ApplyRemote(*merged, span.Plan(), /*lazy=*/false);  // warm pages
  for (size_t rep = 0; rep < os.repeat; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < os.iters; ++i) {
      for (size_t rx = 0; rx < os.receivers; ++rx) {
        for (const SliceRef& s : span.Slices()) {
          view.ApplyRemote(s->mods(), s->Plan(), /*lazy=*/false);
        }
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < os.iters; ++i) {
      for (size_t rx = 0; rx < os.receivers; ++rx) {
        view.ApplyRemote(*merged, span.Plan(), /*lazy=*/false);
      }
    }
    auto t2 = std::chrono::steady_clock::now();
    const double p = std::chrono::duration<double>(t1 - t0).count();
    const double c = std::chrono::duration<double>(t2 - t1).count();
    if (rep == 0 || p < r.per_slice_s) r.per_slice_s = p;
    if (rep == 0 || c < r.coalesced_s) r.coalesced_s = c;
  }
  ThreadView::DeactivateOnThisThread();
  r.speedup = r.coalesced_s > 0 ? r.per_slice_s / r.coalesced_s : 0;
  return r;
}

double CellValue(const std::vector<CellResult>& cells, const char* mode,
                 const char* apply, const char* path,
                 double CellResult::* field) {
  for (const CellResult& c : cells) {
    if (c.mode == mode && c.apply == apply && c.path == path) {
      return c.*field;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  Shape shape;
  const bool smoke = flags.Bool("smoke", false);
  shape.pages = static_cast<size_t>(flags.Int("pages", smoke ? 16 : 64));
  shape.frags = static_cast<size_t>(flags.Int("frags", 8));
  shape.run_len = static_cast<size_t>(flags.Int("run_len", 48));
  shape.stride = static_cast<size_t>(flags.Int("stride", 1));
  shape.iters = static_cast<size_t>(flags.Int("iters", smoke ? 4 : 400));
  shape.repeat = static_cast<size_t>(flags.Int("repeat", smoke ? 1 : 5));
  const std::string json_path = flags.Str("json", "");

  const ModList mods = MakeSourceMods(shape);
  const ApplyPlan plan = ApplyPlan::Build(mods);

  std::printf(
      "propagation_path: %zu pages x %zu frags x %zu B (%zu runs), "
      "%zu plan pages / %zu segments, %zu payload bytes\n",
      shape.pages, shape.frags, shape.run_len, mods.RunCount(),
      plan.PageCount(), plan.SegmentCount(), mods.ByteCount());

  OverlapShape oshape;
  if (smoke) {
    oshape.slices = 6;
    oshape.hot_pages = 4;
    oshape.iters = 2;
    oshape.receivers = 2;
    oshape.repeat = 1;
  }
  const std::vector<SliceRef> chain = MakeOverlapChain(oshape);
  const SliceSpan span(chain, nullptr, nullptr);

  // Correctness gate first — a fast wrong apply is worthless.
  bool ok = true;
  for (const MonitorMode mode :
       {MonitorMode::kInstrumented, MonitorMode::kPageFault}) {
    for (const bool lazy : {false, true}) {
      ok = VerifyCell(mode, mods, plan, lazy) && ok;
    }
    ok = VerifyOverlapChain(mode, span) && ok;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "propagation_path: planned apply diverged from legacy\n");
    return 1;
  }
  std::printf(
      "verify: planned apply byte-identical to legacy (4/4 cells), "
      "coalesced span identical to per-slice chain (2/2 backends)\n");
  if (smoke && !flags.Bool("force_timing", false)) {
    std::printf("--smoke: correctness check only, skipping timed cells\n");
    if (json_path.empty()) return 0;
  }

  std::vector<CellResult> cells;
  harness::Table table({"mode", "apply", "path", "slices/s", "MB/s",
                        "mprotect/apply"});
  for (const MonitorMode mode :
       {MonitorMode::kInstrumented, MonitorMode::kPageFault}) {
    for (const bool lazy : {false, true}) {
      for (const bool planned : {false, true}) {
        const CellResult r = RunCell(mode, lazy, planned, mods, plan, shape);
        char buf[3][32];
        std::snprintf(buf[0], sizeof buf[0], "%.0f", r.slices_per_sec);
        std::snprintf(buf[1], sizeof buf[1], "%.1f", r.mbytes_per_sec);
        std::snprintf(buf[2], sizeof buf[2], "%.2f", r.mprotect_per_apply);
        table.AddRow({r.mode, r.apply, r.path, buf[0], buf[1], buf[2]});
        cells.push_back(r);
      }
    }
  }
  table.Print();

  const double legacy_mp = CellValue(cells, "pf", "eager", "legacy",
                                     &CellResult::mprotect_per_apply);
  const double planned_mp = CellValue(cells, "pf", "eager", "planned",
                                      &CellResult::mprotect_per_apply);
  // The alias-mapped apply path needs no mprotect at all, making the
  // planned count exactly zero; floor the denominator at one syscall per
  // whole run so the reduction factor stays finite ("at least this much").
  const double mp_reduction =
      legacy_mp /
      std::max(planned_mp, 1.0 / static_cast<double>(shape.iters));
  const double pf_speedup =
      CellValue(cells, "pf", "eager", "planned",
                &CellResult::slices_per_sec) /
      std::max(1.0, CellValue(cells, "pf", "eager", "legacy",
                              &CellResult::slices_per_sec));
  const double ci_speedup =
      CellValue(cells, "ci", "eager", "planned",
                &CellResult::slices_per_sec) /
      std::max(1.0, CellValue(cells, "ci", "eager", "legacy",
                              &CellResult::slices_per_sec));
  const double fp_overhead = FingerprintOverhead(mods, plan, shape);
  const double race_overhead = RaceOverhead(mods, plan, shape);
  const OverlapResult overlap = RunOverlapChain(span, oshape);
  std::printf(
      "\nsummary: pf-eager mprotect/apply %.2f -> %.2f (%.1fx reduction), "
      "pf-eager %.2fx slices/s, ci-eager %.2fx slices/s\n"
      "fingerprint record overhead on pf-eager-planned: %.2fx\n"
      "race detection (kReport) overhead on pf-eager-planned: %.2fx\n"
      "overlap chain (%zu slices x %zu pages, %zu receivers): coalesced "
      "%.2fx over per-slice, %.0f%% redundant bytes eliminated\n",
      legacy_mp, planned_mp, mp_reduction, pf_speedup, ci_speedup,
      fp_overhead, race_overhead, oshape.slices, oshape.hot_pages,
      oshape.receivers, overlap.speedup, 100.0 * overlap.bytes_saved_frac);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"propagation_path\",\n";
    out << "  \"shape\": {\"pages\": " << shape.pages
        << ", \"frags_per_page\": " << shape.frags
        << ", \"run_len\": " << shape.run_len
        << ", \"stride\": " << shape.stride
        << ", \"iters\": " << shape.iters
        << ", \"payload_bytes\": " << mods.ByteCount() << "},\n";
    out << "  \"cells\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
      const CellResult& c = cells[i];
      out << "    {\"mode\": \"" << c.mode << "\", \"apply\": \"" << c.apply
          << "\", \"path\": \"" << c.path
          << "\", \"slices_per_sec\": " << c.slices_per_sec
          << ", \"mbytes_per_sec\": " << c.mbytes_per_sec
          << ", \"mprotect_per_apply\": " << c.mprotect_per_apply << "}"
          << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"summary\": {\n";
    out << "    \"pf_eager_mprotect_per_apply_legacy\": " << legacy_mp
        << ",\n";
    out << "    \"pf_eager_mprotect_per_apply_planned\": " << planned_mp
        << ",\n";
    out << "    \"pf_eager_mprotect_reduction\": " << mp_reduction << ",\n";
    out << "    \"pf_eager_slices_per_sec_speedup\": " << pf_speedup
        << ",\n";
    out << "    \"ci_eager_slices_per_sec_speedup\": " << ci_speedup
        << ",\n";
    out << "    \"pf_eager_planned_fingerprint_overhead\": " << fp_overhead
        << ",\n";
    out << "    \"pf_eager_planned_race_overhead\": " << race_overhead
        << ",\n";
    out << "    \"pf_eager_coalesce_speedup\": " << overlap.speedup << ",\n";
    out << "    \"coalesce_bytes_saved_frac\": " << overlap.bytes_saved_frac
        << "\n";
    out << "  }\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  // Acceptance: the batched path must at least halve mprotect traffic, and
  // fingerprinting / race detection must stay within their overhead
  // budgets. The budgets are ratios against the pf-eager-planned apply,
  // whose denominator shrank ~4.5x when the alias-mapped apply removed
  // every mprotect — the absolute fingerprint/race cost per slice did not
  // change, so the ratio budgets were rebased to the faster baseline
  // (fingerprint 2x -> 4x, race 1.5x -> 2x).
  if (!smoke && mp_reduction < 2.0) {
    std::fprintf(stderr,
                 "propagation_path: mprotect reduction %.2fx < 2x target\n",
                 mp_reduction);
    return 1;
  }
  if (!smoke && fp_overhead > 4.0) {
    std::fprintf(stderr,
                 "propagation_path: fingerprint overhead %.2fx > 4x budget\n",
                 fp_overhead);
    return 1;
  }
  if (!smoke && race_overhead > 2.0) {
    std::fprintf(stderr,
                 "propagation_path: race overhead %.2fx > 2x budget\n",
                 race_overhead);
    return 1;
  }
  if (!smoke && overlap.speedup < 2.0) {
    std::fprintf(stderr,
                 "propagation_path: coalesce speedup %.2fx < 2x target\n",
                 overlap.speedup);
    return 1;
  }
  if (!smoke && overlap.bytes_saved_frac <= 0.0) {
    std::fprintf(stderr,
                 "propagation_path: coalescing saved no bytes (%.3f)\n",
                 overlap.bytes_saved_frac);
    return 1;
  }
  return 0;
}
