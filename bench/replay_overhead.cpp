// Record/replay + checkpoint overhead bench.
//
// Determinism makes the replay log a complete description of a run, so the
// interesting question is what that completeness costs on the hot path.
// Four cells run the identical phased, sync-heavy workload (T spawned
// threads per phase bumping a lock-protected counter, joined at each phase
// boundary):
//
//   base         — replay off (the tier-1 runtime as benched elsewhere)
//   record       — replay_mode=kRecord: every grant appended under its turn
//   replay       — replay_mode=kReplay, driven by the cell-2 log
//   record+ckpt  — kRecord plus an explicit CheckpointNow at every phase
//                  boundary (reports image size and capture time)
//
// Gates (full run only): record wall overhead <= 1.5x over base — the log
// write is a buffered append under an already-taken turn, so it must stay
// well under the paper-scale overheads — and zero replay divergences
// (the replayed schedule *is* the recorded schedule). The replay/record
// wall ratio and per-checkpoint cost are reported and merged into the
// shared JSON, not gated: replay trades arbitration spins for log-cursor
// waits, which is workload-shaped.
//
// --merge_json=PATH splices the summary keys into an existing
// BENCH_propagation.json (idempotently, same surgery as close_scaling).
//
// Flags: --threads=4 --phases=8 --iters=400 --smoke
//        --json=PATH --merge_json=PATH
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rfdet/harness/harness.h"
#include "rfdet/runtime/runtime.h"

namespace {

using namespace rfdet;  // NOLINT: bench-local brevity

struct Shape {
  size_t threads = 4;
  size_t phases = 8;
  size_t iters = 400;  // locked increments per thread per phase
  size_t repeat = 3;   // per-cell reruns; best (min) wall time wins
};

struct CellResult {
  std::string name;
  double seconds = 0;
  StatsSnapshot snap;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One full run: construction (log parse, checkpoint restore) through
// teardown (log finalize) is all attributable to the cell's mode.
CellResult RunCell(const std::string& name, const RfdetOptions& opts,
                   bool checkpoint_each_phase, const Shape& shape) {
  const double t0 = Now();
  CellResult r;
  r.name = name;
  {
    RfdetRuntime rt(opts);
    const GAddr counter = rt.AllocStatic(64);
    const GAddr slots = rt.AllocStatic(shape.threads * 64, 64);
    const size_t m = rt.CreateMutex();
    for (size_t p = 0; p < shape.phases; ++p) {
      std::vector<size_t> tids;
      for (size_t t = 0; t < shape.threads; ++t) {
        tids.push_back(rt.Spawn([&rt, &shape, counter, slots, m, t] {
          for (size_t i = 0; i < shape.iters; ++i) {
            if (rt.MutexLock(m) != RfdetErrc::kOk) std::abort();
            uint64_t v = 0;
            rt.Load(counter, &v, sizeof v);
            ++v;
            rt.Store(counter, &v, sizeof v);
            rt.MutexUnlock(m);
            rt.Store(slots + t * 64, &i, sizeof i);
            rt.Tick(1);
          }
        }));
      }
      for (const size_t tid : tids) {
        if (rt.Join(tid) != RfdetErrc::kOk) std::abort();
      }
      if (checkpoint_each_phase && rt.CheckpointNow() != RfdetErrc::kOk) {
        std::fprintf(stderr, "replay_overhead: CheckpointNow failed\n");
        std::abort();
      }
    }
    uint64_t total = 0;
    rt.Load(counter, &total, sizeof total);
    const uint64_t want = shape.phases * shape.threads * shape.iters;
    if (total != want) {
      std::fprintf(stderr,
                   "replay_overhead[%s]: counter %llu != %llu\n",
                   name.c_str(), static_cast<unsigned long long>(total),
                   static_cast<unsigned long long>(want));
      std::abort();
    }
    r.snap = rt.Snapshot();
    const std::string div = rt.LastReplayDivergence();
    if (!div.empty()) {
      std::fprintf(stderr, "replay_overhead[%s]: %s\n", name.c_str(),
                   div.c_str());
      std::abort();
    }
  }
  r.seconds = Now() - t0;
  return r;
}

CellResult Best(const std::string& name, const RfdetOptions& opts,
                bool checkpoint_each_phase, const Shape& shape) {
  CellResult best;
  for (size_t rep = 0; rep < shape.repeat; ++rep) {
    CellResult one = RunCell(name, opts, checkpoint_each_phase, shape);
    if (rep == 0 || one.seconds < best.seconds) best = std::move(one);
  }
  return best;
}

// Same fixed-layout string surgery as close_scaling: the JSON is this
// repo's own artifact, not arbitrary input.
void EraseKeyLine(std::string& text, const std::string& key) {
  const std::string needle = "\n    \"" + key + "\":";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return;
  const size_t end = text.find('\n', at + 1);
  if (end == std::string::npos) return;
  text.erase(at, end - at);
}

bool MergeIntoPropagationJson(const std::string& path, double record_ov,
                              double replay_ratio, double ckpt_ms,
                              double ckpt_mb) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "replay_overhead: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  // Idempotent: running the merge twice replaces rather than duplicates.
  EraseKeyLine(text, "replay_record_overhead");
  EraseKeyLine(text, "replay_vs_record_wall");
  EraseKeyLine(text, "checkpoint_avg_ms");
  EraseKeyLine(text, "checkpoint_image_mb");
  const std::string anchor = "\"summary\": {";
  const size_t at = text.find(anchor);
  if (at == std::string::npos) {
    std::fprintf(stderr, "replay_overhead: no summary object in %s\n",
                 path.c_str());
    return false;
  }
  char keys[320];
  std::snprintf(keys, sizeof keys,
                "\n    \"replay_record_overhead\": %g,"
                "\n    \"replay_vs_record_wall\": %g,"
                "\n    \"checkpoint_avg_ms\": %g,"
                "\n    \"checkpoint_image_mb\": %g,",
                record_ov, replay_ratio, ckpt_ms, ckpt_mb);
  text.insert(at + anchor.size(), keys);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "replay_overhead: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const bool smoke = flags.Bool("smoke", false);
  Shape shape;
  shape.threads = static_cast<size_t>(flags.Int("threads", 4));
  shape.phases = static_cast<size_t>(flags.Int("phases", smoke ? 3 : 8));
  shape.iters = static_cast<size_t>(flags.Int("iters", smoke ? 40 : 400));
  shape.repeat = smoke ? 1 : 3;
  const std::string json_path = flags.Str("json", "");
  const std::string merge_path = flags.Str("merge_json", "");
  const std::string log_path = "replay_overhead_log.bin";
  const std::string ckpt_path = "replay_overhead_ckpt.img";

  std::printf("replay_overhead: %zu threads x %zu phases x %zu iters\n",
              shape.threads, shape.phases, shape.iters);

  RfdetOptions base;
  base.region_bytes = 32u << 20;
  base.static_bytes = 4u << 20;
  base.divergence_policy = DivergencePolicy::kReport;

  const CellResult cell_base = Best("base", base, false, shape);

  RfdetOptions rec = base;
  rec.replay_mode = ReplayMode::kRecord;
  rec.replay_log_path = log_path;
  const CellResult cell_rec = Best("record", rec, false, shape);
  if (cell_rec.snap.replay_grants == 0 ||
      cell_rec.snap.replay_io_errors != 0) {
    std::fprintf(stderr, "replay_overhead: recording produced no log\n");
    return 1;
  }

  RfdetOptions rep = base;
  rep.replay_mode = ReplayMode::kReplay;
  rep.replay_log_path = log_path;
  const CellResult cell_rep = Best("replay", rep, false, shape);
  if (cell_rep.snap.replay_divergences != 0) {
    std::fprintf(stderr, "replay_overhead: %llu replay divergence(s)\n",
                 static_cast<unsigned long long>(
                     cell_rep.snap.replay_divergences));
    return 1;
  }

  RfdetOptions ck = rec;
  ck.replay_log_path = log_path + ".ckpt";  // keep the replay log intact
  ck.checkpoint_path = ckpt_path;
  const CellResult cell_ck = Best("record+ckpt", ck, true, shape);
  if (cell_ck.snap.checkpoints_written != shape.phases ||
      cell_ck.snap.checkpoint_io_errors != 0) {
    std::fprintf(stderr, "replay_overhead: expected %zu checkpoints, got "
                 "%llu\n",
                 shape.phases,
                 static_cast<unsigned long long>(
                     cell_ck.snap.checkpoints_written));
    return 1;
  }

  const double record_ov =
      cell_base.seconds > 0 ? cell_rec.seconds / cell_base.seconds : 0;
  const double replay_ratio =
      cell_rec.seconds > 0 ? cell_rep.seconds / cell_rec.seconds : 0;
  const double ckpt_ms =
      static_cast<double>(cell_ck.snap.checkpoint_ns) / 1e6 /
      static_cast<double>(cell_ck.snap.checkpoints_written);
  const double ckpt_mb =
      static_cast<double>(cell_ck.snap.checkpoint_bytes) / (1u << 20) /
      static_cast<double>(cell_ck.snap.checkpoints_written);

  harness::Table table({"cell", "seconds", "grants", "ckpts", "notes"});
  const auto row = [&](const CellResult& c, const std::string& notes) {
    char sec[32];
    std::snprintf(sec, sizeof sec, "%.3f", c.seconds);
    table.AddRow({c.name, sec, std::to_string(c.snap.replay_grants),
                  std::to_string(c.snap.checkpoints_written), notes});
  };
  char note[96];
  row(cell_base, "");
  std::snprintf(note, sizeof note, "%.2fx vs base", record_ov);
  row(cell_rec, note);
  std::snprintf(note, sizeof note, "%.2fx vs record", replay_ratio);
  row(cell_rep, note);
  std::snprintf(note, sizeof note, "%.2f ms, %.2f MiB per image", ckpt_ms,
                ckpt_mb);
  row(cell_ck, note);
  table.Print();
  std::printf("\nsummary: record %.2fx vs base, replay %.2fx vs record, "
              "checkpoint %.2f ms / %.2f MiB\n",
              record_ov, replay_ratio, ckpt_ms, ckpt_mb);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"replay_overhead\",\n";
    out << "  \"shape\": {\"threads\": " << shape.threads
        << ", \"phases\": " << shape.phases << ", \"iters\": " << shape.iters
        << "},\n  \"summary\": {\n";
    out << "    \"replay_record_overhead\": " << record_ov << ",\n";
    out << "    \"replay_vs_record_wall\": " << replay_ratio << ",\n";
    out << "    \"checkpoint_avg_ms\": " << ckpt_ms << ",\n";
    out << "    \"checkpoint_image_mb\": " << ckpt_mb << "\n";
    out << "  }\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!merge_path.empty() &&
      !MergeIntoPropagationJson(merge_path, record_ov, replay_ratio, ckpt_ms,
                                ckpt_mb)) {
    return 1;
  }

  std::remove(log_path.c_str());
  std::remove((log_path + ".ckpt").c_str());
  std::remove(ckpt_path.c_str());

  // Acceptance (full run only): grant recording is a buffered append under
  // an already-taken turn — if it costs more than 1.5x on a sync-saturated
  // workload, the fail-safe I/O has leaked onto the hot path.
  if (!smoke && record_ov > 1.5) {
    std::fprintf(stderr,
                 "replay_overhead: record overhead %.2fx > 1.5x gate\n",
                 record_ov);
    return 1;
  }
  return 0;
}
