// Determinism self-check driver (--det-check=N).
//
// Records an execution fingerprint of run 1 (schedule digests per sync op,
// memory digests per slice close/apply, final rollup) and verifies runs
// 2..N against it online. Unlike racey_determinism, which only compares
// final workload outputs, a fingerprint divergence is pinpointed at the
// first diverging epoch: the report names the thread, kendo clock or
// vector clock, and the sync object or page involved.
//
// Flags:
//   --det-check=N      total runs (1 record + N-1 verify), default 3
//   --workload=racey   any apps workload name
//   --backend=rfdet-ci rfdet-ci | rfdet-pf | kendo
//   --threads=4 --scale=1
//   --epoch-ops=1      events per digest epoch (1 = exact pinpointing)
//   --paranoia         also enable dlrc_paranoia invariant checks
#include <cstdio>

#include "rfdet/harness/harness.h"

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const int runs = static_cast<int>(flags.Int("det-check", 3));
  const std::string workload_name = flags.Str("workload", "racey");
  const std::string backend_name = flags.Str("backend", "rfdet-ci");

  const apps::Workload* workload = apps::FindWorkload(workload_name);
  if (workload == nullptr) {
    std::fprintf(stderr, "det_check: unknown workload '%s'\n",
                 workload_name.c_str());
    return 2;
  }
  const auto kind = dmt::ParseBackend(backend_name);
  if (!kind) {
    std::fprintf(stderr, "det_check: unknown backend '%s'\n",
                 backend_name.c_str());
    return 2;
  }

  dmt::BackendConfig config;
  config.kind = *kind;
  config.region_bytes = 16u << 20;
  config.fingerprint_epoch_ops =
      static_cast<size_t>(flags.Int("epoch-ops", 1));
  config.dlrc_paranoia = flags.Bool("paranoia", false);

  apps::Params params;
  params.threads = static_cast<size_t>(flags.Int("threads", 4));
  params.scale = static_cast<int>(flags.Int("scale", 1));

  std::printf("det-check: %s on %s, %zu threads, %d runs "
              "(1 record + %d verify), epoch_ops=%zu%s\n\n",
              workload_name.c_str(), backend_name.c_str(), params.threads,
              std::max(runs, 2), std::max(runs, 2) - 1,
              config.fingerprint_epoch_ops,
              config.dlrc_paranoia ? ", paranoia on" : "");

  const harness::DetCheckOutcome out =
      harness::DetCheck(*workload, params, config, runs);

  harness::Table table({"runs", "signature", "rollup", "record s",
                        "verify s (total)", "result"});
  char sig[32], roll[32];
  std::snprintf(sig, sizeof sig, "%016llx",
                static_cast<unsigned long long>(out.signature));
  std::snprintf(roll, sizeof roll, "%016llx",
                static_cast<unsigned long long>(out.rollup));
  table.AddRow({std::to_string(out.runs), sig, roll,
                harness::FormatSeconds(out.record_seconds),
                harness::FormatSeconds(out.verify_seconds),
                out.ok ? "deterministic" : "DIVERGED"});
  table.Print();

  if (!out.ok) {
    std::printf("\n%s\n", out.failure.c_str());
    return 1;
  }
  std::printf("\nAll %d runs produced the identical execution fingerprint.\n",
              out.runs);
  return 0;
}
