// Chaos/soak campaign for the supervised runtime.
//
// The determinism claim behind checkpoint-resume is falsifiable, so this
// bench falsifies it under fire: N seeded rounds each run the phased
// crash-restart workload (the test_replay shape) under a Supervisor while
// a deterministically chosen inner operation kills the child — rotating
// through _Exit, SIGSEGV, SIGBUS, and abort() — and every fifth round
// additionally arms a deterministic FaultInjector plan at one of the
// infrastructure sites (checkpoint I/O, replay-log I/O, view-memfd
// backing, supervisor IPC). All of those faults are recoverable by
// construction, so the gate is absolute:
//
//   * every round must end SupervisionOutcome::kCompleted, and
//   * the supervised run's final §11 fingerprint rollup must be
//     bit-identical to an uninterrupted reference run of the same shape
//     (kills and infra faults must not be able to change the execution),
//   * recovery must stay inside a bounded budget (avg fork→Ready time).
//
// A final crash-loop scenario kills the child at the same point on every
// attempt before any checkpoint exists: the supervisor must quarantine the
// poison turn after `quarantine_after` deaths (bounded attempts, no
// infinite restart) and the post-mortem bundle must be byte-identical when
// the scenario is run twice.
//
// --merge_json=PATH splices `supervised_resume_ms` and
// `chaos_rounds_bitidentical` into an existing BENCH_propagation.json
// (idempotently, same surgery as replay_overhead).
//
// Flags: --rounds=20 --seed=20260808 --smoke --json=PATH --merge_json=PATH
#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "rfdet/common/fault_injection.h"
#include "rfdet/harness/harness.h"
#include "rfdet/runtime/runtime.h"
#include "rfdet/supervise/supervisor.h"

namespace {

using namespace rfdet;  // NOLINT: bench-local brevity

constexpr size_t kThreads = 2;

struct Shape {
  size_t phases = 6;
  size_t iters = 30;  // locked increments per thread per phase
  MonitorMode monitor = MonitorMode::kInstrumented;
  [[nodiscard]] uint64_t TotalOps() const {
    return static_cast<uint64_t>(kThreads) * phases * iters;
  }
};

struct Layout {
  GAddr counter = kNullGAddr;
  GAddr phase = kNullGAddr;
  GAddr scratch = kNullGAddr;
  GAddr slots = kNullGAddr;
  size_t mutex_id = 0;
};

enum class KillKind : uint8_t { kExit, kSegv, kBus, kAbort };

const char* KillName(KillKind k) {
  switch (k) {
    case KillKind::kExit: return "_Exit(3)";
    case KillKind::kSegv: return "SIGSEGV";
    case KillKind::kBus: return "SIGBUS";
    case KillKind::kAbort: return "abort";
  }
  return "?";
}

struct KillPlan {
  uint64_t at = 0;  // process-local inner-op index that dies (0 = never)
  KillKind kind = KillKind::kExit;
  bool every_attempt = false;  // crash-loop scenario; default: attempt 0 only
};

[[noreturn]] void Die(KillKind kind) {
  switch (kind) {
    case KillKind::kExit: std::_Exit(3);
    case KillKind::kSegv: ::raise(SIGSEGV); break;
    case KillKind::kBus: ::raise(SIGBUS); break;
    case KillKind::kAbort: std::abort();
  }
  std::_Exit(3);  // raise() with a chained-to-default handler never returns
}

// The phased crash-restart workload from tests/test_replay.cpp: the only
// quiescent-and-clean main turn end is the phase boundary, so interval
// checkpoints always land exactly where a restored run resumes.
uint64_t RunWorkload(RfdetRuntime& rt, const Shape& shape, Layout* io_layout,
                     const KillPlan* kill, uint32_t attempt) {
  std::atomic<uint64_t> ops{0};
  Layout a;
  if (rt.Restored()) {
    // Allocation and sync-id assignment are deterministic, so the layout
    // computed by the reference run names the restored objects.
    a = *io_layout;
  } else {
    a.counter = rt.AllocStatic(64);
    a.phase = a.counter + 8;
    a.scratch = a.counter + 16;
    a.slots = rt.AllocStatic(4096, 64);
    a.mutex_id = rt.CreateMutex();
    *io_layout = a;
  }
  const bool armed =
      kill != nullptr && kill->at != 0 && (kill->every_attempt || attempt == 0);
  while (true) {
    const uint64_t p = rt.AtomicLoad(a.phase);
    if (p >= shape.phases) break;
    std::vector<size_t> tids;
    for (size_t t = 0; t < kThreads; ++t) {
      tids.push_back(rt.Spawn([&rt, &shape, &a, &ops, p, t, kill, armed] {
        for (size_t i = 0; i < shape.iters; ++i) {
          if (rt.MutexLock(a.mutex_id) != RfdetErrc::kOk) std::_Exit(9);
          uint64_t v = 0;
          rt.Load(a.counter, &v, sizeof v);
          ++v;
          rt.Store(a.counter, &v, sizeof v);
          rt.MutexUnlock(a.mutex_id);
          const uint64_t w = (p << 8) | (t * 64 + i);
          rt.Store(a.slots + ((p * kThreads + t) * shape.iters + i) * 8, &w,
                   sizeof w);
          rt.Tick(2);
          const uint64_t n = ops.fetch_add(1, std::memory_order_relaxed) + 1;
          if (armed && n >= kill->at) Die(kill->kind);
        }
      }));
    }
    if (rt.Join(tids[0]) != RfdetErrc::kOk) std::_Exit(9);
    const uint64_t tag = 0x5C;
    rt.Store(a.scratch, &tag, sizeof tag);  // keep main's slice dirty here
    if (rt.Join(tids[1]) != RfdetErrc::kOk) std::_Exit(9);
    rt.AtomicStore(a.phase, p + 1);  // clean + quiescent: checkpoints fire
  }
  uint64_t total = 0;
  rt.Load(a.counter, &total, sizeof total);
  if (total != shape.TotalOps()) std::_Exit(8);
  return rt.FinalizeFingerprint();
}

RfdetOptions BaseOptions(const Shape& shape) {
  RfdetOptions o;
  o.monitor = shape.monitor;
  o.region_bytes = 8u << 20;
  o.static_bytes = 1u << 20;
  o.divergence_policy = DivergencePolicy::kReport;
  return o;
}

void RemoveRoundFiles(const std::string& ckpt, const std::string& log,
                      const std::string& fp, size_t retain) {
  for (const std::string& p : CheckpointRingPaths(ckpt, retain)) {
    std::remove(p.c_str());
  }
  std::remove(ckpt.c_str());
  std::remove(log.c_str());
  std::remove(fp.c_str());
}

// Same fixed-layout string surgery as replay_overhead: the JSON is this
// repo's own artifact, not arbitrary input.
void EraseKeyLine(std::string& text, const std::string& key) {
  const std::string needle = "\n    \"" + key + "\":";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return;
  const size_t end = text.find('\n', at + 1);
  if (end == std::string::npos) return;
  text.erase(at, end - at);
}

bool MergeIntoPropagationJson(const std::string& path, double resume_ms,
                              uint64_t rounds_ok) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "chaos_soak: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  EraseKeyLine(text, "supervised_resume_ms");
  EraseKeyLine(text, "chaos_rounds_bitidentical");
  const std::string anchor = "\"summary\": {";
  const size_t at = text.find(anchor);
  if (at == std::string::npos) {
    std::fprintf(stderr, "chaos_soak: no summary object in %s\n",
                 path.c_str());
    return false;
  }
  char keys[160];
  std::snprintf(keys, sizeof keys,
                "\n    \"supervised_resume_ms\": %g,"
                "\n    \"chaos_rounds_bitidentical\": %llu,",
                resume_ms, static_cast<unsigned long long>(rounds_ok));
  text.insert(at + anchor.size(), keys);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "chaos_soak: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const bool smoke = flags.Bool("smoke", false);
  const size_t rounds =
      static_cast<size_t>(flags.Int("rounds", smoke ? 3 : 20));
  const uint64_t seed =
      static_cast<uint64_t>(flags.Int("seed", 20260808));
  const std::string json_path = flags.Str("json", "");
  const std::string merge_path = flags.Str("merge_json", "");

  const std::string ckpt = "chaos_soak_ckpt.img";
  const std::string log = "chaos_soak_log.bin";
  const std::string fp_sup = "chaos_soak_fp_sup.bin";
  const std::string fp_ref = "chaos_soak_fp_ref.bin";
  const std::string pm_path = "chaos_soak_postmortem.txt";
  constexpr size_t kRetain = 2;

  Shape shape;
  if (smoke) {
    shape.phases = 4;
    shape.iters = 10;
  }
  std::printf("chaos_soak: %zu rounds, %zu threads x %zu phases x %zu iters, "
              "seed %llu\n",
              rounds, kThreads, shape.phases, shape.iters,
              static_cast<unsigned long long>(seed));

  // One uninterrupted reference rollup per monitor mode (the pf rounds
  // exercise the memfd-backing fault, so they compare against a pf
  // reference).
  uint64_t ref_rollup[2] = {0, 0};
  bool have_ref[2] = {false, false};
  Layout layout[2];
  const auto reference = [&](MonitorMode monitor) -> uint64_t {
    const size_t idx = monitor == MonitorMode::kInstrumented ? 0 : 1;
    if (have_ref[idx]) return ref_rollup[idx];
    Shape ref_shape = shape;
    ref_shape.monitor = monitor;
    RfdetOptions o = BaseOptions(ref_shape);
    o.fingerprint = FingerprintMode::kRecord;
    o.fingerprint_path = fp_ref;
    RfdetRuntime rt(o);
    ref_rollup[idx] = RunWorkload(rt, ref_shape, &layout[idx], nullptr, 0);
    have_ref[idx] = true;
    return ref_rollup[idx];
  };

  FaultInjector injector;
  std::mt19937_64 rng(seed);
  uint64_t rounds_ok = 0;
  uint64_t resume_samples = 0;
  uint64_t resume_ns_total = 0;
  uint64_t resume_ns_max = 0;
  bool failed = false;

  harness::Table table(
      {"round", "kill", "fault", "attempts", "restarts", "resume ms", "ok"});

  for (size_t r = 0; r < rounds && !failed; ++r) {
    RemoveRoundFiles(ckpt, log, fp_sup, kRetain);
    injector.DisarmAll();
    injector.ResetCounters();

    Shape round_shape = shape;
    const char* fault_name = "none";
    switch (r % 5) {
      case 1:
        injector.Arm(FaultSite::kCheckpointIo, {1, 1, 1.0, 0});
        fault_name = "checkpoint-io";
        break;
      case 2:
        injector.Arm(FaultSite::kReplayIo, {2, 1, 1.0, 0});
        fault_name = "replay-io";
        break;
      case 3:
        // Child-side message loss: every attempt's Ready (always hit 0 of
        // its process) is dropped on the wire. Supervision must carry on
        // from waitpid alone and the Done rollup must still arrive.
        injector.Arm(FaultSite::kSupervisorIpc, {0, 1, 1.0, 0});
        fault_name = "supervisor-ipc";
        break;
      case 4:
        round_shape.monitor = MonitorMode::kPageFault;
        injector.Arm(FaultSite::kRegionBacking, {0, 1, 1.0, 0});
        fault_name = "region-backing";
        break;
      default:
        break;
    }
    const uint64_t want = reference(round_shape.monitor);
    const size_t lidx =
        round_shape.monitor == MonitorMode::kInstrumented ? 0 : 1;

    const uint64_t total = round_shape.TotalOps();
    KillPlan kill;
    kill.at = total / 4 + rng() % (total / 2);  // mid-run, seeded
    kill.kind = static_cast<KillKind>(r % 4);

    SupervisorConfig cfg;
    cfg.runtime = BaseOptions(round_shape);
    cfg.runtime.fingerprint = FingerprintMode::kRecord;
    cfg.runtime.fingerprint_path = fp_sup;
    cfg.runtime.fault_injector = &injector;
    cfg.checkpoint_path = ckpt;
    cfg.checkpoint_interval_turns = 8;
    cfg.checkpoint_retain = kRetain;
    cfg.replay_log_path = log;
    cfg.max_restarts = 8;
    cfg.quarantine_after = 4;  // > kills per round; never trips here
    cfg.heartbeat_interval_ms = 10;
    cfg.injector = &injector;

    Layout body_layout = layout[lidx];
    Supervisor sup(cfg);
    const SupervisionResult res = sup.Run(
        [&round_shape, &body_layout, &kill](const RfdetOptions& opts,
                                            SupervisedChild& ctx) -> int {
          RfdetRuntime rt(opts);
          ctx.Ready(rt);
          const uint64_t rollup =
              RunWorkload(rt, round_shape, &body_layout, &kill, ctx.attempt());
          const StatsSnapshot snap = rt.Snapshot();
          ctx.Finish(rollup, snap.fingerprint_divergences +
                                 snap.replay_divergences);
          return 0;
        });

    resume_samples += res.resume_samples;
    resume_ns_total += res.resume_ns_total;
    if (res.resume_ns_max > resume_ns_max) resume_ns_max = res.resume_ns_max;

    const bool ok = res.outcome == SupervisionOutcome::kCompleted &&
                    res.rollup_valid && res.rollup == want &&
                    res.divergences == 0 && res.crashes >= 1 &&
                    res.resume_mismatches == 0;
    if (ok) {
      ++rounds_ok;
    } else {
      failed = true;
      std::fprintf(stderr,
                   "chaos_soak: round %zu FAILED: outcome=%s rollup=%llx "
                   "(want %llx, valid=%d) crashes=%u divergences=%llu "
                   "mismatches=%u\n",
                   r, SupervisionOutcomeName(res.outcome),
                   static_cast<unsigned long long>(res.rollup),
                   static_cast<unsigned long long>(want),
                   res.rollup_valid ? 1 : 0, res.crashes,
                   static_cast<unsigned long long>(res.divergences),
                   res.resume_mismatches);
      for (const std::string& e : res.events) {
        std::fprintf(stderr, "chaos_soak:   event: %s\n", e.c_str());
      }
    }

    char resume_ms[32];
    std::snprintf(resume_ms, sizeof resume_ms, "%.2f",
                  res.resume_samples == 0
                      ? 0.0
                      : static_cast<double>(res.resume_ns_total /
                                            res.resume_samples) /
                            1e6);
    table.AddRow({std::to_string(r), KillName(kill.kind), fault_name,
                  std::to_string(res.attempts), std::to_string(res.restarts),
                  resume_ms, ok ? "yes" : "NO"});
  }

  // ---- crash-loop quarantine: run the same poison scenario twice ----------
  std::string post_mortems[2];
  bool quarantine_ok = true;
  for (int pass = 0; pass < 2 && !failed; ++pass) {
    RemoveRoundFiles(ckpt, log, fp_sup, kRetain);
    std::remove(pm_path.c_str());
    injector.DisarmAll();
    injector.ResetCounters();

    KillPlan kill;
    kill.at = 5;
    kill.kind = KillKind::kExit;
    kill.every_attempt = true;  // dies before any checkpoint, every time

    SupervisorConfig cfg;
    cfg.runtime = BaseOptions(shape);
    cfg.checkpoint_path = ckpt;
    cfg.checkpoint_interval_turns = 0;  // explicit-only: no image can form
    cfg.checkpoint_retain = kRetain;
    cfg.replay_log_path = log;
    cfg.max_restarts = 10;
    cfg.quarantine_after = 3;
    cfg.heartbeat_interval_ms = 10;
    cfg.post_mortem_path = pm_path;

    Layout body_layout;
    Supervisor sup(cfg);
    Shape qshape = shape;
    const SupervisionResult res = sup.Run(
        [&qshape, &body_layout, &kill](const RfdetOptions& opts,
                                       SupervisedChild& ctx) -> int {
          RfdetRuntime rt(opts);
          ctx.Ready(rt);
          RunWorkload(rt, qshape, &body_layout, &kill, ctx.attempt());
          ctx.Finish(0, 0);
          return 0;
        });
    post_mortems[pass] = res.post_mortem;
    if (res.outcome != SupervisionOutcome::kQuarantined ||
        res.attempts != cfg.quarantine_after || res.post_mortem.empty()) {
      quarantine_ok = false;
      std::fprintf(stderr,
                   "chaos_soak: quarantine pass %d FAILED: outcome=%s "
                   "attempts=%u post-mortem %zu bytes\n",
                   pass, SupervisionOutcomeName(res.outcome), res.attempts,
                   res.post_mortem.size());
    }
  }
  if (!failed && quarantine_ok && post_mortems[0] != post_mortems[1]) {
    quarantine_ok = false;
    std::fprintf(stderr,
                 "chaos_soak: post-mortems differ across identical runs:\n"
                 "---- pass 0 ----\n%s---- pass 1 ----\n%s",
                 post_mortems[0].c_str(), post_mortems[1].c_str());
  }

  const double resume_ms_avg =
      resume_samples == 0
          ? 0.0
          : static_cast<double>(resume_ns_total / resume_samples) / 1e6;
  table.Print();
  std::printf("\nsummary: %llu/%zu rounds bit-identical, quarantine %s, "
              "resume avg %.2f ms (max %.2f ms)\n",
              static_cast<unsigned long long>(rounds_ok), rounds,
              quarantine_ok ? "byte-identical" : "FAILED", resume_ms_avg,
              static_cast<double>(resume_ns_max) / 1e6);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"chaos_soak\",\n";
    out << "  \"shape\": {\"rounds\": " << rounds
        << ", \"threads\": " << kThreads << ", \"phases\": " << shape.phases
        << ", \"iters\": " << shape.iters << "},\n  \"summary\": {\n";
    out << "    \"supervised_resume_ms\": " << resume_ms_avg << ",\n";
    out << "    \"chaos_rounds_bitidentical\": " << rounds_ok << "\n";
    out << "  }\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!merge_path.empty() &&
      !MergeIntoPropagationJson(merge_path, resume_ms_avg, rounds_ok)) {
    return 1;
  }

  RemoveRoundFiles(ckpt, log, fp_sup, kRetain);
  std::remove(fp_ref.c_str());
  std::remove(pm_path.c_str());

  if (failed || rounds_ok != rounds || !quarantine_ok) return 1;
  // Recovery budget: resume is fork + runtime construction + restoring a
  // <=8 MiB image — if the average crosses this bound, restore has
  // regressed to something far beyond image-size costs.
  if (!smoke && resume_ms_avg > 1500.0) {
    std::fprintf(stderr, "chaos_soak: resume avg %.2f ms > 1500 ms budget\n",
                 resume_ms_avg);
    return 1;
  }
  return 0;
}
