// Micro-benchmarks of the runtime's building blocks (google-benchmark):
// vector clocks, page diffing, modification-list application, the
// deterministic allocator, Kendo lock round-trips, and slice propagation.
// These quantify the design choices DESIGN.md calls out (byte-granularity
// diff cost, COW page handling, propagation throughput).
#include <benchmark/benchmark.h>

#include <cstring>
#include <random>

#include "rfdet/kendo/kendo.h"
#include "rfdet/mem/det_allocator.h"
#include "rfdet/mem/mod_list.h"
#include "rfdet/mem/thread_view.h"
#include "rfdet/runtime/runtime.h"
#include "rfdet/simd/kernels.h"
#include "rfdet/time/vector_clock.h"

namespace {

using namespace rfdet;  // NOLINT: bench-local brevity

void BM_VectorClockJoin(benchmark::State& state) {
  const auto dims = static_cast<size_t>(state.range(0));
  VectorClock a(dims);
  VectorClock b(dims);
  for (size_t i = 0; i < dims; ++i) {
    a.Set(i, i * 3);
    b.Set(i, i * 2 + 7);
  }
  for (auto _ : state) {
    VectorClock c = a;
    c.Join(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_VectorClockJoin)->Arg(4)->Arg(16)->Arg(64);

void BM_VectorClockLessEq(benchmark::State& state) {
  const auto dims = static_cast<size_t>(state.range(0));
  VectorClock a(dims);
  VectorClock b(dims);
  for (size_t i = 0; i < dims; ++i) {
    a.Set(i, i);
    b.Set(i, i + 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.LessEq(b));
  }
}
BENCHMARK(BM_VectorClockLessEq)->Arg(4)->Arg(16)->Arg(64);

void BM_PageDiff(benchmark::State& state) {
  // range(0) = number of modified bytes within the 4K page.
  alignas(64) std::byte snap[kPageSize] = {};
  alignas(64) std::byte cur[kPageSize] = {};
  const auto dirty = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < dirty; ++i) {
    cur[(i * 97) % kPageSize] = std::byte{0xff};
  }
  for (auto _ : state) {
    ModList mods;
    mods.AppendPageDiff(0, snap, cur);
    benchmark::DoNotOptimize(mods);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kPageSize);
}
BENCHMARK(BM_PageDiff)->Arg(0)->Arg(64)->Arg(1024)->Arg(4096);

// ---- per-tier kernel cells -------------------------------------------------
// range(0) is a simd::KernelTier. Only the tiers this build/CPU can run
// are registered (SupportedTiers), so every emitted row is a real run.

void TierArgs(benchmark::internal::Benchmark* b) {
  for (const simd::KernelTier t : simd::SupportedTiers()) {
    b->Arg(static_cast<int>(t));
  }
}

const simd::KernelOps& TierOps(const benchmark::State& state) {
  const auto tier = static_cast<simd::KernelTier>(state.range(0));
  const simd::KernelOps* ops = simd::KernelsForTier(tier);
  return ops != nullptr ? *ops
                        : *simd::KernelsForTier(simd::KernelTier::kScalar);
}

void BM_PageDiffKernel(benchmark::State& state) {
  const simd::KernelOps& ops = TierOps(state);
  // Half-page contiguous edit: the diff-dominated shape close_scaling
  // drives (full-page scan + a large byte-refined run).
  alignas(64) std::byte snap[kPageSize] = {};
  alignas(64) std::byte cur[kPageSize] = {};
  std::memset(cur + 1024, 0x5a, 2048);
  simd::DiffRun runs[simd::kMaxDiffRuns];
  for (auto _ : state) {
    const size_t n = ops.page_diff_runs(snap, cur, runs);
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(runs);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kPageSize);
}
BENCHMARK(BM_PageDiffKernel)->Apply(TierArgs);

void BM_FnvLanesKernel(benchmark::State& state) {
  const simd::KernelOps& ops = TierOps(state);
  std::vector<unsigned char> buf(64 * 1024);
  std::mt19937_64 rng(7);
  for (auto& b : buf) b = static_cast<unsigned char>(rng());
  uint64_t lanes[4];
  for (auto _ : state) {
    lanes[0] = lanes[1] = lanes[2] = lanes[3] = 0xcbf29ce484222325u;
    ops.fnv_lanes32(lanes, buf.data(), buf.size());
    benchmark::DoNotOptimize(lanes);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_FnvLanesKernel)->Apply(TierArgs);

void BM_CopyBytesKernel(benchmark::State& state) {
  const simd::KernelOps& ops = TierOps(state);
  alignas(64) std::byte src[kPageSize];
  alignas(64) std::byte dst[kPageSize];
  std::memset(src, 0x33, sizeof src);
  for (auto _ : state) {
    ops.copy_bytes(dst, src, kPageSize);
    benchmark::DoNotOptimize(dst);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kPageSize);
}
BENCHMARK(BM_CopyBytesKernel)->Apply(TierArgs);

void BM_ModListApply(benchmark::State& state) {
  ModList mods;
  std::byte payload[64];
  std::memset(payload, 0xab, sizeof payload);
  for (int i = 0; i < 64; ++i) {
    mods.Append(static_cast<GAddr>(i) * 128, payload);
  }
  MetadataArena arena;
  ThreadView view(1u << 20, MonitorMode::kInstrumented, &arena);
  for (auto _ : state) {
    view.ApplyRemote(mods, /*lazy=*/false);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64 *
                          64);
}
BENCHMARK(BM_ModListApply);

void BM_InstrumentedStore(benchmark::State& state) {
  MetadataArena arena;
  ThreadView view(4u << 20, MonitorMode::kInstrumented, &arena);
  uint64_t v = 0;
  ModList sink;
  size_t n = 0;
  for (auto _ : state) {
    view.Store((n++ % 4096) * 8, &v, sizeof v);
    ++v;
    if (n % 4096 == 0) {
      sink.Clear();
      view.CollectModifications(sink);  // bound snapshot growth
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_InstrumentedStore);

void BM_DetAllocator(benchmark::State& state) {
  DetAllocator alloc(DetAllocator::Config{});
  for (auto _ : state) {
    const GAddr a = alloc.Alloc(0, 64);
    benchmark::DoNotOptimize(a);
    alloc.Free(0, a);
  }
}
BENCHMARK(BM_DetAllocator);

void BM_KendoUncontendedLock(benchmark::State& state) {
  RfdetOptions opts;
  opts.region_bytes = 4u << 20;
  opts.static_bytes = 1u << 20;
  RfdetRuntime rt(opts);
  const size_t m = rt.CreateMutex();
  for (auto _ : state) {
    rt.MutexLock(m);
    rt.MutexUnlock(m);
  }
}
BENCHMARK(BM_KendoUncontendedLock);

void BM_SliceRoundTrip(benchmark::State& state) {
  // One release/acquire pair's worth of work: store, close slice, apply.
  RfdetOptions opts;
  opts.region_bytes = 4u << 20;
  opts.static_bytes = 1u << 20;
  RfdetRuntime rt(opts);
  const size_t m = rt.CreateMutex();
  const GAddr a = rt.AllocStatic(4096);
  uint64_t v = 1;
  for (auto _ : state) {
    rt.MutexLock(m);
    rt.Store(a + (v % 500) * 8, &v, sizeof v);
    ++v;
    rt.MutexUnlock(m);
  }
}
BENCHMARK(BM_SliceRoundTrip);

}  // namespace
