// Micro-benchmarks of the runtime's building blocks (google-benchmark):
// vector clocks, page diffing, modification-list application, the
// deterministic allocator, Kendo lock round-trips, and slice propagation.
// These quantify the design choices DESIGN.md calls out (byte-granularity
// diff cost, COW page handling, propagation throughput).
#include <benchmark/benchmark.h>

#include <cstring>

#include "rfdet/kendo/kendo.h"
#include "rfdet/mem/det_allocator.h"
#include "rfdet/mem/mod_list.h"
#include "rfdet/mem/thread_view.h"
#include "rfdet/runtime/runtime.h"
#include "rfdet/time/vector_clock.h"

namespace {

using namespace rfdet;  // NOLINT: bench-local brevity

void BM_VectorClockJoin(benchmark::State& state) {
  const auto dims = static_cast<size_t>(state.range(0));
  VectorClock a(dims);
  VectorClock b(dims);
  for (size_t i = 0; i < dims; ++i) {
    a.Set(i, i * 3);
    b.Set(i, i * 2 + 7);
  }
  for (auto _ : state) {
    VectorClock c = a;
    c.Join(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_VectorClockJoin)->Arg(4)->Arg(16)->Arg(64);

void BM_VectorClockLessEq(benchmark::State& state) {
  const auto dims = static_cast<size_t>(state.range(0));
  VectorClock a(dims);
  VectorClock b(dims);
  for (size_t i = 0; i < dims; ++i) {
    a.Set(i, i);
    b.Set(i, i + 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.LessEq(b));
  }
}
BENCHMARK(BM_VectorClockLessEq)->Arg(4)->Arg(16)->Arg(64);

void BM_PageDiff(benchmark::State& state) {
  // range(0) = number of modified bytes within the 4K page.
  alignas(64) std::byte snap[kPageSize] = {};
  alignas(64) std::byte cur[kPageSize] = {};
  const auto dirty = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < dirty; ++i) {
    cur[(i * 97) % kPageSize] = std::byte{0xff};
  }
  for (auto _ : state) {
    ModList mods;
    mods.AppendPageDiff(0, snap, cur);
    benchmark::DoNotOptimize(mods);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kPageSize);
}
BENCHMARK(BM_PageDiff)->Arg(0)->Arg(64)->Arg(1024)->Arg(4096);

void BM_ModListApply(benchmark::State& state) {
  ModList mods;
  std::byte payload[64];
  std::memset(payload, 0xab, sizeof payload);
  for (int i = 0; i < 64; ++i) {
    mods.Append(static_cast<GAddr>(i) * 128, payload);
  }
  MetadataArena arena;
  ThreadView view(1u << 20, MonitorMode::kInstrumented, &arena);
  for (auto _ : state) {
    view.ApplyRemote(mods, /*lazy=*/false);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64 *
                          64);
}
BENCHMARK(BM_ModListApply);

void BM_InstrumentedStore(benchmark::State& state) {
  MetadataArena arena;
  ThreadView view(4u << 20, MonitorMode::kInstrumented, &arena);
  uint64_t v = 0;
  ModList sink;
  size_t n = 0;
  for (auto _ : state) {
    view.Store((n++ % 4096) * 8, &v, sizeof v);
    ++v;
    if (n % 4096 == 0) {
      sink.Clear();
      view.CollectModifications(sink);  // bound snapshot growth
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_InstrumentedStore);

void BM_DetAllocator(benchmark::State& state) {
  DetAllocator alloc(DetAllocator::Config{});
  for (auto _ : state) {
    const GAddr a = alloc.Alloc(0, 64);
    benchmark::DoNotOptimize(a);
    alloc.Free(0, a);
  }
}
BENCHMARK(BM_DetAllocator);

void BM_KendoUncontendedLock(benchmark::State& state) {
  RfdetOptions opts;
  opts.region_bytes = 4u << 20;
  opts.static_bytes = 1u << 20;
  RfdetRuntime rt(opts);
  const size_t m = rt.CreateMutex();
  for (auto _ : state) {
    rt.MutexLock(m);
    rt.MutexUnlock(m);
  }
}
BENCHMARK(BM_KendoUncontendedLock);

void BM_SliceRoundTrip(benchmark::State& state) {
  // One release/acquire pair's worth of work: store, close slice, apply.
  RfdetOptions opts;
  opts.region_bytes = 4u << 20;
  opts.static_bytes = 1u << 20;
  RfdetRuntime rt(opts);
  const size_t m = rt.CreateMutex();
  const GAddr a = rt.AllocStatic(4096);
  uint64_t v = 1;
  for (auto _ : state) {
    rt.MutexLock(m);
    rt.Store(a + (v % 500) * 8, &v, sizeof v);
    ++v;
    rt.MutexUnlock(m);
  }
}
BENCHMARK(BM_SliceRoundTrip);

}  // namespace
