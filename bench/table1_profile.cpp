// Table 1 — profiling data of benchmark executions with 4 threads.
//
// Columns mirror the paper: synchronization-operation counts (lock/unlock,
// wait/signal, fork/join), memory-operation counts (mem = load + store,
// plus stores that triggered a page copy), memory footprints under
// pthreads / RFDet / DThreads, and RFDet's GC count.
//
// Flags: --threads=4 --scale=2 --metadata_mb=256 --gc=0.9
#include <cstdio>

#include "rfdet/harness/harness.h"

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  apps::Params params;
  params.threads = static_cast<size_t>(flags.Int("threads", 4));
  params.scale = static_cast<int>(flags.Int("scale", 2));
  params.seed = static_cast<uint64_t>(flags.Int("seed", 42));

  std::printf("Table 1: profiling data (%zu threads, scale %d)\n\n",
              params.threads, params.scale);
  harness::Table table({"benchmark", "lock/unlock", "wait/signal",
                        "fork/join", "mem ops", "loads", "stores",
                        "store w/copy", "pthreads(MB)", "RFDet(MB)",
                        "DThreads(MB)", "GC"});

  for (const apps::Workload* w : apps::AllWorkloads()) {
    if (w->Suite() == "stress" || w->Suite() == "extension") continue;
    dmt::BackendConfig rf;
    rf.kind = dmt::BackendKind::kRfdetCi;
    rf.region_bytes = 64u << 20;
    rf.static_bytes = 32u << 20;
    rf.metadata_bytes = static_cast<size_t>(flags.Int("metadata_mb", 256))
                        << 20;
    rf.gc_threshold = std::stod(flags.Str("gc", "0.9"));
    const harness::RunOutcome rfdet = harness::Measure(*w, params, rf);

    dmt::BackendConfig pt;
    pt.kind = dmt::BackendKind::kPthreads;
    pt.region_bytes = 64u << 20;
    pt.static_bytes = 32u << 20;
    const harness::RunOutcome pthreads = harness::Measure(*w, params, pt);

    dmt::BackendConfig dt;
    dt.kind = dmt::BackendKind::kDthreads;
    dt.region_bytes = 64u << 20;
    dt.static_bytes = 32u << 20;
    const harness::RunOutcome dthreads = harness::Measure(*w, params, dt);

    const rfdet::StatsSnapshot& s = rfdet.stats;
    char wait_signal[48];
    std::snprintf(wait_signal, sizeof wait_signal, "%llu/%llu",
                  static_cast<unsigned long long>(s.cond_waits),
                  static_cast<unsigned long long>(s.cond_signals));
    table.AddRow({
        w->Name(),
        harness::FormatCount(s.locks),
        wait_signal,
        harness::FormatCount(s.forks),
        harness::FormatCount(s.MemOps()),
        harness::FormatCount(s.loads),
        harness::FormatCount(s.stores),
        harness::FormatCount(s.stores_with_copy),
        harness::FormatBytesMb(pthreads.footprint_bytes),
        harness::FormatBytesMb(rfdet.footprint_bytes),
        harness::FormatBytesMb(dthreads.footprint_bytes),
        harness::FormatCount(s.gc_count),
    });
  }
  table.Print();
  std::printf("\nNotes: mem ops are 8-byte-word-equivalent instrumented "
              "accesses; footprints are resident shared pages plus "
              "metadata-space peak (RFDet) — the paper's Column 10-12 "
              "analogues on this substrate.\n");
  return 0;
}
