// Figure 1 / §3.1 ablation — what global barriers cost.
//
// The paper's motivating scenario: threads T1 and T3 communicate through a
// lock while T2 only computes. Under DLRC, T2 never blocks; under
// global-barrier systems (DThreads, CoreDet), T1/T3's synchronization
// drags T2 into fences (DThreads) or T2's quantum boundaries stall T1/T3
// (CoreDet). The expected shape: rfdet-ci ≈ kendo ≪ dthreads, with
// dthreads degrading as T2's compute grows while rfdet stays flat.
//
// Flags: --lock_rounds=200 --compute=8 (T2 work multiplier) --repeat=3
#include <chrono>
#include <cstdio>

#include "rfdet/harness/harness.h"

namespace {

// Runs the scenario on env; returns wall seconds.
double RunScenario(dmt::Env& env, size_t lock_rounds, size_t compute) {
  const auto counter = dmt::MakeStaticArray<uint64_t>(env, 1);
  const auto scratch = dmt::MakeStaticArray<uint64_t>(env, 1024);
  const size_t mtx = env.CreateMutex();

  const auto start = std::chrono::steady_clock::now();
  auto locker = [&] {
    for (size_t i = 0; i < lock_rounds; ++i) {
      env.Lock(mtx);
      env.Put<uint64_t>(counter.addr(0),
                        env.Get<uint64_t>(counter.addr(0)) + 1);
      env.Unlock(mtx);
      env.Tick(16);
    }
  };
  const size_t t1 = env.Spawn(locker);
  const size_t t3 = env.Spawn(locker);
  const size_t t2 = env.Spawn([&] {
    // Compute-only thread: private-chunk stores, no synchronization.
    for (size_t r = 0; r < lock_rounds * compute; ++r) {
      uint64_t buf[64];
      scratch.Read(env, 0, buf, 64);
      for (auto& v : buf) v = v * 0x9e3779b97f4a7c15ULL + r;
      scratch.Write(env, 0, buf, 64);
    }
  });
  env.Join(t1);
  env.Join(t3);
  env.Join(t2);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const size_t lock_rounds =
      static_cast<size_t>(flags.Int("lock_rounds", 200));
  const size_t compute = static_cast<size_t>(flags.Int("compute", 8));
  const int repeat = static_cast<int>(flags.Int("repeat", 3));

  std::printf("Figure 1 ablation: T1/T3 share a lock %zux while T2 computes "
              "(x%zu)\n\n", lock_rounds, compute);
  harness::Table table({"backend", "time(s)", "vs pthreads"});
  double base = 0;
  for (const dmt::BackendKind kind :
       {dmt::BackendKind::kPthreads, dmt::BackendKind::kKendo,
        dmt::BackendKind::kRfdetCi, dmt::BackendKind::kDthreads,
        dmt::BackendKind::kCoredet}) {
    double best = 0;
    for (int i = 0; i < repeat; ++i) {
      dmt::BackendConfig config;
      config.kind = kind;
      config.region_bytes = 16u << 20;
      auto env = dmt::CreateEnv(config);
      const double s = RunScenario(*env, lock_rounds, compute);
      if (i == 0 || s < best) best = s;
    }
    if (kind == dmt::BackendKind::kPthreads) base = best;
    table.AddRow({std::string(dmt::ToString(kind)),
                  harness::FormatSeconds(best),
                  harness::FormatRatio(best / base)});
  }
  table.Print();
  std::printf("\nExpected shape: rfdet-ci stays near kendo (no global "
              "barriers); dthreads/coredet pay for dragging the "
              "compute-only thread into global phases.\n");
  return 0;
}
