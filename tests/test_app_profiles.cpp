// Table-1 profile regressions: each kernel must keep the synchronization
// and sharing character the paper relies on (water-ns lock-heavy vs
// water-sp, Phoenix lock-free, pipelines wait/signal-heavy, …), and every
// kernel must run at both 1 and 8 threads.
#include <gtest/gtest.h>

#include "rfdet/apps/workload.h"
#include "rfdet/backends/backends.h"
#include "rfdet/harness/harness.h"
#include "rfdet/runtime/runtime.h"

namespace {

harness::RunOutcome RunCi(const char* name, size_t threads) {
  const apps::Workload* w = apps::FindWorkload(name);
  EXPECT_NE(w, nullptr) << name;
  dmt::BackendConfig config;
  config.kind = dmt::BackendKind::kRfdetCi;
  config.region_bytes = 16u << 20;
  apps::Params p;
  p.threads = threads;
  return harness::Measure(*w, p, config);
}

TEST(AppProfiles, WaterNsIsMuchMoreLockHeavyThanWaterSp) {
  const auto ns = RunCi("water-ns", 4);
  const auto sp = RunCi("water-sp", 4);
  EXPECT_GT(ns.stats.locks, 4 * sp.stats.locks);
}

TEST(AppProfiles, PhoenixKernelsAreForkJoinOnly) {
  for (const char* name :
       {"linear_regression", "matrix_multiply", "wordcount",
        "string_match"}) {
    const auto out = RunCi(name, 4);
    EXPECT_EQ(out.stats.locks, 0u) << name;
    EXPECT_EQ(out.stats.cond_waits, 0u) << name;
    EXPECT_EQ(out.stats.forks, 4u) << name;
  }
}

TEST(AppProfiles, PipelinesAreWaitSignalHeavy) {
  for (const char* name : {"dedup", "ferret"}) {
    const auto out = RunCi(name, 4);
    EXPECT_GT(out.stats.locks, 300u) << name;
    EXPECT_GT(out.stats.cond_signals, 50u) << name;
  }
}

TEST(AppProfiles, Splash2UsesLockBasedBarriers) {
  // The c.m4.null.POSIX configuration: barriers come from lock/cond, so
  // every SPLASH-2 kernel must report locks and waits but no native
  // barrier operations.
  for (const apps::Workload* w : apps::AllWorkloads()) {
    if (w->Suite() != "splash2") continue;
    dmt::BackendConfig config;
    config.kind = dmt::BackendKind::kRfdetCi;
    config.region_bytes = 16u << 20;
    apps::Params p;
    p.threads = 2;
    const auto out = harness::Measure(*w, p, config);
    EXPECT_GT(out.stats.locks, 0u) << w->Name();
    EXPECT_GT(out.stats.cond_waits + out.stats.cond_signals, 0u)
        << w->Name();
    EXPECT_EQ(out.stats.barriers, 0u) << w->Name();
  }
}

TEST(AppProfiles, LoadsOutnumberStores) {
  // Paper §5.3: stores are the minority of memory operations. (Kernels
  // whose traffic is dominated by their own setup writes, like
  // linear_regression, are exactly balanced and excluded.)
  for (const char* name : {"ocean", "water-ns", "ferret"}) {
    const auto out = RunCi(name, 4);
    EXPECT_GT(out.stats.loads, out.stats.stores) << name;
  }
}

TEST(AppProfiles, SnapshotsAreASmallFractionOfStores) {
  for (const char* name : {"ocean", "fft", "radix"}) {
    const auto out = RunCi(name, 4);
    EXPECT_LT(out.stats.stores_with_copy, out.stats.stores / 10) << name;
  }
}

TEST(AppProfiles, RfdetFootprintExceedsPthreads) {
  // Column 10 vs 11: isolated spaces multiply the shared footprint.
  for (const char* name : {"linear_regression", "radix"}) {
    const apps::Workload* w = apps::FindWorkload(name);
    dmt::BackendConfig rf;
    rf.kind = dmt::BackendKind::kRfdetCi;
    rf.region_bytes = 16u << 20;
    dmt::BackendConfig pt;
    pt.kind = dmt::BackendKind::kPthreads;
    pt.region_bytes = 16u << 20;
    apps::Params p;
    p.threads = 4;
    const auto rfdet = harness::Measure(*w, p, rf);
    const auto pthreads = harness::Measure(*w, p, pt);
    EXPECT_GT(rfdet.footprint_bytes, pthreads.footprint_bytes) << name;
  }
}

class AppThreadSweepTest
    : public ::testing::TestWithParam<const apps::Workload*> {};
INSTANTIATE_TEST_SUITE_P(AllApps, AppThreadSweepTest,
                         ::testing::ValuesIn(apps::AllWorkloads()),
                         [](const auto& param_info) {
                           std::string n = param_info.param->Name();
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(AppThreadSweepTest, RunsAtOneAndEightThreads) {
  const apps::Workload& w = *GetParam();
  for (const size_t threads : {1u, 8u}) {
    dmt::BackendConfig config;
    config.kind = dmt::BackendKind::kRfdetCi;
    config.region_bytes = 16u << 20;
    apps::Params p;
    p.threads = threads;
    const uint64_t sig = w.Run(*dmt::CreateEnv(config), p).signature;
    EXPECT_NE(sig, 0u) << w.Name() << " @" << threads;
  }
}

TEST(LazyWritesCoalescing, RepeatedCriticalSectionsCoalesce) {
  // The paper's §4.5 example: ~20 critical sections updating the same
  // location between the receiver's accesses — lazy writes must coalesce
  // the parked updates so only the most recent value is ever written.
  rfdet::RfdetOptions o;
  o.region_bytes = 8u << 20;
  o.static_bytes = 1u << 20;
  o.lazy_writes = true;
  rfdet::RfdetRuntime rt(o);
  // x on its own page: the receiver polls `done` without ever touching
  // x's page, so x's parked updates accumulate and coalesce.
  const rfdet::GAddr x = rt.AllocStatic(sizeof(uint64_t), 4096);
  const rfdet::GAddr done = rt.AllocStatic(sizeof(uint64_t), 4096);
  const size_t m = rt.CreateMutex();
  const size_t tid = rt.Spawn([&] {
    for (uint64_t i = 1; i <= 20; ++i) {
      rt.MutexLock(m);
      rt.Store(x, &i, sizeof i);
      rt.MutexUnlock(m);
      rt.Tick(200);
    }
    rt.MutexLock(m);
    const uint64_t one = 1;
    rt.Store(done, &one, sizeof one);
    rt.MutexUnlock(m);
  });
  // Receiver: acquire repeatedly WITHOUT touching x, so updates park.
  uint64_t d = 0;
  while (d == 0) {
    rt.MutexLock(m);
    rt.Load(done, &d, sizeof d);
    rt.MutexUnlock(m);
    rt.Tick(50);
  }
  uint64_t v = 0;
  rt.Load(x, &v, sizeof v);  // first touch applies the coalesced value
  EXPECT_EQ(v, 20u);
  const rfdet::StatsSnapshot s = rt.Snapshot();
  EXPECT_GT(s.lazy_runs_parked, 0u);
  EXPECT_GT(s.lazy_runs_coalesced, 0u);  // superseded updates never written
  rt.Join(tid);
}

}  // namespace
