// Cross-backend workload integration tests.
//
// These pin the repository's central correctness claims:
//  1. Race-free kernels produce the SAME signature on every backend
//     (DLRC preserves sequential consistency for race-free programs, §3.3).
//  2. Strong-DMT backends (rfdet-ci/pf, dthreads, coredet) replay to
//     identical signatures — including racey, which is nothing but races.
//  3. The two monitor modes (ci / pf) are observationally equivalent.
#include <gtest/gtest.h>

#include <map>

#include "rfdet/apps/workload.h"
#include "rfdet/backends/backends.h"

namespace {

using apps::AllWorkloads;
using apps::Params;
using apps::Workload;
using dmt::BackendConfig;
using dmt::BackendKind;

BackendConfig TestConfig(BackendKind kind) {
  BackendConfig c;
  c.kind = kind;
  c.region_bytes = 16u << 20;
  c.static_bytes = 4u << 20;
  c.metadata_bytes = 64u << 20;
  return c;
}

uint64_t RunOnce(BackendKind kind, const Workload& w, size_t threads) {
  auto env = dmt::CreateEnv(TestConfig(kind));
  Params p;
  p.threads = threads;
  p.scale = 1;
  return w.Run(*env, p).signature;
}

class WorkloadMatrixTest : public ::testing::TestWithParam<const Workload*> {
};

INSTANTIATE_TEST_SUITE_P(AllApps, WorkloadMatrixTest,
                         ::testing::ValuesIn(AllWorkloads()),
                         [](const auto& param_info) {
                           std::string n = param_info.param->Name();
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(WorkloadMatrixTest, RaceFreeKernelsAgreeAcrossBackends) {
  const Workload& w = *GetParam();
  std::map<std::string, uint64_t> sigs;
  for (const BackendKind kind : dmt::AllBackends()) {
    sigs[std::string(dmt::ToString(kind))] = RunOnce(kind, w, 2);
  }
  if (!w.RaceFree()) {
    GTEST_SKIP() << "racy kernel: cross-backend agreement not required";
  }
  const uint64_t expected = sigs.begin()->second;
  for (const auto& [name, sig] : sigs) {
    EXPECT_EQ(sig, expected) << "backend " << name << " diverged on "
                             << w.Name();
  }
}

TEST_P(WorkloadMatrixTest, RfdetCiReplaysDeterministically) {
  const Workload& w = *GetParam();
  const uint64_t first = RunOnce(BackendKind::kRfdetCi, w, 2);
  const uint64_t second = RunOnce(BackendKind::kRfdetCi, w, 2);
  EXPECT_EQ(first, second);
}

TEST_P(WorkloadMatrixTest, MonitorModesAreObservationallyEquivalent) {
  const Workload& w = *GetParam();
  // Holds even for racey: slice contents, clocks and conflict resolution
  // are independent of how modified pages are detected.
  EXPECT_EQ(RunOnce(BackendKind::kRfdetCi, w, 2),
            RunOnce(BackendKind::kRfdetPf, w, 2));
}

TEST(RaceyDeterminism, RfdetIsStronglyDeterministic) {
  const Workload* racey = apps::FindWorkload("racey");
  ASSERT_NE(racey, nullptr);
  const uint64_t first = RunOnce(BackendKind::kRfdetCi, *racey, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(RunOnce(BackendKind::kRfdetCi, *racey, 4), first);
  }
}

TEST(RaceyDeterminism, LockstepBackendsAreDeterministicToo) {
  const Workload* racey = apps::FindWorkload("racey");
  ASSERT_NE(racey, nullptr);
  for (const BackendKind kind :
       {BackendKind::kDthreads, BackendKind::kCoredet}) {
    const uint64_t first = RunOnce(kind, *racey, 4);
    EXPECT_EQ(RunOnce(kind, *racey, 4), first)
        << dmt::ToString(kind);
  }
}

TEST(RaceyDeterminism, DthreadsPageFaultMonitorIsDeterministicToo) {
  // The lockstep baseline with DThreads' real monitoring mechanism
  // (mprotect + page faults) must replay as well.
  const Workload* racey = apps::FindWorkload("racey");
  BackendConfig c = TestConfig(BackendKind::kDthreads);
  c.lockstep_monitor = rfdet::MonitorMode::kPageFault;
  auto run = [&] {
    auto env = dmt::CreateEnv(c);
    Params p;
    p.threads = 3;
    return racey->Run(*env, p).signature;
  };
  const uint64_t first = run();
  EXPECT_EQ(run(), first);
}

TEST(ThreadScaling, SignaturesStableFrom1To8Threads) {
  // Thread count is an *input* (paper §3.4): signatures may differ between
  // thread counts, but each count must replay identically.
  const Workload* w = apps::FindWorkload("radix");
  ASSERT_NE(w, nullptr);
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(RunOnce(BackendKind::kRfdetCi, *w, threads),
              RunOnce(BackendKind::kRfdetCi, *w, threads))
        << threads << " threads";
  }
}

}  // namespace
