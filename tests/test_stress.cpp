// Stress and lifecycle hygiene: spawn trees, runtime churn, and sequential
// backend reuse in one process.
#include <gtest/gtest.h>

#include "rfdet/rfdet.h"

namespace rfdet {
namespace {

RfdetOptions Small() {
  RfdetOptions o;
  o.region_bytes = 8u << 20;
  o.static_bytes = 1u << 20;
  return o;
}

TEST(Stress, SpawnTreeReplaysDeterministically) {
  auto run = [] {
    RfdetRuntime rt(Small());
    const GAddr cells = rt.AllocStatic(16 * sizeof(uint64_t));
    const size_t m = rt.CreateMutex();
    std::vector<size_t> level1;
    for (uint64_t a = 0; a < 3; ++a) {
      level1.push_back(rt.Spawn([&, a] {
        std::vector<size_t> level2;
        for (uint64_t b = 0; b < 2; ++b) {
          level2.push_back(rt.Spawn([&, a, b] {
            rt.MutexLock(m);
            const GAddr slot = cells + ((a * 2 + b) % 16) * 8;
            uint64_t v = 0;
            rt.Load(slot, &v, sizeof v);
            v = v * 31 + a * 10 + b;
            rt.Store(slot, &v, sizeof v);
            rt.MutexUnlock(m);
          }));
        }
        for (const size_t t : level2) rt.Join(t);
      }));
    }
    for (const size_t t : level1) rt.Join(t);
    uint64_t digest = 14695981039346656037ull;
    for (int i = 0; i < 16; ++i) {
      uint64_t v = 0;
      rt.Load(cells + i * 8, &v, sizeof v);
      digest = (digest ^ v) * 1099511628211ull;
    }
    return digest;
  };
  const uint64_t first = run();
  EXPECT_EQ(run(), first);
  EXPECT_EQ(run(), first);
}

TEST(Stress, RuntimeLifecycleChurn) {
  // Create/destroy many runtimes in one process: TLS bindings, the global
  // fault handler, and kendo state must reset cleanly every time.
  for (int cycle = 0; cycle < 15; ++cycle) {
    const auto monitor = cycle % 2 == 0 ? MonitorMode::kInstrumented
                                        : MonitorMode::kPageFault;
    RfdetOptions o = Small();
    o.monitor = monitor;
    RfdetRuntime rt(o);
    const GAddr a = rt.AllocStatic(64);
    const size_t tid = rt.Spawn([&] {
      const int v = cycle;
      rt.Store(a, &v, sizeof v);
    });
    rt.Join(tid);
    int r = -1;
    rt.Load(a, &r, sizeof r);
    ASSERT_EQ(r, cycle);
  }
}

TEST(Stress, SequentialSpawnJoinChurn) {
  RfdetRuntime rt(Small());
  const GAddr acc = rt.AllocStatic(sizeof(uint64_t));
  for (uint64_t i = 0; i < 30; ++i) {
    const size_t tid = rt.Spawn([&, i] {
      uint64_t v = 0;
      rt.Load(acc, &v, sizeof v);
      v += i + 1;
      rt.Store(acc, &v, sizeof v);
    });
    rt.Join(tid);
  }
  uint64_t v = 0;
  rt.Load(acc, &v, sizeof v);
  EXPECT_EQ(v, 30u * 31 / 2);
}

TEST(Stress, AlternatingBackendsInOneProcess) {
  for (const dmt::BackendKind kind :
       {dmt::BackendKind::kRfdetCi, dmt::BackendKind::kDthreads,
        dmt::BackendKind::kRfdetPf, dmt::BackendKind::kPthreads,
        dmt::BackendKind::kKendo, dmt::BackendKind::kCoredet}) {
    dmt::BackendConfig c;
    c.kind = kind;
    c.region_bytes = 8u << 20;
    auto env = dmt::CreateEnv(c);
    const dmt::GAddr a = env->AllocStatic(8, 8);
    const size_t tid = env->Spawn([&] { env->AtomicFetchAdd(a, 5); });
    env->Join(tid);
    EXPECT_EQ(env->AtomicLoad(a), 5u) << dmt::ToString(kind);
  }
}

}  // namespace
}  // namespace rfdet
