// Schedule tracing: the recorded synchronization order must be identical
// across runs (it is the deterministic schedule itself) and must reflect
// the operations the program performed.
#include <gtest/gtest.h>

#include "rfdet/runtime/runtime.h"

namespace rfdet {
namespace {

using TraceOp = RfdetRuntime::TraceOp;
using TraceEvent = RfdetRuntime::TraceEvent;

std::vector<TraceEvent> RunTraced() {
  RfdetOptions o;
  o.region_bytes = 8u << 20;
  o.static_bytes = 1u << 20;
  o.record_trace = true;
  RfdetRuntime rt(o);
  const GAddr x = rt.AllocStatic(64);
  const size_t m = rt.CreateMutex();
  const size_t bar = rt.CreateBarrier(3);
  std::vector<size_t> tids;
  for (int t = 0; t < 2; ++t) {
    tids.push_back(rt.Spawn([&, t] {
      for (int i = 0; i < 5; ++i) {
        rt.Tick(static_cast<uint64_t>(t) * 7 + 3);
        rt.MutexLock(m);
        int v = 0;
        rt.Load(x, &v, sizeof v);
        ++v;
        rt.Store(x, &v, sizeof v);
        rt.MutexUnlock(m);
      }
      rt.BarrierWait(bar);
    }));
  }
  rt.BarrierWait(bar);
  for (const size_t tid : tids) rt.Join(tid);
  return rt.Trace();
}

TEST(ScheduleTrace, IdenticalAcrossRuns) {
  const std::vector<TraceEvent> first = RunTraced();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(RunTraced(), first);
  EXPECT_EQ(RunTraced(), first);
}

TEST(ScheduleTrace, ReflectsTheProgramsOperations) {
  const std::vector<TraceEvent> trace = RunTraced();
  size_t locks = 0;
  size_t unlocks = 0;
  size_t forks = 0;
  size_t joins = 0;
  size_t barrier_arrivals = 0;
  size_t barrier_releases = 0;
  size_t exits = 0;
  for (const TraceEvent& e : trace) {
    switch (e.op) {
      case TraceOp::kLockAcquired: ++locks; break;
      case TraceOp::kUnlock: ++unlocks; break;
      case TraceOp::kFork: ++forks; break;
      case TraceOp::kJoin: ++joins; break;
      case TraceOp::kBarrierArrive: ++barrier_arrivals; break;
      case TraceOp::kBarrierRelease: ++barrier_releases; break;
      case TraceOp::kExit: ++exits; break;
      default: break;
    }
  }
  EXPECT_EQ(locks, 10u);   // 2 threads × 5 critical sections
  EXPECT_EQ(unlocks, 10u);
  EXPECT_EQ(forks, 2u);
  EXPECT_EQ(joins, 2u);
  EXPECT_EQ(barrier_arrivals, 3u);
  EXPECT_EQ(barrier_releases, 1u);
  EXPECT_EQ(exits, 2u);
  // Lock/unlock alternate per mutex: no double-grants.
  int held = 0;
  for (const TraceEvent& e : trace) {
    if (e.op == TraceOp::kLockAcquired) {
      EXPECT_EQ(held, 0);
      held = 1;
    } else if (e.op == TraceOp::kUnlock) {
      EXPECT_EQ(held, 1);
      held = 0;
    }
  }
}

TEST(ScheduleTrace, DisabledByDefault) {
  RfdetOptions o;
  o.region_bytes = 4u << 20;
  o.static_bytes = 1u << 20;
  RfdetRuntime rt(o);
  const size_t m = rt.CreateMutex();
  rt.MutexLock(m);
  rt.MutexUnlock(m);
  EXPECT_TRUE(rt.Trace().empty());
}

TEST(ScheduleTrace, AtomicsAppear) {
  RfdetOptions o;
  o.region_bytes = 4u << 20;
  o.static_bytes = 1u << 20;
  o.record_trace = true;
  RfdetRuntime rt(o);
  const GAddr a = rt.AllocStatic(8, 8);
  rt.AtomicStore(a, 5);
  rt.AtomicFetchAdd(a, 1);
  const std::vector<TraceEvent> trace = rt.Trace();
  size_t atomics = 0;
  for (const TraceEvent& e : trace) {
    if (e.op == TraceOp::kAtomic) {
      ++atomics;
      EXPECT_EQ(e.object, a);
    }
  }
  EXPECT_EQ(atomics, 2u);
}

}  // namespace
}  // namespace rfdet
