// ThreadView unit tests, parameterized over the two monitor backends:
// snapshot-on-first-store (Figure 4), slice diff collection, remote
// application (eager and lazy), COW duplication, and pf-specific fault
// accounting.
#include <gtest/gtest.h>

#include <cstring>

#include "rfdet/mem/thread_view.h"

namespace rfdet {
namespace {

constexpr size_t kCap = 1u << 20;  // 256 pages

class ThreadViewTest : public ::testing::TestWithParam<MonitorMode> {
 protected:
  MetadataArena arena_{64u << 20};
};

INSTANTIATE_TEST_SUITE_P(Monitors, ThreadViewTest,
                         ::testing::Values(MonitorMode::kInstrumented,
                                           MonitorMode::kPageFault),
                         [](const auto& param_info) {
                           return param_info.param == MonitorMode::kInstrumented
                                      ? "ci"
                                      : "pf";
                         });

TEST_P(ThreadViewTest, FreshViewReadsZero) {
  ThreadView view(kCap, GetParam(), &arena_);
  view.ActivateOnThisThread();
  uint64_t v = 1;
  view.Load(12345, &v, sizeof v);
  EXPECT_EQ(v, 0u);
  ThreadView::DeactivateOnThisThread();
}

TEST_P(ThreadViewTest, StoreLoadRoundTrip) {
  ThreadView view(kCap, GetParam(), &arena_);
  view.ActivateOnThisThread();
  const uint64_t v = 0x1122334455667788ULL;
  view.Store(4096 + 8, &v, sizeof v);
  uint64_t r = 0;
  view.Load(4096 + 8, &r, sizeof r);
  EXPECT_EQ(r, v);
  ThreadView::DeactivateOnThisThread();
}

TEST_P(ThreadViewTest, CrossPageAccess) {
  ThreadView view(kCap, GetParam(), &arena_);
  view.ActivateOnThisThread();
  std::byte buf[100];
  std::memset(buf, 0x7e, sizeof buf);
  const GAddr addr = kPageSize - 50;  // spans two pages
  view.Store(addr, buf, sizeof buf);
  std::byte out[100] = {};
  view.Load(addr, out, sizeof out);
  EXPECT_EQ(std::memcmp(buf, out, sizeof buf), 0);
  ModList mods;
  view.CollectModifications(mods);
  EXPECT_EQ(mods.ByteCount(), 100u);
  ThreadView::DeactivateOnThisThread();
}

TEST_P(ThreadViewTest, FirstStorePerSliceSnapshotsOnce) {
  ThreadView view(kCap, GetParam(), &arena_);
  view.ActivateOnThisThread();
  const uint64_t v = 9;
  view.Store(0, &v, sizeof v);
  view.Store(8, &v, sizeof v);      // same page: no second snapshot
  view.Store(kPageSize, &v, sizeof v);  // second page
  EXPECT_EQ(view.Stats().stores_with_copy, 2u);
  ModList mods;
  view.CollectModifications(mods);
  // A store in the next slice snapshots the page again — exactly once.
  view.Store(0, &v, sizeof v);
  const uint64_t w = 10;
  view.Store(16, &w, sizeof w);
  EXPECT_EQ(view.Stats().stores_with_copy, 3u);
  ThreadView::DeactivateOnThisThread();
}

TEST_P(ThreadViewTest, DiffContainsExactlyTheModifiedBytes) {
  ThreadView view(kCap, GetParam(), &arena_);
  view.ActivateOnThisThread();
  const uint32_t a = 0xdeadbeef;
  view.Store(100, &a, sizeof a);
  ModList first;
  view.CollectModifications(first);
  EXPECT_EQ(first.ByteCount(), 4u);
  // Second slice: rewrite the same value (redundant) plus one new byte.
  view.Store(100, &a, sizeof a);
  const uint8_t b = 0xff;
  view.Store(200, &b, sizeof b);
  ModList second;
  view.CollectModifications(second);
  EXPECT_EQ(second.ByteCount(), 1u);  // the redundant rewrite vanished
  ASSERT_EQ(second.RunCount(), 1u);
  EXPECT_EQ(second.Runs()[0].addr, 200u);
  ThreadView::DeactivateOnThisThread();
}

TEST_P(ThreadViewTest, ApplyRemoteEagerDoesNotPolluteLocalDiffs) {
  ThreadView view(kCap, GetParam(), &arena_);
  view.ActivateOnThisThread();
  ModList remote;
  const std::byte payload[4] = {std::byte{1}, std::byte{2}, std::byte{3},
                                std::byte{4}};
  remote.Append(500, payload);
  view.ApplyRemote(remote, /*lazy=*/false);
  uint32_t r = 0;
  view.Load(500, &r, sizeof r);
  EXPECT_EQ(r, 0x04030201u);
  // The remote bytes must not reappear as this view's own modifications.
  const uint8_t own = 9;
  view.Store(600, &own, sizeof own);
  ModList mods;
  view.CollectModifications(mods);
  ASSERT_EQ(mods.RunCount(), 1u);
  EXPECT_EQ(mods.Runs()[0].addr, 600u);
  EXPECT_EQ(mods.ByteCount(), 1u);
  ThreadView::DeactivateOnThisThread();
}

TEST_P(ThreadViewTest, LazyRemoteAppliesOnFirstTouch) {
  ThreadView view(kCap, GetParam(), &arena_);
  view.ActivateOnThisThread();
  ModList remote;
  const std::byte payload[2] = {std::byte{0xab}, std::byte{0xcd}};
  remote.Append(kPageSize * 3 + 10, payload);
  view.ApplyRemote(remote, /*lazy=*/true);
  EXPECT_TRUE(view.HasPendingWrites());
  EXPECT_EQ(view.Stats().lazy_runs_parked, 1u);
  uint16_t r = 0;
  view.Load(kPageSize * 3 + 10, &r, sizeof r);
  EXPECT_EQ(r, 0xcdabu);
  EXPECT_FALSE(view.HasPendingWrites());
  EXPECT_EQ(view.Stats().lazy_pages_applied, 1u);
  ThreadView::DeactivateOnThisThread();
}

TEST_P(ThreadViewTest, LazyRemoteLaterArrivalOverwritesEarlier) {
  ThreadView view(kCap, GetParam(), &arena_);
  view.ActivateOnThisThread();
  ModList first;
  const std::byte one[1] = {std::byte{1}};
  first.Append(40, one);
  ModList second;
  const std::byte two[1] = {std::byte{2}};
  second.Append(40, two);
  view.ApplyRemote(first, /*lazy=*/true);
  view.ApplyRemote(second, /*lazy=*/true);
  uint8_t r = 0;
  view.Load(40, &r, sizeof r);
  EXPECT_EQ(r, 2u);  // application preserves arrival order
  ThreadView::DeactivateOnThisThread();
}

TEST_P(ThreadViewTest, LazyStoreAppliesPendingBeforeSnapshot) {
  // A store to a page with parked remote runs must not re-attribute those
  // runs to the local slice.
  ThreadView view(kCap, GetParam(), &arena_);
  view.ActivateOnThisThread();
  ModList remote;
  const std::byte payload[1] = {std::byte{0x55}};
  remote.Append(20, payload);
  view.ApplyRemote(remote, /*lazy=*/true);
  const uint8_t own = 0x66;
  view.Store(30, &own, sizeof own);  // same page, different byte
  ModList mods;
  view.CollectModifications(mods);
  ASSERT_EQ(mods.RunCount(), 1u);
  EXPECT_EQ(mods.Runs()[0].addr, 30u);  // only our own byte
  uint8_t r = 0;
  view.Load(20, &r, sizeof r);
  EXPECT_EQ(r, 0x55u);  // the pending byte did land in memory
  ThreadView::DeactivateOnThisThread();
}

TEST_P(ThreadViewTest, CopyFromReplacesContents) {
  ThreadView src(kCap, GetParam(), &arena_);
  src.ActivateOnThisThread();
  const uint64_t v = 42;
  src.Store(1000, &v, sizeof v);
  ModList sink;
  src.CollectModifications(sink);

  ThreadView dst(kCap, GetParam(), &arena_);
  const uint64_t old = 7;
  dst.ActivateOnThisThread();
  dst.Store(2000, &old, sizeof old);
  ModList sink2;
  dst.CollectModifications(sink2);

  dst.CopyFrom(src);
  uint64_t r = 1;
  dst.Load(1000, &r, sizeof r);
  EXPECT_EQ(r, 42u);
  dst.Load(2000, &r, sizeof r);
  EXPECT_EQ(r, 0u);  // dst's old contents are fully replaced
  ThreadView::DeactivateOnThisThread();
}

TEST_P(ThreadViewTest, CopyOnWriteIsolatesAfterCopy) {
  ThreadView a(kCap, GetParam(), &arena_);
  a.ActivateOnThisThread();
  const uint64_t v = 1;
  a.Store(0, &v, sizeof v);
  ModList sink;
  a.CollectModifications(sink);
  ThreadView b(kCap, GetParam(), &arena_);
  b.CopyFrom(a);
  // Writing in a after the copy must not affect b (and vice versa).
  const uint64_t w = 2;
  a.Store(0, &w, sizeof w);
  uint64_t r = 0;
  b.ActivateOnThisThread();
  b.Load(0, &r, sizeof r);
  EXPECT_EQ(r, 1u);
  const uint64_t x = 3;
  b.Store(8, &x, sizeof x);
  a.ActivateOnThisThread();
  a.Load(8, &r, sizeof r);
  EXPECT_EQ(r, 0u);
  ThreadView::DeactivateOnThisThread();
}

TEST(ThreadViewCrossMode, CopyBetweenMonitorModes) {
  MetadataArena arena(64u << 20);
  for (const bool ci_to_pf : {true, false}) {
    const MonitorMode src_mode =
        ci_to_pf ? MonitorMode::kInstrumented : MonitorMode::kPageFault;
    const MonitorMode dst_mode =
        ci_to_pf ? MonitorMode::kPageFault : MonitorMode::kInstrumented;
    ThreadView src(kCap, src_mode, &arena);
    src.ActivateOnThisThread();
    const uint64_t v1 = 0xabcdef;
    const uint64_t v2 = 0x123456;
    src.Store(100, &v1, sizeof v1);
    src.Store(kPageSize * 7 + 8, &v2, sizeof v2);
    ModList sink;
    src.CollectModifications(sink);
    ThreadView dst(kCap, dst_mode, &arena);
    dst.ActivateOnThisThread();
    const uint64_t old = 999;
    dst.Store(kPageSize * 20, &old, sizeof old);
    ModList sink2;
    dst.CollectModifications(sink2);
    dst.CopyFrom(src);
    uint64_t r = 0;
    dst.Load(100, &r, sizeof r);
    EXPECT_EQ(r, v1) << (ci_to_pf ? "ci->pf" : "pf->ci");
    dst.Load(kPageSize * 7 + 8, &r, sizeof r);
    EXPECT_EQ(r, v2);
    dst.Load(kPageSize * 20, &r, sizeof r);
    EXPECT_EQ(r, 0u);  // old contents fully replaced
    // Post-copy monitoring still works in the destination's mode (all
    // bytes nonzero so the byte-exact diff covers the full word).
    const uint64_t w = 0x1111111111111111ULL;
    dst.Store(200, &w, sizeof w);
    ModList mods;
    dst.CollectModifications(mods);
    EXPECT_EQ(mods.ByteCount(), sizeof w);
    ThreadView::DeactivateOnThisThread();
  }
}

TEST_P(ThreadViewTest, PlannedApplyHandlesPageCrossingRuns) {
  // A run spanning three pages applied through its plan, eagerly and
  // lazily — values must land intact and lazily parked bytes must flush
  // on first touch.
  for (const bool lazy : {false, true}) {
    ThreadView view(kCap, GetParam(), &arena_);
    view.ActivateOnThisThread();
    ModList remote;
    std::vector<std::byte> payload(2 * kPageSize + 100);
    for (size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::byte>(i * 7 + 1);
    }
    const GAddr start = kPageSize - 50;
    remote.Append(start, payload);
    const ApplyPlan plan = ApplyPlan::Build(remote);
    EXPECT_EQ(plan.PageCount(), 4u);
    view.ApplyRemote(remote, plan, lazy);
    EXPECT_EQ(view.HasPendingWrites(), lazy);
    std::vector<std::byte> out(payload.size());
    view.Load(start, out.data(), out.size());
    EXPECT_EQ(std::memcmp(out.data(), payload.data(), payload.size()), 0);
    EXPECT_FALSE(view.HasPendingWrites());
    EXPECT_EQ(view.Stats().planned_applies, 1u);
    // Remote bytes must not leak into the local diff afterwards.
    ModList mods;
    view.CollectModifications(mods);
    EXPECT_TRUE(mods.Empty());
    ThreadView::DeactivateOnThisThread();
  }
}

TEST_P(ThreadViewTest, PlannedLazyKeepsArrivalOrderPerPage) {
  // Two planned slices overlapping on the same byte: the later arrival
  // must win after the flush, exactly as with per-run parking.
  ThreadView view(kCap, GetParam(), &arena_);
  view.ActivateOnThisThread();
  ModList first;
  const std::byte one[4] = {std::byte{1}, std::byte{1}, std::byte{1},
                            std::byte{1}};
  first.Append(80, one);
  ModList second;
  const std::byte two[4] = {std::byte{2}, std::byte{2}, std::byte{2},
                            std::byte{2}};
  second.Append(80, two);
  const ApplyPlan plan1 = ApplyPlan::Build(first);
  const ApplyPlan plan2 = ApplyPlan::Build(second);
  view.ApplyRemote(first, plan1, /*lazy=*/true);
  view.ApplyRemote(second, plan2, /*lazy=*/true);
  EXPECT_EQ(view.Stats().lazy_runs_coalesced, 1u);  // exact-range rewrite
  uint32_t r = 0;
  view.Load(80, &r, sizeof r);
  EXPECT_EQ(r, 0x02020202u);
  ThreadView::DeactivateOnThisThread();
}

TEST_P(ThreadViewTest, DensePendingStressDrainsInArbitraryOrder) {
  // Satellite regression for the O(1) pending-directory removal: park
  // pending runs on many pages, then drain them in a scattered order (by
  // touch) and in bulk (FlushPending); every removal exercises the
  // swap-remove position bookkeeping.
  constexpr size_t kPages = 128;
  ThreadView view(kCap, GetParam(), &arena_);
  view.ActivateOnThisThread();
  ModList remote;
  for (size_t p = 0; p < kPages; ++p) {
    const auto v = static_cast<std::byte>(p + 1);
    const std::byte payload[2] = {v, v};
    remote.Append(PageBase(p) + (p % 97), payload);
  }
  const ApplyPlan plan = ApplyPlan::Build(remote);
  view.ApplyRemote(remote, plan, /*lazy=*/true);
  EXPECT_TRUE(view.HasPendingWrites());
  // Touch pages in a scattered order: (i * 61) mod 128 permutes 0..127.
  for (size_t i = 0; i < kPages; i += 2) {
    const size_t p = (i * 61) % kPages;
    uint8_t r = 0;
    view.Load(PageBase(p) + (p % 97), &r, sizeof r);
    EXPECT_EQ(r, static_cast<uint8_t>(p + 1)) << "page " << p;
  }
  EXPECT_EQ(view.Stats().lazy_pages_applied, kPages / 2);
  view.FlushPending();  // drains the other half in bulk
  EXPECT_FALSE(view.HasPendingWrites());
  EXPECT_EQ(view.Stats().lazy_pages_applied, kPages);
  for (size_t p = 0; p < kPages; ++p) {
    uint8_t r = 0;
    view.Load(PageBase(p) + (p % 97), &r, sizeof r);
    EXPECT_EQ(r, static_cast<uint8_t>(p + 1)) << "page " << p;
  }
  // Repopulate after a full drain: freed slots and directory reuse.
  view.ApplyRemote(remote, plan, /*lazy=*/true);
  EXPECT_TRUE(view.HasPendingWrites());
  view.FlushPending();
  EXPECT_FALSE(view.HasPendingWrites());
  ThreadView::DeactivateOnThisThread();
}

TEST(ThreadViewPf, PlannedEagerApplyBatchesMprotect) {
  // Eight contiguous dirty pages. With the always-RW alias mapping the
  // planned path writes through the alias and needs no mprotect at all;
  // the mprotect-batched fallback (no alias) must open and close the
  // range with one ranged mprotect each (2 calls total), not 2 per run.
  MetadataArena arena(64u << 20);
  ThreadView view(kCap, MonitorMode::kPageFault, &arena);
  view.ActivateOnThisThread();
  ModList remote;
  for (size_t p = 0; p < 8; ++p) {
    const std::byte payload[8] = {std::byte{1}, std::byte{2}, std::byte{3},
                                  std::byte{4}, std::byte{5}, std::byte{6},
                                  std::byte{7}, std::byte{8}};
    remote.Append(PageBase(p) + 16, payload);
    remote.Append(PageBase(p) + 512, payload);
  }
  const ApplyPlan plan = ApplyPlan::Build(remote);
  const uint64_t before = view.Stats().mprotect_calls;
  view.ApplyRemote(remote, plan, /*lazy=*/false);
  EXPECT_LE(view.Stats().mprotect_calls - before, 2u);
  // Whichever path ran, the bytes must have landed and the pages must
  // still trap local writes (a store faults and snapshots as usual).
  uint8_t r = 0;
  view.Load(PageBase(3) + 16, &r, sizeof r);
  EXPECT_EQ(r, 1u);
  const uint64_t faults = view.Stats().page_faults;
  const uint8_t v = 9;
  view.Store(PageBase(3) + 16, &v, sizeof v);
  EXPECT_EQ(view.Stats().page_faults, faults + 1);
  // Legacy path on a fresh view: two calls per run fragment.
  ThreadView legacy(kCap, MonitorMode::kPageFault, &arena);
  legacy.ActivateOnThisThread();
  const uint64_t lbefore = legacy.Stats().mprotect_calls;
  legacy.ApplyRemote(remote, /*lazy=*/false);
  EXPECT_EQ(legacy.Stats().mprotect_calls - lbefore, 2u * 16u);
  ThreadView::DeactivateOnThisThread();
}

TEST(ThreadViewPf, SliceCloseReprotectsDirtyRangeInOneCall) {
  // Three contiguous dirty pages: each first store faults and opens its
  // page individually, but the slice-close re-protection must collapse
  // into a single ranged mprotect.
  MetadataArena arena(64u << 20);
  ThreadView view(kCap, MonitorMode::kPageFault, &arena);
  view.ActivateOnThisThread();
  const uint64_t v = 0x0101010101010101ULL;
  view.Store(PageBase(2), &v, sizeof v);
  view.Store(PageBase(0), &v, sizeof v);
  view.Store(PageBase(1), &v, sizeof v);
  const uint64_t before = view.Stats().mprotect_calls;
  ModList mods;
  view.CollectModifications(mods);
  EXPECT_EQ(view.Stats().mprotect_calls - before, 1u);
  EXPECT_EQ(mods.ByteCount(), 3 * sizeof v);
  // Diff runs come out in ascending page order after the sort.
  ASSERT_EQ(mods.RunCount(), 3u);
  EXPECT_EQ(mods.Runs()[0].addr, PageBase(0));
  EXPECT_EQ(mods.Runs()[1].addr, PageBase(1));
  EXPECT_EQ(mods.Runs()[2].addr, PageBase(2));
  ThreadView::DeactivateOnThisThread();
}

TEST(ThreadViewPf, FaultAccounting) {
  MetadataArena arena(64u << 20);
  ThreadView view(kCap, MonitorMode::kPageFault, &arena);
  view.ActivateOnThisThread();
  const uint64_t v = 5;
  view.Store(0, &v, sizeof v);  // write fault: snapshot + open
  view.Store(8, &v, sizeof v);  // no fault: page already RW
  EXPECT_EQ(view.Stats().page_faults, 1u);
  EXPECT_GE(view.Stats().mprotect_calls, 1u);
  ModList mods;
  view.CollectModifications(mods);  // re-protects the page
  view.Store(16, &v, sizeof v);     // faults again in the new slice
  EXPECT_EQ(view.Stats().page_faults, 2u);
  ThreadView::DeactivateOnThisThread();
}

}  // namespace
}  // namespace rfdet
