// LockstepRuntime (DThreads / CoreDet baselines): isolation, serial-phase
// commit order, condition variables, barriers, quantum boundaries, and
// determinism.
#include <gtest/gtest.h>

#include "rfdet/backends/lockstep_runtime.h"

namespace rfdet {
namespace {

LockstepRuntime::Options Opts(uint64_t quantum = 0) {
  LockstepRuntime::Options o;
  o.region_bytes = 8u << 20;
  o.static_bytes = 1u << 20;
  o.quantum_ticks = quantum;
  return o;
}

TEST(Lockstep, StoreLoadAndInheritance) {
  LockstepRuntime rt(Opts());
  const GAddr a = rt.AllocStatic(sizeof(int));
  const int v = 31;
  rt.Store(a, &v, sizeof v);
  int seen = 0;
  const size_t tid = rt.Spawn([&] {
    int r = 0;
    rt.Load(a, &r, sizeof r);
    seen = r;
  });
  rt.Join(tid);
  EXPECT_EQ(seen, 31);
}

TEST(Lockstep, CommitHappensOnlyAtSyncPoints) {
  LockstepRuntime rt(Opts());
  const GAddr a = rt.AllocStatic(sizeof(int));
  const size_t m = rt.CreateMutex();
  const GAddr flag = rt.AllocStatic(sizeof(int));
  const size_t tid = rt.Spawn([&] {
    const int v = 5;
    rt.Store(a, &v, sizeof v);
    // Not yet committed: committing requires a sync point.
    rt.MutexLock(m);
    const int one = 1;
    rt.Store(flag, &one, sizeof one);
    rt.MutexUnlock(m);
    for (int i = 0; i < 10; ++i) rt.Tick(1);
  });
  int published = 0;
  while (published == 0) {
    rt.MutexLock(m);
    rt.Load(flag, &published, sizeof published);
    rt.MutexUnlock(m);
  }
  int r = 0;
  rt.Load(a, &r, sizeof r);
  EXPECT_EQ(r, 5);
  rt.Join(tid);
}

TEST(Lockstep, MutualExclusionCounter) {
  LockstepRuntime rt(Opts());
  const GAddr counter = rt.AllocStatic(sizeof(uint64_t));
  const size_t m = rt.CreateMutex();
  std::vector<size_t> tids;
  for (int t = 0; t < 4; ++t) {
    tids.push_back(rt.Spawn([&] {
      for (int i = 0; i < 25; ++i) {
        rt.MutexLock(m);
        uint64_t v = 0;
        rt.Load(counter, &v, sizeof v);
        ++v;
        rt.Store(counter, &v, sizeof v);
        rt.MutexUnlock(m);
      }
    }));
  }
  for (const size_t tid : tids) rt.Join(tid);
  uint64_t v = 0;
  rt.Load(counter, &v, sizeof v);
  EXPECT_EQ(v, 100u);
}

TEST(Lockstep, CondVarProtocol) {
  LockstepRuntime rt(Opts());
  const GAddr stage = rt.AllocStatic(sizeof(int));
  const size_t m = rt.CreateMutex();
  const size_t cv = rt.CreateCond();
  const size_t tid = rt.Spawn([&] {
    rt.MutexLock(m);
    int s = 0;
    rt.Load(stage, &s, sizeof s);
    while (s != 1) {
      rt.CondWait(cv, m);
      rt.Load(stage, &s, sizeof s);
    }
    const int two = 2;
    rt.Store(stage, &two, sizeof two);
    rt.CondSignal(cv);
    rt.MutexUnlock(m);
  });
  rt.MutexLock(m);
  const int one = 1;
  rt.Store(stage, &one, sizeof one);
  rt.CondSignal(cv);
  int s = 1;
  while (s != 2) {
    rt.CondWait(cv, m);
    rt.Load(stage, &s, sizeof s);
  }
  rt.MutexUnlock(m);
  rt.Join(tid);
  EXPECT_EQ(s, 2);
}

TEST(Lockstep, BarrierPublishesAllWrites) {
  LockstepRuntime rt(Opts());
  constexpr int kThreads = 3;
  const GAddr slots = rt.AllocStatic(kThreads * sizeof(int));
  const size_t bar = rt.CreateBarrier(kThreads + 1);
  std::vector<size_t> tids;
  std::vector<int> sums(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    tids.push_back(rt.Spawn([&, t] {
      const int v = t + 1;
      rt.Store(slots + t * sizeof(int), &v, sizeof v);
      rt.BarrierWait(bar);
      int sum = 0;
      for (int u = 0; u < kThreads; ++u) {
        int x = 0;
        rt.Load(slots + u * sizeof(int), &x, sizeof x);
        sum += x;
      }
      sums[t] = sum;
    }));
  }
  rt.BarrierWait(bar);
  for (const size_t tid : tids) rt.Join(tid);
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(sums[t], 6);
}

TEST(Lockstep, CoredetQuantumBoundariesPublishWithoutSync) {
  // With a small quantum, a thread's writes become visible after it burns
  // through its tick budget, even though it never synchronizes.
  LockstepRuntime rt(Opts(/*quantum=*/64));
  const GAddr a = rt.AllocStatic(sizeof(int));
  const size_t tid = rt.Spawn([&] {
    const int v = 9;
    rt.Store(a, &v, sizeof v);
    for (int i = 0; i < 100; ++i) rt.Tick(8);  // crosses quantum boundary
    for (int i = 0; i < 400; ++i) rt.Tick(8);
  });
  // Main also keeps crossing quantum boundaries so fences can complete.
  int r = 0;
  for (int i = 0; i < 300 && r == 0; ++i) {
    rt.Tick(64);
    rt.Load(a, &r, sizeof r);
  }
  EXPECT_EQ(r, 9);
  rt.Join(tid);
}

TEST(Lockstep, SerialCommitOrderIsTidAscending) {
  // Two threads racing a store commit in the same phase: the higher tid
  // commits last and wins, deterministically.
  auto run = [] {
    LockstepRuntime rt(Opts());
    const GAddr a = rt.AllocStatic(sizeof(int));
    const size_t bar = rt.CreateBarrier(3);
    const size_t t1 = rt.Spawn([&] {
      const int v = 111;
      rt.Store(a, &v, sizeof v);
      rt.BarrierWait(bar);
    });
    const size_t t2 = rt.Spawn([&] {
      const int v = 222;
      rt.Store(a, &v, sizeof v);
      rt.BarrierWait(bar);
    });
    rt.BarrierWait(bar);
    rt.Join(t1);
    rt.Join(t2);
    int r = 0;
    rt.Load(a, &r, sizeof r);
    return r;
  };
  // tid 2 commits after tid 1 in whichever phase carries both stores.
  const int first = run();
  EXPECT_EQ(first, 222);
  EXPECT_EQ(run(), first);
  EXPECT_EQ(run(), first);
}

TEST(Lockstep, PhaseCountGrowsWithSyncTraffic) {
  LockstepRuntime rt(Opts());
  const size_t m = rt.CreateMutex();
  const uint64_t before = rt.PhaseCount();
  const size_t tid = rt.Spawn([&] {
    for (int i = 0; i < 10; ++i) {
      rt.MutexLock(m);
      rt.MutexUnlock(m);
    }
  });
  rt.Join(tid);
  EXPECT_GE(rt.PhaseCount(), before + 20);
}

TEST(Lockstep, PageFaultMonitorVariantWorks) {
  // DThreads' actual monitoring mechanism (mprotect + faults) behind the
  // same lockstep engine.
  LockstepRuntime::Options o = Opts();
  o.monitor = MonitorMode::kPageFault;
  LockstepRuntime rt(o);
  const GAddr a = rt.AllocStatic(sizeof(uint64_t));
  const size_t m = rt.CreateMutex();
  std::vector<size_t> tids;
  for (int t = 0; t < 3; ++t) {
    tids.push_back(rt.Spawn([&] {
      for (int i = 0; i < 10; ++i) {
        rt.MutexLock(m);
        uint64_t v = 0;
        rt.Load(a, &v, sizeof v);
        ++v;
        rt.Store(a, &v, sizeof v);
        rt.MutexUnlock(m);
      }
    }));
  }
  for (const size_t tid : tids) rt.Join(tid);
  uint64_t v = 0;
  rt.Load(a, &v, sizeof v);
  EXPECT_EQ(v, 30u);
  EXPECT_GT(rt.Snapshot().page_faults, 0u);
}

}  // namespace
}  // namespace rfdet
