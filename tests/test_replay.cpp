// Deterministic record/replay + crash-consistent checkpoint/restore.
//
// Determinism makes the replay log a *complete* description of a run: the
// turn-ordered grant sequence plus the few nondeterministic Try* inputs.
// These tests close that loop end to end: a recorded run replays
// bit-identically (fingerprint rollup equality) from turn 0 and from a
// mid-run checkpoint, and a recording run killed mid-execution restores
// from the latest checkpoint + log tail and finishes with the same rollup
// as an uninterrupted run.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "rfdet/runtime/runtime.h"

namespace rfdet {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

bool NonEmptyFile(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && st.st_size > 0;
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

RfdetOptions Small() {
  RfdetOptions o;
  o.region_bytes = 8u << 20;
  o.static_bytes = 1u << 20;
  o.divergence_policy = DivergencePolicy::kReport;
  return o;
}

// ---- record → replay from turn 0 ------------------------------------------

struct RunResult {
  uint64_t rollup = 0;
  int counter = 0;
  StatsSnapshot stats;
  std::string replay_divergence;
  std::string fp_divergence;
  std::string race_report;
};

// Lock-ordered increments, deliberately racy same-page stores (so the race
// detector has something to report in both runs), atomics, a barrier —
// every grant kind the log distinguishes except cond ops.
RunResult RunMixedWorkload(const RfdetOptions& o) {
  RunResult out;
  RfdetRuntime rt(o);
  const GAddr counter = rt.AllocStatic(64);
  const GAddr racy = rt.AllocStatic(4096, 64);
  const GAddr abox = rt.AllocStatic(64, 8);
  const size_t m = rt.CreateMutex();
  const size_t bar = rt.CreateBarrier(4);
  std::vector<size_t> tids;
  for (int t = 0; t < 3; ++t) {
    tids.push_back(rt.Spawn([&rt, t, counter, racy, abox, m, bar] {
      for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(rt.MutexLock(m), RfdetErrc::kOk);
        int v = 0;
        rt.Load(counter, &v, sizeof v);
        ++v;
        rt.Store(counter, &v, sizeof v);
        rt.MutexUnlock(m);
        // Unordered same-address stores from every thread: a W-W race
        // the detector must report identically under record and replay.
        const uint32_t w = static_cast<uint32_t>(t * 100 + i);
        rt.Store(racy + static_cast<size_t>(i) * sizeof w, &w, sizeof w);
        (void)rt.AtomicFetchAdd(abox, 1);
        rt.Tick(3);
      }
      EXPECT_EQ(rt.BarrierWait(bar), RfdetErrc::kOk);
    }));
  }
  EXPECT_EQ(rt.BarrierWait(bar), RfdetErrc::kOk);
  for (const size_t tid : tids) EXPECT_EQ(rt.Join(tid), RfdetErrc::kOk);
  rt.Load(counter, &out.counter, sizeof out.counter);
  out.rollup = rt.FinalizeFingerprint();
  out.race_report = rt.RaceReportText();
  out.replay_divergence = rt.LastReplayDivergence();
  out.fp_divergence = rt.LastDivergenceReport();
  out.stats = rt.Snapshot();
  return out;
}

TEST(Replay, RecordThenReplayBitIdentical) {
  const std::string log = TempPath("replay_rt0.bin");
  const std::string fp = TempPath("replay_rt0_fp.bin");
  RfdetOptions o = Small();
  o.race_policy = RacePolicy::kReport;
  o.replay_mode = ReplayMode::kRecord;
  o.replay_log_path = log;
  o.fingerprint = FingerprintMode::kRecord;
  o.fingerprint_path = fp;
  const RunResult rec = RunMixedWorkload(o);
  EXPECT_TRUE(rec.replay_divergence.empty()) << rec.replay_divergence;
  EXPECT_GT(rec.stats.replay_grants, 0u);
  EXPECT_EQ(rec.stats.replay_divergences, 0u);
  EXPECT_EQ(rec.stats.replay_io_errors, 0u);
  EXPECT_EQ(rec.counter, 18);  // lock-protected: exact
  ASSERT_TRUE(NonEmptyFile(log));

  o.replay_mode = ReplayMode::kReplay;
  o.fingerprint = FingerprintMode::kVerify;
  const RunResult rep = RunMixedWorkload(o);
  EXPECT_TRUE(rep.replay_divergence.empty()) << rep.replay_divergence;
  EXPECT_TRUE(rep.fp_divergence.empty()) << rep.fp_divergence;
  EXPECT_EQ(rep.stats.replay_divergences, 0u);
  EXPECT_EQ(rep.stats.fingerprint_divergences, 0u);
  EXPECT_EQ(rep.stats.replay_grants, rec.stats.replay_grants);
  EXPECT_EQ(rep.rollup, rec.rollup);
  EXPECT_EQ(rep.counter, rec.counter);
  EXPECT_EQ(rep.race_report, rec.race_report);
  std::remove(log.c_str());
  std::remove(fp.c_str());
}

// Grants are appended under the granted turn itself and every nondet site
// in this workload runs on the (deterministic) main thread, so the whole
// log file — not just its semantic content — must be byte-stable.
TEST(Replay, RecordedLogIsByteStable) {
  const std::string a = TempPath("replay_stable_a.bin");
  const std::string b = TempPath("replay_stable_b.bin");
  RfdetOptions o = Small();
  o.replay_mode = ReplayMode::kRecord;
  o.replay_log_path = a;
  RunMixedWorkload(o);
  o.replay_log_path = b;
  RunMixedWorkload(o);
  const std::string bytes_a = SlurpFile(a);
  const std::string bytes_b = SlurpFile(b);
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// ---- explicit checkpoints + replay from mid-run ---------------------------

struct CkptLayout {
  GAddr counter = kNullGAddr;
  GAddr slots = kNullGAddr;
  size_t mutex_id = 0;
};

CkptLayout CkptSetup(RfdetRuntime& rt) {
  CkptLayout a;
  a.counter = rt.AllocStatic(64);
  a.slots = rt.AllocStatic(4096, 64);
  a.mutex_id = rt.CreateMutex();
  return a;
}

void CkptPhase(RfdetRuntime& rt, const CkptLayout& a, int p) {
  std::vector<size_t> tids;
  for (int t = 0; t < 2; ++t) {
    tids.push_back(rt.Spawn([&rt, &a, p, t] {
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(rt.MutexLock(a.mutex_id), RfdetErrc::kOk);
        int v = 0;
        rt.Load(a.counter, &v, sizeof v);
        ++v;
        rt.Store(a.counter, &v, sizeof v);
        rt.MutexUnlock(a.mutex_id);
        const uint32_t w = static_cast<uint32_t>(p * 100 + t * 10 + i);
        rt.Store(a.slots + (static_cast<size_t>(p * 2 + t) * 8 +
                            static_cast<size_t>(i)) *
                               sizeof w,
                 &w, sizeof w);
        rt.Tick(2);
      }
    }));
  }
  for (const size_t tid : tids) EXPECT_EQ(rt.Join(tid), RfdetErrc::kOk);
}

TEST(Replay, ReplayFromMidRunCheckpoint) {
  const std::string log = TempPath("replay_ckpt.bin");
  const std::string fp = TempPath("replay_ckpt_fp.bin");
  const std::string ckpt = TempPath("replay_ckpt.img");
  constexpr int kPhases = 4;

  RfdetOptions o = Small();
  o.replay_mode = ReplayMode::kRecord;
  o.replay_log_path = log;
  o.checkpoint_path = ckpt;
  o.fingerprint = FingerprintMode::kRecord;
  o.fingerprint_path = fp;

  CkptLayout layout;
  uint64_t rollup_rec = 0;
  int counter_rec = 0;
  uint64_t grants_rec = 0;
  {
    RfdetRuntime rt(o);
    EXPECT_FALSE(rt.Restored());
    layout = CkptSetup(rt);
    for (int p = 0; p < kPhases; ++p) {
      CkptPhase(rt, layout, p);
      if (p == 1) EXPECT_EQ(rt.CheckpointNow(), RfdetErrc::kOk);
    }
    rt.Load(layout.counter, &counter_rec, sizeof counter_rec);
    rollup_rec = rt.FinalizeFingerprint();
    EXPECT_TRUE(rt.LastReplayDivergence().empty())
        << rt.LastReplayDivergence();
    const StatsSnapshot s = rt.Snapshot();
    EXPECT_EQ(s.checkpoints_written, 1u);
    EXPECT_EQ(s.checkpoint_io_errors, 0u);
    EXPECT_GT(s.checkpoint_bytes, 0u);
    grants_rec = s.replay_grants;
  }
  ASSERT_TRUE(NonEmptyFile(ckpt));
  EXPECT_EQ(counter_rec, kPhases * 2 * 4);

  // Resume in replay+verify mode: setup and phases 0-1 come from the
  // image (CheckpointNow's grant is inside the consumed prefix, so the
  // resumed run must NOT call it); phases 2-3 re-execute, driven by the
  // log tail. Shared addresses and sync ids are deterministic, so the
  // layout captured from the recording run names the restored objects.
  RfdetOptions r = Small();
  r.replay_mode = ReplayMode::kReplay;
  r.replay_log_path = log;
  r.restore_checkpoint_path = ckpt;
  r.fingerprint = FingerprintMode::kVerify;
  r.fingerprint_path = fp;
  {
    RfdetRuntime rt(r);
    ASSERT_TRUE(rt.Restored());
    for (int p = 2; p < kPhases; ++p) CkptPhase(rt, layout, p);
    int counter_res = 0;
    rt.Load(layout.counter, &counter_res, sizeof counter_res);
    EXPECT_EQ(counter_res, counter_rec);
    const uint64_t rollup_res = rt.FinalizeFingerprint();
    EXPECT_TRUE(rt.LastReplayDivergence().empty())
        << rt.LastReplayDivergence();
    EXPECT_TRUE(rt.LastDivergenceReport().empty())
        << rt.LastDivergenceReport();
    EXPECT_EQ(rollup_res, rollup_rec);
    const StatsSnapshot s = rt.Snapshot();
    EXPECT_EQ(s.restores, 1u);
    EXPECT_EQ(s.replay_divergences, 0u);
    EXPECT_EQ(s.fingerprint_divergences, 0u);
    // The cursor was seeded past the checkpointed prefix and must land
    // exactly on the recording's final grant count.
    EXPECT_EQ(s.replay_grants, grants_rec);
  }
  std::remove(log.c_str());
  std::remove(fp.c_str());
  std::remove(ckpt.c_str());
}

// ---- kill → restore from latest checkpoint + log tail ---------------------

constexpr uint64_t kCrashPhases = 6;
constexpr int kCrashIters = 6;

struct CrashLayout {
  GAddr counter = kNullGAddr;  // mutex-protected tally
  GAddr phase = kNullGAddr;    // atomic phase counter (loop-top read)
  GAddr scratch = kNullGAddr;  // dirtying store, see below
  GAddr slots = kNullGAddr;
  size_t mutex_id = 0;
};

struct CrashResult {
  uint64_t rollup = 0;
  uint64_t counter = 0;
  StatsSnapshot stats;
};

// Phase loop whose *only* quiescent-and-clean main turn end is the
// post-AtomicStore phase boundary, so interval checkpoints always land
// where a restored run resumes (the loop top):
//   * the loop-top AtomicLoad closes the slice, but the interval counter
//     was reset one turn earlier, so no checkpoint fires there;
//   * spawn / first-join turn ends are never quiescent;
//   * a scratch store before the final join keeps main's slice dirty
//     across it;
//   * the phase-advancing AtomicStore closes the slice again — clean,
//     quiescent, counter beyond the interval: the checkpoint fires here.
// With kill_at > 0 a worker calls _Exit(2) at the kill_at-th inner op:
// a crash with no teardown, so the log is durable only up to the last
// checkpoint's flush.
CrashResult RunCrashWorkload(const RfdetOptions& o, uint64_t kill_at,
                             CrashLayout* io_layout) {
  CrashResult out;
  std::atomic<uint64_t> ops{0};
  RfdetRuntime rt(o);
  CrashLayout a;
  if (rt.Restored()) {
    // Setup already happened in the recording run; allocation and sync-id
    // assignment are deterministic, so the caller-provided layout names
    // the restored objects.
    a = *io_layout;
  } else {
    a.counter = rt.AllocStatic(64);
    a.phase = a.counter + 8;
    a.scratch = a.counter + 16;
    a.slots = rt.AllocStatic(4096, 64);
    a.mutex_id = rt.CreateMutex();
    if (io_layout != nullptr) *io_layout = a;
  }
  const uint64_t scratch_tag = 0x5C;
  while (true) {
    const uint64_t p = rt.AtomicLoad(a.phase);
    if (p >= kCrashPhases) break;
    std::vector<size_t> tids;
    for (int t = 0; t < 2; ++t) {
      tids.push_back(rt.Spawn([&rt, &a, &ops, p, t, kill_at] {
        for (int i = 0; i < kCrashIters; ++i) {
          if (rt.MutexLock(a.mutex_id) != RfdetErrc::kOk) std::_Exit(9);
          uint64_t v = 0;
          rt.Load(a.counter, &v, sizeof v);
          ++v;
          rt.Store(a.counter, &v, sizeof v);
          rt.MutexUnlock(a.mutex_id);
          const uint64_t w = (p << 8) | static_cast<uint64_t>(t * 16 + i);
          rt.Store(a.slots + ((p * 2 + static_cast<uint64_t>(t)) *
                                  kCrashIters +
                              static_cast<uint64_t>(i)) *
                                 sizeof w,
                   &w, sizeof w);
          rt.Tick(2);
          const uint64_t n =
              ops.fetch_add(1, std::memory_order_relaxed) + 1;
          if (kill_at != 0 && n >= kill_at) std::_Exit(2);
        }
      }));
    }
    if (rt.Join(tids[0]) != RfdetErrc::kOk) std::_Exit(9);
    rt.Store(a.scratch, &scratch_tag, sizeof scratch_tag);
    if (rt.Join(tids[1]) != RfdetErrc::kOk) std::_Exit(9);
    rt.AtomicStore(a.phase, p + 1);
  }
  rt.Load(a.counter, &out.counter, sizeof out.counter);
  out.rollup = rt.FinalizeFingerprint();
  out.stats = rt.Snapshot();
  return out;
}

TEST(Replay, CrashRestoreResumesBitIdentical) {
  const std::string log = TempPath("crash_replay.bin");
  const std::string ckpt = TempPath("crash_ckpt.img");
  const std::string fp_child = TempPath("crash_fp_child.bin");
  const std::string fp_ref = TempPath("crash_fp_ref.bin");
  const std::string fp_res = TempPath("crash_fp_res.bin");
  std::remove(log.c_str());
  std::remove(ckpt.c_str());

  // "Kill at a random op, deterministically": a fixed seed picks the crash
  // point inside phases 3-4 — late enough that several interval
  // checkpoints committed, early enough that real work remains.
  std::mt19937 rng(20260808u);
  const uint64_t kill_at = 40 + rng() % 20;
  // Interval below the cheapest full phase's ~18 ticking turn ends and
  // above the single turn between a phase boundary and the next loop-top
  // AtomicLoad: fires at every boundary, never anywhere else.
  const uint64_t interval = 8;

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Recording child. _Exit skips all teardown (no log finalize, no
    // fingerprint write): durability comes only from checkpoint flushes.
    RfdetOptions o = Small();
    o.replay_mode = ReplayMode::kRecord;
    o.replay_log_path = log;
    o.checkpoint_path = ckpt;
    o.checkpoint_interval_turns = interval;
    o.fingerprint = FingerprintMode::kRecord;
    o.fingerprint_path = fp_child;
    RunCrashWorkload(o, kill_at, nullptr);
    std::_Exit(7);  // completed without reaching kill_at: test bug
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 2);
  ASSERT_TRUE(NonEmptyFile(ckpt));  // tmp+rename: always a complete image
  ASSERT_TRUE(NonEmptyFile(log));

  // Uninterrupted reference, no replay/checkpoint configured at all —
  // interval checkpoints are zero-perturbation, so the resumed run must
  // match this one's fingerprint stream anyway.
  RfdetOptions ref = Small();
  ref.fingerprint = FingerprintMode::kRecord;
  ref.fingerprint_path = fp_ref;
  CrashLayout layout;
  const CrashResult want = RunCrashWorkload(ref, 0, &layout);
  EXPECT_EQ(want.counter, kCrashPhases * 2 * kCrashIters);

  // Restore from the latest checkpoint + log tail (kRecord truncates the
  // log to the checkpointed durable offset and appends) and run to
  // completion.
  RfdetOptions res = Small();
  res.replay_mode = ReplayMode::kRecord;
  res.replay_log_path = log;
  res.checkpoint_path = ckpt;
  res.checkpoint_interval_turns = interval;
  res.restore_checkpoint_path = ckpt;
  res.fingerprint = FingerprintMode::kRecord;
  res.fingerprint_path = fp_res;
  const CrashResult got = RunCrashWorkload(res, 0, &layout);
  EXPECT_EQ(got.stats.restores, 1u);
  EXPECT_EQ(got.counter, want.counter);
  EXPECT_EQ(got.rollup, want.rollup);
  EXPECT_EQ(got.stats.fingerprint_divergences, 0u);
  EXPECT_EQ(got.stats.replay_io_errors, 0u);
  EXPECT_EQ(got.stats.checkpoint_io_errors, 0u);

  // The stitched log (recorded prefix + resumed tail) and the resumed
  // run's fingerprint file both describe the complete execution: a fresh
  // replay from turn 0 must verify against them with zero divergences.
  RfdetOptions full = Small();
  full.replay_mode = ReplayMode::kReplay;
  full.replay_log_path = log;
  full.fingerprint = FingerprintMode::kVerify;
  full.fingerprint_path = fp_res;
  const CrashResult rep = RunCrashWorkload(full, 0, nullptr);
  EXPECT_EQ(rep.counter, want.counter);
  EXPECT_EQ(rep.rollup, want.rollup);
  EXPECT_EQ(rep.stats.replay_divergences, 0u);
  EXPECT_EQ(rep.stats.fingerprint_divergences, 0u);

  std::remove(log.c_str());
  std::remove(ckpt.c_str());
  std::remove(fp_child.c_str());
  std::remove(fp_ref.c_str());
  std::remove(fp_res.c_str());
}

// ---- checkpoint gating and recovery ---------------------------------------

TEST(Replay, CheckpointNowRequiresConfigAndQuiescence) {
  {
    RfdetRuntime rt(Small());
    EXPECT_EQ(rt.CheckpointNow(), RfdetErrc::kInvalid);
  }
  const std::string ckpt = TempPath("ckpt_gate.img");
  RfdetOptions o = Small();
  o.checkpoint_path = ckpt;
  RfdetRuntime rt(o);
  const size_t bar = rt.CreateBarrier(2);
  const size_t tid = rt.Spawn([&rt, bar] {
    // A checkpoint is a main-thread operation.
    EXPECT_EQ(rt.CheckpointNow(), RfdetErrc::kInvalid);
    EXPECT_EQ(rt.BarrierWait(bar), RfdetErrc::kOk);
  });
  // The worker exists and is not joined: not quiescent.
  EXPECT_EQ(rt.CheckpointNow(), RfdetErrc::kAgain);
  EXPECT_EQ(rt.BarrierWait(bar), RfdetErrc::kOk);
  EXPECT_EQ(rt.Join(tid), RfdetErrc::kOk);
  EXPECT_EQ(rt.CheckpointNow(), RfdetErrc::kOk);
  EXPECT_TRUE(NonEmptyFile(ckpt));
  const StatsSnapshot s = rt.Snapshot();
  EXPECT_EQ(s.checkpoints_written, 1u);
  EXPECT_GE(s.checkpoint_skips, 1u);
  EXPECT_GT(s.checkpoint_bytes, 0u);
  std::remove(ckpt.c_str());
}

TEST(Replay, CorruptCheckpointRestoreStartsFresh) {
  const std::string ckpt = TempPath("ckpt_corrupt.img");
  {
    std::ofstream f(ckpt, std::ios::binary);
    f << "definitely not a checkpoint image";
  }
  std::vector<std::string> errors;
  RfdetOptions o = Small();
  o.restore_checkpoint_path = ckpt;
  o.on_error = [&errors](RfdetErrc e, const std::string& what) {
    if (e == RfdetErrc::kIo) errors.push_back(what);
  };
  RfdetRuntime rt(o);
  EXPECT_FALSE(rt.Restored());
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("starting fresh"), std::string::npos)
      << errors.front();
  // The failed restore is fully recoverable: the runtime works.
  const GAddr g = rt.AllocStatic(64);
  int v = 42;
  rt.Store(g, &v, sizeof v);
  int r = 0;
  rt.Load(g, &r, sizeof r);
  EXPECT_EQ(r, 42);
  EXPECT_EQ(rt.Snapshot().restores, 0u);
  std::remove(ckpt.c_str());
}

TEST(Replay, ProgressAppearsInStateDump) {
  const std::string log = TempPath("replay_dump.bin");
  const std::string ckpt = TempPath("replay_dump.img");
  RfdetOptions o = Small();
  o.replay_mode = ReplayMode::kRecord;
  o.replay_log_path = log;
  o.checkpoint_path = ckpt;
  RfdetRuntime rt(o);
  const size_t m = rt.CreateMutex();
  EXPECT_EQ(rt.MutexLock(m), RfdetErrc::kOk);
  rt.MutexUnlock(m);
  EXPECT_EQ(rt.CheckpointNow(), RfdetErrc::kOk);
  const std::string dump = rt.DumpStateReport();
  EXPECT_NE(dump.find("replay: mode=record"), std::string::npos) << dump;
  EXPECT_NE(dump.find("checkpoint: seq"), std::string::npos) << dump;
  std::remove(log.c_str());
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace rfdet
