// Core RfdetRuntime behaviour: thread lifecycle, mutual exclusion,
// condition variables, barriers, and the DLRC visibility rules, including
// the paper's Figure 2 and Figure 6 litmus tests.
#include <gtest/gtest.h>

#include <vector>

#include "rfdet/runtime/runtime.h"

namespace rfdet {
namespace {

RfdetOptions SmallOptions(MonitorMode monitor = MonitorMode::kInstrumented) {
  RfdetOptions o;
  o.monitor = monitor;
  o.region_bytes = 8u << 20;
  o.static_bytes = 1u << 20;
  o.metadata_bytes = 32u << 20;
  return o;
}

class RuntimeBasicTest : public ::testing::TestWithParam<MonitorMode> {};

INSTANTIATE_TEST_SUITE_P(Monitors, RuntimeBasicTest,
                         ::testing::Values(MonitorMode::kInstrumented,
                                           MonitorMode::kPageFault),
                         [](const auto& param_info) {
                           return param_info.param == MonitorMode::kInstrumented
                                      ? "ci"
                                      : "pf";
                         });

TEST_P(RuntimeBasicTest, SingleThreadStoreLoad) {
  RfdetRuntime rt(SmallOptions(GetParam()));
  const GAddr a = rt.AllocStatic(sizeof(uint64_t));
  uint64_t v = 0xdeadbeefcafef00dULL;
  rt.Store(a, &v, sizeof v);
  uint64_t r = 0;
  rt.Load(a, &r, sizeof r);
  EXPECT_EQ(r, v);
}

TEST_P(RuntimeBasicTest, UnwrittenMemoryReadsZero) {
  RfdetRuntime rt(SmallOptions(GetParam()));
  const GAddr a = rt.AllocStatic(4096);
  uint64_t r = 1;
  rt.Load(a + 1000, &r, sizeof r);
  EXPECT_EQ(r, 0u);
}

TEST_P(RuntimeBasicTest, ChildInheritsParentMemory) {
  RfdetRuntime rt(SmallOptions(GetParam()));
  const GAddr a = rt.AllocStatic(sizeof(int));
  const int forty_two = 42;
  rt.Store(a, &forty_two, sizeof forty_two);
  int seen = 0;
  const size_t tid = rt.Spawn([&] {
    int v = 0;
    rt.Load(a, &v, sizeof v);
    seen = v;
  });
  rt.Join(tid);
  EXPECT_EQ(seen, 42);
}

TEST_P(RuntimeBasicTest, JoinPropagatesChildWrites) {
  RfdetRuntime rt(SmallOptions(GetParam()));
  const GAddr a = rt.AllocStatic(sizeof(int));
  const size_t tid = rt.Spawn([&] {
    const int v = 7;
    rt.Store(a, &v, sizeof v);
  });
  rt.Join(tid);
  int r = 0;
  rt.Load(a, &r, sizeof r);
  EXPECT_EQ(r, 7);
}

TEST_P(RuntimeBasicTest, IsolationUntilSynchronization) {
  // A child's store must NOT be visible to the parent before a
  // happens-before edge exists (DLRC rule 2, paper §3).
  RfdetRuntime rt(SmallOptions(GetParam()));
  const GAddr a = rt.AllocStatic(sizeof(int));
  const size_t mtx = rt.CreateMutex();
  const GAddr flag = rt.AllocStatic(sizeof(int));

  const size_t tid = rt.Spawn([&] {
    const int v = 99;
    rt.Store(a, &v, sizeof v);
    // Publish via lock so the parent can establish the edge later.
    rt.MutexLock(mtx);
    const int one = 1;
    rt.Store(flag, &one, sizeof one);
    rt.MutexUnlock(mtx);
    // Spin deterministically so the parent has time to read `a` before we
    // exit (exit would not publish to the parent until Join anyway).
    for (int i = 0; i < 1000; ++i) rt.Tick(10);
  });

  // Wait until the child released the lock at least once.
  int published = 0;
  while (published == 0) {
    rt.MutexLock(mtx);
    rt.Load(flag, &published, sizeof published);
    rt.MutexUnlock(mtx);
  }
  // The lock hand-off created the edge: the write must now be visible.
  int r = -1;
  rt.Load(a, &r, sizeof r);
  EXPECT_EQ(r, 99);
  rt.Join(tid);
}

TEST_P(RuntimeBasicTest, Figure2Litmus) {
  // Paper Figure 2: T1 writes x=1, releases; writes x=2 in a later slice.
  // After T2 acquires the lock released by T1's first unlock, T2 must see
  // x==1 (the x=2 write does not happen-before T2's read).
  RfdetRuntime rt(SmallOptions(GetParam()));
  const GAddr x = rt.AllocStatic(sizeof(int));
  const size_t m = rt.CreateMutex();
  const GAddr stage = rt.AllocStatic(sizeof(int));

  // T2 observes before any synchronization: must read 0.
  int before = -1;
  rt.Load(x, &before, sizeof before);
  EXPECT_EQ(before, 0);

  const size_t t1 = rt.Spawn([&] {
    const int one = 1;
    rt.MutexLock(m);
    rt.Store(x, &one, sizeof one);
    rt.Store(stage, &one, sizeof one);
    rt.MutexUnlock(m);
    // Second modification, never released through m again before T2 reads.
    const int two = 2;
    rt.Store(x, &two, sizeof two);
    for (int i = 0; i < 2000; ++i) rt.Tick(10);
  });

  int staged = 0;
  while (staged == 0) {
    rt.MutexLock(m);
    rt.Load(stage, &staged, sizeof staged);
    rt.MutexUnlock(m);
  }
  int seen = -1;
  rt.Load(x, &seen, sizeof seen);
  EXPECT_EQ(seen, 1);  // x=2 must NOT be visible
  rt.Join(t1);
  int after = -1;
  rt.Load(x, &after, sizeof after);
  EXPECT_EQ(after, 2);  // join creates the edge to the second write
}

TEST_P(RuntimeBasicTest, MutualExclusionCounter) {
  RfdetRuntime rt(SmallOptions(GetParam()));
  const GAddr counter = rt.AllocStatic(sizeof(uint64_t));
  const size_t m = rt.CreateMutex();
  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  std::vector<size_t> tids;
  for (int t = 0; t < kThreads; ++t) {
    tids.push_back(rt.Spawn([&] {
      for (int i = 0; i < kIters; ++i) {
        rt.MutexLock(m);
        uint64_t v = 0;
        rt.Load(counter, &v, sizeof v);
        ++v;
        rt.Store(counter, &v, sizeof v);
        rt.MutexUnlock(m);
      }
    }));
  }
  for (const size_t tid : tids) rt.Join(tid);
  uint64_t v = 0;
  rt.Load(counter, &v, sizeof v);
  EXPECT_EQ(v, uint64_t{kThreads} * kIters);
}

TEST_P(RuntimeBasicTest, CondVarPingPong) {
  RfdetRuntime rt(SmallOptions(GetParam()));
  const GAddr turn = rt.AllocStatic(sizeof(int));  // 0 = producer's turn
  const GAddr sum = rt.AllocStatic(sizeof(int));
  const size_t m = rt.CreateMutex();
  const size_t cv = rt.CreateCond();
  constexpr int kRounds = 20;

  const size_t consumer = rt.Spawn([&] {
    for (int i = 0; i < kRounds; ++i) {
      rt.MutexLock(m);
      int t = 0;
      rt.Load(turn, &t, sizeof t);
      while (t != 1) {
        rt.CondWait(cv, m);
        rt.Load(turn, &t, sizeof t);
      }
      int s = 0;
      rt.Load(sum, &s, sizeof s);
      ++s;
      rt.Store(sum, &s, sizeof s);
      const int zero = 0;
      rt.Store(turn, &zero, sizeof zero);
      rt.CondSignal(cv);
      rt.MutexUnlock(m);
    }
  });

  for (int i = 0; i < kRounds; ++i) {
    rt.MutexLock(m);
    int t = 0;
    rt.Load(turn, &t, sizeof t);
    while (t != 0) {
      rt.CondWait(cv, m);
      rt.Load(turn, &t, sizeof t);
    }
    const int one = 1;
    rt.Store(turn, &one, sizeof one);
    rt.CondSignal(cv);
    rt.MutexUnlock(m);
  }
  rt.Join(consumer);
  int s = 0;
  rt.Load(sum, &s, sizeof s);
  EXPECT_EQ(s, kRounds);
}

TEST_P(RuntimeBasicTest, BarrierMergesAllThreads) {
  RfdetRuntime rt(SmallOptions(GetParam()));
  constexpr int kThreads = 4;
  const GAddr slots = rt.AllocStatic(kThreads * sizeof(int));
  const size_t bar = rt.CreateBarrier(kThreads + 1);
  std::vector<size_t> tids;
  std::vector<int> sums(kThreads, -1);
  for (int t = 0; t < kThreads; ++t) {
    tids.push_back(rt.Spawn([&, t] {
      const int v = 10 + t;
      rt.Store(slots + t * sizeof(int), &v, sizeof v);
      rt.BarrierWait(bar);
      // After the barrier every thread sees every other thread's slot.
      int s = 0;
      for (int u = 0; u < kThreads; ++u) {
        int x = 0;
        rt.Load(slots + u * sizeof(int), &x, sizeof x);
        s += x;
      }
      sums[t] = s;
    }));
  }
  rt.BarrierWait(bar);
  int s = 0;
  for (int u = 0; u < kThreads; ++u) {
    int x = 0;
    rt.Load(slots + u * sizeof(int), &x, sizeof x);
    s += x;
  }
  const int expect = 10 + 11 + 12 + 13;
  EXPECT_EQ(s, expect);
  for (const size_t tid : tids) rt.Join(tid);
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(sums[t], expect);
}

TEST_P(RuntimeBasicTest, MallocFreeRoundTrip) {
  RfdetRuntime rt(SmallOptions(GetParam()));
  const GAddr a = rt.Malloc(100);
  const GAddr b = rt.Malloc(100);
  EXPECT_NE(a, b);
  rt.Free(a);
  const GAddr c = rt.Malloc(100);
  EXPECT_EQ(c, a);  // deterministic reuse from the per-thread free list
  rt.Free(b);
  rt.Free(c);
}

TEST(RuntimeWeakMode, KendoBackendSharesMemoryImmediately) {
  RfdetOptions o;
  o.isolation = false;
  o.region_bytes = 4u << 20;
  o.static_bytes = 1u << 20;
  RfdetRuntime rt(o);
  const GAddr a = rt.AllocStatic(sizeof(int));
  const size_t m = rt.CreateMutex();
  const size_t tid = rt.Spawn([&] {
    rt.MutexLock(m);
    const int v = 5;
    rt.Store(a, &v, sizeof v);
    rt.MutexUnlock(m);
  });
  rt.Join(tid);
  int r = 0;
  rt.Load(a, &r, sizeof r);
  EXPECT_EQ(r, 5);
}

}  // namespace
}  // namespace rfdet
