// Checkpoint image ring: slot rotation, newest-valid-first restore, and
// fuzzed corruption (truncations and byte flips) of the RFDTCK01 header
// and length-prefixed payload. The contract under attack: restore lands
// on an older valid image or starts fresh — it never crashes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "rfdet/replay/checkpoint.h"
#include "rfdet/runtime/runtime.h"

namespace rfdet {
namespace {

constexpr size_t kThreads = 2;
constexpr size_t kPhases = 3;
constexpr size_t kIters = 4;
constexpr size_t kRetain = 3;
// magic (8) + version/region/statics/maxthreads/seq/resume_clock +
// replay_active/file_offset (8 x u64) — what PeekCheckpoint reads.
constexpr size_t kHeaderBytes = 72;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

RfdetOptions Small() {
  RfdetOptions o;
  o.region_bytes = 4u << 20;
  o.static_bytes = 1u << 20;
  o.divergence_policy = DivergencePolicy::kReport;
  return o;
}

struct Layout {
  GAddr counter = kNullGAddr;
  GAddr phase = kNullGAddr;
  GAddr slots = kNullGAddr;
  size_t mutex_id = 0;
};

// The phase-boundary AtomicStore is the only quiescent-and-clean main
// turn end, so interval checkpoints land there — one image per phase.
uint64_t RunPhased(RfdetRuntime& rt, Layout* io_layout) {
  Layout a;
  if (rt.Restored()) {
    a = *io_layout;
  } else {
    a.counter = rt.AllocStatic(64);
    a.phase = a.counter + 8;
    a.slots = rt.AllocStatic(4096, 64);
    a.mutex_id = rt.CreateMutex();
    *io_layout = a;
  }
  while (true) {
    const uint64_t p = rt.AtomicLoad(a.phase);
    if (p >= kPhases) break;
    std::vector<size_t> tids;
    for (size_t t = 0; t < kThreads; ++t) {
      tids.push_back(rt.Spawn([&rt, &a, p, t] {
        for (size_t i = 0; i < kIters; ++i) {
          if (rt.MutexLock(a.mutex_id) != RfdetErrc::kOk) std::_Exit(9);
          uint64_t v = 0;
          rt.Load(a.counter, &v, sizeof v);
          ++v;
          rt.Store(a.counter, &v, sizeof v);
          rt.MutexUnlock(a.mutex_id);
          const uint64_t w = (p << 8) | (t * 64 + i);
          rt.Store(a.slots + ((p * kThreads + t) * kIters + i) * 8, &w,
                   sizeof w);
          rt.Tick(2);
        }
      }));
    }
    for (size_t t = 0; t < kThreads; ++t) {
      if (rt.Join(tids[t]) != RfdetErrc::kOk) std::_Exit(9);
    }
    rt.AtomicStore(a.phase, p + 1);
  }
  return rt.FinalizeFingerprint();
}

void CleanRing(const std::string& base) {
  for (const std::string& p : CheckpointRingPaths(base, kRetain)) {
    std::remove(p.c_str());
  }
}

// Runs the workload once with interval checkpoints rotating over the ring.
// Fingerprinting stays off so the images restore into plain Small()
// runtimes (an image records whether its run fingerprinted and a restore
// must match).
void PopulateRing(const std::string& base, Layout* layout) {
  CleanRing(base);
  RfdetOptions o = Small();
  o.checkpoint_path = base;
  o.checkpoint_interval_turns = 8;
  o.checkpoint_retain = kRetain;
  RfdetRuntime rt(o);
  RunPhased(rt, layout);
}

std::string ReadFile(const std::string& path) {
  std::string out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

struct Slot {
  std::string path;
  CheckpointPeek peek;
};

// Existing, peekable slots ranked newest-first.
std::vector<Slot> RankedSlots(const std::string& base) {
  std::vector<Slot> out;
  for (const std::string& p : CheckpointRingPaths(base, kRetain)) {
    CheckpointPeek peek;
    if (PeekCheckpoint(p, &peek)) out.push_back({p, peek});
  }
  std::sort(out.begin(), out.end(),
            [](const Slot& a, const Slot& b) { return a.peek.seq > b.peek.seq; });
  return out;
}

TEST(CheckpointRingTest, SlotsRotateAndPeekRanksThem) {
  const std::string base = TempPath("ring_rot.img");
  Layout layout;
  PopulateRing(base, &layout);

  const std::vector<std::string> paths = CheckpointRingPaths(base, kRetain);
  ASSERT_EQ(paths.size(), kRetain + 1);  // ring slots first, bare base last
  EXPECT_EQ(paths.back(), base);
  for (size_t i = 0; i < kRetain; ++i) {
    EXPECT_EQ(paths[i], base + "." + std::to_string(i));
  }

  const std::vector<Slot> ranked = RankedSlots(base);
  ASSERT_GE(ranked.size(), 2u);  // one image per phase, kPhases >= 2 retained
  for (const Slot& s : ranked) {
    EXPECT_EQ(s.peek.version, kCheckpointVersion);
    // Each image lives in the slot its sequence number names.
    EXPECT_EQ(s.path, CheckpointSlotPath(base, kRetain, s.peek.seq));
  }
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LT(ranked[i].peek.seq, ranked[i - 1].peek.seq);
    EXPECT_LT(ranked[i].peek.resume_clock, ranked[i - 1].peek.resume_clock);
  }
  CleanRing(base);
}

TEST(CheckpointRingTest, RestorePicksNewestValidImage) {
  const std::string base = TempPath("ring_newest.img");
  Layout layout;
  PopulateRing(base, &layout);
  const std::vector<Slot> ranked = RankedSlots(base);
  ASSERT_GE(ranked.size(), 2u);

  RfdetOptions o = Small();
  o.restore_checkpoint_path = base;
  o.checkpoint_retain = kRetain;
  RfdetRuntime rt(o);
  ASSERT_TRUE(rt.Restored());
  EXPECT_EQ(rt.RestoredCheckpointSeq(), ranked[0].peek.seq);
  EXPECT_EQ(rt.RestoredClock(), ranked[0].peek.resume_clock);
  CleanRing(base);
}

TEST(CheckpointRingTest, CorruptNewestFallsBackToOlderImage) {
  const std::string base = TempPath("ring_fallback.img");
  Layout layout;
  PopulateRing(base, &layout);
  const std::vector<Slot> ranked = RankedSlots(base);
  ASSERT_GE(ranked.size(), 2u);

  // Truncate the newest image past the fixed header: it still peeks (and
  // ranks first) but full validation rejects it.
  const std::string newest = ReadFile(ranked[0].path);
  ASSERT_GT(newest.size(), 256u);
  WriteFile(ranked[0].path, newest.substr(0, 256));

  std::vector<std::string> errors;
  RfdetOptions o = Small();
  o.restore_checkpoint_path = base;
  o.checkpoint_retain = kRetain;
  o.on_error = [&errors](RfdetErrc, const std::string& what) {
    errors.push_back(what);
  };
  RfdetRuntime rt(o);
  ASSERT_TRUE(rt.Restored());
  EXPECT_EQ(rt.RestoredCheckpointSeq(), ranked[1].peek.seq);
  bool saw_fallback = false;
  for (const std::string& e : errors) {
    if (e.find("trying older image") != std::string::npos) saw_fallback = true;
  }
  EXPECT_TRUE(saw_fallback) << "fallback to the older image was silent";
  CleanRing(base);
}

TEST(CheckpointRingTest, AllSlotsCorruptStartsFreshAndStaysUsable) {
  const std::string base = TempPath("ring_fresh.img");
  // Fingerprinted reference for the rollup the degraded run must match.
  uint64_t want = 0;
  {
    RfdetOptions o = Small();
    o.fingerprint = FingerprintMode::kRecord;
    o.fingerprint_path = TempPath("ring_fp_fresh_ref.bin");
    RfdetRuntime rt(o);
    Layout ref_layout;
    want = RunPhased(rt, &ref_layout);
  }
  Layout ring_layout;
  PopulateRing(base, &ring_layout);
  for (const Slot& s : RankedSlots(base)) {
    WriteFile(s.path, std::string("not a checkpoint image"));
  }

  std::vector<std::string> errors;
  RfdetOptions o = Small();
  o.restore_checkpoint_path = base;
  o.checkpoint_retain = kRetain;
  o.fingerprint = FingerprintMode::kRecord;
  o.fingerprint_path = TempPath("ring_fp_fresh.bin");
  o.on_error = [&errors](RfdetErrc, const std::string& what) {
    errors.push_back(what);
  };
  RfdetRuntime rt(o);
  EXPECT_FALSE(rt.Restored());
  bool saw_fresh = false;
  for (const std::string& e : errors) {
    if (e.find("no valid image in ring; starting fresh") != std::string::npos) {
      saw_fresh = true;
    }
  }
  EXPECT_TRUE(saw_fresh);
  // The degraded runtime is a fully working fresh runtime.
  Layout layout;
  EXPECT_EQ(RunPhased(rt, &layout), want);
  CleanRing(base);
}

// One valid older image stays in the ring; the newest slot is replaced by
// a mutilated copy. Whatever the mutilation, restore must land on the
// older image or start fresh — and must never crash.
class CheckpointFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = TempPath("ring_fuzz.img");
    Layout layout;
    PopulateRing(base_, &layout);
    std::vector<Slot> ranked = RankedSlots(base_);
    ASSERT_GE(ranked.size(), 2u);
    victim_path_ = ranked[0].path;
    victim_ = ReadFile(victim_path_);
    ASSERT_GT(victim_.size(), kHeaderBytes);
    older_seq_ = ranked[1].peek.seq;
    // Leave exactly one valid fallback image.
    for (size_t i = 2; i < ranked.size(); ++i) {
      std::remove(ranked[i].path.c_str());
    }
  }

  void TearDown() override { CleanRing(base_); }

  // Restores against the mutilated ring. `must_reject` encodes the
  // contract tier: a mutation that breaks a *validated* field (magic,
  // version, geometry, length prefixes, structure) must send restore to
  // the older image or a fresh start; a mutation in unchecked metadata
  // (sequence label, replay cursors, page contents — the format has no
  // checksum by design, crash consistency comes from tmp+rename) may be
  // accepted. Both tiers share the hard floor: returning here at all —
  // no crash, no hang, no unbounded allocation.
  void FuzzRestore(const std::string& what, bool must_reject) {
    RfdetOptions o = Small();
    o.restore_checkpoint_path = base_;
    o.checkpoint_retain = kRetain;
    RfdetRuntime rt(o);
    if (must_reject && rt.Restored()) {
      EXPECT_EQ(rt.RestoredCheckpointSeq(), older_seq_)
          << what << ": restore accepted the mutilated newest image";
    }
    // Not restored is fine: fresh start. Either way we got here — no UB.
  }

  std::string base_;
  std::string victim_path_;
  std::string victim_;
  uint64_t older_seq_ = 0;
};

TEST_F(CheckpointFuzzTest, TruncationSweepLandsOlderValidOrFresh) {
  // Any truncation loses the page-section sentinel at minimum, so every
  // cut must invalidate the image.
  const size_t len = victim_.size();
  const size_t cuts[] = {0,      1,       7,       8,       9,
                         23,     kHeaderBytes - 1, kHeaderBytes,
                         kHeaderBytes + 1,         kHeaderBytes + 17,
                         len / 4, len / 2, len - 9, len - 1};
  for (const size_t cut : cuts) {
    WriteFile(victim_path_, victim_.substr(0, cut));
    FuzzRestore("truncate to " + std::to_string(cut), /*must_reject=*/true);
  }
}

TEST_F(CheckpointFuzzTest, HeaderByteFlipsNeverCrash) {
  // File bytes 0..39: magic, version, geometry — all validated, so a flip
  // must bounce restore to the older image. Bytes 40..: sequence number,
  // resume clock, replay cursors — unchecked metadata, acceptance allowed.
  constexpr size_t kValidatedBytes = 40;
  for (size_t off = 0; off < kHeaderBytes; ++off) {
    std::string mutated = victim_;
    mutated[off] = static_cast<char>(mutated[off] ^ 0xFF);
    WriteFile(victim_path_, mutated);
    FuzzRestore("flip header byte " + std::to_string(off),
                /*must_reject=*/off < kValidatedBytes);
  }
}

TEST_F(CheckpointFuzzTest, PayloadFlipsAndLengthPrefixAttacksNeverCrash) {
  const size_t len = victim_.size();
  // Spots throughout the length-prefixed sub-blobs and page payload.
  const size_t offs[] = {kHeaderBytes + 24, kHeaderBytes + 32, len / 3,
                         len / 2,           (2 * len) / 3,     len - 8};
  for (const size_t off : offs) {
    std::string mutated = victim_;
    mutated[off] = static_cast<char>(mutated[off] ^ 0xFF);
    WriteFile(victim_path_, mutated);
    FuzzRestore("flip payload byte " + std::to_string(off),
                /*must_reject=*/false);
  }
  // All-ones length prefix (the nondet-event count is the first length
  // field after the replay cursors): a huge count must be bounds-checked
  // and rejected, not allocated or memcpy'd.
  std::string mutated = victim_;
  for (size_t i = 0; i < 8; ++i) {
    mutated[kHeaderBytes + 24 + i] = static_cast<char>(0xFF);
  }
  WriteFile(victim_path_, mutated);
  FuzzRestore("length prefix 0xFFFFFFFFFFFFFFFF", /*must_reject=*/true);
}

}  // namespace
}  // namespace rfdet
