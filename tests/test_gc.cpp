// Slice garbage collection (§4.5) and metadata-space accounting (§5.4).
#include <gtest/gtest.h>

#include "rfdet/runtime/runtime.h"
#include "rfdet/slice/slice.h"

namespace rfdet {
namespace {

TEST(MetadataArena, ChargeReleaseAndPeak) {
  MetadataArena arena(1000, 0.5);
  EXPECT_FALSE(arena.NeedsGc());
  arena.Charge(400);
  EXPECT_FALSE(arena.NeedsGc());
  arena.Charge(200);
  EXPECT_TRUE(arena.NeedsGc());  // 600 ≥ 500
  arena.Release(300);
  EXPECT_FALSE(arena.NeedsGc());
  EXPECT_EQ(arena.Used(), 300u);
  EXPECT_EQ(arena.Peak(), 600u);
}

TEST(Slice, ChargesArenaForItsLifetime) {
  MetadataArena arena(1u << 20);
  ModList mods;
  const std::byte b[16] = {};
  mods.Append(0, b);
  {
    Slice slice(0, 1, VectorClock(2), std::move(mods), &arena);
    EXPECT_GT(arena.Used(), 0u);
    EXPECT_EQ(arena.Used(), slice.MemoryBytes());
  }
  EXPECT_EQ(arena.Used(), 0u);
}

TEST(SliceLog, PruneRemovesOnlyDominatedSlices) {
  MetadataArena arena(1u << 20);
  SliceLog log;
  auto mk = [&](std::initializer_list<uint64_t> time) {
    VectorClock vc;
    size_t i = 0;
    for (const uint64_t v : time) vc.Set(i++, v);
    return std::make_shared<Slice>(0, 0, vc, ModList{}, &arena);
  };
  log.Append(mk({1, 0}));
  log.Append(mk({2, 0}));
  log.Append(mk({0, 5}));
  VectorClock bound;
  bound.Set(0, 1);
  bound.Set(1, 9);
  EXPECT_EQ(log.Prune(bound), 2u);  // {1,0} and {0,5} are ≤ bound
  EXPECT_EQ(log.Size(), 1u);
}

TEST(RuntimeGc, ForceGcCollectsFullyPropagatedSlices) {
  RfdetOptions o;
  o.region_bytes = 8u << 20;
  o.static_bytes = 1u << 20;
  RfdetRuntime rt(o);
  const GAddr a = rt.AllocStatic(4096);
  const size_t m = rt.CreateMutex();
  // Generate slices in the main thread only: with no other live thread,
  // everything it produced is ≤ every live clock and thus collectable.
  for (int i = 0; i < 20; ++i) {
    rt.MutexLock(m);
    rt.Store(a + static_cast<GAddr>(i) * 8, &i, sizeof i);
    rt.MutexUnlock(m);
  }
  EXPECT_GT(rt.LiveSliceCount(), 0u);
  const size_t used_before = rt.arena().Used();
  EXPECT_GT(rt.ForceGc(), 0u);
  EXPECT_EQ(rt.LiveSliceCount(), 0u);
  EXPECT_LT(rt.arena().Used(), used_before);
}

TEST(RuntimeGc, SlicesNeededByPeersSurviveGc) {
  RfdetOptions o;
  o.region_bytes = 8u << 20;
  o.static_bytes = 1u << 20;
  RfdetRuntime rt(o);
  const GAddr a = rt.AllocStatic(64);
  const GAddr gate = rt.AllocStatic(sizeof(int));
  const size_t m = rt.CreateMutex();
  // A child that waits (deterministically) before consuming main's writes.
  const size_t tid = rt.Spawn([&] {
    int go = 0;
    while (go == 0) {
      rt.MutexLock(m);
      rt.Load(gate, &go, sizeof go);
      rt.MutexUnlock(m);
    }
    int v = 0;
    rt.Load(a, &v, sizeof v);
    EXPECT_EQ(v, 1234);
  });
  const int v = 1234;
  rt.MutexLock(m);
  rt.Store(a, &v, sizeof v);
  rt.MutexUnlock(m);
  // GC now: the child has not yet seen the slice, so it must survive.
  rt.ForceGc();
  rt.MutexLock(m);
  const int one = 1;
  rt.Store(gate, &one, sizeof one);
  rt.MutexUnlock(m);
  rt.Join(tid);  // the child's EXPECT ran with the surviving slice
}

TEST(RuntimeGc, ThresholdTriggersAutomaticGc) {
  RfdetOptions o;
  o.region_bytes = 8u << 20;
  o.static_bytes = 1u << 20;
  o.metadata_bytes = 512u << 10;  // tiny: 512 KB
  o.gc_threshold = 0.5;
  RfdetRuntime rt(o);
  const GAddr a = rt.AllocStatic(256 * 1024);
  const size_t m = rt.CreateMutex();
  std::vector<std::byte> junk(8192);
  for (int i = 0; i < 64; ++i) {
    rt.MutexLock(m);
    for (auto& b : junk) b = static_cast<std::byte>(i);
    rt.Store(a + (i % 16) * 8192, junk.data(), junk.size());
    rt.MutexUnlock(m);
  }
  EXPECT_GT(rt.Snapshot().gc_count, 0u);
  EXPECT_GT(rt.Snapshot().slices_pruned, 0u);
}

TEST(RuntimeGc, GcDoesNotChangeResults) {
  auto run = [](size_t metadata_bytes) {
    RfdetOptions o;
    o.region_bytes = 8u << 20;
    o.static_bytes = 1u << 20;
    o.metadata_bytes = metadata_bytes;
    o.gc_threshold = 0.5;
    RfdetRuntime rt(o);
    const GAddr arr = rt.AllocStatic(64 * 1024);
    const size_t m = rt.CreateMutex();
    std::vector<size_t> tids;
    for (int t = 0; t < 3; ++t) {
      tids.push_back(rt.Spawn([&, t] {
        std::vector<uint64_t> buf(512);
        for (int i = 0; i < 40; ++i) {
          rt.MutexLock(m);
          rt.Load(arr, buf.data(), buf.size() * 8);
          for (auto& b : buf) b = b * 31 + static_cast<uint64_t>(t + i);
          rt.Store(arr, buf.data(), buf.size() * 8);
          rt.MutexUnlock(m);
        }
      }));
    }
    for (const size_t tid : tids) rt.Join(tid);
    uint64_t digest = 0;
    std::vector<uint64_t> buf(512);
    rt.Load(arr, buf.data(), buf.size() * 8);
    for (const uint64_t b : buf) digest = digest * 1099511628211ull + b;
    return digest;
  };
  const uint64_t with_pressure = run(256u << 10);
  const uint64_t without_pressure = run(256u << 20);
  EXPECT_EQ(with_pressure, without_pressure);
}

}  // namespace
}  // namespace rfdet
